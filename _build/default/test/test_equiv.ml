(* Sequential equivalence: the RTL reference interpreter and the gate-level
   simulation of the elaborated netlist must agree on every output bit and
   every register bit, every cycle, for any core and any stimulus. *)

open Socet_util
open Socet_rtl
open Socet_netlist
open Socet_synth

let check = Alcotest.(check bool)

(* Drive both models [cycles] steps with the same random stimulus and
   compare outputs and register contents each cycle. *)
let equivalent ?(cycles = 48) ~seed core =
  let nl = Elaborate.core_to_netlist core in
  let rng = Rng.create seed in
  let in_ports = Rtl_core.inputs core in
  let npi = List.length (Netlist.pis nl) in
  let pi_pos = Hashtbl.create 16 in
  List.iteri
    (fun i net -> Hashtbl.replace pi_pos (Netlist.gate_name nl net) i)
    (Netlist.pis nl);
  let gate_state = ref (Sim.initial_state nl) in
  let rtl_state = ref (Rtl_sim.init core) in
  let ok = ref true in
  for _cycle = 1 to cycles do
    (* Fresh random value per input port. *)
    let port_values =
      List.map
        (fun (p : Rtl_core.port) -> (p.p_name, Rng.bitvec rng p.p_width))
        in_ports
    in
    let lookup name = List.assoc name port_values in
    (* Gate level. *)
    let pi = Bitvec.create npi in
    List.iter
      (fun (name, v) ->
        Bitvec.iteri
          (fun i b ->
            Bitvec.set pi (Hashtbl.find pi_pos (Printf.sprintf "%s.%d" name i)) b)
          v)
      port_values;
    let po, gate_state' = Sim.eval nl ~pi ~state:!gate_state in
    (* RTL level. *)
    let rtl_state', rtl_out = Rtl_sim.step core !rtl_state ~inputs:lookup in
    (* Compare outputs. *)
    let po_pos = Hashtbl.create 16 in
    List.iteri (fun i (name, _) -> Hashtbl.replace po_pos name i) (Netlist.pos nl);
    List.iter
      (fun (port, rtl_v) ->
        Bitvec.iteri
          (fun i rtl_b ->
            match Hashtbl.find_opt po_pos (Printf.sprintf "%s.%d" port i) with
            | Some k -> if Bitvec.get po k <> rtl_b then ok := false
            | None -> ok := false)
          rtl_v)
      rtl_out;
    (* Compare register contents (gate state layout: registers in
       declaration order, then the control FSM). *)
    let offset = ref 0 in
    List.iter
      (fun (r : Rtl_core.reg) ->
        let rtl_v = Rtl_sim.reg_value rtl_state' r.r_name in
        for i = 0 to r.r_width - 1 do
          if Bitvec.get gate_state' (!offset + i) <> Bitvec.get rtl_v i then
            ok := false
        done;
        offset := !offset + r.r_width)
      (Rtl_core.regs core);
    (* Control FSM state. *)
    let sw = Elaborate.control_state_width core in
    let gate_ctrl =
      Bitvec.to_int (Bitvec.sub gate_state' ~pos:!offset ~len:sw)
    in
    if gate_ctrl <> Rtl_sim.ctrl_state rtl_state' then ok := false;
    gate_state := gate_state';
    rtl_state := rtl_state'
  done;
  !ok

let test_equiv_example_cores () =
  List.iter
    (fun core ->
      check
        (Rtl_core.name core ^ " gates = RTL semantics")
        true
        (equivalent ~seed:11 core))
    [
      Socet_cores.Cpu.core ();
      Socet_cores.Preprocessor.core ();
      Socet_cores.Display.core ();
      Socet_cores.Gcd_core.core ();
      Socet_cores.Graphics.core ();
      Socet_cores.X25.core ();
    ]

(* Reuse the fuzz generator shape for random cores (duplicated minimally
   here to keep suites independent). *)
let random_core rng =
  let open Rtl_types in
  let w = 4 in
  let n_regs = 2 + Rng.int rng 5 in
  let n_ins = 1 + Rng.int rng 2 in
  let n_outs = 1 + Rng.int rng 2 in
  let c = Rtl_core.create (Printf.sprintf "eq%d" (Rng.int rng 100000)) in
  for i = 0 to n_ins - 1 do
    Rtl_core.add_input c (Printf.sprintf "I%d" i) w
  done;
  for i = 0 to n_outs - 1 do
    Rtl_core.add_output c (Printf.sprintf "O%d" i) w
  done;
  for i = 0 to n_regs - 1 do
    Rtl_core.add_reg c (Printf.sprintf "R%d" i) w
  done;
  let t = Rtl_core.add_transfer c in
  for i = 0 to n_regs - 1 do
    let src =
      if i = 0 || Rng.bool rng then
        Rtl_core.port c (Printf.sprintf "I%d" (Rng.int rng n_ins))
      else Rtl_core.reg c (Printf.sprintf "R%d" (Rng.int rng i))
    in
    t ~src ~dst:(Rtl_core.reg c (Printf.sprintf "R%d" i)) ();
    if Rng.int rng 3 = 0 then
      t
        ~kind:
          (Logic
             (match Rng.int rng 4 with
             | 0 -> Finc
             | 1 -> Fnot
             | 2 -> Fadd (Rtl_core.reg c (Printf.sprintf "R%d" (Rng.int rng (i + 1))))
             | _ -> Fxor (Rtl_core.reg c (Printf.sprintf "R%d" (Rng.int rng (i + 1))))))
        ~src:(Rtl_core.reg c (Printf.sprintf "R%d" i))
        ~dst:(Rtl_core.reg c (Printf.sprintf "R%d" i))
        ()
  done;
  for o = 0 to n_outs - 1 do
    t ~kind:Rtl_types.Direct
      ~src:(Rtl_core.reg c (Printf.sprintf "R%d" (Rng.int rng n_regs)))
      ~dst:(Rtl_core.port c (Printf.sprintf "O%d" o))
      ()
  done;
  Rtl_core.validate c;
  c

let prop_equivalence_random_cores =
  QCheck.Test.make ~name:"equivalence: random cores, gates = RTL" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      equivalent ~cycles:24 ~seed:(seed + 1) core)

let test_rtl_sim_runs () =
  let core = Socet_cores.Gcd_core.core () in
  let outs =
    Rtl_sim.run core ~cycles:8 ~inputs:(fun t name ->
        let p = Rtl_core.find_port core name in
        Bitvec.of_int ~width:p.Rtl_core.p_width (t * 3))
  in
  Alcotest.(check int) "eight cycles of outputs" 8 (List.length outs)

let () =
  Alcotest.run "socet_equiv"
    [
      ( "equivalence",
        [
          Alcotest.test_case "example cores" `Quick test_equiv_example_cores;
          Alcotest.test_case "rtl_sim runs" `Quick test_rtl_sim_runs;
          QCheck_alcotest.to_alcotest prop_equivalence_random_cores;
        ] );
    ]
