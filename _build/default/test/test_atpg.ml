open Socet_util
open Socet_netlist
open Socet_atpg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* y = a AND b, plus a flip-flop pipeline stage on a second output. *)
let small_circuit () =
  let nl = Netlist.create "small" in
  let a = Netlist.add_pi nl "a" in
  let b = Netlist.add_pi nl "b" in
  let g = Netlist.add_gate nl Cell.And2 [| a; b |] in
  Netlist.add_po nl "y" g;
  let ff = Netlist.add_gate nl Cell.Dff [| g |] in
  Netlist.add_po nl "z" ff;
  nl

(* A circuit with a classic redundant fault: y = (a AND b) OR (a AND NOT b)
   simplifies to a, and the OR output stuck-at-0 is testable, but a
   carefully constructed consensus term creates redundancy.  Simpler: tie a
   gate input to constant — faults on the constant side are untestable. *)
let redundant_circuit () =
  let nl = Netlist.create "red" in
  let a = Netlist.add_pi nl "a" in
  let one = Netlist.add_gate nl Cell.Const1 [||] in
  let buf = Netlist.add_gate nl Cell.Buf [| one |] in
  (* y = a AND 1 = a: buf stuck-at-1 is undetectable. *)
  let g = Netlist.add_gate nl Cell.And2 [| a; buf |] in
  Netlist.add_po nl "y" g;
  (nl, buf)

(* ------------------------------------------------------------------ *)
(* Fault                                                              *)
(* ------------------------------------------------------------------ *)

let test_fault_universe () =
  let nl = small_circuit () in
  (* 4 faultable nets (a, b, and, ff): 8 faults. *)
  check_int "two faults per net" 8 (List.length (Fault.all nl));
  let nl2 = Netlist.create "c" in
  let _ = Netlist.add_gate nl2 Cell.Const0 [||] in
  check_int "constants carry no faults" 0 (List.length (Fault.all nl2))

let test_fault_collapse () =
  let nl = Netlist.create "c" in
  let a = Netlist.add_pi nl "a" in
  let b1 = Netlist.add_gate nl Cell.Buf [| a |] in
  Netlist.add_po nl "y" b1;
  (* a has a single fanout (the buffer): the buffer's faults collapse away. *)
  let collapsed = Fault.collapse nl in
  check_int "buffer faults collapsed" 2 (List.length collapsed);
  check "remaining faults on the PI" true
    (List.for_all (fun (f : Fault.t) -> f.f_net = a) collapsed)

let test_fault_name () =
  let nl = small_circuit () in
  let f : Fault.t = { f_net = Netlist.find_pi nl "a"; f_stuck = true } in
  Alcotest.(check string) "fault name" "a/sa1" (Fault.name nl f)

(* ------------------------------------------------------------------ *)
(* Fsim (combinational model)                                         *)
(* ------------------------------------------------------------------ *)

let vec_of_string = Bitvec.of_string

let test_fsim_detects_and_sa0 () =
  let nl = small_circuit () in
  let g = Netlist.find_po nl "y" in
  (* vector layout: a, b, ff.  a=1 b=1 sensitises AND sa0. *)
  let v = vec_of_string "011" in
  (* bit0 = a, bit1 = b, bit2 = ff *)
  check "a=1,b=1 detects and/sa0" true
    (Fsim.detects_comb nl v { f_net = g; f_stuck = false });
  check "a=1,b=1 does not detect and/sa1" false
    (Fsim.detects_comb nl v { f_net = g; f_stuck = true });
  let v0 = vec_of_string "000" in
  check "a=0,b=0 detects and/sa1" true
    (Fsim.detects_comb nl v0 { f_net = g; f_stuck = true })

let test_fsim_pseudo_output_observation () =
  (* A fault observable only at a flip-flop D input must count as detected
     in the full-scan model. *)
  let nl = Netlist.create "hidden" in
  let a = Netlist.add_pi nl "a" in
  let inv = Netlist.add_gate nl Cell.Inv [| a |] in
  let ff = Netlist.add_gate nl Cell.Dff [| inv |] in
  (* No PO at all; ff unused downstream. *)
  ignore ff;
  let v = vec_of_string "10" in
  (* bit0 = a = 0...  layout: a then ff *)
  check "detected at scan capture" true
    (Fsim.detects_comb nl v { f_net = inv; f_stuck = false })

let test_fsim_fault_dropping_counts () =
  let nl = small_circuit () in
  let faults = Fault.all nl in
  let vectors =
    [
      vec_of_string "011" (* a=1 b=1 ff=0 *);
      vec_of_string "000";
      vec_of_string "001";
      vec_of_string "010";
      vec_of_string "100" (* ff=1: exercises ff/sa0 *);
    ]
  in
  let det = Fsim.run_comb nl ~vectors ~faults in
  (* Every fault in this tiny circuit is testable and this set is complete. *)
  check_int "all faults detected" (List.length faults) (List.length det)

let test_fsim_seq_needs_time () =
  (* Fault on logic feeding a flip-flop is visible at the PO only one cycle
     later: sequential fault sim must find it with a 2-cycle sequence. *)
  let nl = Netlist.create "seq" in
  let a = Netlist.add_pi nl "a" in
  let inv = Netlist.add_gate nl Cell.Inv [| a |] in
  let ff = Netlist.add_gate nl Cell.Dff [| inv |] in
  Netlist.add_po nl "q" ff;
  let fault : Fault.t = { f_net = inv; f_stuck = false } in
  let det1 = Fsim.run_seq nl ~inputs:[ vec_of_string "0" ] ~faults:[ fault ] in
  check "one cycle is not enough" true (det1 = []);
  let det2 =
    Fsim.run_seq nl ~inputs:[ vec_of_string "0"; vec_of_string "0" ] ~faults:[ fault ]
  in
  check "two cycles detect it" true (det2 <> [])

let test_fsim_seq_good_machine_unpolluted () =
  (* With more faults than one word batch, detection must be identical to
     simulating each fault alone. *)
  let nl = small_circuit () in
  let faults = Fault.all nl in
  let rng = Rng.create 3 in
  let inputs = List.init 6 (fun _ -> Rng.bitvec rng 2) in
  let batch = Fsim.run_seq nl ~inputs ~faults in
  List.iter
    (fun f ->
      let alone = Fsim.run_seq nl ~inputs ~faults:[ f ] <> [] in
      let inbatch = List.exists (Fault.equal f) batch in
      check "batched = isolated" true (alone = inbatch))
    faults

(* ------------------------------------------------------------------ *)
(* PODEM                                                              *)
(* ------------------------------------------------------------------ *)

let test_podem_finds_test () =
  let nl = small_circuit () in
  let g = Netlist.find_po nl "y" in
  (match Podem.generate nl { f_net = g; f_stuck = false } with
  | Podem.Test v -> check "generated vector detects" true
      (Fsim.detects_comb nl v { f_net = g; f_stuck = false })
  | _ -> Alcotest.fail "expected a test");
  match Podem.generate nl { f_net = g; f_stuck = true } with
  | Podem.Test v ->
      check "sa1 vector detects" true
        (Fsim.detects_comb nl v { f_net = g; f_stuck = true })
  | _ -> Alcotest.fail "expected a test for sa1"

let test_podem_redundant () =
  let nl, buf = redundant_circuit () in
  match Podem.generate nl { f_net = buf; f_stuck = true } with
  | Podem.Untestable -> ()
  | Podem.Test _ -> Alcotest.fail "redundant fault cannot have a test"
  | Podem.Aborted -> Alcotest.fail "tiny search space must not abort"

let test_podem_every_outcome_consistent () =
  (* On a random-ish structured circuit, every Test outcome must really
     detect its fault. *)
  let nl = Netlist.create "mix" in
  let a = Builder.input_word nl "a" 4 in
  let b = Builder.input_word nl "b" 4 in
  let zero = Netlist.add_gate nl Cell.Const0 [||] in
  let s, c = Builder.adder nl a b ~cin:zero in
  let sel = Netlist.add_pi nl "sel" in
  let m = Builder.mux2_word nl ~sel ~a:s ~b in
  Builder.output_word nl "y" m;
  Netlist.add_po nl "c" c;
  List.iter
    (fun f ->
      match Podem.generate nl f with
      | Podem.Test v ->
          check (Fault.name nl f ^ " vector works") true (Fsim.detects_comb nl v f)
      | Podem.Untestable | Podem.Aborted -> ())
    (Fault.collapse nl)

let test_podem_full_run_small () =
  let nl = small_circuit () in
  let stats = Podem.run ~random_patterns:4 nl in
  check "full coverage on trivial circuit" true (stats.Podem.coverage > 99.0);
  check "no aborts" true (stats.Podem.aborted = []);
  check "vectors detect everything" true
    (let det =
       Fsim.run_comb nl ~vectors:stats.Podem.vectors ~faults:(Fault.collapse nl)
     in
     List.length det = List.length stats.Podem.detected)

let test_podem_run_adder () =
  let nl = Netlist.create "a8" in
  let a = Builder.input_word nl "a" 8 in
  let b = Builder.input_word nl "b" 8 in
  let zero = Netlist.add_gate nl Cell.Const0 [||] in
  let s, c = Builder.adder nl a b ~cin:zero in
  Builder.output_word nl "s" s;
  Netlist.add_po nl "c" c;
  let stats = Podem.run nl in
  check "adder fully testable" true (stats.Podem.efficiency > 99.9);
  check "coverage high" true (stats.Podem.coverage > 99.0);
  check "test set nonempty" true (stats.Podem.vectors <> [])

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

let test_compact_drops_redundant_vectors () =
  let nl = small_circuit () in
  let faults = Fault.all nl in
  let base =
    [
      vec_of_string "011";
      vec_of_string "000";
      vec_of_string "001";
      vec_of_string "010";
      vec_of_string "100";
    ]
  in
  let padded = base @ base @ base in
  let compacted = Fsim.run_comb nl ~vectors:padded ~faults |> fun det ->
    check "padded set detects all" true (List.length det = List.length faults);
    Compact.reverse_order nl ~vectors:padded ~faults
  in
  check "compaction shrinks the set" true (List.length compacted <= List.length base + 1);
  let det = Fsim.run_comb nl ~vectors:compacted ~faults in
  check_int "compaction preserves coverage" (List.length faults) (List.length det)

let prop_compaction_preserves_coverage =
  QCheck.Test.make ~name:"compaction never loses coverage" ~count:30
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let nl = Netlist.create "p" in
      let a = Builder.input_word nl "a" 3 in
      let b = Builder.input_word nl "b" 3 in
      let x = Builder.xor_word nl a b in
      let o = Builder.or_word nl x a in
      Builder.output_word nl "y" o;
      let faults = Fault.collapse nl in
      let vectors = List.init 12 (fun _ -> Rng.bitvec rng 6) in
      let before = Fsim.run_comb nl ~vectors ~faults in
      let kept = Compact.reverse_order nl ~vectors ~faults in
      let after = Fsim.run_comb nl ~vectors:kept ~faults in
      List.length before = List.length after)

(* ------------------------------------------------------------------ *)
(* Sequential random TPG                                              *)
(* ------------------------------------------------------------------ *)

let test_seqgen_covers_combinational () =
  (* A purely combinational circuit is easy even for random sequences. *)
  let nl = Netlist.create "comb" in
  let a = Builder.input_word nl "a" 4 in
  let b = Builder.input_word nl "b" 4 in
  Builder.output_word nl "y" (Builder.xor_word nl a b);
  let stats = Seqgen.random ~cycles:64 nl in
  check "combinational circuit well covered" true (stats.Seqgen.coverage > 95.0)

let test_seqgen_poor_on_deep_state () =
  (* A long counter chain gated behind an equality check is hard for
     random patterns: coverage must be far from complete. *)
  let nl = Netlist.create "deep" in
  let a = Builder.input_word nl "a" 8 in
  let q = Builder.new_register nl ~name:"cnt" ~width:8 in
  let next = Builder.inc_word nl q in
  (* Only counts up when input matches the counter exactly. *)
  let en = Builder.eq_word nl a q in
  Builder.connect_register nl ~q ~d:next ~enable:en ();
  let top = Builder.eq_word nl q (Builder.const_word nl ~width:8 0xA5) in
  Netlist.add_po nl "hit" top;
  let stats = Seqgen.random ~cycles:128 nl in
  check "deep sequential poorly covered" true (stats.Seqgen.coverage < 60.0)


(* ------------------------------------------------------------------ *)
(* SCOAP                                                               *)
(* ------------------------------------------------------------------ *)

let test_scoap_basic_gates () =
  let nl = Netlist.create "s" in
  let a = Netlist.add_pi nl "a" in
  let b = Netlist.add_pi nl "b" in
  let g_and = Netlist.add_gate nl Cell.And2 [| a; b |] in
  let g_or = Netlist.add_gate nl Cell.Or2 [| a; b |] in
  Netlist.add_po nl "x" g_and;
  Netlist.add_po nl "y" g_or;
  let t = Scoap.compute nl in
  check_int "PI cc0" 1 t.Scoap.cc0.(a);
  check_int "PI cc1" 1 t.Scoap.cc1.(a);
  (* AND: 1 needs both inputs at 1; 0 needs either at 0. *)
  check_int "and cc1" 3 t.Scoap.cc1.(g_and);
  check_int "and cc0" 2 t.Scoap.cc0.(g_and);
  (* OR is the dual. *)
  check_int "or cc0" 3 t.Scoap.cc0.(g_or);
  check_int "or cc1" 2 t.Scoap.cc1.(g_or);
  (* PO nets are directly observable. *)
  check_int "po co" 0 t.Scoap.co.(g_and);
  (* Observing [a] through the AND needs b=1 (+1 level). *)
  check "input observable" true (t.Scoap.co.(a) <= 2)

let test_scoap_constants_uncontrollable () =
  let nl = Netlist.create "s" in
  let z = Netlist.add_gate nl Cell.Const0 [||] in
  Netlist.add_po nl "z" z;
  let t = Scoap.compute nl in
  check_int "const0 cc0" 0 t.Scoap.cc0.(z);
  check_int "const0 cc1 saturates" Scoap.infinity_cost t.Scoap.cc1.(z)

let test_scoap_deep_chain_costs_grow () =
  let nl = Netlist.create "s" in
  let a = Netlist.add_pi nl "a" in
  let rec chain net = function
    | 0 -> net
    | k -> chain (Netlist.add_gate nl Cell.And2 [| net; Netlist.add_pi nl (Printf.sprintf "p%d" k) |]) (k - 1)
  in
  let deep = chain a 6 in
  Netlist.add_po nl "y" deep;
  let t = Scoap.compute nl in
  check "deep cc1 grows" true (t.Scoap.cc1.(deep) > t.Scoap.cc1.(a));
  check "input far from po harder to observe" true (t.Scoap.co.(a) > t.Scoap.co.(deep))

let test_scoap_hardest_faults () =
  let nl = Netlist.create "s" in
  let a = Netlist.add_pi nl "a" in
  let b = Netlist.add_pi nl "b" in
  let g = Netlist.add_gate nl Cell.And2 [| a; b |] in
  Netlist.add_po nl "y" g;
  let t = Scoap.compute nl in
  let hard = Scoap.hardest_faults nl t 2 in
  check_int "asked for two" 2 (List.length hard);
  (* Costs are sorted descending. *)
  match hard with
  | (_, c1) :: (_, c2) :: _ -> check "sorted" true (c1 >= c2)
  | _ -> Alcotest.fail "expected two"

let test_scoap_guides_podem () =
  (* With SCOAP guidance PODEM must not lose coverage or efficiency. *)
  let core = Socet_cores.Gcd_core.core () in
  let nl = Socet_synth.Elaborate.core_to_netlist core in
  let with_scoap = Podem.run ~use_scoap:true ~random_patterns:16 nl in
  let without = Podem.run ~use_scoap:false ~random_patterns:16 nl in
  check "same coverage ballpark" true
    (abs_float (with_scoap.Podem.coverage -. without.Podem.coverage) < 3.0);
  check "guided efficiency at least as good" true
    (with_scoap.Podem.efficiency >= without.Podem.efficiency -. 0.001)

let scoap_tests =
  [
    Alcotest.test_case "basic gates" `Quick test_scoap_basic_gates;
    Alcotest.test_case "constants" `Quick test_scoap_constants_uncontrollable;
    Alcotest.test_case "deep chains" `Quick test_scoap_deep_chain_costs_grow;
    Alcotest.test_case "hardest faults" `Quick test_scoap_hardest_faults;
    Alcotest.test_case "guides podem" `Quick test_scoap_guides_podem;
  ]


(* ------------------------------------------------------------------ *)
(* D-algorithm                                                         *)
(* ------------------------------------------------------------------ *)

let adder_nl () =
  let nl = Netlist.create "a4" in
  let a = Builder.input_word nl "a" 4 in
  let b = Builder.input_word nl "b" 4 in
  let zero = Netlist.add_gate nl Cell.Const0 [||] in
  let s, c = Builder.adder nl a b ~cin:zero in
  Builder.output_word nl "s" s;
  Netlist.add_po nl "c" c;
  nl

let test_dalg_sound_on_adder () =
  let nl = adder_nl () in
  List.iter
    (fun f ->
      match Dalg.generate nl f with
      | Dalg.Test v ->
          check (Fault.name nl f ^ " vector detects") true (Fsim.detects_comb nl v f)
      | Dalg.Untestable ->
          (* Cross-check against PODEM: on this circuit the single-path
             restriction loses nothing. *)
          check (Fault.name nl f ^ " agreed untestable") true
            (match Podem.generate nl f with Podem.Test _ -> false | _ -> true)
      | Dalg.Aborted -> ())
    (Fault.collapse nl)

let test_dalg_const_faults () =
  (* A gate input tied to constant 1: output sa0 via the tied side is the
     classic redundancy — the D-algorithm must not invent a test. *)
  let nl, buf = redundant_circuit () in
  (match Dalg.generate nl { f_net = buf; f_stuck = true } with
  | Dalg.Untestable -> ()
  | Dalg.Test _ -> Alcotest.fail "redundant fault got a test"
  | Dalg.Aborted -> Alcotest.fail "tiny circuit aborted");
  (* And the testable polarity still gets one. *)
  match Dalg.generate nl { f_net = buf; f_stuck = false } with
  | Dalg.Test v ->
      check "sa0 vector detects" true
        (Fsim.detects_comb nl v { f_net = buf; f_stuck = false })
  | _ -> Alcotest.fail "expected a test"

let test_dalg_mux_circuit () =
  let nl = Netlist.create "m" in
  let s = Netlist.add_pi nl "s" in
  let a = Netlist.add_pi nl "a" in
  let b = Netlist.add_pi nl "b" in
  let m = Netlist.add_gate nl Cell.Mux2 [| s; a; b |] in
  Netlist.add_po nl "y" m;
  List.iter
    (fun f ->
      match Dalg.generate nl f with
      | Dalg.Test v -> check "mux test detects" true (Fsim.detects_comb nl v f)
      | Dalg.Untestable -> Alcotest.fail "all mux faults are testable"
      | Dalg.Aborted -> Alcotest.fail "mux aborted")
    (Fault.collapse nl)

let test_dalg_run_stats () =
  let nl = adder_nl () in
  let s = Dalg.run nl in
  check "full coverage on the adder" true (s.Dalg.coverage > 95.0);
  check_int "nothing aborted" 0 s.Dalg.aborted;
  (* Sampling processes fewer faults. *)
  let s2 = Dalg.run ~sample:4 nl in
  check "sampled subset" true (s2.Dalg.total < s.Dalg.total)

let dalg_tests =
  [
    Alcotest.test_case "sound on adder" `Quick test_dalg_sound_on_adder;
    Alcotest.test_case "constant redundancy" `Quick test_dalg_const_faults;
    Alcotest.test_case "mux circuit" `Quick test_dalg_mux_circuit;
    Alcotest.test_case "run stats" `Quick test_dalg_run_stats;
  ]


(* ------------------------------------------------------------------ *)
(* Diagnosis                                                           *)
(* ------------------------------------------------------------------ *)

let test_diagnosis_pinpoints_defect () =
  let nl = adder_nl () in
  let faults = Fault.collapse nl in
  let stats = Podem.run nl in
  let dict = Diagnose.build nl ~vectors:stats.Podem.vectors ~faults in
  (* Plant each of a few defects and check it ranks among the top
     candidates. *)
  List.iteri
    (fun i fault ->
      if i mod 9 = 0 then begin
        let observed = Diagnose.observe nl ~vectors:stats.Podem.vectors ~fault in
        let candidates = Diagnose.diagnose dict observed in
        check
          (Fault.name nl fault ^ " among exact candidates")
          true
          (List.exists (fun (f, d) -> d = 0 && Fault.equal f fault) candidates)
      end)
    faults

let test_diagnosis_resolution () =
  let nl = adder_nl () in
  let faults = Fault.collapse nl in
  let stats = Podem.run nl in
  (* A compacted detection set distinguishes few faults; padding it with
     random vectors (the classic diagnostic-test-set enlargement) raises
     the resolution substantially. *)
  let dict_small = Diagnose.build nl ~vectors:stats.Podem.vectors ~faults in
  let rng = Socet_util.Rng.create 5 in
  let extra =
    List.init 48 (fun _ -> Socet_util.Rng.bitvec rng (Fsim.vector_length nl))
  in
  let dict_big =
    Diagnose.build nl ~vectors:(stats.Podem.vectors @ extra) ~faults
  in
  check "enlarging the set helps" true
    (Diagnose.distinguishable dict_big > Diagnose.distinguishable dict_small);
  check "good resolution with the enlarged set" true
    (Diagnose.distinguishable dict_big > 50.0)

let test_diagnosis_near_match () =
  let nl = adder_nl () in
  let faults = Fault.collapse nl in
  let stats = Podem.run nl in
  let dict = Diagnose.build nl ~vectors:stats.Podem.vectors ~faults in
  (* A syndrome not in the dictionary (all vectors failing) still returns
     ranked candidates. *)
  let weird = Socet_util.Bitvec.create (List.length stats.Podem.vectors) in
  Socet_util.Bitvec.fill weird true;
  let candidates = Diagnose.diagnose dict weird in
  check "nonempty ranking" true (candidates <> []);
  match candidates with
  | (_, d1) :: (_, d2) :: _ -> check "sorted by distance" true (d1 <= d2)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Test points                                                         *)
(* ------------------------------------------------------------------ *)

(* A 12-input AND cone: random patterns almost never see its output
   change, so SCOAP flags it and a test point must lift coverage. *)
let and_cone () =
  let nl = Netlist.create "cone" in
  let ins = Builder.input_word nl "x" 12 in
  let out = Builder.reduce_and nl ins in
  (* A second, easy output keeps the netlist from being all-hard. *)
  let easy = Builder.reduce_or nl (Array.sub ins 0 2) in
  Netlist.add_po nl "hard" out;
  Netlist.add_po nl "easy" easy;
  nl

let test_testpoint_proposals () =
  let nl = and_cone () in
  let s = Scoap.compute nl in
  let points = Testpoint.propose nl s ~budget:3 in
  check_int "budget respected" 3 (List.length points);
  check "cost model positive" true (Testpoint.area_cost points > 0)

let test_testpoint_apply_observe () =
  let nl = and_cone () in
  let npo = List.length (Netlist.pos nl) in
  Testpoint.apply nl [ Testpoint.Observe (Netlist.find_po nl "hard") ];
  check_int "observation point adds a PO" (npo + 1) (List.length (Netlist.pos nl))

let test_testpoint_control_rewires () =
  let nl = and_cone () in
  let hard = Netlist.find_po nl "hard" in
  (* Control the first AND gate's output. *)
  let target = (Netlist.fanin nl hard).(0) in
  Testpoint.apply nl [ Testpoint.Control_one target ];
  check "ctl pin added" true
    (try ignore (Netlist.find_pi nl "tp_ctl.0"); true with Not_found -> false);
  (* The reader now goes through the inserted OR gate. *)
  check "reader rewired" true
    (Array.for_all (fun p -> p <> target) (Netlist.fanin nl hard)
    || (Netlist.fanin nl hard).(1) <> target)

let test_testpoint_coverage_gain () =
  let before, after = Testpoint.coverage_gain ~mk:and_cone ~budget:4 ~patterns:48 in
  check "insertion helps random patterns" true (after > before +. 5.0)

let diagnose_tp_tests =
  [
    Alcotest.test_case "pinpoints defects" `Quick test_diagnosis_pinpoints_defect;
    Alcotest.test_case "resolution" `Quick test_diagnosis_resolution;
    Alcotest.test_case "near match" `Quick test_diagnosis_near_match;
    Alcotest.test_case "proposals" `Quick test_testpoint_proposals;
    Alcotest.test_case "observe point" `Quick test_testpoint_apply_observe;
    Alcotest.test_case "control rewires" `Quick test_testpoint_control_rewires;
    Alcotest.test_case "coverage gain" `Quick test_testpoint_coverage_gain;
  ]

let () =
  Alcotest.run "socet_atpg"
    [
      ( "fault",
        [
          Alcotest.test_case "universe" `Quick test_fault_universe;
          Alcotest.test_case "collapse" `Quick test_fault_collapse;
          Alcotest.test_case "names" `Quick test_fault_name;
        ] );
      ( "fsim",
        [
          Alcotest.test_case "detects and faults" `Quick test_fsim_detects_and_sa0;
          Alcotest.test_case "pseudo-output observation" `Quick
            test_fsim_pseudo_output_observation;
          Alcotest.test_case "fault dropping" `Quick test_fsim_fault_dropping_counts;
          Alcotest.test_case "sequential needs time" `Quick test_fsim_seq_needs_time;
          Alcotest.test_case "fault-parallel batching" `Quick
            test_fsim_seq_good_machine_unpolluted;
        ] );
      ( "podem",
        [
          Alcotest.test_case "finds tests" `Quick test_podem_finds_test;
          Alcotest.test_case "proves redundancy" `Quick test_podem_redundant;
          Alcotest.test_case "tests really detect" `Quick
            test_podem_every_outcome_consistent;
          Alcotest.test_case "full run small" `Quick test_podem_full_run_small;
          Alcotest.test_case "full run adder" `Quick test_podem_run_adder;
        ] );
      ( "compact",
        [
          Alcotest.test_case "drops redundant vectors" `Quick
            test_compact_drops_redundant_vectors;
          QCheck_alcotest.to_alcotest prop_compaction_preserves_coverage;
        ] );
      ("scoap", scoap_tests);
      ("dalg", dalg_tests);
      ("diagnose+testpoints", diagnose_tp_tests);
      ( "seqgen",
        [
          Alcotest.test_case "combinational easy" `Quick test_seqgen_covers_combinational;
          Alcotest.test_case "deep state hard" `Quick test_seqgen_poor_on_deep_state;
        ] );
    ]
