test/test_graph.ml: Alcotest Array Digraph List QCheck QCheck_alcotest Search Socet_graph Socet_util
