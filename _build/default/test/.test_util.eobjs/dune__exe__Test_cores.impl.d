test/test_cores.ml: Alcotest Ccg Cpu Display Gcd_core Graphics List Preprocessor Rcg Rtl_core Soc Socet_atpg Socet_core Socet_cores Socet_rtl Socet_scan Socet_synth Systems Version X25
