test/test_scan.ml: Alcotest Bitvec Bscan Cell Fscan Hscan List Netlist Printf Rcg Rtl_core Rtl_types Sim Socet_cores Socet_graph Socet_netlist Socet_rtl Socet_scan Socet_util
