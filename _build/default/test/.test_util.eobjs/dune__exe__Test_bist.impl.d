test/test_bist.ml: Alcotest Lfsr List Logic_bist March Mem Misr Printf QCheck QCheck_alcotest Socet_atpg Socet_bist Socet_cores Socet_synth
