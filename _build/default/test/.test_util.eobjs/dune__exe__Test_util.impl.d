test/test_util.ml: Alcotest Ascii_table Bitvec Format Gen Interval_set List QCheck QCheck_alcotest Rng Socet_util String
