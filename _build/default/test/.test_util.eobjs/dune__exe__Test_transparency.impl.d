test/test_transparency.ml: Alcotest List Printf QCheck QCheck_alcotest Rcg Rtl_core Rtl_types Socet_core Socet_cores Socet_graph Socet_rtl Socet_scan Socet_util Tsearch Tsim Version
