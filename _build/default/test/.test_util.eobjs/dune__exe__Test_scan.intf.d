test/test_scan.mli:
