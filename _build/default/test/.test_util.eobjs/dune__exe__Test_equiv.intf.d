test/test_equiv.mli:
