test/test_equiv.ml: Alcotest Bitvec Elaborate Hashtbl List Netlist Printf QCheck QCheck_alcotest Rng Rtl_core Rtl_sim Rtl_types Sim Socet_cores Socet_netlist Socet_rtl Socet_synth Socet_util
