test/test_netlist.ml: Alcotest Array Bitvec Builder Cell List Netlist Printf QCheck QCheck_alcotest Rng Sim Socet_netlist Socet_util
