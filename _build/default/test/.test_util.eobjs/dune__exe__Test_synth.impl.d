test/test_synth.ml: Alcotest Area Array Bitvec Elaborate List Netlist Rtl_core Rtl_types Sim Socet_cores Socet_netlist Socet_rtl Socet_synth Socet_util
