test/test_rtl.ml: Alcotest List Rcg Rtl_core Rtl_types Socet_cores Socet_graph Socet_rtl Socet_scan
