test/test_bist.mli:
