test/test_transparency.mli:
