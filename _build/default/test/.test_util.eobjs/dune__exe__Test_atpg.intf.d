test/test_atpg.mli:
