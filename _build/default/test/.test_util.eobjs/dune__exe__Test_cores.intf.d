test/test_cores.mli:
