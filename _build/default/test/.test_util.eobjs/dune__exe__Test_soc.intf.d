test/test_soc.mli:
