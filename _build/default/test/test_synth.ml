open Socet_util
open Socet_rtl
open Socet_netlist
open Socet_synth

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_core () =
  let c = Rtl_core.create "tiny" in
  Rtl_core.add_input c "IN" 8;
  Rtl_core.add_output c "OUT" 8;
  Rtl_core.add_reg c "R" 8;
  Rtl_core.add_transfer c ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R") ();
  Rtl_core.add_transfer c ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R")
    ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  c

let test_elaborate_structure () =
  let nl = Elaborate.core_to_netlist (tiny_core ()) in
  check_int "PIs = input bits" 8 (List.length (Netlist.pis nl));
  check_int "POs = output bits" 8 (List.length (Netlist.pos nl));
  (* Flip-flops: 8 register bits + the control FSM state. *)
  check_int "FF count" (8 + Elaborate.control_state_width (tiny_core ()))
    (List.length (Netlist.dffs nl));
  check "area positive" true (Netlist.area nl > 0);
  (* Must be a legal DAG under the sequential convention. *)
  check_int "comb order covers all gates" (Netlist.gate_count nl)
    (Array.length (Netlist.comb_order nl))

(* Drive the control FSM state directly (full-scan style) and check that
   the selected transfer actually moves data: with _ctrl = k the k-th
   transfer's destination captures its source. *)
let test_elaborate_transfer_semantics () =
  let core = tiny_core () in
  let nl = Elaborate.core_to_netlist core in
  let nff = List.length (Netlist.dffs nl) in
  let sw = Elaborate.control_state_width core in
  (* State layout: R bits first (declaration order), then _ctrl. *)
  let state = Bitvec.create nff in
  (* Select transfer 0 (IN -> R): _ctrl = 0 and the opcode nibble of the
     first input must carry transfer 0's opcode (3). *)
  let pi = Bitvec.of_int ~width:8 0xA3 in
  let _po, state' = Sim.eval nl ~pi ~state in
  let r' = Bitvec.to_int (Bitvec.sub state' ~pos:0 ~len:8) in
  check_int "IN -> R transfer captured" 0xA3 r';
  (* A non-matching opcode must leave the register alone. *)
  let pi_bad = Bitvec.of_int ~width:8 0xA5 in
  let _po, state_bad = Sim.eval nl ~pi:pi_bad ~state in
  check_int "opcode mismatch holds" 0
    (Bitvec.to_int (Bitvec.sub state_bad ~pos:0 ~len:8));
  ignore sw

let test_elaborate_hold_semantics () =
  let core = tiny_core () in
  let nl = Elaborate.core_to_netlist core in
  let nff = List.length (Netlist.dffs nl) in
  (* Load R with 0x33 (opcode nibble 3 selects transfer 0), then set
     _ctrl to a non-selecting value: R holds. *)
  let state = Bitvec.create nff in
  let pi = Bitvec.of_int ~width:8 0x33 in
  let _, st1 = Sim.eval nl ~pi ~state in
  check_int "loaded" 0x33 (Bitvec.to_int (Bitvec.sub st1 ~pos:0 ~len:8));
  (* Force _ctrl to 2 (no transfer index 2 targets R... transfer 1 targets
     OUT).  Set control state bits directly. *)
  let st1 = Bitvec.copy st1 in
  Bitvec.set st1 8 false;
  Bitvec.set st1 9 true;
  (* _ctrl = 2 *)
  let pi0 = Bitvec.of_int ~width:8 0x00 in
  let _, st2 = Sim.eval nl ~pi:pi0 ~state:st1 in
  check_int "held with other control state" 0x33
    (Bitvec.to_int (Bitvec.sub st2 ~pos:0 ~len:8))

let test_elaborate_output_mux () =
  let core = tiny_core () in
  let nl = Elaborate.core_to_netlist core in
  let nff = List.length (Netlist.dffs nl) in
  (* OUT is driven directly by R (sole direct driver: no select needed). *)
  let state = Bitvec.create nff in
  for i = 0 to 7 do
    Bitvec.set state i ((0x5A lsr i) land 1 = 1)
  done;
  let po, _ = Sim.eval nl ~pi:(Bitvec.create 8) ~state in
  check_int "OUT mirrors R" 0x5A (Bitvec.to_int (Bitvec.sub po ~pos:0 ~len:8))

let test_elaborate_logic_units () =
  (* A core where R2 := R1 + IN through a functional unit. *)
  let c = Rtl_core.create "add" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  Rtl_core.add_reg c "R1" 4;
  Rtl_core.add_reg c "R2" 4;
  Rtl_core.add_transfer c ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R1") ();
  Rtl_core.add_transfer c
    ~kind:(Rtl_types.Logic (Rtl_types.Fadd (Rtl_core.reg c "R1")))
    ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R2") ();
  Rtl_core.add_transfer c ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R2")
    ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  let nl = Elaborate.core_to_netlist c in
  let nff = List.length (Netlist.dffs nl) in
  (* _ctrl = 1 selects the adder transfer, whose opcode is (5*1+3) = 8:
     IN must carry it, and IN is also the addend.  R1 preloaded with 3. *)
  let state = Bitvec.create nff in
  for i = 0 to 3 do
    Bitvec.set state i ((3 lsr i) land 1 = 1)
  done;
  Bitvec.set state 8 true;
  (* _ctrl bit 0 = 1 -> state 1 *)
  let pi = Bitvec.of_int ~width:4 8 in
  let _, st' = Sim.eval nl ~pi ~state in
  check_int "R2 = IN + R1" 11 (Bitvec.to_int (Bitvec.sub st' ~pos:4 ~len:4))

let test_elaborate_all_example_cores () =
  List.iter
    (fun core ->
      let nl = Elaborate.core_to_netlist core in
      check (Rtl_core.name core ^ " has gates") true (Netlist.gate_count nl > 50);
      check (Rtl_core.name core ^ " is acyclic") true
        (Array.length (Netlist.comb_order nl) = Netlist.gate_count nl))
    [
      Socet_cores.Cpu.core ();
      Socet_cores.Preprocessor.core ();
      Socet_cores.Display.core ();
      Socet_cores.Gcd_core.core ();
      Socet_cores.Graphics.core ();
      Socet_cores.X25.core ();
    ]

let test_area_helpers () =
  let nl = Elaborate.core_to_netlist (tiny_core ()) in
  check_int "area matches netlist" (Netlist.area nl) (Area.of_netlist nl);
  check "ff_count" true (Area.ff_count nl > 8);
  Alcotest.(check (float 0.01)) "percent" 12.5 (Area.overhead_percent ~base:8 ~extra:1)

let () =
  Alcotest.run "socet_synth"
    [
      ( "elaborate",
        [
          Alcotest.test_case "structure" `Quick test_elaborate_structure;
          Alcotest.test_case "transfer semantics" `Quick test_elaborate_transfer_semantics;
          Alcotest.test_case "hold semantics" `Quick test_elaborate_hold_semantics;
          Alcotest.test_case "output mux" `Quick test_elaborate_output_mux;
          Alcotest.test_case "functional units" `Quick test_elaborate_logic_units;
          Alcotest.test_case "all example cores" `Quick test_elaborate_all_example_cores;
        ] );
      ("area", [ Alcotest.test_case "helpers" `Quick test_area_helpers ]);
    ]
