open Socet_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Bitvec                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitvec_basic () =
  let v = Bitvec.create 10 in
  check_int "fresh length" 10 (Bitvec.length v);
  check "fresh is zero" true (Bitvec.is_zero v);
  Bitvec.set v 3 true;
  check "set bit reads back" true (Bitvec.get v 3);
  check "other bit clear" false (Bitvec.get v 4);
  Bitvec.set v 3 false;
  check "cleared bit" false (Bitvec.get v 3)

let test_bitvec_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "get out of range" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v 8));
  Alcotest.check_raises "negative index" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v (-1)))

let test_bitvec_string_roundtrip () =
  let s = "1011001110001111" in
  check_str "roundtrip" s (Bitvec.to_string (Bitvec.of_string s));
  let v = Bitvec.of_string "100" in
  check "bit0 of 100" false (Bitvec.get v 0);
  check "bit2 of 100" true (Bitvec.get v 2)

let test_bitvec_int_roundtrip () =
  for k = 0 to 255 do
    check_int "of_int/to_int" k (Bitvec.to_int (Bitvec.of_int ~width:8 k))
  done

let test_bitvec_logic () =
  let a = Bitvec.of_string "1100" and b = Bitvec.of_string "1010" in
  check_str "and" "1000" (Bitvec.to_string (Bitvec.logand a b));
  check_str "or" "1110" (Bitvec.to_string (Bitvec.logor a b));
  check_str "xor" "0110" (Bitvec.to_string (Bitvec.logxor a b));
  check_str "not" "0011" (Bitvec.to_string (Bitvec.lognot a))

let test_bitvec_popcount_fill () =
  let v = Bitvec.create 13 in
  Bitvec.fill v true;
  check_int "popcount after fill" 13 (Bitvec.popcount v);
  let w = Bitvec.create 13 in
  Bitvec.fill w true;
  check "fill respects length in equal" true (Bitvec.equal v w)

let test_bitvec_blit_concat () =
  let a = Bitvec.of_string "1111" and b = Bitvec.of_string "0000" in
  let c = Bitvec.concat [ a; b ] in
  check_str "concat puts first arg low" "00001111" (Bitvec.to_string c);
  check_str "sub high half" "0000" (Bitvec.to_string (Bitvec.sub c ~pos:4 ~len:4));
  let d = Bitvec.create 8 in
  Bitvec.blit ~src:a ~src_pos:0 ~dst:d ~dst_pos:2 ~len:4;
  check_str "blit into middle" "00111100" (Bitvec.to_string d)

let prop_bitvec_xor_involution =
  QCheck.Test.make ~name:"bitvec: (a xor b) xor b = a" ~count:200
    QCheck.(pair (list_of_size Gen.(0 -- 64) bool) (list_of_size Gen.(0 -- 64) bool))
    (fun (la, lb) ->
      let n = min (List.length la) (List.length lb) in
      QCheck.assume (n > 0);
      let mk l =
        let v = Bitvec.create n in
        List.iteri (fun i b -> if i < n then Bitvec.set v i b) l;
        v
      in
      let a = mk la and b = mk lb in
      Bitvec.equal (Bitvec.logxor (Bitvec.logxor a b) b) a)

let prop_bitvec_string_roundtrip =
  QCheck.Test.make ~name:"bitvec: of_string/to_string roundtrip" ~count:200
    QCheck.(string_gen_of_size Gen.(1 -- 100) (Gen.oneofl [ '0'; '1' ]))
    (fun s -> Bitvec.to_string (Bitvec.of_string s) = s)

(* ------------------------------------------------------------------ *)
(* Interval_set                                                       *)
(* ------------------------------------------------------------------ *)

let test_interval_add_merge () =
  let s = Interval_set.add Interval_set.empty ~lo:0 ~hi:5 in
  let s = Interval_set.add s ~lo:10 ~hi:12 in
  Alcotest.(check (list (pair int int)))
    "two disjoint" [ (0, 5); (10, 12) ] (Interval_set.intervals s);
  let s = Interval_set.add s ~lo:5 ~hi:10 in
  Alcotest.(check (list (pair int int)))
    "adjacent intervals merge" [ (0, 12) ] (Interval_set.intervals s)

let test_interval_mem_overlap () =
  let s = Interval_set.add Interval_set.empty ~lo:3 ~hi:7 in
  check "mem inside" true (Interval_set.mem s 3);
  check "hi is exclusive" false (Interval_set.mem s 7);
  check "overlaps straddle" true (Interval_set.overlaps s ~lo:6 ~hi:9);
  check "no overlap touching" false (Interval_set.overlaps s ~lo:7 ~hi:9);
  check "empty probe never overlaps" false (Interval_set.overlaps s ~lo:5 ~hi:5)

let test_interval_first_fit () =
  let s = Interval_set.add Interval_set.empty ~lo:2 ~hi:5 in
  let s = Interval_set.add s ~lo:7 ~hi:9 in
  check_int "fits before first" 0 (Interval_set.first_fit s ~earliest:0 ~len:2);
  check_int "fits in gap" 5 (Interval_set.first_fit s ~earliest:1 ~len:2);
  check_int "skips too-small gap" 9 (Interval_set.first_fit s ~earliest:1 ~len:3);
  check_int "after everything" 9 (Interval_set.first_fit s ~earliest:8 ~len:1);
  check_int "zero length fits anywhere" 3 (Interval_set.first_fit s ~earliest:3 ~len:0)

let test_interval_empty_add () =
  let s = Interval_set.add Interval_set.empty ~lo:4 ~hi:4 in
  check "adding empty interval is no-op" true (Interval_set.is_empty s)

let prop_interval_first_fit_is_free =
  QCheck.Test.make ~name:"interval: first_fit returns a free slot" ~count:300
    QCheck.(triple (small_list (pair small_nat small_nat)) small_nat small_nat)
    (fun (pairs, earliest, len) ->
      let len = len + 1 in
      let s =
        List.fold_left
          (fun s (a, b) -> Interval_set.add s ~lo:(min a b) ~hi:(max a b))
          Interval_set.empty pairs
      in
      let t = Interval_set.first_fit s ~earliest ~len in
      t >= earliest && not (Interval_set.overlaps s ~lo:t ~hi:(t + len)))

let prop_interval_total_reserved =
  QCheck.Test.make ~name:"interval: total equals point count" ~count:200
    QCheck.(small_list (pair (int_bound 50) (int_bound 50)))
    (fun pairs ->
      let s =
        List.fold_left
          (fun s (a, b) -> Interval_set.add s ~lo:(min a b) ~hi:(max a b))
          Interval_set.empty pairs
      in
      let by_points = ref 0 in
      for t = 0 to 120 do
        if Interval_set.mem s t then incr by_points
      done;
      Interval_set.total_reserved s = !by_points)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 20 do
    check "same seed, same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 99 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check "int in bounds" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_bitvec () =
  let r = Rng.create 5 in
  let v = Rng.bitvec r 256 in
  let pc = Bitvec.popcount v in
  check "random vector is roughly balanced" true (pc > 64 && pc < 192)

(* ------------------------------------------------------------------ *)
(* Ascii_table                                                        *)
(* ------------------------------------------------------------------ *)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

let test_table_render () =
  let s =
    Ascii_table.render ~header:[ "name"; "v" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  check "contains header" true (contains_substring s "name");
  check "contains cell" true (contains_substring s "22")

let test_table_alignment () =
  let s = Ascii_table.render ~header:[ "h" ] [ [ "xyz" ] ] in
  (* Every line has the same width. *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  match widths with
  | [] -> Alcotest.fail "no output"
  | w :: rest -> List.iter (fun w' -> check_int "line widths equal" w w') rest


let test_bitvec_iteri_pp () =
  let v = Bitvec.of_string "101" in
  let seen = ref [] in
  Bitvec.iteri (fun i b -> seen := (i, b) :: !seen) v;
  Alcotest.(check (list (pair int bool)))
    "iteri order" [ (0, true); (1, false); (2, true) ] (List.rev !seen);
  check_str "pp prints msb first" "101" (Format.asprintf "%a" Bitvec.pp v)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* The split stream differs from the parent's continuation. *)
  check "split differs" true (Rng.int64 a <> Rng.int64 b)

let test_interval_pp () =
  let s = Interval_set.add (Interval_set.add Interval_set.empty ~lo:1 ~hi:3) ~lo:7 ~hi:9 in
  check_str "pp" "[1,3) [7,9)" (Format.asprintf "%a" Interval_set.pp s)

let () =
  Alcotest.run "socet_util"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basic set/get" `Quick test_bitvec_basic;
          Alcotest.test_case "bounds checking" `Quick test_bitvec_bounds;
          Alcotest.test_case "string roundtrip" `Quick test_bitvec_string_roundtrip;
          Alcotest.test_case "int roundtrip" `Quick test_bitvec_int_roundtrip;
          Alcotest.test_case "logic ops" `Quick test_bitvec_logic;
          Alcotest.test_case "popcount/fill" `Quick test_bitvec_popcount_fill;
          Alcotest.test_case "blit/concat/sub" `Quick test_bitvec_blit_concat;
          QCheck_alcotest.to_alcotest prop_bitvec_xor_involution;
          QCheck_alcotest.to_alcotest prop_bitvec_string_roundtrip;
        ] );
      ( "interval_set",
        [
          Alcotest.test_case "add and merge" `Quick test_interval_add_merge;
          Alcotest.test_case "mem/overlaps" `Quick test_interval_mem_overlap;
          Alcotest.test_case "first_fit" `Quick test_interval_first_fit;
          Alcotest.test_case "empty add" `Quick test_interval_empty_add;
          QCheck_alcotest.to_alcotest prop_interval_first_fit_is_free;
          QCheck_alcotest.to_alcotest prop_interval_total_reserved;
        ] );
      ( "extras",
        [
          Alcotest.test_case "bitvec iteri/pp" `Quick test_bitvec_iteri_pp;
          Alcotest.test_case "rng split" `Quick test_rng_split_independent;
          Alcotest.test_case "interval pp" `Quick test_interval_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bitvec balance" `Quick test_rng_bitvec;
        ] );
      ( "ascii_table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
        ] );
    ]
