open Socet_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let any _ = true

(* A small diamond with a tail:  0 -> 1 -> 3 -> 4,  0 -> 2 -> 3. *)
let diamond () =
  let g = Digraph.create () in
  let n () = Digraph.add_node g in
  let v0 = n () and v1 = n () and v2 = n () and v3 = n () and v4 = n () in
  let e a b = ignore (Digraph.add_edge g ~src:a ~dst:b ()) in
  e v0 v1;
  e v0 v2;
  e v1 v3;
  e v2 v3;
  e v3 v4;
  (g, v0, v1, v2, v3, v4)

let test_digraph_basic () =
  let g, v0, v1, _, v3, _ = diamond () in
  check_int "node count" 5 (Digraph.node_count g);
  check_int "edge count" 5 (Digraph.edge_count g);
  check_int "succ of 0" 2 (List.length (Digraph.succ g v0));
  check_int "pred of 3" 2 (List.length (Digraph.pred g v3));
  check "find existing edge" true (Digraph.find_edge g ~src:v0 ~dst:v1 <> None);
  check "find missing edge" true (Digraph.find_edge g ~src:v1 ~dst:v0 = None)

let test_digraph_edge_ids_dense () =
  let g, _, _, _, _, _ = diamond () in
  let ids = List.map (fun (e : _ Digraph.edge) -> e.id) (Digraph.edges g) in
  Alcotest.(check (list int)) "dense ids in insertion order" [ 0; 1; 2; 3; 4 ] ids

let test_digraph_reverse () =
  let g, v0, _, _, _, v4 = diamond () in
  let r = Digraph.reverse g in
  check_int "reverse preserves nodes" 5 (Digraph.node_count r);
  check "forward path exists" true
    (Search.bfs_path g ~start:v0 ~is_goal:(fun v -> v = v4) ~follow:any <> None);
  check "reverse path exists" true
    (Search.bfs_path r ~start:v4 ~is_goal:(fun v -> v = v0) ~follow:any <> None)

let test_bfs_order () =
  let g, v0, _, _, _, _ = diamond () in
  let order = Search.bfs_order g ~start:v0 ~follow:any in
  check_int "visits all" 5 (List.length order);
  Alcotest.(check int) "starts at source" v0 (List.hd order)

let test_bfs_path_shortest () =
  let g = Digraph.create () in
  let n () = Digraph.add_node g in
  let a = n () and b = n () and c = n () and d = n () in
  let e x y = ignore (Digraph.add_edge g ~src:x ~dst:y ()) in
  (* Long way a->b->c->d, shortcut a->d. *)
  e a b;
  e b c;
  e c d;
  e a d;
  match Search.bfs_path g ~start:a ~is_goal:(fun v -> v = d) ~follow:any with
  | None -> Alcotest.fail "path not found"
  | Some p -> check_int "takes the shortcut" 1 (List.length p)

let test_bfs_follow_filter () =
  let g = Digraph.create () in
  let a = Digraph.add_node g and b = Digraph.add_node g in
  ignore (Digraph.add_edge g ~src:a ~dst:b "blocked");
  check "filtered edge not followed" true
    (Search.bfs_path g ~start:a ~is_goal:(fun v -> v = b)
       ~follow:(fun e -> e.label <> "blocked")
    = None)

let test_reachable () =
  let g, v0, _, _, _, v4 = diamond () in
  let extra = Digraph.add_node g in
  let r = Search.reachable g ~start:v0 ~follow:any in
  check "reaches sink" true r.(v4);
  check "does not reach isolated node" false r.(extra)

let test_topological () =
  let g, _, _, _, _, _ = diamond () in
  (match Search.topological g with
  | None -> Alcotest.fail "diamond is acyclic"
  | Some order ->
      let pos = Array.make (Digraph.node_count g) 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.iter
        (fun (e : _ Digraph.edge) ->
          check "topological order respects edges" true (pos.(e.src) < pos.(e.dst)))
        (Digraph.edges g));
  (* A cycle has no topological order. *)
  let c = Digraph.create () in
  let a = Digraph.add_node c and b = Digraph.add_node c in
  ignore (Digraph.add_edge c ~src:a ~dst:b ());
  ignore (Digraph.add_edge c ~src:b ~dst:a ());
  check "cycle detected" true (Search.topological c = None)

let test_scc () =
  let g = Digraph.create () in
  let n () = Digraph.add_node g in
  let a = n () and b = n () and c = n () and d = n () in
  let e x y = ignore (Digraph.add_edge g ~src:x ~dst:y ()) in
  e a b;
  e b a;
  e b c;
  e c d;
  let comps = Search.scc g in
  check_int "three components" 3 (List.length comps);
  let ab = List.find (fun comp -> List.mem a comp) comps in
  check "a and b share a component" true (List.mem b ab)

let test_dijkstra_plain_shortest () =
  let g = Digraph.create () in
  let n () = Digraph.add_node g in
  let a = n () and b = n () and c = n () in
  let _e1 = Digraph.add_edge g ~src:a ~dst:b 10 in
  let _e2 = Digraph.add_edge g ~src:a ~dst:c 1 in
  let _e3 = Digraph.add_edge g ~src:c ~dst:b 2 in
  match
    Search.dijkstra_timed g ~sources:[ (a, 0) ]
      ~is_goal:(fun v -> v = b)
      ~latency:(fun e -> e.label)
      ~earliest_departure:(fun _ t -> t)
  with
  | None -> Alcotest.fail "no path"
  | Some tp ->
      check_int "indirect route is cheaper" 3 tp.arrival;
      check_int "two hops" 2 (List.length tp.path_edges)

let test_dijkstra_timed_waits () =
  (* One edge, busy during [0, 4): departure must wait. *)
  let g = Digraph.create () in
  let a = Digraph.add_node g and b = Digraph.add_node g in
  ignore (Digraph.add_edge g ~src:a ~dst:b 2);
  match
    Search.dijkstra_timed g ~sources:[ (a, 0) ]
      ~is_goal:(fun v -> v = b)
      ~latency:(fun e -> e.label)
      ~earliest_departure:(fun _ t -> max t 4)
  with
  | None -> Alcotest.fail "no path"
  | Some tp ->
      check_int "waits for the edge" 6 tp.arrival;
      Alcotest.(check (list int)) "departure recorded" [ 4 ] tp.departures

let test_dijkstra_multi_source () =
  let g = Digraph.create () in
  let n () = Digraph.add_node g in
  let a = n () and b = n () and goal = n () in
  ignore (Digraph.add_edge g ~src:a ~dst:goal 10);
  ignore (Digraph.add_edge g ~src:b ~dst:goal 1);
  match
    Search.dijkstra_timed g ~sources:[ (a, 0); (b, 3) ]
      ~is_goal:(fun v -> v = goal)
      ~latency:(fun e -> e.label)
      ~earliest_departure:(fun _ t -> t)
  with
  | None -> Alcotest.fail "no path"
  | Some tp -> check_int "picks the later but cheaper source" 4 tp.arrival

let test_dijkstra_unreachable () =
  let g = Digraph.create () in
  let a = Digraph.add_node g and b = Digraph.add_node g in
  ignore b;
  check "unreachable returns None" true
    (Search.dijkstra_timed g ~sources:[ (a, 0) ]
       ~is_goal:(fun v -> v = b)
       ~latency:(fun _ -> 1)
       ~earliest_departure:(fun _ t -> t)
    = None)

(* Random-DAG property: timed dijkstra with identity departure equals
   plain shortest path computed by Bellman-Ford. *)
let prop_dijkstra_matches_bellman_ford =
  QCheck.Test.make ~name:"dijkstra = bellman-ford on random DAGs" ~count:100
    QCheck.(pair (int_bound 1000) (int_range 2 12))
    (fun (seed, nodes) ->
      let rng = Socet_util.Rng.create seed in
      let g = Digraph.create () in
      for _ = 1 to nodes do
        ignore (Digraph.add_node g)
      done;
      (* Edges only forward: guarantees a DAG. *)
      for src = 0 to nodes - 2 do
        let count = 1 + Socet_util.Rng.int rng 3 in
        for _ = 1 to count do
          let dst = src + 1 + Socet_util.Rng.int rng (nodes - src - 1) in
          ignore (Digraph.add_edge g ~src ~dst (1 + Socet_util.Rng.int rng 9))
        done
      done;
      let goal = nodes - 1 in
      (* Bellman-Ford. *)
      let dist = Array.make nodes max_int in
      dist.(0) <- 0;
      for _ = 1 to nodes do
        List.iter
          (fun (e : int Digraph.edge) ->
            if dist.(e.src) < max_int then
              dist.(e.dst) <- min dist.(e.dst) (dist.(e.src) + e.label))
          (Digraph.edges g)
      done;
      let expected = dist.(goal) in
      match
        Search.dijkstra_timed g ~sources:[ (0, 0) ]
          ~is_goal:(fun v -> v = goal)
          ~latency:(fun e -> e.label)
          ~earliest_departure:(fun _ t -> t)
      with
      | None -> expected = max_int
      | Some tp -> tp.arrival = expected)


let test_map_labels_and_edge_by_id () =
  let g = Digraph.create () in
  let a = Digraph.add_node g and b = Digraph.add_node g in
  let e = Digraph.add_edge g ~src:a ~dst:b 41 in
  let h = Digraph.map_labels (fun x -> x + 1) g in
  (match Digraph.succ h a with
  | [ e' ] -> check_int "label mapped" 42 e'.Digraph.label
  | _ -> Alcotest.fail "one edge expected");
  check_int "edge_by_id finds it" 41 (Digraph.edge_by_id g e.Digraph.id).Digraph.label;
  (* Reverse preserves labels and flips direction. *)
  let r = Digraph.reverse g in
  check "reversed edge" true (Digraph.find_edge r ~src:b ~dst:a <> None)

let () =
  Alcotest.run "socet_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "edge ids dense" `Quick test_digraph_edge_ids_dense;
          Alcotest.test_case "reverse" `Quick test_digraph_reverse;
        ] );
      ( "labels",
        [ Alcotest.test_case "map/reverse/by-id" `Quick test_map_labels_and_edge_by_id ] );
      ( "search",
        [
          Alcotest.test_case "bfs order" `Quick test_bfs_order;
          Alcotest.test_case "bfs shortest" `Quick test_bfs_path_shortest;
          Alcotest.test_case "bfs follow filter" `Quick test_bfs_follow_filter;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "topological" `Quick test_topological;
          Alcotest.test_case "scc" `Quick test_scc;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "plain shortest" `Quick test_dijkstra_plain_shortest;
          Alcotest.test_case "waits on busy edge" `Quick test_dijkstra_timed_waits;
          Alcotest.test_case "multi source" `Quick test_dijkstra_multi_source;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          QCheck_alcotest.to_alcotest prop_dijkstra_matches_bellman_ford;
        ] );
    ]
