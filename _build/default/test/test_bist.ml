open Socet_bist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* LFSR                                                                *)
(* ------------------------------------------------------------------ *)

let test_lfsr_maximal_period () =
  List.iter
    (fun w ->
      check_int
        (Printf.sprintf "width %d is maximal" w)
        ((1 lsl w) - 1)
        (Lfsr.period w))
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let test_lfsr_deterministic () =
  let a = Lfsr.create 8 and b = Lfsr.create 8 in
  for _ = 1 to 100 do
    check "same seed, same stream" true (Lfsr.step a = Lfsr.step b)
  done

let test_lfsr_zero_seed_rejected () =
  check "zero seed rejected" true
    (try
       ignore (Lfsr.create ~seed:0 8);
       false
     with Invalid_argument _ -> true)

let test_lfsr_pattern_bits () =
  let t = Lfsr.create 8 in
  let p = Lfsr.pattern t ~bits:16 in
  check "pattern fits" true (p >= 0 && p < 1 lsl 16)

let test_lfsr_nonzero_states () =
  (* A maximal LFSR never reaches zero. *)
  let t = Lfsr.create 6 in
  for _ = 1 to 200 do
    check "state nonzero" true (Lfsr.step t <> 0)
  done

(* ------------------------------------------------------------------ *)
(* MISR                                                                *)
(* ------------------------------------------------------------------ *)

let test_misr_distinguishes_streams () =
  let s1 = Misr.of_stream ~width:16 [ 1; 2; 3; 4; 5 ] in
  let s2 = Misr.of_stream ~width:16 [ 1; 2; 3; 4; 6 ] in
  let s3 = Misr.of_stream ~width:16 [ 2; 1; 3; 4; 5 ] in
  check "single-bit difference changes signature" true (s1 <> s2);
  check "order matters" true (s1 <> s3)

let test_misr_reset () =
  let m = Misr.create 8 in
  Misr.absorb m 0xAB;
  Misr.reset m;
  check_int "reset clears" 0 (Misr.signature m)

let prop_misr_linear =
  (* MISRs are linear: sig(a xor b) = sig(a) xor sig(b) over equal-length
     streams (with zero initial state). *)
  QCheck.Test.make ~name:"misr linearity" ~count:200
    QCheck.(pair (list_of_size QCheck.Gen.(1 -- 20) (int_bound 255))
              (list_of_size QCheck.Gen.(1 -- 20) (int_bound 255)))
    (fun (a, b) ->
      let n = min (List.length a) (List.length b) in
      QCheck.assume (n > 0);
      let a = List.filteri (fun i _ -> i < n) a in
      let b = List.filteri (fun i _ -> i < n) b in
      let x = List.map2 ( lxor ) a b in
      Misr.of_stream ~width:12 x
      = Misr.of_stream ~width:12 a lxor Misr.of_stream ~width:12 b)

(* ------------------------------------------------------------------ *)
(* Memory model                                                        *)
(* ------------------------------------------------------------------ *)

let test_mem_good_readback () =
  let m = Mem.create ~words:16 ~width:8 () in
  Mem.write m 3 0xA5;
  check_int "readback" 0xA5 (Mem.read m 3);
  check_int "others untouched" 0 (Mem.read m 4)

let test_mem_saf () =
  let m = Mem.create ~fault:(Mem.Cell_saf { addr = 2; bit = 0; stuck = true }) ~words:8 ~width:4 () in
  Mem.write m 2 0;
  check_int "bit stuck at 1" 1 (Mem.read m 2)

let test_mem_transition () =
  let m =
    Mem.create ~fault:(Mem.Transition { addr = 1; bit = 2; rising = true })
      ~words:8 ~width:4 ()
  in
  Mem.write m 1 0b0100;
  check_int "rising transition blocked" 0 (Mem.read m 1);
  (* Falling direction still works: preload via the fault-free path. *)
  let m2 =
    Mem.create ~fault:(Mem.Transition { addr = 1; bit = 2; rising = false })
      ~words:8 ~width:4 ()
  in
  Mem.write m2 1 0b0100;
  check_int "rising ok under falling fault" 0b0100 (Mem.read m2 1);
  Mem.write m2 1 0;
  check_int "falling blocked" 0b0100 (Mem.read m2 1)

let test_mem_coupling () =
  let m =
    Mem.create
      ~fault:(Mem.Coupling { aggressor = 0; victim = 1; bit = 1; value = true })
      ~words:4 ~width:4 ()
  in
  Mem.write m 1 0;
  Mem.write m 0 0b0010;
  check_int "victim disturbed" 0b0010 (Mem.read m 1)

let test_mem_decoder_alias () =
  let m = Mem.create ~fault:(Mem.Decoder_alias { a = 0; b = 3 }) ~words:4 ~width:4 () in
  Mem.write m 0 0xF;
  (* The write landed on cell 3: address 3 sees it too. *)
  check_int "aliased readback" 0xF (Mem.read m 3);
  Mem.write m 3 0x1;
  check_int "collision visible at address 0" 0x1 (Mem.read m 0)

(* ------------------------------------------------------------------ *)
(* March tests                                                         *)
(* ------------------------------------------------------------------ *)

let test_march_passes_good_memory () =
  let m = Mem.create ~words:32 ~width:8 () in
  check "March C- passes a good memory" true (March.run m March.march_c_minus);
  let m2 = Mem.create ~words:32 ~width:8 () in
  check "MATS+ passes a good memory" true (March.run m2 March.mats_plus)

let test_march_c_minus_full_coverage () =
  let r = March.evaluate ~words:16 ~width:4 ~name:"March C-" March.march_c_minus in
  Alcotest.(check (float 0.01)) "March C- catches everything" 100.0 r.March.coverage;
  check_int "10N operations" (10 * 16) r.March.ops

let test_mats_plus_weaker () =
  let c = March.evaluate ~words:16 ~width:4 ~name:"March C-" March.march_c_minus in
  let m = March.evaluate ~words:16 ~width:4 ~name:"MATS+" March.mats_plus in
  check "MATS+ cheaper" true (m.March.ops < c.March.ops);
  check "MATS+ weaker" true (m.March.coverage < c.March.coverage);
  (* But MATS+ still catches all stuck-at faults. *)
  let saf_d, saf_t =
    match List.assoc_opt "stuck-at" (List.map (fun (c, d, t) -> (c, (d, t))) m.March.by_class) with
    | Some x -> x
    | None -> (0, 1)
  in
  check_int "MATS+ catches all SAFs" saf_t saf_d

let test_bist_area_model () =
  let small = March.bist_area ~words:256 ~width:8 in
  let large = March.bist_area ~words:4096 ~width:8 in
  check "area grows with address width" true (large > small);
  check "plausible magnitude" true (small > 50 && small < 500)

(* ------------------------------------------------------------------ *)
(* Logic BIST                                                          *)
(* ------------------------------------------------------------------ *)

let test_logic_bist_on_core () =
  let nl = Socet_synth.Elaborate.core_to_netlist (Socet_cores.Gcd_core.core ()) in
  let r = Logic_bist.run ~patterns:512 nl in
  check "pseudo-random coverage substantial" true (r.Logic_bist.coverage > 60.0);
  let atpg = Socet_atpg.Podem.run nl in
  check "deterministic ATPG at least as good" true
    (atpg.Socet_atpg.Podem.coverage >= r.Logic_bist.coverage -. 0.001);
  check "aliasing rare" true (r.Logic_bist.aliased * 4 <= r.Logic_bist.aliasing_sampled)

let test_logic_bist_deterministic () =
  let nl = Socet_synth.Elaborate.core_to_netlist (Socet_cores.X25.core ()) in
  let a = Logic_bist.run ~patterns:128 nl in
  let b = Logic_bist.run ~patterns:128 nl in
  check_int "same signature across runs" a.Logic_bist.golden_signature
    b.Logic_bist.golden_signature

let () =
  Alcotest.run "socet_bist"
    [
      ( "lfsr",
        [
          Alcotest.test_case "maximal periods" `Quick test_lfsr_maximal_period;
          Alcotest.test_case "deterministic" `Quick test_lfsr_deterministic;
          Alcotest.test_case "zero seed" `Quick test_lfsr_zero_seed_rejected;
          Alcotest.test_case "pattern bits" `Quick test_lfsr_pattern_bits;
          Alcotest.test_case "nonzero states" `Quick test_lfsr_nonzero_states;
        ] );
      ( "misr",
        [
          Alcotest.test_case "distinguishes streams" `Quick test_misr_distinguishes_streams;
          Alcotest.test_case "reset" `Quick test_misr_reset;
          QCheck_alcotest.to_alcotest prop_misr_linear;
        ] );
      ( "mem",
        [
          Alcotest.test_case "good readback" `Quick test_mem_good_readback;
          Alcotest.test_case "stuck-at" `Quick test_mem_saf;
          Alcotest.test_case "transition" `Quick test_mem_transition;
          Alcotest.test_case "coupling" `Quick test_mem_coupling;
          Alcotest.test_case "decoder alias" `Quick test_mem_decoder_alias;
        ] );
      ( "march",
        [
          Alcotest.test_case "good memory passes" `Quick test_march_passes_good_memory;
          Alcotest.test_case "March C- full coverage" `Quick test_march_c_minus_full_coverage;
          Alcotest.test_case "MATS+ weaker but cheaper" `Quick test_mats_plus_weaker;
          Alcotest.test_case "BIST area model" `Quick test_bist_area_model;
        ] );
      ( "logic-bist",
        [
          Alcotest.test_case "coverage on a core" `Quick test_logic_bist_on_core;
          Alcotest.test_case "deterministic" `Quick test_logic_bist_deterministic;
        ] );
    ]
