open Socet_util
open Socet_rtl
open Socet_netlist
open Socet_scan

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* FSCAN                                                               *)
(* ------------------------------------------------------------------ *)

let pipeline_netlist n =
  let nl = Netlist.create "pipe" in
  let d = Netlist.add_pi nl "d" in
  let prev = ref d in
  for i = 1 to n do
    prev := Netlist.add_gate nl ~name:(Printf.sprintf "ff%d" i) Cell.Dff [| !prev |]
  done;
  Netlist.add_po nl "q" !prev;
  nl

let test_fscan_overhead () =
  let nl = pipeline_netlist 5 in
  check_int "upgrade cost" (5 * Cell.scan_upgrade_area Cell.Dff) (Fscan.overhead nl)

let test_fscan_insert_upgrades_all () =
  let nl = pipeline_netlist 4 in
  let r = Fscan.insert nl in
  check_int "chain covers all ffs" 4 (List.length r.Fscan.chain);
  List.iter
    (fun ff -> check "scan kind" true (Cell.is_scan (Netlist.kind nl ff)))
    (Netlist.dffs nl);
  check "scan_out PO added" true
    (List.exists (fun (n, _) -> n = "scan_out") (Netlist.pos nl))

(* Shift a pattern through the inserted chain and read it on scan_out. *)
let test_fscan_chain_shifts () =
  let nl = pipeline_netlist 3 in
  let _ = Fscan.insert nl in
  (* PI order: d, scan_in, scan_en. *)
  let shift_in bit st =
    let pi = Bitvec.create 3 in
    Bitvec.set pi 1 bit;
    Bitvec.set pi 2 true;
    let _, st' = Sim.eval nl ~pi ~state:st in
    st'
  in
  let st = Sim.initial_state nl in
  let st = shift_in true st in
  let st = shift_in false st in
  let st = shift_in true st in
  (* After shifting 1,0,1 the chain (ff1 ff2 ff3) holds 1,0,1 with ff3
     holding the first bit shifted. *)
  Alcotest.(check string) "chain contents" "101" (Bitvec.to_string st)

let test_fscan_test_time_formula () =
  check_int "formula" ((10 + 1) * 5 + 10) (Fscan.test_time ~n_ff:10 ~n_vectors:5)

(* ------------------------------------------------------------------ *)
(* BSCAN                                                               *)
(* ------------------------------------------------------------------ *)

let test_bscan_paper_display_number () =
  (* Paper Sec. 3: (66 + 20) x 105 + (66 + 20) - 1 = 9,115 cycles. *)
  check_int "paper worked example" 9115
    (Bscan.test_time ~n_ff:66 ~n_inputs:20 ~n_vectors:105)

let test_bscan_ring_overhead () =
  let c = Rtl_core.create "r" in
  Rtl_core.add_input c "A" 8;
  Rtl_core.add_output c "B" 4;
  check_int "ring = cells x port bits" (12 * Bscan.cell_area) (Bscan.ring_overhead c)

(* ------------------------------------------------------------------ *)
(* HSCAN                                                               *)
(* ------------------------------------------------------------------ *)

let linear_core () =
  let c = Rtl_core.create "lin" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  Rtl_core.add_reg c "R1" 4;
  Rtl_core.add_reg c "R2" 4;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R1") ();
  t ~src:(Rtl_core.reg c "R1") ~dst:(Rtl_core.reg c "R2") ();
  t ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R2") ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  c

let test_hscan_linear_chain () =
  let rcg = Rcg.of_core (linear_core ()) in
  let r = Hscan.insert rcg in
  check_int "depth" 2 r.Hscan.depth;
  check_int "no test muxes" 0 (List.length r.Hscan.added);
  (* 2 (enable) + 2 per register (chain control) + two mux reuses (2
     each) + one direct termination (1). *)
  check_int "overhead" 11 r.Hscan.overhead_cells;
  check_int "one chain" 1 (List.length r.Hscan.chains);
  check_int "multiplier" 3 (Hscan.vector_multiplier r);
  check_int "vector count" 30 (Hscan.vector_count r ~atpg_vectors:10)

let test_hscan_unreachable_reg_gets_mux () =
  (* R2 has no structural feed: a test mux from an input must appear. *)
  let c = Rtl_core.create "orphan" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  Rtl_core.add_reg c "R1" 4;
  Rtl_core.add_reg c "R2" 4;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R1") ();
  t ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R1") ~dst:(Rtl_core.port c "OUT") ();
  t ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R2") ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  let rcg = Rcg.of_core c in
  let r = Hscan.insert rcg in
  check_int "one added mux" 1 (List.length r.Hscan.added);
  check "added mux feeds R2" true
    (List.exists
       (fun a -> (Rcg.node rcg a.Hscan.ae_dst).Rcg.n_name = "R2")
       r.Hscan.added)

let test_hscan_dead_end_reg_gets_observation () =
  (* R2 receives data but reaches no output: an observation mux must be
     added from R2 to an output. *)
  let c = Rtl_core.create "deadend" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  Rtl_core.add_reg c "R1" 4;
  Rtl_core.add_reg c "R2" 4;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R1") ();
  t ~src:(Rtl_core.reg c "R1") ~dst:(Rtl_core.reg c "R2") ();
  t ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R1") ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  let rcg = Rcg.of_core c in
  let r = Hscan.insert rcg in
  check_int "one added mux" 1 (List.length r.Hscan.added);
  check "added mux observes R2" true
    (List.exists
       (fun a -> (Rcg.node rcg a.Hscan.ae_src).Rcg.n_name = "R2")
       r.Hscan.added)

let test_hscan_every_register_covered () =
  List.iter
    (fun core ->
      let rcg = Rcg.of_core core in
      let _ = Hscan.insert rcg in
      (* Every register node must have a marked in-edge (chain feed). *)
      List.iter
        (fun reg ->
          let fed =
            List.exists
              (fun (e : Rcg.edge_label Socet_graph.Digraph.edge) ->
                e.label.Rcg.e_hscan)
              (Socet_graph.Digraph.pred (Rcg.graph rcg) reg)
          in
          check
            (Printf.sprintf "%s: register %s fed" (Rtl_core.name core)
               (Rcg.node rcg reg).Rcg.n_name)
            true fed)
        (Rcg.reg_ids rcg))
    [
      Socet_cores.Cpu.core ();
      Socet_cores.Preprocessor.core ();
      Socet_cores.Display.core ();
      Socet_cores.Gcd_core.core ();
      Socet_cores.Graphics.core ();
      Socet_cores.X25.core ();
    ]

let test_hscan_cpu_depth_and_chains () =
  let rcg = Rcg.of_core (Socet_cores.Cpu.core ()) in
  let r = Hscan.insert rcg in
  check_int "CPU chain depth" 6 r.Hscan.depth;
  check_int "no test muxes needed" 0 (List.length r.Hscan.added);
  (* The long chain of Fig. 4(a): Data through IR..MAR_off to Address. *)
  let chain_names =
    List.map (fun ch -> List.map (fun v -> (Rcg.node rcg v).Rcg.n_name) ch) r.Hscan.chains
  in
  check "fig 4(a) main chain present" true
    (List.mem
       [ "Data"; "IR"; "DR"; "TR"; "AC"; "PC"; "MAR_off"; "Address_lo" ]
       chain_names)

let test_hscan_declaration_order_preference () =
  (* Two feeds for R2; the first-declared one must carry the chain. *)
  let c = Rtl_core.create "pref" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  Rtl_core.add_reg c "R1" 4;
  Rtl_core.add_reg c "R2" 4;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R1") ();
  t ~src:(Rtl_core.reg c "R1") ~dst:(Rtl_core.reg c "R2") ();
  (* Alternative, declared later. *)
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R2") ();
  t ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R2") ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  let rcg = Rcg.of_core c in
  let _ = Hscan.insert rcg in
  let id = Rcg.node_id rcg in
  let marked_from src dst =
    List.exists
      (fun (e : Rcg.edge_label Socet_graph.Digraph.edge) ->
        e.src = src && e.label.Rcg.e_hscan)
      (Socet_graph.Digraph.pred (Rcg.graph rcg) dst)
  in
  check "R1 -> R2 carries the chain" true (marked_from (id "R1") (id "R2"));
  check "IN -> R2 alternative unmarked" false (marked_from (id "IN") (id "R2"))

let () =
  Alcotest.run "socet_scan"
    [
      ( "fscan",
        [
          Alcotest.test_case "overhead" `Quick test_fscan_overhead;
          Alcotest.test_case "insert upgrades all" `Quick test_fscan_insert_upgrades_all;
          Alcotest.test_case "chain shifts" `Quick test_fscan_chain_shifts;
          Alcotest.test_case "test time formula" `Quick test_fscan_test_time_formula;
        ] );
      ( "bscan",
        [
          Alcotest.test_case "paper display number" `Quick test_bscan_paper_display_number;
          Alcotest.test_case "ring overhead" `Quick test_bscan_ring_overhead;
        ] );
      ( "hscan",
        [
          Alcotest.test_case "linear chain" `Quick test_hscan_linear_chain;
          Alcotest.test_case "unreachable register" `Quick
            test_hscan_unreachable_reg_gets_mux;
          Alcotest.test_case "dead-end register" `Quick
            test_hscan_dead_end_reg_gets_observation;
          Alcotest.test_case "all registers covered" `Quick
            test_hscan_every_register_covered;
          Alcotest.test_case "CPU depth and chains" `Quick test_hscan_cpu_depth_and_chains;
          Alcotest.test_case "declaration order preference" `Quick
            test_hscan_declaration_order_preference;
        ] );
    ]
