open Socet_rtl
open Socet_core
open Socet_cores

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_cores () =
  [
    Cpu.core ();
    Preprocessor.core ();
    Display.core ();
    Gcd_core.core ();
    Graphics.core ();
    X25.core ();
  ]

let test_all_cores_validate () =
  List.iter
    (fun core ->
      Rtl_core.validate core;
      check (Rtl_core.name core ^ " has ports") true (Rtl_core.ports core <> []);
      check (Rtl_core.name core ^ " has registers") true (Rtl_core.regs core <> []))
    (all_cores ())

let test_cpu_interface () =
  let c = Cpu.core () in
  check_int "Data width" 8 (Rtl_core.find_port c Cpu.p_data).Rtl_core.p_width;
  check_int "Address_lo width" 8
    (Rtl_core.find_port c Cpu.p_address_lo).Rtl_core.p_width;
  check_int "Address_hi width" 4
    (Rtl_core.find_port c Cpu.p_address_hi).Rtl_core.p_width;
  check "Read is an output" true
    ((Rtl_core.find_port c Cpu.p_read).Rtl_core.p_dir = `Out)

let test_display_paper_inputs () =
  (* The paper: "the DISPLAY core has 66 flip-flops and 20 internal
     inputs" — our model reproduces the 20 input bits exactly and lands
     near the flip-flop count. *)
  let c = Display.core () in
  check_int "20 input bits" 20 (Rtl_core.input_bit_count c);
  let ffs = Rtl_core.reg_bit_count c in
  check "flip-flop count near the paper's 66" true (ffs >= 60 && ffs <= 80)

let test_display_port_names () =
  check "p_port bounds" true
    (try
       ignore (Display.p_port 0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check string) "port 3" "PORT3" (Display.p_port 3)

(* Every core must reach high test efficiency under full-scan ATPG —
   that is the paper's premise for the precomputed core test sets. *)
let test_atpg_quality_all_cores () =
  List.iter
    (fun core ->
      let nl = Socet_synth.Elaborate.core_to_netlist core in
      let stats = Socet_atpg.Podem.run nl in
      check
        (Rtl_core.name core ^ " efficiency > 97%")
        true
        (stats.Socet_atpg.Podem.efficiency > 97.0);
      check
        (Rtl_core.name core ^ " coverage > 85%")
        true
        (stats.Socet_atpg.Podem.coverage > 85.0);
      check
        (Rtl_core.name core ^ " no aborted faults")
        true
        (List.length stats.Socet_atpg.Podem.aborted
        * 100
        < stats.Socet_atpg.Podem.total_faults);
      (* The generated vectors really achieve the claimed coverage. *)
      let redet =
        Socet_atpg.Fsim.run_comb nl ~vectors:stats.Socet_atpg.Podem.vectors
          ~faults:(Socet_atpg.Fault.collapse nl)
      in
      check_int
        (Rtl_core.name core ^ " vectors re-detect")
        (List.length stats.Socet_atpg.Podem.detected)
        (List.length redet))
    (all_cores ())

let test_version_ladders_all_cores () =
  List.iter
    (fun core ->
      let rcg = Rcg.of_core core in
      let _ = Socet_scan.Hscan.insert rcg in
      let versions = Version.generate rcg in
      check (Rtl_core.name core ^ " at least 2 versions") true
        (List.length versions >= 2))
    (all_cores ())

let test_systems_construct () =
  let s1 = Systems.system1 () in
  let s2 = Systems.system2 () in
  check_int "S1 cores" 3 (List.length s1.Soc.insts);
  check_int "S2 cores" 3 (List.length s2.Soc.insts);
  check "S1 bigger than S2" true (Soc.original_area s1 > Soc.original_area s2)

let test_memories_excluded () =
  let s1 = Systems.system1 () in
  (* Memories are listed but own no CCG nodes. *)
  let ccg = Ccg.build s1 ~choice:[] in
  check "no RAM node" true
    (try
       ignore (Ccg.node_id ccg (Ccg.N_cin ("RAM", "addr")));
       false
     with Not_found -> true);
  check_int "memories recorded" 2 (List.length s1.Soc.memories)

let () =
  Alcotest.run "socet_cores"
    [
      ( "cores",
        [
          Alcotest.test_case "all validate" `Quick test_all_cores_validate;
          Alcotest.test_case "CPU interface" `Quick test_cpu_interface;
          Alcotest.test_case "DISPLAY paper inputs" `Quick test_display_paper_inputs;
          Alcotest.test_case "DISPLAY port names" `Quick test_display_port_names;
          Alcotest.test_case "ATPG quality" `Quick test_atpg_quality_all_cores;
          Alcotest.test_case "version ladders" `Quick test_version_ladders_all_cores;
        ] );
      ( "systems",
        [
          Alcotest.test_case "construct" `Quick test_systems_construct;
          Alcotest.test_case "memories excluded" `Quick test_memories_excluded;
        ] );
    ]
