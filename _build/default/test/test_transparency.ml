open Socet_rtl
open Socet_core
module Digraph = Socet_graph.Digraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let any (_ : Rcg.edge_label Digraph.edge) = true
let hscan (e : Rcg.edge_label Digraph.edge) = e.label.Rcg.e_hscan

let prepared core =
  let rcg = Rcg.of_core core in
  let _ = Socet_scan.Hscan.insert rcg in
  rcg

(* ------------------------------------------------------------------ *)
(* Tsearch on hand-built cores                                         *)
(* ------------------------------------------------------------------ *)

let linear_core () =
  let c = Rtl_core.create "lin" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  Rtl_core.add_reg c "R1" 4;
  Rtl_core.add_reg c "R2" 4;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R1") ();
  t ~src:(Rtl_core.reg c "R1") ~dst:(Rtl_core.reg c "R2") ();
  t ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R2") ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  c

let test_propagate_linear () =
  let rcg = prepared (linear_core ()) in
  match Tsearch.propagate rcg ~allowed:any ~input:(Rcg.node_id rcg "IN") () with
  | None -> Alcotest.fail "no propagation path"
  | Some s ->
      check_int "two register writes" 2 s.Tsearch.s_latency;
      check_int "three edges" 3 (List.length s.Tsearch.s_edges);
      check_int "no freezes" 0 (List.length s.Tsearch.s_freezes);
      Alcotest.(check (list int)) "terminal is OUT" [ Rcg.node_id rcg "OUT" ]
        s.Tsearch.s_terminals

let test_justify_linear () =
  let rcg = prepared (linear_core ()) in
  match Tsearch.justify rcg ~allowed:any ~output:(Rcg.node_id rcg "OUT") () with
  | None -> Alcotest.fail "no justification path"
  | Some s ->
      check_int "latency" 2 s.Tsearch.s_latency;
      Alcotest.(check (list int)) "terminal is IN" [ Rcg.node_id rcg "IN" ]
        s.Tsearch.s_terminals

let test_no_path_none () =
  (* Output fed by a register that is unreachable from any input. *)
  let c = Rtl_core.create "cut" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  Rtl_core.add_reg c "R1" 4;
  Rtl_core.add_reg c "R2" 4;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R1") ();
  t ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R2") ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  let rcg = Rcg.of_core c in
  check "propagation impossible" true
    (Tsearch.propagate rcg ~allowed:any ~input:(Rcg.node_id rcg "IN") () = None);
  check "justification impossible" true
    (Tsearch.justify rcg ~allowed:any ~output:(Rcg.node_id rcg "OUT") () = None)

let test_allowed_filter_respected () =
  let rcg = Rcg.of_core (linear_core ()) in
  (* Nothing marked as HSCAN yet: the HSCAN-only search must fail. *)
  check "hscan-only fails before insertion" true
    (Tsearch.propagate rcg ~allowed:hscan ~input:(Rcg.node_id rcg "IN") () = None)

let test_split_balancing_freeze () =
  (* IN -> A; A -> B -> C[hi] (2 hops) and A -> C[lo] (1 hop): the short
     branch's source register A must be frozen 1 cycle. *)
  let c = Rtl_core.create "bal" in
  Rtl_core.add_input c "IN" 8;
  Rtl_core.add_output c "OUT" 8;
  Rtl_core.add_reg c "A" 8;
  Rtl_core.add_reg c "B" 4;
  Rtl_core.add_reg c "C" 8;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "A") ();
  t ~src:(Rtl_core.reg_bits c "A" 4 7) ~dst:(Rtl_core.reg c "B") ();
  t ~src:(Rtl_core.reg c "B") ~dst:(Rtl_core.reg_bits c "C" 4 7) ();
  t ~src:(Rtl_core.reg_bits c "A" 0 3) ~dst:(Rtl_core.reg_bits c "C" 0 3) ();
  t ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "C") ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  let rcg = Rcg.of_core c in
  match Tsearch.justify rcg ~allowed:any ~output:(Rcg.node_id rcg "OUT") () with
  | None -> Alcotest.fail "no path"
  | Some s ->
      check_int "latency is the long branch" 3 s.Tsearch.s_latency;
      Alcotest.(check (list (pair int int)))
        "A frozen one cycle"
        [ (Rcg.node_id rcg "A", 1) ]
        s.Tsearch.s_freezes

let test_reach_in_one_cycle () =
  let rcg = prepared (Socet_cores.Cpu.core ()) in
  let regs = Tsearch.reach_in_one_cycle rcg ~input:(Rcg.node_id rcg "Data") in
  let names = List.map (fun v -> (Rcg.node rcg v).Rcg.n_name) regs in
  check "IR reachable" true (List.mem "IR" names);
  check "MAR_off reachable (mux M)" true (List.mem "MAR_off" names);
  check "PC not reachable in one" false (List.mem "PC" names)

(* ------------------------------------------------------------------ *)
(* Paper Figure 6: the CPU version ladder                              *)
(* ------------------------------------------------------------------ *)

let cpu_versions () =
  let rcg = prepared (Socet_cores.Cpu.core ()) in
  (rcg, Version.generate rcg)

let latency rcg v i o =
  Version.latency_between v ~input:(Rcg.node_id rcg i) ~output:(Rcg.node_id rcg o)

let test_fig6_version1 () =
  let rcg, versions = cpu_versions () in
  let v1 = List.nth versions 0 in
  Alcotest.(check (option int)) "D -> A(7-0) = 6" (Some 6)
    (latency rcg v1 "Data" "Address_lo");
  Alcotest.(check (option int)) "D -> A(11-8) = 2" (Some 2)
    (latency rcg v1 "Data" "Address_hi");
  check_int "overhead 3 cells" 3 v1.Version.v_overhead;
  (* The paper's one-cycle Status-register freeze. *)
  let just_alo =
    List.assoc (Rcg.node_id rcg "Address_lo") v1.Version.v_just
  in
  Alcotest.(check (list (pair int int)))
    "SR frozen one cycle"
    [ (Rcg.node_id rcg "SR", 1) ]
    just_alo.Tsearch.s_freezes

let test_fig6_version2 () =
  let rcg, versions = cpu_versions () in
  let v2 = List.nth versions 1 in
  Alcotest.(check (option int)) "D -> A(7-0) = 1" (Some 1)
    (latency rcg v2 "Data" "Address_lo");
  Alcotest.(check (option int)) "D -> A(11-8) = 2" (Some 2)
    (latency rcg v2 "Data" "Address_hi");
  check_int "overhead 10 cells" 10 v2.Version.v_overhead

let test_fig6_version3 () =
  let rcg, versions = cpu_versions () in
  check_int "three versions" 3 (List.length versions);
  let v3 = List.nth versions 2 in
  Alcotest.(check (option int)) "D -> A(7-0) = 1" (Some 1)
    (latency rcg v3 "Data" "Address_lo");
  Alcotest.(check (option int)) "D -> A(11-8) = 1" (Some 1)
    (latency rcg v3 "Data" "Address_hi");
  check_int "overhead 30 cells" 30 v3.Version.v_overhead;
  check_int "one transparency mux" 1 (List.length v3.Version.v_added_muxes)

let test_cpu_control_chains () =
  let rcg, versions = cpu_versions () in
  let v1 = List.nth versions 0 in
  (* Sec. 3: Reset -> Read and Interrupt -> Write in two cycles. *)
  Alcotest.(check (option int)) "Reset -> Read = 2" (Some 2)
    (latency rcg v1 "Reset" "Read");
  Alcotest.(check (option int)) "Interrupt -> Write = 2" (Some 2)
    (latency rcg v1 "Interrupt" "Write")

(* ------------------------------------------------------------------ *)
(* Paper Figure 8: PREPROCESSOR and DISPLAY ladders                    *)
(* ------------------------------------------------------------------ *)

let test_fig8_preprocessor () =
  let rcg = prepared (Socet_cores.Preprocessor.core ()) in
  let versions = Version.generate rcg in
  check_int "three versions" 3 (List.length versions);
  let v k = List.nth versions (k - 1) in
  Alcotest.(check (option int)) "V1 NUM->DB = 5" (Some 5)
    (latency rcg (v 1) "NUM" "DB");
  Alcotest.(check (option int)) "V1 NUM->A = 2" (Some 2)
    (latency rcg (v 1) "NUM" "Address");
  Alcotest.(check (option int)) "V2 NUM->DB = 1" (Some 1)
    (latency rcg (v 2) "NUM" "DB");
  Alcotest.(check (option int)) "V3 NUM->A = 1" (Some 1)
    (latency rcg (v 3) "NUM" "Address");
  Alcotest.(check (option int)) "Reset->Eoc = 2 in all versions" (Some 2)
    (latency rcg (v 3) "Reset" "Eoc");
  (* Overheads: measured 3/19/39 against the paper's 2/19/37 (documented
     in EXPERIMENTS.md); V2 must match exactly. *)
  check_int "V2 overhead 19" 19 (v 2).Version.v_overhead;
  check "ladder is monotone" true
    ((v 1).Version.v_overhead < (v 2).Version.v_overhead
    && (v 2).Version.v_overhead < (v 3).Version.v_overhead)

let test_fig8_display () =
  let rcg = prepared (Socet_cores.Display.core ()) in
  let versions = Version.generate rcg in
  check_int "three versions" 3 (List.length versions);
  let v k = List.nth versions (k - 1) in
  Alcotest.(check (option int)) "V1 D->OUT = 2" (Some 2)
    (latency rcg (v 1) "D" "PORT1");
  Alcotest.(check (option int)) "V1 A->OUT = 3" (Some 3)
    (latency rcg (v 1) "A_lo" "PORT6");
  Alcotest.(check (option int)) "V2 A->OUT = 1" (Some 1)
    (latency rcg (v 2) "A_lo" "PORT6");
  Alcotest.(check (option int)) "V2 D->OUT still 2" (Some 2)
    (latency rcg (v 2) "D" "PORT1");
  Alcotest.(check (option int)) "V3 D->OUT = 1" (Some 1)
    (latency rcg (v 3) "D" "PORT1");
  check_int "V2 overhead 20 (paper 20)" 20 (v 2).Version.v_overhead;
  check_int "V3 overhead 55 (paper 55)" 55 (v 3).Version.v_overhead

(* ------------------------------------------------------------------ *)
(* Version generation invariants (property-based)                      *)
(* ------------------------------------------------------------------ *)

let all_cores () =
  [
    Socet_cores.Cpu.core ();
    Socet_cores.Preprocessor.core ();
    Socet_cores.Display.core ();
    Socet_cores.Gcd_core.core ();
    Socet_cores.Graphics.core ();
    Socet_cores.X25.core ();
  ]

let test_versions_monotone_everywhere () =
  List.iter
    (fun core ->
      let rcg = prepared core in
      let versions = Version.generate rcg in
      check (Rtl_core.name core ^ " has versions") true (versions <> []);
      let rec pairwise = function
        | a :: (b :: _ as rest) ->
            check "overhead grows" true
              (a.Version.v_overhead < b.Version.v_overhead);
            (* Latency of every common pair never increases. *)
            List.iter
              (fun (p : Version.pair) ->
                match
                  Version.latency_between b ~input:p.Version.pr_input
                    ~output:p.Version.pr_output
                with
                | Some l -> check "latency never increases" true (l <= p.Version.pr_latency)
                | None -> ())
              a.Version.v_pairs;
            pairwise rest
        | _ -> ()
      in
      pairwise versions)
    (all_cores ())

let test_justification_covers_all_outputs () =
  List.iter
    (fun core ->
      let rcg = prepared core in
      let versions = Version.generate rcg in
      let v1 = List.hd versions in
      check_int
        (Rtl_core.name core ^ ": every output justified")
        (List.length (Rcg.output_ids rcg))
        (List.length v1.Version.v_just))
    (all_cores ())

let test_propagation_covers_all_inputs () =
  List.iter
    (fun core ->
      let rcg = prepared core in
      let versions = Version.generate rcg in
      let v1 = List.hd versions in
      check_int
        (Rtl_core.name core ^ ": every input propagated")
        (List.length (Rcg.input_ids rcg))
        (List.length v1.Version.v_prop))
    (all_cores ())

let prop_sol_uses_only_allowed_edges =
  QCheck.Test.make ~name:"V1 hscan-first solutions prefer chain edges" ~count:1
    QCheck.unit
    (fun () ->
      let rcg = prepared (Socet_cores.Cpu.core ()) in
      let versions = Version.generate rcg in
      let v1 = List.hd versions in
      (* Every edge of every V1 solution is either an HSCAN edge or was
         explicitly paid for (non-HSCAN edges appear only when chains
         cannot provide the path — here the CPU chains suffice except for
         nothing at all). *)
      List.for_all
        (fun (_, (s : Tsearch.sol)) ->
          List.for_all
            (fun (e : Rcg.edge_label Digraph.edge) -> e.label.Rcg.e_hscan)
            s.Tsearch.s_edges)
        v1.Version.v_just)


(* ------------------------------------------------------------------ *)
(* Gate-level transparency simulation                                  *)
(* ------------------------------------------------------------------ *)

let test_tsim_cpu_data_path () =
  let rcg = prepared (Socet_cores.Cpu.core ()) in
  match
    Tsearch.propagate rcg ~allowed:hscan ~input:(Rcg.node_id rcg "Data") ()
  with
  | None -> Alcotest.fail "no propagation path"
  | Some sol ->
      check_int "six-cycle path" 6 sol.Tsearch.s_latency;
      List.iter
        (fun v ->
          check
            (Printf.sprintf "value %02x rides the gates" v)
            true
            (Tsim.check_propagation rcg sol ~input:"Data"
               ~value:(Socet_util.Bitvec.of_int ~width:8 v)))
        [ 0x00; 0xFF; 0xA5; 0x5A; 0x0F; 0x81 ]

let test_tsim_cpu_control_chain () =
  let rcg = prepared (Socet_cores.Cpu.core ()) in
  match
    Tsearch.propagate rcg ~allowed:hscan ~input:(Rcg.node_id rcg "Reset") ()
  with
  | None -> Alcotest.fail "no propagation path"
  | Some sol ->
      List.iter
        (fun v ->
          check "reset bit rides to Read" true
            (Tsim.check_propagation rcg sol ~input:"Reset"
               ~value:(Socet_util.Bitvec.of_int ~width:1 v)))
        [ 0; 1 ]

let test_tsim_preprocessor_pipeline () =
  let rcg = prepared (Socet_cores.Preprocessor.core ()) in
  match
    Tsearch.propagate rcg ~allowed:hscan ~input:(Rcg.node_id rcg "NUM") ()
  with
  | None -> Alcotest.fail "no propagation path"
  | Some sol ->
      List.iter
        (fun v ->
          check "NUM value rides to outputs" true
            (Tsim.check_propagation rcg sol ~input:"NUM"
               ~value:(Socet_util.Bitvec.of_int ~width:8 v)))
        [ 0x3C; 0xC3; 0x7E ]

let test_tsim_mux_m_shortcut () =
  (* Version 2's one-cycle path through mux M must also work in the
     gates. *)
  let rcg = prepared (Socet_cores.Cpu.core ()) in
  match Tsearch.propagate rcg ~allowed:any ~input:(Rcg.node_id rcg "Data") () with
  | None -> Alcotest.fail "no path"
  | Some sol ->
      check "short path found" true (sol.Tsearch.s_latency <= 2);
      check "short path rides the gates" true
        (Tsim.check_propagation rcg sol ~input:"Data"
           ~value:(Socet_util.Bitvec.of_int ~width:8 0x96))

let test_tsim_rejects_synthetic_edges () =
  (* A V3 path through an added transparency mux has no gate realization
     in the functional netlist: the simulator must refuse, not lie. *)
  let rcg = prepared (Socet_cores.Cpu.core ()) in
  let versions = Version.generate rcg in
  let v3 = List.nth versions 2 in
  let just_ahi = List.assoc (Rcg.node_id rcg "Address_hi") v3.Version.v_just in
  if
    List.exists
      (fun (e : Rcg.edge_label Digraph.edge) -> e.label.Rcg.e_transfer < 0)
      just_ahi.Tsearch.s_edges
  then
    check "simulator refuses synthetic edges" true
      (Tsim.run_propagation rcg just_ahi ~input:"Data"
         ~value:(Socet_util.Bitvec.of_int ~width:8 0)
      = None)
  else
    (* The V3 justification may avoid the added mux; nothing to check. *)
    check "path is simulable" true true

let tsim_tests =
  [
    Alcotest.test_case "CPU data path rides gates" `Quick test_tsim_cpu_data_path;
    Alcotest.test_case "CPU control chain" `Quick test_tsim_cpu_control_chain;
    Alcotest.test_case "PREP pipeline" `Quick test_tsim_preprocessor_pipeline;
    Alcotest.test_case "mux M shortcut" `Quick test_tsim_mux_m_shortcut;
    Alcotest.test_case "synthetic edges rejected" `Quick test_tsim_rejects_synthetic_edges;
  ]

let () =
  Alcotest.run "socet_transparency"
    [
      ( "tsearch",
        [
          Alcotest.test_case "propagate linear" `Quick test_propagate_linear;
          Alcotest.test_case "justify linear" `Quick test_justify_linear;
          Alcotest.test_case "no path" `Quick test_no_path_none;
          Alcotest.test_case "allowed filter" `Quick test_allowed_filter_respected;
          Alcotest.test_case "split balancing freeze" `Quick test_split_balancing_freeze;
          Alcotest.test_case "reach in one cycle" `Quick test_reach_in_one_cycle;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "version 1" `Quick test_fig6_version1;
          Alcotest.test_case "version 2" `Quick test_fig6_version2;
          Alcotest.test_case "version 3" `Quick test_fig6_version3;
          Alcotest.test_case "control chains" `Quick test_cpu_control_chains;
        ] );
      ( "fig8",
        [
          Alcotest.test_case "preprocessor ladder" `Quick test_fig8_preprocessor;
          Alcotest.test_case "display ladder" `Quick test_fig8_display;
        ] );
      ("tsim", tsim_tests);
      ( "invariants",
        [
          Alcotest.test_case "monotone ladders" `Quick test_versions_monotone_everywhere;
          Alcotest.test_case "all outputs justified" `Quick
            test_justification_covers_all_outputs;
          Alcotest.test_case "all inputs propagated" `Quick
            test_propagation_covers_all_inputs;
          QCheck_alcotest.to_alcotest prop_sol_uses_only_allowed_edges;
        ] );
    ]
