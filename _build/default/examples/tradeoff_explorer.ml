(* Design-space exploration on System 1: every combination of core
   versions, the Pareto frontier, and both optimizer trajectories —
   a textual rendition of the paper's Fig. 10 workflow.

     dune exec examples/tradeoff_explorer.exe
*)

open Socet_core

let () =
  let soc = Socet_cores.Systems.system1 () in
  let points = Select.design_space soc in
  Printf.printf "%d design points (all core-version combinations)\n\n"
    (List.length points);

  (* Pareto frontier: points not dominated in (area, time). *)
  let dominated p =
    List.exists
      (fun q ->
        q != p
        && q.Select.pt_area <= p.Select.pt_area
        && q.Select.pt_time <= p.Select.pt_time
        && (q.Select.pt_area < p.Select.pt_area || q.Select.pt_time < p.Select.pt_time))
      points
  in
  let frontier =
    List.filter (fun p -> not (dominated p)) points
    |> List.sort (fun a b -> compare a.Select.pt_area b.Select.pt_area)
  in
  print_endline "Pareto frontier (area ascending):";
  List.iter
    (fun p ->
      Printf.printf "  area %4d  TAT %6d  [%s]\n" p.Select.pt_area p.Select.pt_time
        (String.concat "; "
           (List.map (fun (n, k) -> Printf.sprintf "%s=%d" n k) p.Select.pt_choice)))
    frontier;
  print_newline ();

  (* The extremes the paper tabulates. *)
  let by_time = List.sort (fun a b -> compare a.Select.pt_time b.Select.pt_time) points in
  let fastest = List.hd by_time in
  let cheapest =
    List.hd (List.sort (fun a b -> compare a.Select.pt_area b.Select.pt_area) points)
  in
  Printf.printf "cheapest point : area %d, TAT %d\n" cheapest.Select.pt_area
    cheapest.Select.pt_time;
  Printf.printf "fastest point  : area %d, TAT %d (%.1fx faster)\n"
    fastest.Select.pt_area fastest.Select.pt_time
    (float_of_int cheapest.Select.pt_time /. float_of_int fastest.Select.pt_time);
  print_newline ();

  (* Beyond version selection: let the optimizer add system-level test
     muxes and show the degeneration toward a test-bus solution. *)
  print_endline "minimize_time trajectory (version upgrades, then test muxes):";
  List.iteri
    (fun i p ->
      Printf.printf "  step %2d: area %4d  TAT %6d  (%d muxes)\n" i p.Select.pt_area
        p.Select.pt_time
        (List.length p.Select.pt_smuxes))
    (Select.minimize_time soc ~max_area:600)
