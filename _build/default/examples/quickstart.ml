(* Quickstart: make one core testable and transparent, inspect its version
   ladder, and watch a value ride a transparency path through the
   synthesized gates.

     dune exec examples/quickstart.exe
*)

open Socet_rtl
open Socet_core

let () =
  (* 1. Take a core — here the barcode system's CPU (paper Fig. 3). *)
  let cpu = Socet_cores.Cpu.core () in
  Format.printf "%a@." Rtl_core.pp cpu;

  (* 2. Extract its register connectivity graph and insert HSCAN chains
        (the core-level DFT: scan built from existing mux paths). *)
  let rcg = Rcg.of_core cpu in
  let hscan = Socet_scan.Hscan.insert rcg in
  Printf.printf "HSCAN: %d chains, depth %d, %d cells overhead\n\n"
    (List.length hscan.Socet_scan.Hscan.chains)
    hscan.Socet_scan.Hscan.depth hscan.Socet_scan.Hscan.overhead_cells;

  (* 3. Generate the transparency version ladder (paper Fig. 6). *)
  let versions = Version.generate rcg in
  List.iter
    (fun v ->
      Printf.printf "Version %d: %d cells of transparency logic\n"
        v.Version.v_index v.Version.v_overhead;
      List.iter
        (fun p ->
          Printf.printf "  %-10s -> %-12s in %d cycle(s)\n"
            (Rcg.node rcg p.Version.pr_input).Rcg.n_name
            (Rcg.node rcg p.Version.pr_output).Rcg.n_name
            p.Version.pr_latency)
        v.Version.v_pairs)
    versions;

  (* 4. Prove a path with the gate-level transparency simulator: apply
        0xB7 at Data and watch it arrive at Address after 6 cycles. *)
  print_newline ();
  match
    Tsearch.propagate rcg
      ~allowed:(fun e -> e.Socet_graph.Digraph.label.Rcg.e_hscan)
      ~input:(Rcg.node_id rcg "Data") ()
  with
  | None -> print_endline "no transparency path?!"
  | Some sol -> (
      Printf.printf "Propagation path latency: %d cycles, %d freezes\n"
        sol.Tsearch.s_latency
        (List.length sol.Tsearch.s_freezes);
      let value = Socet_util.Bitvec.of_int ~width:8 0xB7 in
      match Tsim.run_propagation rcg sol ~input:"Data" ~value with
      | None -> print_endline "path not simulable (synthesized edges)"
      | Some outcome ->
          Printf.printf "After %d clock edges:\n" outcome.Tsim.o_cycles;
          List.iter
            (fun (port, bv) ->
              Printf.printf "  %s = %s\n" port (Socet_util.Bitvec.to_string bv))
            outcome.Tsim.o_outputs;
          Printf.printf
            "(applied value was %s; the O-split at IR routes its low nibble\n\
            \ through MAR_pag to Address_hi and its high nibble down the long\n\
            \ chain to Address_lo — no bit is lost, which is exactly what the\n\
            \ paper means by core transparency)\n"
            (Socet_util.Bitvec.to_string value))
