(* The paper's System 1 walkthrough: build the barcode SOC, route test
   access for every core, and reproduce the Sec. 3 arithmetic for testing
   the DISPLAY through the PREPROCESSOR and CPU.

     dune exec examples/barcode_soc.exe
*)

open Socet_core

let () =
  let soc = Socet_cores.Systems.system1 () in
  Printf.printf "=== %s ===\n" soc.Soc.soc_name;
  Printf.printf "original area: %d cells; %d memories excluded (BIST)\n\n"
    (Soc.original_area soc)
    (List.length soc.Soc.memories);

  (* Per-core artifacts: scan structure and precomputed test sets. *)
  List.iter
    (fun ci ->
      let stats = Lazy.force ci.Soc.ci_atpg in
      Printf.printf
        "%-8s area %4d cells | HSCAN depth %d | %3d ATPG vectors -> %4d chip-level vectors | FC %.1f%%\n"
        ci.Soc.ci_name
        (Socet_netlist.Netlist.area ci.Soc.ci_netlist)
        ci.Soc.ci_hscan.Socet_scan.Hscan.depth
        (List.length stats.Socet_atpg.Podem.vectors)
        (Soc.hscan_vectors ci) stats.Socet_atpg.Podem.coverage)
    soc.Soc.insts;

  (* The Sec. 3 worked example: test the DISPLAY with PREP at version 2
     and the CPU at each of its three versions. *)
  print_newline ();
  List.iter
    (fun cpu_version ->
      let sched =
        Schedule.build soc
          ~choice:[ ("PREP", 2); ("CPU", cpu_version); ("DISPLAY", 1) ]
          ()
      in
      let t =
        List.find (fun t -> t.Schedule.ct_inst = "DISPLAY") sched.Schedule.s_tests
      in
      Printf.printf
        "CPU version %d: each DISPLAY vector needs %d cycles (paper: %d); test time %d\n"
        cpu_version t.Schedule.ct_period
        (match cpu_version with 1 -> 9 | 2 -> 4 | _ -> 3)
        t.Schedule.ct_time)
    [ 1; 2; 3 ];

  (* The full chip test at the cheapest design point, with the routing
     decisions the scheduler made. *)
  print_newline ();
  let sched =
    Schedule.build soc ~choice:(List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts) ()
  in
  Printf.printf "All-V1 design point: %d cycles total, %d cells chip-level DFT\n"
    sched.Schedule.s_total_time sched.Schedule.s_area_overhead;
  List.iter
    (fun t ->
      Printf.printf "  %-8s %4d vectors x %2d cycles + %d tail = %6d cycles\n"
        t.Schedule.ct_inst t.Schedule.ct_vectors t.Schedule.ct_period
        t.Schedule.ct_tail t.Schedule.ct_time;
      List.iter
        (fun (r : Access.route) ->
          match r.Access.r_added_smux with
          | Some (_, _, w) ->
              Printf.printf "      system-level test mux added (%d bits) for %s\n" w
                (Ccg.pp_node sched.Schedule.s_ccg r.Access.r_target)
          | None -> ())
        (t.Schedule.ct_justify @ t.Schedule.ct_observe))
    sched.Schedule.s_tests;

  (* Compare with the FSCAN-BSCAN baseline. *)
  print_newline ();
  let b = Baseline.evaluate soc in
  Printf.printf
    "FSCAN-BSCAN baseline: %d cells overhead, %d cycles — SOCET is %.1fx faster\n"
    b.Baseline.b_total_overhead b.Baseline.b_time
    (float_of_int b.Baseline.b_time /. float_of_int sched.Schedule.s_total_time)
