(* The flip side of test generation: a device fails on the tester — which
   defect is it?  Build a fault dictionary for a core, plant a defect,
   match the observed syndrome, and show how SCOAP-guided test points make
   hard logic visible to random patterns.

     dune exec examples/diagnosis_demo.exe
*)

open Socet_netlist
open Socet_atpg

let () =
  let core = Socet_cores.X25.core () in
  let nl = Socet_synth.Elaborate.core_to_netlist core in
  Printf.printf "Core: %s (%d gates, %d collapsed faults)\n"
    (Netlist.name nl) (Netlist.gate_count nl)
    (List.length (Fault.collapse nl));

  (* 1. Generate the production test set, then enlarge it for diagnosis. *)
  let stats = Podem.run nl in
  let rng = Socet_util.Rng.create 2718 in
  let diag_vectors =
    stats.Podem.vectors
    @ List.init 32 (fun _ -> Socet_util.Rng.bitvec rng (Fsim.vector_length nl))
  in
  Printf.printf "Test set: %d detection vectors + 32 diagnostic vectors\n"
    (List.length stats.Podem.vectors);

  (* 2. Build the dictionary. *)
  let faults = Fault.collapse nl in
  let dict = Diagnose.build nl ~vectors:diag_vectors ~faults in
  Printf.printf "Dictionary resolution: %.1f%% of faults have unique syndromes\n\n"
    (Diagnose.distinguishable dict);

  (* 3. Plant a defect and diagnose from the tester's pass/fail log. *)
  let planted = List.nth faults (List.length faults / 3) in
  Printf.printf "Planted defect: %s\n" (Fault.name nl planted);
  let observed = Diagnose.observe nl ~vectors:diag_vectors ~fault:planted in
  Printf.printf "Observed syndrome: %d failing vectors\n"
    (Socet_util.Bitvec.popcount observed);
  let candidates = Diagnose.diagnose dict observed in
  Printf.printf "Candidates (%d):\n" (List.length candidates);
  List.iteri
    (fun i (f, dist) ->
      if i < 5 then
        Printf.printf "  %d. %-24s distance %d%s\n" (i + 1) (Fault.name nl f) dist
          (if Fault.equal f planted then "   <- the planted defect" else ""))
    candidates;

  (* 4. Test points: make the hard corners visible to random patterns. *)
  print_newline ();
  let mk () = Socet_synth.Elaborate.core_to_netlist (Socet_cores.X25.core ()) in
  let before, after = Testpoint.coverage_gain ~mk ~budget:8 ~patterns:128 in
  let points = Testpoint.propose nl (Scoap.compute nl) ~budget:8 in
  Printf.printf
    "Test points: 8 SCOAP-guided points (%d cells) lift random-pattern\n\
     coverage from %.1f%% to %.1f%%\n"
    (Testpoint.area_cost points) before after;
  let hardest = Scoap.hardest_faults nl (Scoap.compute nl) 3 in
  print_endline "Hardest faults by SCOAP estimate:";
  List.iter
    (fun (f, cost) -> Printf.printf "  %-24s cost %d\n" (Fault.name nl f) cost)
    hardest
