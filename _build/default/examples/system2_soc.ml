(* System 2 (graphics processor + GCD + X.25): a chain topology where the
   only way to test the middle core is transparency through its
   neighbours; demonstrates both optimizer objectives.

     dune exec examples/system2_soc.exe
*)

open Socet_core

let show_point label (p : Select.point) =
  Printf.printf "%-28s versions [%s]  +%d muxes  area %4d cells  TAT %6d cycles\n"
    label
    (String.concat "; "
       (List.map (fun (n, k) -> Printf.sprintf "%s=%d" n k) p.Select.pt_choice))
    (List.length p.Select.pt_smuxes)
    p.Select.pt_area p.Select.pt_time

let () =
  let soc = Socet_cores.Systems.system2 () in
  Printf.printf "=== %s ===  (original area %d cells)\n\n" soc.Soc.soc_name
    (Soc.original_area soc);

  (* The GCD core sits between GFX and X25: its stimuli must ride through
     the graphics core, its responses through the protocol core. *)
  let all_v1 = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
  let sched = Schedule.build soc ~choice:all_v1 () in
  List.iter
    (fun t ->
      Printf.printf "%-4s justified+observed in %2d cycles/vector -> %5d cycles\n"
        t.Schedule.ct_inst t.Schedule.ct_period t.Schedule.ct_time)
    sched.Schedule.s_tests;
  print_newline ();

  (* Objective (i): minimize test time within an area budget. *)
  let traj = Select.minimize_time soc ~max_area:150 in
  print_endline "Objective (i): minimize TAT with area <= 150 cells";
  List.iteri (fun i p -> show_point (Printf.sprintf "  step %d" i) p) traj;
  print_newline ();

  (* Objective (ii): cheapest point meeting a TAT bound. *)
  let traj2 = Select.minimize_area soc ~max_time:1200 in
  print_endline "Objective (ii): minimize area with TAT <= 1200 cycles";
  List.iteri (fun i p -> show_point (Printf.sprintf "  step %d" i) p) traj2;
  print_newline ();

  (* Testability summary. *)
  let cov = Testgen.scan_access_coverage soc in
  let orig = Testgen.sequential_coverage soc ~cycles:256 () in
  Printf.printf
    "Coverage: %.1f%% with SOCET access vs %.1f%% without any chip-level DFT\n"
    cov.Testgen.fc orig.Testgen.fc
