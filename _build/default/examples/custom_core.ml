(* Bring your own core: describe a small FIR-filter-style datapath with
   the RTL builder, run the full core-level flow on it (validation, RCG,
   HSCAN, versions, ATPG) and assemble it with a neighbour into a
   two-core SOC.  This is the workflow a core provider follows in the
   paper's methodology.

     dune exec examples/custom_core.exe
*)

open Socet_rtl
open Socet_core

(* A 4-tap moving-sum filter: samples shift through TAP1..TAP3 while an
   accumulator keeps the running sum; a bypass bus (steerable in test
   mode) feeds the output stage directly. *)
let fir () =
  let c = Rtl_core.create "FIR" in
  Rtl_core.add_input c "SAMPLE" 8;
  Rtl_core.add_output c "SUM" 8;
  Rtl_core.add_output c "VALID" 1;
  Rtl_core.add_reg c "TAP1" 8;
  Rtl_core.add_reg c "TAP2" 8;
  Rtl_core.add_reg c "TAP3" 8;
  Rtl_core.add_reg c "ACC" 8;
  Rtl_core.add_reg c "OUTR" 8;
  Rtl_core.add_reg c "VF" 1;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "SAMPLE") ~dst:(Rtl_core.reg c "TAP1") ();
  t ~src:(Rtl_core.reg c "TAP1") ~dst:(Rtl_core.reg c "TAP2") ();
  t ~src:(Rtl_core.reg c "TAP2") ~dst:(Rtl_core.reg c "TAP3") ();
  t ~src:(Rtl_core.reg c "TAP3") ~dst:(Rtl_core.reg c "ACC") ();
  t ~src:(Rtl_core.reg c "ACC") ~dst:(Rtl_core.reg c "OUTR") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "OUTR") ~dst:(Rtl_core.port c "SUM") ();
  t ~kind:(Logic Fparity) ~src:(Rtl_core.reg c "ACC") ~dst:(Rtl_core.reg c "VF") ();
  t ~src:(Rtl_core.reg_bits c "ACC" 0 0) ~dst:(Rtl_core.reg c "VF") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "VF") ~dst:(Rtl_core.port c "VALID") ();
  (* The bypass bus: 6 gating bits to steer in test mode. *)
  t ~kind:(Mux 6) ~src:(Rtl_core.port c "SAMPLE") ~dst:(Rtl_core.reg c "OUTR") ();
  (* The accumulator adder. *)
  t ~kind:(Logic (Fadd (Rtl_core.reg c "TAP3")))
    ~src:(Rtl_core.reg c "ACC") ~dst:(Rtl_core.reg c "ACC") ();
  Rtl_core.validate c;
  c

let () =
  let core = fir () in
  Printf.printf "Core-level flow for %s\n" (Rtl_core.name core);
  let rcg = Rcg.of_core core in
  let hscan = Socet_scan.Hscan.insert rcg in
  Printf.printf "  HSCAN: depth %d, overhead %d cells, %d added muxes\n"
    hscan.Socet_scan.Hscan.depth hscan.Socet_scan.Hscan.overhead_cells
    (List.length hscan.Socet_scan.Hscan.added);
  let versions = Version.generate rcg in
  List.iter
    (fun v ->
      Printf.printf "  Version %d (%d cells):" v.Version.v_index v.Version.v_overhead;
      List.iter
        (fun p ->
          Printf.printf " %s->%s:%d"
            (Rcg.node rcg p.Version.pr_input).Rcg.n_name
            (Rcg.node rcg p.Version.pr_output).Rcg.n_name p.Version.pr_latency)
        v.Version.v_pairs;
      print_newline ())
    versions;
  let nl = Socet_synth.Elaborate.core_to_netlist core in
  let stats = Socet_atpg.Podem.run nl in
  Printf.printf "  ATPG: %d vectors, coverage %.1f%%, efficiency %.1f%%\n"
    (List.length stats.Socet_atpg.Podem.vectors)
    stats.Socet_atpg.Podem.coverage stats.Socet_atpg.Podem.efficiency;

  (* Chip-level: hide the FIR behind the (transparent) X25 core and test
     it through the neighbour. *)
  print_newline ();
  let fir_inst = Soc.instantiate "FIR" (fir ()) in
  let x25 = Soc.instantiate "X25" (Socet_cores.X25.core ()) in
  let conn from_ to_ = { Soc.c_from = from_; c_to = to_ } in
  let soc =
    Soc.make ~name:"FIR-behind-X25"
      ~pis:[ ("RXIN", 8); ("CTL", 1) ]
      ~pos:[ ("SUM", 8); ("VALID", 1); ("STATUS", 4) ]
      ~cores:[ x25; fir_inst ]
      ~connections:
        [
          conn (Soc.Pi "RXIN") (Soc.Cport ("X25", "RX"));
          conn (Soc.Pi "CTL") (Soc.Cport ("X25", "Ctl"));
          conn (Soc.Cport ("X25", "TX")) (Soc.Cport ("FIR", "SAMPLE"));
          conn (Soc.Cport ("X25", "Status")) (Soc.Po "STATUS");
          conn (Soc.Cport ("FIR", "SUM")) (Soc.Po "SUM");
          conn (Soc.Cport ("FIR", "VALID")) (Soc.Po "VALID");
        ]
      ()
  in
  let sched =
    Schedule.build soc ~choice:[ ("X25", 2); ("FIR", 1) ] ()
  in
  Printf.printf "Two-core SOC: total test time %d cycles, chip DFT %d cells\n"
    sched.Schedule.s_total_time sched.Schedule.s_area_overhead;
  List.iter
    (fun t ->
      Printf.printf "  %-4s %d cycles/vector over %d vectors\n" t.Schedule.ct_inst
        t.Schedule.ct_period t.Schedule.ct_vectors)
    sched.Schedule.s_tests
