examples/diagnosis_demo.ml: Diagnose Fault Fsim List Netlist Podem Printf Scoap Socet_atpg Socet_cores Socet_netlist Socet_synth Socet_util Testpoint
