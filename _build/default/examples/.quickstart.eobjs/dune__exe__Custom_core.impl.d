examples/custom_core.ml: List Printf Rcg Rtl_core Schedule Soc Socet_atpg Socet_core Socet_cores Socet_rtl Socet_scan Socet_synth Version
