examples/system2_soc.ml: List Printf Schedule Select Soc Socet_core Socet_cores String Testgen
