examples/tradeoff_explorer.mli:
