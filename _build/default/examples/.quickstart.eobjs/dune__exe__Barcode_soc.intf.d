examples/barcode_soc.mli:
