examples/custom_core.mli:
