examples/system2_soc.mli:
