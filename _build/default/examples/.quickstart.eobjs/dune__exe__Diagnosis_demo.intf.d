examples/diagnosis_demo.mli:
