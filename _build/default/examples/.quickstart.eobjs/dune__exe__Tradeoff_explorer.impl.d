examples/tradeoff_explorer.ml: List Printf Select Socet_core Socet_cores String
