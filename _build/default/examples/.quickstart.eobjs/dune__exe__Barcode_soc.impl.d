examples/barcode_soc.ml: Access Baseline Ccg Lazy List Printf Schedule Soc Socet_atpg Socet_core Socet_cores Socet_netlist Socet_scan
