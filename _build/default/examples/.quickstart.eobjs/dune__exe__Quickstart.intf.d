examples/quickstart.mli:
