examples/quickstart.ml: Format List Printf Rcg Rtl_core Socet_core Socet_cores Socet_graph Socet_rtl Socet_scan Socet_util Tsearch Tsim Version
