(** Linear-feedback shift registers (Galois form) — the pattern generators
    of the BIST substrate.  The paper assumes the SOC's memory cores are
    BIST-tested ([8]); this library makes that assumption concrete. *)

type t

val default_taps : int -> int
(** A primitive-polynomial tap mask for widths 2..24 (maximal-length
    sequences).  @raise Invalid_argument outside that range. *)

val create : ?seed:int -> ?taps:int -> int -> t
(** [create width]: [seed] defaults to 1 (never use 0: an LFSR seeded with
    zero is stuck), [taps] to {!default_taps}. *)

val width : t -> int

val state : t -> int

val step : t -> int
(** Advance one cycle and return the new state. *)

val pattern : t -> bits:int -> int
(** Advance [bits] cycles, collecting one output bit per cycle, LSB
    first — how a serial LFSR fills a test pattern. *)

val period : ?taps:int -> int -> int
(** Cycle length from seed 1; a maximal-length LFSR of width [w] returns
    [2^w - 1].  Exhaustive (meant for tests on small widths). *)
