type fault =
  | Cell_saf of { addr : int; bit : int; stuck : bool }
  | Transition of { addr : int; bit : int; rising : bool }
  | Coupling of { aggressor : int; victim : int; bit : int; value : bool }
  | Decoder_alias of { a : int; b : int }

type t = {
  m_words : int;
  m_width : int;
  cells : int array;
  fault : fault option;
}

let create ?fault ~words ~width () =
  if words <= 0 || width <= 0 || width > 30 then invalid_arg "Mem.create";
  { m_words = words; m_width = width; cells = Array.make words 0; fault }

let words t = t.m_words
let width t = t.m_width

let decode t addr =
  let addr =
    match t.fault with
    | Some (Decoder_alias { a; b }) -> if addr = a then b else addr
    | _ -> addr
  in
  if addr < 0 || addr >= t.m_words then invalid_arg "Mem: address out of range";
  addr

let apply_saf t addr v =
  match t.fault with
  | Some (Cell_saf { addr = fa; bit; stuck }) when fa = addr ->
      if stuck then v lor (1 lsl bit) else v land lnot (1 lsl bit)
  | _ -> v

let read t addr =
  let addr = decode t addr in
  apply_saf t addr t.cells.(addr)

let write t addr v =
  let addr = decode t addr in
  let v = v land ((1 lsl t.m_width) - 1) in
  let old = t.cells.(addr) in
  let v =
    match t.fault with
    | Some (Transition { addr = fa; bit; rising }) when fa = addr ->
        let was = (old lsr bit) land 1 and now = (v lsr bit) land 1 in
        if rising && was = 0 && now = 1 then v land lnot (1 lsl bit)
        else if (not rising) && was = 1 && now = 0 then v lor (1 lsl bit)
        else v
    | _ -> v
  in
  t.cells.(addr) <- apply_saf t addr v;
  (* Coupling: the aggressor write disturbs the victim. *)
  match t.fault with
  | Some (Coupling { aggressor; victim; bit; value }) when aggressor = addr ->
      if (v lsr bit) land 1 = if value then 1 else 0 then begin
        let vic = t.cells.(victim) in
        t.cells.(victim) <-
          (if value then vic lor (1 lsl bit) else vic land lnot (1 lsl bit))
      end
  | _ -> ()

let all_faults ~words ~width =
  let acc = ref [] in
  for addr = 0 to words - 1 do
    for bit = 0 to width - 1 do
      acc := Cell_saf { addr; bit; stuck = true } :: !acc;
      acc := Cell_saf { addr; bit; stuck = false } :: !acc;
      acc := Transition { addr; bit; rising = true } :: !acc;
      acc := Transition { addr; bit; rising = false } :: !acc;
      if addr + 1 < words then begin
        acc := Coupling { aggressor = addr; victim = addr + 1; bit; value = true } :: !acc;
        acc := Coupling { aggressor = addr + 1; victim = addr; bit; value = false } :: !acc
      end
    done;
    if addr + 1 < words then acc := Decoder_alias { a = addr; b = addr + 1 } :: !acc
  done;
  List.rev !acc

let fault_name = function
  | Cell_saf { addr; bit; stuck } ->
      Printf.sprintf "saf@%d.%d/%d" addr bit (if stuck then 1 else 0)
  | Transition { addr; bit; rising } ->
      Printf.sprintf "tf@%d.%d/%s" addr bit (if rising then "up" else "down")
  | Coupling { aggressor; victim; bit; value } ->
      Printf.sprintf "cf@%d->%d.%d/%d" aggressor victim bit (if value then 1 else 0)
  | Decoder_alias { a; b } -> Printf.sprintf "af@%d->%d" a b
