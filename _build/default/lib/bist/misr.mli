(** Multiple-input signature registers — the response compactors of the
    BIST substrate.  A MISR folds a response stream into a [width]-bit
    signature; a faulty stream escapes detection (aliases) only when its
    error polynomial is divisible by the MISR polynomial, with probability
    about [2^-width] for random errors. *)

type t

val create : ?taps:int -> int -> t
(** [create width]; taps default to the maximal-length polynomial. *)

val absorb : t -> int -> unit
(** Clock the register once with a response word XOR-ed in. *)

val signature : t -> int

val reset : t -> unit

val of_stream : ?taps:int -> width:int -> int list -> int
(** Signature of a whole response stream. *)
