open Socet_util
open Socet_netlist
open Socet_atpg

type report = {
  patterns : int;
  coverage : float;
  golden_signature : int;
  misr_width : int;
  aliasing_sampled : int;
  aliased : int;
}

(* Response words of one vector under one optional fault, folded bitwise
   (POs then flip-flop captures), chunked to the MISR width. *)
let response_words nl vec =
  let pi, st = Fsim.split_vector nl vec in
  let pi_words =
    Array.init (Bitvec.length pi) (fun i -> if Bitvec.get pi i then -1 else 0)
  in
  let st_words =
    Array.init (Bitvec.length st) (fun i -> if Bitvec.get st i then -1 else 0)
  in
  let v = Sim.eval_words nl ~pi:pi_words ~state:st_words ~inject:(fun _ x -> x) in
  let pos = Array.to_list (Sim.po_words nl v) in
  let ns = Array.to_list (Sim.next_state_words nl v) in
  List.map (fun w -> w land 1) (pos @ ns)

let signature_of nl ~misr_width vectors ~fault =
  let misr = Misr.create misr_width in
  List.iter
    (fun vec ->
      let bits =
        match fault with
        | None -> response_words nl vec
        | Some (f : Fault.t) ->
            (* Exact per-fault response: re-simulate with the fault. *)
            let pi, st = Fsim.split_vector nl vec in
            let pi_words =
              Array.init (Bitvec.length pi) (fun i -> if Bitvec.get pi i then -1 else 0)
            in
            let st_words =
              Array.init (Bitvec.length st) (fun i -> if Bitvec.get st i then -1 else 0)
            in
            let inject g x =
              if g = f.f_net then (if f.f_stuck then -1 else 0) else x
            in
            let v = Sim.eval_words nl ~pi:pi_words ~state:st_words ~inject in
            let pos = Array.to_list (Sim.po_words nl v) in
            let ns = Array.to_list (Sim.next_state_words nl v) in
            List.map (fun w -> w land 1) (pos @ ns)
      in
      (* Pack response bits into MISR-width words. *)
      let rec chunks acc cur n = function
        | [] -> List.rev (if n = 0 then acc else cur :: acc)
        | b :: rest ->
            if n = misr_width then chunks (cur :: acc) b 1 rest
            else chunks acc (cur lor (b lsl n)) (n + 1) rest
      in
      List.iter (Misr.absorb misr) (chunks [] 0 0 bits))
    vectors;
  Misr.signature misr

let run ?(patterns = 1024) ?(seed = 1) ?(misr_width = 16) nl =
  let veclen = Fsim.vector_length nl in
  let lfsr = Lfsr.create ~seed (max 2 (min 24 veclen)) in
  let vectors =
    List.init patterns (fun _ ->
        let v = Bitvec.create veclen in
        for i = 0 to veclen - 1 do
          ignore (Lfsr.step lfsr);
          Bitvec.set v i (Lfsr.state lfsr land 1 = 1)
        done;
        v)
  in
  let faults = Fault.collapse nl in
  let detected = Fsim.run_comb nl ~vectors ~faults in
  let golden = signature_of nl ~misr_width vectors ~fault:None in
  (* Aliasing probe on a deterministic sample of detected faults. *)
  let sample =
    List.filteri (fun i _ -> i mod max 1 (List.length detected / 24) = 0) detected
    |> List.filteri (fun i _ -> i < 24)
  in
  let aliased =
    List.length
      (List.filter
         (fun f -> signature_of nl ~misr_width vectors ~fault:(Some f) = golden)
         sample)
  in
  {
    patterns;
    coverage =
      (if faults = [] then 0.0
       else 100.0 *. float_of_int (List.length detected) /. float_of_int (List.length faults));
    golden_signature = golden;
    misr_width;
    aliasing_sampled = List.length sample;
    aliased;
  }
