(** March memory-test algorithms and their BIST engine.

    A March test is a sequence of elements; each element sweeps the
    address space in a direction applying a fixed list of read/write
    operations per cell.  March C- (10N operations) detects all stuck-at,
    transition, (unlinked idempotent) coupling and address-decoder faults
    of {!Mem.all_faults}. *)

type op = R0 | R1 | W0 | W1
type direction = Up | Down | Either
type element = { dir : direction; ops : op list }

val march_c_minus : element list
val mats_plus : element list
(** MATS+ (5N): catches stuck-at and decoder faults but misses some
    transition/coupling faults — the ablation partner of March C-. *)

val op_count : element list -> int
(** Operations per cell (the N-multiplier). *)

val run : Mem.t -> element list -> bool
(** [true] when every read matched its expectation (test passes — the
    memory looks fault-free). *)

type report = {
  algorithm : string;
  total_faults : int;
  detected : int;
  coverage : float;       (** percent *)
  ops : int;              (** total read/write operations executed *)
  by_class : (string * int * int) list;
      (** (fault class, detected, total) *)
}

val evaluate : words:int -> width:int -> name:string -> element list -> report
(** Inject every fault of {!Mem.all_faults} in turn and run the
    algorithm. *)

val bist_area : words:int -> width:int -> int
(** Area estimate (cells) of the on-chip March BIST controller: an address
    counter, a data/expectation generator and a comparator. *)
