type t = { w : int; taps : int; mutable st : int }

(* Primitive polynomials (tap masks for the Galois update), one per
   width.  Sources: standard m-sequence tables. *)
let default_taps = function
  | 2 -> 0x3
  | 3 -> 0x6
  | 4 -> 0xC
  | 5 -> 0x14
  | 6 -> 0x30
  | 7 -> 0x60
  | 8 -> 0xB8
  | 9 -> 0x110
  | 10 -> 0x240
  | 11 -> 0x500
  | 12 -> 0xE08
  | 13 -> 0x1C80
  | 14 -> 0x3802
  | 15 -> 0x6000
  | 16 -> 0xD008
  | 17 -> 0x12000
  | 18 -> 0x20400
  | 19 -> 0x72000
  | 20 -> 0x90000
  | 21 -> 0x140000
  | 22 -> 0x300000
  | 23 -> 0x420000
  | 24 -> 0xE10000
  | w -> invalid_arg (Printf.sprintf "Lfsr.default_taps: width %d unsupported" w)

let create ?(seed = 1) ?taps w =
  if w < 2 then invalid_arg "Lfsr.create: width must be >= 2";
  let taps = match taps with Some t -> t | None -> default_taps w in
  let st = seed land ((1 lsl w) - 1) in
  if st = 0 then invalid_arg "Lfsr.create: zero seed locks the register";
  { w; taps; st }

let width t = t.w
let state t = t.st

let step t =
  let lsb = t.st land 1 in
  let shifted = t.st lsr 1 in
  t.st <- (if lsb = 1 then shifted lxor t.taps else shifted);
  t.st

let pattern t ~bits =
  let v = ref 0 in
  for i = 0 to bits - 1 do
    v := !v lor ((t.st land 1) lsl i);
    ignore (step t)
  done;
  !v

let period ?taps w =
  let t = create ?taps w in
  let start = t.st in
  let rec loop n =
    if step t = start then n + 1
    else if n > 1 lsl (w + 1) then n (* guard: non-maximal cycles terminate *)
    else loop (n + 1)
  in
  loop 0
