type t = { w : int; taps : int; mutable st : int }

let create ?taps w =
  let taps = match taps with Some t -> t | None -> Lfsr.default_taps w in
  { w; taps; st = 0 }

let absorb t input =
  let lsb = t.st land 1 in
  let shifted = t.st lsr 1 in
  let advanced = if lsb = 1 then shifted lxor t.taps else shifted in
  t.st <- (advanced lxor input) land ((1 lsl t.w) - 1)

let signature t = t.st

let reset t = t.st <- 0

let of_stream ?taps ~width stream =
  let t = create ?taps width in
  List.iter (absorb t) stream;
  signature t
