(** A word-organized RAM model with injectable memory fault classes — the
    substrate under the March-test engine that justifies the paper's
    "memory cores use BIST" exclusion. *)

type fault =
  | Cell_saf of { addr : int; bit : int; stuck : bool }
      (** a cell bit permanently 0/1 *)
  | Transition of { addr : int; bit : int; rising : bool }
      (** the cell cannot make the 0->1 (rising) or 1->0 transition *)
  | Coupling of { aggressor : int; victim : int; bit : int; value : bool }
      (** writing [value] into the aggressor cell's bit forces the victim
          cell's same bit to [value] (idempotent coupling fault) *)
  | Decoder_alias of { a : int; b : int }
      (** an address-decoder fault: accesses to [a] land on cell [b], so
          cell [a] is unreachable and the two addresses collide *)

type t

val create : ?fault:fault -> words:int -> width:int -> unit -> t

val words : t -> int
val width : t -> int

val read : t -> int -> int
val write : t -> int -> int -> unit
(** Both honour the injected fault's semantics. *)

val all_faults : words:int -> width:int -> fault list
(** A representative fault population: every cell stuck-at, every
    transition fault, neighbour coupling on every bit, and adjacent
    decoder swaps.  Size is linear in [words * width]. *)

val fault_name : fault -> string
