lib/bist/logic_bist.ml: Array Bitvec Fault Fsim Lfsr List Misr Sim Socet_atpg Socet_netlist Socet_util
