lib/bist/mem.mli:
