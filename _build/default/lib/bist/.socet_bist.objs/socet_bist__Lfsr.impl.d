lib/bist/lfsr.ml: Printf
