lib/bist/lfsr.mli:
