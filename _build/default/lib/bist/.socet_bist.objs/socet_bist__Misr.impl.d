lib/bist/misr.ml: Lfsr List
