lib/bist/mem.ml: Array List Printf
