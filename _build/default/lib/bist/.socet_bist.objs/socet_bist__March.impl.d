lib/bist/march.ml: Hashtbl List Mem Option
