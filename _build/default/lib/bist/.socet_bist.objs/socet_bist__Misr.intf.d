lib/bist/misr.mli:
