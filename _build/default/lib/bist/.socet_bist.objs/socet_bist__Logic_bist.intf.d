lib/bist/logic_bist.mli: Netlist Socet_netlist
