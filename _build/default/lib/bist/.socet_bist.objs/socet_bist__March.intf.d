lib/bist/march.mli: Mem
