(** Pseudo-random logic BIST: an LFSR feeds the full-scan test model's
    inputs, a MISR compacts the outputs.  Coverage is measured by exact
    fault simulation of the LFSR patterns; aliasing is measured by
    comparing faulty signatures against the golden one on a sample of the
    detected faults. *)

open Socet_netlist

type report = {
  patterns : int;
  coverage : float;           (** percent of collapsed faults detected *)
  golden_signature : int;
  misr_width : int;
  aliasing_sampled : int;     (** faults whose signature was computed *)
  aliased : int;              (** of those, how many alias to golden *)
}

val run : ?patterns:int -> ?seed:int -> ?misr_width:int -> Netlist.t -> report
(** [patterns] defaults to 1024, [misr_width] to 16. *)
