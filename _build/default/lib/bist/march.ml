type op = R0 | R1 | W0 | W1
type direction = Up | Down | Either
type element = { dir : direction; ops : op list }

let march_c_minus =
  [
    { dir = Either; ops = [ W0 ] };
    { dir = Up; ops = [ R0; W1 ] };
    { dir = Up; ops = [ R1; W0 ] };
    { dir = Down; ops = [ R0; W1 ] };
    { dir = Down; ops = [ R1; W0 ] };
    { dir = Either; ops = [ R0 ] };
  ]

let mats_plus =
  [
    { dir = Either; ops = [ W0 ] };
    { dir = Up; ops = [ R0; W1 ] };
    { dir = Down; ops = [ R1; W0 ] };
  ]

let op_count elements =
  List.fold_left (fun acc e -> acc + List.length e.ops) 0 elements

let full_word width = (1 lsl width) - 1

let run mem elements =
  let words = Mem.words mem and width = Mem.width mem in
  let ones = full_word width in
  let ok = ref true in
  let apply addr op =
    match op with
    | W0 -> Mem.write mem addr 0
    | W1 -> Mem.write mem addr ones
    | R0 -> if Mem.read mem addr <> 0 then ok := false
    | R1 -> if Mem.read mem addr <> ones then ok := false
  in
  List.iter
    (fun e ->
      let addrs =
        match e.dir with
        | Up | Either -> List.init words (fun i -> i)
        | Down -> List.init words (fun i -> words - 1 - i)
      in
      List.iter (fun addr -> List.iter (apply addr) e.ops) addrs)
    elements;
  !ok

type report = {
  algorithm : string;
  total_faults : int;
  detected : int;
  coverage : float;
  ops : int;
  by_class : (string * int * int) list;
}

let class_of = function
  | Mem.Cell_saf _ -> "stuck-at"
  | Mem.Transition _ -> "transition"
  | Mem.Coupling _ -> "coupling"
  | Mem.Decoder_alias _ -> "decoder"

let evaluate ~words ~width ~name elements =
  let faults = Mem.all_faults ~words ~width in
  let per_class = Hashtbl.create 4 in
  let detected = ref 0 in
  List.iter
    (fun fault ->
      let mem = Mem.create ~fault ~words ~width () in
      let caught = not (run mem elements) in
      if caught then incr detected;
      let cls = class_of fault in
      let d, t = Option.value ~default:(0, 0) (Hashtbl.find_opt per_class cls) in
      Hashtbl.replace per_class cls ((if caught then d + 1 else d), t + 1))
    faults;
  let total = List.length faults in
  {
    algorithm = name;
    total_faults = total;
    detected = !detected;
    coverage =
      (if total = 0 then 0.0 else 100.0 *. float_of_int !detected /. float_of_int total);
    ops = op_count elements * words;
    by_class =
      Hashtbl.fold (fun cls (d, t) acc -> (cls, d, t) :: acc) per_class []
      |> List.sort compare;
  }

let bist_area ~words ~width =
  let ceil_log2 n =
    let rec loop b v = if v >= n then b else loop (b + 1) (2 * v) in
    loop 0 1
  in
  let abits = ceil_log2 words in
  (* Address up/down counter, data-background generator, comparator and a
     small sequencing FSM. *)
  (8 * abits) + (4 * width) + 30
