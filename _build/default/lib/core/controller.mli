(** Test controller area estimate.

    The paper's test controller is "a small finite-state machine" added to
    the chip that drives, during test mode, the per-core clock-gating
    signals, the transparency-mode controls (freeze enables, steering
    overrides like T2/T3 in Fig. 6) and the system-level test mux selects.
    We charge a fixed FSM base plus a per-signal decode/drive cost. *)

val base_cost : int
val per_signal_cost : int

val signal_count : Soc.t -> choice:(string * int) list -> n_smux:int -> int
(** Clock gates (one per core), freeze enables, steering overrides and
    added-mux selects of the chosen versions, plus system-level mux
    selects. *)

val cost : Soc.t -> choice:(string * int) list -> n_smux:int -> int
