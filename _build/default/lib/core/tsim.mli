(** Gate-level transparency-mode simulation.

    The strongest validation of the whole flow: elaborate the core with
    test-access hardware ({!Socet_synth.Elaborate.core_to_netlist} with
    [test_access]), then play the role of the paper's test controller —
    assert [test_mode], hold the stimulus on the input port, and fire each
    transfer of the transparency path in the cycle dictated by the path's
    depth schedule.  After exactly [s_latency] clock edges the value must
    be readable, bit for bit, at the path's output ports. *)

open Socet_util
open Socet_rtl

type outcome = {
  o_cycles : int;                         (** clock edges applied *)
  o_outputs : (string * Bitvec.t) list;   (** observed output-port values *)
}

val run_propagation :
  Rcg.t -> Tsearch.sol -> input:string -> value:Bitvec.t -> outcome option
(** Drives the elaborated core so that [value], applied at the named input
    port, rides the propagation path [sol].  Returns [None] when the path
    uses synthesized edges (test muxes with no gate realization in the
    functional netlist).  The value's width must match the port. *)

val check_propagation :
  Rcg.t -> Tsearch.sol -> input:string -> value:Bitvec.t -> bool
(** [run_propagation] plus the bit-mapping check: every bit of [value]
    must be observable at the position the path's slice algebra says it
    lands on.  False when simulation was impossible or any bit is lost. *)
