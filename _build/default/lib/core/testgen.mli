(** Chip-level testability evaluation (Table 3).

    - {!scan_access_coverage}: fault coverage/efficiency when every core's
      precomputed scan test set is applied in full — the situation both
      FSCAN-BSCAN and SOCET achieve, by isolation rings or transparency
      respectively.  Aggregated over the cores' ATPG runs.
    - {!sequential_coverage}: random sequential test generation on the
      flat chip — the "Orig." row (and the "HSCAN-only" row when the flat
      chip includes the cores' scan logic without chip-level access). *)

type coverage = {
  fault_count : int;
  detected : int;
  fc : float;    (** fault coverage, percent *)
  teff : float;  (** test efficiency, percent *)
}

val scan_access_coverage : Soc.t -> coverage

val sequential_coverage : Soc.t -> ?with_core_scan:bool -> ?cycles:int -> ?seed:int -> unit -> coverage
