open Socet_rtl
module Digraph = Socet_graph.Digraph

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let rcg_dot rcg =
  let buf = Buffer.create 1024 in
  let g = Rcg.graph rcg in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n"
       (escape (Rtl_core.name (Rcg.core rcg))));
  Digraph.iter_nodes
    (fun v ->
      let n = Rcg.node rcg v in
      let shape =
        match n.Rcg.n_kind with
        | Rcg.In -> "diamond"
        | Rcg.Out -> "doublecircle"
        | Rcg.Reg -> "box"
      in
      let marks =
        (if Rcg.is_c_split rcg v then " C" else "")
        ^ if Rcg.is_o_split rcg v then " O" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s[%d]%s\", shape=%s];\n" v
           (escape n.Rcg.n_name) n.Rcg.n_width marks shape))
    g;
  List.iter
    (fun (e : Rcg.edge_label Digraph.edge) ->
      if e.label.Rcg.e_enabled then begin
        let style =
          if e.label.Rcg.e_hscan then "penwidth=2"
          else
            match e.label.Rcg.e_via with
            | `Direct -> "style=solid"
            | `Mux _ -> "style=dotted"
        in
        let label =
          Format.asprintf "%a>%a" Rtl_types.pp_range e.label.Rcg.e_src_range
            Rtl_types.pp_range e.label.Rcg.e_dst_range
        in
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [%s, label=\"%s\"];\n" e.src e.dst style
             (escape label))
      end)
    (Digraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let ccg_dot (ccg : Ccg.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n"
       (escape ccg.Ccg.soc.Soc.soc_name));
  Array.iteri
    (fun v node ->
      let label, shape =
        match node with
        | Ccg.N_pi p -> (Printf.sprintf "PI %s" p, "diamond")
        | Ccg.N_po p -> (Printf.sprintf "PO %s" p, "doublecircle")
        | Ccg.N_cin (c, p) -> (Printf.sprintf "%s.%s" c p, "box")
        | Ccg.N_cout (c, p) -> (Printf.sprintf "%s.%s" c p, "box")
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" v (escape label) shape))
    ccg.Ccg.nodes;
  List.iter
    (fun (e : Ccg.cedge Digraph.edge) ->
      let attrs =
        match e.label with
        | Ccg.Wire -> "color=gray"
        | Ccg.Transp { latency; _ } ->
            Printf.sprintf "penwidth=2, label=\"%d\"" latency
        | Ccg.Smux { width } ->
            Printf.sprintf "style=dashed, label=\"mux %db\"" width
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [%s];\n" e.src e.dst attrs))
    (Digraph.edges ccg.Ccg.graph);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
