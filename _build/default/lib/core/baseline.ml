open Socet_rtl
open Socet_scan

type t = {
  b_core_scan_overhead : int;
  b_ring_overhead : int;
  b_total_overhead : int;
  b_time : int;
  b_per_core : (string * int) list;
}

let evaluate soc =
  let scan_cost =
    List.fold_left (fun acc ci -> acc + Fscan.overhead ci.Soc.ci_netlist) 0 soc.Soc.insts
  in
  let ring_cost =
    List.fold_left (fun acc ci -> acc + Bscan.ring_overhead ci.Soc.ci_core) 0 soc.Soc.insts
  in
  let per_core =
    List.map
      (fun ci ->
        let n_ff = List.length (Socet_netlist.Netlist.dffs ci.Soc.ci_netlist) in
        let n_inputs = Rtl_core.input_bit_count ci.Soc.ci_core in
        let n_vectors = Soc.atpg_vectors ci in
        (ci.Soc.ci_name, Bscan.test_time ~n_ff ~n_inputs ~n_vectors))
      soc.Soc.insts
  in
  {
    b_core_scan_overhead = scan_cost;
    b_ring_overhead = ring_cost;
    b_total_overhead = scan_cost + ring_cost;
    b_time = List.fold_left (fun acc (_, t) -> acc + t) 0 per_core;
    b_per_core = per_core;
  }

type bus = {
  tb_width : int;
  tb_mux_overhead : int;
  tb_scan_overhead : int;
  tb_total_overhead : int;
  tb_time : int;
}

let test_bus ?(width = 8) soc =
  let mux_cost =
    List.fold_left
      (fun acc ci ->
        acc
        + 3
          * (Rtl_core.input_bit_count ci.Soc.ci_core
            + Rtl_core.output_bit_count ci.Soc.ci_core))
      0 soc.Soc.insts
    + (2 * width) (* bus drivers at the chip boundary *)
  in
  let scan_cost =
    List.fold_left (fun acc ci -> acc + Fscan.overhead ci.Soc.ci_netlist) 0 soc.Soc.insts
  in
  let time =
    List.fold_left
      (fun acc ci ->
        let n_ff = List.length (Socet_netlist.Netlist.dffs ci.Soc.ci_netlist) in
        acc + Fscan.test_time ~n_ff ~n_vectors:(Soc.atpg_vectors ci))
      0 soc.Soc.insts
  in
  {
    tb_width = width;
    tb_mux_overhead = mux_cost;
    tb_scan_overhead = scan_cost;
    tb_total_overhead = mux_cost + scan_cost;
    tb_time = time;
  }
