open Socet_util
open Socet_rtl
open Socet_netlist
open Socet_synth
module Digraph = Socet_graph.Digraph

type outcome = {
  o_cycles : int;
  o_outputs : (string * Bitvec.t) list;
}

let depth_of sol v = Option.value ~default:0 (List.assoc_opt v sol.Tsearch.s_depths)

let run_propagation rcg sol ~input ~value =
  let core = Rcg.core rcg in
  if
    List.exists
      (fun (e : Rcg.edge_label Digraph.edge) -> e.label.Rcg.e_transfer < 0)
      sol.Tsearch.s_edges
  then None
  else begin
    let nl = Elaborate.core_to_netlist ~test_access:true core in
    let npi = List.length (Netlist.pis nl) in
    let pi_pos name = Netlist.pi_index nl (Netlist.find_pi nl name) in
    let base = Bitvec.create npi in
    (* Stimulus held on the input port; transparency mode asserted. *)
    let in_width = (Rtl_core.find_port core input).Rtl_core.p_width in
    if Bitvec.length value <> in_width then invalid_arg "Tsim: value width";
    for i = 0 to in_width - 1 do
      Bitvec.set base (pi_pos (Printf.sprintf "%s.%d" input i)) (Bitvec.get value i)
    done;
    Bitvec.set base (pi_pos "test_mode") true;
    (* Firing schedule: an edge into a register fires in the cycle its
       destination is written; edges into output ports are combinational
       and asserted during the final read. *)
    let reg_edges, out_edges =
      List.partition
        (fun (e : Rcg.edge_label Digraph.edge) ->
          (Rcg.node rcg e.dst).Rcg.n_kind = Rcg.Reg)
        sol.Tsearch.s_edges
    in
    let override_pos (e : Rcg.edge_label Digraph.edge) =
      pi_pos (Printf.sprintf "t_ov.%d" e.label.Rcg.e_transfer)
    in
    let latency = sol.Tsearch.s_latency in
    let state = ref (Sim.initial_state nl) in
    for t = 1 to latency do
      let pi = Bitvec.copy base in
      List.iter
        (fun e ->
          if depth_of sol e.Digraph.dst = t then Bitvec.set pi (override_pos e) true)
        reg_edges;
      let _, st' = Sim.eval nl ~pi ~state:!state in
      state := st'
    done;
    (* Combinational read-out through the output-port steering. *)
    let pi = Bitvec.copy base in
    List.iter (fun e -> Bitvec.set pi (override_pos e) true) out_edges;
    let po, _ = Sim.eval nl ~pi ~state:!state in
    let po_index = Hashtbl.create 16 in
    List.iteri (fun i (name, _) -> Hashtbl.replace po_index name i) (Netlist.pos nl);
    let outputs =
      List.map
        (fun term ->
          let node = Rcg.node rcg term in
          let w = node.Rcg.n_width in
          let bv = Bitvec.create w in
          for i = 0 to w - 1 do
            match Hashtbl.find_opt po_index (Printf.sprintf "%s.%d" node.Rcg.n_name i) with
            | Some k -> Bitvec.set bv i (Bitvec.get po k)
            | None -> ()
          done;
          (node.Rcg.n_name, bv))
        sol.Tsearch.s_terminals
    in
    Some { o_cycles = latency; o_outputs = outputs }
  end

(* Where does each input bit land?  Propagate a per-node position map
   through the path's edges in depth order. *)
let bit_landing rcg sol ~input_node =
  let maps : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let width_of v = (Rcg.node rcg v).Rcg.n_width in
  let map_of v =
    match Hashtbl.find_opt maps v with
    | Some m -> m
    | None ->
        let m = Array.make (width_of v) (-1) in
        Hashtbl.replace maps v m;
        m
  in
  let src_map = map_of input_node in
  Array.iteri (fun i _ -> src_map.(i) <- i) src_map;
  (* Register writes settle before the combinational output-port reads of
     the same cycle. *)
  let rank (e : Rcg.edge_label Digraph.edge) =
    ( depth_of sol e.dst,
      match (Rcg.node rcg e.dst).Rcg.n_kind with Rcg.Out -> 1 | _ -> 0 )
  in
  let edges =
    List.sort
      (fun (a : Rcg.edge_label Digraph.edge) (b : Rcg.edge_label Digraph.edge) ->
        compare (rank a) (rank b))
      sol.Tsearch.s_edges
  in
  List.iter
    (fun (e : Rcg.edge_label Digraph.edge) ->
      let sm = map_of e.src and dm = map_of e.dst in
      let sr = e.label.Rcg.e_src_range and dr = e.label.Rcg.e_dst_range in
      for j = 0 to Rtl_types.range_width sr - 1 do
        if dr.Rtl_types.lsb + j < Array.length dm && sr.Rtl_types.lsb + j < Array.length sm
        then dm.(dr.Rtl_types.lsb + j) <- sm.(sr.Rtl_types.lsb + j)
      done)
    edges;
  maps

let check_propagation rcg sol ~input ~value =
  match run_propagation rcg sol ~input ~value with
  | None -> false
  | Some outcome ->
      let input_node = Rcg.node_id rcg input in
      let maps = bit_landing rcg sol ~input_node in
      let seen = Array.make (Bitvec.length value) false in
      let ok = ref true in
      List.iter
        (fun term ->
          let name = (Rcg.node rcg term).Rcg.n_name in
          match (Hashtbl.find_opt maps term, List.assoc_opt name outcome.o_outputs) with
          | Some m, Some observed ->
              Array.iteri
                (fun pos src_bit ->
                  if src_bit >= 0 then begin
                    seen.(src_bit) <- true;
                    if Bitvec.get observed pos <> Bitvec.get value src_bit then
                      ok := false
                  end)
                m
          | _ -> ())
        sol.Tsearch.s_terminals;
      !ok && Array.for_all (fun b -> b) seen
