(** Core version generation: trading transparency latency for area
    (paper Sec. 4, Figs. 5, 6, 8).

    - {e Version 1} obtains transparency through the HSCAN chain edges
      alone (falling back to other existing edges, and then to test
      multiplexers, only when the chains cannot do it).  Cost: freeze
      (hold) logic for branch balancing.
    - {e Version 2} additionally steers existing non-HSCAN multiplexer
      paths in test mode; each such edge costs select-override logic
      proportional to the control bits recorded on the transfer.
    - {e Version 3} adds one transparency multiplexer per input/output
      pair whose latency is still above one cycle, connecting a register
      reachable from the input in one cycle straight to the output.

    Versions are cumulative: the hardware of version [k] includes that of
    version [k-1] (the paper's Fig. 6 area column behaves this way). *)

open Socet_rtl
module Digraph = Socet_graph.Digraph

(** Cost model (cells). *)
val freeze_cost : int
(** Per frozen register: gating its load enable in transparency mode. *)

val activation_cost : ctrl:int -> int
(** Steering a non-HSCAN mux edge: [2*ctrl + 1]. *)

val tmux_cost : width:int -> int
(** A dedicated transparency multiplexer: [5*width]. *)

type pair = {
  pr_input : int;
  pr_output : int;
  pr_latency : int;
  pr_sol : Tsearch.sol;
}
(** CCG raw material: [pr_output] is justifiable from [pr_input] with the
    given latency (RCG node ids).  [pr_sol] carries the RCG edges used, for
    chip-level conflict detection (paths sharing internal edges cannot run
    concurrently). *)

type t = {
  v_index : int;                     (** 1-based *)
  v_prop : (int * Tsearch.sol) list; (** per input node *)
  v_just : (int * Tsearch.sol) list; (** per output node *)
  v_overhead : int;                  (** cumulative transparency cells *)
  v_added_muxes : (int * int * int) list;
      (** transparency muxes added for this and previous versions:
          (register node, output node, width) *)
  v_pairs : pair list;
}

val generate : ?max_versions:int -> Rcg.t -> t list
(** A ladder of at most [max_versions] (default 3) distinct versions;
    rungs that gain no latency are dropped.  The RCG must already carry
    HSCAN markings; transparency muxes are inserted into the RCG as real
    edges, one per rung, aimed at the slowest (then widest) output still
    above one cycle. *)

val latency_between : t -> input:int -> output:int -> int option

val total_latency : t -> int
(** Sum of justification latencies over all outputs — the "D -> A(11-0)"
    style combined figure (paths of one core share the input port and
    serialize). *)
