(** The core connectivity graph (paper Sec. 5, Fig. 9).

    Nodes are chip PIs, chip POs, and the input/output ports of every
    non-memory core.  Edges are:
    - {e wire} edges from the SOC interconnect (combinational, free);
    - {e transparency} edges between input/output pairs of a core,
      labelled with the latency of the chosen version's path and the
      internal resources it occupies (paths through one core that share an
      RCG edge — or the same input port — cannot overlap in time);
    - {e system-level test mux} edges added by the router/optimizer when no
      path exists (combinational, but they cost area). *)

module Digraph = Socet_graph.Digraph

type cnode =
  | N_pi of string
  | N_po of string
  | N_cin of string * string   (** (instance, input port) *)
  | N_cout of string * string  (** (instance, output port) *)

type resource = R_edge of string * int | R_port of string * int
(** (instance, RCG edge id) or (instance, RCG input-node id): the units of
    time-reservation inside a core. *)

type cedge =
  | Wire
  | Transp of {
      inst : string;
      pr_in : int;   (** RCG input-node id of the pair *)
      pr_out : int;  (** RCG output-node id of the pair *)
      latency : int;
      resources : resource list;
    }
  | Smux of { width : int }

type t = {
  graph : cedge Digraph.t;
  nodes : cnode array;
  index : (cnode, int) Hashtbl.t;
  soc : Soc.t;
  choice : (string * int) list;  (** version index per instance *)
}

val node_id : t -> cnode -> int
(** @raise Not_found *)

val node : t -> int -> cnode

val build : Soc.t -> choice:(string * int) list -> t
(** [choice] maps instance names to version indices (1-based); missing
    instances default to version 1. *)

val add_smux : t -> src:int -> dst:int -> width:int -> cedge Digraph.edge
(** Insert a system-level test mux edge (used by the router as a
    fallback and by the optimizer as a trade-off move). *)

val smux_cost : width:int -> int
(** Area of a system-level test multiplexer: [3*width + 1]. *)

val core_inputs : t -> string -> int list
(** CCG node ids of the instance's input ports, in declaration order. *)

val core_outputs : t -> string -> int list

val pp_node : t -> int -> string
