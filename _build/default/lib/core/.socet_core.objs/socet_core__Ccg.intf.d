lib/core/ccg.mli: Hashtbl Soc Socet_graph
