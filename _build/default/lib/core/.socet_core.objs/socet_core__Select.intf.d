lib/core/select.mli: Schedule Soc Version
