lib/core/select.ml: Access Ccg Hashtbl List Option Schedule Soc Socet_rtl Version
