lib/core/version.ml: Hashtbl List Option Rcg Rtl_types Socet_graph Socet_rtl Tsearch
