lib/core/tsearch.ml: Array Hashtbl List Option Queue Rcg Rtl_types Socet_graph Socet_rtl
