lib/core/chip.mli: Netlist Soc Socet_netlist
