lib/core/tsim.mli: Bitvec Rcg Socet_rtl Socet_util Tsearch
