lib/core/chip.ml: Array Cell Elaborate Fscan Hashtbl List Netlist Option Printf Soc Socet_netlist Socet_scan Socet_synth String
