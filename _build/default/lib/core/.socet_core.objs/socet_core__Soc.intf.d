lib/core/soc.mli: Hscan Lazy Netlist Podem Rcg Rtl_core Socet_atpg Socet_netlist Socet_rtl Socet_scan Version
