lib/core/schedule.mli: Access Ccg Hashtbl Soc
