lib/core/access.mli: Ccg Hashtbl Socet_graph
