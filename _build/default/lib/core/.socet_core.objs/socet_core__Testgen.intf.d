lib/core/testgen.mli: Soc
