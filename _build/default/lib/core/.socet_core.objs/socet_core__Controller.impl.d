lib/core/controller.ml: Hashtbl List Option Soc Socet_graph Socet_rtl Tsearch Version
