lib/core/baseline.ml: Bscan Fscan List Rtl_core Soc Socet_netlist Socet_rtl Socet_scan
