lib/core/ccg.ml: Array Hashtbl List Option Printf Rcg Rtl_core Soc Socet_graph Socet_rtl Tsearch Version
