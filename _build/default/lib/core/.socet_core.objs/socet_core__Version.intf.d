lib/core/version.mli: Rcg Socet_graph Socet_rtl Tsearch
