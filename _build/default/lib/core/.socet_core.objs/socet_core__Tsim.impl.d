lib/core/tsim.ml: Array Bitvec Elaborate Hashtbl List Netlist Option Printf Rcg Rtl_core Rtl_types Sim Socet_graph Socet_netlist Socet_rtl Socet_synth Socet_util Tsearch
