lib/core/soc.ml: Elaborate Hscan Lazy List Netlist Option Podem Printf Rcg Rtl_core Socet_atpg Socet_netlist Socet_rtl Socet_scan Socet_synth Version
