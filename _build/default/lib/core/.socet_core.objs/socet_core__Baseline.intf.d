lib/core/baseline.mli: Soc
