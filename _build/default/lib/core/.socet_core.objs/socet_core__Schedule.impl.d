lib/core/schedule.ml: Access Ccg Controller Hashtbl Hscan List Option Soc Socet_graph Socet_rtl Socet_scan Version
