lib/core/controller.mli: Soc
