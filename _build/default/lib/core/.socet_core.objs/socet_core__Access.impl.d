lib/core/access.ml: Array Ccg Hashtbl List Option Soc Socet_graph Socet_rtl Socet_util
