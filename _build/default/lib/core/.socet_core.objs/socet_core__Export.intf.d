lib/core/export.mli: Ccg Rcg Socet_rtl
