lib/core/tsearch.mli: Rcg Socet_graph Socet_rtl
