lib/core/export.ml: Array Buffer Ccg Format List Printf Rcg Rtl_core Rtl_types Soc Socet_graph Socet_rtl String
