lib/core/testgen.ml: Chip Lazy List Podem Seqgen Soc Socet_atpg
