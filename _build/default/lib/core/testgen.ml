open Socet_atpg

type coverage = {
  fault_count : int;
  detected : int;
  fc : float;
  teff : float;
}

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let scan_access_coverage soc =
  let total, det, red =
    List.fold_left
      (fun (t, d, r) ci ->
        let stats = Lazy.force ci.Soc.ci_atpg in
        ( t + stats.Podem.total_faults,
          d + List.length stats.Podem.detected,
          r + List.length stats.Podem.redundant ))
      (0, 0, 0) soc.Soc.insts
  in
  {
    fault_count = total;
    detected = det;
    fc = pct det total;
    teff = pct (det + red) total;
  }

let sequential_coverage soc ?(with_core_scan = false) ?(cycles = 512) ?(seed = 11) () =
  let chip = Chip.compose soc ~with_core_scan () in
  let stats = Seqgen.random ~cycles ~seed chip in
  {
    fault_count = stats.Seqgen.total_faults;
    detected = stats.Seqgen.detected;
    fc = stats.Seqgen.coverage;
    teff = stats.Seqgen.efficiency;
  }
