(** The FSCAN-BSCAN baseline (paper Sec. 1, Tables 2 and 3).

    Every core is full-scanned and wrapped in a boundary-scan ring; cores
    are tested one at a time by shifting each test vector through the
    core's internal chain concatenated with its input ring cells:
    per core, [(ff + inputs) * vectors + (ff + inputs) - 1] cycles. *)

type t = {
  b_core_scan_overhead : int;  (** full-scan upgrades, all cores (cells) *)
  b_ring_overhead : int;       (** boundary-scan rings, all cores (cells) *)
  b_total_overhead : int;
  b_time : int;                (** global test application time (cycles) *)
  b_per_core : (string * int) list;  (** per-core test time *)
}

val evaluate : Soc.t -> t

(** {2 Test-bus baseline}

    The other conventional method from the paper's introduction: an added
    test bus runs from the PIs to the POs and multiplexers isolate each
    (full-scanned) core onto it during test.  Unlike SOCET it cannot test
    the interconnect between cores, and the bus multiplexers are paid on
    every core port. *)

type bus = {
  tb_width : int;
  tb_mux_overhead : int;   (** bus isolation muxes on every core port *)
  tb_scan_overhead : int;  (** full-scan upgrades *)
  tb_total_overhead : int;
  tb_time : int;           (** cores tested one after another over the bus *)
}

val test_bus : ?width:int -> Soc.t -> bus
(** [width] defaults to 8 bus lines. *)
