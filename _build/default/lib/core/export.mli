(** Graphviz (DOT) renderings of the two graphs a user most wants to see:
    a core's register connectivity graph with its HSCAN chains, and the
    chip-level core connectivity graph with transparency latencies (the
    paper's Figs. 7 and 9). *)

open Socet_rtl

val rcg_dot : Rcg.t -> string
(** Inputs as diamonds, outputs as double circles, registers as boxes;
    HSCAN chain edges bold, disabled rescue edges omitted, C-/O-split
    nodes annotated. *)

val ccg_dot : Ccg.t -> string
(** Wire edges thin, transparency edges labelled with their latency,
    system-level test muxes dashed. *)
