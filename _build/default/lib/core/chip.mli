(** Flattening an SOC into a single gate-level netlist.

    Used by the testability experiments (Table 3): the "Orig." row fault-
    simulates the flat chip with random sequences, and the "HSCAN-only"
    row does the same after inserting each core's scan chains with the
    scan-enable brought to a chip test pin but the chains not otherwise
    accessible from the pins — exactly the situation the paper shows to be
    insufficient. *)

open Socet_netlist

val compose : Soc.t -> ?with_core_scan:bool -> unit -> Netlist.t
(** Instantiate every core's gates, replace core-input PIs by their
    drivers, and expose the declared chip PIs/POs.  With
    [with_core_scan], each core first receives full-scan insertion; the
    scan enables are ganged to an added [test_se] chip PI and the scan
    inputs tied to existing core nets. *)
