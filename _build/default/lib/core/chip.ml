open Socet_netlist
open Socet_synth
open Socet_scan

(* "port.3" -> ("port", 3) *)
let split_pin name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i -> (
      let port = String.sub name 0 i in
      let idx = String.sub name (i + 1) (String.length name - i - 1) in
      match int_of_string_opt idx with Some k -> Some (port, k) | None -> None)

let compose soc ?(with_core_scan = false) () =
  let chip = Netlist.create (soc.Soc.soc_name ^ if with_core_scan then "+scan" else "") in
  let zero = Netlist.add_gate chip Cell.Const0 [||] in
  (* Chip PIs. *)
  let chip_pi = Hashtbl.create 32 in
  List.iter
    (fun (name, w) ->
      for i = 0 to w - 1 do
        Hashtbl.replace chip_pi (name, i)
          (Netlist.add_pi chip (Printf.sprintf "%s.%d" name i))
      done)
    soc.Soc.soc_pis;
  let test_se =
    if with_core_scan then Some (Netlist.add_pi chip "test_se") else None
  in
  (* Fresh per-core netlists (scan insertion mutates, so never reuse the
     instance's cached netlist). *)
  let core_nls =
    List.map
      (fun ci ->
        let nl = Elaborate.core_to_netlist ci.Soc.ci_core in
        if with_core_scan then ignore (Fscan.insert nl);
        (ci, nl))
      soc.Soc.insts
  in
  (* Pass 1: allocate chip gates (dummy fanins). *)
  let maps =
    List.map
      (fun (ci, nl) ->
        let map = Array.make (Netlist.gate_count nl) (-1) in
        for g = 0 to Netlist.gate_count nl - 1 do
          let kind = Netlist.kind nl g in
          let name = Printf.sprintf "%s/%s" ci.Soc.ci_name (Netlist.gate_name nl g) in
          let new_id =
            match kind with
            | Cell.Pi -> Netlist.add_gate chip ~name Cell.Buf [| zero |]
            | k ->
                let fanin = Array.make (Cell.arity k) zero in
                Netlist.add_gate chip ~name k fanin
          in
          map.(g) <- new_id
        done;
        (ci, nl, map))
      core_nls
  in
  (* Core output nets, addressable by (instance, port, bit). *)
  let cout = Hashtbl.create 64 in
  List.iter
    (fun (ci, nl, map) ->
      List.iter
        (fun (po_name, net) ->
          match split_pin po_name with
          | Some (port, bit) ->
              Hashtbl.replace cout (ci.Soc.ci_name, port, bit) map.(net)
          | None -> () (* scan_out and friends: unconnected *))
        (Netlist.pos nl))
    maps;
  (* Resolve the driver of one core-input bit. *)
  let driver_net inst port bit =
    match Soc.driver_of soc inst port with
    | Some (Soc.Pi chip_in) -> Hashtbl.find_opt chip_pi (chip_in, bit)
    | Some (Soc.Cport (i2, p2)) -> Hashtbl.find_opt cout (i2, p2, bit)
    | Some (Soc.Po _) | None -> None
  in
  (* Pass 2: wire real fanins. *)
  List.iter
    (fun (ci, nl, map) ->
      for g = 0 to Netlist.gate_count nl - 1 do
        match Netlist.kind nl g with
        | Cell.Pi ->
            let name = Netlist.gate_name nl g in
            let net =
              match split_pin name with
              | Some (port, bit) -> driver_net ci.Soc.ci_name port bit
              | None -> (
                  match (name, test_se) with
                  | "scan_en", Some se -> Some se
                  | _ -> None (* scan_in: tied low *))
            in
            Netlist.set_kind chip map.(g) Cell.Buf
              [| Option.value ~default:zero net |]
        | k ->
            let fanin = Array.map (fun f -> map.(f)) (Netlist.fanin nl g) in
            Netlist.set_kind chip map.(g) k fanin
      done)
    maps;
  (* Chip POs. *)
  List.iter
    (fun (po, w) ->
      let driver =
        List.find_opt (fun c -> c.Soc.c_to = Soc.Po po) soc.Soc.conns
      in
      match driver with
      | Some { Soc.c_from = Soc.Cport (i, p); _ } ->
          for bit = 0 to w - 1 do
            match Hashtbl.find_opt cout (i, p, bit) with
            | Some net -> Netlist.add_po chip (Printf.sprintf "%s.%d" po bit) net
            | None -> ()
          done
      | Some { Soc.c_from = Soc.Pi chip_in; _ } ->
          for bit = 0 to w - 1 do
            match Hashtbl.find_opt chip_pi (chip_in, bit) with
            | Some net -> Netlist.add_po chip (Printf.sprintf "%s.%d" po bit) net
            | None -> ()
          done
      | _ -> ())
    soc.Soc.soc_pos;
  chip
