open Socet_rtl
module Digraph = Socet_graph.Digraph

type cnode =
  | N_pi of string
  | N_po of string
  | N_cin of string * string
  | N_cout of string * string

type resource = R_edge of string * int | R_port of string * int

type cedge =
  | Wire
  | Transp of {
      inst : string;
      pr_in : int;   (** RCG input-node id of the pair *)
      pr_out : int;  (** RCG output-node id of the pair *)
      latency : int;
      resources : resource list;
    }
  | Smux of { width : int }

type t = {
  graph : cedge Digraph.t;
  nodes : cnode array;
  index : (cnode, int) Hashtbl.t;
  soc : Soc.t;
  choice : (string * int) list;
}

let smux_cost ~width = (3 * width) + 1

let node_id t n = Hashtbl.find t.index n

let node t i = t.nodes.(i)

let build soc ~choice =
  let g = Digraph.create () in
  let nodes = ref [] in
  let index = Hashtbl.create 64 in
  let add n =
    let id = Digraph.add_node g in
    nodes := n :: !nodes;
    Hashtbl.replace index n id;
    id
  in
  List.iter (fun (p, _) -> ignore (add (N_pi p))) soc.Soc.soc_pis;
  List.iter (fun (p, _) -> ignore (add (N_po p))) soc.Soc.soc_pos;
  List.iter
    (fun ci ->
      List.iter
        (fun (p : Rtl_core.port) ->
          match p.Rtl_core.p_dir with
          | `In -> ignore (add (N_cin (ci.Soc.ci_name, p.Rtl_core.p_name)))
          | `Out -> ignore (add (N_cout (ci.Soc.ci_name, p.Rtl_core.p_name))))
        (Rtl_core.ports ci.Soc.ci_core))
    soc.Soc.insts;
  (* Interconnect wires. *)
  let ccg_of_ref ~sink = function
    | Soc.Pi n -> Hashtbl.find_opt index (N_pi n)
    | Soc.Po n -> Hashtbl.find_opt index (N_po n)
    | Soc.Cport (i, p) ->
        if sink then Hashtbl.find_opt index (N_cin (i, p))
        else Hashtbl.find_opt index (N_cout (i, p))
  in
  List.iter
    (fun conn ->
      match
        (ccg_of_ref ~sink:false conn.Soc.c_from, ccg_of_ref ~sink:true conn.Soc.c_to)
      with
      | Some src, Some dst -> ignore (Digraph.add_edge g ~src ~dst Wire)
      | _ -> () (* connection touches a memory or other excluded block *))
    soc.Soc.conns;
  (* Transparency edges from the chosen versions. *)
  List.iter
    (fun ci ->
      let name = ci.Soc.ci_name in
      let k = Option.value ~default:1 (List.assoc_opt name choice) in
      let version = Soc.version_of ci k in
      List.iter
        (fun (p : Version.pair) ->
          let rcg = ci.Soc.ci_rcg in
          let in_name = (Rcg.node rcg p.Version.pr_input).Rcg.n_name in
          let out_name = (Rcg.node rcg p.Version.pr_output).Rcg.n_name in
          match
            ( Hashtbl.find_opt index (N_cin (name, in_name)),
              Hashtbl.find_opt index (N_cout (name, out_name)) )
          with
          | Some src, Some dst ->
              let resources =
                R_port (name, p.Version.pr_input)
                :: List.map
                     (fun (e : Rcg.edge_label Digraph.edge) -> R_edge (name, e.id))
                     p.Version.pr_sol.Tsearch.s_edges
              in
              ignore
                (Digraph.add_edge g ~src ~dst
                   (Transp
                      {
                        inst = name;
                        pr_in = p.Version.pr_input;
                        pr_out = p.Version.pr_output;
                        latency = p.Version.pr_latency;
                        resources;
                      }))
          | _ -> ())
        version.Version.v_pairs)
    soc.Soc.insts;
  { graph = g; nodes = Array.of_list (List.rev !nodes); index; soc; choice }

let add_smux t ~src ~dst ~width = Digraph.add_edge t.graph ~src ~dst (Smux { width })

let ports_of t inst dir =
  let acc = ref [] in
  Array.iteri
    (fun i n ->
      match (n, dir) with
      | N_cin (x, _), `In when x = inst -> acc := i :: !acc
      | N_cout (x, _), `Out when x = inst -> acc := i :: !acc
      | _ -> ())
    t.nodes;
  List.rev !acc

let core_inputs t inst = ports_of t inst `In
let core_outputs t inst = ports_of t inst `Out

let pp_node t i =
  match t.nodes.(i) with
  | N_pi p -> Printf.sprintf "PI:%s" p
  | N_po p -> Printf.sprintf "PO:%s" p
  | N_cin (c, p) -> Printf.sprintf "%s.%s(in)" c p
  | N_cout (c, p) -> Printf.sprintf "%s.%s(out)" c p
