module Digraph = Socet_graph.Digraph

let base_cost = 12
let per_signal_cost = 3

let version_signals (v : Version.t) =
  let freezes = Hashtbl.create 8 in
  let steered = Hashtbl.create 8 in
  let count_sol (s : Tsearch.sol) =
    List.iter (fun (n, _) -> Hashtbl.replace freezes n ()) s.Tsearch.s_freezes;
    List.iter
      (fun (e : Socet_rtl.Rcg.edge_label Digraph.edge) ->
        if not e.label.Socet_rtl.Rcg.e_hscan then Hashtbl.replace steered e.id ())
      s.Tsearch.s_edges
  in
  List.iter (fun (_, s) -> count_sol s) v.Version.v_prop;
  List.iter (fun (_, s) -> count_sol s) v.Version.v_just;
  Hashtbl.length freezes + Hashtbl.length steered

let signal_count soc ~choice ~n_smux =
  let per_core =
    List.fold_left
      (fun acc ci ->
        let k = Option.value ~default:1 (List.assoc_opt ci.Soc.ci_name choice) in
        let v = Soc.version_of ci k in
        acc + 1 (* clock gate *) + version_signals v)
      0 soc.Soc.insts
  in
  per_core + n_smux

let cost soc ~choice ~n_smux =
  base_cost + (per_signal_cost * signal_count soc ~choice ~n_smux)
