open Rtl_types
module Digraph = Socet_graph.Digraph

type node_kind = In | Out | Reg

type node = { n_kind : node_kind; n_name : string; n_width : int }

type edge_label = {
  e_src_range : range;
  e_dst_range : range;
  e_via : [ `Direct | `Mux of int ];
  e_transfer : int;
  mutable e_hscan : bool;
  mutable e_enabled : bool;
}

type t = {
  rcg_core : Rtl_core.t;
  g : edge_label Digraph.t;
  nodes : node array;
  index : (string, int) Hashtbl.t;
}

let of_core c =
  let g = Digraph.create () in
  let index = Hashtbl.create 16 in
  let nodes = ref [] in
  let add kind name width =
    let id = Digraph.add_node g in
    Hashtbl.replace index name id;
    nodes := { n_kind = kind; n_name = name; n_width = width } :: !nodes;
    id
  in
  List.iter
    (fun (p : Rtl_core.port) ->
      ignore (add (match p.p_dir with `In -> In | `Out -> Out) p.p_name p.p_width))
    (Rtl_core.ports c);
  List.iter
    (fun (r : Rtl_core.reg) -> ignore (add Reg r.r_name r.r_width))
    (Rtl_core.regs c);
  List.iteri
    (fun t_index tr ->
      match tr.t_kind with
      | Logic _ -> () (* not lossless: invisible to the RCG *)
      | Direct | Mux _ ->
          let via =
            match tr.t_kind with
            | Direct -> `Direct
            | Mux ctrl -> `Mux ctrl
            | Logic _ -> assert false
          in
          let src = Hashtbl.find index (ep_name tr.t_src) in
          let dst = Hashtbl.find index (ep_name tr.t_dst) in
          ignore
            (Digraph.add_edge g ~src ~dst
               {
                 e_src_range = tr.t_src.range;
                 e_dst_range = tr.t_dst.range;
                 e_via = via;
                 e_transfer = t_index;
                 e_hscan = false;
                 e_enabled = true;
               }))
    (Rtl_core.transfers c);
  { rcg_core = c; g; nodes = Array.of_list (List.rev !nodes); index }

let core t = t.rcg_core
let graph t = t.g
let node t i = t.nodes.(i)
let node_id t name = Hashtbl.find t.index name

let ids_of_kind t k =
  let acc = ref [] in
  Array.iteri (fun i n -> if n.n_kind = k then acc := i :: !acc) t.nodes;
  List.rev !acc

let input_ids t = ids_of_kind t In
let output_ids t = ids_of_kind t Out
let reg_ids t = ids_of_kind t Reg

let group_by_range proj edges =
  let tbl = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (e : edge_label Digraph.edge) ->
      let r = proj e.label in
      let key = (r.lsb, r.msb) in
      (match Hashtbl.find_opt tbl key with
      | None ->
          order := (r, key) :: !order;
          Hashtbl.replace tbl key [ e ]
      | Some es -> Hashtbl.replace tbl key (e :: es)))
    edges;
  !order
  |> List.sort (fun ((a : range), _) (b, _) -> compare (a.lsb, a.msb) (b.lsb, b.msb))
  |> List.map (fun (r, key) -> (r, List.rev (Hashtbl.find tbl key)))

let in_slice_groups t v = group_by_range (fun l -> l.e_dst_range) (Digraph.pred t.g v)
let out_slice_groups t v = group_by_range (fun l -> l.e_src_range) (Digraph.succ t.g v)

let is_c_split t v = List.length (in_slice_groups t v) > 1
let is_o_split t v = List.length (out_slice_groups t v) > 1

let hscan_edges t =
  List.filter (fun (e : edge_label Digraph.edge) -> e.label.e_hscan) (Digraph.edges t.g)

let pp fmt t =
  Format.fprintf fmt "@[<v 2>RCG of %s:@," (Rtl_core.name t.rcg_core);
  List.iter
    (fun (e : edge_label Digraph.edge) ->
      let s = t.nodes.(e.src) and d = t.nodes.(e.dst) in
      Format.fprintf fmt "%s%a -> %s%a%s%s@," s.n_name pp_range e.label.e_src_range
        d.n_name pp_range e.label.e_dst_range
        (match e.label.e_via with `Direct -> " (direct)" | `Mux _ -> "")
        (if e.label.e_hscan then " [hscan]" else ""))
    (Digraph.edges t.g);
  Array.iteri
    (fun i n ->
      if is_c_split t i then Format.fprintf fmt "C-split: %s@," n.n_name;
      if is_o_split t i then Format.fprintf fmt "O-split: %s@," n.n_name)
    t.nodes;
  Format.fprintf fmt "@]"
