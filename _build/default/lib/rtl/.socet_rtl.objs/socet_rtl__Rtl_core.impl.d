lib/rtl/rtl_core.ml: Format List Printf Rtl_types
