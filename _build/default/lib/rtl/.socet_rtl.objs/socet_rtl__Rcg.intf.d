lib/rtl/rcg.mli: Format Rtl_core Rtl_types Socet_graph
