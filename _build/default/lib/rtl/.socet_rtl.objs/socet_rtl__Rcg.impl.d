lib/rtl/rcg.ml: Array Format Hashtbl List Rtl_core Rtl_types Socet_graph
