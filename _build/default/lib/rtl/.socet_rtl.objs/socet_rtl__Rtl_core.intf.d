lib/rtl/rtl_core.mli: Format Rtl_types
