lib/rtl/rtl_types.ml: Format Printf
