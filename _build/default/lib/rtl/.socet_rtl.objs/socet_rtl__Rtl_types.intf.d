lib/rtl/rtl_types.mli: Format
