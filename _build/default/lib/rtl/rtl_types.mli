(** Register-transfer-level IR.

    A core is described by its ports, registers and *transfers*: the
    register-to-register, port-to-register and register-to-port data paths
    that exist in the design, each flagged with how the path is implemented
    (hard-wired, through an existing multiplexer input, or through a
    functional unit).  This structural view is exactly what the paper's
    core-level machinery consumes: HSCAN chain construction reuses
    multiplexer paths (Sec. 2) and the transparency engine extracts the
    register connectivity graph from it (Sec. 4). *)

type range = { lsb : int; msb : int }
(** Inclusive bit range; [lsb <= msb].  Bits are numbered from 0. *)

val range_width : range -> int
val full : int -> range
(** [full w] is bits [0 .. w-1]. *)

val bits : int -> int -> range
(** [bits lsb msb]. *)

val range_equal : range -> range -> bool
val ranges_overlap : range -> range -> bool
val pp_range : Format.formatter -> range -> unit

type ep_base =
  | Eport of string  (** an input or output port *)
  | Ereg of string   (** a register *)

type endpoint = { base : ep_base; range : range }

val ep_name : endpoint -> string
val pp_endpoint : Format.formatter -> endpoint -> unit

type logic_fn =
  | Fadd of endpoint   (** out := src + operand *)
  | Fsub of endpoint   (** out := src - operand *)
  | Fand of endpoint
  | Fxor of endpoint
  | Finc               (** out := src + 1 *)
  | Fnot
  | Fdec7seg           (** 4-bit BCD digit to 7-segment code *)
  | Fparity            (** width-1 reduction: out := xor of src bits *)

val logic_fn_out_width : logic_fn -> int -> int
(** Output width of a functional unit given its primary-input width. *)

type path_kind =
  | Direct
      (** hard-wired connection *)
  | Mux of int
      (** through an existing multiplexer input; the argument is the number
          of control/gating bits that must be overridden to steer this path
          in test mode (drives the transparency-logic area model) *)
  | Logic of logic_fn
      (** through a functional unit — carries data but not losslessly, so
          it is invisible to HSCAN and to the transparency engine; it exists
          for gate-level realism (area, fault population) *)

type transfer = {
  t_src : endpoint;
  t_dst : endpoint;
  t_kind : path_kind;
}

val pp_transfer : Format.formatter -> transfer -> unit
