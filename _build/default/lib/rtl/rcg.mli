(** Register connectivity graph (paper, Sec. 4, Fig. 7).

    Nodes are the core's input ports, output ports and registers.  An edge
    is present for every lossless structural path (direct wire or existing
    multiplexer input); paths through functional units are omitted, as data
    cannot cross them without information loss.

    A node is a {e C-split} node when different bit-slices of it are written
    from different sources, and an {e O-split} node when different
    bit-slices of it fan out to different destinations; the transparency
    search must branch at such nodes. *)

open Rtl_types

type node_kind = In | Out | Reg

type node = { n_kind : node_kind; n_name : string; n_width : int }

type edge_label = {
  e_src_range : range;    (** slice read at the edge's source node *)
  e_dst_range : range;    (** slice written at the edge's destination node *)
  e_via : [ `Direct | `Mux of int ];
  e_transfer : int;
      (** index into [Rtl_core.transfers] that produced this edge, or [-1]
          for edges synthesized by HSCAN / the transparency engine — used
          to drive the gate-level transparency simulator *)
  mutable e_hscan : bool; (** set by HSCAN insertion when the edge carries a scan chain *)
  mutable e_enabled : bool;
      (** rescue hardware that turned out not to help is disabled (and its
          cost refunded) rather than removed; searches ignore disabled
          edges *)
}

type t

val of_core : Rtl_core.t -> t
(** The core must have been validated. *)

val core : t -> Rtl_core.t
val graph : t -> edge_label Socet_graph.Digraph.t

val node : t -> int -> node
val node_id : t -> string -> int
(** Node id by port/register name.  @raise Not_found. *)

val input_ids : t -> int list
val output_ids : t -> int list
val reg_ids : t -> int list

val is_c_split : t -> int -> bool
val is_o_split : t -> int -> bool

val in_slice_groups : t -> int -> (range * edge_label Socet_graph.Digraph.edge list) list
(** Incoming edges grouped by the slice of this node they write, in
    increasing [lsb] order. *)

val out_slice_groups : t -> int -> (range * edge_label Socet_graph.Digraph.edge list) list
(** Outgoing edges grouped by the slice of this node they read. *)

val hscan_edges : t -> edge_label Socet_graph.Digraph.edge list
(** Edges currently marked as HSCAN chain segments. *)

val pp : Format.formatter -> t -> unit
