(** RTL core descriptions: ports + registers + transfers, with validation.

    Cores are built with the [add_*] functions and frozen with {!validate};
    every downstream pass (RCG extraction, HSCAN insertion, elaboration)
    assumes a validated core. *)

open Rtl_types

type port = { p_name : string; p_dir : [ `In | `Out ]; p_width : int }
type reg = { r_name : string; r_width : int }

type t

val create : string -> t
val name : t -> string

val add_input : t -> string -> int -> unit
val add_output : t -> string -> int -> unit
val add_reg : t -> string -> int -> unit

val add_transfer : t -> ?kind:path_kind -> src:endpoint -> dst:endpoint -> unit -> unit
(** [kind] defaults to [Mux 1] (a path through an existing one-control-bit
    multiplexer input — the common case). *)

(* Endpoint construction helpers. *)
val reg : t -> string -> endpoint
(** Whole register.  @raise Not_found on unknown names. *)

val port : t -> string -> endpoint
(** Whole port. *)

val reg_bits : t -> string -> int -> int -> endpoint
val port_bits : t -> string -> int -> int -> endpoint

val validate : t -> unit
(** Checks: unique names; endpoint ranges within declared widths; transfer
    sources are input ports or registers; destinations are output ports or
    registers; widths compatible (equal, except through width-changing
    functional units).  @raise Invalid_argument with a diagnostic. *)

val ports : t -> port list
val inputs : t -> port list
val outputs : t -> port list
val regs : t -> reg list
val transfers : t -> transfer list

val find_port : t -> string -> port
val find_reg : t -> string -> reg

val reg_bit_count : t -> int
(** Total flip-flop bits over all registers. *)

val input_bit_count : t -> int
val output_bit_count : t -> int

val pp : Format.formatter -> t -> unit
