module Bitvec = Socet_util.Bitvec

let word_width = Sys.int_size - 1

type state = Bitvec.t

let initial_state t = Bitvec.create (List.length (Netlist.dffs t))

type wvec = int array

let all_ones = (1 lsl word_width) - 1

(* Shared combinational evaluation over machine words.  The scalar engine
   reuses it with 1-bit-meaningful words. *)
let eval_words t ~pi ~state ~inject =
  let n = Netlist.gate_count t in
  let v = Array.make n 0 in
  let pi_pos = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace pi_pos x i) (Netlist.pis t);
  let dff_pos = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace dff_pos x i) (Netlist.dffs t);
  let order = Netlist.comb_order t in
  Array.iter
    (fun g ->
      let f = Netlist.fanin t g in
      let value =
        match Netlist.kind t g with
        | Cell.Pi -> pi.(Hashtbl.find pi_pos g)
        | Cell.Const0 -> 0
        | Cell.Const1 -> all_ones
        | Cell.Buf -> v.(f.(0))
        | Cell.Inv -> lnot v.(f.(0)) land all_ones
        | Cell.And2 -> v.(f.(0)) land v.(f.(1))
        | Cell.Or2 -> v.(f.(0)) lor v.(f.(1))
        | Cell.Nand2 -> lnot (v.(f.(0)) land v.(f.(1))) land all_ones
        | Cell.Nor2 -> lnot (v.(f.(0)) lor v.(f.(1))) land all_ones
        | Cell.Xor2 -> v.(f.(0)) lxor v.(f.(1))
        | Cell.Xnor2 -> lnot (v.(f.(0)) lxor v.(f.(1))) land all_ones
        | Cell.Mux2 ->
            let s = v.(f.(0)) in
            (lnot s land v.(f.(1))) lor (s land v.(f.(2))) land all_ones
        | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe ->
            state.(Hashtbl.find dff_pos g)
      in
      v.(g) <- inject g (value land all_ones))
    order;
  v

let po_words t v = Array.of_list (List.map (fun (_, n) -> v.(n)) (Netlist.pos t))

let next_state_words t v =
  let capture g =
    let f = Netlist.fanin t g in
    match Netlist.kind t g with
    | Cell.Dff -> v.(f.(0))
    | Cell.Dffe ->
        let d = v.(f.(0)) and en = v.(f.(1)) and q = v.(g) in
        (en land d) lor (lnot en land q) land all_ones
    | Cell.Sdff ->
        let d = v.(f.(0)) and si = v.(f.(1)) and se = v.(f.(2)) in
        (se land si) lor (lnot se land d) land all_ones
    | Cell.Sdffe ->
        let d = v.(f.(0)) and en = v.(f.(1)) and si = v.(f.(2)) and se = v.(f.(3)) in
        let q = v.(g) in
        let func = (en land d) lor (lnot en land q) land all_ones in
        (se land si) lor (lnot se land func) land all_ones
    | _ -> assert false
  in
  Array.of_list (List.map capture (Netlist.dffs t))

let words_of_bitvec bv = Array.init (Bitvec.length bv) (fun i -> if Bitvec.get bv i then all_ones else 0)

let bitvec_of_words w =
  let bv = Bitvec.create (Array.length w) in
  Array.iteri (fun i x -> Bitvec.set bv i (x land 1 = 1)) w;
  bv

let eval_comb t ~pi ~state =
  let v =
    eval_words t ~pi:(words_of_bitvec pi) ~state:(words_of_bitvec state)
      ~inject:(fun _ x -> x)
  in
  Array.map (fun x -> x land 1) v

let eval t ~pi ~state =
  let v =
    eval_words t ~pi:(words_of_bitvec pi) ~state:(words_of_bitvec state)
      ~inject:(fun _ x -> x)
  in
  (bitvec_of_words (po_words t v), bitvec_of_words (next_state_words t v))
