(** Logic simulation of gate-level netlists.

    Two engines:
    - a scalar two-valued engine for functional checks and sequential test
      application;
    - a word-parallel engine evaluating up to {!word_width} patterns at once
      (one pattern per bit), the workhorse of the fault simulator. *)

val word_width : int
(** Number of patterns evaluated in parallel by the word engine
    ([Sys.int_size - 1]). *)

type state = Socet_util.Bitvec.t
(** Flip-flop contents, in [Netlist.dffs] order. *)

val initial_state : Netlist.t -> state
(** All-zero flip-flop state. *)

val eval :
  Netlist.t ->
  pi:Socet_util.Bitvec.t ->
  state:state ->
  Socet_util.Bitvec.t * state
(** [eval t ~pi ~state] evaluates one clock cycle: returns the primary
    output values *before* the clock edge and the next state.  [pi] is in
    [Netlist.pis] order, outputs in [Netlist.pos] order. *)

val eval_comb : Netlist.t -> pi:Socet_util.Bitvec.t -> state:state -> int array
(** Full net-value vector (0/1 per net) for one evaluation; indexable by
    net id.  Useful for debugging and for the ATPG's good-machine check. *)

type wvec = int array
(** One machine word per net; bit [k] of word [v.(net)] is the value of
    [net] under pattern [k]. *)

val eval_words :
  Netlist.t ->
  pi:wvec ->
  state:wvec ->
  inject:(Netlist.net -> int -> int) ->
  wvec
(** Word-parallel combinational evaluation.  [pi] has one word per PI (in
    order); [state] one word per flip-flop (in order).  [inject net v]
    post-processes every computed net value — identity for good-machine
    simulation, a stuck-at mask for fault injection.  Returns the full
    net-value vector. *)

val po_words : Netlist.t -> wvec -> wvec
(** Extract PO values (in order) from a net-value vector. *)

val next_state_words : Netlist.t -> wvec -> wvec
(** Flip-flop next-state words (D-input capture) from a net-value vector,
    honouring load-enables and scan muxing.  Fault effects on flip-flop
    output nets are already part of the net-value vector via [inject]. *)
