(** The generic standard-cell library.

    The paper reports every overhead as a number of "cells" after technology
    mapping with a .8µm library and an in-house synthesis tool.  We
    substitute a fixed per-cell area table; all comparisons in the paper are
    relative, so any consistent table preserves the published trade-off
    shapes (see DESIGN.md, Substitutions). *)

type kind =
  | Pi          (** primary input (zero-area pseudo cell) *)
  | Const0
  | Const1
  | Buf
  | Inv
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | Mux2        (** fanin [sel; a; b]: output is [a] when [sel = 0] *)
  | Dff         (** fanin [d] *)
  | Dffe        (** fanin [d; en]: loads [d] when [en = 1], else holds *)
  | Sdff        (** fanin [d; si; se]: scan flip-flop, loads [si] when [se = 1] *)
  | Sdffe       (** fanin [d; en; si; se]: scan version of {!Dffe} *)

val arity : kind -> int
(** Number of fanin pins. *)

val area : kind -> int
(** Area in cell units. *)

val is_dff : kind -> bool
(** True for all flip-flop kinds. *)

val is_scan : kind -> bool
(** True for {!Sdff} and {!Sdffe}. *)

val scan_of : kind -> kind
(** Scan equivalent of a flip-flop kind.  @raise Invalid_argument on
    non-flip-flop kinds. *)

val scan_upgrade_area : kind -> int
(** [area (scan_of k) - area k]: incremental cost of making one flip-flop
    scannable. *)

val name : kind -> string
