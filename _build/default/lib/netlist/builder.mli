(** Word-level construction helpers on top of {!Netlist}.

    A [word] is an array of nets, least-significant bit first.  The RTL
    elaborator ({!Socet_synth.Elaborate}) and the example cores use these
    helpers to expand multi-bit registers, multiplexers and arithmetic into
    gates. *)

type word = Netlist.net array

val const_word : Netlist.t -> width:int -> int -> word
val input_word : Netlist.t -> string -> int -> word
(** [input_word t name w] adds PIs [name.0 .. name.(w-1)]. *)

val output_word : Netlist.t -> string -> word -> unit
(** Declares POs [name.0 ..]. *)

val not_word : Netlist.t -> word -> word
val and_word : Netlist.t -> word -> word -> word
val or_word : Netlist.t -> word -> word -> word
val xor_word : Netlist.t -> word -> word -> word

val mux2_word : Netlist.t -> sel:Netlist.net -> a:word -> b:word -> word
(** Output is [a] when [sel = 0]. *)

val adder : Netlist.t -> word -> word -> cin:Netlist.net -> word * Netlist.net
(** Ripple-carry adder; returns (sum, carry-out). *)

val subtractor : Netlist.t -> word -> word -> word * Netlist.net
(** [a - b]; the extra net is 1 when no borrow occurred (i.e. [a >= b]). *)

val eq_word : Netlist.t -> word -> word -> Netlist.net
val lt_word : Netlist.t -> word -> word -> Netlist.net
(** Unsigned comparison [a < b]. *)

val inc_word : Netlist.t -> word -> word
(** [a + 1], carry-out dropped. *)

val reduce_or : Netlist.t -> word -> Netlist.net
val reduce_and : Netlist.t -> word -> Netlist.net

val new_register : Netlist.t -> name:string -> width:int -> word
(** Creates [width] flip-flops whose D inputs are temporarily tied to
    constant 0; returns the Q nets.  Wire the real D (and optional enable)
    later with {!connect_register}; this two-phase protocol permits
    feedback. *)

val connect_register : Netlist.t -> q:word -> d:word -> ?enable:Netlist.net -> unit -> unit
(** Rewires registers created by {!new_register}.  With [enable], the
    flip-flops become load-enabled ({!Cell.Dffe}). *)
