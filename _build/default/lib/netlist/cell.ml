type kind =
  | Pi
  | Const0
  | Const1
  | Buf
  | Inv
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | Mux2
  | Dff
  | Dffe
  | Sdff
  | Sdffe

let arity = function
  | Pi | Const0 | Const1 -> 0
  | Buf | Inv | Dff -> 1
  | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Dffe -> 2
  | Mux2 | Sdff -> 3
  | Sdffe -> 4

let area = function
  | Pi | Const0 | Const1 -> 0
  | Buf | Inv | Nand2 | Nor2 -> 1
  | And2 | Or2 -> 2
  | Xor2 | Xnor2 | Mux2 -> 3
  | Dff -> 6
  | Dffe -> 7
  | Sdff -> 10
  | Sdffe -> 11

let is_dff = function
  | Dff | Dffe | Sdff | Sdffe -> true
  | Pi | Const0 | Const1 | Buf | Inv | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2
  | Mux2 ->
      false

let is_scan = function
  | Sdff | Sdffe -> true
  | Pi | Const0 | Const1 | Buf | Inv | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2
  | Mux2 | Dff | Dffe ->
      false

let scan_of = function
  | Dff -> Sdff
  | Dffe -> Sdffe
  | Sdff -> Sdff
  | Sdffe -> Sdffe
  | _ -> invalid_arg "Cell.scan_of: not a flip-flop"

let scan_upgrade_area k = area (scan_of k) - area k

let name = function
  | Pi -> "pi"
  | Const0 -> "const0"
  | Const1 -> "const1"
  | Buf -> "buf"
  | Inv -> "inv"
  | And2 -> "and2"
  | Or2 -> "or2"
  | Nand2 -> "nand2"
  | Nor2 -> "nor2"
  | Xor2 -> "xor2"
  | Xnor2 -> "xnor2"
  | Mux2 -> "mux2"
  | Dff -> "dff"
  | Dffe -> "dffe"
  | Sdff -> "sdff"
  | Sdffe -> "sdffe"
