lib/netlist/netlist.mli: Cell
