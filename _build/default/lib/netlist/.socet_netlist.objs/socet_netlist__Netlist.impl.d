lib/netlist/netlist.ml: Array Cell List Printf Queue
