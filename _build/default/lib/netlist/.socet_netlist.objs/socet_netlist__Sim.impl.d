lib/netlist/sim.ml: Array Cell Hashtbl List Netlist Socet_util Sys
