lib/netlist/cell.ml:
