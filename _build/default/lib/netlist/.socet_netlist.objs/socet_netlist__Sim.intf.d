lib/netlist/sim.mli: Netlist Socet_util
