lib/netlist/builder.mli: Netlist
