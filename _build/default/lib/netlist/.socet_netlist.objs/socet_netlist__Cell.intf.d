lib/netlist/cell.mli:
