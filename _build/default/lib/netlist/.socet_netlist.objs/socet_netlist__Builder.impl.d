lib/netlist/builder.ml: Array Cell List Netlist Printf
