(** Boundary scan isolation, and the FSCAN-BSCAN baseline arithmetic.

    In the FSCAN-BSCAN scheme every core is full-scanned and wrapped in a
    boundary-scan ring, so each core is tested in isolation through its
    ring.  The paper's worked example gives the per-core test time as
    [(ff + inputs) * vectors + (ff + inputs) - 1] cycles (Sec. 3:
    (66+20) x 105 + (66+20) - 1 = 9,115 for the DISPLAY core). *)

open Socet_rtl

val cell_area : int
(** Area of one boundary-scan cell, in cell units. *)

val ring_overhead : Rtl_core.t -> int
(** Boundary-scan ring cost for a core: one cell per port bit. *)

val test_time : n_ff:int -> n_inputs:int -> n_vectors:int -> int
(** Per-core FSCAN-BSCAN test application time (formula above). *)
