(** Full scan (FSCAN): every flip-flop becomes a scan flip-flop on a single
    chain.  This is the conventional core-level DFT the paper compares
    against (column "FSCAN Ovhd." of Table 2). *)

open Socet_netlist

type result = {
  chain : Netlist.net list;  (** scan order, scan-in end first *)
  overhead_cells : int;
  scan_in : Netlist.net;     (** added PI *)
  scan_enable : Netlist.net; (** added PI *)
}

val insert : Netlist.t -> result
(** Mutates the netlist: upgrades every flip-flop to its scan variant,
    threads them on one chain and adds [scan_in]/[scan_enable] PIs and a
    [scan_out] PO. *)

val overhead : Netlist.t -> int
(** Area cost {!insert} would incur, without mutating. *)

val test_time : n_ff:int -> n_vectors:int -> int
(** Cycles to apply [n_vectors] scan vectors through a single chain of
    [n_ff] flip-flops with overlapped scan-out:
    [(n_ff + 1) * n_vectors + n_ff]. *)
