open Socet_rtl

let cell_area = 2

let ring_overhead core =
  cell_area * (Rtl_core.input_bit_count core + Rtl_core.output_bit_count core)

let test_time ~n_ff ~n_inputs ~n_vectors =
  let shift = n_ff + n_inputs in
  (shift * n_vectors) + shift - 1
