open Socet_netlist

type result = {
  chain : Netlist.net list;
  overhead_cells : int;
  scan_in : Netlist.net;
  scan_enable : Netlist.net;
}

let overhead nl =
  List.fold_left
    (fun acc ff -> acc + Cell.scan_upgrade_area (Netlist.kind nl ff))
    0 (Netlist.dffs nl)

let insert nl =
  let cost = overhead nl in
  let scan_in = Netlist.add_pi nl "scan_in" in
  let scan_enable = Netlist.add_pi nl "scan_en" in
  let prev = ref scan_in in
  let chain = Netlist.dffs nl in
  List.iter
    (fun ff ->
      let fanin = Netlist.fanin nl ff in
      (match Netlist.kind nl ff with
      | Cell.Dff -> Netlist.set_kind nl ff Cell.Sdff [| fanin.(0); !prev; scan_enable |]
      | Cell.Dffe ->
          Netlist.set_kind nl ff Cell.Sdffe
            [| fanin.(0); fanin.(1); !prev; scan_enable |]
      | Cell.Sdff | Cell.Sdffe -> () (* already scanned *)
      | _ -> assert false);
      prev := ff)
    chain;
  (match chain with
  | [] -> ()
  | _ -> Netlist.add_po nl "scan_out" !prev);
  { chain; overhead_cells = cost; scan_in; scan_enable }

let test_time ~n_ff ~n_vectors = ((n_ff + 1) * n_vectors) + n_ff
