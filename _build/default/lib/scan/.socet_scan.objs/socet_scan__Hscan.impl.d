lib/scan/hscan.ml: Array Hashtbl List Rcg Rtl_types Socet_graph Socet_rtl
