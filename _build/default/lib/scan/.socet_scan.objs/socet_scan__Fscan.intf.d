lib/scan/fscan.mli: Netlist Socet_netlist
