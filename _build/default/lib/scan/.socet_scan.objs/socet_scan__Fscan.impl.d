lib/scan/fscan.ml: Array Cell List Netlist Socet_netlist
