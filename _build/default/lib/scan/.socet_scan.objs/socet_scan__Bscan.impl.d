lib/scan/bscan.ml: Rtl_core Socet_rtl
