lib/scan/bscan.mli: Rtl_core Socet_rtl
