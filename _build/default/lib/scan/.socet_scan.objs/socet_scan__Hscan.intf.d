lib/scan/hscan.mli: Rcg Socet_rtl
