(** HSCAN insertion (Bhattacharya & Dey, VTS'96; paper Sec. 2).

    HSCAN threads the core's registers into parallel scan chains running
    from circuit inputs to circuit outputs by {e reusing existing register
    transfer paths}: a multiplexer path costs two extra gates, a direct
    connection one OR gate at the destination's load signal, and only where
    no path exists is a test multiplexer added (integrated with the
    destination flip-flops).

    Chain selection prefers transfer declaration order, which is how the
    core designer expresses the intended chain routing.  Every register
    slice must receive a chain feed, and every chain must terminate at an
    output (adding an observation multiplexer if necessary).  The marked
    edges (including any added test-mux edges, which become real paths of
    the core) are recorded in the RCG with [e_hscan = true] — the
    transparency engine's "HSCAN edges". *)

open Socet_rtl

type added_edge = {
  ae_src : int;   (** RCG node id *)
  ae_dst : int;
  ae_width : int;
  ae_cost : int;  (** cells *)
}

type result = {
  depth : int;
      (** registers on the longest chain; the HSCAN vector count is
          [atpg_vectors * (depth + 1)] *)
  overhead_cells : int;
  chains : int list list;
      (** maximal input-to-output chain paths, as RCG node ids *)
  added : added_edge list;
}

val insert : Rcg.t -> result
(** Mutates the RCG: marks chain edges with [e_hscan] and inserts any
    test-mux edges it had to create. *)

val vector_multiplier : result -> int
(** [depth + 1]: shift cycles consumed per ATPG vector. *)

val vector_count : result -> atpg_vectors:int -> int
