(** Area accounting helpers (cell units, as in the paper's tables). *)

open Socet_netlist

val of_netlist : Netlist.t -> int
(** Total cell area. *)

val ff_count : Netlist.t -> int

val overhead_percent : base:int -> extra:int -> float
(** [100 * extra / base]. *)

val pp_percent : Format.formatter -> float -> unit
(** One decimal, e.g. "18.8". *)
