(** RTL-to-gate elaboration — the stand-in for the paper's "in-house
    synthesis tool".

    Each register becomes a word of (load-enabled) flip-flops fed by a
    multiplexer chain over its declared transfer sources; functional-unit
    transfers instantiate the corresponding arithmetic/logic network; and a
    small free-running control FSM (a counter mixed with an input bit,
    decoded one-hot) drives the multiplexer selects and load enables, so the
    flat netlist is meaningfully sequential: random sequential test
    generation on it yields the poor coverage the paper reports for the
    undesigned-for-test SOC, while full-scan combinational ATPG covers it
    well. *)

open Socet_rtl
open Socet_netlist

val core_to_netlist : ?test_access:bool -> Rtl_core.t -> Netlist.t
(** The core must validate.  PIs are named [<port>.<bit>] in port
    declaration order; POs likewise; flip-flops are created register by
    register in declaration order, control-state flip-flops last.

    With [test_access] (default false), the netlist additionally gets a
    [test_mode] PI that silences the functional control decoder and one
    steering-override PI per transfer ([t_ov.<k>]) — the transparency-mode
    controls that the paper's test controller drives.  The gate-level
    transparency simulator ({!Socet_core.Tsim}) uses them to prove that
    transparency paths really move data through the synthesized gates. *)

val control_state_width : Rtl_core.t -> int
(** Width of the control FSM's state register. *)
