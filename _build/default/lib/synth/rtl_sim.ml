open Socet_util
open Socet_rtl
open Rtl_types

type state = { regs : (string * Bitvec.t) list; ctrl : int }

let init core =
  {
    regs =
      List.map
        (fun (r : Rtl_core.reg) -> (r.r_name, Bitvec.create r.r_width))
        (Rtl_core.regs core);
    ctrl = 0;
  }

let ctrl_state s = s.ctrl
let reg_value s name = List.assoc name s.regs

let to_int bv = Bitvec.to_int bv
let of_int ~width v = Bitvec.of_int ~width v

(* Mirrors Elaborate.dec7seg: BCD digit to segments a..g, blank above 9. *)
let seg_digits =
  [|
    [ 0; 2; 3; 5; 6; 7; 8; 9 ];
    [ 0; 1; 2; 3; 4; 7; 8; 9 ];
    [ 0; 1; 3; 4; 5; 6; 7; 8; 9 ];
    [ 0; 2; 3; 5; 6; 8; 9 ];
    [ 0; 2; 6; 8 ];
    [ 0; 4; 5; 6; 8; 9 ];
    [ 2; 3; 4; 5; 6; 8; 9 ];
  |]

let dec7seg digit =
  let out = Bitvec.create 7 in
  if digit < 10 then
    Array.iteri (fun seg ds -> if List.mem digit ds then Bitvec.set out seg true) seg_digits;
  out

let slice bv (r : range) = Bitvec.sub bv ~pos:r.lsb ~len:(range_width r)

let step core s ~inputs =
  let ep_value (e : endpoint) =
    match e.base with
    | Eport n -> slice (inputs n) e.range
    | Ereg n -> slice (List.assoc n s.regs) e.range
  in
  let transfer_value tr =
    let src = ep_value tr.t_src in
    match tr.t_kind with
    | Direct | Mux _ -> src
    | Logic fn -> (
        let w = Bitvec.length src in
        let mask = (1 lsl w) - 1 in
        match fn with
        | Fadd op -> of_int ~width:w ((to_int src + to_int (ep_value op)) land mask)
        | Fsub op -> of_int ~width:w ((to_int src - to_int (ep_value op)) land mask)
        | Fand op -> Bitvec.logand src (ep_value op)
        | Fxor op -> Bitvec.logxor src (ep_value op)
        | Finc -> of_int ~width:w ((to_int src + 1) land mask)
        | Fnot -> Bitvec.lognot src
        | Fparity ->
            let bv = Bitvec.create 1 in
            Bitvec.set bv 0 (Bitvec.popcount src land 1 = 1);
            bv
        | Fdec7seg -> dec7seg (to_int src))
  in
  let transfers = Rtl_core.transfers core in
  (* Same firing discipline Elaborate synthesizes: transfer k fires when
     the FSM sits in state k AND the opcode nibble (low 3 bits of the
     first input port) carries (5k+3) land 7. *)
  let sw = Elaborate.control_state_width core in
  let opcode =
    match Rtl_core.inputs core with
    | [] -> None
    | p :: _ ->
        let v = inputs p.Rtl_core.p_name in
        let nbits = min 3 (Bitvec.length v) in
        Some (to_int (Bitvec.sub v ~pos:0 ~len:nbits), (1 lsl nbits) - 1)
  in
  let fires k _tr =
    s.ctrl = k land ((1 lsl sw) - 1)
    &&
    match opcode with
    | None -> true
    | Some (op, mask) -> op = ((5 * k) + 3) land 7 land mask
  in
  let indexed = List.mapi (fun k tr -> (k, tr)) transfers in
  (* Outputs are sampled before the edge: combinational mux chains where
     the last firing (or sole direct) transfer wins, defaulting to zero. *)
  let outputs =
    List.filter_map
      (fun (p : Rtl_core.port) ->
        if p.Rtl_core.p_dir = `Out then begin
          let word = Bitvec.create p.Rtl_core.p_width in
          let into =
            List.filter
              (fun (_, tr) -> tr.t_dst.base = Eport p.Rtl_core.p_name)
              indexed
          in
          List.iter
            (fun (k, tr) ->
              let only_driver =
                List.for_all
                  (fun (k', tr') ->
                    k' = k || not (ranges_overlap tr'.t_dst.range tr.t_dst.range))
                  into
              in
              if (only_driver && tr.t_kind = Direct) || fires k tr then begin
                let v = transfer_value tr in
                Bitvec.blit ~src:v ~src_pos:0 ~dst:word ~dst_pos:tr.t_dst.range.lsb
                  ~len:(Bitvec.length v)
              end)
            into;
          Some (p.Rtl_core.p_name, word)
        end
        else None)
      (Rtl_core.ports core)
  in
  (* Register updates: per bit, the last firing covering transfer wins;
     bits with no firing transfer hold. *)
  let regs' =
    List.map
      (fun (name, q) ->
        let q' = Bitvec.copy q in
        List.iter
          (fun (k, tr) ->
            if tr.t_dst.base = Ereg name && fires k tr then begin
              let v = transfer_value tr in
              Bitvec.blit ~src:v ~src_pos:0 ~dst:q' ~dst_pos:tr.t_dst.range.lsb
                ~len:(Bitvec.length v)
            end)
          indexed;
        (name, q'))
      s.regs
  in
  (* Control FSM: increment, with bit 0 xored with the first input's bit 0
     (mirroring Elaborate). *)
  let ctrl' =
    let inc = (s.ctrl + 1) land ((1 lsl sw) - 1) in
    match Rtl_core.inputs core with
    | [] -> inc
    | p :: _ ->
        let b = Bitvec.get (inputs p.Rtl_core.p_name) 0 in
        if b then inc lxor 1 else inc
  in
  ({ regs = regs'; ctrl = ctrl' }, outputs)

let run core ~cycles ~inputs =
  let rec loop s t acc =
    if t >= cycles then List.rev acc
    else begin
      let s', out = step core s ~inputs:(inputs t) in
      loop s' (t + 1) (out :: acc)
    end
  in
  loop (init core) 0 []
