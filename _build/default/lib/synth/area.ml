open Socet_netlist

let of_netlist = Netlist.area

let ff_count nl = List.length (Netlist.dffs nl)

let overhead_percent ~base ~extra =
  if base = 0 then 0.0 else 100.0 *. float_of_int extra /. float_of_int base

let pp_percent fmt p = Format.fprintf fmt "%.1f" p
