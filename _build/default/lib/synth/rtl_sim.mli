(** Reference interpreter for RTL cores.

    Executes a core cycle by cycle directly on the transfer semantics —
    the same control model {!Elaborate} synthesizes (a counter-based FSM
    whose decoded state, qualified by the opcode nibble of the first input
    port, fires one transfer per cycle) — without ever building gates.

    Its purpose is sequential equivalence checking: for any core and any
    stimulus, the interpreter and the gate-level simulation of the
    elaborated netlist must agree on every register and output bit, every
    cycle.  The test suite fuzzes exactly that. *)

open Socet_util
open Socet_rtl

type state

val init : Rtl_core.t -> state
(** All registers and the control state start at zero. *)

val ctrl_state : state -> int
val reg_value : state -> string -> Bitvec.t

val step :
  Rtl_core.t -> state -> inputs:(string -> Bitvec.t) -> state * (string * Bitvec.t) list
(** One clock cycle: returns the next state and the output-port values
    sampled {e before} the clock edge (matching
    {!Socet_netlist.Sim.eval}).  [inputs] maps each input port name to its
    value for this cycle. *)

val run :
  Rtl_core.t ->
  cycles:int ->
  inputs:(int -> string -> Bitvec.t) ->
  (string * Bitvec.t) list list
(** Convenience driver: outputs of each cycle, in order. *)
