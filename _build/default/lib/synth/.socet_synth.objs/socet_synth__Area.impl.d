lib/synth/area.ml: Format List Netlist Socet_netlist
