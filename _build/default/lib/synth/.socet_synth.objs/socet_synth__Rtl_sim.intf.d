lib/synth/rtl_sim.mli: Bitvec Rtl_core Socet_rtl Socet_util
