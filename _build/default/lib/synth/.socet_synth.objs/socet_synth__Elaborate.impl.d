lib/synth/elaborate.ml: Array Builder Cell Hashtbl Lazy List Netlist Option Printf Rtl_core Rtl_types Socet_netlist Socet_rtl
