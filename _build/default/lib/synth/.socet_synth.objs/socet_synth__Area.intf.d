lib/synth/area.mli: Format Netlist Socet_netlist
