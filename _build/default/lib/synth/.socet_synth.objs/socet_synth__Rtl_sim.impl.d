lib/synth/rtl_sim.ml: Array Bitvec Elaborate List Rtl_core Rtl_types Socet_rtl Socet_util
