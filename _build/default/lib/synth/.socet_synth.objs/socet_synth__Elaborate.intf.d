lib/synth/elaborate.mli: Netlist Rtl_core Socet_netlist Socet_rtl
