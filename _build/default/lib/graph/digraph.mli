(** Growable directed graphs with labelled edges and integer nodes.

    The register connectivity graph (RCG) of a core and the core
    connectivity graph (CCG) of a system-on-chip are both instances of this
    structure.  Nodes are dense integers handed out by {!add_node}; node
    payloads live in client-side arrays/tables keyed by node id. *)

type 'e t

type 'e edge = { src : int; dst : int; label : 'e; id : int }
(** Edges carry a dense [id] so clients can attach side tables (for example
    per-edge reservation calendars). *)

val create : unit -> 'e t

val add_node : 'e t -> int
(** Returns the new node's id (ids are [0, 1, 2, ...]). *)

val node_count : 'e t -> int

val edge_count : 'e t -> int

val add_edge : 'e t -> src:int -> dst:int -> 'e -> 'e edge
(** Parallel edges and self-loops are allowed. *)

val succ : 'e t -> int -> 'e edge list
(** Out-edges, in insertion order. *)

val pred : 'e t -> int -> 'e edge list
(** In-edges, in insertion order. *)

val edges : 'e t -> 'e edge list
(** All edges in insertion order. *)

val find_edge : 'e t -> src:int -> dst:int -> 'e edge option
(** First edge from [src] to [dst], if any. *)

val edge_by_id : 'e t -> int -> 'e edge

val iter_nodes : (int -> unit) -> 'e t -> unit

val map_labels : ('e -> 'f) -> 'e t -> 'f t

val reverse : 'e t -> 'e t
(** Same nodes, every edge flipped (edge ids preserved). *)
