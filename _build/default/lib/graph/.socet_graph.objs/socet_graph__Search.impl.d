lib/graph/search.ml: Array Digraph List Queue
