lib/graph/search.mli: Digraph
