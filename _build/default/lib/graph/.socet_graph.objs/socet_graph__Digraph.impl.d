lib/graph/digraph.ml: Array List
