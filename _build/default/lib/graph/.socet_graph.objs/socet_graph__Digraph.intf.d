lib/graph/digraph.mli:
