type 'e edge = { src : int; dst : int; label : 'e; id : int }

type 'e t = {
  mutable n : int;
  mutable succ : 'e edge list array; (* stored reversed; exposed re-reversed *)
  mutable pred : 'e edge list array;
  mutable all : 'e edge list;        (* reversed insertion order *)
  mutable m : int;
}

let create () = { n = 0; succ = Array.make 8 []; pred = Array.make 8 []; all = []; m = 0 }

let grow g =
  if g.n >= Array.length g.succ then begin
    let cap = max 8 (2 * Array.length g.succ) in
    let s = Array.make cap [] and p = Array.make cap [] in
    Array.blit g.succ 0 s 0 g.n;
    Array.blit g.pred 0 p 0 g.n;
    g.succ <- s;
    g.pred <- p
  end

let add_node g =
  grow g;
  let id = g.n in
  g.n <- g.n + 1;
  id

let node_count g = g.n
let edge_count g = g.m

let check_node g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph: unknown node"

let add_edge g ~src ~dst label =
  check_node g src;
  check_node g dst;
  let e = { src; dst; label; id = g.m } in
  g.succ.(src) <- e :: g.succ.(src);
  g.pred.(dst) <- e :: g.pred.(dst);
  g.all <- e :: g.all;
  g.m <- g.m + 1;
  e

let succ g v =
  check_node g v;
  List.rev g.succ.(v)

let pred g v =
  check_node g v;
  List.rev g.pred.(v)

let edges g = List.rev g.all

let find_edge g ~src ~dst = List.find_opt (fun e -> e.dst = dst) (succ g src)

let edge_by_id g id =
  match List.find_opt (fun e -> e.id = id) g.all with
  | Some e -> e
  | None -> invalid_arg "Digraph.edge_by_id"

let iter_nodes f g =
  for v = 0 to g.n - 1 do
    f v
  done

let map_labels f g =
  let h = create () in
  for _ = 1 to g.n do
    ignore (add_node h)
  done;
  List.iter (fun e -> ignore (add_edge h ~src:e.src ~dst:e.dst (f e.label))) (edges g);
  h

let reverse g =
  let h = create () in
  for _ = 1 to g.n do
    ignore (add_node h)
  done;
  List.iter (fun e -> ignore (add_edge h ~src:e.dst ~dst:e.src e.label)) (edges g);
  h
