open Socet_rtl
open Rtl_types

let p_d = "D"
let p_a_lo = "A_lo"
let p_a_hi = "A_hi"

let p_port k =
  if k < 1 || k > 6 then invalid_arg "Display.p_port";
  Printf.sprintf "PORT%d" k

let p_port_stat = "PORT_STAT"

let core () =
  let c = Rtl_core.create "DISPLAY" in
  Rtl_core.add_input c p_d 8;
  Rtl_core.add_input c p_a_lo 8;
  Rtl_core.add_input c p_a_hi 4;
  for k = 1 to 6 do
    Rtl_core.add_output c (p_port k) 7
  done;
  Rtl_core.add_output c p_port_stat 5;
  Rtl_core.add_reg c "BCD" 8;
  Rtl_core.add_reg c "AL" 7;
  Rtl_core.add_reg c "XC" 7;
  Rtl_core.add_reg c "SEL" 4;
  Rtl_core.add_reg c "CTR" 4;
  Rtl_core.add_reg c "XS" 5;
  for k = 1 to 6 do
    Rtl_core.add_reg c (Printf.sprintf "DIG%d" k) 7
  done;
  let t = Rtl_core.add_transfer c in
  let dig k = Rtl_core.reg c (Printf.sprintf "DIG%d" k) in
  (* Data path: digits latch from the BCD bus in parallel. *)
  t ~src:(Rtl_core.port c p_d) ~dst:(Rtl_core.reg c "BCD") ();
  for k = 1 to 5 do
    t ~src:(Rtl_core.reg_bits c "BCD" 0 6) ~dst:(dig k) ()
  done;
  (* Address path: DIG6 is fed by the A-side pipeline. *)
  t ~src:(Rtl_core.port_bits c p_a_lo 0 6) ~dst:(Rtl_core.reg c "AL") ();
  t ~src:(Rtl_core.reg c "AL") ~dst:(Rtl_core.reg c "XC") ();
  t ~src:(Rtl_core.reg c "XC") ~dst:(dig 6) ();
  t ~src:(Rtl_core.port c p_a_hi) ~dst:(Rtl_core.reg c "SEL") ();
  t ~src:(Rtl_core.reg c "SEL") ~dst:(Rtl_core.reg c "CTR") ();
  t ~src:(Rtl_core.reg c "CTR") ~dst:(Rtl_core.reg_bits c "XS" 0 3) ();
  (* Alternative select path into the status register (hard-wired). *)
  t ~kind:Direct ~src:(Rtl_core.reg c "SEL") ~dst:(Rtl_core.reg_bits c "XS" 0 3) ();
  (* The top BCD bit and top address bit both park in XS bit 4. *)
  t ~src:(Rtl_core.reg_bits c "BCD" 7 7) ~dst:(Rtl_core.reg_bits c "XS" 4 4) ();
  t ~kind:Direct ~src:(Rtl_core.port_bits c p_a_lo 7 7)
    ~dst:(Rtl_core.reg_bits c "XS" 4 4) ();
  (* Registered outputs. *)
  for k = 1 to 6 do
    t ~kind:Direct ~src:(dig k) ~dst:(Rtl_core.port c (p_port k)) ()
  done;
  t ~kind:Direct ~src:(Rtl_core.reg c "XS") ~dst:(Rtl_core.port c p_port_stat) ();
  (* Existing direct bus from the address input into DIG6 (7 gating bits):
     Version 2 steers it for 1-cycle A -> OUT transparency. *)
  t ~kind:(Mux 7) ~src:(Rtl_core.port_bits c p_a_lo 0 6) ~dst:(dig 6) ();
  (* Functional units: 7-segment decoders and the blink counter. *)
  t ~kind:(Logic Fdec7seg) ~src:(Rtl_core.reg_bits c "BCD" 0 3) ~dst:(dig 1) ();
  t ~kind:(Logic Fdec7seg) ~src:(Rtl_core.reg_bits c "BCD" 4 7) ~dst:(dig 2) ();
  t ~kind:(Logic Finc) ~src:(Rtl_core.reg c "CTR") ~dst:(Rtl_core.reg c "CTR") ();
  t ~kind:(Logic (Fxor (Rtl_core.reg c "AL")))
    ~src:(Rtl_core.reg c "XC") ~dst:(Rtl_core.reg c "XC") ();
  Rtl_core.validate c;
  c
