open Socet_rtl
open Rtl_types

let p_num = "NUM"
let p_reset = "Reset"
let p_db = "DB"
let p_address = "Address"
let p_eoc = "Eoc"

let core () =
  let c = Rtl_core.create "PREPROCESSOR" in
  Rtl_core.add_input c p_num 8;
  Rtl_core.add_input c p_reset 1;
  Rtl_core.add_output c p_db 8;
  Rtl_core.add_output c p_address 4;
  Rtl_core.add_output c p_eoc 1;
  Rtl_core.add_reg c "S1" 8;
  Rtl_core.add_reg c "S2" 8;
  Rtl_core.add_reg c "S3" 8;
  Rtl_core.add_reg c "CNT" 8;
  Rtl_core.add_reg c "DBR" 8;
  Rtl_core.add_reg c "AR" 4;
  Rtl_core.add_reg c "EF1" 1;
  Rtl_core.add_reg c "EF2" 1;
  let t = Rtl_core.add_transfer c in
  (* Sampling pipeline; HSCAN threads it straight through. *)
  t ~src:(Rtl_core.port c p_num) ~dst:(Rtl_core.reg c "S1") ();
  t ~src:(Rtl_core.reg c "S1") ~dst:(Rtl_core.reg c "S2") ();
  t ~src:(Rtl_core.reg c "S2") ~dst:(Rtl_core.reg c "S3") ();
  t ~src:(Rtl_core.reg c "S3") ~dst:(Rtl_core.reg c "CNT") ();
  (* Bus register: high nibble from the width counter, low nibble straight
     from the pipeline — a C-split whose branches differ by one cycle, so
     S3 is frozen once during transparency. *)
  t ~src:(Rtl_core.reg_bits c "CNT" 4 7) ~dst:(Rtl_core.reg_bits c "DBR" 4 7) ();
  t ~src:(Rtl_core.reg_bits c "S3" 0 3) ~dst:(Rtl_core.reg_bits c "DBR" 0 3) ();
  t ~kind:Direct ~src:(Rtl_core.reg c "DBR") ~dst:(Rtl_core.port c p_db) ();
  (* Address counter. *)
  t ~src:(Rtl_core.reg_bits c "S1" 0 3) ~dst:(Rtl_core.reg c "AR") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "AR") ~dst:(Rtl_core.port c p_address) ();
  (* End-of-conversion control chain. *)
  t ~src:(Rtl_core.port c p_reset) ~dst:(Rtl_core.reg c "EF1") ();
  t ~src:(Rtl_core.reg c "EF1") ~dst:(Rtl_core.reg c "EF2") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "EF2") ~dst:(Rtl_core.port c p_eoc) ();
  (* Existing video-bypass path into the bus register (one leg per DBR
     slice): steering it in test mode overrides 4 + 3 gating signals
     (Version 2's +17 cells). *)
  t ~kind:(Mux 4)
    ~src:(Rtl_core.port_bits c p_num 4 7)
    ~dst:(Rtl_core.reg_bits c "DBR" 4 7) ();
  t ~kind:(Mux 3)
    ~src:(Rtl_core.port_bits c p_num 0 3)
    ~dst:(Rtl_core.reg_bits c "DBR" 0 3) ();
  (* Functional units (gate-level realism only). *)
  t ~kind:(Logic (Fsub (Rtl_core.reg c "S1")))
    ~src:(Rtl_core.reg c "S2") ~dst:(Rtl_core.reg c "S3") ();
  t ~kind:(Logic Finc) ~src:(Rtl_core.reg c "CNT") ~dst:(Rtl_core.reg c "CNT") ();
  t ~kind:(Logic Finc) ~src:(Rtl_core.reg c "AR") ~dst:(Rtl_core.reg c "AR") ();
  t ~kind:(Logic Fparity) ~src:(Rtl_core.reg c "S3") ~dst:(Rtl_core.reg c "EF1") ();
  Rtl_core.validate c;
  c
