open Socet_rtl
open Rtl_types

let p_cmd = "CMD"
let p_xy = "XY"
let p_pix = "PIX"
let p_rdy = "RDY"

let core () =
  let c = Rtl_core.create "GRAPHICS" in
  Rtl_core.add_input c p_cmd 8;
  Rtl_core.add_input c p_xy 8;
  Rtl_core.add_output c p_pix 8;
  Rtl_core.add_output c p_rdy 1;
  Rtl_core.add_reg c "CR" 8;
  Rtl_core.add_reg c "X0" 8;
  Rtl_core.add_reg c "Y0" 8;
  Rtl_core.add_reg c "DX" 8;
  Rtl_core.add_reg c "ERR" 8;
  Rtl_core.add_reg c "PXR" 8;
  Rtl_core.add_reg c "RF" 1;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c p_cmd) ~dst:(Rtl_core.reg c "CR") ();
  t ~src:(Rtl_core.port c p_xy) ~dst:(Rtl_core.reg c "X0") ();
  t ~src:(Rtl_core.reg c "X0") ~dst:(Rtl_core.reg c "Y0") ();
  t ~src:(Rtl_core.reg c "Y0") ~dst:(Rtl_core.reg c "DX") ();
  t ~src:(Rtl_core.reg c "DX") ~dst:(Rtl_core.reg c "ERR") ();
  t ~src:(Rtl_core.reg c "ERR") ~dst:(Rtl_core.reg c "PXR") ();
  t ~src:(Rtl_core.reg c "CR") ~dst:(Rtl_core.reg c "PXR") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "PXR") ~dst:(Rtl_core.port c p_pix) ();
  t ~kind:(Logic Fparity) ~src:(Rtl_core.reg c "CR") ~dst:(Rtl_core.reg c "RF") ();
  t ~src:(Rtl_core.reg_bits c "CR" 0 0) ~dst:(Rtl_core.reg c "RF") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "RF") ~dst:(Rtl_core.port c p_rdy) ();
  (* Frame-buffer write bypass (existing bus, 6 control bits). *)
  t ~kind:(Mux 6) ~src:(Rtl_core.port c p_xy) ~dst:(Rtl_core.reg c "PXR") ();
  (* Bresenham arithmetic. *)
  t ~kind:(Logic (Fadd (Rtl_core.reg c "DX")))
    ~src:(Rtl_core.reg c "ERR") ~dst:(Rtl_core.reg c "ERR") ();
  t ~kind:(Logic (Fsub (Rtl_core.reg c "Y0")))
    ~src:(Rtl_core.reg c "X0") ~dst:(Rtl_core.reg c "DX") ();
  t ~kind:(Logic Finc) ~src:(Rtl_core.reg c "X0") ~dst:(Rtl_core.reg c "X0") ();
  Rtl_core.validate c;
  c
