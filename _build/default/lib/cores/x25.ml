open Socet_rtl
open Rtl_types

let p_rx = "RX"
let p_ctl = "Ctl"
let p_tx = "TX"
let p_status = "Status"

let core () =
  let c = Rtl_core.create "X25" in
  Rtl_core.add_input c p_rx 8;
  Rtl_core.add_input c p_ctl 1;
  Rtl_core.add_output c p_tx 8;
  Rtl_core.add_output c p_status 4;
  Rtl_core.add_reg c "SHIFT" 8;
  Rtl_core.add_reg c "HDR" 8;
  Rtl_core.add_reg c "CRC" 8;
  Rtl_core.add_reg c "TXR" 8;
  Rtl_core.add_reg c "STATE" 4;
  Rtl_core.add_reg c "FLG" 4;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c p_rx) ~dst:(Rtl_core.reg c "SHIFT") ();
  t ~src:(Rtl_core.reg c "SHIFT") ~dst:(Rtl_core.reg c "HDR") ();
  t ~src:(Rtl_core.reg c "HDR") ~dst:(Rtl_core.reg c "TXR") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "TXR") ~dst:(Rtl_core.port c p_tx) ();
  t ~src:(Rtl_core.reg c "SHIFT") ~dst:(Rtl_core.reg c "CRC") ();
  t ~src:(Rtl_core.reg_bits c "CRC" 0 3) ~dst:(Rtl_core.reg c "FLG") ();
  t ~src:(Rtl_core.port c p_ctl) ~dst:(Rtl_core.reg_bits c "STATE" 0 0) ();
  t ~src:(Rtl_core.reg_bits c "FLG" 1 3) ~dst:(Rtl_core.reg_bits c "STATE" 1 3) ();
  t ~kind:Direct ~src:(Rtl_core.reg c "STATE") ~dst:(Rtl_core.port c p_status) ();
  (* Cut-through transmit path (existing bus, 4 control bits). *)
  t ~kind:(Mux 4) ~src:(Rtl_core.port c p_rx) ~dst:(Rtl_core.reg c "TXR") ();
  (* CRC update and flag logic. *)
  t ~kind:(Logic (Fxor (Rtl_core.reg c "SHIFT")))
    ~src:(Rtl_core.reg c "CRC") ~dst:(Rtl_core.reg c "CRC") ();
  t ~kind:(Logic (Fand (Rtl_core.reg_bits c "HDR" 0 3)))
    ~src:(Rtl_core.reg_bits c "CRC" 4 7) ~dst:(Rtl_core.reg c "FLG") ();
  Rtl_core.validate c;
  c
