(** X.25 protocol core [11]: receive shift register, header latch, CRC
    accumulator and a protocol state register. *)

open Socet_rtl

val core : unit -> Rtl_core.t

val p_rx : string
val p_ctl : string
val p_tx : string
val p_status : string
