open Socet_rtl
open Rtl_types

let p_data = "Data"
let p_reset = "Reset"
let p_interrupt = "Interrupt"
let p_address_lo = "Address_lo"
let p_address_hi = "Address_hi"
let p_read = "Read"
let p_write = "Write"

let core () =
  let c = Rtl_core.create "CPU" in
  Rtl_core.add_input c p_data 8;
  Rtl_core.add_input c p_reset 1;
  Rtl_core.add_input c p_interrupt 1;
  Rtl_core.add_output c p_address_lo 8;
  Rtl_core.add_output c p_address_hi 4;
  Rtl_core.add_output c p_read 1;
  Rtl_core.add_output c p_write 1;
  Rtl_core.add_reg c "IR" 8;
  Rtl_core.add_reg c "DR" 8;
  Rtl_core.add_reg c "TR" 8;
  Rtl_core.add_reg c "SR" 4;
  Rtl_core.add_reg c "AC" 8;
  Rtl_core.add_reg c "PC" 8;
  Rtl_core.add_reg c "MAR_off" 8;
  Rtl_core.add_reg c "MAR_pag" 4;
  Rtl_core.add_reg c "RFF" 1;
  Rtl_core.add_reg c "RD_FF" 1;
  Rtl_core.add_reg c "WFF" 1;
  Rtl_core.add_reg c "WR_FF" 1;
  let t = Rtl_core.add_transfer c in
  (* Datapath mux/direct paths; declaration order doubles as HSCAN chain
     preference.  The layout reproduces the paper's Fig. 3/4 structure:
     Data -> IR -> DR -> TR -> AC(hi) with the C-split AC(lo) branch coming
     through SR, then AC -> PC -> MAR_off -> Address_lo; the page nibble
     goes IR -> MAR_pag -> Address_hi. *)
  t ~src:(Rtl_core.port c p_data) ~dst:(Rtl_core.reg c "IR") ();
  t ~src:(Rtl_core.reg c "IR") ~dst:(Rtl_core.reg c "DR") ();
  t ~src:(Rtl_core.reg c "DR") ~dst:(Rtl_core.reg c "TR") ();
  t ~src:(Rtl_core.reg_bits c "TR" 4 7) ~dst:(Rtl_core.reg_bits c "AC" 4 7) ();
  t ~src:(Rtl_core.reg_bits c "IR" 0 3) ~dst:(Rtl_core.reg c "SR") ();
  t ~src:(Rtl_core.reg c "SR") ~dst:(Rtl_core.reg_bits c "AC" 0 3) ();
  t ~src:(Rtl_core.reg c "AC") ~dst:(Rtl_core.reg c "PC") ();
  t ~src:(Rtl_core.reg c "PC") ~dst:(Rtl_core.reg c "MAR_off") ();
  t ~src:(Rtl_core.reg_bits c "IR" 0 3) ~dst:(Rtl_core.reg c "MAR_pag") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "MAR_off") ~dst:(Rtl_core.port c p_address_lo) ();
  t ~kind:Direct ~src:(Rtl_core.reg c "MAR_pag") ~dst:(Rtl_core.port c p_address_hi) ();
  (* Control bypass chains: Reset -> Read and Interrupt -> Write in two
     cycles (Sec. 3). *)
  t ~src:(Rtl_core.port c p_reset) ~dst:(Rtl_core.reg c "RFF") ();
  t ~src:(Rtl_core.reg c "RFF") ~dst:(Rtl_core.reg c "RD_FF") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "RD_FF") ~dst:(Rtl_core.port c p_read) ();
  t ~src:(Rtl_core.port c p_interrupt) ~dst:(Rtl_core.reg c "WFF") ();
  t ~src:(Rtl_core.reg c "WFF") ~dst:(Rtl_core.reg c "WR_FF") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "WR_FF") ~dst:(Rtl_core.port c p_write) ();
  (* Mux M (Fig. 3): the existing alternative connection from the data bus
     into MAR_off, steerable in test mode by overriding 3 select bits. *)
  t ~kind:(Mux 3) ~src:(Rtl_core.port c p_data) ~dst:(Rtl_core.reg c "MAR_off") ();
  (* Functional units — gate-level realism only (invisible to the RCG). *)
  t ~kind:(Logic (Fadd (Rtl_core.reg_bits c "AC" 4 7)))
    ~src:(Rtl_core.reg_bits c "DR" 4 7) ~dst:(Rtl_core.reg_bits c "AC" 4 7) ();
  t ~kind:(Logic (Fxor (Rtl_core.reg_bits c "DR" 0 3)))
    ~src:(Rtl_core.reg_bits c "AC" 0 3) ~dst:(Rtl_core.reg_bits c "AC" 0 3) ();
  t ~kind:(Logic Finc) ~src:(Rtl_core.reg c "PC") ~dst:(Rtl_core.reg c "PC") ();
  t ~kind:(Logic (Fand (Rtl_core.reg_bits c "IR" 0 3)))
    ~src:(Rtl_core.reg_bits c "AC" 0 3) ~dst:(Rtl_core.reg c "SR") ();
  t ~kind:(Logic (Fxor (Rtl_core.reg c "DR")))
    ~src:(Rtl_core.reg c "TR") ~dst:(Rtl_core.reg c "TR") ();
  Rtl_core.validate c;
  c
