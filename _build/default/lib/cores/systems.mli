(** The paper's two experimental systems, assembled.

    {b System 1} is the barcode scanning system of Fig. 2: PREPROCESSOR,
    CPU and DISPLAY around a RAM/ROM pair (memories are BIST-tested and
    excluded from the access analysis, as in the paper).  The
    PREPROCESSOR's RAM-facing address port and the CPU's RAM control
    strobes are not observable through any core — the router must place
    system-level test muxes for them, as the paper does for the
    PREPROCESSOR's Address output in Fig. 9.

    {b System 2} chains a graphics processor, a GCD core and an X.25
    protocol core (paper Sec. 6). *)

val system1 : unit -> Socet_core.Soc.t
val system2 : unit -> Socet_core.Soc.t

val system3 : unit -> Socet_core.Soc.t
(** {b System 3} (ours, not in the paper): three independent subsystems —
    the graphics/GCD chain, an X.25 front end and a barcode preprocessor —
    each with its own pins.  Their test-access paths touch disjoint core
    sets, so the overlapped scheduler
    ({!Socet_core.Schedule.parallel_makespan}) can run them concurrently;
    used by the scheduling ablation. *)
