open Socet_rtl
open Rtl_types

let p_a = "A"
let p_b = "B"
let p_start = "Start"
let p_result = "RESULT"
let p_done = "Done"

let core () =
  let c = Rtl_core.create "GCD" in
  Rtl_core.add_input c p_a 8;
  Rtl_core.add_input c p_b 8;
  Rtl_core.add_input c p_start 1;
  Rtl_core.add_output c p_result 8;
  Rtl_core.add_output c p_done 1;
  Rtl_core.add_reg c "X" 8;
  Rtl_core.add_reg c "Y" 8;
  Rtl_core.add_reg c "T" 8;
  Rtl_core.add_reg c "SF" 1;
  Rtl_core.add_reg c "DF" 1;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c p_a) ~dst:(Rtl_core.reg c "X") ();
  t ~src:(Rtl_core.port c p_b) ~dst:(Rtl_core.reg c "Y") ();
  t ~src:(Rtl_core.reg c "X") ~dst:(Rtl_core.reg c "T") ();
  t ~src:(Rtl_core.reg c "Y") ~dst:(Rtl_core.reg c "X") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "T") ~dst:(Rtl_core.port c p_result) ();
  t ~src:(Rtl_core.port c p_start) ~dst:(Rtl_core.reg c "SF") ();
  t ~src:(Rtl_core.reg c "SF") ~dst:(Rtl_core.reg c "DF") ();
  t ~kind:Direct ~src:(Rtl_core.reg c "DF") ~dst:(Rtl_core.port c p_done) ();
  (* Result write-back bus from Y straight into T (the loop's exit move):
     steerable with 5 control bits. *)
  t ~kind:(Mux 5) ~src:(Rtl_core.port c p_b) ~dst:(Rtl_core.reg c "T") ();
  (* Euclid datapath. *)
  t ~kind:(Logic (Fsub (Rtl_core.reg c "Y")))
    ~src:(Rtl_core.reg c "X") ~dst:(Rtl_core.reg c "X") ();
  t ~kind:(Logic (Fsub (Rtl_core.reg c "X")))
    ~src:(Rtl_core.reg c "Y") ~dst:(Rtl_core.reg c "Y") ();
  t ~kind:(Logic Fparity) ~src:(Rtl_core.reg c "X") ~dst:(Rtl_core.reg c "DF") ();
  Rtl_core.validate c;
  c
