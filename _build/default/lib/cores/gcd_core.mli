(** GCD core from the 1995 high-level-synthesis design repository [10]:
    a Euclid's-algorithm datapath with operand registers [X]/[Y], a
    subtract-and-swap loop, and a start/done handshake. *)

open Socet_rtl

val core : unit -> Rtl_core.t

val p_a : string
val p_b : string
val p_start : string
val p_result : string
val p_done : string
