(** The barcode PREPROCESSOR core: samples the video input, measures bar
    widths and writes them to the RAM data bus.

    Structure (paper Figs. 2, 8(a), 9):
    - a sampling/width-measuring pipeline [NUM -> S1 -> S2 -> S3], a width
      counter [CNT] and the bus register [DBR] driving the [DB] output —
      through the HSCAN chains a value entered at [NUM] reaches [DB] in 5
      cycles, with [S3] frozen one cycle to balance the C-split at [DBR];
    - an address counter [AR] driving the [Address] output ([NUM -> A] in
      2 cycles);
    - an end-of-conversion chain [Reset -> EF1 -> EF2 -> Eoc] (2 cycles),
      which the SOC uses to control the CPU's interrupt input;
    - an existing video-bypass path [NUM -> DBR] (8 gating bits) that
      Version 2 steers for 1-cycle transparency. *)

open Socet_rtl

val core : unit -> Rtl_core.t

val p_num : string
val p_reset : string
val p_db : string
val p_address : string
val p_eoc : string
