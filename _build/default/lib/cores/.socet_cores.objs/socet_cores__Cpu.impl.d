lib/cores/cpu.ml: Rtl_core Rtl_types Socet_rtl
