lib/cores/systems.mli: Socet_core
