lib/cores/graphics.mli: Rtl_core Socet_rtl
