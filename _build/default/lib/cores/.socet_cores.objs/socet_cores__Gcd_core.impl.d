lib/cores/gcd_core.ml: Rtl_core Rtl_types Socet_rtl
