lib/cores/cpu.mli: Rtl_core Socet_rtl
