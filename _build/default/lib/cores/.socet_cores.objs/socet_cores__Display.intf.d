lib/cores/display.mli: Rtl_core Socet_rtl
