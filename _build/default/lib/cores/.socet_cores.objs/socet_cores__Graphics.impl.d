lib/cores/graphics.ml: Rtl_core Rtl_types Socet_rtl
