lib/cores/display.ml: Printf Rtl_core Rtl_types Socet_rtl
