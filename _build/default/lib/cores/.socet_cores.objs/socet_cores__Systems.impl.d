lib/cores/systems.ml: Cpu Display Gcd_core Graphics List Preprocessor Printf Soc Socet_bist Socet_core X25
