lib/cores/x25.ml: Rtl_core Rtl_types Socet_rtl
