lib/cores/preprocessor.mli: Rtl_core Socet_rtl
