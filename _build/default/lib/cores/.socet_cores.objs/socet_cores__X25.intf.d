lib/cores/x25.mli: Rtl_core Socet_rtl
