lib/cores/gcd_core.mli: Rtl_core Socet_rtl
