lib/cores/preprocessor.ml: Rtl_core Rtl_types Socet_rtl
