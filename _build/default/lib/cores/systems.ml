open Socet_core

let conn from_ to_ = { Soc.c_from = from_; c_to = to_ }

let system1 () =
  let cpu = Soc.instantiate "CPU" (Cpu.core ()) in
  let prep = Soc.instantiate "PREP" (Preprocessor.core ()) in
  let disp = Soc.instantiate "DISPLAY" (Display.core ()) in
  let pos =
    List.init 6 (fun k -> (Printf.sprintf "PO_PORT%d" (k + 1), 7))
    @ [ ("PO_STAT", 5) ]
  in
  Soc.make ~name:"System1" ~pis:[ ("NUM", 8); ("Reset", 1) ] ~pos
    ~cores:[ prep; cpu; disp ]
    ~connections:
      [
        (* Video front end. *)
        conn (Soc.Pi "NUM") (Soc.Cport ("PREP", Preprocessor.p_num));
        conn (Soc.Pi "Reset") (Soc.Cport ("PREP", Preprocessor.p_reset));
        (* CPU sits on the memory bus behind the preprocessor. *)
        conn (Soc.Cport ("PREP", Preprocessor.p_db)) (Soc.Cport ("CPU", Cpu.p_data));
        conn (Soc.Pi "Reset") (Soc.Cport ("CPU", Cpu.p_reset));
        conn (Soc.Cport ("PREP", Preprocessor.p_eoc))
          (Soc.Cport ("CPU", Cpu.p_interrupt));
        (* Display is memory-mapped off the CPU address bus and the data
           bus. *)
        conn (Soc.Cport ("PREP", Preprocessor.p_db)) (Soc.Cport ("DISPLAY", Display.p_d));
        conn (Soc.Cport ("CPU", Cpu.p_address_lo))
          (Soc.Cport ("DISPLAY", Display.p_a_lo));
        conn (Soc.Cport ("CPU", Cpu.p_address_hi))
          (Soc.Cport ("DISPLAY", Display.p_a_hi));
        (* Chip outputs: the six seven-segment ports plus status. *)
        conn (Soc.Cport ("DISPLAY", Display.p_port 1)) (Soc.Po "PO_PORT1");
        conn (Soc.Cport ("DISPLAY", Display.p_port 2)) (Soc.Po "PO_PORT2");
        conn (Soc.Cport ("DISPLAY", Display.p_port 3)) (Soc.Po "PO_PORT3");
        conn (Soc.Cport ("DISPLAY", Display.p_port 4)) (Soc.Po "PO_PORT4");
        conn (Soc.Cport ("DISPLAY", Display.p_port 5)) (Soc.Po "PO_PORT5");
        conn (Soc.Cport ("DISPLAY", Display.p_port 6)) (Soc.Po "PO_PORT6");
        conn (Soc.Cport ("DISPLAY", Display.p_port_stat)) (Soc.Po "PO_STAT");
      ]
    ~memories:
      [
        {
          Soc.m_name = "RAM";
          m_bits = 4096 * 8;
          m_bist_area = Socet_bist.March.bist_area ~words:4096 ~width:8;
        };
        {
          Soc.m_name = "ROM";
          m_bits = 2048 * 8;
          m_bist_area = Socet_bist.March.bist_area ~words:2048 ~width:8;
        };
      ]
    ()

let system2 () =
  let gfx = Soc.instantiate "GFX" (Graphics.core ()) in
  let gcd = Soc.instantiate "GCD" (Gcd_core.core ()) in
  let x25 = Soc.instantiate "X25" (X25.core ()) in
  Soc.make ~name:"System2"
    ~pis:[ ("CMD", 8); ("XY", 8) ]
    ~pos:[ ("TX", 8); ("STATUS", 4) ]
    ~cores:[ gfx; gcd; x25 ]
    ~connections:
      [
        conn (Soc.Pi "CMD") (Soc.Cport ("GFX", Graphics.p_cmd));
        conn (Soc.Pi "XY") (Soc.Cport ("GFX", Graphics.p_xy));
        conn (Soc.Cport ("GFX", Graphics.p_pix)) (Soc.Cport ("GCD", Gcd_core.p_a));
        conn (Soc.Pi "XY") (Soc.Cport ("GCD", Gcd_core.p_b));
        conn (Soc.Cport ("GFX", Graphics.p_rdy)) (Soc.Cport ("GCD", Gcd_core.p_start));
        conn (Soc.Cport ("GCD", Gcd_core.p_result)) (Soc.Cport ("X25", X25.p_rx));
        conn (Soc.Cport ("GCD", Gcd_core.p_done)) (Soc.Cport ("X25", X25.p_ctl));
        conn (Soc.Cport ("X25", X25.p_tx)) (Soc.Po "TX");
        conn (Soc.Cport ("X25", X25.p_status)) (Soc.Po "STATUS");
      ]
    ()

let system3 () =
  let gfx = Soc.instantiate "GFX" (Graphics.core ()) in
  let gcd = Soc.instantiate "GCD" (Gcd_core.core ()) in
  let x25 = Soc.instantiate "X25" (X25.core ()) in
  let prep = Soc.instantiate "PREP" (Preprocessor.core ()) in
  Soc.make ~name:"System3"
    ~pis:[ ("CMD", 8); ("XY", 8); ("RXIN", 8); ("CTL", 1); ("NUM", 8); ("RST", 1) ]
    ~pos:
      [
        ("RESULT", 8);
        ("DONE", 1);
        ("TX", 8);
        ("STATUS", 4);
        ("DB", 8);
        ("EOC", 1);
      ]
    ~cores:[ gfx; gcd; x25; prep ]
    ~connections:
      [
        (* Chain A: graphics feeding the GCD datapath. *)
        conn (Soc.Pi "CMD") (Soc.Cport ("GFX", Graphics.p_cmd));
        conn (Soc.Pi "XY") (Soc.Cport ("GFX", Graphics.p_xy));
        conn (Soc.Cport ("GFX", Graphics.p_pix)) (Soc.Cport ("GCD", Gcd_core.p_a));
        conn (Soc.Pi "XY") (Soc.Cport ("GCD", Gcd_core.p_b));
        conn (Soc.Cport ("GFX", Graphics.p_rdy)) (Soc.Cport ("GCD", Gcd_core.p_start));
        conn (Soc.Cport ("GCD", Gcd_core.p_result)) (Soc.Po "RESULT");
        conn (Soc.Cport ("GCD", Gcd_core.p_done)) (Soc.Po "DONE");
        (* Chain B: the protocol front end, on its own pins. *)
        conn (Soc.Pi "RXIN") (Soc.Cport ("X25", X25.p_rx));
        conn (Soc.Pi "CTL") (Soc.Cport ("X25", X25.p_ctl));
        conn (Soc.Cport ("X25", X25.p_tx)) (Soc.Po "TX");
        conn (Soc.Cport ("X25", X25.p_status)) (Soc.Po "STATUS");
        (* Chain C: the barcode sampler, also independent. *)
        conn (Soc.Pi "NUM") (Soc.Cport ("PREP", Preprocessor.p_num));
        conn (Soc.Pi "RST") (Soc.Cport ("PREP", Preprocessor.p_reset));
        conn (Soc.Cport ("PREP", Preprocessor.p_db)) (Soc.Po "DB");
        conn (Soc.Cport ("PREP", Preprocessor.p_eoc)) (Soc.Po "EOC");
      ]
    ()
