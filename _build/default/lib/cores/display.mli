(** The barcode DISPLAY core: converts the CPU's BCD output into six
    seven-segment digit codes (paper Figs. 2, 8(c), 9).

    Structure:
    - data path: [D -> BCD], with the digit latches [DIG1..DIG5] loading
      from the BCD bus in parallel (and through 7-segment decoders), each
      driving one [PORTk] output — a value at [D] reaches the output ports
      in 2 cycles;
    - address path: [A_lo -> AL -> XC -> DIG6 -> PORT6] (3 cycles) and the
      digit-select path [A_hi -> SEL -> CTR -> XS -> PORT_STAT];
    - an existing direct path [A_lo -> DIG6] (7 gating bits) steered by
      Version 2 for 1-cycle address transparency;
    - 20 input bits (D = 8, A = 12), matching the paper's "66 flip-flops
      and 20 internal inputs" DISPLAY description. *)

open Socet_rtl

val core : unit -> Rtl_core.t

val p_d : string
val p_a_lo : string
val p_a_hi : string
val p_port : int -> string
(** [p_port k] for k in 1..6. *)

val p_port_stat : string
