(** The barcode system's CPU core — an accumulator machine in the style of
    Navabi's educational CPU [7], with the register topology of the paper's
    Figs. 3, 4 and 7:

    - instruction register [IR] fed from the [Data] input (fetch path);
    - a data register [DR] and ALU staging register [TR];
    - a C-split accumulator [AC]: its high nibble loads from [TR], its low
      nibble from the status register [SR];
    - program counter [PC], memory address registers [MAR_off]/[MAR_pag]
      driving the [Address_lo]/[Address_hi] outputs;
    - single-bit control chains [Reset -> RFF -> Read] and
      [Interrupt -> WFF -> Write];
    - the alternative connection "mux M" ([Data -> MAR_off], 3 control
      bits) that version 2 steers for 1-cycle transparency.

    Through the HSCAN chains, a value applied at [Data] reaches
    [Address_lo] in 6 cycles (with [SR] frozen one cycle to balance the
    C-split branches) and [Address_hi] in 2 — the paper's Version 1 row. *)

open Socet_rtl

val core : unit -> Rtl_core.t

(** Port names, to keep call sites typo-proof. *)

val p_data : string
val p_reset : string
val p_interrupt : string
val p_address_lo : string
val p_address_hi : string
val p_read : string
val p_write : string
