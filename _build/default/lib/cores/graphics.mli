(** Graphics processor core [9] — a control-flow-intensive line-drawing
    (Bresenham-style) datapath: command and coordinate registers, a delta/
    error pipeline and a pixel output register. *)

open Socet_rtl

val core : unit -> Rtl_core.t

val p_cmd : string
val p_xy : string
val p_pix : string
val p_rdy : string
