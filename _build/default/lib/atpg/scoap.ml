open Socet_netlist

type t = { cc0 : int array; cc1 : int array; co : int array }

let infinity_cost = 1_000_000

let sat a b = min infinity_cost (a + b)
let sat3 a b c = sat (sat a b) c

let compute nl =
  let n = Netlist.gate_count nl in
  let cc0 = Array.make n infinity_cost in
  let cc1 = Array.make n infinity_cost in
  let order = Netlist.comb_order nl in
  (* Forward pass: controllabilities. *)
  Array.iter
    (fun g ->
      let f = Netlist.fanin nl g in
      let c0 i = cc0.(f.(i)) and c1 i = cc1.(f.(i)) in
      let v0, v1 =
        match Netlist.kind nl g with
        | Cell.Pi | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe ->
            (1, 1) (* scan-model inputs *)
        | Cell.Const0 -> (0, infinity_cost)
        | Cell.Const1 -> (infinity_cost, 0)
        | Cell.Buf -> (sat (c0 0) 1, sat (c1 0) 1)
        | Cell.Inv -> (sat (c1 0) 1, sat (c0 0) 1)
        | Cell.And2 -> (sat (min (c0 0) (c0 1)) 1, sat3 (c1 0) (c1 1) 1)
        | Cell.Nand2 -> (sat3 (c1 0) (c1 1) 1, sat (min (c0 0) (c0 1)) 1)
        | Cell.Or2 -> (sat3 (c0 0) (c0 1) 1, sat (min (c1 0) (c1 1)) 1)
        | Cell.Nor2 -> (sat (min (c1 0) (c1 1)) 1, sat3 (c0 0) (c0 1) 1)
        | Cell.Xor2 ->
            ( sat (min (sat (c0 0) (c0 1)) (sat (c1 0) (c1 1))) 1,
              sat (min (sat (c0 0) (c1 1)) (sat (c1 0) (c0 1))) 1 )
        | Cell.Xnor2 ->
            ( sat (min (sat (c0 0) (c1 1)) (sat (c1 0) (c0 1))) 1,
              sat (min (sat (c0 0) (c0 1)) (sat (c1 0) (c1 1))) 1 )
        | Cell.Mux2 ->
            (* fanin: sel, a (sel=0), b (sel=1) *)
            ( sat (min (sat (c0 0) (cc0.(f.(1)))) (sat (c1 0) (cc0.(f.(2))))) 1,
              sat (min (sat (c0 0) (cc1.(f.(1)))) (sat (c1 0) (cc1.(f.(2))))) 1 )
      in
      cc0.(g) <- v0;
      cc1.(g) <- v1)
    order;
  (* Backward pass: observabilities. *)
  let co = Array.make n infinity_cost in
  List.iter (fun (_, net) -> co.(net) <- 0) (Netlist.pos nl);
  (* Flip-flop D captures are observation points of the scan model; a
     load-enabled capture additionally needs the enable asserted. *)
  List.iter
    (fun ff ->
      let f = Netlist.fanin nl ff in
      match Netlist.kind nl ff with
      | Cell.Dff -> co.(f.(0)) <- 0
      | Cell.Dffe -> co.(f.(0)) <- min co.(f.(0)) cc1.(f.(1))
      | Cell.Sdff ->
          co.(f.(0)) <- min co.(f.(0)) cc0.(f.(2));
          co.(f.(1)) <- min co.(f.(1)) cc1.(f.(2))
      | Cell.Sdffe ->
          co.(f.(0)) <- min co.(f.(0)) (sat cc1.(f.(1)) cc0.(f.(3)));
          co.(f.(2)) <- min co.(f.(2)) cc1.(f.(3))
      | _ -> assert false)
    (Netlist.dffs nl);
  for idx = Array.length order - 1 downto 0 do
    let g = order.(idx) in
    if not (Cell.is_dff (Netlist.kind nl g)) then begin
      let f = Netlist.fanin nl g in
      let update pin cost = co.(f.(pin)) <- min co.(f.(pin)) (sat cost 1) in
      match Netlist.kind nl g with
      | Cell.Pi | Cell.Const0 | Cell.Const1 -> ()
      | Cell.Buf | Cell.Inv -> update 0 co.(g)
      | Cell.And2 | Cell.Nand2 ->
          update 0 (sat co.(g) cc1.(f.(1)));
          update 1 (sat co.(g) cc1.(f.(0)))
      | Cell.Or2 | Cell.Nor2 ->
          update 0 (sat co.(g) cc0.(f.(1)));
          update 1 (sat co.(g) cc0.(f.(0)))
      | Cell.Xor2 | Cell.Xnor2 ->
          update 0 (sat co.(g) (min cc0.(f.(1)) cc1.(f.(1))));
          update 1 (sat co.(g) (min cc0.(f.(0)) cc1.(f.(0))))
      | Cell.Mux2 ->
          (* Propagating the select requires the data inputs to differ;
             propagating a data input requires selecting it. *)
          update 0
            (sat co.(g)
               (min
                  (sat cc0.(f.(1)) cc1.(f.(2)))
                  (sat cc1.(f.(1)) cc0.(f.(2)))));
          update 1 (sat co.(g) cc0.(f.(0)));
          update 2 (sat co.(g) cc1.(f.(0)))
      | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe -> ()
    end
  done;
  { cc0; cc1; co }

let hardest_faults nl t n =
  Fault.collapse nl
  |> List.map (fun (f : Fault.t) ->
         let activation = if f.f_stuck then t.cc0.(f.f_net) else t.cc1.(f.f_net) in
         (f, sat activation t.co.(f.f_net)))
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)
