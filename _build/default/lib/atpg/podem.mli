(** PODEM combinational ATPG (Goel 1981) on the full-scan test model.

    Decision variables are the circuit's inputs in the scan sense: primary
    inputs plus flip-flop (pseudo) inputs.  Observation points are primary
    outputs plus flip-flop D captures.  Five-valued D-calculus is encoded as
    a pair of ternary values (good machine, faulty machine). *)

open Socet_util
open Socet_netlist

type outcome =
  | Test of Bitvec.t
      (** A detecting vector in {!Fsim.vector} layout; unassigned positions
          are filled with 0. *)
  | Untestable
      (** Search space exhausted: the fault is redundant. *)
  | Aborted
      (** Backtrack limit hit. *)

val generate :
  ?backtrack_limit:int -> ?scoap:Scoap.t -> Netlist.t -> Fault.t -> outcome
(** [backtrack_limit] defaults to 1000.  With [scoap], backtrace prefers
    the easiest-to-control fanin and the D-frontier is explored in
    observability order. *)

type stats = {
  vectors : Bitvec.t list;
  detected : Fault.t list;
  redundant : Fault.t list;
  aborted : Fault.t list;
  total_faults : int;
  coverage : float;    (** detected / total, percent *)
  efficiency : float;  (** (detected + redundant) / total, percent *)
}

val run :
  ?backtrack_limit:int ->
  ?random_patterns:int ->
  ?seed:int ->
  ?use_scoap:bool ->
  Netlist.t ->
  stats
(** Full test generation flow: a random-pattern phase (default 64 patterns,
    simulated with fault dropping), then PODEM on each remaining fault with
    each new vector fault-simulated against the remaining list, and finally
    reverse-order compaction ({!Compact.reverse_order}). *)
