let reverse_order nl ~vectors ~faults =
  let kept = ref [] in
  let remaining = ref faults in
  List.iter
    (fun vec ->
      if !remaining <> [] then begin
        let hit = Fsim.run_comb nl ~vectors:[ vec ] ~faults:!remaining in
        if hit <> [] then begin
          kept := vec :: !kept;
          remaining :=
            List.filter (fun f -> not (List.exists (Fault.equal f) hit)) !remaining
        end
      end)
    (List.rev vectors);
  !kept
