open Socet_netlist

type t = { f_net : Netlist.net; f_stuck : bool }

let equal a b = a.f_net = b.f_net && a.f_stuck = b.f_stuck
let compare = compare

let name nl f =
  Printf.sprintf "%s/sa%d" (Netlist.gate_name nl f.f_net) (if f.f_stuck then 1 else 0)

let faultable nl g =
  match Netlist.kind nl g with Cell.Const0 | Cell.Const1 -> false | _ -> true

let all nl =
  let acc = ref [] in
  for g = Netlist.gate_count nl - 1 downto 0 do
    if faultable nl g then
      acc := { f_net = g; f_stuck = false } :: { f_net = g; f_stuck = true } :: !acc
  done;
  !acc

let collapse nl =
  let keep f =
    match Netlist.kind nl f.f_net with
    | Cell.Buf | Cell.Inv ->
        let input = (Netlist.fanin nl f.f_net).(0) in
        (* Equivalent to a fault on the input when the input only feeds
           this gate; drop the output fault in that case. *)
        not (faultable nl input && List.length (Netlist.fanout nl input) = 1)
    | _ -> true
  in
  List.filter keep (all nl)
