(** SCOAP combinational testability measures (Goldstein 1979).

    [cc0]/[cc1] estimate the effort (number of input assignments) needed to
    drive a net to 0/1; [co] the effort to propagate a net's value to an
    observation point.  Inputs of the full-scan test model (PIs and
    flip-flop outputs) have controllability 1; observation points (POs and
    flip-flop D captures) have observability 0.

    PODEM uses these to pick the easiest X input during backtrace and the
    most observable D-frontier gate, which reduces backtracking on
    reconvergent circuits. *)

open Socet_netlist

type t = {
  cc0 : int array;  (** indexed by net id *)
  cc1 : int array;
  co : int array;
}

val infinity_cost : int
(** Saturation value for unreachable/uncontrollable nets. *)

val compute : Netlist.t -> t

val hardest_faults : Netlist.t -> t -> int -> (Fault.t * int) list
(** The [n] faults with the highest detection-cost estimate
    (controllability of the required activation value plus observability),
    most expensive first.  Useful for reporting and for test-point
    analysis. *)
