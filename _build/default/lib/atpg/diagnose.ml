open Socet_util

type dictionary = {
  d_faults : Fault.t array;
  d_syndromes : Bitvec.t array; (* bit i set = vector i fails *)
}

let observe nl ~vectors ~fault =
  let syn = Bitvec.create (List.length vectors) in
  List.iteri
    (fun i vec -> if Fsim.detects_comb nl vec fault then Bitvec.set syn i true)
    vectors;
  syn

let build nl ~vectors ~faults =
  (* One pattern-parallel pass per vector over all faults would be ideal;
     the straightforward per-fault loop reuses the cone-limited simulator
     and is fast enough for dictionary-sized cores. *)
  let d_faults = Array.of_list faults in
  let d_syndromes =
    Array.map (fun fault -> observe nl ~vectors ~fault) d_faults
  in
  { d_faults; d_syndromes }

let syndrome_of dict f =
  let rec find i =
    if i >= Array.length dict.d_faults then None
    else if Fault.equal dict.d_faults.(i) f then Some dict.d_syndromes.(i)
    else find (i + 1)
  in
  find 0

let hamming a b = Bitvec.popcount (Bitvec.logxor a b)

let diagnose dict observed =
  let scored =
    Array.to_list
      (Array.mapi
         (fun i f -> (f, hamming dict.d_syndromes.(i) observed))
         dict.d_faults)
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  match List.filter (fun (_, d) -> d = 0) scored with
  | [] -> List.filteri (fun i _ -> i < 10) scored
  | exact -> exact

let distinguishable dict =
  let n = Array.length dict.d_faults in
  if n = 0 then 0.0
  else begin
    let unique = ref 0 in
    Array.iteri
      (fun i s ->
        let clash = ref false in
        Array.iteri
          (fun j s' -> if i <> j && Bitvec.equal s s' then clash := true)
          dict.d_syndromes;
        if not !clash then incr unique
      )
      dict.d_syndromes;
    100.0 *. float_of_int !unique /. float_of_int n
  end
