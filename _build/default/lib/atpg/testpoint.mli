(** Test-point insertion guided by SCOAP.

    Faults that random/BIST patterns miss cluster around nets with poor
    controllability or observability.  An {e observation point} taps such
    a net into an extra pseudo-output (a dedicated capture flip-flop in
    practice); a {e control point} splices a test-mode OR/AND gate to
    force it.  This module proposes points from the SCOAP profile and
    measures the random-pattern coverage gain. *)

open Socet_netlist

type point =
  | Observe of Netlist.net
  | Control_one of Netlist.net   (** test-mode OR: force the net to 1 *)
  | Control_zero of Netlist.net  (** test-mode AND: force the net to 0 *)

val propose : Netlist.t -> Scoap.t -> budget:int -> point list
(** Up to [budget] points targeting the worst SCOAP detection costs (one
    point per net; observation when observability dominates, control
    otherwise). *)

val apply : Netlist.t -> point list -> unit
(** Mutates the netlist: an observation point becomes a new PO; a control
    point rewires the net's readers through a gate driven by a fresh
    [tp_ctl.<n>] PI. *)

val area_cost : point list -> int
(** 6 cells per observation point (capture flip-flop), 3 per control
    point (gate plus test-enable routing). *)

val coverage_gain :
  mk:(unit -> Netlist.t) -> budget:int -> patterns:int -> float * float
(** Build a fresh netlist, measure random-pattern fault coverage, insert
    the proposed points into another fresh copy and measure again:
    [(before, after)] in percent. *)
