(** Single stuck-at fault model on gate output nets. *)

open Socet_netlist

type t = { f_net : Netlist.net; f_stuck : bool }
(** The net is permanently stuck at [f_stuck]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val name : Netlist.t -> t -> string
(** e.g. "IR.3/sa0". *)

val all : Netlist.t -> t list
(** Both polarities on every net except constants.  This is the fault
    universe used for all coverage numbers. *)

val collapse : Netlist.t -> t list
(** Structural equivalence collapsing: a fault on the output of a buffer or
    inverter whose input has no other fanout is equivalent to a fault on
    that input net and is dropped (with the polarity flip for inverters
    accounted for).  Sound but deliberately conservative. *)
