(** Dictionary-based fault diagnosis.

    After production test fails, the observed pass/fail syndrome over the
    test set is matched against a precomputed fault dictionary to rank
    candidate defect locations — the flip side of the test-generation
    machinery, built on the same fault simulator. *)

open Socet_util
open Socet_netlist

type dictionary

val build : Netlist.t -> vectors:Bitvec.t list -> faults:Fault.t list -> dictionary
(** Simulates every fault against every vector; the per-fault syndrome is
    the bitset of failing vectors. *)

val syndrome_of : dictionary -> Fault.t -> Bitvec.t option
(** The recorded syndrome, if the fault is in the dictionary. *)

val observe : Netlist.t -> vectors:Bitvec.t list -> fault:Fault.t -> Bitvec.t
(** The syndrome a device with exactly this defect produces (ground truth
    for the tests and demos). *)

val diagnose : dictionary -> Bitvec.t -> (Fault.t * int) list
(** Candidates ranked by Hamming distance between recorded and observed
    syndromes (0 = exact match), best first; exact matches only if any
    exist, otherwise the 10 nearest. *)

val distinguishable : dictionary -> float
(** Diagnostic resolution: percentage of dictionary faults whose syndrome
    is unique. *)
