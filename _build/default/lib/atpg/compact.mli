(** Static test-set compaction. *)

open Socet_util
open Socet_netlist

val reverse_order :
  Netlist.t -> vectors:Bitvec.t list -> faults:Fault.t list -> Bitvec.t list
(** Reverse-order compaction: fault-simulate the vectors last-to-first with
    fault dropping and keep only those that detect a fault not already
    covered by a later-kept vector.  Returns the kept vectors in their
    original relative order. *)
