lib/atpg/fault.ml: Array Cell List Netlist Printf Socet_netlist
