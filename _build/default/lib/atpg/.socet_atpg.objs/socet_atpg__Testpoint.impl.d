lib/atpg/testpoint.ml: Array Cell Fault Fsim List Netlist Printf Rng Scoap Socet_netlist Socet_util
