lib/atpg/fsim.ml: Array Bitvec Cell Fault List Netlist Queue Sim Socet_netlist Socet_util
