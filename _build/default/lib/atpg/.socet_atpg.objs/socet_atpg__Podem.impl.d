lib/atpg/podem.ml: Array Bitvec Cell Compact Fault Fsim Hashtbl List Netlist Queue Rng Scoap Socet_netlist Socet_util
