lib/atpg/podem.mli: Bitvec Fault Netlist Scoap Socet_netlist Socet_util
