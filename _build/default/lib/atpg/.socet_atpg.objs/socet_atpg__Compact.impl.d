lib/atpg/compact.ml: Fault Fsim List
