lib/atpg/dalg.mli: Bitvec Fault Netlist Socet_netlist Socet_util
