lib/atpg/diagnose.mli: Bitvec Fault Netlist Socet_netlist Socet_util
