lib/atpg/diagnose.ml: Array Bitvec Fault Fsim List Socet_util
