lib/atpg/fault.mli: Netlist Socet_netlist
