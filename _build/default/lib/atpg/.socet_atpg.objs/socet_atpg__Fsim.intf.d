lib/atpg/fsim.mli: Bitvec Fault Netlist Socet_netlist Socet_util
