lib/atpg/testpoint.mli: Netlist Scoap Socet_netlist
