lib/atpg/seqgen.mli: Netlist Socet_netlist
