lib/atpg/scoap.ml: Array Cell Fault List Netlist Socet_netlist
