lib/atpg/scoap.mli: Fault Netlist Socet_netlist
