lib/atpg/dalg.ml: Array Bitvec Cell Fault List Netlist Socet_netlist Socet_util
