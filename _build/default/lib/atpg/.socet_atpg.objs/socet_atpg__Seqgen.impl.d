lib/atpg/seqgen.ml: Fault Fsim List Netlist Rng Socet_netlist Socet_util
