lib/atpg/compact.mli: Bitvec Fault Netlist Socet_netlist Socet_util
