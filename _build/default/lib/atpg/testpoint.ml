open Socet_util
open Socet_netlist

type point =
  | Observe of Netlist.net
  | Control_one of Netlist.net
  | Control_zero of Netlist.net


let propose nl (s : Scoap.t) ~budget =
  let candidates = ref [] in
  for g = 0 to Netlist.gate_count nl - 1 do
    match Netlist.kind nl g with
    | Cell.Const0 | Cell.Const1 -> ()
    | _ ->
        let ctrl = max s.Scoap.cc0.(g) s.Scoap.cc1.(g) in
        let cost = min Scoap.infinity_cost (ctrl + s.Scoap.co.(g)) in
        candidates := (g, ctrl, s.Scoap.co.(g), cost) :: !candidates
  done;
  !candidates
  |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a)
  |> List.filteri (fun i _ -> i < budget)
  |> List.map (fun (g, ctrl, co, _) ->
         if co >= ctrl then Observe g
         else if s.Scoap.cc1.(g) >= s.Scoap.cc0.(g) then Control_one g
         else Control_zero g)

let apply nl points =
  List.iteri
    (fun k point ->
      match point with
      | Observe n -> Netlist.add_po nl (Printf.sprintf "tp_obs.%d" k) n
      | Control_one n | Control_zero n ->
          let ctl = Netlist.add_pi nl (Printf.sprintf "tp_ctl.%d" k) in
          let kind =
            match point with Control_one _ -> Cell.Or2 | _ -> Cell.And2
          in
          let ctl =
            match point with
            | Control_zero _ -> Netlist.add_gate nl Cell.Inv [| ctl |]
            | _ -> ctl
          in
          let gate = Netlist.add_gate nl kind [| n; ctl |] in
          (* Steer every reader of [n] through the test gate. *)
          List.iter
            (fun reader ->
              if reader <> gate then begin
                let fanin =
                  Array.map
                    (fun p -> if p = n then gate else p)
                    (Netlist.fanin nl reader)
                in
                Netlist.set_kind nl reader (Netlist.kind nl reader) fanin
              end)
            (Netlist.fanout nl n))
    points

let area_cost points =
  List.fold_left
    (fun acc -> function Observe _ -> acc + 6 | Control_one _ | Control_zero _ -> acc + 3)
    0 points

let coverage_gain ~mk ~budget ~patterns =
  let measure nl =
    let rng = Rng.create 31 in
    let vectors =
      List.init patterns (fun _ -> Rng.bitvec rng (Fsim.vector_length nl))
    in
    (* The fault universe of the *unmodified* netlist, whose net ids are a
       stable prefix of the modified one. *)
    vectors
  in
  let base = mk () in
  let faults = Fault.all base in
  let before =
    let det = Fsim.run_comb base ~vectors:(measure base) ~faults in
    100.0 *. float_of_int (List.length det) /. float_of_int (max 1 (List.length faults))
  in
  let improved = mk () in
  let scoap = Scoap.compute improved in
  let points = propose improved scoap ~budget in
  apply improved points;
  let after =
    let det = Fsim.run_comb improved ~vectors:(measure improved) ~faults in
    100.0 *. float_of_int (List.length det) /. float_of_int (max 1 (List.length faults))
  in
  (before, after)
