(* Invariant: sorted by [lo], pairwise disjoint and non-adjacent,
   every interval non-empty. *)
type t = (int * int) list

let empty = []

let is_empty s = s = []

let add s ~lo ~hi =
  if hi < lo then invalid_arg "Interval_set.add";
  if hi = lo then s
  else
    let rec insert = function
      | [] -> [ (lo, hi) ]
      | (a, b) :: rest ->
          if hi < a then (lo, hi) :: (a, b) :: rest
          else if b < lo then (a, b) :: insert rest
          else
            (* Overlap or adjacency: merge and keep absorbing. *)
            let rec absorb lo hi = function
              | (a, b) :: rest when a <= hi ->
                  absorb (min lo a) (max hi b) rest
              | rest -> (lo, hi) :: rest
            in
            absorb (min lo a) (max hi b) rest
    in
    insert s

let mem s t = List.exists (fun (a, b) -> a <= t && t < b) s

let overlaps s ~lo ~hi =
  hi > lo && List.exists (fun (a, b) -> a < hi && lo < b) s

let first_fit s ~earliest ~len =
  if len = 0 then earliest
  else
    let rec search t = function
      | [] -> t
      | (a, b) :: rest ->
          if b <= t then search t rest
          else if t + len <= a then t
          else search b rest
    in
    search earliest s

let intervals s = s

let total_reserved s = List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 s

let pp fmt s =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
    (fun fmt (a, b) -> Format.fprintf fmt "[%d,%d)" a b)
    fmt s
