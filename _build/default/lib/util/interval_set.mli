(** Sets of disjoint half-open integer intervals [\[a, b)].

    The chip-level test scheduler reserves core-connectivity-graph edges for
    specific clock-cycle windows (paper, Sec. 5.1: "We mark this path and
    reserve the edges for the cycles in which they will be used").  An
    [Interval_set.t] is the reservation calendar of one edge. *)

type t

val empty : t

val is_empty : t -> bool

val add : t -> lo:int -> hi:int -> t
(** [add s ~lo ~hi] reserves [\[lo, hi)].  Overlapping or adjacent intervals
    are merged.  @raise Invalid_argument if [hi < lo]. *)

val mem : t -> int -> bool
(** Is the given cycle reserved? *)

val overlaps : t -> lo:int -> hi:int -> bool
(** Does [\[lo, hi)] intersect any reserved interval? *)

val first_fit : t -> earliest:int -> len:int -> int
(** [first_fit s ~earliest ~len] is the smallest [t >= earliest] such that
    [\[t, t+len)] is completely free. *)

val intervals : t -> (int * int) list
(** Reserved intervals in increasing order, as [(lo, hi)] pairs. *)

val total_reserved : t -> int
(** Sum of interval lengths. *)

val pp : Format.formatter -> t -> unit
