type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bitvec t n =
  let v = Bitvec.create n in
  for i = 0 to n - 1 do
    Bitvec.set v i (bool t)
  done;
  v

let split t = { state = int64 t }
