lib/util/ascii_table.ml: Array Buffer List String
