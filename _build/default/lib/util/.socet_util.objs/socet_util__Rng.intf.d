lib/util/rng.mli: Bitvec
