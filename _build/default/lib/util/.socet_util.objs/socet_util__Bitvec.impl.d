lib/util/bitvec.ml: Bytes Char Format List String Sys
