lib/util/interval_set.ml: Format List
