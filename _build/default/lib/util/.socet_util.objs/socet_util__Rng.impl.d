lib/util/rng.ml: Bitvec Int64
