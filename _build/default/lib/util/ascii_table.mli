(** Aligned ASCII tables for the benchmark harness and CLI reports.

    Every figure/table of the paper is re-printed through this module so the
    bench output is directly comparable with the published tables. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] draws a boxed table.  [aligns] defaults to
    left-aligning the first column and right-aligning the rest. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)
