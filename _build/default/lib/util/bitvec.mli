(** Fixed-length mutable bit vectors.

    Used throughout the test-generation substrate to represent test vectors,
    scan-chain contents and fault-detection masks.  Bits are indexed from 0
    (least significant). *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits.  [n >= 0]. *)

val length : t -> int

val get : t -> int -> bool
(** [get v i] is bit [i].  @raise Invalid_argument if out of range. *)

val set : t -> int -> bool -> unit

val copy : t -> t

val equal : t -> t -> bool

val fill : t -> bool -> unit

val popcount : t -> int
(** Number of set bits. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
(** Bitwise operations; operands must have equal length. *)

val lognot : t -> t

val is_zero : t -> bool

val of_string : string -> t
(** [of_string "1011"] has bit 0 = true (rightmost character is bit 0),
    bit 1 = true, bit 2 = false, bit 3 = true.
    @raise Invalid_argument on characters other than '0'/'1'. *)

val to_string : t -> string
(** Inverse of {!of_string}: most significant bit first. *)

val of_int : width:int -> int -> t
(** [of_int ~width k] is the low [width] bits of [k]. *)

val to_int : t -> int
(** @raise Invalid_argument if length exceeds [Sys.int_size - 1]. *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

val sub : t -> pos:int -> len:int -> t

val concat : t list -> t
(** [concat [a; b]] places [a] in the low bits. *)

val iteri : (int -> bool -> unit) -> t -> unit

val pp : Format.formatter -> t -> unit
