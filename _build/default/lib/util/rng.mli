(** Deterministic pseudo-random number generator (splitmix64).

    All experiments in this repository are reproducible: every random choice
    (random test patterns, random fault sampling) flows through an explicit
    [Rng.t] seeded by the caller. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound > 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bitvec : t -> int -> Bitvec.t
(** [bitvec t n] is a uniformly random [n]-bit vector. *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)
