type t = { len : int; data : Bytes.t }

let create len =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; data = Bytes.make ((len + 7) / 8) '\000' }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of range"

let get v i =
  check v i;
  Char.code (Bytes.get v.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set v i b =
  check v i;
  let byte = Char.code (Bytes.get v.data (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set v.data (i lsr 3) (Char.chr (byte land 0xff))

let copy v = { len = v.len; data = Bytes.copy v.data }

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let fill v b =
  Bytes.fill v.data 0 (Bytes.length v.data) (if b then '\xff' else '\000');
  (* Clear the unused high bits of the last byte so [equal] stays valid. *)
  if b && v.len land 7 <> 0 then begin
    let last = Bytes.length v.data - 1 in
    let keep = (1 lsl (v.len land 7)) - 1 in
    Bytes.set v.data last (Char.chr (Char.code (Bytes.get v.data last) land keep))
  end

let popcount v =
  let n = ref 0 in
  for i = 0 to Bytes.length v.data - 1 do
    let b = ref (Char.code (Bytes.get v.data i)) in
    while !b <> 0 do
      n := !n + (!b land 1);
      b := !b lsr 1
    done
  done;
  !n

let map2 f a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch";
  let r = create a.len in
  for i = 0 to Bytes.length a.data - 1 do
    let x = f (Char.code (Bytes.get a.data i)) (Char.code (Bytes.get b.data i)) in
    Bytes.set r.data i (Char.chr (x land 0xff))
  done;
  r

let logand = map2 ( land )
let logor = map2 ( lor )
let logxor = map2 ( lxor )

let lognot a =
  let r = create a.len in
  for i = 0 to a.len - 1 do
    set r i (not (get a i))
  done;
  r

let is_zero v =
  let rec loop i = i >= Bytes.length v.data || (Bytes.get v.data i = '\000' && loop (i + 1)) in
  loop 0

let of_string s =
  let n = String.length s in
  let v = create n in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set v (n - 1 - i) true
      | _ -> invalid_arg "Bitvec.of_string")
    s;
  v

let to_string v =
  String.init v.len (fun i -> if get v (v.len - 1 - i) then '1' else '0')

let of_int ~width k =
  let v = create width in
  for i = 0 to width - 1 do
    set v i ((k lsr i) land 1 = 1)
  done;
  v

let to_int v =
  if v.len > Sys.int_size - 1 then invalid_arg "Bitvec.to_int: too wide";
  let r = ref 0 in
  for i = v.len - 1 downto 0 do
    r := (!r lsl 1) lor (if get v i then 1 else 0)
  done;
  !r

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 || src_pos < 0 || dst_pos < 0
     || src_pos + len > src.len || dst_pos + len > dst.len
  then invalid_arg "Bitvec.blit";
  for i = 0 to len - 1 do
    set dst (dst_pos + i) (get src (src_pos + i))
  done

let sub v ~pos ~len =
  let r = create len in
  blit ~src:v ~src_pos:pos ~dst:r ~dst_pos:0 ~len;
  r

let concat vs =
  let total = List.fold_left (fun acc v -> acc + v.len) 0 vs in
  let r = create total in
  let _ =
    List.fold_left
      (fun off v ->
        blit ~src:v ~src_pos:0 ~dst:r ~dst_pos:off ~len:v.len;
        off + v.len)
      0 vs
  in
  r

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (get v i)
  done

let pp fmt v = Format.pp_print_string fmt (to_string v)
