type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | _ -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        if i < ncols then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf (pad (List.nth aligns i) widths.(i) cell);
          Buffer.add_string buf " |"
        end)
      row;
    (* Fill short rows with empty cells. *)
    let n = List.length row in
    for i = n to ncols - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad Left widths.(i) "");
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  sep ();
  line header;
  sep ();
  List.iter line rows;
  sep ();
  Buffer.contents buf

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)
