(* Seeded random-core / random-SOC generators (see gen.mli).  The default
   parameter path must keep consuming the RNG stream exactly as the
   original test/gen.ml did — the fuzz suites replay historical seeds. *)

open Socet_util
open Socet_rtl
open Rtl_types

let w = 4 (* uniform register/port width keeps slice arithmetic honest *)

type profile = Small | Medium | Large

(* A random core: a few registers fed from earlier registers or inputs
   (guaranteeing forward progress), every register reaching an output
   either directly or via the chain, plus some functional-unit transfers
   and an occasional sliced feed. *)
let random_core ?(profile = Medium) rng =
  let n_regs =
    match profile with
    | Small -> 2 + Rng.int rng 3
    | Medium -> 2 + Rng.int rng 6
    | Large -> 5 + Rng.int rng 10
  in
  let n_ins =
    match profile with Large -> 2 + Rng.int rng 2 | _ -> 1 + Rng.int rng 2
  in
  let n_outs =
    match profile with Large -> 2 + Rng.int rng 2 | _ -> 1 + Rng.int rng 2
  in
  let c = Rtl_core.create (Printf.sprintf "fuzz%d" (Rng.int rng 100000)) in
  for i = 0 to n_ins - 1 do
    Rtl_core.add_input c (Printf.sprintf "I%d" i) w
  done;
  for i = 0 to n_outs - 1 do
    Rtl_core.add_output c (Printf.sprintf "O%d" i) w
  done;
  for i = 0 to n_regs - 1 do
    Rtl_core.add_reg c (Printf.sprintf "R%d" i) w
  done;
  let t = Rtl_core.add_transfer c in
  (* Register feeds: from an input or a strictly earlier register. *)
  for i = 0 to n_regs - 1 do
    let src =
      if i = 0 || Rng.bool rng then Rtl_core.port c (Printf.sprintf "I%d" (Rng.int rng n_ins))
      else Rtl_core.reg c (Printf.sprintf "R%d" (Rng.int rng i))
    in
    let dst = Rtl_core.reg c (Printf.sprintf "R%d" i) in
    if Rng.int rng 4 = 0 && i > 0 then begin
      (* Sliced feed: the two halves arrive from different places. *)
      let src2 =
        if Rng.bool rng then Rtl_core.port_bits c (Printf.sprintf "I%d" (Rng.int rng n_ins)) 0 1
        else Rtl_core.reg_bits c (Printf.sprintf "R%d" (Rng.int rng i)) 0 1
      in
      let hi =
        match src with
        | { base = Eport n; _ } -> Rtl_core.port_bits c n 2 3
        | { base = Ereg n; _ } -> Rtl_core.reg_bits c n 2 3
      in
      t ~src:hi ~dst:(Rtl_core.reg_bits c (Printf.sprintf "R%d" i) 2 3) ();
      t ~src:src2 ~dst:(Rtl_core.reg_bits c (Printf.sprintf "R%d" i) 0 1) ()
    end
    else t ~src ~dst ();
    (* Occasional functional unit for gate-level variety. *)
    if Rng.int rng 3 = 0 then
      t
        ~kind:(Logic (Fxor (Rtl_core.reg c (Printf.sprintf "R%d" (Rng.int rng (i + 1))))))
        ~src:dst ~dst ()
  done;
  (* Outputs: each from a random register (direct). *)
  for o = 0 to n_outs - 1 do
    t ~kind:Direct
      ~src:(Rtl_core.reg c (Printf.sprintf "R%d" (Rng.int rng n_regs)))
      ~dst:(Rtl_core.port c (Printf.sprintf "O%d" o))
      ()
  done;
  Rtl_core.validate c;
  c

(* A random SOC: a chain of random cores where core i's input I0 is
   driven by core i-1's O0 rather than a chip pin, so justifying the
   deeper cores must route through the earlier cores' transparency (or
   fall back to a forced test mux) — the situations the Select memo, the
   schedule replay and the TAM packer have to get right.  Remaining
   inputs get dedicated PIs, remaining outputs dedicated POs. *)
let random_soc ?cores ?(hetero = false) rng =
  let module Soc = Socet_core.Soc in
  let n = match cores with Some k -> max 1 k | None -> 2 + Rng.int rng 2 in
  let insts =
    List.init n (fun i ->
        let profile =
          if hetero then
            match Rng.int rng 3 with 0 -> Small | 1 -> Medium | _ -> Large
          else Medium
        in
        Soc.instantiate (Printf.sprintf "C%d" i) (random_core ~profile rng))
  in
  let pis = ref [] and pos = ref [] and conns = ref [] in
  List.iteri
    (fun i ci ->
      let name = ci.Soc.ci_name in
      List.iter
        (fun (p : Rtl_core.port) ->
          match p.Rtl_core.p_dir with
          | `In ->
              if i > 0 && p.Rtl_core.p_name = "I0" then
                conns :=
                  Soc.
                    {
                      c_from = Cport (Printf.sprintf "C%d" (i - 1), "O0");
                      c_to = Cport (name, "I0");
                    }
                  :: !conns
              else begin
                let pi = Printf.sprintf "%s_%s" name p.Rtl_core.p_name in
                pis := (pi, p.Rtl_core.p_width) :: !pis;
                conns :=
                  Soc.{ c_from = Pi pi; c_to = Cport (name, p.Rtl_core.p_name) }
                  :: !conns
              end
          | `Out ->
              if i < n - 1 && p.Rtl_core.p_name = "O0" then ()
              else begin
                let po = Printf.sprintf "%s_%s" name p.Rtl_core.p_name in
                pos := (po, p.Rtl_core.p_width) :: !pos;
                conns :=
                  Soc.{ c_from = Cport (name, p.Rtl_core.p_name); c_to = Po po }
                  :: !conns
              end)
        (Rtl_core.ports ci.Soc.ci_core))
    insts;
  (* Memory blocks only exist in the heterogeneous mix, so the default
     path's RNG stream is untouched. *)
  let memories =
    if not hetero then []
    else
      List.init (Rng.int rng 3) (fun m ->
          let words = 64 lsl Rng.int rng 3 and width = 8 in
          {
            Soc.m_name = Printf.sprintf "MEM%d" m;
            m_bits = words * width;
            m_bist_area = Socet_bist.March.bist_area ~words ~width;
          })
  in
  Soc.make
    ~name:(Printf.sprintf "soc%d" (Rng.int rng 100000))
    ~pis:(List.rev !pis) ~pos:(List.rev !pos) ~cores:insts
    ~connections:(List.rev !conns) ~memories ()
