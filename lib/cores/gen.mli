(** Seeded random-core / random-SOC generators — the fleet workload.

    Promoted out of [test/gen.ml] so the wrapper/TAM fleet driver
    ({!Socet_tam.Fleet}), the bench harness and the [socet gen]
    subcommand share one generator with the fuzz suites.  Everything is
    driven by an explicit {!Socet_util.Rng.t}: the same seed always
    yields the same SOC, on any machine, at any domain count.

    The default parameters ([?profile], [?cores], [?hetero] all omitted)
    consume the RNG stream {e exactly} as the original [test/gen.ml]
    did, so the fuzz/parallel/select suites reproduce their historical
    cases unchanged; [test/gen.ml] is now a thin re-export. *)

open Socet_util
open Socet_rtl

val w : int
(** Uniform register/port width (keeps slice arithmetic honest). *)

type profile =
  | Small   (** 2-4 registers — shallow scan, cheap ATPG *)
  | Medium  (** 2-7 registers — the historical [test/gen.ml] shape *)
  | Large   (** 5-14 registers, wider IO — deep scan chains *)

val random_core : ?profile:profile -> Rng.t -> Rtl_core.t
(** A random logic core: registers fed from earlier registers or inputs
    (guaranteeing forward progress), every register reaching an output,
    some functional-unit transfers and occasional sliced feeds.
    [profile] (default [Medium]) sets the register/IO count ranges —
    the scan-depth spread of a heterogeneous fleet. *)

val random_soc : ?cores:int -> ?hetero:bool -> Rng.t -> Socet_core.Soc.t
(** A random SOC: a chain of random cores where core [i]'s input [I0] is
    driven by core [i-1]'s [O0] rather than a chip pin, so justifying
    the deeper cores must route through the earlier cores' transparency
    (or fall back to a forced test mux).  Remaining inputs get dedicated
    PIs, remaining outputs dedicated POs.

    [cores] fixes the chain length (default: 2-3, drawn from the RNG as
    before).  With [hetero] (default false) each core additionally draws
    a size {!profile} and the SOC gains 0-2 BIST-tested memory blocks —
    the logic/memory, small/large mix the fleet workload exercises. *)
