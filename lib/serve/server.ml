(* Unix-domain-socket accept loop over the job queue.

   Thread shape: one accept thread (select over the listening socket and
   a self-pipe), one handler thread per connection, one queue executor
   per worker (see queue.ml).  Graceful drain: a shutdown request
   (SIGTERM/SIGINT via [install_signal_handlers], or [shutdown]) writes
   one byte to the self-pipe; the accept thread stops accepting, drains
   the queue (in-flight jobs finish and their responses are written),
   retires the worker fleet, closes every connection, flushes the sinks
   and signals [wait].

   With [workers = 0] (the default) jobs run in-process through
   [Dispatch.run], exactly the pre-fleet behaviour.  With [workers > 0]
   each job is shipped to a forked worker via the [Supervisor]; a
   breaker trip (crash-looping fleet) flips the exit code to 5 and
   triggers the same graceful drain. *)

module Err = Socet_util.Error
module Obs = Socet_obs.Obs
module Sink = Socet_obs.Sink

let c_conns = Obs.counter ~scope:"serve" "connections.accepted"
let c_requests = Obs.counter ~scope:"serve" "requests.received"
let c_bad_frames = Obs.counter ~scope:"serve" "requests.bad_frames"

(* Chunk size for streaming a response body; small enough to interleave
   on a slow reader, big enough that framing overhead is noise. *)
let chunk_bytes = 32768

type t = {
  s_socket : string;
  s_listen : Unix.file_descr;
  s_stop_r : Unix.file_descr;
  s_stop_w : Unix.file_descr;
  s_queue : Queue.t;
  s_access : Sink.t option;
  s_cache : string option;
  s_start_us : float;
  s_mu : Mutex.t;
  s_cv : Condition.t;
  mutable s_sup : Supervisor.t option;
  mutable s_conns : Unix.file_descr list;
  mutable s_handlers : Thread.t list;
  mutable s_stopping : bool;
  mutable s_stopped : bool;
  mutable s_exit_code : int;
  mutable s_accept : Thread.t option;
}

let now_us () = Unix.gettimeofday () *. 1e6

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let ignoring_unix_errors f = try f () with Unix.Unix_error _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Per-connection protocol                                             *)
(* ------------------------------------------------------------------ *)

let send_error fd ~id e = Wire.write_frame fd (Wire.error ~id (Proto.encode_error e))

let send_outcome fd ~id (o : Dispatch.outcome) =
  let len = String.length o.Dispatch.o_stdout in
  let rec chunks seq pos =
    if pos < len then begin
      let n = min chunk_bytes (len - pos) in
      Wire.write_frame fd (Wire.chunk ~id ~seq (String.sub o.Dispatch.o_stdout pos n));
      chunks (seq + 1) (pos + n)
    end
  in
  chunks 0 0;
  Wire.write_frame fd
    (Wire.response ~id
       (Proto.encode_status
          { Proto.st_code = o.Dispatch.o_code; st_stderr = o.Dispatch.o_stderr }))

(* The [Health] probe never touches the queue: a health check must
   answer even when the queue is full or draining — that is the whole
   point of a readiness probe.  The report's stdout is the JSON encoding
   (machine-readable; [socet health] pretty-prints client-side). *)
let health_outcome srv =
  let workers, breaker, retries =
    match srv.s_sup with
    | Some sup ->
        let w, b = Supervisor.health sup in
        (w, b, Supervisor.retries_total sup)
    | None -> ([], false, 0)
  in
  let report =
    {
      Proto.hl_uptime_ms = int_of_float ((now_us () -. srv.s_start_us) /. 1000.0);
      hl_queue_depth = Queue.depth srv.s_queue;
      hl_pending = Queue.pending srv.s_queue;
      hl_workers = workers;
      hl_breaker_open = breaker;
      hl_retries = retries;
    }
  in
  {
    Dispatch.o_stdout = Proto.encode_health report ^ "\n";
    o_stderr = "";
    o_code = (if breaker then 5 else 0);
  }

let handle_request srv fd ~id payload =
  Obs.incr c_requests;
  match Proto.decode payload with
  | Error msg ->
      send_error fd ~id (Err.make ~engine:"serve" (Printf.sprintf "bad request: %s" msg))
  | Ok { Proto.rq_body = Proto.Health; _ } ->
      send_outcome fd ~id (health_outcome srv)
  | Ok req -> (
      (* Server-side default: a request that names no cache directory
         inherits the server's ([socet serve --cache DIR]).  Injected
         into the request itself, so it rides the existing wire format
         to forked workers; a request's own cache field wins. *)
      let req =
        match (req.Proto.rq_cache, srv.s_cache) with
        | None, Some dir -> { req with Proto.rq_cache = Some dir }
        | _ -> req
      in
      let deadline_us =
        Option.map
          (fun ms -> now_us () +. (float_of_int ms *. 1000.0))
          req.Proto.rq_deadline_ms
      in
      let run =
        match srv.s_sup with
        | Some sup -> fun () -> Supervisor.exec sup req
        | None -> fun () -> Dispatch.run req
      in
      let submitted =
        Queue.submit srv.s_queue ~label:(Proto.summary req) ?deadline_us run
      in
      match submitted with
      | Error e -> send_error fd ~id e
      | Ok ticket -> (
          match Queue.await ticket with
          | Error e -> send_error fd ~id e
          | Ok outcome -> send_outcome fd ~id outcome))

let handler srv fd () =
  let rec loop () =
    match Wire.read_frame fd with
    | Error `Eof -> ()
    | Error (`Corrupt msg) ->
        Obs.incr c_bad_frames;
        ignoring_unix_errors (fun () ->
            send_error fd ~id:0
              (Err.make ~engine:"serve" (Printf.sprintf "corrupt frame: %s" msg)))
    | Ok { Wire.f_kind = Wire.Request; f_id = id; f_payload = payload; _ } ->
        handle_request srv fd ~id payload;
        loop ()
    | Ok fr ->
        Obs.incr c_bad_frames;
        ignoring_unix_errors (fun () ->
            send_error fd ~id:fr.Wire.f_id
              (Err.make ~engine:"serve" "unexpected frame kind from client"))
  in
  (* The fd may be closed under us during drain; any I/O failure ends the
     connection, never the server. *)
  ignoring_unix_errors loop;
  locked srv.s_mu (fun () ->
      srv.s_conns <- List.filter (fun c -> c != fd) srv.s_conns);
  ignoring_unix_errors (fun () -> Unix.close fd)

(* ------------------------------------------------------------------ *)
(* Access log                                                          *)
(* ------------------------------------------------------------------ *)

(* One JSONL line per settled job, through the obs file sink: the span
   event's name is the request summary, its category encodes the outcome,
   timestamps are relative to server start (like engine spans). *)
let access_event srv (ji : Queue.job_info) =
  {
    Sink.ev_name = Printf.sprintf "%s code=%d" ji.Queue.ji_label ji.Queue.ji_code;
    ev_cat = (if ji.Queue.ji_ok then "serve.job" else "serve.job.failed");
    ev_start_us = ji.Queue.ji_enqueued_us -. srv.s_start_us;
    ev_dur_us = ji.Queue.ji_wait_us +. ji.Queue.ji_run_us;
    ev_depth = 0;
  }

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let accept_loop srv () =
  let rec loop () =
    (* Finite timeout, not -1: returning to OCaml periodically is what
       lets a pending SIGTERM/SIGINT handler actually run when every
       other thread is parked in a C condition wait. *)
    match Unix.select [ srv.s_listen; srv.s_stop_r ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | [], _, _ -> loop ()
    | readable, _, _ ->
        if List.mem srv.s_stop_r readable then () (* drain requested *)
        else begin
          (match Unix.accept srv.s_listen with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              Obs.incr c_conns;
              (* A spawned worker must not hold this connection open past
                 the client's EOF. *)
              ignoring_unix_errors (fun () -> Unix.set_close_on_exec fd);
              locked srv.s_mu (fun () ->
                  srv.s_conns <- fd :: srv.s_conns;
                  srv.s_handlers <- Thread.create (handler srv fd) () :: srv.s_handlers));
          loop ()
        end
  in
  loop ();
  (* Drain: stop accepting, finish in-flight jobs, then unblock any
     handler still waiting for a next request and join them all. *)
  ignoring_unix_errors (fun () -> Unix.close srv.s_listen);
  ignoring_unix_errors (fun () -> Sys.remove srv.s_socket);
  Queue.drain srv.s_queue;
  (* After the queue: no exec can be in flight once the executors join. *)
  Option.iter Supervisor.stop srv.s_sup;
  let conns, handlers =
    locked srv.s_mu (fun () -> (srv.s_conns, srv.s_handlers))
  in
  List.iter (fun fd -> ignoring_unix_errors (fun () -> Unix.shutdown fd Unix.SHUTDOWN_RECEIVE)) conns;
  List.iter Thread.join handlers;
  Option.iter (fun sink -> sink.Sink.flush ()) srv.s_access;
  Obs.flush ();
  locked srv.s_mu (fun () ->
      srv.s_stopped <- true;
      Condition.broadcast srv.s_cv)

let shutdown srv =
  let first =
    locked srv.s_mu (fun () ->
        if srv.s_stopping then false
        else begin
          srv.s_stopping <- true;
          true
        end)
  in
  if first then
    ignoring_unix_errors (fun () ->
        ignore (Unix.write srv.s_stop_w (Bytes.make 1 '!') 0 1))

let start ?(queue_depth = 64) ?access_log ?(workers = 0) ?max_retries
    ?stall_timeout_ms ?cache ~socket () =
  if workers < 0 then invalid_arg "Serve.Server.start: workers must be >= 0";
  (* A dead client mid-write must surface as EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists socket then Sys.remove socket;
  (* Workers are fork+exec'd: close-on-exec everywhere keeps a fresh
     worker image from holding the listening socket (which would keep
     the path accepting after the parent drains) or the self-pipe. *)
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with e ->
     ignoring_unix_errors (fun () -> Unix.close listen_fd);
     raise e);
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let access = Option.map Sink.file access_log in
  let srv_ref = ref None in
  let on_done ji =
    match !srv_ref with
    | Some srv -> Option.iter (fun s -> s.Sink.emit (access_event srv ji)) srv.s_access
    | None -> ()
  in
  let srv =
    {
      s_socket = socket;
      s_listen = listen_fd;
      s_stop_r = stop_r;
      s_stop_w = stop_w;
      s_queue = Queue.create ~depth:queue_depth ~executors:(max 1 workers) ~on_done ();
      s_access = access;
      s_cache = cache;
      s_start_us = now_us ();
      s_mu = Mutex.create ();
      s_cv = Condition.create ();
      s_sup = None;
      s_conns = [];
      s_handlers = [];
      s_stopping = false;
      s_stopped = false;
      s_exit_code = 0;
      s_accept = None;
    }
  in
  srv_ref := Some srv;
  if workers > 0 then begin
    (* Breaker trip: crash-looping fleet.  Fail loud — drain gracefully
       (in-flight jobs settle with the breaker-open error) and exit 5,
       the documented Overloaded code. *)
    let on_trip () =
      locked srv.s_mu (fun () -> srv.s_exit_code <- 5);
      shutdown srv
    in
    let config =
      {
        Supervisor.default_config with
        Supervisor.workers;
        max_retries =
          Option.value ~default:Supervisor.default_config.Supervisor.max_retries
            max_retries;
        stall_timeout_ms =
          Option.value
            ~default:Supervisor.default_config.Supervisor.stall_timeout_ms
            stall_timeout_ms;
      }
    in
    srv.s_sup <- Some (Supervisor.create ~config ~on_trip ())
  end;
  srv.s_accept <- Some (Thread.create (accept_loop srv) ());
  srv

let wait srv =
  (* Poll rather than park in [Condition.wait]: the runtime only executes
     pending signal handlers on a thread that is running OCaml code, and
     [wait] is called from the main thread — exactly the one SIGTERM's
     handler needs.  [Thread.delay] yields between checks. *)
  while not (locked srv.s_mu (fun () -> srv.s_stopped)) do
    Thread.delay 0.05
  done;
  Option.iter Thread.join srv.s_accept;
  ignoring_unix_errors (fun () -> Unix.close srv.s_stop_r);
  ignoring_unix_errors (fun () -> Unix.close srv.s_stop_w);
  locked srv.s_mu (fun () -> srv.s_exit_code)

let install_signal_handlers srv =
  let handle _ = shutdown srv in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handle) with Invalid_argument _ -> ())
    [ Sys.sigterm; Sys.sigint ]
