(* Supervision layer over the worker fleet.

   Invariant the whole PR hangs on: an admitted job either returns its
   byte-exact outcome or a structured error — a worker segfaulting,
   hanging past the watchdog, or being chaos-killed mid-job never loses
   the job and never takes the server down.  The argument:

   - jobs are deterministic and idempotent (Dispatch.run is a pure
     function of the request, per DESIGN.md §11), so re-running a lost
     job on a fresh worker returns byte-identical bytes;
   - each executor thread holds its job until it settles, so a loss is
     retried in place (bounded by [max_retries], then a structured
     WorkerLost error);
   - worker death is detected by EOF on the job pipe plus a waitpid
     reap, worker hang by a per-job deadline watchdog (job deadline +
     grace, or [stall_timeout_ms] for undeadlined jobs) that SIGKILLs;
   - respawns back off exponentially with deterministic jitter, and a
     circuit breaker (>= [breaker_crashes] crashes in
     [breaker_window_ms]) stops respawning and asks the server to drain
     and exit 5 — a crash-looping fleet fails fast and loud instead of
     burning CPU forever.

   Chaos injection is parent-side on purpose: the supervisor itself
   SIGKILLs ("serve.worker.kill") or SIGSTOPs ("serve.worker.stall") the
   worker it just dispatched to, so injected faults are deterministic
   (one chaos RNG stream, one trips table) and exactly as visible to the
   recovery machinery as real ones. *)

module Err = Socet_util.Error
module Chaos = Socet_util.Chaos
module Rng = Socet_util.Rng
module Obs = Socet_obs.Obs

let c_crashes = Obs.counter ~scope:"serve" "worker.crashes"
let c_respawns = Obs.counter ~scope:"serve" "worker.respawns"
let c_retries = Obs.counter ~scope:"serve" "job.retries"

type config = {
  workers : int;
  max_retries : int;
  stall_timeout_ms : int;
  grace_ms : int;
  backoff_base_ms : int;
  backoff_max_ms : int;
  breaker_window_ms : int;
  breaker_crashes : int;
}

let default_config =
  {
    workers = 4;
    max_retries = 2;
    stall_timeout_ms = 30_000;
    grace_ms = 2_000;
    backoff_base_ms = 50;
    backoff_max_ms = 2_000;
    breaker_window_ms = 10_000;
    breaker_crashes = 8;
  }

type slot_state =
  | Idle of Worker.t
  | Busy of Worker.t
  | Respawning of float  (* absolute due time, us *)
  | Stopped

type slot = {
  sl_id : int;
  mutable sl_state : slot_state;
  mutable sl_jobs : int;  (* completed, across incarnations *)
  mutable sl_crashes : int;  (* total, across incarnations *)
  mutable sl_streak : int;  (* consecutive crashes, for backoff *)
}

type t = {
  sp_mu : Mutex.t;
  sp_cv : Condition.t;  (* an idle worker appeared, or hope is gone *)
  sp_slots : slot array;
  sp_cfg : config;
  sp_rng : Rng.t;  (* backoff jitter; guarded by sp_mu *)
  sp_pool_share : int;
  sp_on_trip : unit -> unit;
  (* Intrinsic retry count for [health] — the obs counter only moves
     when observability is armed, a health probe must not depend on it. *)
  sp_retries : int Atomic.t;
  mutable sp_crash_us : float list;  (* recent, pruned to the window *)
  mutable sp_breaker_open : bool;
  mutable sp_stopping : bool;
  mutable sp_monitor : Thread.t option;
}

let now_us () = Unix.gettimeofday () *. 1e6

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* ------------------------------------------------------------------ *)
(* Spawning and crash bookkeeping                                      *)
(* ------------------------------------------------------------------ *)

let spawn_worker sup = Worker.spawn ~pool_share:sup.sp_pool_share ()

(* Jittered exponential backoff for the [streak]-th consecutive crash:
   base * 2^(streak-1) + uniform(0, base), capped. *)
let backoff_us sup streak =
  let base = float_of_int sup.sp_cfg.backoff_base_ms in
  let exp = base *. (2.0 ** float_of_int (max 0 (streak - 1))) in
  let jitter = Rng.float sup.sp_rng *. base in
  1000.0 *. Float.min (exp +. jitter) (float_of_int sup.sp_cfg.backoff_max_ms)

(* Under [sp_mu].  Records one crash, schedules the respawn, trips the
   breaker when the window fills.  Returns the [on_trip] callback to run
   outside the lock (it re-enters the server). *)
let note_crash sup slot =
  Obs.incr c_crashes;
  slot.sl_crashes <- slot.sl_crashes + 1;
  slot.sl_streak <- slot.sl_streak + 1;
  let now = now_us () in
  let horizon = now -. (float_of_int sup.sp_cfg.breaker_window_ms *. 1000.0) in
  sup.sp_crash_us <- now :: List.filter (fun t -> t >= horizon) sup.sp_crash_us;
  if
    (not sup.sp_breaker_open)
    && List.length sup.sp_crash_us >= sup.sp_cfg.breaker_crashes
  then begin
    sup.sp_breaker_open <- true;
    (* No more respawns, ever: pending respawns die with the breaker. *)
    Array.iter
      (fun s ->
        match s.sl_state with Respawning _ -> s.sl_state <- Stopped | _ -> ())
      sup.sp_slots;
    slot.sl_state <- Stopped;
    Condition.broadcast sup.sp_cv;
    Some sup.sp_on_trip
  end
  else begin
    slot.sl_state <- Respawning (now +. backoff_us sup slot.sl_streak);
    None
  end

(* The job pipe said the worker is gone (EOF / corrupt frame / EPIPE):
   reap it and schedule the respawn. *)
let worker_lost sup slot w =
  Worker.forget w;
  let trip = locked sup.sp_mu (fun () -> note_crash sup slot) in
  Option.iter (fun f -> f ()) trip

(* The watchdog fired: the worker is wedged (or chaos-frozen).  SIGKILL
   first so the reap cannot hang on a live process. *)
let worker_hung sup slot w =
  Worker.kill w;
  let trip = locked sup.sp_mu (fun () -> note_crash sup slot) in
  Option.iter (fun f -> f ()) trip

(* ------------------------------------------------------------------ *)
(* The monitor thread: respawns due slots                              *)
(* ------------------------------------------------------------------ *)

(* OCaml's [Condition] has no timed wait, so the monitor polls.  20ms
   granularity is far below the backoff base and invisible next to an
   engine job; the thread parks on [delay], not a spin. *)
let monitor sup () =
  let rec loop () =
    let stop = locked sup.sp_mu (fun () -> sup.sp_stopping) in
    if not stop then begin
      (* Idle deaths: a worker killed *between* jobs still shows up in
         waitpid.  Detect it here — transitioning the slot under the
         same lock as the probe, so no executor can acquire the corpse
         and double-count the crash — and the slot respawns without
         waiting for the next job to trip over it (and without a stale
         "idle" line in the health report).  No retry budget involved:
         no job was aboard. *)
      let lost =
        locked sup.sp_mu (fun () ->
            Array.to_list sup.sp_slots
            |> List.filter_map (fun s ->
                   match s.sl_state with
                   | Idle w when Worker.dead w -> Some (w, note_crash sup s)
                   | _ -> None))
      in
      List.iter
        (fun (w, trip) ->
          Worker.forget w;
          Option.iter (fun f -> f ()) trip)
        lost;
      let due =
        locked sup.sp_mu (fun () ->
            if sup.sp_breaker_open then []
            else
              Array.to_list sup.sp_slots
              |> List.filter (fun s ->
                     match s.sl_state with
                     | Respawning t -> t <= now_us ()
                     | _ -> false))
      in
      List.iter
        (fun slot ->
          (* Fork outside the lock: spawn touches only this thread plus
             the slot snapshot, and a slow fork must not block health
             probes or idle-worker handoff. *)
          let w = spawn_worker sup in
          Obs.incr c_respawns;
          let adopted =
            locked sup.sp_mu (fun () ->
                match slot.sl_state with
                | Respawning _ ->
                    slot.sl_state <- Idle w;
                    Condition.broadcast sup.sp_cv;
                    true
                | _ -> false)
          in
          (* Lost the race with stop/breaker: retire the fresh worker
             again (reap outside the lock — it can take a beat). *)
          if not adopted then Worker.stop w)
        due;
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) ?(on_trip = fun () -> ()) () =
  if config.workers < 1 then invalid_arg "Supervisor.create: workers must be >= 1";
  let share = max 1 (Socet_util.Pool.size () / config.workers) in
  let sup =
    {
      sp_mu = Mutex.create ();
      sp_cv = Condition.create ();
      sp_slots =
        Array.init config.workers (fun i ->
            { sl_id = i; sl_state = Stopped; sl_jobs = 0; sl_crashes = 0; sl_streak = 0 });
      sp_cfg = config;
      sp_rng = Rng.create 0x50C3;
      sp_pool_share = share;
      sp_on_trip = on_trip;
      sp_retries = Atomic.make 0;
      sp_crash_us = [];
      sp_breaker_open = false;
      sp_stopping = false;
      sp_monitor = None;
    }
  in
  Array.iter (fun slot -> slot.sl_state <- Idle (spawn_worker sup)) sup.sp_slots;
  sup.sp_monitor <- Some (Thread.create (monitor sup) ());
  sup

let stop sup =
  let monitor =
    locked sup.sp_mu (fun () ->
        sup.sp_stopping <- true;
        Condition.broadcast sup.sp_cv;
        let m = sup.sp_monitor in
        sup.sp_monitor <- None;
        m)
  in
  Option.iter Thread.join monitor;
  Array.iter
    (fun slot ->
      let w =
        locked sup.sp_mu (fun () ->
            match slot.sl_state with
            | Idle w | Busy w ->
                slot.sl_state <- Stopped;
                Some w
            | Respawning _ | Stopped ->
                slot.sl_state <- Stopped;
                None)
      in
      Option.iter Worker.stop w)
    sup.sp_slots

let breaker_open sup = locked sup.sp_mu (fun () -> sup.sp_breaker_open)

(* ------------------------------------------------------------------ *)
(* Job execution with retry                                            *)
(* ------------------------------------------------------------------ *)

(* Claim an idle worker, blocking while every slot is mid-respawn.
   [None] once no worker can ever come: stopping, or breaker open with
   no survivors. *)
let acquire sup =
  locked sup.sp_mu (fun () ->
      let rec go () =
        if sup.sp_stopping then None
        else
          let idle = ref None and hope = ref false in
          Array.iter
            (fun s ->
              match s.sl_state with
              | Idle w -> if !idle = None then idle := Some (s, w)
              | Busy _ -> hope := true
              | Respawning _ -> if not sup.sp_breaker_open then hope := true
              | Stopped -> ())
            sup.sp_slots;
          match !idle with
          | Some (slot, w) ->
              slot.sl_state <- Busy w;
              Some (slot, w)
          | None ->
              if !hope then begin
                Condition.wait sup.sp_cv sup.sp_mu;
                go ()
              end
              else None
      in
      go ())

let release sup slot w =
  locked sup.sp_mu (fun () ->
      slot.sl_jobs <- slot.sl_jobs + 1;
      slot.sl_streak <- 0;
      (match slot.sl_state with
      | Busy _ -> slot.sl_state <- Idle w
      | _ -> ());
      Condition.signal sup.sp_cv)

let no_worker_error sup ~label =
  if locked sup.sp_mu (fun () -> sup.sp_breaker_open) then
    Err.make ~kind:Err.Overloaded ~engine:"serve.supervisor"
      ~ctx:[ ("job", label); ("breaker", "open") ]
      "worker fleet circuit breaker is open; server is draining"
  else
    Err.make ~kind:Err.Overloaded ~engine:"serve.supervisor"
      ~ctx:[ ("job", label) ] "supervisor is stopping"

let worker_lost_error ~label ~retries ~reason =
  Err.make ~kind:Err.Internal ~engine:"serve.supervisor"
    ~ctx:
      [ ("error", "worker_lost"); ("job", label); ("retries", string_of_int retries) ]
    (Printf.sprintf "WorkerLost: %s; retry budget exhausted" reason)

(* Wait for the worker's reply fd with the watchdog deadline. *)
let await_reply w ~watchdog_us =
  let rec sel () =
    let timeout = Float.max 0.0 ((watchdog_us -. now_us ()) /. 1e6) in
    match Unix.select [ Worker.fd w ] [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> sel ()
    | [], _, _ -> if now_us () >= watchdog_us then `Timeout else sel ()
    | _ :: _, _, _ -> `Readable
  in
  sel ()

let exec sup req =
  let label = Proto.summary req in
  let watchdog_from_now () =
    let allowance_ms =
      match req.Proto.rq_deadline_ms with
      | Some ms -> ms + sup.sp_cfg.grace_ms
      | None -> sup.sp_cfg.stall_timeout_ms
    in
    now_us () +. (float_of_int allowance_ms *. 1000.0)
  in
  let rec attempt retries =
    match acquire sup with
    | None -> Error (no_worker_error sup ~label)
    | Some (slot, w) -> (
        (* Parent-side chaos: fault the worker we just picked, exactly
           where a real crash/hang would land — between dispatch and
           reply.  Under [sp_mu]: the chaos state (RNG, trips table) is
           shared and executor threads run concurrently. *)
        let chaos_kill, chaos_stall =
          locked sup.sp_mu (fun () ->
              let kill = Chaos.trip "serve.worker.kill" in
              (kill, (not kill) && Chaos.trip "serve.worker.stall"))
        in
        match Worker.send w req with
        | exception (Unix.Unix_error _ | Sys_error _) ->
            (* Died while idle: the job never reached it, so this is a
               respawn, not a retry — the client's budget is untouched. *)
            worker_lost sup slot w;
            attempt retries
        | () -> (
            if chaos_kill then Worker.sigkill w
            else if chaos_stall then Worker.sigstop w;
            let watchdog_us = watchdog_from_now () in
            match await_reply w ~watchdog_us with
            | `Timeout ->
                worker_hung sup slot w;
                if retries < sup.sp_cfg.max_retries then begin
                  Obs.incr c_retries;
                  Atomic.incr sup.sp_retries;
                  attempt (retries + 1)
                end
                else
                  Error
                    (worker_lost_error ~label ~retries
                       ~reason:"worker hung past the watchdog")
            | `Readable -> (
                match Worker.recv w with
                | Ok reply ->
                    release sup slot w;
                    reply
                | Error (`Lost reason) ->
                    worker_lost sup slot w;
                    if retries < sup.sp_cfg.max_retries then begin
                      Obs.incr c_retries;
                      Atomic.incr sup.sp_retries;
                      attempt (retries + 1)
                    end
                    else Error (worker_lost_error ~label ~retries ~reason))))
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* Health                                                              *)
(* ------------------------------------------------------------------ *)

let health sup =
  locked sup.sp_mu (fun () ->
      ( Array.to_list sup.sp_slots
        |> List.map (fun s ->
               let state, pid, up =
                 match s.sl_state with
                 | Idle w -> (Proto.W_idle, Worker.pid w, Worker.uptime_ms w)
                 | Busy w -> (Proto.W_busy, Worker.pid w, Worker.uptime_ms w)
                 | Respawning _ -> (Proto.W_respawning, 0, 0)
                 | Stopped -> (Proto.W_stopped, 0, 0)
               in
               {
                 Proto.wh_id = s.sl_id;
                 wh_pid = pid;
                 wh_state = state;
                 wh_uptime_ms = up;
                 wh_jobs = s.sl_jobs;
                 wh_crashes = s.sl_crashes;
               }),
        sup.sp_breaker_open ))

let retries_total sup = Atomic.get sup.sp_retries
