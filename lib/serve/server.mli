(** Unix-domain-socket job server.

    One accept thread multiplexes the listening socket against a
    self-pipe; each connection gets a handler thread that reads
    {!Wire.Request} frames and settles each through the {!Queue};
    responses stream back as {!Wire.Chunk} frames of stdout followed by
    one {!Wire.Response} frame carrying the status.

    Execution modes:
    - [workers = 0] (default): jobs run in-process through
      {!Dispatch.run}, one at a time — the pre-fleet behaviour and the
      deterministic-reduction contract in its simplest form.
    - [workers = N > 0]: jobs are shipped to a fleet of [N] forked,
      crash-isolated worker processes under the {!Supervisor}; up to [N]
      jobs run concurrently, a crashed or hung worker is respawned and
      its job retried (byte-identical — jobs are deterministic and
      idempotent), and a crash-looping fleet trips the circuit breaker:
      the server drains and {!wait} returns 5.

    The [Health] request is answered directly by the server — never
    queued — so readiness probes work even when the queue is full.

    Graceful drain (DESIGN.md §11, §13): on SIGTERM/SIGINT (via
    {!install_signal_handlers}) or {!shutdown}, the server stops
    accepting, lets every already-admitted job finish and its response
    reach the client, retires the worker fleet, flushes the trace and
    access-log sinks, and {!wait} returns. *)

type t

val start :
  ?queue_depth:int ->
  ?access_log:string ->
  ?workers:int ->
  ?max_retries:int ->
  ?stall_timeout_ms:int ->
  ?cache:string ->
  socket:string ->
  unit ->
  t
(** Bind [socket] (an existing file at that path is replaced), spawn the
    accept loop, the queue executors and (when [workers > 0]) the worker
    fleet, and return immediately.  [queue_depth] bounds
    admitted-but-unfinished jobs (default 64); [max_retries] and
    [stall_timeout_ms] tune the {!Supervisor} (ignored when
    [workers = 0]); [access_log] appends one JSONL record per settled
    job via [Socet_obs.Sink.file].  SIGPIPE is ignored process-wide so a
    client hanging up mid-response surfaces as [EPIPE] on that
    connection only.
    @raise Unix.Unix_error when the socket cannot be bound.
    @raise Invalid_argument when [workers < 0]. *)

val shutdown : t -> unit
(** Request a graceful drain.  Returns immediately; async-signal-safe
    (one byte to a self-pipe) and idempotent. *)

val wait : t -> int
(** Block until the drain completes — every in-flight job settled, the
    fleet retired, every connection closed, sinks flushed — then return
    the process exit code: 0 for a requested drain, 5 when the drain was
    forced by the worker-fleet circuit breaker. *)

val install_signal_handlers : t -> unit
(** Route SIGTERM and SIGINT to {!shutdown}.  Kept separate from
    {!start} so in-process tests don't hijack the test runner's
    signals. *)
