(** Unix-domain-socket job server.

    One accept thread multiplexes the listening socket against a
    self-pipe; each connection gets a handler thread that reads
    {!Wire.Request} frames and settles each through the {!Queue} (so the
    engines run one job at a time and the deterministic-reduction
    contract holds); responses stream back as {!Wire.Chunk} frames of
    stdout followed by one {!Wire.Response} frame carrying the status.

    Graceful drain (DESIGN.md §11): on SIGTERM/SIGINT (via
    {!install_signal_handlers}) or {!shutdown}, the server stops
    accepting, lets every already-admitted job finish and its response
    reach the client, flushes the trace/access-log sinks, and {!wait}
    returns 0. *)

type t

val start : ?queue_depth:int -> ?access_log:string -> socket:string -> unit -> t
(** Bind [socket] (an existing file at that path is replaced), spawn the
    accept loop and the queue dispatcher, and return immediately.
    [queue_depth] bounds admitted-but-unfinished jobs (default 64);
    [access_log] appends one JSONL record per settled job via
    [Socet_obs.Sink.file].  SIGPIPE is ignored process-wide so a client
    hanging up mid-response surfaces as [EPIPE] on that connection only.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val shutdown : t -> unit
(** Request a graceful drain.  Returns immediately; async-signal-safe
    (one byte to a self-pipe) and idempotent. *)

val wait : t -> int
(** Block until the drain completes — every in-flight job settled, every
    connection closed, sinks flushed — then return the process exit code
    (0). *)

val install_signal_handlers : t -> unit
(** Route SIGTERM and SIGINT to {!shutdown}.  Kept separate from
    {!start} so in-process tests don't hijack the test runner's
    signals. *)
