module Json = Socet_obs.Json
module Err = Socet_util.Error

type objective = Min_time | Min_area

type explore = {
  ex_system : string;
  ex_objective : objective;
  ex_max_area : int;
  ex_max_time : int;
  ex_search_budget : int option;
  ex_no_memo : bool;
}

type backend = Ccg | Tam

type chip = { ch_system : string; ch_strict : bool; ch_backend : backend }
type atpg = { at_core : string }

type body =
  | Ping
  | Stats
  | Health
  | Explore of explore
  | Chip of chip
  | Atpg of atpg

type t = { rq_deadline_ms : int option; rq_cache : string option; rq_body : body }

type status = { st_code : int; st_stderr : string }

let make ?deadline_ms ?cache body =
  { rq_deadline_ms = deadline_ms; rq_cache = cache; rq_body = body }

let package_version = "1.2.0"

(* Compile-time capabilities, for client/server mismatch diagnosis: every
   subsystem that changes the observable surface lists itself here. *)
let features =
  [ "obs"; "budgets"; "chaos"; "multicore"; "serve"; "tam"; "fleet"; "cache" ]

let version_lines () =
  Printf.sprintf "socet %s (protocol %d)\nocaml %s\nfeatures: %s\n"
    package_version Wire.protocol_version Sys.ocaml_version
    (String.concat " " features)

let summary t =
  match t.rq_body with
  | Ping -> "ping"
  | Stats -> "stats"
  | Health -> "health"
  | Explore e -> Printf.sprintf "explore %s" e.ex_system
  | Chip { ch_backend = Tam; ch_system; _ } -> Printf.sprintf "chip %s (tam)" ch_system
  | Chip c -> Printf.sprintf "chip %s" c.ch_system
  | Atpg a -> Printf.sprintf "atpg %s" a.at_core

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)
(* ------------------------------------------------------------------ *)

let num i = Json.Num (float_of_int i)

let body_to_json = function
  | Ping -> Json.Obj [ ("op", Json.Str "ping") ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Health -> Json.Obj [ ("op", Json.Str "health") ]
  | Explore e ->
      Json.Obj
        ([
           ("op", Json.Str "explore");
           ("system", Json.Str e.ex_system);
           ( "objective",
             Json.Str (match e.ex_objective with Min_time -> "time" | Min_area -> "area") );
           ("max_area", num e.ex_max_area);
           ("max_time", num e.ex_max_time);
           ("no_memo", Json.Bool e.ex_no_memo);
         ]
        @ match e.ex_search_budget with None -> [] | Some s -> [ ("search_budget", num s) ])
  | Chip c ->
      Json.Obj
        ([ ("op", Json.Str "chip"); ("system", Json.Str c.ch_system); ("strict", Json.Bool c.ch_strict) ]
        (* Wire compatibility: the field is absent for the historical ccg
           backend, so pre-tam encodings are byte-identical. *)
        @ match c.ch_backend with Ccg -> [] | Tam -> [ ("backend", Json.Str "tam") ])
  | Atpg a -> Json.Obj [ ("op", Json.Str "atpg"); ("core", Json.Str a.at_core) ]

let to_json t =
  let body = match body_to_json t.rq_body with Json.Obj fields -> fields | _ -> [] in
  Json.Obj
    (body
    @ (match t.rq_deadline_ms with None -> [] | Some ms -> [ ("deadline_ms", num ms) ])
    (* Wire compatibility: absent when no cache directory rides along, so
       pre-cache encodings are byte-identical. *)
    @ match t.rq_cache with None -> [] | Some d -> [ ("cache", Json.Str d) ])

let encode t = Json.to_string (to_json t)

let get_str field j = Option.bind (Json.member field j) Json.to_str
let get_int field j =
  Option.map int_of_float (Option.bind (Json.member field j) Json.to_float)

let get_bool field j =
  match Json.member field j with Some (Json.Bool b) -> Some b | _ -> None

let ( let* ) = Result.bind

let require what = function Some v -> Ok v | None -> Error ("missing field " ^ what)

let body_of_json j =
  let* op = require "op" (get_str "op" j) in
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "health" -> Ok Health
  | "explore" ->
      let* ex_system = require "system" (get_str "system" j) in
      let* ex_objective =
        match Option.value ~default:"time" (get_str "objective" j) with
        | "time" -> Ok Min_time
        | "area" -> Ok Min_area
        | o -> Error (Printf.sprintf "bad objective %S (use time or area)" o)
      in
      Ok
        (Explore
           {
             ex_system;
             ex_objective;
             ex_max_area = Option.value ~default:500 (get_int "max_area" j);
             ex_max_time = Option.value ~default:5000 (get_int "max_time" j);
             ex_search_budget = get_int "search_budget" j;
             ex_no_memo = Option.value ~default:false (get_bool "no_memo" j);
           })
  | "chip" ->
      let* ch_system = require "system" (get_str "system" j) in
      let* ch_backend =
        match Option.value ~default:"ccg" (get_str "backend" j) with
        | "ccg" -> Ok Ccg
        | "tam" -> Ok Tam
        | b -> Error (Printf.sprintf "unknown backend %S (use ccg or tam)" b)
      in
      Ok
        (Chip
           {
             ch_system;
             ch_strict = Option.value ~default:false (get_bool "strict" j);
             ch_backend;
           })
  | "atpg" ->
      let* at_core = require "core" (get_str "core" j) in
      Ok (Atpg { at_core })
  | op -> Error (Printf.sprintf "unknown op %S" op)

let of_json j =
  let* rq_body = body_of_json j in
  Ok { rq_body; rq_deadline_ms = get_int "deadline_ms" j; rq_cache = get_str "cache" j }

let decode s =
  let* j = Json.of_string s in
  of_json j

(* ------------------------------------------------------------------ *)
(* Response status and structured errors                               *)
(* ------------------------------------------------------------------ *)

let encode_status st =
  Json.to_string
    (Json.Obj [ ("code", num st.st_code); ("stderr", Json.Str st.st_stderr) ])

let decode_status s =
  let* j = Json.of_string s in
  let* code = require "code" (get_int "code" j) in
  Ok { st_code = code; st_stderr = Option.value ~default:"" (get_str "stderr" j) }

let kind_tag = function
  | Err.Invalid_input -> "invalid_input"
  | Err.Validation -> "validation"
  | Err.Exhausted -> "exhausted"
  | Err.Overloaded -> "overloaded"
  | Err.Internal -> "internal"

let kind_of_tag = function
  | "invalid_input" -> Ok Err.Invalid_input
  | "validation" -> Ok Err.Validation
  | "exhausted" -> Ok Err.Exhausted
  | "overloaded" -> Ok Err.Overloaded
  | "internal" -> Ok Err.Internal
  | k -> Error (Printf.sprintf "unknown error kind %S" k)

let encode_error (e : Err.t) =
  Json.to_string
    (Json.Obj
       [
         ("engine", Json.Str e.Err.err_engine);
         ("kind", Json.Str (kind_tag e.Err.err_kind));
         ("msg", Json.Str e.Err.err_msg);
         ( "ctx",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.Err.err_ctx) );
       ])

let decode_error s =
  let* j = Json.of_string s in
  let* engine = require "engine" (get_str "engine" j) in
  let* kind = kind_of_tag (Option.value ~default:"internal" (get_str "kind" j)) in
  let* msg = require "msg" (get_str "msg" j) in
  let ctx =
    match Json.member "ctx" j with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
          fields
    | _ -> []
  in
  Ok (Err.make ~kind ~ctx ~engine msg)

(* ------------------------------------------------------------------ *)
(* Health report (the [Health] response payload)                       *)
(* ------------------------------------------------------------------ *)

type worker_state = W_idle | W_busy | W_respawning | W_stopped

type worker_health = {
  wh_id : int;
  wh_pid : int;
  wh_state : worker_state;
  wh_uptime_ms : int;
  wh_jobs : int;
  wh_crashes : int;
}

type health = {
  hl_uptime_ms : int;
  hl_queue_depth : int;
  hl_pending : int;
  hl_workers : worker_health list;
  hl_breaker_open : bool;
  hl_retries : int;
}

let worker_state_tag = function
  | W_idle -> "idle"
  | W_busy -> "busy"
  | W_respawning -> "respawning"
  | W_stopped -> "stopped"

let worker_state_of_tag = function
  | "idle" -> Ok W_idle
  | "busy" -> Ok W_busy
  | "respawning" -> Ok W_respawning
  | "stopped" -> Ok W_stopped
  | s -> Error (Printf.sprintf "unknown worker state %S" s)

let worker_health_to_json w =
  Json.Obj
    [
      ("id", num w.wh_id);
      ("pid", num w.wh_pid);
      ("state", Json.Str (worker_state_tag w.wh_state));
      ("uptime_ms", num w.wh_uptime_ms);
      ("jobs", num w.wh_jobs);
      ("crashes", num w.wh_crashes);
    ]

let encode_health h =
  Json.to_string
    (Json.Obj
       [
         ("uptime_ms", num h.hl_uptime_ms);
         ("queue_depth", num h.hl_queue_depth);
         ("pending", num h.hl_pending);
         ("workers", Json.Arr (List.map worker_health_to_json h.hl_workers));
         ("breaker_open", Json.Bool h.hl_breaker_open);
         ("retries", num h.hl_retries);
       ])

let worker_health_of_json j =
  let* wh_id = require "id" (get_int "id" j) in
  let* wh_pid = require "pid" (get_int "pid" j) in
  let* wh_state =
    worker_state_of_tag (Option.value ~default:"idle" (get_str "state" j))
  in
  Ok
    {
      wh_id;
      wh_pid;
      wh_state;
      wh_uptime_ms = Option.value ~default:0 (get_int "uptime_ms" j);
      wh_jobs = Option.value ~default:0 (get_int "jobs" j);
      wh_crashes = Option.value ~default:0 (get_int "crashes" j);
    }

let decode_health s =
  let* j = Json.of_string s in
  let* uptime = require "uptime_ms" (get_int "uptime_ms" j) in
  let* depth = require "queue_depth" (get_int "queue_depth" j) in
  let* pending = require "pending" (get_int "pending" j) in
  let* workers =
    match Json.member "workers" j with
    | Some (Json.Arr items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* w = worker_health_of_json item in
            Ok (w :: acc))
          (Ok []) items
        |> Result.map List.rev
    | Some _ -> Error "workers must be an array"
    | None -> Ok []
  in
  Ok
    {
      hl_uptime_ms = uptime;
      hl_queue_depth = depth;
      hl_pending = pending;
      hl_workers = workers;
      hl_breaker_open =
        Option.value ~default:false (get_bool "breaker_open" j);
      hl_retries = Option.value ~default:0 (get_int "retries" j);
    }

(* Human-readable rendering: [socet health]'s stdout. *)
let render_health h =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "server: up %dms, queue %d/%d, breaker %s, job retries %d\n"
       h.hl_uptime_ms h.hl_pending h.hl_queue_depth
       (if h.hl_breaker_open then "OPEN" else "closed")
       h.hl_retries);
  List.iter
    (fun w ->
      Buffer.add_string b
        (Printf.sprintf "worker %d: pid %d %s, up %dms, %d job(s), %d crash(es)\n"
           w.wh_id w.wh_pid (worker_state_tag w.wh_state) w.wh_uptime_ms
           w.wh_jobs w.wh_crashes))
    h.hl_workers;
  if h.hl_workers = [] then
    Buffer.add_string b "workers: none (in-process execution)\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Command-line request syntax ([socet submit ... -- <request>])       *)
(* ------------------------------------------------------------------ *)

(* Tiny flag parser: [--k v], [--k=v] and bare boolean flags, enough to
   mirror the CLI surface without pulling cmdliner into the library. *)
let parse_flags spec tokens =
  let split tok =
    match String.index_opt tok '=' with
    | Some i ->
        (String.sub tok 0 i, Some (String.sub tok (i + 1) (String.length tok - i - 1)))
    | None -> (tok, None)
  in
  let rec go acc = function
    | [] -> Ok acc
    | tok :: rest when String.length tok > 2 && String.sub tok 0 2 = "--" -> (
        let key, inline = split tok in
        match List.assoc_opt key spec with
        | None -> Error (Printf.sprintf "unknown flag %s" key)
        | Some `Flag -> go ((key, "") :: acc) rest
        | Some `Value -> (
            match (inline, rest) with
            | Some v, _ -> go ((key, v) :: acc) rest
            | None, v :: rest' -> go ((key, v) :: acc) rest'
            | None, [] -> Error (Printf.sprintf "flag %s needs a value" key)))
    | tok :: _ -> Error (Printf.sprintf "unexpected argument %S" tok)
  in
  go [] tokens

let int_flag flags key ~default =
  match List.assoc_opt key flags with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "flag %s expects an integer, got %S" key v))

let of_args ?deadline_ms ?cache args =
  let* body =
    match args with
    | [] | [ "" ] -> Error "empty request (expected ping|stats|health|explore|chip|atpg)"
    | "ping" :: [] -> Ok Ping
    | "stats" :: [] -> Ok Stats
    | "health" :: [] -> Ok Health
    | "explore" :: system :: rest ->
        let* flags =
          parse_flags
            [
              ("--objective", `Value); ("--max-area", `Value); ("--max-time", `Value);
              ("--search-budget", `Value); ("--no-memo", `Flag);
            ]
            rest
        in
        let* ex_objective =
          match List.assoc_opt "--objective" flags with
          | None | Some "time" -> Ok Min_time
          | Some "area" -> Ok Min_area
          | Some o -> Error (Printf.sprintf "bad objective %S (use time or area)" o)
        in
        let* ex_max_area = int_flag flags "--max-area" ~default:500 in
        let* ex_max_time = int_flag flags "--max-time" ~default:5000 in
        let* sb = int_flag flags "--search-budget" ~default:(-1) in
        Ok
          (Explore
             {
               ex_system = system;
               ex_objective;
               ex_max_area;
               ex_max_time;
               ex_search_budget = (if sb < 0 then None else Some sb);
               ex_no_memo = List.mem_assoc "--no-memo" flags;
             })
    | "chip" :: system :: rest ->
        let* flags =
          parse_flags [ ("--strict", `Flag); ("--backend", `Value) ] rest
        in
        let* ch_backend =
          match List.assoc_opt "--backend" flags with
          | None | Some "ccg" -> Ok Ccg
          | Some "tam" -> Ok Tam
          | Some b -> Error (Printf.sprintf "unknown backend %S (use ccg or tam)" b)
        in
        Ok
          (Chip
             {
               ch_system = system;
               ch_strict = List.mem_assoc "--strict" flags;
               ch_backend;
             })
    | "atpg" :: core :: [] -> Ok (Atpg { at_core = core })
    | [ ("explore" | "chip" | "atpg") as cmd ] ->
        Error (Printf.sprintf "%s needs a target (e.g. %s system1)" cmd cmd)
    | cmd :: _ ->
        Error
          (Printf.sprintf
             "bad request %S (expected: ping | stats | health | explore SYSTEM [--objective \
              time|area] [--max-area N] [--max-time N] [--search-budget N] [--no-memo] \
              | chip SYSTEM [--strict] [--backend ccg|tam] | atpg CORE)"
             cmd)
  in
  Ok (make ?deadline_ms ?cache body)
