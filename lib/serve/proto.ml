module Json = Socet_obs.Json
module Err = Socet_util.Error

type objective = Min_time | Min_area

type explore = {
  ex_system : string;
  ex_objective : objective;
  ex_max_area : int;
  ex_max_time : int;
  ex_search_budget : int option;
  ex_no_memo : bool;
}

type backend = Ccg | Tam

type chip = { ch_system : string; ch_strict : bool; ch_backend : backend }
type atpg = { at_core : string }

type body = Ping | Stats | Explore of explore | Chip of chip | Atpg of atpg

type t = { rq_deadline_ms : int option; rq_body : body }

type status = { st_code : int; st_stderr : string }

let make ?deadline_ms body = { rq_deadline_ms = deadline_ms; rq_body = body }

let package_version = "1.1.0"

(* Compile-time capabilities, for client/server mismatch diagnosis: every
   subsystem that changes the observable surface lists itself here. *)
let features = [ "obs"; "budgets"; "chaos"; "multicore"; "serve"; "tam" ]

let version_lines () =
  Printf.sprintf "socet %s (protocol %d)\nocaml %s\nfeatures: %s\n"
    package_version Wire.protocol_version Sys.ocaml_version
    (String.concat " " features)

let summary t =
  match t.rq_body with
  | Ping -> "ping"
  | Stats -> "stats"
  | Explore e -> Printf.sprintf "explore %s" e.ex_system
  | Chip { ch_backend = Tam; ch_system; _ } -> Printf.sprintf "chip %s (tam)" ch_system
  | Chip c -> Printf.sprintf "chip %s" c.ch_system
  | Atpg a -> Printf.sprintf "atpg %s" a.at_core

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)
(* ------------------------------------------------------------------ *)

let num i = Json.Num (float_of_int i)

let body_to_json = function
  | Ping -> Json.Obj [ ("op", Json.Str "ping") ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Explore e ->
      Json.Obj
        ([
           ("op", Json.Str "explore");
           ("system", Json.Str e.ex_system);
           ( "objective",
             Json.Str (match e.ex_objective with Min_time -> "time" | Min_area -> "area") );
           ("max_area", num e.ex_max_area);
           ("max_time", num e.ex_max_time);
           ("no_memo", Json.Bool e.ex_no_memo);
         ]
        @ match e.ex_search_budget with None -> [] | Some s -> [ ("search_budget", num s) ])
  | Chip c ->
      Json.Obj
        ([ ("op", Json.Str "chip"); ("system", Json.Str c.ch_system); ("strict", Json.Bool c.ch_strict) ]
        (* Wire compatibility: the field is absent for the historical ccg
           backend, so pre-tam encodings are byte-identical. *)
        @ match c.ch_backend with Ccg -> [] | Tam -> [ ("backend", Json.Str "tam") ])
  | Atpg a -> Json.Obj [ ("op", Json.Str "atpg"); ("core", Json.Str a.at_core) ]

let to_json t =
  let body = match body_to_json t.rq_body with Json.Obj fields -> fields | _ -> [] in
  Json.Obj
    (body @ match t.rq_deadline_ms with None -> [] | Some ms -> [ ("deadline_ms", num ms) ])

let encode t = Json.to_string (to_json t)

let get_str field j = Option.bind (Json.member field j) Json.to_str
let get_int field j =
  Option.map int_of_float (Option.bind (Json.member field j) Json.to_float)

let get_bool field j =
  match Json.member field j with Some (Json.Bool b) -> Some b | _ -> None

let ( let* ) = Result.bind

let require what = function Some v -> Ok v | None -> Error ("missing field " ^ what)

let body_of_json j =
  let* op = require "op" (get_str "op" j) in
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "explore" ->
      let* ex_system = require "system" (get_str "system" j) in
      let* ex_objective =
        match Option.value ~default:"time" (get_str "objective" j) with
        | "time" -> Ok Min_time
        | "area" -> Ok Min_area
        | o -> Error (Printf.sprintf "bad objective %S (use time or area)" o)
      in
      Ok
        (Explore
           {
             ex_system;
             ex_objective;
             ex_max_area = Option.value ~default:500 (get_int "max_area" j);
             ex_max_time = Option.value ~default:5000 (get_int "max_time" j);
             ex_search_budget = get_int "search_budget" j;
             ex_no_memo = Option.value ~default:false (get_bool "no_memo" j);
           })
  | "chip" ->
      let* ch_system = require "system" (get_str "system" j) in
      let* ch_backend =
        match Option.value ~default:"ccg" (get_str "backend" j) with
        | "ccg" -> Ok Ccg
        | "tam" -> Ok Tam
        | b -> Error (Printf.sprintf "unknown backend %S (use ccg or tam)" b)
      in
      Ok
        (Chip
           {
             ch_system;
             ch_strict = Option.value ~default:false (get_bool "strict" j);
             ch_backend;
           })
  | "atpg" ->
      let* at_core = require "core" (get_str "core" j) in
      Ok (Atpg { at_core })
  | op -> Error (Printf.sprintf "unknown op %S" op)

let of_json j =
  let* rq_body = body_of_json j in
  Ok { rq_body; rq_deadline_ms = get_int "deadline_ms" j }

let decode s =
  let* j = Json.of_string s in
  of_json j

(* ------------------------------------------------------------------ *)
(* Response status and structured errors                               *)
(* ------------------------------------------------------------------ *)

let encode_status st =
  Json.to_string
    (Json.Obj [ ("code", num st.st_code); ("stderr", Json.Str st.st_stderr) ])

let decode_status s =
  let* j = Json.of_string s in
  let* code = require "code" (get_int "code" j) in
  Ok { st_code = code; st_stderr = Option.value ~default:"" (get_str "stderr" j) }

let kind_tag = function
  | Err.Invalid_input -> "invalid_input"
  | Err.Validation -> "validation"
  | Err.Exhausted -> "exhausted"
  | Err.Overloaded -> "overloaded"
  | Err.Internal -> "internal"

let kind_of_tag = function
  | "invalid_input" -> Ok Err.Invalid_input
  | "validation" -> Ok Err.Validation
  | "exhausted" -> Ok Err.Exhausted
  | "overloaded" -> Ok Err.Overloaded
  | "internal" -> Ok Err.Internal
  | k -> Error (Printf.sprintf "unknown error kind %S" k)

let encode_error (e : Err.t) =
  Json.to_string
    (Json.Obj
       [
         ("engine", Json.Str e.Err.err_engine);
         ("kind", Json.Str (kind_tag e.Err.err_kind));
         ("msg", Json.Str e.Err.err_msg);
         ( "ctx",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.Err.err_ctx) );
       ])

let decode_error s =
  let* j = Json.of_string s in
  let* engine = require "engine" (get_str "engine" j) in
  let* kind = kind_of_tag (Option.value ~default:"internal" (get_str "kind" j)) in
  let* msg = require "msg" (get_str "msg" j) in
  let ctx =
    match Json.member "ctx" j with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
          fields
    | _ -> []
  in
  Ok (Err.make ~kind ~ctx ~engine msg)

(* ------------------------------------------------------------------ *)
(* Command-line request syntax ([socet submit ... -- <request>])       *)
(* ------------------------------------------------------------------ *)

(* Tiny flag parser: [--k v], [--k=v] and bare boolean flags, enough to
   mirror the CLI surface without pulling cmdliner into the library. *)
let parse_flags spec tokens =
  let split tok =
    match String.index_opt tok '=' with
    | Some i ->
        (String.sub tok 0 i, Some (String.sub tok (i + 1) (String.length tok - i - 1)))
    | None -> (tok, None)
  in
  let rec go acc = function
    | [] -> Ok acc
    | tok :: rest when String.length tok > 2 && String.sub tok 0 2 = "--" -> (
        let key, inline = split tok in
        match List.assoc_opt key spec with
        | None -> Error (Printf.sprintf "unknown flag %s" key)
        | Some `Flag -> go ((key, "") :: acc) rest
        | Some `Value -> (
            match (inline, rest) with
            | Some v, _ -> go ((key, v) :: acc) rest
            | None, v :: rest' -> go ((key, v) :: acc) rest'
            | None, [] -> Error (Printf.sprintf "flag %s needs a value" key)))
    | tok :: _ -> Error (Printf.sprintf "unexpected argument %S" tok)
  in
  go [] tokens

let int_flag flags key ~default =
  match List.assoc_opt key flags with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "flag %s expects an integer, got %S" key v))

let of_args ?deadline_ms args =
  let* body =
    match args with
    | [] | [ "" ] -> Error "empty request (expected ping|stats|explore|chip|atpg)"
    | "ping" :: [] -> Ok Ping
    | "stats" :: [] -> Ok Stats
    | "explore" :: system :: rest ->
        let* flags =
          parse_flags
            [
              ("--objective", `Value); ("--max-area", `Value); ("--max-time", `Value);
              ("--search-budget", `Value); ("--no-memo", `Flag);
            ]
            rest
        in
        let* ex_objective =
          match List.assoc_opt "--objective" flags with
          | None | Some "time" -> Ok Min_time
          | Some "area" -> Ok Min_area
          | Some o -> Error (Printf.sprintf "bad objective %S (use time or area)" o)
        in
        let* ex_max_area = int_flag flags "--max-area" ~default:500 in
        let* ex_max_time = int_flag flags "--max-time" ~default:5000 in
        let* sb = int_flag flags "--search-budget" ~default:(-1) in
        Ok
          (Explore
             {
               ex_system = system;
               ex_objective;
               ex_max_area;
               ex_max_time;
               ex_search_budget = (if sb < 0 then None else Some sb);
               ex_no_memo = List.mem_assoc "--no-memo" flags;
             })
    | "chip" :: system :: rest ->
        let* flags =
          parse_flags [ ("--strict", `Flag); ("--backend", `Value) ] rest
        in
        let* ch_backend =
          match List.assoc_opt "--backend" flags with
          | None | Some "ccg" -> Ok Ccg
          | Some "tam" -> Ok Tam
          | Some b -> Error (Printf.sprintf "unknown backend %S (use ccg or tam)" b)
        in
        Ok
          (Chip
             {
               ch_system = system;
               ch_strict = List.mem_assoc "--strict" flags;
               ch_backend;
             })
    | "atpg" :: core :: [] -> Ok (Atpg { at_core = core })
    | [ ("explore" | "chip" | "atpg") as cmd ] ->
        Error (Printf.sprintf "%s needs a target (e.g. %s system1)" cmd cmd)
    | cmd :: _ ->
        Error
          (Printf.sprintf
             "bad request %S (expected: ping | stats | explore SYSTEM [--objective \
              time|area] [--max-area N] [--max-time N] [--search-budget N] [--no-memo] \
              | chip SYSTEM [--strict] [--backend ccg|tam] | atpg CORE)"
             cmd)
  in
  Ok (make ?deadline_ms body)
