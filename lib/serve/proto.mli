(** Typed requests and responses carried inside {!Wire} frames.

    Requests mirror the CLI surface — what [socet explore]/[socet chip]
    print is exactly what the server streams back ({!Dispatch} is the
    single implementation both sides share, which is what makes the
    byte-identity contract of DESIGN.md §11 hold by construction).  Every
    request carries an optional relative deadline; [Explore] also carries
    the optimizer's [search_budget].  Both thread straight into
    [Socet_util.Budget] on the server.

    Payload encoding is JSON (via the repo's own [Socet_obs.Json]): the
    framing layer is binary for cheap, robust length-prefixed transport,
    while the payloads stay debuggable with [socket]-level tools. *)

type objective = Min_time | Min_area

type explore = {
  ex_system : string;
  ex_objective : objective;
  ex_max_area : int;
  ex_max_time : int;
  ex_search_budget : int option;
      (** optimizer fuel, in node-expansion units ([--search-budget]) *)
  ex_no_memo : bool;
}

type backend = Ccg | Tam
(** Which chip backend plans the request ([Socet_tam.Backend] names).
    Wire-compatible: the JSON field is emitted only for [Tam], so [Ccg]
    requests encode byte-identically to the pre-backend protocol and old
    peers keep interoperating. *)

type chip = { ch_system : string; ch_strict : bool; ch_backend : backend }
type atpg = { at_core : string }

type body =
  | Ping  (** liveness + version/feature echo ([socet version] format) *)
  | Stats  (** the server's observability report, as [Obs.stats_json] *)
  | Health
      (** readiness probe: per-worker state/uptime/jobs/crashes, queue
          depth, circuit-breaker state ({!health} JSON).  Answered by the
          server directly — never queued — so it stays responsive while
          the queue is full.  Back-compatible: a new op inside protocol
          version 1; pre-fleet peers reject it as an unknown op without
          affecting any other request. *)
  | Explore of explore
  | Chip of chip
  | Atpg of atpg

type t = {
  rq_deadline_ms : int option;
      (** wall-clock allowance, anchored when the server admits the job:
          expiring in the queue or mid-engine yields a structured
          [Exhausted] error (exit code 4 at the client) *)
  rq_cache : string option;
      (** result-cache directory to activate around this request's
          execution ([--cache DIR]); absent on the wire when [None], so
          pre-cache request frames are byte-identical *)
  rq_body : body;
}

type status = { st_code : int; st_stderr : string }
(** Final frame of a successful exchange: the process exit code the
    direct CLI would have returned, plus its stderr bytes (stdout arrived
    as chunk frames). *)

val make : ?deadline_ms:int -> ?cache:string -> body -> t

val summary : t -> string
(** One-line label for queue spans and the access log, e.g.
    ["explore system1"]. *)

val package_version : string
(** Single source of truth for the [socet] version string (the CLI's
    [--version] and [socet version] both use it). *)

val features : string list
val version_lines : unit -> string
(** The [socet version] output; the server's [Ping] response carries the
    same bytes, so a client can diagnose a protocol or feature mismatch. *)

val encode : t -> string
val decode : string -> (t, string) result

val of_args : ?deadline_ms:int -> ?cache:string -> string list -> (t, string) result
(** Parse the [socet submit] request syntax, e.g.
    [["explore"; "system1"; "--max-area"; "600"]].  Accepts [--k v] and
    [--k=v]. *)

val encode_status : status -> string
val decode_status : string -> (status, string) result

val encode_error : Socet_util.Error.t -> string
val decode_error : string -> (Socet_util.Error.t, string) result
(** Structured errors cross the wire losslessly: engine, kind (including
    [Overloaded] with its [retry_after_ms] context), context pairs and
    message survive the round trip, so [Error.exit_code] at the client
    equals what the direct CLI would have exited with. *)

(** {2 Health report} *)

type worker_state = W_idle | W_busy | W_respawning | W_stopped

type worker_health = {
  wh_id : int;  (** stable worker slot index (survives respawns) *)
  wh_pid : int;  (** current process id; 0 when no process is live *)
  wh_state : worker_state;
  wh_uptime_ms : int;  (** of the current incarnation *)
  wh_jobs : int;  (** jobs completed across all incarnations *)
  wh_crashes : int;  (** deaths/hang-kills across all incarnations *)
}

type health = {
  hl_uptime_ms : int;  (** server uptime *)
  hl_queue_depth : int;  (** admission bound *)
  hl_pending : int;  (** jobs admitted and not yet dispatched *)
  hl_workers : worker_health list;  (** empty = in-process execution *)
  hl_breaker_open : bool;
      (** the respawn circuit breaker tripped: the server is draining and
          will exit 5 — a readiness probe should report not-ready *)
  hl_retries : int;  (** jobs re-run after a worker loss, lifetime total *)
}

val encode_health : health -> string
val decode_health : string -> (health, string) result

val render_health : health -> string
(** The [socet health] human-readable rendering of the report. *)
