(** Length-prefixed, versioned binary framing for the SOCET job server.

    A frame is a fixed 22-byte header — magic ["SCET"], protocol version,
    frame kind, 64-bit request id, 32-bit chunk sequence number, 32-bit
    payload length, all big-endian — followed by the opaque payload (the
    {!Proto} layer gives it meaning).  The codec is pure OCaml over
    [Bytes] with no external dependencies; {!write_frame}/{!read_frame}
    are the only I/O, looping over partial transfers and [EINTR].

    Corruption never raises out of {!decode}/{!read_frame}: a frame that
    cannot be parsed is reported as [`Corrupt] (bad magic, unknown
    version or kind, out-of-range length) and an incomplete one as
    [`Truncated] ([decode]) or a mid-frame EOF ([read_frame]) — the
    qcheck suite in [test/test_serve.ml] pins this down on arbitrary and
    mutated byte strings. *)

type kind =
  | Request  (** client → server: a {!Proto.t} payload *)
  | Response  (** server → client: final status, after any chunks *)
  | Chunk  (** server → client: one piece of the streamed output *)
  | Error_frame  (** server → client: a structured [Socet_util.Error.t] *)

type frame = {
  f_kind : kind;
  f_id : int;  (** client-assigned request id, echoed by the server *)
  f_seq : int;  (** chunk sequence number (0, 1, ...); 0 elsewhere *)
  f_payload : string;
}

val protocol_version : int
(** Bumped on any incompatible header or payload change; both sides
    refuse mismatched frames as [`Corrupt] (diagnose with
    [socet version]). *)

val header_size : int

val max_payload : int
(** Upper bound on the payload length accepted by the codec (64 MiB);
    beyond it a length field is treated as corruption, not an
    allocation request. *)

val request : id:int -> string -> frame
val response : id:int -> string -> frame
val chunk : id:int -> seq:int -> string -> frame
val error : id:int -> string -> frame

val encode : frame -> Bytes.t
(** Header + payload as one buffer.
    @raise Invalid_argument on a negative id/seq or oversized payload. *)

val decode :
  Bytes.t -> pos:int -> (frame * int, [ `Truncated | `Corrupt of string ]) result
(** Parse one frame starting at [pos]; on success also returns the number
    of bytes consumed (so a reader can walk a buffer of concatenated
    frames).  [`Truncated] means more bytes are needed — feed a longer
    buffer; [`Corrupt] means the stream is unrecoverable. *)

val write_frame : Unix.file_descr -> frame -> unit
(** Blocking write of the whole encoded frame (retries partial writes and
    [EINTR]).  Unix errors (e.g. [EPIPE]) propagate. *)

val read_frame :
  Unix.file_descr -> (frame, [ `Eof | `Corrupt of string ]) result
(** Blocking read of exactly one frame.  [`Eof] only on a clean
    connection close between frames; EOF mid-frame is [`Corrupt]. *)
