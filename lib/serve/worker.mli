(** One forked worker process — the crash-isolation unit of the fleet.

    A worker is a child process serving jobs over a private socketpair:
    the supervisor writes one {!Wire} Request frame (a {!Proto} payload)
    per job; the worker runs {!Dispatch.run} and answers with one
    Response frame (an encoded {!Dispatch.outcome}) or one Error_frame
    (an encoded structured error).  The child is fork+exec'd — a fresh
    image of the host executable, routed into the serve loop by
    {!exec_guard} — so it owns a brand-new runtime, heap, obs registry
    and domain sub-pool: jobs in different workers share {e nothing},
    which is both the crash-isolation and the determinism argument (each
    job runs exactly as a fresh direct CLI invocation would), and is
    also why respawning is safe from any supervisor thread (a bare fork
    of a multi-threaded OCaml 5 process can deadlock in the child's
    first blocking section; exec resets the runtime wholesale).

    A worker that dies (segfault, OOM kill, chaos SIGKILL) surfaces as
    EOF on the socketpair; one that hangs is detected by the
    supervisor's watchdog and SIGKILLed.  Either way only the supervisor
    ever observes it — the codecs here never raise on a corpse. *)

type t
(** Parent-side handle: pid, socketpair fd, spawn time. *)

val spawn : ?pool_share:int -> unit -> t
(** Fork one worker and immediately re-exec [Sys.executable_name] with
    the job pipe as its stdin and the {!exec_guard} marker
    ([SOCET_WORKER_SLOT=pool_share]) in its environment.  Between fork
    and exec the child runs only raw syscalls (dup2, execve) — no
    OCaml runtime work, which is what makes spawning safe from a
    thread of a live multi-threaded server.  Server-side fds must be
    close-on-exec (the server marks its listening socket, self-pipe and
    connection fds; [spawn] marks each job pipe), so the fresh image
    starts with stdin/stdout/stderr only. *)

val exec_guard : unit -> unit
(** Call first thing in [main] of {e any} executable that hosts a
    supervised server (the CLI, test binaries).  When the
    [SOCET_WORKER_SLOT] environment marker is present, the process is a
    freshly exec'd worker: serve jobs from stdin until EOF, then
    [Unix._exit] — this never returns.  Without the marker it is a
    no-op. *)

val pid : t -> int
val fd : t -> Unix.file_descr
(** For the supervisor's [select]-based watchdog. *)

val uptime_ms : t -> int

val send : t -> Proto.t -> unit
(** Write one job request.  Unix errors (EPIPE on a corpse) propagate —
    the supervisor treats any of them as a worker loss. *)

type reply = (Dispatch.outcome, Socet_util.Error.t) result
(** What the job itself produced: outcome bytes, or the structured error
    the engines reported.  Both are terminal, neither is a worker loss. *)

val recv : t -> (reply, [ `Lost of string ]) result
(** Blocking read of one reply frame.  [`Lost] covers every way the
    channel (not the job) can fail: EOF, a truncated frame from a death
    mid-write, an undecodable payload. *)

val kill : t -> unit
(** SIGKILL, close the pipe, reap.  Used by the watchdog on a hung
    worker and by chaos injection. *)

val forget : t -> unit
(** The worker already died (EOF observed): close our end and reap the
    zombie. *)

val dead : t -> bool
(** Non-blocking liveness probe for an {e idle} worker (waitpid with
    WNOHANG): true once the child has exited, reaping the zombie as a
    side effect.  The monitor polls this so a worker killed {e between}
    jobs is detected and respawned promptly instead of lying in the
    slot until the next job trips over the corpse; pair with {!forget}
    to close the pipe. *)

val stop : t -> unit
(** Graceful retirement at drain: close the pipe (the child sees EOF and
    [_exit]s 0) and reap. *)

val sigstop : t -> unit
(** Freeze the worker with SIGSTOP — the chaos worker-stall injection
    (the watchdog must detect and recover). *)

val sigkill : t -> unit
(** SIGKILL {e without} closing the pipe or reaping — the chaos
    worker-kill injection.  The death then reaches the supervisor as EOF
    on the pipe, exactly like an organic crash; recovery closes and
    reaps through {!forget}. *)

(**/**)

val encode_outcome : Dispatch.outcome -> string
val decode_outcome : string -> (Dispatch.outcome, string) result
(** Exposed for the round-trip property tests. *)
