(** Admission-controlled job queue between the server's connection
    handlers and the engines.

    Policy (DESIGN.md §11):
    - {b Bounded admission.}  At most [depth] jobs may be queued; an
      admission attempt beyond that {e rejects immediately} with a
      structured, retriable [Overloaded] error carrying a
      [retry_after_ms] backoff hint — the queue never blocks a caller
      and never grows without bound.
    - {b FIFO dispatch over [executors] threads.}  With the default
      single executor jobs run one at a time, which preserves the
      deterministic-reduction contract — a job sees the pool exactly as
      a direct CLI run would.  With [executors = N] (the worker fleet),
      N jobs run concurrently; the contract then rests on the thunk
      being an isolated execution (a forked worker process with its own
      heap, obs registry and domain sub-pool — see [Supervisor]).
    - {b Deadlines are re-checked at dispatch.}  A job whose deadline
      expired while it sat in the queue fails with the structured
      [Exhausted] error (exit code 4) without starting the engines.

    Per-job observability: [serve.jobs.{accepted,rejected,completed,
    failed}] counters, the [serve.queue.depth] gauge, and
    [serve.queue.{wait_ms,latency_ms}] histograms (dispatch wait and
    end-to-end latency). *)

type t

type ticket
(** A submitted job; redeem with {!await}. *)

type job_info = {
  ji_label : string;
  ji_enqueued_us : float;  (** absolute wall clock, microseconds *)
  ji_wait_us : float;  (** time spent queued before dispatch *)
  ji_run_us : float;  (** time spent executing *)
  ji_code : int;  (** outcome exit code, or [Error.exit_code] on failure *)
  ji_ok : bool;
}

val create :
  ?depth:int -> ?executors:int -> ?on_done:(job_info -> unit) -> unit -> t
(** Start the executor thread(s).  [depth] (default 64) bounds the
    number of admitted-but-unfinished jobs; [executors] (default 1) is
    the number of dispatcher threads pulling jobs — match it to the
    worker-fleet size; [on_done] runs on the settling executor's thread
    after each job (the server's access log).
    @raise Invalid_argument when [depth < 1] or [executors < 1]. *)

val submit :
  t ->
  label:string ->
  ?deadline_us:float ->
  (unit -> (Dispatch.outcome, Socet_util.Error.t) result) ->
  (ticket, Socet_util.Error.t) result
(** Admit a job, or reject with [Overloaded] (queue full, or draining).
    [deadline_us] is an absolute wall-clock bound ([Unix.gettimeofday]
    seconds × 1e6).  Never blocks. *)

val await : ticket -> (Dispatch.outcome, Socet_util.Error.t) result
(** Block until the job settles.  A thunk that raises is reported as a
    structured [Internal] error, never re-raised into the waiter. *)

val pending : t -> int
(** Jobs admitted and not yet dispatched. *)

val depth : t -> int
(** The admission bound (for the [Health] report). *)

val retry_after_ms : t -> int
(** The backoff hint attached to [Overloaded] rejections: roughly the
    time the current backlog needs to clear at the observed per-job run
    time, with a cold-server floor — a server that has completed nothing
    yet still hints a sane positive backoff, never 0ms. *)

val drain : t -> unit
(** Stop admitting ({!submit} then rejects with [Overloaded]
    ["server is draining"]), finish every already-admitted job, and join
    every executor thread.  Idempotent. *)
