(* Blocking client for the job server: one connection, sequential
   requests, monotonically increasing request ids.  Used by [socet
   submit] and the test/bench harnesses. *)

module Err = Socet_util.Error
module Rng = Socet_util.Rng

type t = { c_fd : Unix.file_descr; mutable c_next_id : int; mutable c_closed : bool }

type reply = { r_stdout : string; r_stderr : string; r_code : int }

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { c_fd = fd; c_next_id = 1; c_closed = false }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Err.error ~engine:"client"
        ~ctx:[ ("socket", socket) ]
        (Printf.sprintf "cannot connect: %s" (Unix.error_message e))

let close c =
  if not c.c_closed then begin
    c.c_closed <- true;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

let proto_error c msg =
  close c;
  Err.error ~engine:"client" ~kind:Err.Internal msg

let request ?on_chunk c req =
  if c.c_closed then Err.error ~engine:"client" "connection is closed"
  else begin
    let id = c.c_next_id in
    c.c_next_id <- id + 1;
    match Wire.write_frame c.c_fd (Wire.request ~id (Proto.encode req)) with
    | exception Unix.Unix_error (e, _, _) ->
        proto_error c (Printf.sprintf "send failed: %s" (Unix.error_message e))
    | () ->
        let out = Buffer.create 1024 in
        let rec recv () =
          match Wire.read_frame c.c_fd with
          | Error `Eof -> proto_error c "server closed the connection mid-request"
          | Error (`Corrupt msg) -> proto_error c (Printf.sprintf "corrupt reply: %s" msg)
          | Ok fr when fr.Wire.f_id <> id ->
              proto_error c
                (Printf.sprintf "reply id %d does not match request id %d" fr.Wire.f_id id)
          | Ok { Wire.f_kind = Wire.Chunk; f_payload = p; _ } ->
              Buffer.add_string out p;
              Option.iter (fun f -> f p) on_chunk;
              recv ()
          | Ok { Wire.f_kind = Wire.Response; f_payload = p; _ } -> (
              match Proto.decode_status p with
              | Ok st ->
                  Ok
                    {
                      r_stdout = Buffer.contents out;
                      r_stderr = st.Proto.st_stderr;
                      r_code = st.Proto.st_code;
                    }
              | Error msg -> proto_error c (Printf.sprintf "bad status payload: %s" msg))
          | Ok { Wire.f_kind = Wire.Error_frame; f_payload = p; _ } -> (
              match Proto.decode_error p with
              | Ok e -> Error e
              | Error msg -> proto_error c (Printf.sprintf "bad error payload: %s" msg))
          | Ok { Wire.f_kind = Wire.Request; _ } ->
              proto_error c "server sent a request frame"
        in
        recv ()
  end

(* ------------------------------------------------------------------ *)
(* Submission with overload backoff                                    *)
(* ------------------------------------------------------------------ *)

(* Jitter source for the backoff below.  Seeded per-process: submitting
   clients should NOT back off in lockstep — a thundering herd that
   rejected together would otherwise retry together, forever. *)
let jitter_rng = lazy (Rng.create (0xC11E lxor Unix.getpid ()))

let hinted_backoff_ms e =
  match List.assoc_opt "retry_after_ms" e.Err.err_ctx with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> 25)
  | None -> 25

let submit ?(retries = 0) ?(retry_max_ms = 2_000) ?on_chunk c req =
  let rec go attempt =
    match request ?on_chunk c req with
    | Ok r -> Ok r
    | Error e when e.Err.err_kind = Err.Overloaded && attempt < retries ->
        (* The server's hint is the floor; exponential growth plus
           jitter spreads concurrent clients, [retry_max_ms] caps the
           total per-wait.  The rejected request never started (bounded
           admission rejects before dispatch), so resubmitting cannot
           duplicate work. *)
        let base = hinted_backoff_ms e in
        let exp = float_of_int base *. (2.0 ** float_of_int attempt) in
        let jit = Rng.float (Lazy.force jitter_rng) *. float_of_int base in
        let wait_ms = Float.min (exp +. jit) (float_of_int retry_max_ms) in
        Thread.delay (wait_ms /. 1000.0);
        go (attempt + 1)
    | Error e -> Error e
  in
  go 0
