(* Blocking client for the job server: one connection, sequential
   requests, monotonically increasing request ids.  Used by [socet
   submit] and the test/bench harnesses. *)

module Err = Socet_util.Error

type t = { c_fd : Unix.file_descr; mutable c_next_id : int; mutable c_closed : bool }

type reply = { r_stdout : string; r_stderr : string; r_code : int }

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { c_fd = fd; c_next_id = 1; c_closed = false }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Err.error ~engine:"client"
        ~ctx:[ ("socket", socket) ]
        (Printf.sprintf "cannot connect: %s" (Unix.error_message e))

let close c =
  if not c.c_closed then begin
    c.c_closed <- true;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

let proto_error c msg =
  close c;
  Err.error ~engine:"client" ~kind:Err.Internal msg

let request ?on_chunk c req =
  if c.c_closed then Err.error ~engine:"client" "connection is closed"
  else begin
    let id = c.c_next_id in
    c.c_next_id <- id + 1;
    match Wire.write_frame c.c_fd (Wire.request ~id (Proto.encode req)) with
    | exception Unix.Unix_error (e, _, _) ->
        proto_error c (Printf.sprintf "send failed: %s" (Unix.error_message e))
    | () ->
        let out = Buffer.create 1024 in
        let rec recv () =
          match Wire.read_frame c.c_fd with
          | Error `Eof -> proto_error c "server closed the connection mid-request"
          | Error (`Corrupt msg) -> proto_error c (Printf.sprintf "corrupt reply: %s" msg)
          | Ok fr when fr.Wire.f_id <> id ->
              proto_error c
                (Printf.sprintf "reply id %d does not match request id %d" fr.Wire.f_id id)
          | Ok { Wire.f_kind = Wire.Chunk; f_payload = p; _ } ->
              Buffer.add_string out p;
              Option.iter (fun f -> f p) on_chunk;
              recv ()
          | Ok { Wire.f_kind = Wire.Response; f_payload = p; _ } -> (
              match Proto.decode_status p with
              | Ok st ->
                  Ok
                    {
                      r_stdout = Buffer.contents out;
                      r_stderr = st.Proto.st_stderr;
                      r_code = st.Proto.st_code;
                    }
              | Error msg -> proto_error c (Printf.sprintf "bad status payload: %s" msg))
          | Ok { Wire.f_kind = Wire.Error_frame; f_payload = p; _ } -> (
              match Proto.decode_error p with
              | Ok e -> Error e
              | Error msg -> proto_error c (Printf.sprintf "bad error payload: %s" msg))
          | Ok { Wire.f_kind = Wire.Request; _ } ->
              proto_error c "server sent a request frame"
        in
        recv ()
  end
