(* One forked worker process: the crash-isolation unit of the fleet.

   Parent and child share a socketpair speaking {!Wire} frames: the
   parent writes one Request frame (a {!Proto} payload) per job, the
   child answers with one Response frame (an encoded {!Dispatch.outcome})
   or one Error_frame (an encoded [Error.t]) and waits for the next.

   The child is a fresh execution context by construction: the parent
   forks and immediately re-execs its own binary (the [exec_guard] env
   marker routes the new image into [child_loop]), so the worker owns a
   brand-new runtime, heap, obs registry and domain sub-pool, and an
   engine crash — segfault, OOM kill, uncaught signal, [_exit] — takes
   down only this process.  The supervisor sees EOF on the socketpair
   and recovers; the server never shares an address space with a job. *)

module Err = Socet_util.Error
module Json = Socet_obs.Json

type t = {
  w_pid : int;
  w_fd : Unix.file_descr;  (* parent's end of the socketpair *)
  w_spawned_us : float;
  mutable w_next_id : int;
}

let now_us () = Unix.gettimeofday () *. 1e6

(* ------------------------------------------------------------------ *)
(* Outcome codec (supervisor <-> worker only; never client-facing)     *)
(* ------------------------------------------------------------------ *)

let encode_outcome (o : Dispatch.outcome) =
  Json.to_string
    (Json.Obj
       [
         ("stdout", Json.Str o.Dispatch.o_stdout);
         ("stderr", Json.Str o.Dispatch.o_stderr);
         ("code", Json.Num (float_of_int o.Dispatch.o_code));
       ])

let decode_outcome s =
  let ( let* ) = Result.bind in
  let* j = Json.of_string s in
  let get_str k = Option.bind (Json.member k j) Json.to_str in
  let* code =
    match Option.bind (Json.member "code" j) Json.to_float with
    | Some f -> Ok (int_of_float f)
    | None -> Error "outcome missing code"
  in
  Ok
    {
      Dispatch.o_stdout = Option.value ~default:"" (get_str "stdout");
      o_stderr = Option.value ~default:"" (get_str "stderr");
      o_code = code;
    }

(* ------------------------------------------------------------------ *)
(* Child side                                                          *)
(* ------------------------------------------------------------------ *)

let child_loop fd =
  let rec loop () =
    match Wire.read_frame fd with
    | Error (`Eof | `Corrupt _) -> ()  (* supervisor gone or stream dead *)
    | Ok { Wire.f_kind = Wire.Request; f_id = id; f_payload = payload; _ } -> (
        let reply =
          match Proto.decode payload with
          | Error msg ->
              Wire.error ~id
                (Proto.encode_error
                   (Err.make ~engine:"serve.worker"
                      (Printf.sprintf "bad job payload: %s" msg)))
          | Ok req -> (
              match Dispatch.run req with
              | Ok o -> Wire.response ~id (encode_outcome o)
              | Error e -> Wire.error ~id (Proto.encode_error e))
        in
        match Wire.write_frame fd reply with
        | () -> loop ()
        | exception Unix.Unix_error _ -> ())
    | Ok _ -> ()  (* protocol violation from our own parent: give up *)
  in
  (try loop () with _ -> ());
  (* [_exit], not [exit]: at_exit handlers (pool teardown, test runner
     finalizers) belong to the supervising server, not to a worker. *)
  Unix._exit 0

let worker_env_var = "SOCET_WORKER_SLOT"

let exec_guard () =
  match Sys.getenv_opt worker_env_var with
  | None -> ()
  | Some share ->
      (* Ignored dispositions survive exec, so a server-spawned worker
         already ignores SIGPIPE — but a worker exec'd by hand (or by a
         test binary) must not die writing to a closed supervisor. *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      (match int_of_string_opt share with
      | Some n when n >= 1 -> Socet_util.Pool.set_size n
      | _ -> ());
      child_loop Unix.stdin

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)
(* ------------------------------------------------------------------ *)

(* Fork AND exec, never fork alone.  A child forked from a thread of a
   running multi-threaded OCaml 5 program inherits runtime state (domain
   lock, backup-thread handshake) that other threads may have held at
   fork time; its first blocking section can then deadlock forever —
   observed in practice on respawns from the monitor thread, where the
   fresh worker parked on a futex before its first [read].  Exec resets
   the runtime wholesale, so between fork and exec the child runs only
   raw syscall wrappers (dup2, execve) — no allocation-heavy OCaml, no
   blocking sections.

   The job pipe travels as the child's stdin (the one fd every exec'd
   image is guaranteed to have); everything else server-side is marked
   close-on-exec at creation, so the new image starts clean without any
   cleanup code running in the forked limbo. *)
let spawn ?(pool_share = 1) () =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec parent_fd;
  let exe = Sys.executable_name in
  let marker = worker_env_var ^ "=" ^ string_of_int pool_share in
  let env =
    Array.append
      (Array.of_list
         (List.filter
            (fun s -> not (String.starts_with ~prefix:(worker_env_var ^ "=") s))
            (Array.to_list (Unix.environment ()))))
      [| marker |]
  in
  let argv = [| exe; "__worker" |] in
  match Unix.fork () with
  | 0 ->
      (try
         Unix.dup2 child_fd Unix.stdin;
         Unix.execve exe argv env
       with _ -> ());
      Unix._exit 127
  | pid ->
      (try Unix.close child_fd with Unix.Unix_error _ -> ());
      { w_pid = pid; w_fd = parent_fd; w_spawned_us = now_us (); w_next_id = 1 }

let pid w = w.w_pid
let fd w = w.w_fd
let uptime_ms w = int_of_float ((now_us () -. w.w_spawned_us) /. 1000.0)

let send w req =
  let id = w.w_next_id in
  w.w_next_id <- id + 1;
  Wire.write_frame w.w_fd (Wire.request ~id (Proto.encode req))

type reply = (Dispatch.outcome, Err.t) result

let recv w : (reply, [ `Lost of string ]) result =
  match Wire.read_frame w.w_fd with
  (* A SIGKILLed peer on a socketpair can surface as ECONNRESET rather
     than a clean EOF; either way the channel is dead, not the job. *)
  | exception Unix.Unix_error (e, _, _) ->
      Error (`Lost (Printf.sprintf "read from worker failed: %s" (Unix.error_message e)))
  | Error `Eof -> Error (`Lost "worker closed the pipe")
  | Error (`Corrupt msg) -> Error (`Lost msg)
  | Ok { Wire.f_kind = Wire.Response; f_payload = p; _ } -> (
      match decode_outcome p with
      | Ok o -> Ok (Ok o)
      | Error msg -> Error (`Lost (Printf.sprintf "bad outcome payload: %s" msg)))
  | Ok { Wire.f_kind = Wire.Error_frame; f_payload = p; _ } -> (
      match Proto.decode_error p with
      | Ok e -> Ok (Error e)
      | Error msg -> Error (`Lost (Printf.sprintf "bad error payload: %s" msg)))
  | Ok _ -> Error (`Lost "unexpected frame kind from worker")

let ignoring_unix f = try f () with Unix.Unix_error _ -> ()

(* Reap without blocking forever: after SIGKILL the exit is prompt, but
   a pid that was never signalled (or was already reaped) must not hang
   the supervisor. *)
let reap pid =
  let rec go tries =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ when tries > 0 ->
        Thread.delay 0.005;
        go (tries - 1)
    | 0, _ -> ignoring_unix (fun () -> ignore (Unix.waitpid [] pid))
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go tries
  in
  go 400

let kill w =
  ignoring_unix (fun () -> Unix.kill w.w_pid Sys.sigkill);
  ignoring_unix (fun () -> Unix.close w.w_fd);
  reap w.w_pid

(* The worker died on its own (EOF): close our end and reap. *)
let forget w =
  ignoring_unix (fun () -> Unix.close w.w_fd);
  (* SIGKILL is a no-op on an already-dead pid but guarantees [reap]
     terminates if the EOF came from a still-running child that merely
     closed its socket. *)
  ignoring_unix (fun () -> Unix.kill w.w_pid Sys.sigkill);
  reap w.w_pid

(* Graceful retirement at drain time: closing the socketpair is the
   shutdown signal ([child_loop] sees EOF and [_exit]s 0). *)
let stop w =
  ignoring_unix (fun () -> Unix.close w.w_fd);
  reap w.w_pid

(* Non-blocking liveness probe for an {e idle} worker: true once the
   child has exited (reaping the zombie as a side effect — pair with
   [forget] to close the pipe).  Never blocks, so the supervisor's
   monitor can poll it under its lock. *)
let dead w =
  match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
  | 0, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
  | exception Unix.Unix_error (_, _, _) -> false

let sigstop w = ignoring_unix (fun () -> Unix.kill w.w_pid Sys.sigstop)

(* Signal only — the pipe stays open so the death surfaces to the
   supervisor as EOF, exactly like an organic crash.  Chaos injection
   must use this, not [kill]: closing our fd here would make the
   watchdog's select fail with EBADF instead of observing the loss. *)
let sigkill w = ignoring_unix (fun () -> Unix.kill w.w_pid Sys.sigkill)
