(** Supervision layer for the worker fleet (DESIGN.md §13).

    Owns [workers] crash-isolated {!Worker} processes and guarantees
    that an admitted job either returns its byte-exact outcome or a
    structured error — never silently disappears, never takes the server
    down:

    - {b Crash isolation.}  Jobs run in fork+exec'd processes (fresh
      images of the host executable — see {!Worker.exec_guard}) with
      private heaps and domain sub-pools; a segfault, OOM kill or chaos
      SIGKILL is EOF on one pipe, observed only by the supervisor.  A
      worker that dies {e between} jobs is caught by the monitor's
      non-blocking waitpid poll ({!Worker.dead}) rather than waiting
      for the next job to trip over the corpse.
    - {b Retry.}  Jobs are deterministic and idempotent
      ({!Dispatch.run} is a pure function of the request), so a job
      lost to a worker death or hang is re-run on a fresh worker and
      returns byte-identical bytes.  Bounded by [max_retries]; beyond
      it the client gets a structured [Internal] error with
      [ctx error=worker_lost] ("WorkerLost").  A worker that dies
      {e idle} (before the job reached it) costs no retry budget.
    - {b Watchdog.}  A dispatched job must answer within its deadline
      plus [grace_ms] (or [stall_timeout_ms] when undeadlined); past
      that the worker is SIGKILLed and the job retried.
    - {b Respawn with backoff.}  Dead slots respawn after
      [backoff_base_ms * 2^(streak-1)] plus deterministic jitter,
      capped at [backoff_max_ms].
    - {b Circuit breaker.}  [breaker_crashes] crashes within
      [breaker_window_ms] stop all respawning and invoke [on_trip] —
      the server drains and exits 5.  {!exec} then fails fast with a
      retriable [Overloaded] error.

    Observability: [serve.worker.crashes], [serve.worker.respawns],
    [serve.job.retries] counters, and the per-slot state snapshot
    {!health} behind the wire [Health] request. *)

type config = {
  workers : int;
  max_retries : int;  (** re-runs per job after a worker loss *)
  stall_timeout_ms : int;  (** watchdog for jobs without a deadline *)
  grace_ms : int;  (** watchdog slack past a job's own deadline *)
  backoff_base_ms : int;
  backoff_max_ms : int;
  breaker_window_ms : int;
  breaker_crashes : int;  (** crashes in the window that trip the breaker *)
}

val default_config : config
(** 4 workers, 2 retries, 30s stall watchdog, 2s deadline grace, 50ms
    base / 2s cap backoff, breaker at 8 crashes in 10s. *)

type t

val create : ?config:config -> ?on_trip:(unit -> unit) -> unit -> t
(** Spawn the fleet (each worker's domain sub-pool is
    [Pool.size () / workers], at least 1) and start the respawn monitor
    thread.  [on_trip] runs once when the circuit breaker opens.
    @raise Invalid_argument when [config.workers < 1]. *)

val exec : t -> Proto.t -> (Dispatch.outcome, Socet_util.Error.t) result
(** Run one job on an idle worker (blocking for one if all are busy or
    respawning), retrying per the config on worker loss.  Called
    concurrently by the queue's executor threads.  Chaos sites
    ["serve.worker.kill"] / ["serve.worker.stall"] fire here,
    parent-side, faulting the chosen worker between dispatch and
    reply. *)

val health : t -> Proto.worker_health list * bool
(** Per-slot snapshot plus whether the breaker is open. *)

val breaker_open : t -> bool

val retries_total : t -> int
(** Lifetime job retries (the intrinsic count behind the
    [serve.job.retries] obs counter — live even when obs is off). *)

val stop : t -> unit
(** Join the monitor, retire every worker (close its pipe — the child
    sees EOF and exits 0 — then reap).  Call only after the queue has
    drained: no {!exec} may be in flight. *)
