(* Length-prefixed, versioned binary framing.

   Every frame is a fixed 22-byte header followed by an opaque payload:

     offset  size  field
     0       4     magic "SCET"
     4       1     protocol version (PROTOCOL_VERSION)
     5       1     frame kind (0 request, 1 response, 2 chunk, 3 error)
     6       8     request id, big-endian (echoed by the server)
     14      4     chunk sequence number, big-endian (0 outside chunks)
     18      4     payload length N, big-endian
     22      N     payload bytes

   The codec is pure (Bytes in, Bytes out); the fd helpers below are the
   only I/O and loop over partial reads/writes and EINTR. *)

type kind = Request | Response | Chunk | Error_frame

type frame = { f_kind : kind; f_id : int; f_seq : int; f_payload : string }

let protocol_version = 1
let header_size = 22
let magic = "SCET"

(* Generous but finite: a corrupt length field must not look like a
   near-infinite allocation request. *)
let max_payload = 1 lsl 26

let kind_code = function
  | Request -> 0
  | Response -> 1
  | Chunk -> 2
  | Error_frame -> 3

let kind_of_code = function
  | 0 -> Some Request
  | 1 -> Some Response
  | 2 -> Some Chunk
  | 3 -> Some Error_frame
  | _ -> None

let request ~id payload = { f_kind = Request; f_id = id; f_seq = 0; f_payload = payload }
let response ~id payload = { f_kind = Response; f_id = id; f_seq = 0; f_payload = payload }
let chunk ~id ~seq payload = { f_kind = Chunk; f_id = id; f_seq = seq; f_payload = payload }
let error ~id payload = { f_kind = Error_frame; f_id = id; f_seq = 0; f_payload = payload }

let encode fr =
  let n = String.length fr.f_payload in
  if n > max_payload then
    invalid_arg (Printf.sprintf "Wire.encode: payload %d exceeds max %d" n max_payload);
  if fr.f_id < 0 then invalid_arg "Wire.encode: negative frame id";
  if fr.f_seq < 0 then invalid_arg "Wire.encode: negative chunk sequence";
  let b = Bytes.create (header_size + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 protocol_version;
  Bytes.set_uint8 b 5 (kind_code fr.f_kind);
  Bytes.set_int64_be b 6 (Int64.of_int fr.f_id);
  Bytes.set_int32_be b 14 (Int32.of_int fr.f_seq);
  Bytes.set_int32_be b 18 (Int32.of_int n);
  Bytes.blit_string fr.f_payload 0 b header_size n;
  b

(* Header parse shared by [decode] and [read_frame]: the buffer holds at
   least [header_size] bytes at [pos]. *)
let decode_header b pos =
  if Bytes.sub_string b pos 4 <> magic then Error (`Corrupt "bad magic")
  else
    let version = Bytes.get_uint8 b (pos + 4) in
    if version <> protocol_version then
      Error (`Corrupt (Printf.sprintf "protocol version %d, expected %d" version protocol_version))
    else
      match kind_of_code (Bytes.get_uint8 b (pos + 5)) with
      | None ->
          Error (`Corrupt (Printf.sprintf "unknown frame kind %d" (Bytes.get_uint8 b (pos + 5))))
      | Some kind ->
          let id = Int64.to_int (Bytes.get_int64_be b (pos + 6)) in
          let seq = Int32.to_int (Bytes.get_int32_be b (pos + 14)) in
          let len = Int32.to_int (Bytes.get_int32_be b (pos + 18)) in
          if id < 0 then Error (`Corrupt "negative frame id")
          else if seq < 0 then Error (`Corrupt "negative chunk sequence")
          else if len < 0 || len > max_payload then
            Error (`Corrupt (Printf.sprintf "payload length %d out of range" len))
          else Ok (kind, id, seq, len)

let decode b ~pos =
  let avail = Bytes.length b - pos in
  if pos < 0 || pos > Bytes.length b then invalid_arg "Wire.decode: pos out of range";
  if avail < header_size then Error `Truncated
  else
    match decode_header b pos with
    | Error _ as e -> e
    | Ok (kind, id, seq, len) ->
        if avail < header_size + len then Error `Truncated
        else
          let payload = Bytes.sub_string b (pos + header_size) len in
          Ok ({ f_kind = kind; f_id = id; f_seq = seq; f_payload = payload }, header_size + len)

(* ------------------------------------------------------------------ *)
(* Framed I/O over file descriptors                                    *)
(* ------------------------------------------------------------------ *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd b pos len with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (pos + n) (len - n)
  end

let write_frame fd fr =
  let b = encode fr in
  write_all fd b 0 (Bytes.length b)

(* [Ok false] = clean EOF before the first byte; [Ok true] = filled. *)
let read_all fd b len =
  let rec go pos =
    if pos >= len then Ok true
    else
      match Unix.read fd b pos (len - pos) with
      | 0 -> if pos = 0 then Ok false else Error (`Corrupt "truncated frame (EOF mid-frame)")
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create header_size in
  match read_all fd hdr header_size with
  | Error _ as e -> e
  | Ok false -> Error `Eof
  | Ok true -> (
      match decode_header hdr 0 with
      | Error _ as e -> e
      | Ok (kind, id, seq, len) -> (
          let payload = Bytes.create len in
          match read_all fd payload len with
          | Error _ as e -> e
          | Ok false when len > 0 -> Error (`Corrupt "truncated frame (EOF mid-frame)")
          | Ok _ ->
              Ok { f_kind = kind; f_id = id; f_seq = seq; f_payload = Bytes.to_string payload }))
