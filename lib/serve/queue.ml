(* Admission-controlled FIFO job queue.

   Shape: bounded admission (reject, don't block), [executors] dispatcher
   threads draining in submission order, each job free to fan out
   internally across the [Socet_util.Pool] domains.

   Determinism: with one executor (the default) a job sees the same
   pool, in the same state, as a direct CLI run.  With several, the
   thunk must itself be an isolated execution — the supervised worker
   fleet qualifies: each concurrent job runs in its own forked process
   with a private heap, obs registry and domain sub-pool, so jobs still
   cannot interleave state, only wall clock. *)

module Err = Socet_util.Error
module Obs = Socet_obs.Obs

let c_accepted = Obs.counter ~scope:"serve" "jobs.accepted"
let c_rejected = Obs.counter ~scope:"serve" "jobs.rejected"
let c_completed = Obs.counter ~scope:"serve" "jobs.completed"
let c_failed = Obs.counter ~scope:"serve" "jobs.failed"
let g_depth = Obs.gauge ~scope:"serve" "queue.depth"
let h_wait = Obs.histogram ~scope:"serve" "queue.wait_ms"
let h_latency = Obs.histogram ~scope:"serve" "queue.latency_ms"

type job_info = {
  ji_label : string;
  ji_enqueued_us : float;  (** absolute wall clock, microseconds *)
  ji_wait_us : float;  (** time spent queued before dispatch *)
  ji_run_us : float;  (** time spent executing *)
  ji_code : int;  (** outcome exit code, or [Error.exit_code] on failure *)
  ji_ok : bool;
}

type job = {
  j_label : string;
  j_deadline_us : float option;  (* absolute; checked again at dispatch *)
  j_thunk : unit -> (Dispatch.outcome, Err.t) result;
  j_enq_us : float;
  j_mu : Mutex.t;
  j_cv : Condition.t;
  mutable j_result : (Dispatch.outcome, Err.t) result option;
}

type ticket = job

type t = {
  q_mu : Mutex.t;
  q_cv : Condition.t;  (* dispatcher wakeup: new job or drain *)
  q_jobs : job Stdlib.Queue.t;
  q_depth : int;
  q_on_done : (job_info -> unit) option;
  mutable q_pending : int;
  mutable q_accepting : bool;
  mutable q_avg_run_ms : float;  (* EWMA, feeds the backoff hint *)
  mutable q_threads : Thread.t list;
}

let now_us () = Unix.gettimeofday () *. 1e6

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let fulfill job result =
  locked job.j_mu (fun () ->
      job.j_result <- Some result;
      Condition.broadcast job.j_cv)

let run_one q job =
  let start_us = now_us () in
  let wait_us = start_us -. job.j_enq_us in
  let result =
    match job.j_deadline_us with
    | Some dl when start_us >= dl ->
        (* Expired while queued: the engines never start.  Same structured
           error (and exit code 4) a mid-engine deadline produces. *)
        Error
          (Err.make ~kind:Err.Exhausted ~engine:"serve"
             ~ctx:
               [
                 ("job", job.j_label);
                 ("queued_ms", Printf.sprintf "%.1f" (wait_us /. 1000.0));
               ]
             "deadline expired while queued")
    | _ -> (
        try job.j_thunk () with
        | Err.Socet_error e -> Error e
        | e -> Error (Err.make ~kind:Err.Internal ~engine:"serve" (Printexc.to_string e)))
  in
  let end_us = now_us () in
  let run_us = end_us -. start_us in
  let code = match result with Ok o -> o.Dispatch.o_code | Error e -> Err.exit_code e in
  (match result with
  | Ok _ ->
      Obs.incr c_completed;
      q.q_avg_run_ms <- (0.8 *. q.q_avg_run_ms) +. (0.2 *. run_us /. 1000.0)
  | Error _ -> Obs.incr c_failed);
  Obs.observe h_wait (wait_us /. 1000.0);
  Obs.observe h_latency ((end_us -. job.j_enq_us) /. 1000.0);
  fulfill job result;
  Option.iter
    (fun f ->
      f
        {
          ji_label = job.j_label;
          ji_enqueued_us = job.j_enq_us;
          ji_wait_us = wait_us;
          ji_run_us = run_us;
          ji_code = code;
          ji_ok = Result.is_ok result;
        })
    q.q_on_done

let dispatcher q () =
  let rec loop () =
    Mutex.lock q.q_mu;
    while q.q_accepting && Stdlib.Queue.is_empty q.q_jobs do
      Condition.wait q.q_cv q.q_mu
    done;
    if Stdlib.Queue.is_empty q.q_jobs then Mutex.unlock q.q_mu (* draining, done *)
    else begin
      let job = Stdlib.Queue.pop q.q_jobs in
      q.q_pending <- q.q_pending - 1;
      Obs.set_gauge g_depth q.q_pending;
      Mutex.unlock q.q_mu;
      run_one q job;
      loop ()
    end
  in
  loop ()

let create ?(depth = 64) ?(executors = 1) ?on_done () =
  if depth < 1 then invalid_arg "Serve.Queue.create: depth must be >= 1";
  if executors < 1 then invalid_arg "Serve.Queue.create: executors must be >= 1";
  let q =
    {
      q_mu = Mutex.create ();
      q_cv = Condition.create ();
      q_jobs = Stdlib.Queue.create ();
      q_depth = depth;
      q_on_done = on_done;
      q_pending = 0;
      q_accepting = true;
      q_avg_run_ms = 0.0;
      q_threads = [];
    }
  in
  q.q_threads <- List.init executors (fun _ -> Thread.create (dispatcher q) ());
  q

(* Until the EWMA has seen a completion, assume a job costs this much:
   a cold server hinting 0ms-per-job would send early clients into a
   hot retry loop against a queue that cannot possibly have drained. *)
let cold_run_ms = 50.0

let retry_after_ms q =
  (* Suggested backoff: roughly the time the current backlog needs to
     clear, floored so clients never spin. *)
  let per_job = if q.q_avg_run_ms > 0.0 then q.q_avg_run_ms else cold_run_ms in
  max 25 (int_of_float (per_job *. float_of_int (q.q_pending + 1)))

let overloaded q msg =
  Obs.incr c_rejected;
  Error
    (Err.make ~kind:Err.Overloaded ~engine:"serve"
       ~ctx:
         [
           ("retry_after_ms", string_of_int (retry_after_ms q));
           ("depth", string_of_int q.q_depth);
           ("pending", string_of_int q.q_pending);
         ]
       msg)

let submit q ~label ?deadline_us thunk =
  locked q.q_mu (fun () ->
      if not q.q_accepting then overloaded q "server is draining"
      else if q.q_pending >= q.q_depth then overloaded q "job queue full"
      else begin
        let job =
          {
            j_label = label;
            j_deadline_us = deadline_us;
            j_thunk = thunk;
            j_enq_us = now_us ();
            j_mu = Mutex.create ();
            j_cv = Condition.create ();
            j_result = None;
          }
        in
        Stdlib.Queue.push job q.q_jobs;
        q.q_pending <- q.q_pending + 1;
        Obs.incr c_accepted;
        Obs.set_gauge g_depth q.q_pending;
        Condition.signal q.q_cv;
        Ok job
      end)

let await job =
  locked job.j_mu (fun () ->
      while Option.is_none job.j_result do
        Condition.wait job.j_cv job.j_mu
      done;
      Option.get job.j_result)

let pending q = locked q.q_mu (fun () -> q.q_pending)
let depth q = q.q_depth

let drain q =
  let join =
    locked q.q_mu (fun () ->
        let was_accepting = q.q_accepting in
        q.q_accepting <- false;
        Condition.broadcast q.q_cv;
        if was_accepting then q.q_threads else [])
  in
  List.iter Thread.join join
