(** Blocking client for the job server.

    One connection carries a sequence of requests; each request blocks
    until its terminal frame.  Server-side failures (bad request,
    overload, queue deadline) come back as the server's structured
    [Socet_util.Error.t] — an [Overloaded] reply carries the
    [retry_after_ms] hint in its context, and [Error.exit_code] maps any
    of them to the documented CLI exit code. *)

type t

type reply = {
  r_stdout : string;  (** byte-identical to the direct CLI's stdout *)
  r_stderr : string;
  r_code : int;  (** the exit code the direct CLI would have returned *)
}

val connect : string -> (t, Socet_util.Error.t) result
(** Connect to a server socket path. *)

val request : ?on_chunk:(string -> unit) -> t -> Proto.t -> (reply, Socet_util.Error.t) result
(** Send one request and block for the reply.  [on_chunk] observes each
    stdout chunk as it arrives (the full stdout is still accumulated in
    [r_stdout]).  Protocol violations (corrupt frame, id mismatch,
    truncated stream) return an [Internal] error and close the
    connection; server-reported errors leave it usable. *)

val submit :
  ?retries:int ->
  ?retry_max_ms:int ->
  ?on_chunk:(string -> unit) ->
  t ->
  Proto.t ->
  (reply, Socet_util.Error.t) result
(** {!request}, but an [Overloaded] rejection is retried up to [retries]
    times (default 0 — identical to {!request}): each wait starts from
    the server's [retry_after_ms] hint, grows exponentially, adds
    per-process jitter so concurrent clients spread out, and is capped
    at [retry_max_ms] (default 2000).  A rejected request never started,
    so resubmission cannot duplicate work.  Other errors are returned
    immediately; the connection stays usable across retries. *)

val close : t -> unit
(** Close the connection.  Idempotent. *)
