open Socet_core
module Backend = Socet_tam.Backend
module Err = Socet_util.Error
module Budget = Socet_util.Budget
module Ascii_table = Socet_util.Ascii_table
module Obs = Socet_obs.Obs

type outcome = { o_stdout : string; o_stderr : string; o_code : int }

let exit_exhausted = 4

let ok ?(stderr = "") ?(code = 0) out = Ok { o_stdout = out; o_stderr = stderr; o_code = code }

(* ------------------------------------------------------------------ *)
(* Shared input resolution (also used by the CLI subcommands)          *)
(* ------------------------------------------------------------------ *)

let builtin_cores () =
  [
    ("cpu", Socet_cores.Cpu.core ());
    ("preprocessor", Socet_cores.Preprocessor.core ());
    ("display", Socet_cores.Display.core ());
    ("gcd", Socet_cores.Gcd_core.core ());
    ("graphics", Socet_cores.Graphics.core ());
    ("x25", Socet_cores.X25.core ());
  ]

(* Load-time validation: every elaborated core netlist goes through the
   structural validator before any engine touches it, so corruption is
   reported as a clean exit-code-3 failure naming the net, not a crash
   deep inside ATPG or scheduling. *)
let validated soc =
  List.iter
    (fun ci -> Socet_netlist.Validate.check_exn ci.Soc.ci_netlist)
    soc.Soc.insts;
  soc

let system_of_name name =
  match name with
  | "system1" | "1" | "barcode" -> Ok (validated (Socet_cores.Systems.system1 ()))
  | "system2" | "2" -> Ok (validated (Socet_cores.Systems.system2 ()))
  | "system3" | "3" -> Ok (validated (Socet_cores.Systems.system3 ()))
  | s ->
      Err.error ~engine:"cli"
        (Printf.sprintf "unknown system %S (use system1/system2/system3)" s)

let core_of_name name =
  match List.assoc_opt name (builtin_cores ()) with
  | Some core -> Ok core
  | None ->
      Err.error ~engine:"cli"
        (Printf.sprintf "unknown core %S (try: %s)" name
           (String.concat ", " (List.map fst (builtin_cores ()))))

let ( let* ) = Result.bind

let deadline_s = function None -> None | Some ms -> Some (float_of_int ms /. 1000.0)

(* ------------------------------------------------------------------ *)
(* Request implementations                                             *)
(* ------------------------------------------------------------------ *)

let run_explore ~deadline_ms e =
  let* soc = system_of_name e.Proto.ex_system in
  let budget =
    match (e.Proto.ex_search_budget, deadline_ms) with
    | None, None -> None
    | steps, dl ->
        Some (Budget.create ~label:"select.opt" ?steps ?deadline_s:(deadline_s dl) ())
  in
  let use_memo = not e.Proto.ex_no_memo in
  let traj =
    match e.Proto.ex_objective with
    | Proto.Min_time ->
        Select.minimize_time ?budget ~use_memo soc ~max_area:e.Proto.ex_max_area
    | Proto.Min_area ->
        Select.minimize_area ?budget ~use_memo soc ~max_time:e.Proto.ex_max_time
  in
  let out = Buffer.create 1024 in
  Buffer.add_string out
    (Ascii_table.render
       ~header:[ "step"; "versions"; "muxes"; "area"; "TAT" ]
       (List.mapi
          (fun i p ->
            [
              string_of_int i;
              String.concat " "
                (List.map
                   (fun (n, k) -> Printf.sprintf "%s=%d" n k)
                   p.Select.pt_choice);
              string_of_int (List.length p.Select.pt_smuxes);
              string_of_int p.Select.pt_area;
              string_of_int p.Select.pt_time;
            ])
          traj));
  let best = Select.best_time_point traj in
  Buffer.add_string out
    (Printf.sprintf "best: area %d cells, TAT %d cycles\n" best.Select.pt_area
       best.Select.pt_time);
  match budget with
  | Some b when Budget.exhausted b ->
      ok (Buffer.contents out)
        ~stderr:"search budget exhausted; reporting best point found so far\n"
        ~code:exit_exhausted
  | _ -> ok (Buffer.contents out)

(* Both backends produce the same report shape; for ccg this renders the
   historical bytes exactly (DESIGN.md §11's byte-identity contract spans
   the backend seam too — CI diffs server output against the direct CLI). *)
let render_plan (p : Backend.plan) =
  let out = Buffer.create 1024 in
  Buffer.add_string out
    (Ascii_table.render
       ~header:[ "core"; "mechanism"; "test time"; "extra area" ]
       (List.map
          (fun (r : Backend.core_row) ->
            [
              r.Backend.r_inst;
              r.Backend.r_mech;
              string_of_int r.Backend.r_time;
              string_of_int r.Backend.r_area;
            ])
          p.Backend.p_rows));
  Buffer.add_string out
    (Printf.sprintf "total time: %d cycles, area overhead: %d cells\n"
       p.Backend.p_total_time p.Backend.p_area_overhead);
  if p.Backend.p_degraded > 0 then
    Buffer.add_string out
      (Printf.sprintf "degraded: %d core(s) fell back to FSCAN-BSCAN\n"
         p.Backend.p_degraded);
  Buffer.contents out

let run_chip ~deadline_ms c =
  let* soc = system_of_name c.Proto.ch_system in
  let budget =
    Option.map
      (fun s -> Budget.create ~label:"chip" ~deadline_s:s ())
      (deadline_s deadline_ms)
  in
  let (module B : Backend.CHIP_BACKEND) =
    match c.Proto.ch_backend with
    | Proto.Ccg -> (module Backend.Ccg_backend)
    | Proto.Tam -> (module Backend.Tam_backend)
  in
  let* p = B.plan ?budget soc in
  let out = render_plan p in
  if c.Proto.ch_strict && p.Backend.p_degraded > 0 then
    ok out
      ~stderr:
        (Printf.sprintf "socet: --strict and %d core(s) degraded to the baseline\n"
           p.Backend.p_degraded)
      ~code:exit_exhausted
  else ok out

let run_atpg a =
  let* core = core_of_name a.Proto.at_core in
  let nl = Socet_synth.Elaborate.core_to_netlist core in
  let faults = Socet_atpg.Fault.collapse nl in
  let stats = Socet_atpg.Podem.run nl in
  let out = Buffer.create 256 in
  Buffer.add_string out
    (Ascii_table.render
       ~header:[ "core"; "faults"; "vectors"; "FC %"; "TEff %"; "aborted" ]
       [
         [
           a.Proto.at_core;
           string_of_int (List.length faults);
           string_of_int (List.length stats.Socet_atpg.Podem.vectors);
           Printf.sprintf "%.1f" stats.Socet_atpg.Podem.coverage;
           Printf.sprintf "%.1f" stats.Socet_atpg.Podem.efficiency;
           string_of_int (List.length stats.Socet_atpg.Podem.aborted);
         ];
       ]);
  ok (Buffer.contents out)

let run req =
  let deadline_ms = req.Proto.rq_deadline_ms in
  let dispatch_body () =
    match req.Proto.rq_body with
    | Proto.Ping -> ok (Proto.version_lines ())
    | Proto.Stats -> ok (Obs.stats_json () ^ "\n")
    | Proto.Health ->
        (* Only the server can see the fleet; answered in [Server] before
           the queue.  Reaching here means a direct [Dispatch.run] call. *)
        ok (Proto.encode_health
              {
                Proto.hl_uptime_ms = 0;
                hl_queue_depth = 0;
                hl_pending = 0;
                hl_workers = [];
                hl_breaker_open = false;
                hl_retries = 0;
              }
            ^ "\n")
    | Proto.Explore e -> run_explore ~deadline_ms e
    | Proto.Chip c -> run_chip ~deadline_ms c
    | Proto.Atpg a -> run_atpg a
  in
  (* The request's cache directory is scoped to this execution: opened
     first (a bad directory is a structured Validation error — exit code
     3 at the client, like any other input error) and restored after, so
     one cached request never leaks a store into the next. *)
  let dispatch () =
    let* store =
      match req.Proto.rq_cache with
      | None -> Ok None
      | Some dir -> Result.map Option.some (Socet_cache.Cache.open_dir dir)
    in
    Socet_cache.Cache.with_store store dispatch_body
  in
  (* Boundary adapter: no input, however corrupt, escapes as an uncaught
     exception — raw exceptions become structured [Internal] errors and a
     budget blowing through an engine's cooperative check maps to
     [Exhausted] (exit code 4), same as the direct CLI. *)
  match Err.guard ~engine:"serve" dispatch with
  | Ok result -> result
  | Error e -> Error e
  | exception Budget.Exhausted_exn label ->
      Error
        (Err.make ~kind:Err.Exhausted ~engine:"serve"
           (Printf.sprintf "budget %s exhausted" label))
  | exception e ->
      Error (Err.make ~kind:Err.Internal ~engine:"serve" (Printexc.to_string e))
