(** The one engine driver behind both the CLI subcommands and the server.

    [socet explore]/[socet chip]/[socet atpg] render through this module
    and the server runs the same function for the matching request — so a
    response streamed through the server is byte-identical to the direct
    CLI's stdout/stderr for the same request, at any domain count, {e by
    construction} rather than by parallel maintenance of two renderers
    (asserted end-to-end in [test/test_serve.ml] and the CI serve job).

    The per-request deadline and [Explore]'s [search_budget] thread into
    [Socet_util.Budget]; exhaustion surfaces as the documented exit code
    4, either as a degraded-but-rendered outcome (explore's best-so-far
    trajectory) or as a structured [Exhausted] error. *)

type outcome = {
  o_stdout : string;  (** exactly what the direct CLI prints to stdout *)
  o_stderr : string;  (** exactly what the direct CLI prints to stderr *)
  o_code : int;  (** the documented process exit code (0, 4) *)
}

val run : Proto.t -> (outcome, Socet_util.Error.t) result
(** Execute one request to completion.  Never raises: engine errors and
    escaping exceptions come back as structured [Socet_util.Error.t]
    (mapped by [Error.exit_code] to the same status the direct CLI
    exits with). *)

(** {2 Shared input resolution}

    Exposed for the CLI subcommands that predate the server ([space],
    [coverage], ...), so "unknown system" is one structured
    [Invalid_input] error (exit code 3) everywhere. *)

val system_of_name : string -> (Socet_core.Soc.t, Socet_util.Error.t) result
(** Validated SOC ([Socet_netlist.Validate] has run on every core). *)

val core_of_name : string -> (Socet_rtl.Rtl_core.t, Socet_util.Error.t) result
val builtin_cores : unit -> (string * Socet_rtl.Rtl_core.t) list
