(* Wrapper/TAM co-optimization: best-fit-decreasing rectangle packing
   plus a budget-fuelled iterative-improvement pass (see schedule.mli). *)

module Soc = Socet_core.Soc
module Obs = Socet_obs.Obs
module Cache = Socet_cache.Cache
module Budget = Socet_util.Budget
module Interval_set = Socet_util.Interval_set
module Ascii_table = Socet_util.Ascii_table

type placement = {
  pl_inst : string;
  pl_width : int;
  pl_wire : int;
  pl_start : int;
  pl_time : int;
  pl_vectors : int;
  pl_wrapper : Wrapper.t;
}

type t = {
  t_soc : string;
  t_tam_width : int;
  t_placements : placement list;
  t_total_time : int;
  t_wrapper_cost : int;
  t_tam_cost : int;
  t_controller_cost : int;
  t_area_overhead : int;
  t_improve_steps : int;
  t_improve_gain : int;
}

let default_width = 16
let tam_wire_area = 4
let controller_base = 12
let controller_per_core = 2

let c_packs = Obs.counter ~scope:"tam" "schedule.packs"
let c_improve_steps = Obs.counter ~scope:"tam" "schedule.improve_steps"
let c_improve_accepts = Obs.counter ~scope:"tam" "schedule.improve_accepts"

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)
(* ------------------------------------------------------------------ *)

(* One rectangle to place: a core at its currently-allocated width. *)
type rect = { rc_inst : string; rc_vectors : int; rc_cand : Alloc.candidate }

(* Earliest cycle at which the wire band [s, s+w) is free for [len]
   consecutive cycles: iterate the per-wire first fits to a fixpoint
   (each pass only moves the start forward, so it terminates). *)
let band_fit wires ~s ~w ~len =
  let t = ref 0 and stable = ref false in
  while not !stable do
    stable := true;
    for k = s to s + w - 1 do
      let t' = Interval_set.first_fit wires.(k) ~earliest:!t ~len in
      if t' > !t then begin
        t := t';
        stable := false
      end
    done
  done;
  !t

(* Best-fit decreasing: tallest rectangle first (ties: wider first, then
   instance name), each placed at the earliest feasible start over all
   contiguous wire bands, lowest band on start ties. *)
let pack ~tam_width rects =
  Obs.incr c_packs;
  let order =
    List.sort
      (fun a b ->
        match compare b.rc_cand.Alloc.cd_time a.rc_cand.Alloc.cd_time with
        | 0 -> (
            match compare b.rc_cand.Alloc.cd_width a.rc_cand.Alloc.cd_width with
            | 0 -> compare a.rc_inst b.rc_inst
            | c -> c)
        | c -> c)
      rects
  in
  let wires = Array.make tam_width Interval_set.empty in
  let placements =
    List.map
      (fun r ->
        let w = r.rc_cand.Alloc.cd_width in
        let h = r.rc_cand.Alloc.cd_time in
        let len = max 1 h in
        let best = ref None in
        for s = 0 to tam_width - w do
          let t = band_fit wires ~s ~w ~len in
          match !best with
          | Some (bt, _) when bt <= t -> ()
          | _ -> best := Some (t, s)
        done;
        let start, wire =
          match !best with
          | Some (t, s) -> (t, s)
          | None ->
              (* w > tam_width cannot happen: Alloc caps candidate widths. *)
              invalid_arg "Tam.Schedule.pack: rectangle wider than the TAM"
        in
        for k = wire to wire + w - 1 do
          wires.(k) <- Interval_set.add wires.(k) ~lo:start ~hi:(start + len)
        done;
        {
          pl_inst = r.rc_inst;
          pl_width = w;
          pl_wire = wire;
          pl_start = start;
          pl_time = h;
          pl_vectors = r.rc_vectors;
          pl_wrapper = r.rc_cand.Alloc.cd_wrapper;
        })
      order
  in
  let makespan =
    List.fold_left (fun a p -> max a (p.pl_start + p.pl_time)) 0 placements
  in
  (placements, makespan)

(* ------------------------------------------------------------------ *)
(* Iterative improvement                                               *)
(* ------------------------------------------------------------------ *)

let area_of_widths rects =
  List.fold_left
    (fun a r -> a + r.rc_cand.Alloc.cd_wrapper.Wrapper.w_area)
    0 rects

(* While fuel lasts: re-allocate the core that finishes last to each of
   its alternative widths, re-pack, and keep the best strictly-smaller
   makespan (ties broken toward cheaper wrappers).  Every accepted move
   strictly shrinks the makespan, so the loop terminates even without a
   budget. *)
let improve ?budget ~tam_width ~cands rects placements makespan =
  let afford cost =
    match budget with
    | None -> true
    | Some b -> Budget.affordable ~cost b && Budget.spend ~cost b
  in
  let steps = ref 0 in
  let rec go rects placements makespan =
    let critical =
      List.fold_left
        (fun acc p ->
          match acc with
          | Some c
            when c.pl_start + c.pl_time > p.pl_start + p.pl_time
                 || (c.pl_start + c.pl_time = p.pl_start + p.pl_time
                    && c.pl_inst <= p.pl_inst) ->
              acc
          | _ -> Some p)
        None placements
    in
    match critical with
    | None -> (rects, placements, makespan)
    | Some crit ->
        let alts =
          List.filter
            (fun cd -> cd.Alloc.cd_width <> crit.pl_width)
            (List.assoc crit.pl_inst cands)
        in
        let cost = List.length rects in
        let trial cd =
          if not (afford cost) then None
          else begin
            incr steps;
            Obs.incr c_improve_steps;
            let rects' =
              List.map
                (fun r ->
                  if r.rc_inst = crit.pl_inst then { r with rc_cand = cd } else r)
                rects
            in
            let placements', makespan' = pack ~tam_width rects' in
            Some (rects', placements', makespan')
          end
        in
        let better (m1, a1) (m0, a0) = m1 < m0 || (m1 = m0 && a1 < a0) in
        let best =
          List.fold_left
            (fun acc cd ->
              match trial cd with
              | None -> acc
              | Some ((rects', _, m') as t) ->
                  let score = (m', area_of_widths rects') in
                  (match acc with
                  | Some (_, score0) when not (better score score0) -> acc
                  | _ -> Some (t, score)))
            None alts
        in
        (match best with
        | Some ((rects', placements', makespan'), score)
          when better score (makespan, area_of_widths rects) ->
            Obs.incr c_improve_accepts;
            if makespan' < makespan then go rects' placements' makespan'
            else (rects', placements', makespan')
        | _ -> (rects, placements, makespan))
  in
  let rects, placements, final = go rects placements makespan in
  (rects, placements, final, !steps)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let build_uncached ?budget ~width soc =
  let cands =
    List.map
      (fun ci -> (ci.Soc.ci_name, Alloc.candidates ci ~max_width:width))
      soc.Soc.insts
  in
  let rects =
    List.map
      (fun ci ->
        {
          rc_inst = ci.Soc.ci_name;
          rc_vectors = Soc.atpg_vectors ci;
          rc_cand = Alloc.fastest (List.assoc ci.Soc.ci_name cands);
        })
      soc.Soc.insts
  in
  let placements, makespan = pack ~tam_width:width rects in
  let rects, placements, final, steps =
    improve ?budget ~tam_width:width ~cands rects placements makespan
  in
  (* Report in SOC core order, whatever order the packer placed them. *)
  let placements =
    List.map
      (fun ci ->
        List.find (fun p -> p.pl_inst = ci.Soc.ci_name) placements)
      soc.Soc.insts
  in
  let wrapper_cost = area_of_widths rects in
  let tam_cost = tam_wire_area * width in
  let controller_cost =
    controller_base + (controller_per_core * List.length placements)
  in
  {
    t_soc = soc.Soc.soc_name;
    t_tam_width = width;
    t_placements = placements;
    t_total_time = final;
    t_wrapper_cost = wrapper_cost;
    t_tam_cost = tam_cost;
    t_controller_cost = controller_cost;
    t_area_overhead = wrapper_cost + tam_cost + controller_cost;
    t_improve_steps = steps;
    t_improve_gain = makespan - final;
  }

(* A TAM schedule is plain immutable data and a pure function of the
   SOC's content and the TAM width (the improve pass runs on its default
   deterministic fuel when no budget is given), so whole schedules
   persist under (content hash, width).  A warm hit skips wrapper
   candidate generation and therefore the per-core ATPG force; the
   backend's replay oracle still checks the result.  Budgeted builds
   bypass the cache: truncation makes the result history-dependent. *)
let build ?budget ?(width = default_width) soc =
  if width < 1 then invalid_arg "Tam.Schedule.build: width < 1";
  Obs.with_span ~cat:"tam" "schedule.build" @@ fun () ->
  match budget with
  | None when Cache.enabled () ->
      Cache.memo ~ns:"tamsched1"
        ~key:(Printf.sprintf "%s|w=%d" (Soc.content_hash soc) width)
        (fun () -> build_uncached ~width soc)
  | _ -> build_uncached ?budget ~width soc

let render t =
  let rows =
    List.map
      (fun p ->
        [
          p.pl_inst;
          string_of_int p.pl_vectors;
          string_of_int p.pl_width;
          Printf.sprintf "%d-%d" p.pl_wire (p.pl_wire + p.pl_width - 1);
          string_of_int p.pl_start;
          string_of_int p.pl_time;
          string_of_int p.pl_wrapper.Wrapper.w_area;
        ])
      t.t_placements
  in
  Ascii_table.render
    ~header:[ "core"; "vectors"; "lanes"; "wires"; "start"; "test time"; "wrapper" ]
    rows
  ^ Printf.sprintf
      "TAM width %d: TAT %d cycles, chip DFT %d cells (wrappers %d + bus %d + \
       controller %d)\n\
       improvement pass: %d repack(s), %d cycle(s) saved\n"
      t.t_tam_width t.t_total_time t.t_area_overhead t.t_wrapper_cost t.t_tam_cost
      t.t_controller_cost t.t_improve_steps t.t_improve_gain
