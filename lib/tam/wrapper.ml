(* IEEE 1500-style wrapper model: balanced partitioning of a core's HSCAN
   chains plus WBR cells into W wrapper scan chains (see wrapper.mli). *)

open Socet_rtl
module Soc = Socet_core.Soc
module Obs = Socet_obs.Obs

type chain = { wc_inputs : int; wc_internal : int; wc_outputs : int }

type t = {
  w_inst : string;
  w_width : int;
  w_chains : chain list;
  w_scan_in : int;
  w_scan_out : int;
  w_cells : int;
  w_area : int;
}

let c_designs = Obs.counter ~scope:"tam" "wrapper.designs"

(* Cost model (cells), mirroring DESIGN.md §6/§12: one boundary cell per
   port bit priced like a boundary-scan cell, a fixed WIR + WBY, and one
   TAM concentrator mux per wrapper chain. *)
let wir_area = 8
let wby_area = 2
let chain_mux_area = 2

let chain_cells c = c.wc_inputs + c.wc_internal + c.wc_outputs

(* Slice the concatenated cell sequence (inputs, internal chains
   longest-first, outputs) into [width] contiguous chunks whose sizes
   differ by at most one.  Walking the typed runs in order keeps the
   construction O(width + chains) — no per-cell list is materialized. *)
let partition ~inputs ~internal ~outputs ~width =
  if width < 1 then invalid_arg "Wrapper.partition: width < 1";
  if inputs < 0 || outputs < 0 || List.exists (fun l -> l < 0) internal then
    invalid_arg "Wrapper.partition: negative cell count";
  let internal = List.sort (fun a b -> compare b a) internal in
  let total = inputs + List.fold_left ( + ) 0 internal + outputs in
  let width = min width (max 1 total) in
  (* Runs of typed cells, in stitch order. *)
  let runs =
    (`I, inputs) :: List.map (fun l -> (`R, l)) internal @ [ (`O, outputs) ]
  in
  let base = total / width and extra = total mod width in
  let chunk j = base + if j < extra then 1 else 0 in
  let chains = Array.make width { wc_inputs = 0; wc_internal = 0; wc_outputs = 0 } in
  let j = ref 0 and room = ref (chunk 0) in
  let place kind n =
    let left = ref n in
    while !left > 0 do
      if !room = 0 then begin
        incr j;
        room := chunk !j
      end;
      let take = min !left !room in
      let c = chains.(!j) in
      chains.(!j) <-
        (match kind with
        | `I -> { c with wc_inputs = c.wc_inputs + take }
        | `R -> { c with wc_internal = c.wc_internal + take }
        | `O -> { c with wc_outputs = c.wc_outputs + take });
      left := !left - take;
      room := !room - take
    done
  in
  List.iter (fun (kind, n) -> place kind n) runs;
  Array.to_list chains

(* Flop count of each HSCAN chain, from the RCG: registers only (the
   chain paths include the port nodes they run between), each register
   counted once even if several maximal paths traverse it. *)
let hscan_chain_lengths ci =
  let rcg = ci.Soc.ci_rcg in
  let seen = Hashtbl.create 16 in
  List.map
    (fun chain ->
      List.fold_left
        (fun acc id ->
          let n = Rcg.node rcg id in
          if n.Rcg.n_kind = Rcg.Reg && not (Hashtbl.mem seen id) then begin
            Hashtbl.add seen id ();
            acc + n.Rcg.n_width
          end
          else acc)
        0 chain)
    ci.Soc.ci_hscan.Socet_scan.Hscan.chains

let design ci ~width =
  Obs.incr c_designs;
  let inputs = Rtl_core.input_bit_count ci.Soc.ci_core in
  let outputs = Rtl_core.output_bit_count ci.Soc.ci_core in
  let internal = hscan_chain_lengths ci in
  let chains = partition ~inputs ~internal ~outputs ~width in
  let scan_in =
    List.fold_left (fun a c -> max a (c.wc_inputs + c.wc_internal)) 0 chains
  in
  let scan_out =
    List.fold_left (fun a c -> max a (c.wc_internal + c.wc_outputs)) 0 chains
  in
  let w_width = List.length chains in
  {
    w_inst = ci.Soc.ci_name;
    w_width;
    w_chains = chains;
    w_scan_in = scan_in;
    w_scan_out = scan_out;
    w_cells = List.fold_left (fun a c -> a + chain_cells c) 0 chains;
    w_area =
      ((inputs + outputs) * Socet_scan.Bscan.cell_area)
      + wir_area + wby_area
      + (chain_mux_area * w_width);
  }

let cycles t ~vectors =
  ((1 + max t.w_scan_in t.w_scan_out) * vectors)
  + min t.w_scan_in t.w_scan_out

let test_time ci ~width =
  cycles (design ci ~width) ~vectors:(Soc.atpg_vectors ci)
