(** The random-SOC fleet workload: both chip backends over hundreds of
    seeded {!Socet_cores.Gen.random_soc} instances.

    The paper evaluates 2 systems; the fleet turns that into a diverse
    workload (heterogeneous core mixes, scan-depth spread, BIST
    memories) that exercises the optimizer, obs and serve layers and
    yields a TAT-vs-area comparison between the CCG/transparency and
    wrapper/TAM backends.

    Entries are generated and evaluated independently per index with a
    per-index RNG, fanned over the {!Socet_util.Pool} domains with the
    deterministic submission-order reduction — the fleet result is
    bit-identical at any [--jobs] setting.  Every TAM schedule passes
    {!Replay.check} inside the backend; CCG schedules with no degraded
    core are re-checked with [Socet_core.Replay]. *)

type outcome = {
  o_time : int;  (** chip TAT, cycles *)
  o_area : int;  (** chip-level DFT overhead, cells *)
}

type entry = {
  e_index : int;
  e_soc : string;
  e_cores : int;
  e_ccg : (outcome, string) result;
  e_tam : (outcome, string) result;
  e_issues : int;  (** replay-invariant violations across both backends *)
}

type summary = {
  s_count : int;
  s_failures : int;      (** entries where either backend errored *)
  s_issues : int;        (** total replay violations (0 on a healthy run) *)
  s_ccg_mean_time : float;
  s_ccg_mean_area : float;
  s_tam_mean_time : float;
  s_tam_mean_area : float;
  s_tam_time_wins : int; (** entries where TAM's TAT beats CCG's *)
}

val run :
  ?width:int -> ?cores:int -> ?hetero:bool -> seed:int -> count:int -> unit ->
  entry list
(** [count] SOCs from [seed] (entry [i] uses a generator derived from
    [seed] and [i] alone), each planned by both backends.  [hetero]
    defaults to [true] — this is the fleet's reason to exist. *)

val summarize : entry list -> summary
(** Means are over entries where both backends succeeded. *)

val render : entry list -> string
(** Comparison table (first rows plus the aggregate), for [socet tam
    --fleet] and the bench. *)
