(** Golden-model validation of a wrapper/TAM schedule, mirroring
    [Socet_core.Replay] for the CCG backend.

    {!Schedule.build} claims a wire band, a start cycle and a test time
    for every core plus a chip TAT.  This module re-derives every claim
    from the SOC description and the placements alone, sharing no
    arithmetic with the packer beyond the wrapper formula:

    - every rectangle must lie inside the TAM ([0 <= wire],
      [wire + width <= tam_width], [width >= 1], [start >= 0]);
    - no two rectangles may overlap (re-booked pairwise on both axes);
    - each core's test time is recomputed from a fresh wrapper design at
      the claimed width and the core's vector count, and its wrapper
      chains must be balanced within one cell;
    - the claimed TAT must equal the highest rectangle top. *)

type issue =
  | Off_tam of { inst : string; wire : int; width : int }
  | Overlap of { a : string; b : string; wire : int; cycle : int }
  | Wrong_core_time of { inst : string; claimed : int; replayed : int }
  | Unbalanced_wrapper of { inst : string; spread : int }
  | Wrong_total_time of { claimed : int; replayed : int }

val pp_issue : issue -> string

val check : Socet_core.Soc.t -> Schedule.t -> issue list
(** Replays the schedule against the SOC; [[]] means every claim was
    reproduced. *)
