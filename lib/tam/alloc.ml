(* TAM width allocation: pareto candidate rectangles per core. *)

module Soc = Socet_core.Soc
module Obs = Socet_obs.Obs

type candidate = { cd_width : int; cd_time : int; cd_wrapper : Wrapper.t }

let c_candidates = Obs.counter ~scope:"tam" "alloc.candidates"

let candidates ci ~max_width =
  if max_width < 1 then invalid_arg "Alloc.candidates: max_width < 1";
  let vectors = Soc.atpg_vectors ci in
  let rec go w best acc =
    if w > max_width then List.rev acc
    else
      let wrapper = Wrapper.design ci ~width:w in
      let time = Wrapper.cycles wrapper ~vectors in
      if time < best then begin
        Obs.incr c_candidates;
        go (w + 1) time ({ cd_width = w; cd_time = time; cd_wrapper = wrapper } :: acc)
      end
      else if wrapper.Wrapper.w_width < w then
        (* The partition ran out of cells: wider wrappers are identical. *)
        List.rev acc
      else go (w + 1) best acc
  in
  go 1 max_int []

let fastest = function
  | [] -> invalid_arg "Alloc.fastest: empty candidate list"
  | cds -> List.nth cds (List.length cds - 1)
