(** TAM width allocation: the candidate rectangles of one core.

    Under a [max_width]-wire TAM, a core tested through a [w]-wire
    wrapper occupies a rectangle of width [w] and height
    [Wrapper.test_time ~width:w] cycles.  Widening the wrapper shortens
    the test until the longest single HSCAN segment (or the IO cells)
    dominates, after which extra wires are wasted — so only the
    {e pareto} widths, where the test time strictly drops, are worth
    offering to the packer (Islam et al.'s rectangle set). *)

type candidate = {
  cd_width : int;        (** TAM wires consumed *)
  cd_time : int;         (** test time in cycles at this width *)
  cd_wrapper : Wrapper.t;
}

val candidates : Socet_core.Soc.core_inst -> max_width:int -> candidate list
(** Pareto-pruned candidates in increasing width / strictly decreasing
    time order; the head is always width 1, the last is the fastest
    useful width.  Forces the core's (cached) ATPG run for the vector
    count.  @raise Invalid_argument if [max_width < 1]. *)

val fastest : candidate list -> candidate
(** The minimum-time candidate (the list's last entry).
    @raise Invalid_argument on an empty list. *)
