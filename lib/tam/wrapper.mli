(** IEEE 1500-style test wrapper model (the industrial alternative to the
    paper's transparency access; Islam et al. / Bernardi et al. in
    PAPERS.md).

    A wrapped core is isolated behind a Wrapper Instruction Register
    (WIR), a 1-bit Wrapper BYpass (WBY) and a Wrapper Boundary Register
    (WBR) — one boundary cell per core port bit.  For testing, the WBR
    input cells, the core's internal scan chains (we reuse the HSCAN
    chains already inserted by [Soc.instantiate]) and the WBR output
    cells are stitched into [width] {e wrapper scan chains}, each fed by
    one TAM wire.

    Partitioning treats the core as {e firm}: the concatenated cell
    sequence (input cells, then the HSCAN chains longest-first, then
    output cells) is sliced into [width] contiguous chunks whose sizes
    differ by at most one cell — the balanced-wrapper design that
    minimizes the scan-in/scan-out maxima for a given width (chains may
    be re-stitched at chunk boundaries; the paper-flow CCG backend never
    sees these wrappers, so the two backends share only the core-level
    HSCAN investment).

    Per-vector shifting overlaps scan-out of the previous response with
    scan-in of the next vector, giving the standard wrapper test-time
    formula [cycles = (1 + max(si, so)) * vectors + min(si, so)] where
    [si]/[so] are the longest scan-in/scan-out wrapper chains. *)

type chain = {
  wc_inputs : int;    (** WBR input cells on this wrapper chain *)
  wc_internal : int;  (** core scan flops (HSCAN cells) *)
  wc_outputs : int;   (** WBR output cells *)
}

type t = {
  w_inst : string;
  w_width : int;          (** wrapper chain count actually used (>= 1) *)
  w_chains : chain list;  (** [w_width] chains, sizes within 1 cell *)
  w_scan_in : int;        (** max over chains of [wc_inputs + wc_internal] *)
  w_scan_out : int;       (** max over chains of [wc_internal + wc_outputs] *)
  w_cells : int;          (** total wrapper cells (inputs+internal+outputs) *)
  w_area : int;           (** wrapper DFT cost in cells (WIR, WBY, WBR,
                              per-chain TAM concentrator) *)
}

val partition :
  inputs:int -> internal:int list -> outputs:int -> width:int -> chain list
(** The pure partitioning step, exposed for the property tests:
    [internal] is the flop count of each core scan chain.  The result has
    [min width (max 1 total_cells)] chains whose total cell counts differ
    by at most one.  @raise Invalid_argument if [width < 1] or a count is
    negative. *)

val design : Socet_core.Soc.core_inst -> width:int -> t
(** Wrap one core with [width] TAM wires: partitions its HSCAN chains
    (flop counts read from the RCG) and port bits, and prices the
    wrapper.  Effective width is clamped to the core's cell count. *)

val cycles : t -> vectors:int -> int
(** Test application time of the wrapped core for a [vectors]-vector
    test set (formula above). *)

val test_time : Socet_core.Soc.core_inst -> width:int -> int
(** [cycles (design ci ~width) ~vectors:(Soc.atpg_vectors ci)] — forces
    the core's (cached) ATPG run. *)
