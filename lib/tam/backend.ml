(* The chip-backend seam: CCG/transparency vs wrapper/TAM (backend.mli). *)

module Soc = Socet_core.Soc
module Resilient = Socet_core.Resilient
module Obs = Socet_obs.Obs
module Err = Socet_util.Error

type core_row = { r_inst : string; r_mech : string; r_time : int; r_area : int }
type detail = D_ccg of Socet_core.Schedule.t | D_tam of Schedule.t

type plan = {
  p_backend : string;
  p_rows : core_row list;
  p_total_time : int;
  p_area_overhead : int;
  p_degraded : int;
  p_detail : detail;
}

module type CHIP_BACKEND = sig
  val name : string

  val plan :
    ?budget:Socet_util.Budget.t -> Soc.t -> (plan, Socet_util.Error.t) result
end

let c_ccg_plans = Obs.counter ~scope:"tam" "backend.ccg_plans"
let c_tam_plans = Obs.counter ~scope:"tam" "backend.tam_plans"

module Ccg_backend = struct
  let name = "ccg"

  let plan ?budget soc =
    Obs.incr c_ccg_plans;
    Obs.with_span ~cat:"tam" "backend.ccg.plan" @@ fun () ->
    let choice = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
    Result.map
      (fun (p : Resilient.plan) ->
        {
          p_backend = name;
          p_rows =
            List.map
              (fun (cp : Resilient.core_plan) ->
                {
                  r_inst = cp.Resilient.p_inst;
                  r_mech =
                    (match cp.Resilient.p_rung with
                    | Resilient.Transparency -> "transparency"
                    | Resilient.Fallback_fscan_bscan -> "FSCAN-BSCAN fallback");
                  r_time = cp.Resilient.p_time;
                  r_area = cp.Resilient.p_area;
                })
              p.Resilient.p_cores;
          p_total_time = p.Resilient.p_total_time;
          p_area_overhead = p.Resilient.p_area_overhead;
          p_degraded = p.Resilient.p_fallbacks;
          p_detail = D_ccg p.Resilient.p_schedule;
        })
      (Resilient.plan ?budget soc ~choice ())
end

let tam_plan ?budget ~width soc =
  Obs.incr c_tam_plans;
  Obs.with_span ~cat:"tam" "backend.tam.plan" @@ fun () ->
  match
    Err.guard ~engine:"tam" (fun () -> Schedule.build ?budget ?width soc)
  with
  | Error e -> Error e
  | Ok sched -> (
      match Replay.check soc sched with
      | issue :: _ ->
          Err.error ~kind:Err.Internal ~engine:"tam"
            ~ctx:[ ("soc", soc.Soc.soc_name) ]
            (Printf.sprintf "invalid TAM schedule: %s" (Replay.pp_issue issue))
      | [] ->
          Ok
            {
              p_backend = "tam";
              p_rows =
                List.map
                  (fun (p : Schedule.placement) ->
                    {
                      r_inst = p.Schedule.pl_inst;
                      r_mech =
                        Printf.sprintf "wrapper %d lane(s)" p.Schedule.pl_width;
                      r_time = p.Schedule.pl_time;
                      r_area = p.Schedule.pl_wrapper.Wrapper.w_area;
                    })
                  sched.Schedule.t_placements;
              p_total_time = sched.Schedule.t_total_time;
              p_area_overhead = sched.Schedule.t_area_overhead;
              p_degraded = 0;
              p_detail = D_tam sched;
            })

module Tam_backend = struct
  let name = "tam"
  let plan ?budget soc = tam_plan ?budget ~width:None soc
end

let tam ?width () : (module CHIP_BACKEND) =
  (module struct
    let name = "tam"
    let plan ?budget soc = tam_plan ?budget ~width soc
  end)

let names = [ "ccg"; "tam" ]

let of_name = function
  | "ccg" -> Ok (module Ccg_backend : CHIP_BACKEND)
  | "tam" -> Ok (module Tam_backend : CHIP_BACKEND)
  | b ->
      Err.error ~engine:"tam"
        (Printf.sprintf "unknown backend %S (use ccg or tam)" b)
