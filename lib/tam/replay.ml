(* Golden-model validation of a wrapper/TAM schedule (see replay.mli). *)

module Soc = Socet_core.Soc

type issue =
  | Off_tam of { inst : string; wire : int; width : int }
  | Overlap of { a : string; b : string; wire : int; cycle : int }
  | Wrong_core_time of { inst : string; claimed : int; replayed : int }
  | Unbalanced_wrapper of { inst : string; spread : int }
  | Wrong_total_time of { claimed : int; replayed : int }

let pp_issue = function
  | Off_tam { inst; wire; width } ->
      Printf.sprintf "%s: wire band %d+%d leaves the TAM" inst wire width
  | Overlap { a; b; wire; cycle } ->
      Printf.sprintf "%s and %s both book wire %d at cycle %d" a b wire cycle
  | Wrong_core_time { inst; claimed; replayed } ->
      Printf.sprintf "%s: claimed %d cycles, wrapper formula gives %d" inst
        claimed replayed
  | Unbalanced_wrapper { inst; spread } ->
      Printf.sprintf "%s: wrapper chains differ by %d cells (max 1)" inst spread
  | Wrong_total_time { claimed; replayed } ->
      Printf.sprintf "total: claimed %d cycles, tallest rectangle tops at %d"
        claimed replayed

let rect_overlap a b =
  let open Schedule in
  (* Zero-height rectangles reserve nothing. *)
  if a.pl_time = 0 || b.pl_time = 0 then None
  else if
    a.pl_wire < b.pl_wire + b.pl_width
    && b.pl_wire < a.pl_wire + a.pl_width
    && a.pl_start < b.pl_start + b.pl_time
    && b.pl_start < a.pl_start + a.pl_time
  then
    Some
      ( max a.pl_wire b.pl_wire,
        max a.pl_start b.pl_start )
  else None

let check soc sched =
  let open Schedule in
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let w = sched.t_tam_width in
  List.iter
    (fun p ->
      if p.pl_wire < 0 || p.pl_width < 1 || p.pl_wire + p.pl_width > w
         || p.pl_start < 0
      then add (Off_tam { inst = p.pl_inst; wire = p.pl_wire; width = p.pl_width });
      (* Re-derive the wrapper and the test time from the SOC alone. *)
      let ci = Soc.inst soc p.pl_inst in
      let wrapper = Wrapper.design ci ~width:p.pl_width in
      let replayed = Wrapper.cycles wrapper ~vectors:(Soc.atpg_vectors ci) in
      if replayed <> p.pl_time then
        add (Wrong_core_time { inst = p.pl_inst; claimed = p.pl_time; replayed });
      let sizes =
        List.map
          (fun c -> c.Wrapper.wc_inputs + c.Wrapper.wc_internal + c.Wrapper.wc_outputs)
          p.pl_wrapper.Wrapper.w_chains
      in
      (match sizes with
      | [] -> ()
      | s :: rest ->
          let lo = List.fold_left min s rest and hi = List.fold_left max s rest in
          if hi - lo > 1 then
            add (Unbalanced_wrapper { inst = p.pl_inst; spread = hi - lo })))
    sched.t_placements;
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            match rect_overlap a b with
            | Some (wire, cycle) ->
                add (Overlap { a = a.pl_inst; b = b.pl_inst; wire; cycle })
            | None -> ())
          rest;
        pairs rest
  in
  pairs sched.t_placements;
  let top =
    List.fold_left
      (fun acc p -> max acc (p.pl_start + p.pl_time))
      0 sched.t_placements
  in
  if top <> sched.t_total_time then
    add (Wrong_total_time { claimed = sched.t_total_time; replayed = top });
  List.rev !issues
