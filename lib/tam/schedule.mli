(** Chip-level wrapper/TAM test scheduling: rectangle bin packing.

    Each core becomes a rectangle (width = TAM wires consumed, height =
    test time at that width, from {!Alloc}); the schedule places every
    rectangle on a contiguous band of TAM wires at a start cycle such
    that no two rectangles overlap.  Packing is best-fit decreasing
    (tallest rectangle first, earliest feasible start, lowest wire on
    ties) followed by an iterative-improvement pass fuelled by a
    {!Socet_util.Budget}: while fuel lasts, the core finishing last is
    re-allocated to each of its alternative widths and the whole set is
    re-packed, keeping the first strictly better makespan.

    The result mirrors the shape of [Socet_core.Schedule.t] — per-core
    entries with times plus chip totals — so the same replay-style
    invariant checking applies ({!Replay}). *)

type placement = {
  pl_inst : string;
  pl_width : int;        (** TAM wires consumed *)
  pl_wire : int;         (** first TAM wire (band is [pl_wire, pl_wire+pl_width)) *)
  pl_start : int;        (** start cycle *)
  pl_time : int;         (** test time in cycles (rectangle height) *)
  pl_vectors : int;      (** core ATPG vector count *)
  pl_wrapper : Wrapper.t;
}

type t = {
  t_soc : string;
  t_tam_width : int;
  t_placements : placement list;  (** one per logic core, SOC order *)
  t_total_time : int;             (** makespan: max over placements of
                                      [pl_start + pl_time] (0 if none) *)
  t_wrapper_cost : int;           (** sum of the wrappers' areas *)
  t_tam_cost : int;               (** TAM bus wiring cost *)
  t_controller_cost : int;
  t_area_overhead : int;          (** chip-level total of the three above *)
  t_improve_steps : int;          (** re-packs attempted by the pass *)
  t_improve_gain : int;           (** cycles shaved off the BFD makespan *)
}

val default_width : int
(** TAM width when the caller does not choose one (16 wires). *)

val tam_wire_area : int
(** Chip-level cost per TAM wire, in cells. *)

val build : ?budget:Socet_util.Budget.t -> ?width:int -> Socet_core.Soc.t -> t
(** Wrap every logic core (memories stay on their BIST, as everywhere
    else in the repo), allocate widths, pack, improve.  Deterministic:
    no randomness, all ties broken on names/indices, so the result is
    identical at any domain count and any clock.  [budget] fuels only
    the improvement pass, in rectangle-placement units; with none, the
    pass runs to its plateau.  @raise Invalid_argument if [width < 1]. *)

val render : t -> string
(** The [socet tam]/[socet chip --backend tam] table: one row per core
    (lanes, wire band, start, time, wrapper area) plus the totals line —
    shared by the CLI and the server so responses stay byte-identical. *)
