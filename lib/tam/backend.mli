(** The chip-backend seam: two interchangeable chip-level test flows.

    The paper's CCG/transparency flow ({!Socet_core.Resilient} over
    {!Socet_core.Schedule}) and the wrapper/TAM flow ({!Schedule} here)
    answer the same question — how long does testing the whole chip take
    and what chip-level DFT does it cost — so they share one interface.
    [socet chip --backend ccg] vs [--backend tam], [socet schedule],
    the server's chip requests, the fleet driver and the bench all
    dispatch through it; each implementation keeps its own obs counters
    and span timers under [tam.backend.*]. *)

type core_row = {
  r_inst : string;
  r_mech : string;  (** access mechanism, e.g. ["transparency"] or
                        ["wrapper 3 lane(s)"] *)
  r_time : int;     (** per-core test time, cycles *)
  r_area : int;     (** per-core chip-level DFT addition, cells *)
}

type detail =
  | D_ccg of Socet_core.Schedule.t
  | D_tam of Schedule.t  (** the raw schedule, for replay-style checks *)

type plan = {
  p_backend : string;
  p_rows : core_row list;
  p_total_time : int;
  p_area_overhead : int;  (** chip-level DFT (excludes the shared
                              core-level HSCAN investment) *)
  p_degraded : int;       (** CCG cores on the FSCAN-BSCAN fallback rung;
                              always 0 for TAM *)
  p_detail : detail;
}

module type CHIP_BACKEND = sig
  val name : string

  val plan :
    ?budget:Socet_util.Budget.t ->
    Socet_core.Soc.t ->
    (plan, Socet_util.Error.t) result
  (** Never raises; budget exhaustion degrades (CCG) or stops the
      improvement pass early (TAM). *)
end

module Ccg_backend : CHIP_BACKEND
(** The paper's flow: all cores at version 1, graceful degradation via
    {!Socet_core.Resilient.plan}. *)

module Tam_backend : CHIP_BACKEND
(** The wrapper/TAM flow at {!Schedule.default_width}; the returned plan
    has already passed {!Replay.check} (an invalid packing surfaces as a
    structured [Internal] error, never as a wrong schedule). *)

val tam : ?width:int -> unit -> (module CHIP_BACKEND)
(** A TAM backend at a chosen width. *)

val names : string list
(** [["ccg"; "tam"]] — the [--backend] vocabulary. *)

val of_name : string -> ((module CHIP_BACKEND), Socet_util.Error.t) result
