(* The random-SOC fleet workload over both chip backends (fleet.mli). *)

module Soc = Socet_core.Soc
module Obs = Socet_obs.Obs
module Rng = Socet_util.Rng
module Pool = Socet_util.Pool
module Err = Socet_util.Error
module Ascii_table = Socet_util.Ascii_table

type outcome = { o_time : int; o_area : int }

type entry = {
  e_index : int;
  e_soc : string;
  e_cores : int;
  e_ccg : (outcome, string) result;
  e_tam : (outcome, string) result;
  e_issues : int;
}

type summary = {
  s_count : int;
  s_failures : int;
  s_issues : int;
  s_ccg_mean_time : float;
  s_ccg_mean_area : float;
  s_tam_mean_time : float;
  s_tam_mean_area : float;
  s_tam_time_wins : int;
}

let c_socs = Obs.counter ~scope:"tam" "fleet.socs"
let c_issues = Obs.counter ~scope:"tam" "fleet.replay_issues"

(* Entry i's generator depends on (seed, i) alone — independent of the
   domain count and of every other entry. *)
let entry_rng ~seed i = Rng.create ((seed * 1_000_003) + i)

let one ~width ~cores ~hetero ~seed i =
  Obs.incr c_socs;
  let rng = entry_rng ~seed i in
  let soc = Socet_cores.Gen.random_soc ?cores ~hetero rng in
  let issues = ref 0 in
  let outcome_of (module B : Backend.CHIP_BACKEND) =
    match B.plan soc with
    | Error e ->
        (* A TAM replay violation arrives as a structured Internal error. *)
        if e.Err.err_kind = Err.Internal then incr issues;
        Error (Err.to_string e)
    | Ok p ->
        (match p.Backend.p_detail with
        | Backend.D_ccg sched when p.Backend.p_degraded = 0 ->
            let n = List.length (Socet_core.Replay.check sched) in
            issues := !issues + n
        | _ -> ());
        Ok { o_time = p.Backend.p_total_time; o_area = p.Backend.p_area_overhead }
  in
  let e_ccg = outcome_of (module Backend.Ccg_backend) in
  let e_tam = outcome_of (Backend.tam ?width ()) in
  Obs.add c_issues !issues;
  {
    e_index = i;
    e_soc = soc.Soc.soc_name;
    e_cores = List.length soc.Soc.insts;
    e_ccg;
    e_tam;
    e_issues = !issues;
  }

let run ?width ?cores ?(hetero = true) ~seed ~count () =
  Obs.with_span ~cat:"tam" "fleet.run" @@ fun () ->
  Pool.parallel_map_list (one ~width ~cores ~hetero ~seed) (List.init count Fun.id)

let summarize entries =
  let ok = function Ok _ -> true | Error _ -> false in
  let both =
    List.filter_map
      (fun e ->
        match (e.e_ccg, e.e_tam) with
        | Ok c, Ok t -> Some (c, t)
        | _ -> None)
      entries
  in
  let n = List.length both in
  let mean f = if n = 0 then 0.0 else List.fold_left (fun a p -> a +. f p) 0.0 both /. float_of_int n in
  {
    s_count = List.length entries;
    s_failures =
      List.length (List.filter (fun e -> not (ok e.e_ccg && ok e.e_tam)) entries);
    s_issues = List.fold_left (fun a e -> a + e.e_issues) 0 entries;
    s_ccg_mean_time = mean (fun (c, _) -> float_of_int c.o_time);
    s_ccg_mean_area = mean (fun (c, _) -> float_of_int c.o_area);
    s_tam_mean_time = mean (fun (_, t) -> float_of_int t.o_time);
    s_tam_mean_area = mean (fun (_, t) -> float_of_int t.o_area);
    s_tam_time_wins =
      List.length (List.filter (fun (c, t) -> t.o_time < c.o_time) both);
  }

let render entries =
  let show = function
    | Ok o -> (string_of_int o.o_time, string_of_int o.o_area)
    | Error _ -> ("-", "-")
  in
  let preview = 12 in
  let rows =
    List.filteri (fun i _ -> i < preview) entries
    |> List.map (fun e ->
           let ct, ca = show e.e_ccg and tt, ta = show e.e_tam in
           [
             string_of_int e.e_index;
             e.e_soc;
             string_of_int e.e_cores;
             ct;
             ca;
             tt;
             ta;
             string_of_int e.e_issues;
           ])
  in
  let s = summarize entries in
  Ascii_table.render
    ~header:
      [ "#"; "soc"; "cores"; "ccg TAT"; "ccg area"; "tam TAT"; "tam area"; "issues" ]
    rows
  ^ (if List.length entries > preview then
       Printf.sprintf "... (%d more SOCs)\n" (List.length entries - preview)
     else "")
  ^ Printf.sprintf
      "fleet: %d SOCs, %d failure(s), %d replay issue(s)\n\
       mean TAT: ccg %.0f vs tam %.0f cycles; mean chip DFT: ccg %.0f vs tam \
       %.0f cells; tam faster on %d/%d\n"
      s.s_count s.s_failures s.s_issues s.s_ccg_mean_time s.s_tam_mean_time
      s.s_ccg_mean_area s.s_tam_mean_area s.s_tam_time_wins s.s_count
