open Socet_rtl
open Socet_netlist
open Rtl_types
module Obs = Socet_obs.Obs

let c_cores = Obs.counter ~scope:"synth" "elaborate.cores"
let c_cells = Obs.counter ~scope:"synth" "elaborate.cells"

let ceil_log2 n =
  let rec loop b v = if v >= n then b else loop (b + 1) (v * 2) in
  loop 0 1

let control_state_width core =
  let n = List.length (Rtl_core.transfers core) in
  max 2 (ceil_log2 (n + 1))

(* Slice [range] out of a word. *)
let slice word (r : range) = Array.sub word r.lsb (range_width r)

(* BCD digit (4 bits, LSB first) to active-high 7-segment code (a..g).
   Sum-of-products over the decoded digit lines; digits >= 10 display
   blank. *)
let dec7seg nl src =
  if Array.length src <> 4 then
    Socet_util.Error.raisef ~engine:"synth"
      ~ctx:[ ("width", string_of_int (Array.length src)) ]
      "Fdec7seg needs 4 bits, got %d" (Array.length src);
  let inv = Array.map (fun b -> Netlist.add_gate nl Cell.Inv [| b |]) src in
  let minterm d =
    let lits =
      Array.mapi (fun i _ -> if (d lsr i) land 1 = 1 then src.(i) else inv.(i)) src
    in
    Array.fold_left
      (fun acc l ->
        match acc with
        | None -> Some l
        | Some x -> Some (Netlist.add_gate nl Cell.And2 [| x; l |]))
      None lits
    |> Option.get
  in
  let digit = Array.init 10 minterm in
  (* Segments a..g: which digits light each segment. *)
  let seg_digits =
    [|
      [ 0; 2; 3; 5; 6; 7; 8; 9 ] (* a *);
      [ 0; 1; 2; 3; 4; 7; 8; 9 ] (* b *);
      [ 0; 1; 3; 4; 5; 6; 7; 8; 9 ] (* c *);
      [ 0; 2; 3; 5; 6; 8; 9 ] (* d *);
      [ 0; 2; 6; 8 ] (* e *);
      [ 0; 4; 5; 6; 8; 9 ] (* f *);
      [ 2; 3; 4; 5; 6; 8; 9 ] (* g *);
    |]
  in
  Array.map
    (fun ds ->
      List.fold_left
        (fun acc d ->
          match acc with
          | None -> Some digit.(d)
          | Some x -> Some (Netlist.add_gate nl Cell.Or2 [| x; digit.(d) |]))
        None ds
      |> Option.get)
    seg_digits

let core_to_netlist ?(test_access = false) core =
  Obs.with_span ~cat:"synth" "elaborate.core_to_netlist" @@ fun () ->
  Obs.incr c_cores;
  Rtl_core.validate core;
  let nl = Netlist.create (Rtl_core.name core) in
  (* Input ports. *)
  let in_words = Hashtbl.create 8 in
  List.iter
    (fun (p : Rtl_core.port) ->
      if p.p_dir = `In then
        Hashtbl.replace in_words p.p_name (Builder.input_word nl p.p_name p.p_width))
    (Rtl_core.ports core);
  (* Registers (Q nets); D connections are wired afterwards. *)
  let reg_words = Hashtbl.create 8 in
  List.iter
    (fun (r : Rtl_core.reg) ->
      Hashtbl.replace reg_words r.r_name
        (Builder.new_register nl ~name:r.r_name ~width:r.r_width))
    (Rtl_core.regs core);
  (* Control FSM: a counter perturbed by an input bit, decoded one-hot. *)
  let sw = control_state_width core in
  let state = Builder.new_register nl ~name:"_ctrl" ~width:sw in
  let next = Builder.inc_word nl state in
  let next =
    match Rtl_core.inputs core with
    | [] -> next
    | p :: _ ->
        let b = (Hashtbl.find in_words p.p_name).(0) in
        let flipped = Netlist.add_gate nl Cell.Xor2 [| next.(0); b |] in
        Array.mapi (fun i n -> if i = 0 then flipped else n) next
  in
  Builder.connect_register nl ~q:state ~d:next ();
  let transfers = Rtl_core.transfers core in
  (* Optional transparency-mode hardware: a [test_mode] pin that silences
     the functional decoder plus one steering override per transfer — the
     gate-level realization of the paper's T2/T3-style transparency
     controls, driven by the chip's test controller. *)
  let test_pins =
    if test_access then begin
      let test_mode = Netlist.add_pi nl "test_mode" in
      let overrides =
        List.mapi (fun k _ -> Netlist.add_pi nl (Printf.sprintf "t_ov.%d" k)) transfers
      in
      Some (test_mode, overrides)
    end
    else None
  in
  (* A transfer fires only when the FSM is in its state AND the opcode
     nibble on the first input port matches the transfer's opcode — the
     instruction-decode discipline of a real core.  Random functional
     stimuli therefore exercise the datapath only very rarely (the paper's
     "Orig." rows), while full-scan ATPG controls the state directly. *)
  let opcode_nibble =
    match Rtl_core.inputs core with
    | [] -> None
    | p :: _ ->
        let word = Hashtbl.find in_words p.p_name in
        Some (Array.sub word 0 (min 3 (Array.length word)))
  in
  let sel_of_index k =
    let const = Builder.const_word nl ~width:sw (k land ((1 lsl sw) - 1)) in
    let base = Builder.eq_word nl state const in
    let base =
      match opcode_nibble with
      | None -> base
      | Some op ->
          let expected =
            Builder.const_word nl ~width:(Array.length op) (((5 * k) + 3) land 7)
          in
          let matches = Builder.eq_word nl op expected in
          Netlist.add_gate nl Cell.And2 [| base; matches |]
    in
    match test_pins with
    | None -> base
    | Some (test_mode, overrides) ->
        let not_test = Netlist.add_gate nl Cell.Inv [| test_mode |] in
        let gated = Netlist.add_gate nl Cell.And2 [| base; not_test |] in
        Netlist.add_gate nl Cell.Or2 [| gated; List.nth overrides k |]
  in
  let selects = List.mapi (fun k _ -> lazy (sel_of_index k)) transfers in
  let value_of_endpoint (e : endpoint) =
    match e.base with
    | Eport n -> slice (Hashtbl.find in_words n) e.range
    | Ereg n -> slice (Hashtbl.find reg_words n) e.range
  in
  (* Data produced by one transfer (after any functional unit). *)
  let transfer_value tr =
    let src = value_of_endpoint tr.t_src in
    match tr.t_kind with
    | Direct | Mux _ -> src
    | Logic fn -> (
        match fn with
        | Fadd op ->
            let zero = Netlist.add_gate nl Cell.Const0 [||] in
            fst (Builder.adder nl src (value_of_endpoint op) ~cin:zero)
        | Fsub op -> fst (Builder.subtractor nl src (value_of_endpoint op))
        | Fand op -> Builder.and_word nl src (value_of_endpoint op)
        | Fxor op -> Builder.xor_word nl src (value_of_endpoint op)
        | Finc -> Builder.inc_word nl src
        | Fnot -> Builder.not_word nl src
        | Fparity ->
            let x =
              Array.fold_left
                (fun acc b ->
                  match acc with
                  | None -> Some b
                  | Some y -> Some (Netlist.add_gate nl Cell.Xor2 [| y; b |]))
                None src
            in
            (match x with Some n -> [| n |] | None -> assert false)
        | Fdec7seg -> dec7seg nl src)
  in
  (* Wire the registers bit by bit: every transfer covering a bit adds a
     rung to that bit's priority-mux chain (later declarations win), and
     the bit's load enable is the OR of those transfers' selects.  Per-bit
     wiring handles arbitrary overlap between transfer destination slices
     (e.g. a full-width ALU writeback over a register whose halves also
     load from different sources). *)
  let indexed = List.mapi (fun k tr -> (k, tr)) transfers in
  let values =
    List.map (fun (k, tr) -> (k, lazy (transfer_value tr))) indexed
  in
  List.iter
    (fun (r : Rtl_core.reg) ->
      let q = Hashtbl.find reg_words r.r_name in
      let into =
        List.filter (fun (_, tr) -> tr.t_dst.base = Ereg r.r_name) indexed
      in
      Array.iteri
        (fun b qb ->
          let covering =
            List.filter
              (fun (_, tr) ->
                tr.t_dst.range.lsb <= b && b <= tr.t_dst.range.msb)
              into
          in
          if covering <> [] then begin
            let d, enables =
              List.fold_left
                (fun (acc, ens) (k, tr) ->
                  let v = Lazy.force (List.assoc k values) in
                  let bit = v.(b - tr.t_dst.range.lsb) in
                  let sel = Lazy.force (List.nth selects k) in
                  (Netlist.add_gate nl Cell.Mux2 [| sel; acc; bit |], sel :: ens))
                (qb, []) covering
            in
            let enable =
              match enables with
              | [ e ] -> e
              | es -> Builder.reduce_or nl (Array.of_list es)
            in
            Netlist.set_kind nl qb Cell.Dffe [| d; enable |]
          end)
        q)
    (Rtl_core.regs core);
  (* Output ports: combinational mux chain (default all-zero). *)
  List.iter
    (fun (p : Rtl_core.port) ->
      if p.p_dir = `Out then begin
        let into =
          List.filter (fun (_, tr) -> tr.t_dst.base = Eport p.p_name) indexed
        in
        let word = ref (Builder.const_word nl ~width:p.p_width 0) in
        List.iter
          (fun (k, tr) ->
            let v = transfer_value tr in
            let lsb = tr.t_dst.range.lsb in
            let current = Array.sub !word lsb (range_width tr.t_dst.range) in
            let muxed =
              (* A single direct driver needs no select; shared slices get
                 the decoded select. *)
              let only_driver =
                List.for_all
                  (fun (k', tr') ->
                    k' = k || not (ranges_overlap tr'.t_dst.range tr.t_dst.range))
                  into
              in
              if only_driver && tr.t_kind = Direct then v
              else
                let sel = Lazy.force (List.nth selects k) in
                Builder.mux2_word nl ~sel ~a:current ~b:v
            in
            let w = Array.copy !word in
            Array.blit muxed 0 w lsb (Array.length muxed);
            word := w)
          into;
        Builder.output_word nl p.p_name !word
      end)
    (Rtl_core.ports core);
  Obs.add c_cells (Netlist.gate_count nl);
  nl
