open Socet_netlist
module Obs = Socet_obs.Obs

(* Observability: every optimizer probe of the area model passes through
   here, so this counter tracks how often design points are costed. *)
let c_evals = Obs.counter ~scope:"synth" "area.evals"

let of_netlist nl =
  Obs.incr c_evals;
  Netlist.area nl

let ff_count nl = List.length (Netlist.dffs nl)

let overhead_percent ~base ~extra =
  Obs.incr c_evals;
  if base = 0 then 0.0 else 100.0 *. float_of_int extra /. float_of_int base

let pp_percent fmt p = Format.fprintf fmt "%.1f" p
