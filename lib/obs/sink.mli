(** Where completed spans go.

    A sink is a record of closures so the disabled path costs one load and
    an indirect call at most — and the facade ([Obs]) never even reaches
    the sink when observability is off.  The default {!noop} sink drops
    everything; the {!memory} sink buffers events (bounded) for the
    Chrome trace-event exporter; the {!file} sink streams events to disk
    as JSON lines, for runs too long for any in-memory buffer. *)

type span_event = {
  ev_name : string;  (** short span name, e.g. ["podem.run"] *)
  ev_cat : string;  (** engine category, e.g. ["atpg"] *)
  ev_start_us : float;  (** microseconds since [Obs.configure] *)
  ev_dur_us : float;
  ev_depth : int;  (** nesting depth at entry; 0 = root *)
}

type t = {
  emit : span_event -> unit;
  events : unit -> span_event list;  (** completed events, oldest first *)
  dropped : unit -> int;  (** events discarded past the buffer limit *)
  clear : unit -> unit;
  flush : unit -> unit;  (** push buffered output to its backing store *)
}

val noop : t
(** Drops everything; [events] is always []. *)

val memory : ?limit:int -> unit -> t
(** In-memory buffer keeping the first [limit] events (default 200_000);
    later events are counted as dropped rather than silently lost. *)

val file : ?flush_every:int -> string -> t
(** Append-only JSONL stream: each event becomes one line
    [{"name":..,"cat":..,"ts_us":..,"dur_us":..,"depth":..}] appended to
    the named file.  Emission is mutex-guarded (pool workers close spans
    too) and buffered: lines collect in a pending buffer that is written
    and flushed every [flush_every] events (default 64) and by {!t.flush}
    — so the file is bounded-stale, the buffer bounded-size, and a crash
    loses at most [flush_every - 1] events.  A final flush is registered
    with [at_exit].  [events] returns [] (the file is the record; nothing
    is retained in memory); [dropped] counts events lost to write errors
    (e.g. disk full), after which streaming stops rather than raising
    mid-engine. *)
