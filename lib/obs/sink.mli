(** Where completed spans go.

    A sink is a record of closures so the disabled path costs one load and
    an indirect call at most — and the facade ([Obs]) never even reaches
    the sink when observability is off.  The default {!noop} sink drops
    everything; the {!memory} sink buffers events (bounded) for the
    Chrome trace-event exporter. *)

type span_event = {
  ev_name : string;  (** short span name, e.g. ["podem.run"] *)
  ev_cat : string;  (** engine category, e.g. ["atpg"] *)
  ev_start_us : float;  (** microseconds since [Obs.configure] *)
  ev_dur_us : float;
  ev_depth : int;  (** nesting depth at entry; 0 = root *)
}

type t = {
  emit : span_event -> unit;
  events : unit -> span_event list;  (** completed events, oldest first *)
  dropped : unit -> int;  (** events discarded past the buffer limit *)
  clear : unit -> unit;
}

val noop : t
(** Drops everything; [events] is always []. *)

val memory : ?limit:int -> unit -> t
(** In-memory buffer keeping the first [limit] events (default 200_000);
    later events are counted as dropped rather than silently lost. *)
