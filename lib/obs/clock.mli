(** Wall-clock time source for the observability subsystem.

    All span and timer measurements are expressed in microseconds relative
    to the last {!reset} (done by [Obs.configure]), so Chrome trace
    timestamps start near zero and stay readable. *)

val now_us : unit -> float
(** Absolute wall-clock time in microseconds. *)

val reset : unit -> unit
(** Re-anchor the epoch used by {!since_start_us} to "now". *)

val since_start_us : unit -> float
(** Microseconds elapsed since the last {!reset} (or process start). *)
