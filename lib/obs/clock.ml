let now_us () = Unix.gettimeofday () *. 1e6

let epoch = ref (now_us ())

let reset () = epoch := now_us ()

let since_start_us () = now_us () -. !epoch
