type entry =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Timer of Metric.timer
  | Histogram of Histogram.t

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 64

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Timer _ -> "timer"
  | Histogram _ -> "histogram"

let find t name ~kind ~make ~extract =
  match Hashtbl.find_opt t name with
  | None ->
      let cell = make () in
      Hashtbl.replace t name cell;
      (match extract cell with Some c -> c | None -> assert false)
  | Some existing -> (
      match extract existing with
      | Some c -> c
      | None ->
          invalid_arg
            (Printf.sprintf "Obs registry: %S is a %s, requested as %s" name
               (kind_name existing) kind))

let counter t name =
  find t name ~kind:"counter"
    ~make:(fun () -> Counter (Metric.make_counter ()))
    ~extract:(function Counter c -> Some c | _ -> None)

let gauge t name =
  find t name ~kind:"gauge"
    ~make:(fun () -> Gauge (Metric.make_gauge ()))
    ~extract:(function Gauge g -> Some g | _ -> None)

let timer t name =
  find t name ~kind:"timer"
    ~make:(fun () -> Timer (Metric.make_timer ()))
    ~extract:(function Timer tm -> Some tm | _ -> None)

let histogram t name =
  find t name ~kind:"histogram"
    ~make:(fun () -> Histogram (Histogram.create ()))
    ~extract:(function Histogram h -> Some h | _ -> None)

let entries t =
  Hashtbl.fold (fun name entry acc -> (name, entry) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  Hashtbl.iter
    (fun _ entry ->
      match entry with
      | Counter c -> Atomic.set c 0
      | Gauge g -> Atomic.set g 0
      | Timer tm -> Metric.timer_reset tm
      | Histogram h -> Histogram.reset h)
    t
