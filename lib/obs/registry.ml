type entry =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Sharded of Metric.sharded
  | Timer of Metric.timer
  | Histogram of Histogram.t

(* The table is mutated on first use of each name — which can now happen
   on a pool worker (a span closing registers its timer) — so every
   access goes through the mutex.  Lookups are module-init or span-close
   frequency, never per-gate, so the lock is not on a hot path. *)
type t = { tbl : (string, entry) Hashtbl.t; mu : Mutex.t }

let create () : t = { tbl = Hashtbl.create 64; mu = Mutex.create () }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Sharded _ -> "sharded counter"
  | Timer _ -> "timer"
  | Histogram _ -> "histogram"

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let find t name ~kind ~make ~extract =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl name with
  | None ->
      let cell = make () in
      Hashtbl.replace t.tbl name cell;
      (match extract cell with Some c -> c | None -> assert false)
  | Some existing -> (
      match extract existing with
      | Some c -> c
      | None ->
          invalid_arg
            (Printf.sprintf "Obs registry: %S is a %s, requested as %s" name
               (kind_name existing) kind))

let counter t name =
  find t name ~kind:"counter"
    ~make:(fun () -> Counter (Metric.make_counter ()))
    ~extract:(function Counter c -> Some c | _ -> None)

let gauge t name =
  find t name ~kind:"gauge"
    ~make:(fun () -> Gauge (Metric.make_gauge ()))
    ~extract:(function Gauge g -> Some g | _ -> None)

let sharded t name =
  find t name ~kind:"sharded counter"
    ~make:(fun () -> Sharded (Metric.make_sharded ()))
    ~extract:(function Sharded s -> Some s | _ -> None)

let timer t name =
  find t name ~kind:"timer"
    ~make:(fun () -> Timer (Metric.make_timer ()))
    ~extract:(function Timer tm -> Some tm | _ -> None)

let histogram t name =
  find t name ~kind:"histogram"
    ~make:(fun () -> Histogram (Histogram.create ()))
    ~extract:(function Histogram h -> Some h | _ -> None)

let entries t =
  locked t @@ fun () ->
  Hashtbl.fold (fun name entry acc -> (name, entry) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  locked t @@ fun () ->
  Hashtbl.iter
    (fun _ entry ->
      match entry with
      | Counter c -> Atomic.set c 0
      | Gauge g -> Atomic.set g 0
      | Sharded s -> Metric.sharded_reset s
      | Timer tm -> Metric.timer_reset tm
      | Histogram h -> Histogram.reset h)
    t.tbl
