module Ascii_table = Socet_util.Ascii_table

let partition registry =
  List.fold_left
    (fun (cs, gs, ts, hs) (name, entry) ->
      match entry with
      | Registry.Counter c -> ((name, Metric.value c) :: cs, gs, ts, hs)
      (* Sharded counters export as their exact sum — the sharding is a
         contention optimisation, not a semantic difference. *)
      | Registry.Sharded s -> ((name, Metric.sharded_value s) :: cs, gs, ts, hs)
      | Registry.Gauge g -> (cs, (name, Metric.value g) :: gs, ts, hs)
      | Registry.Timer tm -> (cs, gs, (name, tm) :: ts, hs)
      | Registry.Histogram h -> (cs, gs, ts, (name, h) :: hs))
    ([], [], [], [])
    (List.rev (Registry.entries registry))

let ms us = us /. 1000.0

let stats_table registry =
  let counters, gauges, timers, histograms = partition registry in
  let buf = Buffer.create 1024 in
  let scalar_rows =
    List.map (fun (n, v) -> [ n; "counter"; string_of_int v ]) counters
    @ List.map (fun (n, v) -> [ n; "gauge"; string_of_int v ]) gauges
  in
  if scalar_rows <> [] then
    Buffer.add_string buf
      (Ascii_table.render ~header:[ "metric"; "kind"; "value" ] scalar_rows);
  let timer_rows =
    List.filter_map
      (fun (n, (tm : Metric.timer)) ->
        let count = Metric.timer_count tm in
        let total_us = Metric.timer_total_us tm in
        if count = 0 then None
        else
          Some
            [
              n;
              string_of_int count;
              Printf.sprintf "%.3f" (ms total_us);
              Printf.sprintf "%.1f" (total_us /. float_of_int count);
            ])
      timers
  in
  if timer_rows <> [] then
    Buffer.add_string buf
      (Ascii_table.render
         ~header:[ "timer (span)"; "calls"; "total ms"; "mean us" ]
         timer_rows);
  let histogram_rows =
    List.filter_map
      (fun (n, h) ->
        if Histogram.count h = 0 then None
        else
          let s = Histogram.summarize h in
          let f = Printf.sprintf "%.1f" in
          Some
            [
              n;
              string_of_int s.Histogram.s_count;
              f s.Histogram.s_min;
              f s.Histogram.s_p50;
              f s.Histogram.s_p90;
              f s.Histogram.s_p99;
              f s.Histogram.s_max;
            ])
      histograms
  in
  if histogram_rows <> [] then
    Buffer.add_string buf
      (Ascii_table.render
         ~header:[ "histogram"; "count"; "min"; "p50"; "p90"; "p99"; "max" ]
         histogram_rows);
  if Buffer.length buf = 0 then "(no metrics recorded)\n" else Buffer.contents buf

let stats_json registry =
  let counters, gauges, timers, histograms = partition registry in
  let num_i v = Json.Num (float_of_int v) in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, num_i v)) counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, num_i v)) gauges));
      ( "timers",
        Json.Obj
          (List.map
             (fun (n, (tm : Metric.timer)) ->
               ( n,
                 Json.Obj
                   [
                     ("count", num_i (Metric.timer_count tm));
                     ("total_ms", Json.Num (ms (Metric.timer_total_us tm)));
                   ] ))
             timers) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, h) ->
               let s = Histogram.summarize h in
               ( n,
                 Json.Obj
                   [
                     ("count", num_i s.Histogram.s_count);
                     ("min", Json.Num s.Histogram.s_min);
                     ("mean", Json.Num s.Histogram.s_mean);
                     ("p50", Json.Num s.Histogram.s_p50);
                     ("p90", Json.Num s.Histogram.s_p90);
                     ("p99", Json.Num s.Histogram.s_p99);
                     ("max", Json.Num s.Histogram.s_max);
                   ] ))
             histograms) );
    ]

let trace_json ?(dropped = 0) events =
  let event (ev : Sink.span_event) =
    Json.Obj
      [
        ("name", Json.Str ev.Sink.ev_name);
        ("cat", Json.Str (if ev.Sink.ev_cat = "" then "app" else ev.Sink.ev_cat));
        ("ph", Json.Str "X");
        ("ts", Json.Num ev.Sink.ev_start_us);
        ("dur", Json.Num ev.Sink.ev_dur_us);
        ("pid", Json.Num 1.0);
        ("tid", Json.Num 1.0);
        ("args", Json.Obj [ ("depth", Json.Num (float_of_int ev.Sink.ev_depth)) ]);
      ]
  in
  Json.Obj
    ([
       ("traceEvents", Json.Arr (List.map event events));
       ("displayTimeUnit", Json.Str "ms");
     ]
    @ if dropped > 0 then [ ("droppedEvents", Json.Num (float_of_int dropped)) ] else [])
