(** Primitive metric cells: atomic counters/gauges and monotonic timers.

    Every cell is safe to update from any domain: counters and gauges are
    [Atomic.t] ints, and timers keep their call count and accumulated
    wall-time (microseconds) in atomics as well — the pool workers in
    [Socet_util.Pool] close spans concurrently, and each close lands in a
    shared registry timer. *)

type counter = int Atomic.t
type gauge = int Atomic.t

val make_counter : unit -> counter
val make_gauge : unit -> gauge

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** Lock-free monotonic maximum (peak tracking, e.g. D-frontier size). *)

type timer

val make_timer : unit -> timer

val timer_add : timer -> float -> unit
(** Accumulate one call of the given duration (µs); lock-free. *)

val timer_count : timer -> int
val timer_total_us : timer -> float
val timer_reset : timer -> unit
