(** Primitive metric cells: atomic counters/gauges and monotonic timers.

    Counters and gauges are [Atomic.t] ints so instrumented engines stay
    safe if a future PR parallelizes them across domains.  Timers
    accumulate wall-time (microseconds) and a call count; they are plain
    mutable records — per-domain use only, like the span stack. *)

type counter = int Atomic.t
type gauge = int Atomic.t

val make_counter : unit -> counter
val make_gauge : unit -> gauge

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** Lock-free monotonic maximum (peak tracking, e.g. D-frontier size). *)

type timer = { mutable tm_count : int; mutable tm_total_us : float }

val make_timer : unit -> timer
val timer_add : timer -> float -> unit
val timer_reset : timer -> unit
