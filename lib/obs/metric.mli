(** Primitive metric cells: atomic counters/gauges and monotonic timers.

    Every cell is safe to update from any domain: counters and gauges are
    [Atomic.t] ints, and timers keep their call count and accumulated
    wall-time (microseconds) in atomics as well — the pool workers in
    [Socet_util.Pool] close spans concurrently, and each close lands in a
    shared registry timer. *)

type counter = int Atomic.t
type gauge = int Atomic.t

val make_counter : unit -> counter
val make_gauge : unit -> gauge

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** Lock-free monotonic maximum (peak tracking, e.g. D-frontier size). *)

type sharded
(** A counter split into one cell per pool domain slot
    ({!Socet_util.Pool.domain_slot}): increments from inside parallel
    regions stay on the caller's own cache line; the value is the exact
    sum over the cells. *)

val make_sharded : unit -> sharded
val sharded_incr : sharded -> unit
val sharded_add : sharded -> int -> unit
val sharded_value : sharded -> int

val sharded_shards : sharded -> int array
(** Per-slot snapshot (index = {!Socet_util.Pool.domain_slot}); slot 0 is
    the submitting domain. *)

val sharded_reset : sharded -> unit

type timer

val make_timer : unit -> timer

val timer_add : timer -> float -> unit
(** Accumulate one call of the given duration (µs); lock-free. *)

val timer_count : timer -> int
val timer_total_us : timer -> float
val timer_reset : timer -> unit
