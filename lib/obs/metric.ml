type counter = int Atomic.t
type gauge = int Atomic.t

let make_counter () = Atomic.make 0
let make_gauge () = Atomic.make 0

let incr = Atomic.incr
let add c n = ignore (Atomic.fetch_and_add c n)
let value = Atomic.get

let set = Atomic.set

let rec set_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then set_max g v

type timer = { mutable tm_count : int; mutable tm_total_us : float }

let make_timer () = { tm_count = 0; tm_total_us = 0.0 }

let timer_add t us =
  t.tm_count <- t.tm_count + 1;
  t.tm_total_us <- t.tm_total_us +. us

let timer_reset t =
  t.tm_count <- 0;
  t.tm_total_us <- 0.0
