type counter = int Atomic.t
type gauge = int Atomic.t

let make_counter () = Atomic.make 0
let make_gauge () = Atomic.make 0

let incr = Atomic.incr
let add c n = ignore (Atomic.fetch_and_add c n)
let value = Atomic.get

let set = Atomic.set

(* Sharded counter: one atomic cell per pool domain slot.  Hot-path
   increments from inside parallel regions (PODEM decisions, fault
   evals) land on the calling domain's own cell instead of bouncing one
   cache line across every core; reads sum the cells, so totals are
   exact.  Per-shard readouts let the bench attribute work to domains. *)
type sharded = int Atomic.t array

let make_sharded () =
  Array.init Socet_util.Pool.max_slots (fun _ -> Atomic.make 0)

let sharded_incr s =
  Atomic.incr (Array.unsafe_get s (Socet_util.Pool.domain_slot ()))

let sharded_add s n =
  ignore
    (Atomic.fetch_and_add (Array.unsafe_get s (Socet_util.Pool.domain_slot ())) n)

let sharded_value s = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 s
let sharded_shards s = Array.map Atomic.get s
let sharded_reset s = Array.iter (fun c -> Atomic.set c 0) s

let rec set_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then set_max g v

(* Timers accumulate from every domain (pool workers close spans too), so
   the float total lives behind a CAS loop on the boxed value — no float
   atomics in the stdlib, but compare-and-set on the box is enough. *)
type timer = { tm_count : int Atomic.t; tm_total_us : float Atomic.t }

let make_timer () = { tm_count = Atomic.make 0; tm_total_us = Atomic.make 0.0 }

let rec atomic_add_float a d =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. d)) then atomic_add_float a d

let timer_add t us =
  Atomic.incr t.tm_count;
  atomic_add_float t.tm_total_us us

let timer_count t = Atomic.get t.tm_count
let timer_total_us t = Atomic.get t.tm_total_us

let timer_reset t =
  Atomic.set t.tm_count 0;
  Atomic.set t.tm_total_us 0.0
