(** Exporters: human-readable stats tables, flat stats JSON, and Chrome
    trace-event JSON (loadable in chrome://tracing or https://ui.perfetto.dev). *)

val stats_table : Registry.t -> string
(** ASCII tables (via [Socet_util.Ascii_table]) of all non-empty metric
    sections: counters/gauges, timers, histograms. *)

val stats_json : Registry.t -> Json.t
(** Flat dump:
    [{"counters": {..}, "gauges": {..}, "timers": {name: {count, total_ms}},
      "histograms": {name: {count, min, mean, p50, p90, p99, max}}}]. *)

val trace_json : ?dropped:int -> Sink.span_event list -> Json.t
(** Chrome trace-event JSON object format: complete ("ph":"X") events with
    microsecond timestamps, one process/thread. *)
