type state = { mutable on : bool; mutable sink : Sink.t }

let st = { on = false; sink = Sink.noop }
let registry = Registry.create ()

let configure ?(trace = false) ?trace_limit ?stream () =
  st.sink <-
    (match stream with
    | Some path -> Sink.file path
    | None -> if trace then Sink.memory ?limit:trace_limit () else Sink.noop);
  st.on <- true;
  Clock.reset ()

let flush () = st.sink.Sink.flush ()

let disable () = st.on <- false
let enabled () = st.on

let reset () =
  Registry.reset registry;
  st.sink.Sink.clear ();
  Span.reset ()

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type counter = Metric.counter
type gauge = Metric.gauge
type histogram = Histogram.t
type timer = Metric.timer

let scoped scope name = if scope = "" then name else scope ^ "." ^ name

let counter ?(scope = "") name = Registry.counter registry (scoped scope name)
let incr c = if st.on then Metric.incr c
let add c n = if st.on then Metric.add c n
let value = Metric.value

type sharded = Metric.sharded

let sharded_counter ?(scope = "") name =
  Registry.sharded registry (scoped scope name)

let sincr s = if st.on then Metric.sharded_incr s
let sadd s n = if st.on then Metric.sharded_add s n
let svalue = Metric.sharded_value
let sshards = Metric.sharded_shards

let gauge ?(scope = "") name = Registry.gauge registry (scoped scope name)
let set_gauge g v = if st.on then Metric.set g v
let max_gauge g v = if st.on then Metric.set_max g v

let histogram ?(scope = "") name = Registry.histogram registry (scoped scope name)
let observe h v = if st.on then Histogram.observe h v

let timer ?(scope = "") name = Registry.timer registry (scoped scope name)

let time tm f =
  if not st.on then f ()
  else begin
    let t0 = Clock.now_us () in
    Fun.protect ~finally:(fun () -> Metric.timer_add tm (Clock.now_us () -. t0)) f
  end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let with_span ?(cat = "app") name f =
  if not st.on then f ()
  else begin
    Span.enter ~name ~cat;
    Fun.protect ~finally:(fun () -> Span.leave ~sink:st.sink ~registry) f
  end

(* ------------------------------------------------------------------ *)
(* Introspection and export                                            *)
(* ------------------------------------------------------------------ *)

let span_events () = st.sink.Sink.events ()

let snapshot_counters () =
  List.filter_map
    (function
      | n, Registry.Counter c -> Some (n, Metric.value c)
      | n, Registry.Sharded s -> Some (n, Metric.sharded_value s)
      | _ -> None)
    (Registry.entries registry)

let snapshot_gauges () =
  List.filter_map
    (function n, Registry.Gauge g -> Some (n, Metric.value g) | _ -> None)
    (Registry.entries registry)

let snapshot_timers () =
  List.filter_map
    (function
      | n, Registry.Timer tm ->
          Some (n, (Metric.timer_count tm, Metric.timer_total_us tm))
      | _ -> None)
    (Registry.entries registry)

let snapshot_histograms () =
  List.filter_map
    (function
      | n, Registry.Histogram h -> Some (n, Histogram.summarize h) | _ -> None)
    (Registry.entries registry)

let timer_total_ms name =
  match List.assoc_opt name (snapshot_timers ()) with
  | Some (_, total_us) -> total_us /. 1000.0
  | None -> 0.0

let stats_table () = Export.stats_table registry
let stats_json () = Json.to_string ~pretty:true (Export.stats_json registry)

let trace_json () =
  Json.to_string
    (Export.trace_json ~dropped:(st.sink.Sink.dropped ()) (span_events ()))

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (trace_json ());
      output_char oc '\n')
