(** The metric registry: named counters, gauges, timers and histograms.

    Lookups are idempotent — asking twice for the same name returns the
    same cell, so engines can declare their metrics at module-init time
    and tests can reach the identical cells by name.  Asking for an
    existing name with a different kind raises [Invalid_argument]: metric
    names are a global namespace and silent aliasing would corrupt both. *)

type entry =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Sharded of Metric.sharded
  | Timer of Metric.timer
  | Histogram of Histogram.t

type t

val create : unit -> t

val counter : t -> string -> Metric.counter
val gauge : t -> string -> Metric.gauge
val sharded : t -> string -> Metric.sharded
val timer : t -> string -> Metric.timer
val histogram : t -> string -> Histogram.t

val entries : t -> (string * entry) list
(** All registered metrics, sorted by name. *)

val reset : t -> unit
(** Zero every cell (the cells themselves stay registered — engine-held
    handles remain valid). *)
