(* Buckets span 2^min_exp .. 2^max_exp with [n_sub] linear sub-buckets per
   octave.  Everything below the range lands in bucket 0, everything above
   in the last bucket; clamping against the exact min/max keeps reported
   quantiles honest at the edges. *)

let n_sub = 8
let min_exp = -10 (* ~1 millisecond when values are microseconds *)
let max_exp = 52
let n_buckets = (max_exp - min_exp) * n_sub

type t = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array;
  (* Observations can arrive from pool worker domains; count/sum/min/max
     update together, so a per-histogram mutex keeps them coherent. *)
  mu : Mutex.t;
}

let create () =
  {
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
    buckets = Array.make n_buckets 0;
    mu = Mutex.create ();
  }

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let index_of v =
  if v <= 0.0 then 0
  else
    let l = Float.log2 v in
    clamp 0 (n_buckets - 1)
      (int_of_float (Float.floor ((l -. float_of_int min_exp) *. float_of_int n_sub)))

(* Geometric midpoint of bucket [i]. *)
let representative i =
  Float.exp2 (float_of_int min_exp +. ((float_of_int i +. 0.5) /. float_of_int n_sub))

let observe t v =
  let v = Float.max 0.0 v in
  Mutex.lock t.mu;
  t.h_count <- t.h_count + 1;
  t.h_sum <- t.h_sum +. v;
  if v < t.h_min then t.h_min <- v;
  if v > t.h_max then t.h_max <- v;
  let i = index_of v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  Mutex.unlock t.mu

let count t = t.h_count
let sum t = t.h_sum
let min_value t = if t.h_count = 0 then 0.0 else t.h_min
let max_value t = if t.h_count = 0 then 0.0 else t.h_max

let quantile t q =
  if t.h_count = 0 then 0.0
  else begin
    let q = clamp 0.0 1.0 q in
    let rank = q *. float_of_int (t.h_count - 1) in
    let rec walk i cum =
      if i >= n_buckets then t.h_max
      else
        let cum = cum + t.buckets.(i) in
        if float_of_int cum > rank then representative i else walk (i + 1) cum
    in
    clamp t.h_min t.h_max (walk 0 0)
  end

type summary = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let summarize t =
  {
    s_count = t.h_count;
    s_sum = t.h_sum;
    s_min = min_value t;
    s_max = max_value t;
    s_mean = (if t.h_count = 0 then 0.0 else t.h_sum /. float_of_int t.h_count);
    s_p50 = quantile t 0.5;
    s_p90 = quantile t 0.9;
    s_p99 = quantile t 0.99;
  }

let reset t =
  Mutex.lock t.mu;
  t.h_count <- 0;
  t.h_sum <- 0.0;
  t.h_min <- infinity;
  t.h_max <- neg_infinity;
  Array.fill t.buckets 0 n_buckets 0;
  Mutex.unlock t.mu
