type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  (* JSON has no inf/nan literals; clamp rather than emit garbage. *)
  if Float.is_nan f || not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            go (depth + 1) item)
          items;
        newline ();
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            escape buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) item)
          fields;
        newline ();
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* Encode the BMP code point as UTF-8. *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | _ -> fail "unknown escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function Arr items -> Some items | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
