(** The observability facade the SOCET engines instrument against.

    Design: zero cost when disabled.  Every recording entry point first
    checks one mutable boolean; until {!configure} is called, [incr],
    [observe], [time] and [with_span] reduce to that single branch (and
    [with_span f] is exactly [f ()]).  Metric cells are created eagerly at
    engine-module-init time via {!counter}/{!gauge}/{!histogram} so hot
    paths never pay a name lookup.

    Typical use, engine side:
    {[
      let c_backtracks = Obs.counter ~scope:"atpg" "podem.backtracks"
      let () = ... Obs.incr c_backtracks ...
      let run nl = Obs.with_span ~cat:"atpg" "podem.run" (fun () -> ...)
    ]}

    and harness side:
    {[
      Obs.configure ~trace:true ();
      ...run engines...;
      print_string (Obs.stats_table ());
      Obs.write_trace "trace.json"
    ]} *)

(** {1 Lifecycle} *)

val configure : ?trace:bool -> ?trace_limit:int -> ?stream:string -> unit -> unit
(** Turn recording on.  With [trace] (default false) completed spans are
    buffered in memory (bounded by [trace_limit], default 200k events) for
    {!trace_json}/{!write_trace}; without it the no-op sink is kept and
    only registry metrics (counters, timers, histograms) accumulate.
    With [stream] (overrides [trace]) completed spans are appended to the
    named file as JSON lines through {!Sink.file} — unbounded run length,
    bounded memory; remember to {!flush} at the end of the run. *)

val flush : unit -> unit
(** Flush the active sink's pending output (a no-op for the in-memory and
    no-op sinks).  Call before reading a [?stream] file. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero all metrics, clear buffered trace events and the span stack.
    Engine-held metric handles stay valid. *)

(** {1 Metrics} *)

type counter = Metric.counter
type gauge = Metric.gauge
type histogram = Histogram.t
type timer = Metric.timer

val counter : ?scope:string -> string -> counter
(** Registered as ["<scope>.<name>"]; idempotent per full name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type sharded = Metric.sharded

val sharded_counter : ?scope:string -> string -> sharded
(** A counter with one cell per pool domain slot
    ({!Socet_util.Pool.domain_slot}).  Use for counters incremented
    inside parallel regions (PODEM decisions, fault evaluations): the
    hot-path increment stays on the calling domain's own cache line.
    Reported everywhere (snapshots, stats table, JSON) as the exact sum
    of the cells, under the same name rules as {!counter}. *)

val sincr : sharded -> unit
val sadd : sharded -> int -> unit
val svalue : sharded -> int

val sshards : sharded -> int array
(** Per-domain-slot snapshot; index 0 is the submitting domain. *)

val gauge : ?scope:string -> string -> gauge
val set_gauge : gauge -> int -> unit
val max_gauge : gauge -> int -> unit

val histogram : ?scope:string -> string -> histogram
val observe : histogram -> float -> unit

val timer : ?scope:string -> string -> timer
val time : timer -> (unit -> 'a) -> 'a
(** Runs the thunk, accumulating wall time when enabled. *)

(** {1 Spans} *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** Hierarchical wall-time span around the thunk.  Nested calls record
    their depth; each completed span feeds the trace sink and a registry
    timer named ["<cat>.<name>"].  Exceptions propagate; the span still
    closes. *)

(** {1 Introspection and export} *)

val span_events : unit -> Sink.span_event list
val snapshot_counters : unit -> (string * int) list
val snapshot_gauges : unit -> (string * int) list

val snapshot_timers : unit -> (string * (int * float)) list
(** [(name, (calls, total_us))], sorted by name. *)

val snapshot_histograms : unit -> (string * Histogram.summary) list

val timer_total_ms : string -> float
(** Total accumulated milliseconds of the timer with this full name
    (e.g. ["atpg.podem.run"]); 0 if absent. *)

val stats_table : unit -> string
val stats_json : unit -> string
val trace_json : unit -> string

val write_trace : string -> unit
(** Write {!trace_json} to a file. *)
