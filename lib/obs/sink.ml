type span_event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;
}

type t = {
  emit : span_event -> unit;
  events : unit -> span_event list;
  dropped : unit -> int;
  clear : unit -> unit;
}

let noop =
  {
    emit = ignore;
    events = (fun () -> []);
    dropped = (fun () -> 0);
    clear = (fun () -> ());
  }

let memory ?(limit = 200_000) () =
  (* Spans close on pool workers too; the buffer is shared, so emit and
     clear are serialized.  Uncontended locks cost nanoseconds and span
     closes are engine-phase frequency, not per-gate. *)
  let mu = Mutex.create () in
  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f
  in
  let stored = ref [] (* newest first *) in
  let n = ref 0 in
  let dropped = ref 0 in
  {
    emit =
      (fun ev ->
        locked @@ fun () ->
        if !n < limit then begin
          stored := ev :: !stored;
          incr n
        end
        else incr dropped);
    events = (fun () -> locked @@ fun () -> List.rev !stored);
    dropped = (fun () -> locked @@ fun () -> !dropped);
    clear =
      (fun () ->
        locked @@ fun () ->
        stored := [];
        n := 0;
        dropped := 0);
  }
