type span_event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;
}

type t = {
  emit : span_event -> unit;
  events : unit -> span_event list;
  dropped : unit -> int;
  clear : unit -> unit;
}

let noop =
  {
    emit = ignore;
    events = (fun () -> []);
    dropped = (fun () -> 0);
    clear = (fun () -> ());
  }

let memory ?(limit = 200_000) () =
  let stored = ref [] (* newest first *) in
  let n = ref 0 in
  let dropped = ref 0 in
  {
    emit =
      (fun ev ->
        if !n < limit then begin
          stored := ev :: !stored;
          incr n
        end
        else incr dropped);
    events = (fun () -> List.rev !stored);
    dropped = (fun () -> !dropped);
    clear =
      (fun () ->
        stored := [];
        n := 0;
        dropped := 0);
  }
