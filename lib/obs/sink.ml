type span_event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;
}

type t = {
  emit : span_event -> unit;
  events : unit -> span_event list;
  dropped : unit -> int;
  clear : unit -> unit;
  flush : unit -> unit;
}

let noop =
  {
    emit = ignore;
    events = (fun () -> []);
    dropped = (fun () -> 0);
    clear = (fun () -> ());
    flush = (fun () -> ());
  }

let memory ?(limit = 200_000) () =
  (* Spans close on pool workers too; the buffer is shared, so emit and
     clear are serialized.  Uncontended locks cost nanoseconds and span
     closes are engine-phase frequency, not per-gate. *)
  let mu = Mutex.create () in
  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f
  in
  let stored = ref [] (* newest first *) in
  let n = ref 0 in
  let dropped = ref 0 in
  {
    emit =
      (fun ev ->
        locked @@ fun () ->
        if !n < limit then begin
          stored := ev :: !stored;
          incr n
        end
        else incr dropped);
    events = (fun () -> locked @@ fun () -> List.rev !stored);
    dropped = (fun () -> locked @@ fun () -> !dropped);
    clear =
      (fun () ->
        locked @@ fun () ->
        stored := [];
        n := 0;
        dropped := 0);
    flush = (fun () -> ());
  }

let event_json ev =
  Json.Obj
    [
      ("name", Json.Str ev.ev_name);
      ("cat", Json.Str ev.ev_cat);
      ("ts_us", Json.Num ev.ev_start_us);
      ("dur_us", Json.Num ev.ev_dur_us);
      ("depth", Json.Num (float_of_int ev.ev_depth));
    ]

let file ?(flush_every = 64) path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
  let mu = Mutex.create () in
  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f
  in
  let pending = Buffer.create 4096 in
  let pending_events = ref 0 in
  let dropped = ref 0 in
  let closed = ref false in
  (* Write failures (disk full, revoked mount) must not crash the engine
     mid-run: the event is counted as dropped and streaming stops. *)
  let flush_pending () =
    if not !closed then begin
      try
        Buffer.output_buffer oc pending;
        Buffer.clear pending;
        pending_events := 0;
        flush oc
      with Sys_error _ ->
        closed := true;
        dropped := !dropped + !pending_events;
        Buffer.clear pending;
        pending_events := 0
    end
  in
  let t =
    {
      emit =
        (fun ev ->
          locked @@ fun () ->
          if !closed then incr dropped
          else begin
            Buffer.add_string pending (Json.to_string (event_json ev));
            Buffer.add_char pending '\n';
            incr pending_events;
            if !pending_events >= flush_every then flush_pending ()
          end);
      (* Streamed to disk, not retained: the in-memory view is empty by
         design (use the file).  [clear] only discards unflushed lines. *)
      events = (fun () -> []);
      dropped = (fun () -> locked @@ fun () -> !dropped);
      clear =
        (fun () ->
          locked @@ fun () ->
          Buffer.clear pending;
          pending_events := 0;
          dropped := 0);
      flush = (fun () -> locked flush_pending);
    }
  in
  at_exit (fun () ->
      locked (fun () ->
          flush_pending ();
          if not !closed then begin
            closed := true;
            try close_out oc with Sys_error _ -> ()
          end));
  t
