type frame = { f_name : string; f_cat : string; f_start_us : float }

(* One stack per domain: pool workers open and close their own spans
   without seeing each other's frames.  Closed spans from every domain
   still aggregate into the same shared sink and registry timers. *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let depth () = List.length !(stack ())

let enter ~name ~cat =
  let stack = stack () in
  stack :=
    { f_name = name; f_cat = cat; f_start_us = Clock.since_start_us () } :: !stack

let leave ~sink ~registry =
  let stack = stack () in
  match !stack with
  | [] -> ()
  | frame :: rest ->
      stack := rest;
      let now = Clock.since_start_us () in
      let dur = Float.max 0.0 (now -. frame.f_start_us) in
      sink.Sink.emit
        {
          Sink.ev_name = frame.f_name;
          ev_cat = frame.f_cat;
          ev_start_us = frame.f_start_us;
          ev_dur_us = dur;
          ev_depth = List.length rest;
        };
      let timer_name =
        if frame.f_cat = "" then frame.f_name else frame.f_cat ^ "." ^ frame.f_name
      in
      Metric.timer_add (Registry.timer registry timer_name) dur

let reset () = stack () := []
