(** Hierarchical wall-time spans.

    A span covers one dynamic extent of an engine phase ("podem.run",
    "schedule.build", ...).  Spans nest: entering while another span is
    open records the parent-relative depth, so the Chrome trace viewer
    shows the call hierarchy.  On exit a span is emitted to the active
    sink and its duration is accumulated into a registry timer named
    [<cat>.<name>], which is what the stats table and [BENCH_socet.json]
    report as per-phase wall time.

    The span stack is per-domain (domain-local storage): pool workers
    nest their own spans without interleaving with the submitter's stack,
    while every close still aggregates into the shared sink and registry
    timers.  [Obs] only touches it when observability is enabled. *)

val depth : unit -> int
(** Number of currently open spans on the calling domain. *)

val enter : name:string -> cat:string -> unit

val leave : sink:Sink.t -> registry:Registry.t -> unit
(** Closes the innermost open span; no-op if none is open. *)

val reset : unit -> unit
(** Drop the calling domain's open spans (test isolation / recovery). *)
