(** Minimal JSON value type, printer and parser.

    The repo deliberately has no third-party JSON dependency, but the
    observability exporters must emit machine-readable output (Chrome
    trace-event files, [BENCH_socet.json]) and the test suite must be able
    to re-read and validate what was written.  This module is that tiny,
    self-contained substrate: a strict printer (always emits valid JSON,
    non-finite numbers are clamped to [0]) and a strict recursive-descent
    parser sufficient for round-tripping our own output. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize.  With [pretty] (default false), two-space indentation. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (trailing whitespace allowed). *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_list : t -> t list option
(** The elements of an [Arr]; [None] otherwise. *)

val to_float : t -> float option
(** The payload of a [Num]; [None] otherwise. *)

val to_str : t -> string option
(** The payload of a [Str]; [None] otherwise. *)
