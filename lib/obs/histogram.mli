(** Log-scaled histograms with quantile queries.

    Values are bucketed on a base-2 logarithmic scale with several linear
    sub-buckets per octave (HdrHistogram-style, but tiny): relative error
    of a reported quantile is bounded by one sub-bucket (~9%), while
    memory stays a fixed few hundred ints per histogram.  Exact count,
    sum, min and max are tracked on the side, and quantiles are clamped
    into [[min, max]], so reported quantiles are always monotone in the
    requested rank and bounded by the observed extremes (property-tested
    in [test/test_obs.ml]). *)

type t

val create : unit -> t
val observe : t -> float -> unit
(** Negative values are clamped to 0. *)

val count : t -> int
val sum : t -> float
val min_value : t -> float
(** 0 when empty. *)

val max_value : t -> float
(** 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]] (clamped); 0 when empty. *)

type summary = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

val summarize : t -> summary
val reset : t -> unit
