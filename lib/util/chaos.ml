type state = {
  mutable on : bool;
  mutable prob : float;
  mutable only : string list; (* empty = every site *)
  mutable max_trips : int; (* per-site cap; <= 0 = unlimited *)
  mutable rng : Rng.t;
  trips : (string, int) Hashtbl.t;
}

let st =
  {
    on = false;
    prob = 0.1;
    only = [];
    max_trips = 0;
    rng = Rng.create 0;
    trips = Hashtbl.create 8;
  }

let configure ?(seed = 0) ?(prob = 0.1) ?(only = []) ?(max_trips = 0) enabled =
  st.on <- enabled;
  st.prob <- prob;
  st.only <- only;
  st.max_trips <- max_trips;
  st.rng <- Rng.create seed;
  Hashtbl.reset st.trips

let from_env () =
  match Sys.getenv_opt "SOCET_CHAOS" with
  | None | Some "" | Some "0" -> configure false
  | Some spec ->
      let seed =
        match Sys.getenv_opt "SOCET_CHAOS_SEED" with
        | Some s -> ( match int_of_string_opt s with Some i -> i | None -> 0)
        | None -> 0
      in
      let prob =
        match Sys.getenv_opt "SOCET_CHAOS_P" with
        | Some s -> (
            match float_of_string_opt s with
            | Some p when p >= 0.0 && p <= 1.0 -> p
            | _ -> 0.1)
        | None -> 0.1
      in
      let only =
        if spec = "1" || String.lowercase_ascii spec = "true" then []
        else String.split_on_char ',' spec |> List.filter (fun s -> s <> "")
      in
      let max_trips =
        match Sys.getenv_opt "SOCET_CHAOS_MAX_TRIPS" with
        | Some s -> ( match int_of_string_opt s with Some i when i > 0 -> i | _ -> 0)
        | None -> 0
      in
      configure ~seed ~prob ~only ~max_trips true

let enabled () = st.on

let matches site =
  st.only = [] || List.exists (fun p -> String.starts_with ~prefix:p site) st.only

let tripped site = Option.value ~default:0 (Hashtbl.find_opt st.trips site)

let trip site =
  st.on
  && matches site
  && (st.max_trips <= 0 || tripped site < st.max_trips)
  && Rng.float st.rng < st.prob
  && begin
       Hashtbl.replace st.trips site (1 + tripped site);
       true
     end

let report () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.trips []
  |> List.sort compare
