(* The clock is injected (Socet_core.Resilient installs Obs.Clock at
   module-init time); lib/util links against nothing that can read time. *)
let clock : (unit -> float) option ref = ref None

let set_clock f = clock := Some f

exception Exhausted_exn of string

type t = {
  b_label : string;
  mutable fuel : int;           (* steps remaining; max_int = unlimited *)
  mutable used : int;
  deadline_us : float;          (* absolute; infinity = none *)
  mutable countdown : int;      (* spends until the next clock check *)
  mutable dead : bool;          (* sticky exhaustion *)
  parent : t option;
}

(* Reading the clock on every spend would dominate PODEM's inner loop;
   amortize it. *)
let clock_check_period = 256

let create ?(label = "budget") ?steps ?deadline_s () =
  let deadline_us =
    match (deadline_s, !clock) with
    | Some s, Some now -> now () +. (s *. 1e6)
    | _ -> infinity
  in
  {
    b_label = label;
    fuel = (match steps with Some s -> max 0 s | None -> max_int);
    used = 0;
    deadline_us;
    countdown = clock_check_period;
    dead = false;
    parent = None;
  }

let unlimited () = create ~label:"unlimited" ()

let child ?label ?steps parent =
  {
    b_label = (match label with Some l -> l | None -> parent.b_label ^ ".child");
    fuel =
      (let cap = parent.fuel in
       match steps with Some s -> min (max 0 s) cap | None -> cap);
    used = 0;
    deadline_us = parent.deadline_us;
    countdown = clock_check_period;
    dead = parent.dead;
    parent = Some parent;
  }

let rec deadline_passed b =
  if b.deadline_us = infinity then false
  else
    match !clock with
    | None -> false
    | Some now ->
        if now () > b.deadline_us then begin
          b.dead <- true;
          true
        end
        else (match b.parent with Some p -> deadline_passed p | None -> false)

let rec drain cost b =
  b.used <- b.used + cost;
  if b.fuel <> max_int then b.fuel <- b.fuel - cost;
  if b.fuel < 0 then b.dead <- true;
  b.countdown <- b.countdown - 1;
  if b.countdown <= 0 then begin
    b.countdown <- clock_check_period;
    ignore (deadline_passed b)
  end;
  (match b.parent with Some p -> drain cost p | None -> ());
  if (match b.parent with Some p -> p.dead | None -> false) then b.dead <- true

let spend ?(cost = 1) b =
  if b.dead then false
  else begin
    drain cost b;
    not b.dead
  end

let rec affordable ?(cost = 1) b =
  (not b.dead)
  && (not (deadline_passed b))
  && (b.fuel = max_int || b.fuel >= cost)
  && (match b.parent with Some p -> affordable ~cost p | None -> true)

let exhausted b =
  b.dead
  || (b.deadline_us <> infinity && deadline_passed b)
  ||
  match b.parent with
  | Some p -> p.dead
  | None -> false

let take ?cost b = if not (spend ?cost b) then raise (Exhausted_exn b.b_label)

let spent b = b.used
let remaining_steps b = max 0 b.fuel
let label b = b.b_label

let to_error b ~engine =
  Error.make ~kind:Error.Exhausted ~engine
    ~ctx:[ ("budget", b.b_label); ("steps_spent", string_of_int b.used) ]
    (Printf.sprintf "budget %s exhausted after %d steps" b.b_label b.used)
