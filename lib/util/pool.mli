(** Fixed domain pool with chunked work-stealing and a deterministic
    reduction contract.

    The pool owns [size () - 1] worker domains (the submitting domain is
    the last worker), spawned lazily on the first parallel call and kept
    alive across calls.  Work is split into chunks; idle domains steal the
    next unclaimed chunk via a single atomic cursor, so an uneven workload
    (e.g. faults with very different cone sizes) still load-balances.

    {b Deterministic-reduction contract.}  Every combinator merges partial
    results in {e submission order}: [parallel_map f xs] writes slot [i]
    from [xs.(i)] no matter which domain computed it, and
    [parallel_reduce] folds the mapped values left-to-right over the input
    order.  Provided [f] itself is pure (or touches only atomics/
    per-domain scratch), the N-domain result is bit-identical to the
    1-domain result — the property the SOCET engines' qcheck determinism
    suite pins down.

    Sizing: [SOCET_DOMAINS] in the environment, or {!set_size} (the CLI's
    [--jobs]), else [Domain.recommended_domain_count ()].  At size 1, or
    when called from inside a pool task (nested parallelism), every
    combinator degrades to the plain sequential loop — same results, no
    deadlock. *)

val size : unit -> int
(** Effective pool size (>= 1): the {!set_size} override if any, else
    [SOCET_DOMAINS], else [Domain.recommended_domain_count ()]. *)

val set_size : int -> unit
(** Override the pool size (clamped to >= 1).  An existing pool of a
    different size is torn down and respawned on the next parallel call. *)

val parallel_map : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] computed on the pool.
    [chunk] is the work-stealing granularity (default [len / (4 * size)],
    at least 1).  Output order is input order.  The first exception raised
    by [f] is re-raised on the calling domain after all chunks settle. *)

val parallel_map_list : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map f xs] on the pool; order preserved. *)

val parallel_reduce :
  ?chunk:int ->
  map:('a -> 'b) ->
  merge:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** Maps on the pool, then folds [merge] sequentially over the results in
    submission order — deterministic even when [merge] is not
    commutative. *)

val shutdown : unit -> unit
(** Join and discard the worker domains (idempotent).  A later parallel
    call respawns them; registered with [at_exit] automatically. *)
