(** Fixed domain pool with chunked work-stealing and a deterministic
    reduction contract.

    The pool owns [size () - 1] worker domains (the submitting domain is
    the last worker), spawned lazily on the first parallel call and kept
    alive across calls.  Work is split into chunks; idle domains steal the
    next unclaimed chunk via a single atomic cursor, so an uneven workload
    (e.g. faults with very different cone sizes) still load-balances.

    {b Deterministic-reduction contract.}  Every combinator merges partial
    results in {e submission order}: [parallel_map f xs] writes slot [i]
    from [xs.(i)] no matter which domain computed it, and
    [parallel_reduce] folds the mapped values left-to-right over the input
    order.  Provided [f] itself is pure (or touches only atomics/
    per-domain scratch), the N-domain result is bit-identical to the
    1-domain result — the property the SOCET engines' qcheck determinism
    suite pins down.

    Sizing: [SOCET_DOMAINS] in the environment, or {!set_size} (the CLI's
    [--jobs]), else [Domain.recommended_domain_count ()].  At size 1, or
    when called from inside a pool task (nested parallelism), every
    combinator degrades to the plain sequential loop — same results, no
    deadlock. *)

val size : unit -> int
(** Effective pool size (>= 1): the {!set_size} override if any, else
    [SOCET_DOMAINS], else [Domain.recommended_domain_count ()]. *)

val set_size : int -> unit
(** Override the pool size (clamped to >= 1).  An existing pool of a
    different size is torn down and respawned on the next parallel call. *)

val max_slots : int
(** Upper bound on {!domain_slot} values (a power of two; currently 64).
    Per-domain state indexed by slot needs exactly this many cells. *)

val domain_slot : unit -> int
(** A stable small index for the calling domain: 0 on the submitting
    domain, [1 .. max_slots - 1] on pool workers (assigned at spawn; a
    pool larger than [max_slots - 1] workers aliases slots, which only
    adds contention on shared cells, never incorrect totals).  Sharded
    metric cells ({!Socet_obs.Obs.sharded_counter}) and per-domain
    scratch index by it. *)

val chunk_size : ?chunk:int -> ?cost:float -> int -> int
(** The work-stealing granularity the combinators below use for [n]
    items, exposed for tests and tuning.  Priority: the [SOCET_CHUNK]
    environment variable (pins the size for experiments), then [chunk],
    then the heuristic: at least [n / (4 * size ())] (4 chunks per
    domain), raised until a chunk carries ~2048 estimated work units
    when [cost] (units per item, e.g. p50 gates per fault cone) says
    items are tiny — coarse shards instead of per-item fan-out. *)

val parallel_iter_ranges :
  ?chunk:int -> ?cost:float -> int -> (int -> int -> unit) -> unit
(** [parallel_iter_ranges n f] partitions [0 .. n-1] into chunks (see
    {!chunk_size}) and calls [f lo hi] (hi exclusive) for each, stolen
    across the pool.  The coarse-shard primitive: one parallel region
    per engine call, with each domain looping over a whole index range
    so per-domain scratch persists across the items it owns. *)

val parallel_map : ?chunk:int -> ?cost:float -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] computed on the pool.
    [chunk]/[cost] control the work-stealing granularity (see
    {!chunk_size}).  Output order is input order.  The first exception
    raised by [f] is re-raised on the calling domain after all chunks
    settle. *)

val parallel_map_list : ?chunk:int -> ?cost:float -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map f xs] on the pool; order preserved. *)

val parallel_reduce :
  ?chunk:int ->
  ?cost:float ->
  map:('a -> 'b) ->
  merge:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** Maps on the pool, then folds [merge] sequentially over the results in
    submission order — deterministic even when [merge] is not
    commutative. *)

val shutdown : unit -> unit
(** Join and discard the worker domains (idempotent).  A later parallel
    call respawns them; registered with [at_exit] automatically. *)
