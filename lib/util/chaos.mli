(** Fault injection (chaos) harness.

    Engines expose named {e chaos sites} — points where a real deployment
    could fail: a path search giving up, a router finding no route, an ATPG
    budget tripping.  Each site asks {!trip} whether it should fail {e this
    time}; when the harness is off (the default) that is a single boolean
    load, so production paths pay nothing.

    The point of the harness is the contract tested by [test/test_chaos.ml]:
    under {e any} combination of injected failures the pipeline must
    terminate with either a valid degraded result (see
    [Socet_core.Resilient]) or a structured {!Error.t} — never an uncaught
    exception.

    Sites are dotted names mirroring the observability metric namespace
    ("core.tsearch.solve", "core.access.justify", "atpg.podem.generate").
    {!configure} can restrict injection to a site-name prefix list, so a
    test can fail {e only} the transparency scheduler and assert the
    FSCAN-BSCAN fallback fires.

    Environment activation (used by the CLI and the CI chaos job):
    - [SOCET_CHAOS]: unset/"0" = off; "1" = all sites; otherwise a
      comma-separated list of site-name prefixes;
    - [SOCET_CHAOS_SEED]: deterministic stream seed (default 0);
    - [SOCET_CHAOS_P]: per-hit failure probability (default 0.1);
    - [SOCET_CHAOS_MAX_TRIPS]: per-site injection cap (default
      unlimited) — lets a supervision test kill a worker {e exactly
      once} and assert recovery, or bound total injected crashes below
      a retry budget. *)

val configure :
  ?seed:int -> ?prob:float -> ?only:string list -> ?max_trips:int -> bool -> unit
(** [configure enabled] (re)arms the harness.  [only] restricts injection
    to sites whose name starts with one of the given prefixes (default:
    all sites).  [prob] is the per-hit failure probability (default 0.1);
    [1.0] makes every matching site fail deterministically.  [max_trips]
    caps how many times each site may trip ([<= 0], the default, is
    unlimited); a capped site stops consuming the random stream. *)

val from_env : unit -> unit
(** Arm from [SOCET_CHAOS]/[SOCET_CHAOS_SEED]/[SOCET_CHAOS_P]; off when
    [SOCET_CHAOS] is unset, empty or "0". *)

val enabled : unit -> bool

val trip : string -> bool
(** [trip site] — should this site fail now?  Always [false] when the
    harness is off.  Deterministic given the seed and the call sequence.
    Records the hit (see {!report}). *)

val report : unit -> (string * int) list
(** Injected-failure counts per site since the last {!configure}, sorted
    by site name.  Empty when nothing tripped. *)
