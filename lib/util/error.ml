type kind = Invalid_input | Validation | Exhausted | Overloaded | Internal

type t = {
  err_engine : string;
  err_kind : kind;
  err_ctx : (string * string) list;
  err_msg : string;
}

exception Socet_error of t

let make ?(kind = Invalid_input) ?(ctx = []) ~engine msg =
  { err_engine = engine; err_kind = kind; err_ctx = ctx; err_msg = msg }

let raisef ?kind ?ctx ~engine fmt =
  Printf.ksprintf (fun msg -> raise (Socet_error (make ?kind ?ctx ~engine msg))) fmt

let error ?kind ?ctx ~engine msg = Result.error (make ?kind ?ctx ~engine msg)

let kind_name = function
  | Invalid_input -> "invalid input"
  | Validation -> "validation"
  | Exhausted -> "budget exhausted"
  | Overloaded -> "overloaded"
  | Internal -> "internal"

let to_string e =
  let ctx =
    match e.err_ctx with
    | [] -> ""
    | l ->
        " ["
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
        ^ "]"
  in
  Printf.sprintf "socet: %s %s: %s%s" e.err_engine (kind_name e.err_kind)
    e.err_msg ctx

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* Registered so an error escaping all the way out of a test binary still
   prints its structure instead of "Socet_error(_)". *)
let () =
  Printexc.register_printer (function
    | Socet_error e -> Some (to_string e)
    | _ -> None)

let guard ~engine f =
  try Ok (f ()) with
  | Socet_error e -> Error e
  | Invalid_argument msg -> error ~engine msg
  | Failure msg -> error ~engine msg
  | Not_found -> error ~kind:Internal ~engine "lookup failed (Not_found)"
  | Stack_overflow -> error ~kind:Internal ~engine "stack overflow"

let exit_code e =
  match e.err_kind with
  | Invalid_input | Validation -> 3
  | Exhausted -> 4
  | Overloaded -> 5
  | Internal -> 1
