(* A fixed pool of worker domains fed one job at a time.  A job is a
   closure over chunk indices plus an atomic cursor; every participating
   domain (workers and the submitter) repeatedly claims the next chunk
   with fetch-and-add until the cursor passes the end — chunked work
   stealing with no per-chunk allocation or locking.

   Determinism: results are written into caller-owned slots indexed by the
   input position, so the merge order is the submission order regardless
   of which domain ran which chunk. *)

(* ------------------------------------------------------------------ *)
(* Sizing                                                              *)
(* ------------------------------------------------------------------ *)

let env_size () =
  match Sys.getenv_opt "SOCET_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let requested = ref None

let size () =
  match !requested with
  | Some n -> n
  | None -> (
      match env_size () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()))

(* ------------------------------------------------------------------ *)
(* Per-domain slots                                                    *)
(* ------------------------------------------------------------------ *)

(* A stable small index per participating domain: 0 for the submitter,
   1.. for the workers (assigned at spawn).  Sharded metric cells and
   other per-domain scratch are indexed by it, so it is bounded by
   [max_slots]; a pool larger than that aliases worker slots, which only
   costs contention, never correctness. *)
let max_slots = 64

let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let domain_slot () = Domain.DLS.get slot_key

(* ------------------------------------------------------------------ *)
(* Jobs and the pool                                                   *)
(* ------------------------------------------------------------------ *)

type job = {
  j_run : int -> unit;
  j_chunks : int;
  j_next : int Atomic.t; (* work-stealing cursor *)
  j_completed : int Atomic.t;
  j_exn : exn option Atomic.t; (* first failure wins *)
}

type pool = {
  mu : Mutex.t;
  cv : Condition.t; (* workers: a new job (or shutdown) is posted *)
  done_cv : Condition.t; (* submitter: all chunks completed *)
  mutable job : job option;
  mutable gen : int; (* bumped per job so sleeping workers notice *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let current : pool option ref = ref None

(* Serializes submitters; only one job is in flight at a time. *)
let submit_mu = Mutex.create ()

(* True while this domain is executing pool work (worker domains always;
   the submitter while it participates).  Nested parallel calls then run
   sequentially instead of deadlocking on [submit_mu]. *)
let in_pool : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let note_exn j e = ignore (Atomic.compare_and_set j.j_exn None (Some e))

let help (j : job) =
  let rec claim () =
    let i = Atomic.fetch_and_add j.j_next 1 in
    if i < j.j_chunks then begin
      (try j.j_run i with e -> note_exn j e);
      ignore (Atomic.fetch_and_add j.j_completed 1);
      claim ()
    end
  in
  claim ()

let signal_if_done pool j =
  if Atomic.get j.j_completed >= j.j_chunks then begin
    Mutex.lock pool.mu;
    Condition.broadcast pool.done_cv;
    Mutex.unlock pool.mu
  end

let worker pool slot start_gen () =
  Domain.DLS.set in_pool true;
  Domain.DLS.set slot_key slot;
  let rec loop last_gen =
    Mutex.lock pool.mu;
    while (not pool.stop) && pool.gen = last_gen do
      Condition.wait pool.cv pool.mu
    done;
    if pool.stop then Mutex.unlock pool.mu
    else begin
      let gen = pool.gen and job = pool.job in
      Mutex.unlock pool.mu;
      (match job with
      | Some j ->
          help j;
          signal_if_done pool j
      | None -> ());
      loop gen
    end
  in
  loop start_gen

let teardown p =
  Mutex.lock p.mu;
  p.stop <- true;
  Condition.broadcast p.cv;
  Mutex.unlock p.mu;
  List.iter Domain.join p.workers

let shutdown () =
  match !current with
  | None -> ()
  | Some p ->
      current := None;
      teardown p

let at_exit_registered = ref false

let ensure_pool () =
  let want = size () - 1 in
  match !current with
  | Some p when List.length p.workers = want -> p
  | stale ->
      Option.iter teardown stale;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit shutdown
      end;
      let p =
        {
          mu = Mutex.create ();
          cv = Condition.create ();
          done_cv = Condition.create ();
          job = None;
          gen = 0;
          stop = false;
          workers = [];
        }
      in
      p.workers <-
        List.init want (fun i ->
            let slot = 1 + (i mod (max_slots - 1)) in
            Domain.spawn (worker p slot p.gen));
      current := Some p;
      p

let set_size n =
  requested := Some (max 1 n);
  (* A live pool of the wrong size is respawned lazily by [ensure_pool];
     tear it down eagerly so idle domains don't linger. *)
  match !current with
  | Some p when List.length p.workers <> size () - 1 -> shutdown ()
  | _ -> ()

(* Run [run 0 .. run (chunks-1)], in parallel when worthwhile. *)
let run_chunks ~chunks run =
  if chunks <= 1 || size () = 1 || Domain.DLS.get in_pool then
    for i = 0 to chunks - 1 do
      run i
    done
  else begin
    Mutex.lock submit_mu;
    let finally () = Mutex.unlock submit_mu in
    Fun.protect ~finally @@ fun () ->
    let pool = ensure_pool () in
    let j =
      {
        j_run = run;
        j_chunks = chunks;
        j_next = Atomic.make 0;
        j_completed = Atomic.make 0;
        j_exn = Atomic.make None;
      }
    in
    Mutex.lock pool.mu;
    pool.job <- Some j;
    pool.gen <- pool.gen + 1;
    Condition.broadcast pool.cv;
    Mutex.unlock pool.mu;
    Domain.DLS.set in_pool true;
    help j;
    Domain.DLS.set in_pool false;
    Mutex.lock pool.mu;
    while Atomic.get j.j_completed < j.j_chunks do
      Condition.wait pool.done_cv pool.mu
    done;
    pool.job <- None;
    Mutex.unlock pool.mu;
    match Atomic.get j.j_exn with Some e -> raise e | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

(* [SOCET_CHUNK] pins the work-stealing granularity for experiments;
   read once, like [SOCET_DOMAINS]. *)
let env_chunk =
  lazy
    (match Sys.getenv_opt "SOCET_CHUNK" with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Some n
        | _ -> None))

(* Minimum work units a chunk should carry before fan-out pays for the
   cursor traffic and wake-ups.  With [cost] (estimated units per item,
   e.g. gates per fault cone) the caller turns a sea of tiny items into
   coarse shards: chunk = max(items for 4 chunks/domain, items to reach
   [grain] units).  Without [cost] the old 4-chunks-per-domain split is
   kept, so existing callers are unchanged. *)
let grain = 2048.0

let chunk_size ?chunk ?cost n =
  match Lazy.force env_chunk with
  | Some c -> max 1 c
  | None -> (
      match chunk with
      | Some c -> max 1 c
      | None ->
          let by_balance = max 1 (n / (4 * size ())) in
          let by_grain =
            match cost with
            | None -> 1
            | Some c -> int_of_float (ceil (grain /. Float.max 1.0 c))
          in
          max by_balance by_grain)

let parallel_iter_ranges ?chunk ?cost n f =
  if n > 0 then begin
    let c = chunk_size ?chunk ?cost n in
    let chunks = (n + c - 1) / c in
    run_chunks ~chunks (fun k -> f (k * c) (min n ((k + 1) * c)))
  end

let parallel_map ?chunk ?cost f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let c = chunk_size ?chunk ?cost n in
    let chunks = (n + c - 1) / c in
    let out = Array.make n None in
    run_chunks ~chunks (fun k ->
        let lo = k * c in
        let hi = min n (lo + c) - 1 in
        for i = lo to hi do
          out.(i) <- Some (f xs.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map_list ?chunk ?cost f xs =
  Array.to_list (parallel_map ?chunk ?cost f (Array.of_list xs))

let parallel_reduce ?chunk ?cost ~map ~merge ~init xs =
  Array.fold_left merge init (parallel_map ?chunk ?cost map xs)
