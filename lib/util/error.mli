(** Structured errors shared by every SOCET engine.

    The paper's flow is a pipeline of engines (RTL → RCG → netlist → ATPG →
    chip-level scheduling); when one of them rejects its input or runs out
    of budget, the caller needs to know {e which} engine failed, {e why},
    and {e on what} (core name, net id, fault id) — not just a string.
    Engines raise {!Socet_error} at their public boundary; pipeline entry
    points catch it with {!guard} and return a [result]; the CLI maps
    {!exit_code} onto the process status.

    Convention (see DESIGN.md "Error handling"): exceptions are for
    programming errors inside one engine (e.g. [Bitvec] index checks stay
    [Invalid_argument]); anything caused by {e input} crossing an engine
    boundary — a malformed core, an inconsistent SOC, an unschedulable
    netlist — is a structured {!t}. *)

type kind =
  | Invalid_input  (** the input value itself is malformed *)
  | Validation     (** a well-formed input failed a consistency check *)
  | Exhausted      (** a fuel/deadline budget ran out before an answer *)
  | Overloaded
      (** a shared resource (the serve job queue) refused admission; the
          request was not started and a retry after backoff may succeed —
          the only {e retriable} kind *)
  | Internal       (** an engine invariant broke: a bug, not bad input *)

type t = {
  err_engine : string;  (** "netlist", "rtl", "soc", "synth", "scan", ... *)
  err_kind : kind;
  err_ctx : (string * string) list;
      (** structured context, e.g. [("core", "CPU"); ("net", "42")] *)
  err_msg : string;
}

exception Socet_error of t

val make :
  ?kind:kind -> ?ctx:(string * string) list -> engine:string -> string -> t
(** [kind] defaults to [Invalid_input]. *)

val raisef :
  ?kind:kind ->
  ?ctx:(string * string) list ->
  engine:string ->
  ('a, unit, string, 'b) format4 ->
  'a
(** [raisef ~engine fmt ...] raises {!Socet_error} with the formatted
    message. *)

val error :
  ?kind:kind ->
  ?ctx:(string * string) list ->
  engine:string ->
  string ->
  ('a, t) result

val kind_name : kind -> string

val to_string : t -> string
(** ["socet: <engine> <kind>: <msg> [ctx...]"] — one line, CLI-ready. *)

val pp : Format.formatter -> t -> unit

val guard : engine:string -> (unit -> 'a) -> ('a, t) result
(** Runs the thunk, converting escaping exceptions into structured errors:
    {!Socet_error} passes through as its payload; [Invalid_argument] and
    [Failure] become [Invalid_input]; [Not_found] and any other exception
    become [Internal] (attributed to [engine]).  This is the boundary
    adapter pipeline entry points use so that {e no} input, however
    corrupt, escapes as an uncaught exception. *)

val exit_code : t -> int
(** Process exit status for the CLI: 3 for [Invalid_input]/[Validation],
    4 for [Exhausted], 5 for [Overloaded], 1 for [Internal].  The full
    table (including the cmdliner-reserved codes) is in the README. *)
