(** Composable fuel/deadline budgets for the search engines.

    Every unbounded loop in the flow — PODEM's decision/backtrack loop, the
    D-algorithm, transparency-path search, the iterative-improvement
    optimizer — takes a budget and {e cooperatively} checks it with
    {!spend}.  When the budget runs out the engine stops and returns a
    degraded-but-valid answer (an [Aborted] fault, a [None] path, the
    trajectory so far) instead of spinning forever; see
    [Socet_core.Resilient] for how the outcomes ladder down.

    A budget combines:
    - {e fuel}: a step count, decremented by every {!spend};
    - {e deadline}: an optional wall-clock bound, checked every few hundred
      steps so the clock read does not dominate tight loops.

    The wall-clock source is injected once with {!set_clock} (done at
    module-init time by [Socet_core.Resilient], which passes
    [Socet_obs.Clock.now_us]); [lib/util] itself stays clock-free.  With no
    clock installed, deadlines are inert and budgets are pure fuel. *)

type t

exception Exhausted_exn of string
(** Raised by {!take} only; label of the exhausted budget. *)

val set_clock : (unit -> float) -> unit
(** Install the wall-clock source (absolute microseconds).  Idempotent. *)

val create : ?label:string -> ?steps:int -> ?deadline_s:float -> unit -> t
(** [steps] is the fuel (default: unlimited); [deadline_s] is a wall-clock
    allowance in seconds from now (default: none; inert when no clock is
    installed). *)

val unlimited : unit -> t
(** Never exhausts.  [spend] on it still counts steps. *)

val child : ?label:string -> ?steps:int -> t -> t
(** A sub-budget: its fuel is capped by (its own [steps] and) the parent's
    remaining fuel, it shares the parent's deadline, and spending from the
    child also drains the parent — so sibling phases compose under one
    global allowance. *)

val spend : ?cost:int -> t -> bool
(** Drain [cost] (default 1) steps; [true] while the budget (and its
    ancestors) still holds.  The cooperative check-point: engines call it
    once per search step and unwind when it returns [false].  Once it
    returns [false] it keeps returning [false]. *)

val affordable : ?cost:int -> t -> bool
(** Non-consuming peek: would [spend ~cost] succeed right now?  Lets a
    caller decide whether to start a [cost]-unit phase without charging
    for it (the optimizer uses this to stop cleanly between steps).
    Reads the clock (so a passed deadline is detected) but drains no
    fuel. *)

val exhausted : t -> bool
(** Sticky: has any {!spend} failed, or was the deadline passed? *)

val take : ?cost:int -> t -> unit
(** Exception-style check-point for engines with exception-based unwinding:
    {!spend}, raising {!Exhausted_exn} on failure. *)

val spent : t -> int
(** Steps drained from this budget so far. *)

val remaining_steps : t -> int
(** [max_int] when fuel-unlimited. *)

val label : t -> string

val to_error : t -> engine:string -> Error.t
(** An [Error.Exhausted] describing this budget (label, steps spent). *)
