open Socet_rtl
open Rtl_types
module Digraph = Socet_graph.Digraph

type added_edge = { ae_src : int; ae_dst : int; ae_width : int; ae_cost : int }

type result = {
  depth : int;
  overhead_cells : int;
  chains : int list list;
  added : added_edge list;
}

let edge_cost (e : Rcg.edge_label Digraph.edge) =
  match e.label.e_via with `Direct -> 1 | `Mux _ -> 2

let insert rcg =
  let g = Rcg.graph rcg in
  let inputs = Rcg.input_ids rcg in
  let outputs = Rcg.output_ids rcg in
  let regs = Rcg.reg_ids rcg in
  let added = ref [] in
  (* Fixed test-enable distribution plus per-register chain control (the
     OR gate at each load signal plus enable fanout, Fig. 1). *)
  let overhead = ref (2 + (2 * List.length regs)) in
  let mark (e : Rcg.edge_label Digraph.edge) =
    if not e.label.e_hscan then begin
      e.label.e_hscan <- true;
      overhead := !overhead + edge_cost e
    end
  in
  let add_test_mux ~src ~dst ~(width : int) ~(dst_range : range) ~(src_range : range) =
    let cost = 2 * width in
    overhead := !overhead + cost;
    let e =
      Digraph.add_edge g ~src ~dst
        {
          Rcg.e_src_range = src_range;
          e_dst_range = dst_range;
          e_via = `Mux 0;
          e_transfer = -1;
          e_hscan = true;
          e_enabled = true;
        }
    in
    added := { ae_src = src; ae_dst = dst; ae_width = width; ae_cost = cost } :: !added;
    e
  in
  (* --- Select one chain feed per register slice group. ------------- *)
  (* [selections] maps (reg node, group index) to the chosen in-edge.
     Selection escalates the acceptable candidate rank pass by pass, so a
     register prefers its first-declared feed and waits for that feed's
     source to join a chain before falling back to alternatives.  The
     "source is ok" discipline makes the marked subgraph acyclic. *)
  let groups = List.map (fun r -> (r, Rcg.in_slice_groups rcg r)) regs in
  let selections = Hashtbl.create 16 in
  let ok = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace ok i ()) inputs;
  let is_ok v = Hashtbl.mem ok v in
  let reg_complete r =
    let gs = List.assoc r groups in
    List.for_all
      (fun idx -> Hashtbl.mem selections (r, idx))
      (List.mapi (fun i _ -> i) gs)
  in
  let max_rank =
    List.fold_left
      (fun acc (_, gs) ->
        List.fold_left (fun acc (_, es) -> max acc (List.length es)) acc gs)
      1 groups
  in
  for rank = 1 to max_rank do
    let progress = ref true in
    while !progress do
      progress := false;
      List.iter
        (fun (r, gs) ->
          List.iteri
            (fun idx (_, edges) ->
              if not (Hashtbl.mem selections (r, idx)) then begin
                let candidates =
                  List.filteri (fun i _ -> i < rank) edges
                  |> List.filter (fun (e : Rcg.edge_label Digraph.edge) ->
                         is_ok e.src)
                in
                match candidates with
                | e :: _ ->
                    Hashtbl.replace selections (r, idx) e;
                    progress := true
                | [] -> ()
              end)
            gs;
          if (not (is_ok r)) && reg_complete r then begin
            Hashtbl.replace ok r ();
            progress := true
          end)
        groups
    done
  done;
  (* Fallback: registers with uncovered slices — including registers with
     no structural feed at all — get a test-mux feed from an input
     (round-robin over inputs). *)
  let input_arr = Array.of_list inputs in
  let next_input = ref 0 in
  let pick_input () =
    if Array.length input_arr = 0 then
      Socet_util.Error.raisef ~kind:Socet_util.Error.Validation ~engine:"scan"
        ~ctx:[ ("core", Rtl_core.name (Rcg.core rcg)) ]
        "Hscan.insert: core has no inputs"
    else begin
      let s = input_arr.(!next_input mod Array.length input_arr) in
      incr next_input;
      s
    end
  in
  let mux_feed r range =
    let src = pick_input () in
    let w = range_width range in
    let src_node = Rcg.node rcg src in
    let src_range = full (min w src_node.Rcg.n_width) in
    add_test_mux ~src ~dst:r ~width:w ~dst_range:range ~src_range
  in
  List.iter
    (fun (r, gs) ->
      List.iteri
        (fun idx (range, _) ->
          if not (Hashtbl.mem selections (r, idx)) then
            Hashtbl.replace selections (r, idx) (mux_feed r range))
        gs;
      (* Bits never written by any transfer still need a chain feed. *)
      let width = (Rcg.node rcg r).Rcg.n_width in
      let covered =
        List.fold_left
          (fun acc (range, _) ->
            acc lor (((1 lsl range_width range) - 1) lsl range.lsb))
          0 gs
      in
      let missing = ((1 lsl width) - 1) land lnot covered in
      if missing <> 0 then begin
        (* Feed the lowest maximal run of missing bits; iterate until all
           bits are chained. *)
        let rec runs mask =
          if mask = 0 then ()
          else begin
            let lsb =
              let rec lowest i = if (mask lsr i) land 1 = 1 then i else lowest (i + 1) in
              lowest 0
            in
            let msb =
              let rec highest i =
                if i + 1 < width && (mask lsr (i + 1)) land 1 = 1 then highest (i + 1)
                else i
              in
              highest lsb
            in
            ignore (mux_feed r (bits lsb msb));
            runs (mask land lnot (((1 lsl (msb - lsb + 1)) - 1) lsl lsb))
          end
        in
        runs missing
      end;
      Hashtbl.replace ok r ())
    groups;
  (* Mark the selected feeds. *)
  Hashtbl.iter (fun _ e -> mark e) selections;
  (* --- Chain termination: every register must shift onward. -------- *)
  let has_marked_out r =
    List.exists (fun (e : Rcg.edge_label Digraph.edge) -> e.label.e_hscan) (Digraph.succ g r)
  in
  let output_arr = Array.of_list outputs in
  let next_output = ref 0 in
  List.iter
    (fun r ->
      if not (has_marked_out r) then begin
        (* Prefer an existing path to an output, in declaration order. *)
        let to_output =
          List.find_opt
            (fun (e : Rcg.edge_label Digraph.edge) ->
              (Rcg.node rcg e.dst).Rcg.n_kind = Rcg.Out)
            (Digraph.succ g r)
        in
        match to_output with
        | Some e -> mark e
        | None ->
            if Array.length output_arr = 0 then
              Socet_util.Error.raisef ~kind:Socet_util.Error.Validation
                ~engine:"scan"
                ~ctx:[ ("core", Rtl_core.name (Rcg.core rcg)) ]
                "Hscan.insert: core has no outputs"
            else begin
              let dst = output_arr.(!next_output mod Array.length output_arr) in
              incr next_output;
              let rw = (Rcg.node rcg r).Rcg.n_width in
              let dw = (Rcg.node rcg dst).Rcg.n_width in
              let w = min rw dw in
              ignore
                (add_test_mux ~src:r ~dst ~width:w ~dst_range:(full w)
                   ~src_range:(full w))
            end
      end)
    regs;
  (* --- Depth and chain extraction over the marked subgraph. -------- *)
  let marked_succ v =
    List.filter (fun (e : Rcg.edge_label Digraph.edge) -> e.label.e_hscan) (Digraph.succ g v)
  in
  let n = Digraph.node_count g in
  let memo = Array.make n (-1) in
  let rec depth_from v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      memo.(v) <- 0;
      (* pre-set to cut accidental cycles *)
      let here = if (Rcg.node rcg v).Rcg.n_kind = Rcg.Reg then 1 else 0 in
      let best =
        List.fold_left (fun acc e -> max acc (depth_from e.Digraph.dst)) 0 (marked_succ v)
      in
      memo.(v) <- here + best;
      memo.(v)
    end
  in
  let depth = List.fold_left (fun acc i -> max acc (depth_from i)) 0 inputs in
  (* Maximal chains for reporting. *)
  let chains = ref [] in
  let rec walk v path =
    match marked_succ v with
    | [] -> chains := List.rev (v :: path) :: !chains
    | succs -> List.iter (fun e -> walk e.Digraph.dst (v :: path)) succs
  in
  List.iter (fun i -> if marked_succ i <> [] then walk i []) inputs;
  {
    depth;
    overhead_cells = !overhead;
    chains = List.rev !chains;
    added = List.rev !added;
  }

let vector_multiplier r = r.depth + 1
let vector_count r ~atpg_vectors = atpg_vectors * vector_multiplier r
