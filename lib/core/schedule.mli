(** Chip-level test scheduling: per-core test application time and the
    overall SOCET area/time figures for one design point (a choice of core
    versions plus any forced system-level test muxes).

    Each embedded core is tested in turn.  Per HSCAN vector, the vector is
    justified to every core input through the surrounding cores'
    transparency paths (the per-vector period is the makespan of those
    routes, serialized where they share core-internal resources — the
    paper's 9-cycles-per-vector DISPLAY arithmetic); test responses stream
    out through the observation paths while the next vector is justified,
    so observation only adds a tail after the last vector, together with
    the core's remaining scan-out cycles. *)

type core_test = {
  ct_inst : string;
  ct_vectors : int;      (** HSCAN vector count of the core's test set *)
  ct_period : int;       (** cycles consumed per vector *)
  ct_tail : int;         (** trailing cycles after the last vector *)
  ct_time : int;         (** [ct_vectors * ct_period + ct_tail] *)
  ct_justify : Access.route list;
  ct_observe : Access.route list;
}

type t = {
  s_ccg : Ccg.t;
  s_tests : core_test list;
  s_total_time : int;
  s_transparency_cost : int;  (** sum of chosen version overheads *)
  s_smux_cost : int;          (** system-level test muxes (requested + forced) *)
  s_controller_cost : int;
  s_area_overhead : int;      (** chip-level total of the three above *)
  s_usage : (string * int * int, int) Hashtbl.t;
      (** transparency-pair usage counts across the whole test solution *)
}

type smux_request = { sm_inst : string; sm_port : string; sm_dir : [ `In | `Out ] }
(** An explicitly requested system-level test mux (optimizer move). *)

val build :
  ?budget:Socet_util.Budget.t ->
  Soc.t ->
  choice:(string * int) list ->
  ?smuxes:smux_request list ->
  unit ->
  t
(** With [budget], the per-core loop checks exhaustion before each core:
    once the fuel or deadline is gone, remaining cores are emitted with
    {e no} routes and zero vectors (their ATPG is skipped too) — a stub
    that [Resilient.plan] recognizes and degrades to the FSCAN-BSCAN
    fallback.  Without a budget the behaviour is unchanged. *)

(** {2 Memoization seam}

    [build] is [Ccg.build] + requested-mux insertion + one
    [build_core_test] per core + [assemble].  [Select.design_space]
    drives the pieces directly so per-core tests can be memoized across
    design points: a core's test only depends on the versions of the
    cores its access routes can traverse, so the same [core_test] value
    recurs across many full-choice combinations.

    Caveat for callers: [build_core_test] may add {e forced} system-level
    mux edges to [ccg] as a side effect (visible as [r_added_smux] on the
    returned routes).  A result whose routes contain a forced mux — or one
    computed {e after} such a mutation within the same [ccg] — is specific
    to that build and must not be reused against a fresh CCG. *)

val dependency_sets : Soc.t -> (string * string list * string list) list
(** Per-core [(name, justify cone, observe cone)]: the cores whose
    version choices can influence the core's justify/observe routes
    (directed reachability over the core-to-core connection graph; a
    core joins its own cone only via a connection cycle).  Two design
    points agreeing on a core's cone yield bit-identical routes for
    it — the soundness basis of both the Select route memo and the
    persistent route cache. *)

val has_forced_smux : Access.route list -> bool
(** Whether any route carries a router-fallback mux ([r_added_smux]) —
    the signal that the CCG was mutated and reuse is unsound. *)

val relevant_smuxes :
  side:[ `J | `O ] ->
  name:string ->
  cone:string list ->
  smux_request list ->
  smux_request list
(** The requested system-level muxes that can touch the named core's
    routing on the given side (an [`In] request matters only to justify
    routes of its target's forward cone, dually for [`Out]); sorted, so
    equal sets compare equal in memo keys. *)

(** {2 Persistent route cache}

    With a {!Socet_cache.Cache} store active and no budget, [build]
    serves each core's per-side routes from the store under a content
    key and stores clean computes — same clean-flag discipline as the
    Select memo (nothing is read or written after a forced-mux CCG
    mutation).  Keys are content-addressed so they survive process
    restarts and core renames-free edits: see {!route_key}. *)

val route_ns : string
(** Namespace of persisted route sets (embeds the format version). *)

val rtl_hashes : Soc.t -> (string * string) list
(** [(instance, Soc.rtl_hash)] for every instance — precomputed once
    per build/memo and threaded into {!route_key}. *)

val route_key :
  skeleton:string ->
  rhash:(string * string) list ->
  choice:(string * int) list ->
  smuxes:smux_request list ->
  side:[ `J | `O ] ->
  cone:string list ->
  string ->
  string
(** The persistent key for one core's one-side route set:
    [Soc.skeleton_hash] (pins the CCG node-id space), the core's own
    RTL hash, each cone member's (RTL hash, chosen version), and the
    side-relevant requested muxes. *)

val install_smuxes : Soc.t -> Ccg.t -> smux_request list -> int
(** Insert the requested system-level test muxes as CCG edges (an [`In]
    request bridges the first chip PI to the port, [`Out] the port to the
    first chip PO) and return their total area cost — the
    [requested_cost] to pass to {!assemble}.  [build] and the Select
    memo path share this so requested muxes mean exactly the same edges
    on both. *)

val justify_routes : Ccg.t -> string -> Access.route list
(** Justification routes for the named core's inputs: slowest first
    (empty-calendar probe), then routed against one shared calendar.
    Depends only on the transparency of cores {e upstream} of the
    target. *)

val observe_routes : Ccg.t -> string -> Access.route list
(** Observation routes for the named core's outputs; depends only on
    cores {e downstream} of the target. *)

val core_test_of_routes :
  Soc.core_inst -> justify:Access.route list -> observe:Access.route list -> core_test
(** Period/tail/time arithmetic over already-computed routes. *)

val build_core_test :
  ?budget:Socet_util.Budget.t -> Ccg.t -> Soc.core_inst -> core_test
(** One core's test (routes, period, tail, time) against [ccg]:
    [justify_routes] then [observe_routes] then [core_test_of_routes]
    (or the no-route stub once [budget] is exhausted). *)

val assemble :
  Soc.t ->
  choice:(string * int) list ->
  ?n_requested:int ->
  ?requested_cost:int ->
  Ccg.t ->
  core_test list ->
  t
(** Totals per-core tests into a schedule (costs, usage, controller);
    increments the [core.schedule.builds] counter and, via
    [Access.record_committed_fallbacks], counts the forced-mux fallbacks
    that actually enter the schedule.  [core.schedule.full_builds]
    counts only whole {!build} calls, so [builds - full_builds] is the
    number of schedules assembled from (partly) memoized routes. *)

(** {2 Overlapped scheduling (extension beyond the paper)}

    The paper tests the cores one after another.  Core tests whose access
    paths touch disjoint sets of cores can in fact run concurrently (each
    core has its own gated clock).  [parallel_makespan] greedily packs the
    core tests — longest first, each starting as soon as every conflicting
    test has finished — and returns the resulting makespan with the start
    time of each test.  Tests conflict when they involve a common core,
    whether as the core under test or as a transparency conduit. *)

val involved_cores : core_test -> string list
(** The core under test plus every core whose transparency edges its
    routes ride through. *)

val parallel_makespan : t -> int * (string * int) list
