(** Chip-level test scheduling: per-core test application time and the
    overall SOCET area/time figures for one design point (a choice of core
    versions plus any forced system-level test muxes).

    Each embedded core is tested in turn.  Per HSCAN vector, the vector is
    justified to every core input through the surrounding cores'
    transparency paths (the per-vector period is the makespan of those
    routes, serialized where they share core-internal resources — the
    paper's 9-cycles-per-vector DISPLAY arithmetic); test responses stream
    out through the observation paths while the next vector is justified,
    so observation only adds a tail after the last vector, together with
    the core's remaining scan-out cycles. *)

type core_test = {
  ct_inst : string;
  ct_vectors : int;      (** HSCAN vector count of the core's test set *)
  ct_period : int;       (** cycles consumed per vector *)
  ct_tail : int;         (** trailing cycles after the last vector *)
  ct_time : int;         (** [ct_vectors * ct_period + ct_tail] *)
  ct_justify : Access.route list;
  ct_observe : Access.route list;
}

type t = {
  s_ccg : Ccg.t;
  s_tests : core_test list;
  s_total_time : int;
  s_transparency_cost : int;  (** sum of chosen version overheads *)
  s_smux_cost : int;          (** system-level test muxes (requested + forced) *)
  s_controller_cost : int;
  s_area_overhead : int;      (** chip-level total of the three above *)
  s_usage : (string * int * int, int) Hashtbl.t;
      (** transparency-pair usage counts across the whole test solution *)
}

type smux_request = { sm_inst : string; sm_port : string; sm_dir : [ `In | `Out ] }
(** An explicitly requested system-level test mux (optimizer move). *)

val build :
  ?budget:Socet_util.Budget.t ->
  Soc.t ->
  choice:(string * int) list ->
  ?smuxes:smux_request list ->
  unit ->
  t
(** With [budget], the per-core loop checks exhaustion before each core:
    once the fuel or deadline is gone, remaining cores are emitted with
    {e no} routes and zero vectors (their ATPG is skipped too) — a stub
    that [Resilient.plan] recognizes and degrades to the FSCAN-BSCAN
    fallback.  Without a budget the behaviour is unchanged. *)

(** {2 Overlapped scheduling (extension beyond the paper)}

    The paper tests the cores one after another.  Core tests whose access
    paths touch disjoint sets of cores can in fact run concurrently (each
    core has its own gated clock).  [parallel_makespan] greedily packs the
    core tests — longest first, each starting as soon as every conflicting
    test has finished — and returns the resulting makespan with the start
    time of each test.  Tests conflict when they involve a common core,
    whether as the core under test or as a transparency conduit. *)

val involved_cores : core_test -> string list
(** The core under test plus every core whose transparency edges its
    routes ride through. *)

val parallel_makespan : t -> int * (string * int) list
