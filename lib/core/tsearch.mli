(** Transparency path search over the register connectivity graph
    (paper, Sec. 4).

    A {e propagation} path moves the full value of a core input to core
    output(s); a {e justification} path controls a core output from core
    input(s).  The search branches where bit-slices force it to:

    - propagating through an {e O-split} node must follow every fanout
      slice (all bits of the value must keep moving);
    - justifying through a {e C-split} node must control every fanin slice;
    - branches that reconverge are balanced by freezing registers on the
      shorter branch (extra hold logic), because scan-chain data advances
      every cycle in transparency mode.

    The latency of a path is the number of register writes between the
    port where data enters and the port where it emerges; edges that end in
    an output port are combinational and free. *)

open Socet_rtl
module Digraph = Socet_graph.Digraph

type sol = {
  s_edges : Rcg.edge_label Digraph.edge list;
      (** the RCG edges used, each exactly once *)
  s_latency : int;
  s_freezes : (int * int) list;
      (** (register node, cycles held) balancing requirements *)
  s_terminals : int list;
      (** output nodes reached (propagation) / input nodes used
          (justification) *)
  s_depths : (int * int) list;
      (** forward depth (register writes since data entered) of every node
          on the path — the firing schedule used by the transparency-mode
          simulator and the freeze computation *)
}

val default_steps : int
(** Default per-call node-expansion budget of {!propagate}/{!justify}
    (50k).  Exposed so callers denominating their own budgets in
    [core.tsearch.nodes_expanded] units ([Select]'s [--search-budget])
    can relate the two currencies. *)

val propagate :
  Rcg.t ->
  ?prefer_hscan:bool ->
  ?budget:Socet_util.Budget.t ->
  allowed:(Rcg.edge_label Digraph.edge -> bool) ->
  input:int ->
  unit ->
  sol option
(** Move the full width of [input] to output ports through [allowed]
    edges.  Returns a minimum-latency solution found by distance-guided
    search, or [None].  With [prefer_hscan] (default false), HSCAN chain
    edges are explored before other edges regardless of distance — used by
    Version 1, which only buys non-chain logic when the chains cannot do
    the job.  [budget] bounds node expansions (default: a fresh 50k-step
    budget per call); exhaustion counts as a give-up and returns [None]. *)

val justify :
  Rcg.t ->
  ?prefer_hscan:bool ->
  ?budget:Socet_util.Budget.t ->
  allowed:(Rcg.edge_label Digraph.edge -> bool) ->
  output:int ->
  unit ->
  sol option
(** Control the full width of [output] from input ports. *)

val reach_in_one_cycle : Rcg.t -> input:int -> int list
(** Registers reachable from [input] through one existing edge — the
    candidates to which Sec. 4 attaches a transparency multiplexer. *)
