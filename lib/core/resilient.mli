(** Graceful degradation ladders for the SOCET flow.

    The search engines underneath the flow are all incomplete: PODEM and
    the D-algorithm abort on hard faults, transparency-path search gives
    up when its budget runs out, and the chip-level router can fail to
    justify or observe a port at all.  This module turns each of those
    partial failures into a {e degraded but valid} answer instead of an
    error:

    {v
      per fault                       per core
      ---------                       --------
      PODEM (adaptive limit)          transparency schedule complete?
        | Aborted                       | no (missing routes)
        v                               v
      D-algorithm (escalated limit)   FSCAN-BSCAN baseline for that
        | Aborted                     core only: full scan + boundary
        v                             ring, tested through the ring
      random-pattern top-off          (area up, time up, coverage kept)
        | undetected
        v
      fault stays aborted (reported)
    v}

    Every rung firing is counted in the [core.resilient.*] metrics so a
    degraded run is visible in [--stats] and [BENCH_socet.json].

    Loading this module also installs {!Socet_obs.Clock.now_us} as the
    wall-clock source for {!Socet_util.Budget} deadlines — any program
    linking [socet.core] gets working [--deadline] budgets for free. *)

open Socet_netlist
open Socet_atpg

(** {2 Per-fault ATPG ladder} *)

type atpg_rung =
  | R_podem  (** first-line PODEM found the answer *)
  | R_dalg   (** D-algorithm rescue after a PODEM abort *)
  | R_random (** random-pattern top-off after both engines aborted *)

type atpg_result = { a_outcome : Podem.outcome; a_rung : atpg_rung }

val generate_fault :
  ?backtrack_limit:int ->
  ?scoap:Scoap.t ->
  ?budget:Socet_util.Budget.t ->
  ?seed:int ->
  ?topoff_patterns:int ->
  Netlist.t ->
  Fault.t ->
  atpg_result
(** Run one fault down the ladder.  [Untestable] from PODEM is final (the
    search space was exhausted, not the budget).  The D-algorithm retry
    runs with an escalated decision limit (8x the backtrack limit, at
    least 20k); the random top-off simulates [topoff_patterns] (default
    128) seeded patterns against the single fault.  A fault that survives
    all three rungs comes back [Aborted] — degraded, never an exception.
    Rung firings are counted in [core.resilient.dalg_rescues] and
    [core.resilient.random_topoffs]. *)

(** {2 Per-core scheduling ladder} *)

type rung =
  | Transparency
      (** the paper's flow: HSCAN vectors ride transparency paths *)
  | Fallback_fscan_bscan
      (** this core's access routing failed; it is tested through full
          scan plus a boundary-scan ring instead *)

type core_plan = {
  p_inst : string;
  p_rung : rung;
  p_time : int;  (** test application time under the chosen rung *)
  p_area : int;  (** {e additional} overhead a fallback rung buys (full
                     scan + boundary ring); 0 for transparency cores *)
}

type plan = {
  p_schedule : Schedule.t;  (** the underlying (possibly partial) schedule *)
  p_cores : core_plan list;
  p_total_time : int;
  p_area_overhead : int;
      (** schedule overhead plus all fallback additions *)
  p_fallbacks : int;
}

val plan :
  ?budget:Socet_util.Budget.t ->
  ?smuxes:Schedule.smux_request list ->
  Soc.t ->
  choice:(string * int) list ->
  unit ->
  (plan, Socet_util.Error.t) result
(** Build the chip-level test schedule with per-core degradation: a core
    whose justification or observation routing came back incomplete (the
    transparency scheduler failed for it — budget, chaos, or topology)
    drops to the FSCAN-BSCAN baseline {e for that core only}, costed with
    {!Socet_scan.Fscan.overhead} + {!Socet_scan.Bscan.ring_overhead} and
    timed with {!Socet_scan.Bscan.test_time}.  Each drop increments
    [core.resilient.fallbacks].

    [Error] carries a structured {!Socet_util.Error.t}: [Exhausted] when
    [budget] ran out before a usable schedule existed, or the underlying
    engine error (validation failures etc.) wrapped by
    {!Socet_util.Error.guard}. *)
