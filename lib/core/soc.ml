open Socet_rtl
open Socet_netlist
open Socet_synth
open Socet_scan
open Socet_atpg

type endpoint_ref = Pi of string | Po of string | Cport of string * string

type connection = { c_from : endpoint_ref; c_to : endpoint_ref }

type memory = { m_name : string; m_bits : int; m_bist_area : int }

type core_inst = {
  ci_name : string;
  ci_core : Rtl_core.t;
  ci_rcg : Rcg.t;
  ci_hscan : Hscan.result;
  ci_versions : Version.t list;
  ci_netlist : Netlist.t;
  ci_atpg : Podem.stats Lazy.t;
}

type t = {
  soc_name : string;
  insts : core_inst list;
  conns : connection list;
  soc_pis : (string * int) list;
  soc_pos : (string * int) list;
  memories : memory list;
}

module Cache = Socet_cache.Cache

(* ------------------------------------------------------------------ *)
(* Content hashes (DESIGN.md §16)                                      *)
(* ------------------------------------------------------------------ *)

(* A core's identity for caching is its complete RTL rendering: ports,
   registers and transfers in declaration order.  Everything instantiate
   derives (RCG, HSCAN, versions, netlist, ATPG) is a pure function of
   this text, so it is the one key under which per-core artifacts
   persist. *)
let core_hash core =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Rtl_core.pp core))

let rtl_hash ci = core_hash ci.ci_core

(* The version ladder aliases RCG mux edges freshly inserted by
   [Version.generate], so it cannot be reloaded from disk into a new
   RCG.  Instead a plain-data determinism signature is cached: on a warm
   run the ladder is regenerated (cheap) and checked against the stored
   signature, so diff-test can report ladder reuse per core and a
   drifting generator shows up as a mismatch instead of being trusted. *)
let version_signature versions =
  List.map
    (fun v ->
      ( v.Version.v_index,
        v.Version.v_overhead,
        List.map
          (fun p -> (p.Version.pr_input, p.Version.pr_output, p.Version.pr_latency))
          v.Version.v_pairs,
        v.Version.v_added_muxes ))
    versions

let instantiate ?(atpg_seed = 42) ci_name core =
  let rcg = Rcg.of_core core in
  let hscan = Hscan.insert rcg in
  let versions = Version.generate rcg in
  let signature = version_signature versions in
  (match Cache.find ~ns:"versions1" ~key:(core_hash core) with
  | Some s when s = signature -> ()
  | Some _ | None -> Cache.store ~ns:"versions1" ~key:(core_hash core) signature);
  let netlist = Elaborate.core_to_netlist core in
  {
    ci_name;
    ci_core = core;
    ci_rcg = rcg;
    ci_hscan = hscan;
    ci_versions = versions;
    ci_netlist = netlist;
    ci_atpg = lazy (Podem.run ~seed:atpg_seed netlist);
  }

(* SOC assembly errors cross the user/library boundary: structured, so
   the CLI can print the offending core/port and exit cleanly. *)
let fail fmt =
  Printf.ksprintf
    (fun s ->
      raise
        (Socet_util.Error.Socet_error
           (Socet_util.Error.make ~kind:Socet_util.Error.Validation
              ~engine:"soc" s)))
    fmt

let endpoint_width soc = function
  | Pi n -> (
      match List.assoc_opt n soc.soc_pis with
      | Some w -> w
      | None -> fail "SOC %s: unknown PI %s" soc.soc_name n)
  | Po n -> (
      match List.assoc_opt n soc.soc_pos with
      | Some w -> w
      | None -> fail "SOC %s: unknown PO %s" soc.soc_name n)
  | Cport (i, p) -> (
      match List.find_opt (fun ci -> ci.ci_name = i) soc.insts with
      | None -> fail "SOC %s: unknown instance %s" soc.soc_name i
      | Some ci -> (
          try (Rtl_core.find_port ci.ci_core p).Rtl_core.p_width
          with Not_found -> fail "SOC %s: instance %s has no port %s" soc.soc_name i p))

let make ~name ~pis ~pos ~cores ~connections ?(memories = []) () =
  let soc =
    {
      soc_name = name;
      insts = cores;
      conns = connections;
      soc_pis = pis;
      soc_pos = pos;
      memories;
    }
  in
  (* Direction and width checks. *)
  List.iter
    (fun conn ->
      (match conn.c_from with
      | Po n -> fail "SOC %s: PO %s used as a driver" name n
      | Pi _ -> ()
      | Cport (i, p) ->
          let ci = List.find (fun ci -> ci.ci_name = i) soc.insts in
          if (Rtl_core.find_port ci.ci_core p).Rtl_core.p_dir <> `Out then
            fail "SOC %s: %s.%s is not an output" name i p);
      (match conn.c_to with
      | Pi n -> fail "SOC %s: PI %s used as a sink" name n
      | Po _ -> ()
      | Cport (i, p) ->
          let ci = List.find (fun ci -> ci.ci_name = i) soc.insts in
          if (Rtl_core.find_port ci.ci_core p).Rtl_core.p_dir <> `In then
            fail "SOC %s: %s.%s is not an input" name i p);
      let wf = endpoint_width soc conn.c_from
      and wt = endpoint_width soc conn.c_to in
      if wf <> wt then
        fail "SOC %s: width mismatch on connection (%d -> %d bits)" name wf wt)
    connections;
  (* Every core input driven exactly once. *)
  List.iter
    (fun ci ->
      List.iter
        (fun (p : Rtl_core.port) ->
          if p.Rtl_core.p_dir = `In then begin
            let drivers =
              List.filter (fun c -> c.c_to = Cport (ci.ci_name, p.Rtl_core.p_name)) connections
            in
            match drivers with
            | [ _ ] -> ()
            | [] ->
                fail "SOC %s: input %s.%s is undriven" name ci.ci_name p.Rtl_core.p_name
            | _ ->
                fail "SOC %s: input %s.%s has multiple drivers" name ci.ci_name
                  p.Rtl_core.p_name
          end)
        (Rtl_core.ports ci.ci_core))
    cores;
  (* Every chip PO driven exactly once. *)
  List.iter
    (fun (po, _) ->
      match List.filter (fun c -> c.c_to = Po po) connections with
      | [ _ ] -> ()
      | [] -> fail "SOC %s: PO %s is undriven" name po
      | _ -> fail "SOC %s: PO %s has multiple drivers" name po)
    pos;
  soc

let inst soc name =
  match List.find_opt (fun ci -> ci.ci_name = name) soc.insts with
  | Some ci -> ci
  | None -> raise Not_found

let version_of ci k =
  let rec best last = function
    | [] -> last
    | v :: rest ->
        if v.Version.v_index <= k then best v rest else last
  in
  match ci.ci_versions with
  | [] ->
      Socet_util.Error.raisef ~kind:Socet_util.Error.Validation ~engine:"soc"
        ~ctx:[ ("core", ci.ci_name) ]
        "version_of: core has no versions"
  | v :: rest -> best v rest

let atpg_vectors ci = List.length (Lazy.force ci.ci_atpg).Podem.vectors

let hscan_vectors ci =
  Hscan.vector_count ci.ci_hscan ~atpg_vectors:(atpg_vectors ci)

let original_area soc =
  List.fold_left (fun acc ci -> acc + Netlist.area ci.ci_netlist) 0 soc.insts

let hscan_area_overhead soc =
  List.fold_left
    (fun acc ci -> acc + ci.ci_hscan.Hscan.overhead_cells)
    0 soc.insts

let driver_of soc inst_name port =
  List.find_opt (fun c -> c.c_to = Cport (inst_name, port)) soc.conns
  |> Option.map (fun c -> c.c_from)

let endpoint_str = function
  | Pi n -> "pi:" ^ n
  | Po n -> "po:" ^ n
  | Cport (i, p) -> "cp:" ^ i ^ "." ^ p

(* The SOC's wiring shape with cores as opaque boxes: everything that
   pins the CCG's node/edge enumeration order (chip pins, instance and
   port order, connection order) without looking inside any core.  Route
   entries key on this plus the cone's RTL hashes, so an edit to one
   core leaves routes through the *other* cores' cones valid. *)
let skeleton_hash soc =
  let b = Buffer.create 512 in
  Buffer.add_string b "socet-skeleton-v1\n";
  List.iter (fun (n, w) -> Buffer.add_string b (Printf.sprintf "pi %s %d\n" n w)) soc.soc_pis;
  List.iter (fun (n, w) -> Buffer.add_string b (Printf.sprintf "po %s %d\n" n w)) soc.soc_pos;
  List.iter
    (fun ci ->
      Buffer.add_string b (Printf.sprintf "inst %s\n" ci.ci_name);
      List.iter
        (fun (p : Rtl_core.port) ->
          Buffer.add_string b
            (Printf.sprintf "  port %s %s %d\n" p.Rtl_core.p_name
               (match p.Rtl_core.p_dir with `In -> "in" | `Out -> "out")
               p.Rtl_core.p_width))
        (Rtl_core.ports ci.ci_core))
    soc.insts;
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "conn %s -> %s\n" (endpoint_str c.c_from) (endpoint_str c.c_to)))
    soc.conns;
  List.iter
    (fun m -> Buffer.add_string b (Printf.sprintf "mem %s %d %d\n" m.m_name m.m_bits m.m_bist_area))
    soc.memories;
  Digest.to_hex (Digest.string (Buffer.contents b))

let netlist_hash ci = Structhash.netlist ci.ci_netlist

(* Skeleton plus full core contents: the identity of the whole design,
   under which complete chip-level results (TAM schedules) persist.
   Both the RTL and the elaborated netlist hash in: the netlist is
   normally a pure function of the RTL, but a direct netlist edit (the
   diff-test scenario) changes test sets without changing the RTL
   rendering, and chip-level results must see that. *)
let content_hash soc =
  let b = Buffer.create 512 in
  Buffer.add_string b (skeleton_hash soc);
  List.iter
    (fun ci ->
      Buffer.add_string b
        (Printf.sprintf "\n%s %s %s" ci.ci_name (rtl_hash ci) (netlist_hash ci)))
    soc.insts;
  Digest.to_hex (Digest.string (Buffer.contents b))
