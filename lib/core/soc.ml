open Socet_rtl
open Socet_netlist
open Socet_synth
open Socet_scan
open Socet_atpg

type endpoint_ref = Pi of string | Po of string | Cport of string * string

type connection = { c_from : endpoint_ref; c_to : endpoint_ref }

type memory = { m_name : string; m_bits : int; m_bist_area : int }

type core_inst = {
  ci_name : string;
  ci_core : Rtl_core.t;
  ci_rcg : Rcg.t;
  ci_hscan : Hscan.result;
  ci_versions : Version.t list;
  ci_netlist : Netlist.t;
  ci_atpg : Podem.stats Lazy.t;
}

type t = {
  soc_name : string;
  insts : core_inst list;
  conns : connection list;
  soc_pis : (string * int) list;
  soc_pos : (string * int) list;
  memories : memory list;
}

let instantiate ?(atpg_seed = 42) ci_name core =
  let rcg = Rcg.of_core core in
  let hscan = Hscan.insert rcg in
  let versions = Version.generate rcg in
  let netlist = Elaborate.core_to_netlist core in
  {
    ci_name;
    ci_core = core;
    ci_rcg = rcg;
    ci_hscan = hscan;
    ci_versions = versions;
    ci_netlist = netlist;
    ci_atpg = lazy (Podem.run ~seed:atpg_seed netlist);
  }

(* SOC assembly errors cross the user/library boundary: structured, so
   the CLI can print the offending core/port and exit cleanly. *)
let fail fmt =
  Printf.ksprintf
    (fun s ->
      raise
        (Socet_util.Error.Socet_error
           (Socet_util.Error.make ~kind:Socet_util.Error.Validation
              ~engine:"soc" s)))
    fmt

let endpoint_width soc = function
  | Pi n -> (
      match List.assoc_opt n soc.soc_pis with
      | Some w -> w
      | None -> fail "SOC %s: unknown PI %s" soc.soc_name n)
  | Po n -> (
      match List.assoc_opt n soc.soc_pos with
      | Some w -> w
      | None -> fail "SOC %s: unknown PO %s" soc.soc_name n)
  | Cport (i, p) -> (
      match List.find_opt (fun ci -> ci.ci_name = i) soc.insts with
      | None -> fail "SOC %s: unknown instance %s" soc.soc_name i
      | Some ci -> (
          try (Rtl_core.find_port ci.ci_core p).Rtl_core.p_width
          with Not_found -> fail "SOC %s: instance %s has no port %s" soc.soc_name i p))

let make ~name ~pis ~pos ~cores ~connections ?(memories = []) () =
  let soc =
    {
      soc_name = name;
      insts = cores;
      conns = connections;
      soc_pis = pis;
      soc_pos = pos;
      memories;
    }
  in
  (* Direction and width checks. *)
  List.iter
    (fun conn ->
      (match conn.c_from with
      | Po n -> fail "SOC %s: PO %s used as a driver" name n
      | Pi _ -> ()
      | Cport (i, p) ->
          let ci = List.find (fun ci -> ci.ci_name = i) soc.insts in
          if (Rtl_core.find_port ci.ci_core p).Rtl_core.p_dir <> `Out then
            fail "SOC %s: %s.%s is not an output" name i p);
      (match conn.c_to with
      | Pi n -> fail "SOC %s: PI %s used as a sink" name n
      | Po _ -> ()
      | Cport (i, p) ->
          let ci = List.find (fun ci -> ci.ci_name = i) soc.insts in
          if (Rtl_core.find_port ci.ci_core p).Rtl_core.p_dir <> `In then
            fail "SOC %s: %s.%s is not an input" name i p);
      let wf = endpoint_width soc conn.c_from
      and wt = endpoint_width soc conn.c_to in
      if wf <> wt then
        fail "SOC %s: width mismatch on connection (%d -> %d bits)" name wf wt)
    connections;
  (* Every core input driven exactly once. *)
  List.iter
    (fun ci ->
      List.iter
        (fun (p : Rtl_core.port) ->
          if p.Rtl_core.p_dir = `In then begin
            let drivers =
              List.filter (fun c -> c.c_to = Cport (ci.ci_name, p.Rtl_core.p_name)) connections
            in
            match drivers with
            | [ _ ] -> ()
            | [] ->
                fail "SOC %s: input %s.%s is undriven" name ci.ci_name p.Rtl_core.p_name
            | _ ->
                fail "SOC %s: input %s.%s has multiple drivers" name ci.ci_name
                  p.Rtl_core.p_name
          end)
        (Rtl_core.ports ci.ci_core))
    cores;
  (* Every chip PO driven exactly once. *)
  List.iter
    (fun (po, _) ->
      match List.filter (fun c -> c.c_to = Po po) connections with
      | [ _ ] -> ()
      | [] -> fail "SOC %s: PO %s is undriven" name po
      | _ -> fail "SOC %s: PO %s has multiple drivers" name po)
    pos;
  soc

let inst soc name =
  match List.find_opt (fun ci -> ci.ci_name = name) soc.insts with
  | Some ci -> ci
  | None -> raise Not_found

let version_of ci k =
  let rec best last = function
    | [] -> last
    | v :: rest ->
        if v.Version.v_index <= k then best v rest else last
  in
  match ci.ci_versions with
  | [] ->
      Socet_util.Error.raisef ~kind:Socet_util.Error.Validation ~engine:"soc"
        ~ctx:[ ("core", ci.ci_name) ]
        "version_of: core has no versions"
  | v :: rest -> best v rest

let atpg_vectors ci = List.length (Lazy.force ci.ci_atpg).Podem.vectors

let hscan_vectors ci =
  Hscan.vector_count ci.ci_hscan ~atpg_vectors:(atpg_vectors ci)

let original_area soc =
  List.fold_left (fun acc ci -> acc + Netlist.area ci.ci_netlist) 0 soc.insts

let hscan_area_overhead soc =
  List.fold_left
    (fun acc ci -> acc + ci.ci_hscan.Hscan.overhead_cells)
    0 soc.insts

let driver_of soc inst_name port =
  List.find_opt (fun c -> c.c_to = Cport (inst_name, port)) soc.conns
  |> Option.map (fun c -> c.c_from)
