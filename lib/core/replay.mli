(** Golden-model validation of a chip-level schedule.

    [Schedule.build] claims a test application time and a set of access
    routes for every core; the optimizer ({!Select}) additionally reuses
    memoized routes across design points.  This module re-derives every
    claim from the schedule's raw routes and the SOC description, sharing
    {e no} arithmetic with the scheduler beyond the paper's formulas:

    - each core's period/tail/time is recomputed from the routes' arrival
      times, the HSCAN depth and the vector count, and compared against
      the [core_test] fields and the claimed total;
    - every route's resource reservations are re-booked, per side, into
      fresh calendars in route order and checked for double-booking
      (reserved CCG resources must never overlap, mirroring
      [Access.reserve]);
    - every transparency edge ridden is cross-checked against the chosen
      version's pair ladder ([Soc.version_of]): the edge must exist there
      with exactly the latency the route paid for;
    - optionally ([gate_level]), each distinct transparency pair used is
      simulated on the elaborated core netlist ({!Tsim.check_propagation})
      with alternating and all-ones patterns — the claim that data really
      rides the path is checked at the gate level.  Pairs whose solution
      uses synthesized edges, or is not propagation-shaped, have no gate
      realization and are skipped (as in the transparency test suite).

    Budget-degraded schedules (cores stubbed with no routes by an
    exhausted [Schedule.build ?budget]) intentionally fail replay — the
    stub's zero period is not reproducible from its (empty) routes.  The
    optimizer never produces such points: its search budget bounds the
    {e number} of evaluations, never the evaluation itself. *)

type issue =
  | Wrong_core_time of { inst : string; claimed : int; replayed : int }
  | Wrong_total_time of { claimed : int; replayed : int }
  | Double_booked of {
      inst : string;
      side : [ `Justify | `Observe ];
      resource : Ccg.resource;
      cycle : int;
    }
  | Wrong_latency of {
      inst : string;
      pr_in : int;
      pr_out : int;
      claimed : int;
      ladder : int;  (** [-1] when the pair is absent from the ladder *)
    }
  | Gate_check_failed of { inst : string; pr_in : int; pr_out : int }

val pp_issue : issue -> string

val check : ?gate_level:bool -> Schedule.t -> issue list
(** Replays the schedule; [[]] means every claim was reproduced.
    [gate_level] (default false) adds the netlist simulation of used
    transparency pairs — slower, used on the optimizer's final points
    rather than every trajectory step. *)
