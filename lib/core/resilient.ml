open Socet_util
open Socet_netlist
open Socet_atpg
module Obs = Socet_obs.Obs

(* Budget deadlines need a wall clock; util cannot depend on obs (obs
   pulls in unix), so the injection happens here, once, when socet_core
   is linked. *)
let () = Budget.set_clock Socet_obs.Clock.now_us

(* Observability: one counter per ladder rung, so a degraded run is
   legible from --stats / BENCH_socet.json alone. *)
let c_fallbacks = Obs.counter ~scope:"core" "resilient.fallbacks"
let c_dalg_rescues = Obs.counter ~scope:"core" "resilient.dalg_rescues"
let c_random_topoffs = Obs.counter ~scope:"core" "resilient.random_topoffs"

(* ------------------------------------------------------------------ *)
(* Per-fault ATPG ladder                                              *)
(* ------------------------------------------------------------------ *)

type atpg_rung = R_podem | R_dalg | R_random

type atpg_result = { a_outcome : Podem.outcome; a_rung : atpg_rung }

let generate_fault ?(backtrack_limit = 1000) ?scoap ?budget ?(seed = 42)
    ?(topoff_patterns = 128) nl (fault : Fault.t) =
  match Podem.generate ~backtrack_limit ?scoap ?budget nl fault with
  | (Podem.Test _ | Podem.Untestable) as outcome ->
      { a_outcome = outcome; a_rung = R_podem }
  | Podem.Aborted -> (
      (* Rung 2: the D-algorithm decides on internal lines, so it can
         crack faults whose PI-only search space defeats PODEM.  The
         escalated limit reflects that this is the expensive last
         deterministic attempt. *)
      let decision_limit = max 20_000 (8 * backtrack_limit) in
      match Dalg.generate ~decision_limit ?budget nl fault with
      | Dalg.Test vec ->
          Obs.incr c_dalg_rescues;
          { a_outcome = Podem.Test vec; a_rung = R_dalg }
      | Dalg.Untestable | Dalg.Aborted -> (
          (* Rung 3: cheap random top-off.  A Dalg [Untestable] is not
             trusted as redundancy proof (single-path sensitization gap),
             so the fault still gets the random shot. *)
          let veclen = Fsim.vector_length nl in
          let rng = Rng.create seed in
          let rec try_random k =
            if k = 0 then { a_outcome = Podem.Aborted; a_rung = R_random }
            else if
              match budget with Some b -> not (Budget.spend b) | None -> false
            then { a_outcome = Podem.Aborted; a_rung = R_random }
            else
              let vec = Rng.bitvec rng veclen in
              if Fsim.detects_comb nl vec fault then begin
                Obs.incr c_random_topoffs;
                { a_outcome = Podem.Test vec; a_rung = R_random }
              end
              else try_random (k - 1)
          in
          if veclen = 0 then { a_outcome = Podem.Aborted; a_rung = R_random }
          else try_random topoff_patterns))

(* ------------------------------------------------------------------ *)
(* Per-core scheduling ladder                                          *)
(* ------------------------------------------------------------------ *)

type rung = Transparency | Fallback_fscan_bscan

type core_plan = {
  p_inst : string;
  p_rung : rung;
  p_time : int;
  p_area : int;
}

type plan = {
  p_schedule : Schedule.t;
  p_cores : core_plan list;
  p_total_time : int;
  p_area_overhead : int;
  p_fallbacks : int;
}

let budget_exhausted budget =
  match budget with Some b -> Budget.exhausted b | None -> false

let fallback_core ?budget (ci : Soc.core_inst) =
  let open Socet_scan in
  let n_ff = List.length (Netlist.dffs ci.Soc.ci_netlist) in
  let n_inputs = Socet_rtl.Rtl_core.input_bit_count ci.Soc.ci_core in
  (* Forcing the lazy ATPG just to cost a fallback defeats a deadline
     budget (it is the expensive stage the budget cut short).  If the
     vectors were never computed and the budget is dead, bound the count
     by the collapsed fault list instead — pessimistic, which is the
     right direction for a degraded estimate. *)
  let n_vectors =
    if Lazy.is_val ci.Soc.ci_atpg || not (budget_exhausted budget) then
      Soc.atpg_vectors ci
    else List.length (Fault.collapse ci.Soc.ci_netlist)
  in
  let time = Bscan.test_time ~n_ff ~n_inputs ~n_vectors in
  let area =
    Fscan.overhead ci.Soc.ci_netlist + Bscan.ring_overhead ci.Soc.ci_core
  in
  (time, area)

let plan ?budget ?smuxes soc ~choice () =
  Error.guard ~engine:"resilient" @@ fun () ->
  Obs.with_span ~cat:"core" "resilient.plan" @@ fun () ->
  if budget_exhausted budget then
    raise
      (Error.Socet_error
         (Budget.to_error (Option.get budget) ~engine:"resilient"));
  let sched = Schedule.build ?budget soc ~choice ?smuxes () in
  let ccg = sched.Schedule.s_ccg in
  (* A core test is whole iff the router delivered a route for every input
     and every output of the core; Schedule.build drops failed routes
     silently, so the count mismatch is the failure signal. *)
  let complete (t : Schedule.core_test) =
    List.length t.Schedule.ct_justify
    >= List.length (Ccg.core_inputs ccg t.Schedule.ct_inst)
    && List.length t.Schedule.ct_observe
       >= List.length (Ccg.core_outputs ccg t.Schedule.ct_inst)
  in
  let cores =
    List.map
      (fun (t : Schedule.core_test) ->
        if complete t then
          {
            p_inst = t.Schedule.ct_inst;
            p_rung = Transparency;
            p_time = t.Schedule.ct_time;
            p_area = 0;
          }
        else begin
          Obs.incr c_fallbacks;
          let time, area =
            fallback_core ?budget (Soc.inst soc t.Schedule.ct_inst)
          in
          {
            p_inst = t.Schedule.ct_inst;
            p_rung = Fallback_fscan_bscan;
            p_time = time;
            p_area = area;
          }
        end)
      sched.Schedule.s_tests
  in
  let fallbacks =
    List.length (List.filter (fun c -> c.p_rung = Fallback_fscan_bscan) cores)
  in
  {
    p_schedule = sched;
    p_cores = cores;
    p_total_time = List.fold_left (fun acc c -> acc + c.p_time) 0 cores;
    p_area_overhead =
      sched.Schedule.s_area_overhead
      + List.fold_left (fun acc c -> acc + c.p_area) 0 cores;
    p_fallbacks = fallbacks;
  }
