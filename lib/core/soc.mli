(** System-on-chip descriptions: core instances, interconnect, and the
    per-core artifacts (gate netlist, HSCAN chains, transparency versions,
    precomputed test sets) that the chip-level machinery consumes.

    Memory cores are modelled as opaque BIST-tested blocks and excluded
    from the test-access analysis, as in the paper (Sec. 5, [8]). *)

open Socet_rtl
open Socet_netlist
open Socet_scan
open Socet_atpg

type endpoint_ref =
  | Pi of string                (** chip primary input *)
  | Po of string                (** chip primary output *)
  | Cport of string * string    (** (instance, port) *)

type connection = { c_from : endpoint_ref; c_to : endpoint_ref }

type memory = { m_name : string; m_bits : int; m_bist_area : int }

type core_inst = {
  ci_name : string;
  ci_core : Rtl_core.t;
  ci_rcg : Rcg.t;
  ci_hscan : Hscan.result;
  ci_versions : Version.t list;
  ci_netlist : Netlist.t;
  ci_atpg : Podem.stats Lazy.t;
      (** combinational ATPG on the full-scan model of the core; forced on
          first use (vector counts, fault coverage) *)
}

type t = {
  soc_name : string;
  insts : core_inst list;
  conns : connection list;
  soc_pis : (string * int) list;
  soc_pos : (string * int) list;
  memories : memory list;
}

val instantiate : ?atpg_seed:int -> string -> Rtl_core.t -> core_inst
(** Elaborates the core, inserts HSCAN, generates the version ladder and
    prepares the (lazy) ATPG run. *)

val make :
  name:string ->
  pis:(string * int) list ->
  pos:(string * int) list ->
  cores:core_inst list ->
  connections:connection list ->
  ?memories:memory list ->
  unit ->
  t
(** Validates: referenced instances/ports exist, widths match, every core
    input and chip PO is driven exactly once.
    @raise Invalid_argument with a diagnostic. *)

val inst : t -> string -> core_inst
(** @raise Not_found *)

val version_of : core_inst -> int -> Version.t
(** [version_of ci k] is the version with index [k] (1-based); clamps to
    the nearest available rung. *)

val atpg_vectors : core_inst -> int
(** Size of the core's precomputed combinational test set. *)

val hscan_vectors : core_inst -> int
(** ATPG vectors times the HSCAN shift multiplier (depth + 1) — the number
    of chip-level vector slots needed to test this core. *)

val original_area : t -> int
(** Sum of core areas plus memory BIST-free area (cells). *)

val hscan_area_overhead : t -> int
(** Core-level DFT cost: sum of the cores' HSCAN insertion costs. *)

val driver_of : t -> string -> string -> endpoint_ref option
(** [driver_of soc inst port]: what drives this core input. *)

(** {2 Content hashes}

    Canonical identities for the persistent result cache (DESIGN.md
    §16).  All are hex MD5 strings over deterministic renderings. *)

val core_hash : Rtl_core.t -> string
(** Identity of a core's complete RTL (ports, registers, transfers in
    declaration order) — the key for per-core cached artifacts. *)

val rtl_hash : core_inst -> string
(** [core_hash] of the instance's core. *)

val skeleton_hash : t -> string
(** The SOC's wiring shape with cores opaque: chip pins, instance/port
    order, connections, memories.  Pins the CCG node-id space without
    depending on core internals. *)

val netlist_hash : core_inst -> string
(** {!Socet_netlist.Structhash.netlist} of the instance's elaborated
    netlist: rename- and reorder-invariant, functional-edit-sensitive. *)

val content_hash : t -> string
(** [skeleton_hash] plus every instance's [rtl_hash] {e and}
    [netlist_hash] — the identity of the whole design, keying chip-level
    cached results.  The netlist hashes in separately because a direct
    netlist edit changes test sets without changing the RTL
    rendering. *)
