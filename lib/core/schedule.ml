open Socet_scan
module Digraph = Socet_graph.Digraph
module Obs = Socet_obs.Obs

let c_builds = Obs.counter ~scope:"core" "schedule.builds"

(* [full_builds] counts whole [build] calls (fresh CCG + every core
   re-routed); [builds] counts assembled schedules however their parts
   were obtained.  The gap between the two is what the Select route memo
   saves the optimizer. *)
let c_full_builds = Obs.counter ~scope:"core" "schedule.full_builds"

type core_test = {
  ct_inst : string;
  ct_vectors : int;
  ct_period : int;
  ct_tail : int;
  ct_time : int;
  ct_justify : Access.route list;
  ct_observe : Access.route list;
}

type t = {
  s_ccg : Ccg.t;
  s_tests : core_test list;
  s_total_time : int;
  s_transparency_cost : int;
  s_smux_cost : int;
  s_controller_cost : int;
  s_area_overhead : int;
  s_usage : (string * int * int, int) Hashtbl.t;
}

type smux_request = { sm_inst : string; sm_port : string; sm_dir : [ `In | `Out ] }

let justify_routes ccg name =
  (* Route the slowest input first (the paper justifies DISPLAY's A
     before D): probe each input on an empty calendar, then route in
     decreasing base-latency order against the shared calendar. *)
  let inputs = Ccg.core_inputs ccg name in
  let base_latency input =
    match
      Access.justify_input ~allow_smux:false ccg (Access.fresh_bookings ())
        ~input
    with
    | Some r -> r.Access.r_arrival
    | None -> 0
  in
  let inputs =
    List.map (fun i -> (base_latency i, i)) inputs
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  let bookings = Access.fresh_bookings () in
  List.filter_map
    (fun input -> Access.justify_input ccg bookings ~input)
    inputs

let observe_routes ccg name =
  let bookings = Access.fresh_bookings () in
  List.filter_map
    (fun output -> Access.observe_output ccg bookings ~output)
    (Ccg.core_outputs ccg name)

let core_test_of_routes ci ~justify ~observe =
  let period =
    max 1 (List.fold_left (fun acc r -> max acc r.Access.r_arrival) 0 justify)
  in
  let observe_makespan =
    List.fold_left (fun acc r -> max acc r.Access.r_arrival) 0 observe
  in
  let tail = max 0 (ci.Soc.ci_hscan.Hscan.depth - 1) + observe_makespan in
  let vectors = Soc.hscan_vectors ci in
  {
    ct_inst = ci.Soc.ci_name;
    ct_vectors = vectors;
    ct_period = period;
    ct_tail = tail;
    ct_time = (vectors * period) + tail;
    ct_justify = justify;
    ct_observe = observe;
  }

let build_core_test ?budget ccg ci =
  let name = ci.Soc.ci_name in
  if
    match budget with
    | Some b -> Socet_util.Budget.exhausted b
    | None -> false
  then
    (* Fuel/deadline gone: stub the remaining cores with no routes
       (and skip their ATPG) — the resilient planner reads the
       missing routes as a scheduling failure and ladders the core
       down to its FSCAN-BSCAN fallback. *)
    {
      ct_inst = name;
      ct_vectors = 0;
      ct_period = 0;
      ct_tail = 0;
      ct_time = 0;
      ct_justify = [];
      ct_observe = [];
    }
  else
    let justify = justify_routes ccg name in
    let observe = observe_routes ccg name in
    core_test_of_routes ci ~justify ~observe

(* ------------------------------------------------------------------ *)
(* Per-core dependency cones                                           *)
(* ------------------------------------------------------------------ *)

(* Which cores' version choices can influence core [X]'s test: routes
   justifying X's inputs ride directed paths PI -> ... -> X.in, so only
   cores with a directed path to X matter on the justify side; dually,
   observation rides X.out -> ... -> PO, so only cores reachable from X
   matter on the observe side.  Closing the core-to-core connection
   graph gives static per-side dependency sets — two full choices
   agreeing on X's justify (observe) set yield bit-identical justify
   (observe) routes for X.  X itself only joins a set when it sits on a
   connection cycle (a route could then re-enter its own transparency). *)
let dependency_sets soc =
  let preds = Hashtbl.create 16 and succs = Hashtbl.create 16 in
  let push tbl k v =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
    if not (List.mem v cur) then Hashtbl.replace tbl k (v :: cur)
  in
  List.iter
    (fun (c : Soc.connection) ->
      match (c.Soc.c_from, c.Soc.c_to) with
      | Soc.Cport (a, _), Soc.Cport (b, _) when a <> b ->
          push preds b a;
          push succs a b
      | _ -> ())
    soc.Soc.conns;
  (* Proper reachability: [seed] is included only via a cycle back to
     itself, not by fiat. *)
  let reach tbl seed =
    let seen = Hashtbl.create 8 in
    let rec go n =
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        List.iter go (Option.value ~default:[] (Hashtbl.find_opt tbl n))
      end
    in
    List.iter go (Option.value ~default:[] (Hashtbl.find_opt tbl seed));
    seen
  in
  let names_in tbl =
    List.filter_map
      (fun ci ->
        let n = ci.Soc.ci_name in
        if Hashtbl.mem tbl n then Some n else None)
      soc.Soc.insts
  in
  List.map
    (fun ci ->
      let name = ci.Soc.ci_name in
      (name, names_in (reach preds name), names_in (reach succs name)))
    soc.Soc.insts

let has_forced_smux routes =
  List.exists (fun (r : Access.route) -> r.Access.r_added_smux <> None) routes

let relevant_smuxes ~side ~name ~cone smuxes =
  List.sort compare
    (List.filter
       (fun (sm : smux_request) ->
         (match (side, sm.sm_dir) with
         | `J, `In | `O, `Out -> true
         | `J, `Out | `O, `In -> false)
         && (sm.sm_inst = name || List.mem sm.sm_inst cone))
       smuxes)

(* ------------------------------------------------------------------ *)
(* Persistent route cache                                              *)
(* ------------------------------------------------------------------ *)

module Cache = Socet_cache.Cache

let route_ns = "routes1"

(* A persistent route key is the in-memory Select memo key rebased from
   per-process identities onto content: the SOC's skeleton hash pins the
   CCG node-id space (so stored node/edge ids mean the same thing on
   reload), and each cone member contributes its RTL hash alongside its
   chosen version (a core's transparency edges are a pure function of
   its RTL).  The core under test contributes its own RTL hash too —
   conservative, and exactly the incremental-re-test granularity: edit
   one core and only its own routes plus routes whose cone contains it
   recompute. *)
let route_key ~skeleton ~rhash ~choice ~smuxes ~side ~cone name =
  let b = Buffer.create 256 in
  Buffer.add_string b skeleton;
  Buffer.add_string b (match side with `J -> "|J|" | `O -> "|O|");
  Buffer.add_string b name;
  Buffer.add_string b ("@" ^ List.assoc name rhash);
  List.iter
    (fun d ->
      let k = Option.value ~default:1 (List.assoc_opt d choice) in
      Buffer.add_string b (Printf.sprintf "|%s@%s#%d" d (List.assoc d rhash) k))
    cone;
  List.iter
    (fun sm ->
      Buffer.add_string b
        (Printf.sprintf "|sm:%s.%s.%s" sm.sm_inst sm.sm_port
           (match sm.sm_dir with `In -> "i" | `Out -> "o")))
    (relevant_smuxes ~side ~name ~cone smuxes);
  Buffer.contents b

let rtl_hashes soc =
  List.map (fun ci -> (ci.Soc.ci_name, Soc.rtl_hash ci)) soc.Soc.insts

(* Turn explicitly requested system-level test muxes into real CCG edges
   so routing can use them; returns their total area cost. *)
let install_smuxes soc ccg smuxes =
  List.fold_left
    (fun acc { sm_inst; sm_port; sm_dir } ->
      let width =
        (Socet_rtl.Rtl_core.find_port (Soc.inst soc sm_inst).Soc.ci_core sm_port)
          .Socet_rtl.Rtl_core.p_width
      in
      (match sm_dir with
      | `In ->
          let pi = Ccg.node_id ccg (Ccg.N_pi (fst (List.hd soc.Soc.soc_pis))) in
          let dst = Ccg.node_id ccg (Ccg.N_cin (sm_inst, sm_port)) in
          ignore (Ccg.add_smux ccg ~src:pi ~dst ~width)
      | `Out ->
          let po = Ccg.node_id ccg (Ccg.N_po (fst (List.hd soc.Soc.soc_pos))) in
          let src = Ccg.node_id ccg (Ccg.N_cout (sm_inst, sm_port)) in
          ignore (Ccg.add_smux ccg ~src ~dst:po ~width));
      acc + Ccg.smux_cost ~width)
    0 smuxes

let assemble soc ~choice ?(n_requested = 0) ?(requested_cost = 0) ccg tests =
  Obs.incr c_builds;
  let all_routes =
    List.concat_map (fun t -> t.ct_justify @ t.ct_observe) tests
  in
  Access.record_committed_fallbacks all_routes;
  let forced_cost =
    List.fold_left
      (fun acc (r : Access.route) ->
        match r.Access.r_added_smux with
        | Some (_, _, w) -> acc + Ccg.smux_cost ~width:w
        | None -> acc)
      0 all_routes
  in
  let transparency_cost =
    List.fold_left
      (fun acc ci ->
        let k = Option.value ~default:1 (List.assoc_opt ci.Soc.ci_name choice) in
        acc + (Soc.version_of ci k).Version.v_overhead)
      0 soc.Soc.insts
  in
  let n_smux =
    n_requested
    + List.length
        (List.filter
           (fun (r : Access.route) -> r.Access.r_added_smux <> None)
           all_routes)
  in
  let controller_cost = Controller.cost soc ~choice ~n_smux in
  let smux_cost = requested_cost + forced_cost in
  {
    s_ccg = ccg;
    s_tests = tests;
    s_total_time = List.fold_left (fun acc t -> acc + t.ct_time) 0 tests;
    s_transparency_cost = transparency_cost;
    s_smux_cost = smux_cost;
    s_controller_cost = controller_cost;
    s_area_overhead = transparency_cost + smux_cost + controller_cost;
    s_usage = Access.edge_usage all_routes;
  }

(* The cached per-core loop mirrors the Select memo's clean-flag
   discipline: a computed route that forced a system-level mux mutates
   the CCG, making every later core's routing a function of this build's
   history rather than of its key — from the first forced mux on,
   neither lookups nor stores are sound for the rest of the build.
   Budgeted builds bypass the cache entirely (a truncated result is not
   a pure function of the key). *)
let cached_core_tests soc ccg ~choice ~smuxes =
  let deps = dependency_sets soc in
  let skeleton = Soc.skeleton_hash soc in
  let rhash = rtl_hashes soc in
  let clean = ref true in
  List.map
    (fun ci ->
      let name = ci.Soc.ci_name in
      let _, back, fwd = List.find (fun (n, _, _) -> n = name) deps in
      let side_routes side cone compute =
        let key = route_key ~skeleton ~rhash ~choice ~smuxes ~side ~cone name in
        match (if !clean then Cache.find ~ns:route_ns ~key else None) with
        | Some routes -> routes
        | None ->
            let routes = compute ccg name in
            if has_forced_smux routes then clean := false
            else if !clean then Cache.store ~ns:route_ns ~key routes;
            routes
      in
      let justify = side_routes `J back justify_routes in
      let observe = side_routes `O fwd observe_routes in
      core_test_of_routes ci ~justify ~observe)
    soc.Soc.insts

let build ?budget soc ~choice ?(smuxes = []) () =
  Obs.with_span ~cat:"core" "schedule.build" @@ fun () ->
  Obs.incr c_full_builds;
  let ccg = Ccg.build soc ~choice in
  let requested_cost = install_smuxes soc ccg smuxes in
  let tests =
    if budget = None && Cache.enabled () then
      cached_core_tests soc ccg ~choice ~smuxes
    else List.map (build_core_test ?budget ccg) soc.Soc.insts
  in
  assemble soc ~choice ~n_requested:(List.length smuxes) ~requested_cost ccg
    tests

let involved_cores t =
  let insts =
    List.concat_map
      (fun (r : Access.route) ->
        List.filter_map
          (fun (e : Ccg.cedge Digraph.edge) ->
            match e.label with
            | Ccg.Transp { inst; _ } -> Some inst
            | Ccg.Wire | Ccg.Smux _ -> None)
          r.Access.r_edges)
      (t.ct_justify @ t.ct_observe)
  in
  List.sort_uniq compare (t.ct_inst :: insts)

let parallel_makespan sched =
  let tests =
    List.sort (fun a b -> compare b.ct_time a.ct_time) sched.s_tests
  in
  let placed = ref [] in
  (* (test, start, finish) *)
  List.iter
    (fun t ->
      let mine = involved_cores t in
      let conflicts (t', _, _) =
        List.exists (fun c -> List.mem c (involved_cores t')) mine
      in
      let start =
        List.fold_left
          (fun acc ((_, _, fin) as p) -> if conflicts p then max acc fin else acc)
          0 !placed
      in
      placed := (t, start, start + t.ct_time) :: !placed)
    tests;
  let makespan = List.fold_left (fun acc (_, _, fin) -> max acc fin) 0 !placed in
  (makespan, List.map (fun (t, start, _) -> (t.ct_inst, start)) (List.rev !placed))
