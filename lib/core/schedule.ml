open Socet_scan
module Digraph = Socet_graph.Digraph
module Obs = Socet_obs.Obs

let c_builds = Obs.counter ~scope:"core" "schedule.builds"

(* [full_builds] counts whole [build] calls (fresh CCG + every core
   re-routed); [builds] counts assembled schedules however their parts
   were obtained.  The gap between the two is what the Select route memo
   saves the optimizer. *)
let c_full_builds = Obs.counter ~scope:"core" "schedule.full_builds"

type core_test = {
  ct_inst : string;
  ct_vectors : int;
  ct_period : int;
  ct_tail : int;
  ct_time : int;
  ct_justify : Access.route list;
  ct_observe : Access.route list;
}

type t = {
  s_ccg : Ccg.t;
  s_tests : core_test list;
  s_total_time : int;
  s_transparency_cost : int;
  s_smux_cost : int;
  s_controller_cost : int;
  s_area_overhead : int;
  s_usage : (string * int * int, int) Hashtbl.t;
}

type smux_request = { sm_inst : string; sm_port : string; sm_dir : [ `In | `Out ] }

let justify_routes ccg name =
  (* Route the slowest input first (the paper justifies DISPLAY's A
     before D): probe each input on an empty calendar, then route in
     decreasing base-latency order against the shared calendar. *)
  let inputs = Ccg.core_inputs ccg name in
  let base_latency input =
    match
      Access.justify_input ~allow_smux:false ccg (Access.fresh_bookings ())
        ~input
    with
    | Some r -> r.Access.r_arrival
    | None -> 0
  in
  let inputs =
    List.map (fun i -> (base_latency i, i)) inputs
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  let bookings = Access.fresh_bookings () in
  List.filter_map
    (fun input -> Access.justify_input ccg bookings ~input)
    inputs

let observe_routes ccg name =
  let bookings = Access.fresh_bookings () in
  List.filter_map
    (fun output -> Access.observe_output ccg bookings ~output)
    (Ccg.core_outputs ccg name)

let core_test_of_routes ci ~justify ~observe =
  let period =
    max 1 (List.fold_left (fun acc r -> max acc r.Access.r_arrival) 0 justify)
  in
  let observe_makespan =
    List.fold_left (fun acc r -> max acc r.Access.r_arrival) 0 observe
  in
  let tail = max 0 (ci.Soc.ci_hscan.Hscan.depth - 1) + observe_makespan in
  let vectors = Soc.hscan_vectors ci in
  {
    ct_inst = ci.Soc.ci_name;
    ct_vectors = vectors;
    ct_period = period;
    ct_tail = tail;
    ct_time = (vectors * period) + tail;
    ct_justify = justify;
    ct_observe = observe;
  }

let build_core_test ?budget ccg ci =
  let name = ci.Soc.ci_name in
  if
    match budget with
    | Some b -> Socet_util.Budget.exhausted b
    | None -> false
  then
    (* Fuel/deadline gone: stub the remaining cores with no routes
       (and skip their ATPG) — the resilient planner reads the
       missing routes as a scheduling failure and ladders the core
       down to its FSCAN-BSCAN fallback. *)
    {
      ct_inst = name;
      ct_vectors = 0;
      ct_period = 0;
      ct_tail = 0;
      ct_time = 0;
      ct_justify = [];
      ct_observe = [];
    }
  else
    let justify = justify_routes ccg name in
    let observe = observe_routes ccg name in
    core_test_of_routes ci ~justify ~observe

(* Turn explicitly requested system-level test muxes into real CCG edges
   so routing can use them; returns their total area cost. *)
let install_smuxes soc ccg smuxes =
  List.fold_left
    (fun acc { sm_inst; sm_port; sm_dir } ->
      let width =
        (Socet_rtl.Rtl_core.find_port (Soc.inst soc sm_inst).Soc.ci_core sm_port)
          .Socet_rtl.Rtl_core.p_width
      in
      (match sm_dir with
      | `In ->
          let pi = Ccg.node_id ccg (Ccg.N_pi (fst (List.hd soc.Soc.soc_pis))) in
          let dst = Ccg.node_id ccg (Ccg.N_cin (sm_inst, sm_port)) in
          ignore (Ccg.add_smux ccg ~src:pi ~dst ~width)
      | `Out ->
          let po = Ccg.node_id ccg (Ccg.N_po (fst (List.hd soc.Soc.soc_pos))) in
          let src = Ccg.node_id ccg (Ccg.N_cout (sm_inst, sm_port)) in
          ignore (Ccg.add_smux ccg ~src ~dst:po ~width));
      acc + Ccg.smux_cost ~width)
    0 smuxes

let assemble soc ~choice ?(n_requested = 0) ?(requested_cost = 0) ccg tests =
  Obs.incr c_builds;
  let all_routes =
    List.concat_map (fun t -> t.ct_justify @ t.ct_observe) tests
  in
  Access.record_committed_fallbacks all_routes;
  let forced_cost =
    List.fold_left
      (fun acc (r : Access.route) ->
        match r.Access.r_added_smux with
        | Some (_, _, w) -> acc + Ccg.smux_cost ~width:w
        | None -> acc)
      0 all_routes
  in
  let transparency_cost =
    List.fold_left
      (fun acc ci ->
        let k = Option.value ~default:1 (List.assoc_opt ci.Soc.ci_name choice) in
        acc + (Soc.version_of ci k).Version.v_overhead)
      0 soc.Soc.insts
  in
  let n_smux =
    n_requested
    + List.length
        (List.filter
           (fun (r : Access.route) -> r.Access.r_added_smux <> None)
           all_routes)
  in
  let controller_cost = Controller.cost soc ~choice ~n_smux in
  let smux_cost = requested_cost + forced_cost in
  {
    s_ccg = ccg;
    s_tests = tests;
    s_total_time = List.fold_left (fun acc t -> acc + t.ct_time) 0 tests;
    s_transparency_cost = transparency_cost;
    s_smux_cost = smux_cost;
    s_controller_cost = controller_cost;
    s_area_overhead = transparency_cost + smux_cost + controller_cost;
    s_usage = Access.edge_usage all_routes;
  }

let build ?budget soc ~choice ?(smuxes = []) () =
  Obs.with_span ~cat:"core" "schedule.build" @@ fun () ->
  Obs.incr c_full_builds;
  let ccg = Ccg.build soc ~choice in
  let requested_cost = install_smuxes soc ccg smuxes in
  let tests = List.map (build_core_test ?budget ccg) soc.Soc.insts in
  assemble soc ~choice ~n_requested:(List.length smuxes) ~requested_cost ccg
    tests

let involved_cores t =
  let insts =
    List.concat_map
      (fun (r : Access.route) ->
        List.filter_map
          (fun (e : Ccg.cedge Digraph.edge) ->
            match e.label with
            | Ccg.Transp { inst; _ } -> Some inst
            | Ccg.Wire | Ccg.Smux _ -> None)
          r.Access.r_edges)
      (t.ct_justify @ t.ct_observe)
  in
  List.sort_uniq compare (t.ct_inst :: insts)

let parallel_makespan sched =
  let tests =
    List.sort (fun a b -> compare b.ct_time a.ct_time) sched.s_tests
  in
  let placed = ref [] in
  (* (test, start, finish) *)
  List.iter
    (fun t ->
      let mine = involved_cores t in
      let conflicts (t', _, _) =
        List.exists (fun c -> List.mem c (involved_cores t')) mine
      in
      let start =
        List.fold_left
          (fun acc ((_, _, fin) as p) -> if conflicts p then max acc fin else acc)
          0 !placed
      in
      placed := (t, start, start + t.ct_time) :: !placed)
    tests;
  let makespan = List.fold_left (fun acc (_, _, fin) -> max acc fin) 0 !placed in
  (makespan, List.map (fun (t, start, _) -> (t.ct_inst, start)) (List.rev !placed))
