open Socet_rtl
open Rtl_types
module Digraph = Socet_graph.Digraph
module Obs = Socet_obs.Obs
module Budget = Socet_util.Budget
module Chaos = Socet_util.Chaos

(* Observability: transparency-path search is the inner loop of version
   generation; nodes expanded ~ search effort, give-ups ~ budget misses. *)
let c_nodes = Obs.counter ~scope:"core" "tsearch.nodes_expanded"
let c_solves = Obs.counter ~scope:"core" "tsearch.solves"
let c_giveups = Obs.counter ~scope:"core" "tsearch.give_ups"

type sol = {
  s_edges : Rcg.edge_label Digraph.edge list;
  s_latency : int;
  s_freezes : (int * int) list;
  s_terminals : int list;
  s_depths : (int * int) list;
}

exception Give_up

let mask_of_range (r : range) = (((1 lsl range_width r) - 1) lsl r.lsb)

(* Bits [mask] expressed in [from_range] coordinates of one node, mapped to
   the corresponding positions of [to_range] at the other node. *)
let map_mask ~from_range ~to_range mask =
  let shift = to_range.lsb - from_range.lsb in
  let m = mask land mask_of_range from_range in
  if shift >= 0 then m lsl shift else m lsr (-shift)

type dir = Prop | Just

(* Per-direction views of the RCG. *)
let is_terminal rcg dir v =
  match ((Rcg.node rcg v).Rcg.n_kind, dir) with
  | Rcg.Out, Prop -> true
  | Rcg.In, Just -> true
  | _ -> false

let slice_groups rcg dir v =
  match dir with
  | Prop -> Rcg.out_slice_groups rcg v
  | Just -> Rcg.in_slice_groups rcg v

let other_end dir (e : Rcg.edge_label Digraph.edge) =
  match dir with Prop -> e.dst | Just -> e.src

(* Ranges of an edge at the current node and at the node we move to. *)
let ranges dir (e : Rcg.edge_label Digraph.edge) =
  match dir with
  | Prop -> (e.label.Rcg.e_src_range, e.label.Rcg.e_dst_range)
  | Just -> (e.label.Rcg.e_dst_range, e.label.Rcg.e_src_range)

(* Distance-to-terminal estimate for search guidance (hop count over
   allowed edges, ignoring slices). *)
let distance_map rcg dir allowed =
  let g = Rcg.graph rcg in
  let n = Digraph.node_count g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  Digraph.iter_nodes
    (fun v ->
      if is_terminal rcg dir v then begin
        dist.(v) <- 0;
        Queue.add v queue
      end)
    g;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    (* Move opposite to the search direction: from terminals back. *)
    let incoming = match dir with Prop -> Digraph.pred g v | Just -> Digraph.succ g v in
    List.iter
      (fun (e : Rcg.edge_label Digraph.edge) ->
        if allowed e then begin
          let u = match dir with Prop -> e.src | Just -> e.dst in
          if dist.(u) = max_int then begin
            dist.(u) <- dist.(v) + 1;
            Queue.add u queue
          end
        end)
      incoming
  done;
  dist

(* Enumerate covers of [needed] by the node's slice groups: subsets of
   groups with the bits each group is responsible for. *)
let covers groups needed =
  let groups =
    List.filter (fun (r, _) -> mask_of_range r land needed <> 0) groups
  in
  let arr = Array.of_list groups in
  let k = Array.length arr in
  if k = 0 then []
  else begin
    let subsets = ref [] in
    let limit = min k 6 in
    (* All subsets of up to [limit] member groups (RCGs have few slice
       groups per node; the cap only guards pathological inputs). *)
    for bits = 1 to (1 lsl limit) - 1 do
      let members = ref [] in
      for i = 0 to limit - 1 do
        if (bits lsr i) land 1 = 1 then members := arr.(i) :: !members
      done;
      (* Assign narrow slices first so wide (full-range) edges only carry
         the remainder. *)
      let members =
        List.sort
          (fun ((a : range), _) (b, _) -> compare (range_width a) (range_width b))
          !members
      in
      let assigned = ref 0 in
      let alloc =
        List.filter_map
          (fun (r, edges) ->
            let contribution = needed land mask_of_range r land lnot !assigned in
            if contribution = 0 then None
            else begin
              assigned := !assigned lor contribution;
              Some (r, edges, contribution)
            end)
          members
      in
      if !assigned = needed && List.length alloc = List.length members then
        subsets := alloc :: !subsets
    done;
    (* Prefer few branches, then little excess width. *)
    List.sort
      (fun a b ->
        compare
          (List.length a, List.fold_left (fun s (r, _, _) -> s + range_width r) 0 a)
          (List.length b, List.fold_left (fun s (r, _, _) -> s + range_width r) 0 b))
      !subsets
  end

let default_steps = 50_000

let solve rcg dir ?(prefer_hscan = false) ?budget ~allowed ~start () =
  Obs.with_span ~cat:"core" "tsearch.solve" @@ fun () ->
  Obs.incr c_solves;
  let budget =
    match budget with
    | Some b -> b
    | None -> Budget.create ~label:"tsearch" ~steps:default_steps ()
  in
  let dist = distance_map rcg dir allowed in
  let edge_rank (e : Rcg.edge_label Digraph.edge) =
    ( (if prefer_hscan && not e.label.Rcg.e_hscan then 1 else 0),
      dist.(other_end dir e),
      e.id )
  in
  (* Search returns the list of edges used (with repetitions when branches
     share a sub-path; deduplicated at the end). *)
  let rec go v needed on_path =
    Obs.incr c_nodes;
    if not (Budget.spend budget) then raise Give_up;
    if needed = 0 then Some []
    else if is_terminal rcg dir v then Some []
    else begin
      let groups = slice_groups rcg dir v in
      let try_cover alloc =
        let rec per_group acc = function
          | [] -> Some acc
          | (r, edges, contribution) :: rest ->
              let edges =
                edges
                |> List.filter (fun e ->
                       allowed e
                       && (not (List.mem (other_end dir e) on_path))
                       && dist.(other_end dir e) < max_int)
                |> List.sort (fun a b -> compare (edge_rank a) (edge_rank b))
              in
              let rec per_edge = function
                | [] -> None
                | e :: more -> (
                    let here, there = ranges dir e in
                    ignore r;
                    let mapped =
                      map_mask ~from_range:here ~to_range:there contribution
                    in
                    match go (other_end dir e) mapped (v :: on_path) with
                    | Some sub -> (
                        match per_group ((e :: sub) @ acc) rest with
                        | Some all -> Some all
                        | None -> per_edge more)
                    | None -> per_edge more)
              in
              per_edge edges
        in
        per_group [] alloc
      in
      let rec try_covers = function
        | [] -> None
        | c :: rest -> (
            match try_cover c with Some r -> Some r | None -> try_covers rest)
      in
      try_covers (covers groups needed)
    end
  in
  let width = (Rcg.node rcg start).Rcg.n_width in
  let needed = (1 lsl width) - 1 in
  match
    (try
       (* Chaos site: a tripped search behaves exactly like a budget miss,
          so the degradation ladder downstream is what gets exercised. *)
       if Chaos.trip "core.tsearch.solve" then raise Give_up
       else go start needed []
     with Give_up ->
       Obs.incr c_giveups;
       None)
  with
  | None -> None
  | Some raw ->
      (* Deduplicate shared sub-paths. *)
      let seen = Hashtbl.create 16 in
      let edges =
        List.filter
          (fun (e : Rcg.edge_label Digraph.edge) ->
            if Hashtbl.mem seen e.id then false
            else begin
              Hashtbl.replace seen e.id ();
              true
            end)
          raw
      in
      (* Forward-orientation DAG metrics: depth = register writes since
         data entered at the source side. *)
      let sources =
        match dir with
        | Prop -> [ start ]
        | Just ->
            List.sort_uniq compare
              (List.filter_map
                 (fun (e : Rcg.edge_label Digraph.edge) ->
                   if (Rcg.node rcg e.src).Rcg.n_kind = Rcg.In then Some e.src
                   else None)
                 edges)
      in
      let nodes =
        List.sort_uniq compare
          (List.concat_map
             (fun (e : Rcg.edge_label Digraph.edge) -> [ e.src; e.dst ])
             edges)
      in
      let depth = Hashtbl.create 16 in
      List.iter (fun s -> Hashtbl.replace depth s 0) sources;
      (* Relax edges until fixpoint (the sub-DAG is tiny). *)
      let changed = ref true in
      let guard = ref (List.length edges * List.length nodes + 16) in
      while !changed && !guard > 0 do
        changed := false;
        decr guard;
        List.iter
          (fun (e : Rcg.edge_label Digraph.edge) ->
            match Hashtbl.find_opt depth e.src with
            | None -> ()
            | Some d ->
                let cost =
                  if (Rcg.node rcg e.dst).Rcg.n_kind = Rcg.Reg then 1 else 0
                in
                let arr = d + cost in
                let cur = Hashtbl.find_opt depth e.dst in
                if cur = None || Option.get cur < arr then begin
                  Hashtbl.replace depth e.dst arr;
                  changed := true
                end)
          edges
      done;
      let terminals =
        match dir with
        | Prop ->
            List.sort_uniq compare
              (List.filter_map
                 (fun (e : Rcg.edge_label Digraph.edge) ->
                   if (Rcg.node rcg e.dst).Rcg.n_kind = Rcg.Out then Some e.dst
                   else None)
                 edges)
        | Just -> sources
      in
      let latency =
        match dir with
        | Prop ->
            List.fold_left
              (fun acc t ->
                match Hashtbl.find_opt depth t with
                | Some d -> max acc d
                | None -> acc)
              0 terminals
        | Just -> ( match Hashtbl.find_opt depth start with Some d -> d | None -> 0)
      in
      (* Balance reconvergent branches: every node fed by several selected
         edges must receive all its slices in the same cycle; registers on
         early branches are frozen for the difference. *)
      let freezes = Hashtbl.create 4 in
      List.iter
        (fun m ->
          let ins =
            List.filter (fun (e : Rcg.edge_label Digraph.edge) -> e.dst = m) edges
          in
          if List.length ins > 1 then begin
            let cost = if (Rcg.node rcg m).Rcg.n_kind = Rcg.Reg then 1 else 0 in
            let arrivals =
              List.filter_map
                (fun (e : Rcg.edge_label Digraph.edge) ->
                  match Hashtbl.find_opt depth e.src with
                  | Some d -> Some (e, d + cost)
                  | None -> None)
                ins
            in
            let latest = List.fold_left (fun a (_, t) -> max a t) 0 arrivals in
            List.iter
              (fun ((e : Rcg.edge_label Digraph.edge), t) ->
                if t < latest && (Rcg.node rcg e.src).Rcg.n_kind = Rcg.Reg then begin
                  let prev =
                    Option.value ~default:0 (Hashtbl.find_opt freezes e.src)
                  in
                  Hashtbl.replace freezes e.src (max prev (latest - t))
                end)
              arrivals
          end)
        nodes;
      Some
        {
          s_edges = edges;
          s_latency = latency;
          s_freezes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) freezes [];
          s_terminals = terminals;
          s_depths =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) depth []
            |> List.sort compare;
        }

let propagate rcg ?prefer_hscan ?budget ~allowed ~input () =
  let allowed e = e.Digraph.label.Rcg.e_enabled && allowed e in
  solve rcg Prop ?prefer_hscan ?budget ~allowed ~start:input ()

let justify rcg ?prefer_hscan ?budget ~allowed ~output () =
  let allowed e = e.Digraph.label.Rcg.e_enabled && allowed e in
  solve rcg Just ?prefer_hscan ?budget ~allowed ~start:output ()

let reach_in_one_cycle rcg ~input =
  Digraph.succ (Rcg.graph rcg) input
  |> List.filter_map (fun (e : Rcg.edge_label Digraph.edge) ->
         if (Rcg.node rcg e.dst).Rcg.n_kind = Rcg.Reg then Some e.dst else None)
  |> List.sort_uniq compare
