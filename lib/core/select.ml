module Obs = Socet_obs.Obs
module Budget = Socet_util.Budget
module Pool = Socet_util.Pool

(* Observability: the iterative-improvement optimizer is measured in
   design points evaluated (each one a full schedule build) and in
   improvement steps taken.  [memo_hits] counts per-core tests served
   from the design-space memo table instead of being re-routed. *)
let c_evals = Obs.counter ~scope:"core" "select.points_evaluated"
let c_steps = Obs.counter ~scope:"core" "select.steps"
let c_memo_hits = Obs.counter ~scope:"core" "select.memo_hits"

type point = {
  pt_choice : (string * int) list;
  pt_smuxes : Schedule.smux_request list;
  pt_schedule : Schedule.t;
  pt_area : int;
  pt_time : int;
}

let evaluate soc ~choice ?(smuxes = []) () =
  Obs.incr c_evals;
  let s = Schedule.build soc ~choice ~smuxes () in
  {
    pt_choice = choice;
    pt_smuxes = smuxes;
    pt_schedule = s;
    pt_area = s.Schedule.s_area_overhead;
    pt_time = s.Schedule.s_total_time;
  }

(* Which cores' version choices can influence core [X]'s test: routes
   justifying X's inputs ride directed paths PI -> ... -> X.in, so only
   cores with a directed path to X matter on the justify side; dually,
   observation rides X.out -> ... -> PO, so only cores reachable from X
   matter on the observe side.  Closing the core-to-core connection
   graph gives static per-side dependency sets — two full choices
   agreeing on X's justify (observe) set yield bit-identical justify
   (observe) routes for X.  X itself only joins a set when it sits on a
   connection cycle (a route could then re-enter its own transparency). *)
let dependency_sets soc =
  let preds = Hashtbl.create 16 and succs = Hashtbl.create 16 in
  let push tbl k v =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
    if not (List.mem v cur) then Hashtbl.replace tbl k (v :: cur)
  in
  List.iter
    (fun (c : Soc.connection) ->
      match (c.Soc.c_from, c.Soc.c_to) with
      | Soc.Cport (a, _), Soc.Cport (b, _) when a <> b ->
          push preds b a;
          push succs a b
      | _ -> ())
    soc.Soc.conns;
  (* Proper reachability: [seed] is included only via a cycle back to
     itself, not by fiat. *)
  let reach tbl seed =
    let seen = Hashtbl.create 8 in
    let rec go n =
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        List.iter go (Option.value ~default:[] (Hashtbl.find_opt tbl n))
      end
    in
    List.iter go (Option.value ~default:[] (Hashtbl.find_opt tbl seed));
    seen
  in
  let names_in tbl =
    List.filter_map
      (fun ci ->
        let n = ci.Soc.ci_name in
        if Hashtbl.mem tbl n then Some n else None)
      soc.Soc.insts
  in
  List.map
    (fun ci ->
      let name = ci.Soc.ci_name in
      (name, names_in (reach preds name), names_in (reach succs name)))
    soc.Soc.insts

let design_space soc =
  Obs.with_span ~cat:"core" "select.design_space" @@ fun () ->
  (* [ci_atpg] is a [Lazy.t], which is not safe to force concurrently:
     force every core's test set here, on the submitting domain, before
     any worker can race on it. *)
  List.iter (fun ci -> ignore (Soc.atpg_vectors ci)) soc.Soc.insts;
  let axes =
    List.map
      (fun ci ->
        ( ci.Soc.ci_name,
          List.map (fun v -> v.Version.v_index) ci.Soc.ci_versions ))
      soc.Soc.insts
  in
  let rec expand = function
    | [] -> [ [] ]
    | (name, ks) :: rest ->
        let tails = expand rest in
        List.concat_map (fun k -> List.map (fun t -> (name, k) :: t) tails) ks
  in
  let deps = dependency_sets soc in
  (* Route memo, one entry per (core, versions of the cores that side's
     routes can traverse).  Justify and observe key on their own
     dependency sides, so e.g. in a PREP -> CPU -> DISPLAY chain CPU's
     justify routes are shared across every DISPLAY version. *)
  let memo : (string * [ `J | `O ] * (string * int) list, Access.route list) Hashtbl.t
      =
    Hashtbl.create 64
  in
  let memo_mu = Mutex.create () in
  let memo_find key =
    Mutex.lock memo_mu;
    let r = Hashtbl.find_opt memo key in
    Mutex.unlock memo_mu;
    r
  in
  let memo_store key routes =
    Mutex.lock memo_mu;
    if not (Hashtbl.mem memo key) then Hashtbl.add memo key routes;
    Mutex.unlock memo_mu
  in
  let has_forced_smux routes =
    List.exists (fun (r : Access.route) -> r.Access.r_added_smux <> None) routes
  in
  let eval_choice choice =
    Obs.incr c_evals;
    let ccg = Ccg.build soc ~choice in
    (* [clean] turns false at the first forced system-level mux: from
       then on the CCG is mutated, so neither memo lookups nor stores
       are sound for the rest of this design point. *)
    let clean = ref true in
    let routes_for ~side ~compute name dep_names =
      let key =
        ( name,
          side,
          List.map
            (fun d -> (d, Option.value ~default:1 (List.assoc_opt d choice)))
            dep_names )
      in
      match (if !clean then memo_find key else None) with
      | Some routes ->
          Obs.incr c_memo_hits;
          routes
      | None ->
          let routes = compute ccg name in
          if has_forced_smux routes then clean := false
          else if !clean then memo_store key routes;
          routes
    in
    let tests =
      List.map
        (fun ci ->
          let name = ci.Soc.ci_name in
          let _, back, fwd =
            List.find (fun (n, _, _) -> n = name) deps
          in
          let justify =
            routes_for ~side:`J ~compute:Schedule.justify_routes name back
          in
          let observe =
            routes_for ~side:`O ~compute:Schedule.observe_routes name fwd
          in
          Schedule.core_test_of_routes ci ~justify ~observe)
        soc.Soc.insts
    in
    let s = Schedule.assemble soc ~choice ccg tests in
    {
      pt_choice = choice;
      pt_smuxes = [];
      pt_schedule = s;
      pt_area = s.Schedule.s_area_overhead;
      pt_time = s.Schedule.s_total_time;
    }
  in
  Pool.parallel_map_list eval_choice (expand axes)

(* Estimated test-time gain of stepping [inst] to its next version:
   usage count of each transparency pair times its latency drop
   (the paper's latency-number difference). *)
let delta_tat soc (point : point) inst_name =
  let ci = Soc.inst soc inst_name in
  let cur_k = Option.value ~default:1 (List.assoc_opt inst_name point.pt_choice) in
  let cur = Soc.version_of ci cur_k in
  let next =
    List.find_opt (fun v -> v.Version.v_index > cur.Version.v_index) ci.Soc.ci_versions
  in
  match next with
  | None -> None
  | Some next ->
      let usage = point.pt_schedule.Schedule.s_usage in
      let gain = ref 0 in
      List.iter
        (fun (p : Version.pair) ->
          let count =
            Option.value ~default:0
              (Hashtbl.find_opt usage (inst_name, p.Version.pr_input, p.Version.pr_output))
          in
          if count > 0 then begin
            let new_lat =
              match
                Version.latency_between next ~input:p.Version.pr_input
                  ~output:p.Version.pr_output
              with
              | Some l -> l
              | None -> p.Version.pr_latency
            in
            gain := !gain + (count * (p.Version.pr_latency - new_lat))
          end)
        cur.Version.v_pairs;
      Some (next, !gain, next.Version.v_overhead - cur.Version.v_overhead)

(* The port where a system-level test mux would help the slowest core
   most: its latest-justified input (or latest-observed output). *)
let critical_smux (point : point) =
  let slowest =
    List.fold_left
      (fun acc t ->
        match acc with
        | Some best when best.Schedule.ct_time >= t.Schedule.ct_time -> acc
        | _ -> Some t)
      None point.pt_schedule.Schedule.s_tests
  in
  match slowest with
  | None -> None
  | Some t ->
      let ccg = point.pt_schedule.Schedule.s_ccg in
      let worst routes =
        List.fold_left
          (fun acc (r : Access.route) ->
            match acc with
            | Some (_, best) when best >= r.Access.r_arrival -> acc
            | _ -> Some (r.Access.r_target, r.Access.r_arrival))
          None routes
      in
      let pick dir routes =
        match worst routes with
        | Some (target, arrival) when arrival > 0 -> (
            match Ccg.node ccg target with
            | Ccg.N_cin (i, p) | Ccg.N_cout (i, p) ->
                Some ({ Schedule.sm_inst = i; sm_port = p; sm_dir = dir }, arrival)
            | _ -> None)
        | _ -> None
      in
      let cand_in = pick `In t.Schedule.ct_justify in
      let cand_out = pick `Out t.Schedule.ct_observe in
      let best =
        match (cand_in, cand_out) with
        | Some (a, la), Some (b, lb) -> Some (if la >= lb then a else b)
        | Some (a, _), None -> Some a
        | None, Some (b, _) -> Some b
        | None, None -> None
      in
      (* Don't re-request an existing mux. *)
      match best with
      | Some m when not (List.mem m point.pt_smuxes) -> Some m
      | _ -> None

let smux_request_cost soc (m : Schedule.smux_request) =
  let w =
    (Socet_rtl.Rtl_core.find_port (Soc.inst soc m.Schedule.sm_inst).Soc.ci_core
       m.Schedule.sm_port)
      .Socet_rtl.Rtl_core.p_width
  in
  Ccg.smux_cost ~width:w

let bump choice inst k =
  (inst, k) :: List.remove_assoc inst choice

(* One optimizer step; [pick] chooses among (inst, next, dTAT, dA)
   candidates.  Returns the improved point, or None when out of moves. *)
let step soc point ~pick =
  Obs.incr c_steps;
  let candidates =
    List.filter_map
      (fun ci ->
        match delta_tat soc point ci.Soc.ci_name with
        | Some (next, dtat, da) when dtat > 0 ->
            Some (ci.Soc.ci_name, next.Version.v_index, dtat, da)
        | _ -> None)
      soc.Soc.insts
  in
  let version_move = pick candidates in
  let mux_move () =
    match critical_smux point with
    | None -> None
    | Some m ->
        Some
          (evaluate soc
             ~choice:point.pt_choice
             ~smuxes:(m :: point.pt_smuxes) ())
  in
  match version_move with
  | Some (inst, k, _dtat, da) ->
      (* Paper: when the version step is dearer than a system-level test
         mux, place the mux instead. *)
      let mux_cost =
        match critical_smux point with
        | Some m -> Some (smux_request_cost soc m)
        | None -> None
      in
      if (match mux_cost with Some mc -> da > mc | None -> false) then mux_move ()
      else
        Some
          (evaluate soc ~choice:(bump point.pt_choice inst k) ~smuxes:point.pt_smuxes ())
  | None -> mux_move ()

let minimize_time ?budget soc ~max_area =
  Obs.with_span ~cat:"core" "select.minimize_time" @@ fun () ->
  let start =
    evaluate soc ~choice:(List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts) ()
  in
  let rec loop acc point guard =
    (* Each optimizer step is a full schedule build, so one budget unit per
       step; exhaustion gracefully returns the trajectory so far (always at
       least the starting point — still a valid design). *)
    if
      guard = 0
      || (match budget with Some b -> not (Budget.spend b) | None -> false)
    then List.rev (point :: acc)
    else
      let pick candidates =
        (* w1 = 1, w2 = 0: highest dTAT. *)
        List.fold_left
          (fun best (i, k, dtat, da) ->
            match best with
            | Some (_, _, bt, _) when bt >= dtat -> best
            | _ -> Some (i, k, dtat, da))
          None candidates
      in
      (* The paper iterates on the dTAT estimate; the realized global time
         may stall for a step (another core's access path is the
         bottleneck), so we keep stepping while the area budget holds. *)
      match step soc point ~pick with
      | Some next when next.pt_area <= max_area -> loop (point :: acc) next (guard - 1)
      | _ -> List.rev (point :: acc)
  in
  loop [] start 64

let minimize_area ?budget soc ~max_time =
  Obs.with_span ~cat:"core" "select.minimize_area" @@ fun () ->
  let start =
    evaluate soc ~choice:(List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts) ()
  in
  let rec loop acc point guard =
    if
      point.pt_time <= max_time
      || guard = 0
      || (match budget with Some b -> not (Budget.spend b) | None -> false)
    then List.rev (point :: acc)
    else
      let pick candidates =
        (* w1 = 0, w2 = 1: cheapest step that still helps. *)
        List.fold_left
          (fun best (i, k, dtat, da) ->
            match best with
            | Some (_, _, _, bda) when bda <= da -> best
            | _ -> Some (i, k, dtat, da))
          None candidates
      in
      match step soc point ~pick with
      | Some next -> loop (point :: acc) next (guard - 1)
      | None -> List.rev (point :: acc)
  in
  loop [] start 64
