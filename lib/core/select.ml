module Obs = Socet_obs.Obs
module Budget = Socet_util.Budget

(* Observability: the iterative-improvement optimizer is measured in
   design points evaluated (each one a full schedule build) and in
   improvement steps taken. *)
let c_evals = Obs.counter ~scope:"core" "select.points_evaluated"
let c_steps = Obs.counter ~scope:"core" "select.steps"

type point = {
  pt_choice : (string * int) list;
  pt_smuxes : Schedule.smux_request list;
  pt_schedule : Schedule.t;
  pt_area : int;
  pt_time : int;
}

let evaluate soc ~choice ?(smuxes = []) () =
  Obs.incr c_evals;
  let s = Schedule.build soc ~choice ~smuxes () in
  {
    pt_choice = choice;
    pt_smuxes = smuxes;
    pt_schedule = s;
    pt_area = s.Schedule.s_area_overhead;
    pt_time = s.Schedule.s_total_time;
  }

let design_space soc =
  Obs.with_span ~cat:"core" "select.design_space" @@ fun () ->
  let axes =
    List.map
      (fun ci ->
        ( ci.Soc.ci_name,
          List.map (fun v -> v.Version.v_index) ci.Soc.ci_versions ))
      soc.Soc.insts
  in
  let rec expand = function
    | [] -> [ [] ]
    | (name, ks) :: rest ->
        let tails = expand rest in
        List.concat_map (fun k -> List.map (fun t -> (name, k) :: t) tails) ks
  in
  List.map (fun choice -> evaluate soc ~choice ()) (expand axes)

(* Estimated test-time gain of stepping [inst] to its next version:
   usage count of each transparency pair times its latency drop
   (the paper's latency-number difference). *)
let delta_tat soc (point : point) inst_name =
  let ci = Soc.inst soc inst_name in
  let cur_k = Option.value ~default:1 (List.assoc_opt inst_name point.pt_choice) in
  let cur = Soc.version_of ci cur_k in
  let next =
    List.find_opt (fun v -> v.Version.v_index > cur.Version.v_index) ci.Soc.ci_versions
  in
  match next with
  | None -> None
  | Some next ->
      let usage = point.pt_schedule.Schedule.s_usage in
      let gain = ref 0 in
      List.iter
        (fun (p : Version.pair) ->
          let count =
            Option.value ~default:0
              (Hashtbl.find_opt usage (inst_name, p.Version.pr_input, p.Version.pr_output))
          in
          if count > 0 then begin
            let new_lat =
              match
                Version.latency_between next ~input:p.Version.pr_input
                  ~output:p.Version.pr_output
              with
              | Some l -> l
              | None -> p.Version.pr_latency
            in
            gain := !gain + (count * (p.Version.pr_latency - new_lat))
          end)
        cur.Version.v_pairs;
      Some (next, !gain, next.Version.v_overhead - cur.Version.v_overhead)

(* The port where a system-level test mux would help the slowest core
   most: its latest-justified input (or latest-observed output). *)
let critical_smux (point : point) =
  let slowest =
    List.fold_left
      (fun acc t ->
        match acc with
        | Some best when best.Schedule.ct_time >= t.Schedule.ct_time -> acc
        | _ -> Some t)
      None point.pt_schedule.Schedule.s_tests
  in
  match slowest with
  | None -> None
  | Some t ->
      let ccg = point.pt_schedule.Schedule.s_ccg in
      let worst routes =
        List.fold_left
          (fun acc (r : Access.route) ->
            match acc with
            | Some (_, best) when best >= r.Access.r_arrival -> acc
            | _ -> Some (r.Access.r_target, r.Access.r_arrival))
          None routes
      in
      let pick dir routes =
        match worst routes with
        | Some (target, arrival) when arrival > 0 -> (
            match Ccg.node ccg target with
            | Ccg.N_cin (i, p) | Ccg.N_cout (i, p) ->
                Some ({ Schedule.sm_inst = i; sm_port = p; sm_dir = dir }, arrival)
            | _ -> None)
        | _ -> None
      in
      let cand_in = pick `In t.Schedule.ct_justify in
      let cand_out = pick `Out t.Schedule.ct_observe in
      let best =
        match (cand_in, cand_out) with
        | Some (a, la), Some (b, lb) -> Some (if la >= lb then a else b)
        | Some (a, _), None -> Some a
        | None, Some (b, _) -> Some b
        | None, None -> None
      in
      (* Don't re-request an existing mux. *)
      match best with
      | Some m when not (List.mem m point.pt_smuxes) -> Some m
      | _ -> None

let smux_request_cost soc (m : Schedule.smux_request) =
  let w =
    (Socet_rtl.Rtl_core.find_port (Soc.inst soc m.Schedule.sm_inst).Soc.ci_core
       m.Schedule.sm_port)
      .Socet_rtl.Rtl_core.p_width
  in
  Ccg.smux_cost ~width:w

let bump choice inst k =
  (inst, k) :: List.remove_assoc inst choice

(* One optimizer step; [pick] chooses among (inst, next, dTAT, dA)
   candidates.  Returns the improved point, or None when out of moves. *)
let step soc point ~pick =
  Obs.incr c_steps;
  let candidates =
    List.filter_map
      (fun ci ->
        match delta_tat soc point ci.Soc.ci_name with
        | Some (next, dtat, da) when dtat > 0 ->
            Some (ci.Soc.ci_name, next.Version.v_index, dtat, da)
        | _ -> None)
      soc.Soc.insts
  in
  let version_move = pick candidates in
  let mux_move () =
    match critical_smux point with
    | None -> None
    | Some m ->
        Some
          (evaluate soc
             ~choice:point.pt_choice
             ~smuxes:(m :: point.pt_smuxes) ())
  in
  match version_move with
  | Some (inst, k, _dtat, da) ->
      (* Paper: when the version step is dearer than a system-level test
         mux, place the mux instead. *)
      let mux_cost =
        match critical_smux point with
        | Some m -> Some (smux_request_cost soc m)
        | None -> None
      in
      if (match mux_cost with Some mc -> da > mc | None -> false) then mux_move ()
      else
        Some
          (evaluate soc ~choice:(bump point.pt_choice inst k) ~smuxes:point.pt_smuxes ())
  | None -> mux_move ()

let minimize_time ?budget soc ~max_area =
  Obs.with_span ~cat:"core" "select.minimize_time" @@ fun () ->
  let start =
    evaluate soc ~choice:(List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts) ()
  in
  let rec loop acc point guard =
    (* Each optimizer step is a full schedule build, so one budget unit per
       step; exhaustion gracefully returns the trajectory so far (always at
       least the starting point — still a valid design). *)
    if
      guard = 0
      || (match budget with Some b -> not (Budget.spend b) | None -> false)
    then List.rev (point :: acc)
    else
      let pick candidates =
        (* w1 = 1, w2 = 0: highest dTAT. *)
        List.fold_left
          (fun best (i, k, dtat, da) ->
            match best with
            | Some (_, _, bt, _) when bt >= dtat -> best
            | _ -> Some (i, k, dtat, da))
          None candidates
      in
      (* The paper iterates on the dTAT estimate; the realized global time
         may stall for a step (another core's access path is the
         bottleneck), so we keep stepping while the area budget holds. *)
      match step soc point ~pick with
      | Some next when next.pt_area <= max_area -> loop (point :: acc) next (guard - 1)
      | _ -> List.rev (point :: acc)
  in
  loop [] start 64

let minimize_area ?budget soc ~max_time =
  Obs.with_span ~cat:"core" "select.minimize_area" @@ fun () ->
  let start =
    evaluate soc ~choice:(List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts) ()
  in
  let rec loop acc point guard =
    if
      point.pt_time <= max_time
      || guard = 0
      || (match budget with Some b -> not (Budget.spend b) | None -> false)
    then List.rev (point :: acc)
    else
      let pick candidates =
        (* w1 = 0, w2 = 1: cheapest step that still helps. *)
        List.fold_left
          (fun best (i, k, dtat, da) ->
            match best with
            | Some (_, _, _, bda) when bda <= da -> best
            | _ -> Some (i, k, dtat, da))
          None candidates
      in
      match step soc point ~pick with
      | Some next -> loop (point :: acc) next (guard - 1)
      | None -> List.rev (point :: acc)
  in
  loop [] start 64
