module Obs = Socet_obs.Obs
module Budget = Socet_util.Budget
module Pool = Socet_util.Pool
module Cache = Socet_cache.Cache

(* Observability: the iterative-improvement optimizer is measured in
   design points evaluated (each one a full schedule build) and in
   improvement steps taken.  [memo_hits] counts per-core tests served
   from the route memo instead of being re-routed; [opt_steps] /
   [opt_memo_hits] are the same signals restricted to the bounded
   optimizer loops (vs the exhaustive design-space sweep). *)
let c_evals = Obs.counter ~scope:"core" "select.points_evaluated"
let c_steps = Obs.counter ~scope:"core" "select.steps"
let c_memo_hits = Obs.counter ~scope:"core" "select.memo_hits"
let c_opt_steps = Obs.counter ~scope:"core" "select.opt_steps"
let c_opt_memo_hits = Obs.counter ~scope:"core" "select.opt_memo_hits"

type point = {
  pt_choice : (string * int) list;
  pt_smuxes : Schedule.smux_request list;
  pt_schedule : Schedule.t;
  pt_area : int;
  pt_time : int;
}

let evaluate soc ~choice ?(smuxes = []) () =
  Obs.incr c_evals;
  let s = Schedule.build soc ~choice ~smuxes () in
  {
    pt_choice = choice;
    pt_smuxes = smuxes;
    pt_schedule = s;
    pt_area = s.Schedule.s_area_overhead;
    pt_time = s.Schedule.s_total_time;
  }

(* The per-core dependency cones live in Schedule (shared with its
   persistent-cache path); kept under their historical name here. *)
let dependency_sets = Schedule.dependency_sets

(* ------------------------------------------------------------------ *)
(* Route memo with smux-request-aware keys                             *)
(* ------------------------------------------------------------------ *)

(* A memo key pins down everything a core's per-side routing can see:

   - the versions of the cores on that side's dependency set (their
     transparency edges are the only latency-bearing edges a route to /
     from the core can ride);

   - the subset of the requested system-level test muxes whose endpoint
     touches the core's cone on that side.  An [`In] request only adds a
     PI -> input edge, so it can shorten a justify route exactly when
     its target core is in (or is) the core's backward cone; dually an
     [`Out] request (output -> PO) matters only to observe routes of its
     forward cone.  Any other requested mux adds edges the route cannot
     reach, and [Search.dijkstra_timed]'s deterministic tie-breaking
     guarantees unreachable edges never change the returned path — so
     two evaluations agreeing on the key get bit-identical routes.

   Forced muxes (router fallbacks) mutate the CCG mid-evaluation; from
   the first one on, neither lookups nor stores are sound for the rest
   of that evaluation ([clean] below), exactly as in the design-space
   sweep. *)
type memo = {
  mm_soc : Soc.t;
  mm_deps : (string * string list * string list) list;
  mm_tbl :
    ( string * [ `J | `O ] * (string * int) list * Schedule.smux_request list,
      Access.route list )
    Hashtbl.t;
  mm_mu : Mutex.t;
  mm_skeleton : string;
  mm_rhash : (string * string) list;
      (** content identities for the persistent route cache; eager (not
          lazy) because evaluations run on pool domains *)
}

let memo soc =
  {
    mm_soc = soc;
    mm_deps = dependency_sets soc;
    mm_tbl = Hashtbl.create 64;
    mm_mu = Mutex.create ();
    mm_skeleton = Soc.skeleton_hash soc;
    mm_rhash = Schedule.rtl_hashes soc;
  }

let memo_find m key =
  Mutex.lock m.mm_mu;
  let r = Hashtbl.find_opt m.mm_tbl key in
  Mutex.unlock m.mm_mu;
  r

let memo_store m key routes =
  Mutex.lock m.mm_mu;
  if not (Hashtbl.mem m.mm_tbl key) then Hashtbl.add m.mm_tbl key routes;
  Mutex.unlock m.mm_mu

let has_forced_smux = Schedule.has_forced_smux

(* One design-point evaluation through the memo: same pieces as
   [Schedule.build] ([Ccg.build] + [install_smuxes] + per-core routing +
   [assemble]), with each core's justify/observe routes served from the
   memo when their key matches.  Returns the point and the number of
   route computations that missed (the full-build-equivalent work
   actually done — the optimizer's budget charge). *)
let eval_with_memo ?(opt = false) m ~choice ~smuxes () =
  Obs.incr c_evals;
  let soc = m.mm_soc in
  let ccg = Ccg.build soc ~choice in
  let requested_cost = Schedule.install_smuxes soc ccg smuxes in
  let clean = ref true in
  let misses = ref 0 in
  let routes_for ~side ~compute name cone =
    let key =
      ( name,
        side,
        List.map
          (fun d -> (d, Option.value ~default:1 (List.assoc_opt d choice)))
          cone,
        Schedule.relevant_smuxes ~side ~name ~cone smuxes )
    in
    let pkey () =
      Schedule.route_key ~skeleton:m.mm_skeleton ~rhash:m.mm_rhash ~choice
        ~smuxes ~side ~cone name
    in
    match (if !clean then memo_find m key else None) with
    | Some routes ->
        Obs.incr c_memo_hits;
        if opt then Obs.incr c_opt_memo_hits;
        routes
    | None -> (
        (* In-memory miss: the persistent store (when active) sees the
           same key rebased onto content hashes, under the same clean
           discipline. *)
        match
          if !clean && Cache.enabled () then
            Cache.find ~ns:Schedule.route_ns ~key:(pkey ())
          else None
        with
        | Some routes ->
            (* No routing work done — not charged as a miss; seed the
               in-memory memo so the rest of the sweep hits locally. *)
            memo_store m key routes;
            routes
        | None ->
            incr misses;
            let routes = compute ccg name in
            if has_forced_smux routes then clean := false
            else if !clean then begin
              memo_store m key routes;
              if Cache.enabled () then
                Cache.store ~ns:Schedule.route_ns ~key:(pkey ()) routes
            end;
            routes)
  in
  let tests =
    List.map
      (fun ci ->
        let name = ci.Soc.ci_name in
        let _, back, fwd = List.find (fun (n, _, _) -> n = name) m.mm_deps in
        let justify =
          routes_for ~side:`J ~compute:Schedule.justify_routes name back
        in
        let observe =
          routes_for ~side:`O ~compute:Schedule.observe_routes name fwd
        in
        Schedule.core_test_of_routes ci ~justify ~observe)
      soc.Soc.insts
  in
  let s =
    Schedule.assemble soc ~choice ~n_requested:(List.length smuxes)
      ~requested_cost ccg tests
  in
  ( {
      pt_choice = choice;
      pt_smuxes = smuxes;
      pt_schedule = s;
      pt_area = s.Schedule.s_area_overhead;
      pt_time = s.Schedule.s_total_time;
    },
    !misses )

let evaluate_memo m ~choice ?(smuxes = []) () =
  fst (eval_with_memo m ~choice ~smuxes ())

let design_space soc =
  Obs.with_span ~cat:"core" "select.design_space" @@ fun () ->
  (* [ci_atpg] is a [Lazy.t], which is not safe to force concurrently:
     force every core's test set here, on the submitting domain, before
     any worker can race on it. *)
  List.iter (fun ci -> ignore (Soc.atpg_vectors ci)) soc.Soc.insts;
  let axes =
    List.map
      (fun ci ->
        ( ci.Soc.ci_name,
          List.map (fun v -> v.Version.v_index) ci.Soc.ci_versions ))
      soc.Soc.insts
  in
  let rec expand = function
    | [] -> [ [] ]
    | (name, ks) :: rest ->
        let tails = expand rest in
        List.concat_map (fun k -> List.map (fun t -> (name, k) :: t) tails) ks
  in
  let m = memo soc in
  let choices = expand axes in
  (* Two-phase sweep.  Phase 1 evaluates a greedy cover — the choices
     that together touch every distinct route-memo key — so the memo is
     warmed with no two domains racing to compute the same routes;
     phase 2 sweeps the rest, now almost entirely memo hits.  The memo
     invariant (same key → bit-identical routes) makes every point
     identical to the single-phase sweep, and the merge below restores
     enumeration order, so the result is byte-identical at any domain
     count. *)
  let keys_of choice =
    List.concat_map
      (fun (name, back, fwd) ->
        let cone_choice cone =
          List.map
            (fun d -> (d, Option.value ~default:1 (List.assoc_opt d choice)))
            cone
        in
        [ (name, `J, cone_choice back); (name, `O, cone_choice fwd) ])
      m.mm_deps
  in
  let covered = Hashtbl.create 64 in
  let tagged =
    List.map
      (fun choice ->
        let ks = keys_of choice in
        let fresh = List.exists (fun k -> not (Hashtbl.mem covered k)) ks in
        if fresh then List.iter (fun k -> Hashtbl.replace covered k ()) ks;
        (choice, fresh))
      choices
  in
  let eval cs =
    Pool.parallel_map_list ~chunk:1 (fun choice -> evaluate_memo m ~choice ()) cs
  in
  let warm = eval (List.filter_map (fun (c, f) -> if f then Some c else None) tagged) in
  let rest = eval (List.filter_map (fun (c, f) -> if f then None else Some c) tagged) in
  let rec merge tagged warm rest =
    match (tagged, warm, rest) with
    | [], [], [] -> []
    | (_, true) :: tl, w :: ws, _ -> w :: merge tl ws rest
    | (_, false) :: tl, _, r :: rs -> r :: merge tl warm rs
    | _ -> assert false
  in
  merge tagged warm rest

(* Estimated test-time gain of stepping [inst] to its next version:
   usage count of each transparency pair times its latency drop
   (the paper's latency-number difference). *)
let delta_tat soc (point : point) inst_name =
  let ci = Soc.inst soc inst_name in
  let cur_k = Option.value ~default:1 (List.assoc_opt inst_name point.pt_choice) in
  let cur = Soc.version_of ci cur_k in
  let next =
    List.find_opt (fun v -> v.Version.v_index > cur.Version.v_index) ci.Soc.ci_versions
  in
  match next with
  | None -> None
  | Some next ->
      let usage = point.pt_schedule.Schedule.s_usage in
      let gain = ref 0 in
      List.iter
        (fun (p : Version.pair) ->
          let count =
            Option.value ~default:0
              (Hashtbl.find_opt usage (inst_name, p.Version.pr_input, p.Version.pr_output))
          in
          if count > 0 then begin
            let new_lat =
              match
                Version.latency_between next ~input:p.Version.pr_input
                  ~output:p.Version.pr_output
              with
              | Some l -> l
              | None -> p.Version.pr_latency
            in
            gain := !gain + (count * (p.Version.pr_latency - new_lat))
          end)
        cur.Version.v_pairs;
      Some (next, !gain, next.Version.v_overhead - cur.Version.v_overhead)

(* The port where a system-level test mux would help the slowest core
   most: its latest-justified input (or latest-observed output). *)
let critical_smux (point : point) =
  let slowest =
    List.fold_left
      (fun acc t ->
        match acc with
        | Some best when best.Schedule.ct_time >= t.Schedule.ct_time -> acc
        | _ -> Some t)
      None point.pt_schedule.Schedule.s_tests
  in
  match slowest with
  | None -> None
  | Some t ->
      let ccg = point.pt_schedule.Schedule.s_ccg in
      let worst routes =
        List.fold_left
          (fun acc (r : Access.route) ->
            match acc with
            | Some (_, best) when best >= r.Access.r_arrival -> acc
            | _ -> Some (r.Access.r_target, r.Access.r_arrival))
          None routes
      in
      let pick dir routes =
        match worst routes with
        | Some (target, arrival) when arrival > 0 -> (
            match Ccg.node ccg target with
            | Ccg.N_cin (i, p) | Ccg.N_cout (i, p) ->
                Some ({ Schedule.sm_inst = i; sm_port = p; sm_dir = dir }, arrival)
            | _ -> None)
        | _ -> None
      in
      let cand_in = pick `In t.Schedule.ct_justify in
      let cand_out = pick `Out t.Schedule.ct_observe in
      let best =
        match (cand_in, cand_out) with
        | Some (a, la), Some (b, lb) -> Some (if la >= lb then a else b)
        | Some (a, _), None -> Some a
        | None, Some (b, _) -> Some b
        | None, None -> None
      in
      (* Don't re-request an existing mux. *)
      match best with
      | Some m when not (List.mem m point.pt_smuxes) -> Some m
      | _ -> None

let smux_request_cost soc (m : Schedule.smux_request) =
  let w =
    (Socet_rtl.Rtl_core.find_port (Soc.inst soc m.Schedule.sm_inst).Soc.ci_core
       m.Schedule.sm_port)
      .Socet_rtl.Rtl_core.p_width
  in
  Ccg.smux_cost ~width:w

let bump choice inst k =
  (inst, k) :: List.remove_assoc inst choice

(* One optimizer step; [pick] chooses among (inst, next, dTAT, dA)
   candidates and [eval] evaluates the move (memoized or not).  Returns
   the improved point, or None when out of moves. *)
let step soc ~eval point ~pick =
  Obs.incr c_steps;
  let candidates =
    List.filter_map
      (fun ci ->
        match delta_tat soc point ci.Soc.ci_name with
        | Some (next, dtat, da) when dtat > 0 ->
            Some (ci.Soc.ci_name, next.Version.v_index, dtat, da)
        | _ -> None)
      soc.Soc.insts
  in
  let version_move = pick candidates in
  let mux_move () =
    match critical_smux point with
    | None -> None
    | Some m ->
        Some (eval ~choice:point.pt_choice ~smuxes:(m :: point.pt_smuxes))
  in
  match version_move with
  | Some (inst, k, _dtat, da) ->
      (* Paper: when the version step is dearer than a system-level test
         mux, place the mux instead. *)
      let mux_cost =
        match critical_smux point with
        | Some m -> Some (smux_request_cost soc m)
        | None -> None
      in
      if (match mux_cost with Some mc -> da > mc | None -> false) then mux_move ()
      else
        Some (eval ~choice:(bump point.pt_choice inst k) ~smuxes:point.pt_smuxes)
  | None -> mux_move ()

(* ------------------------------------------------------------------ *)
(* Bounded, memoized iterative improvement                             *)
(* ------------------------------------------------------------------ *)

(* Budget currency: one unit ~ one search-node expansion, the same unit
   [core.tsearch.nodes_expanded] counts (cf. [Tsearch.default_steps]).
   Re-routing one core side is one time-expanded Dijkstra over the CCG,
   which expands at most every CCG node once — so a memo miss is charged
   [route_unit] (the CCG node count) and a hit is free.  The charge uses
   this static bound rather than an [Obs] counter because counters are
   no-ops when observability is off, and budgets must bind always. *)
let route_unit soc =
  List.length soc.Soc.soc_pis
  + List.length soc.Soc.soc_pos
  + List.fold_left
      (fun acc ci ->
        acc + List.length (Socet_rtl.Rtl_core.ports ci.Soc.ci_core))
      0 soc.Soc.insts

(* The optimizer's move evaluator: memoized (shared [memo] across the
   whole trajectory) or the plain oracle path, both charging the given
   budget for the routing work actually performed.  Exhaustion is not
   checked here — evaluations run to completion so a half-charged point
   is never corrupt; the loop stops before the *next* step. *)
let optimizer_eval ?budget ~use_memo soc =
  let unit = route_unit soc in
  let charge sides =
    match budget with
    | None -> ()
    | Some b -> ignore (Budget.spend ~cost:(sides * unit) b)
  in
  if use_memo then begin
    let m = memo soc in
    fun ~choice ~smuxes ->
      let p, misses = eval_with_memo ~opt:true m ~choice ~smuxes () in
      charge misses;
      p
  end
  else
    fun ~choice ~smuxes ->
      let p = evaluate soc ~choice ~smuxes () in
      charge (2 * List.length soc.Soc.insts);
      p

let all_v1 soc = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts

(* Cycle detection over visited (choice, smuxes) states.  The move set
   is monotone (versions only step up, the mux set only grows), so a
   revisit means the walk is stuck replaying itself — stop rather than
   loop.  Order-insensitive keys: assoc lists are sorted. *)
let state_key (p : point) =
  (List.sort compare p.pt_choice, List.sort compare p.pt_smuxes)

(* Stop after this many consecutive steps without a new best time: the
   dTAT estimate can stall for a step or two (another core's access path
   is the bottleneck), but a long plateau means the estimate no longer
   tracks reality. *)
let plateau_window = 8

let best_time_point = function
  | [] -> invalid_arg "Select.best_time_point: empty trajectory"
  | p :: rest ->
      List.fold_left
        (fun best q -> if q.pt_time < best.pt_time then q else best)
        p rest

(* Shared driver: [stop point] checks the objective, [accept next]
   filters moves, [pick] scores version candidates.  The budget is
   spent cost-1 per step taken ([opt_steps] <= initial fuel) on top of
   the per-evaluation routing charges; the seed is always evaluated and
   returned, so even a 0-fuel budget degrades to the seed point rather
   than an error — callers detect exhaustion via [Budget.exhausted] and
   map it to the resilient exit-code-4 convention. *)
let optimize ?budget ~use_memo soc ~stop ~accept ~pick =
  let eval = optimizer_eval ?budget ~use_memo soc in
  let start = eval ~choice:(all_v1 soc) ~smuxes:[] in
  let visited = Hashtbl.create 32 in
  Hashtbl.replace visited (state_key start) ();
  let rec loop acc point ~best ~plateau guard =
    if
      stop point || guard = 0
      || plateau >= plateau_window
      || (match budget with Some b -> not (Budget.spend b) | None -> false)
    then List.rev (point :: acc)
    else begin
      Obs.incr c_opt_steps;
      match step soc ~eval point ~pick with
      | Some next
        when accept next && not (Hashtbl.mem visited (state_key next)) ->
          Hashtbl.replace visited (state_key next) ();
          let best, plateau =
            if next.pt_time < best then (next.pt_time, 0) else (best, plateau + 1)
          in
          loop (point :: acc) next ~best ~plateau (guard - 1)
      | _ -> List.rev (point :: acc)
    end
  in
  loop [] start ~best:start.pt_time ~plateau:0 64

let minimize_time ?budget ?(use_memo = true) soc ~max_area =
  Obs.with_span ~cat:"core" "select.minimize_time" @@ fun () ->
  optimize ?budget ~use_memo soc
    ~stop:(fun _ -> false)
    ~accept:(fun next -> next.pt_area <= max_area)
    ~pick:(fun candidates ->
      (* w1 = 1, w2 = 0: highest dTAT. *)
      List.fold_left
        (fun best (i, k, dtat, da) ->
          match best with
          | Some (_, _, bt, _) when bt >= dtat -> best
          | _ -> Some (i, k, dtat, da))
        None candidates)

let minimize_area ?budget ?(use_memo = true) soc ~max_time =
  Obs.with_span ~cat:"core" "select.minimize_area" @@ fun () ->
  optimize ?budget ~use_memo soc
    ~stop:(fun point -> point.pt_time <= max_time)
    ~accept:(fun _ -> true)
    ~pick:(fun candidates ->
      (* w1 = 0, w2 = 1: cheapest step that still helps. *)
      List.fold_left
        (fun best (i, k, dtat, da) ->
          match best with
          | Some (_, _, _, bda) when bda <= da -> best
          | _ -> Some (i, k, dtat, da))
        None candidates)
