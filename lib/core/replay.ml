module Digraph = Socet_graph.Digraph
module Interval_set = Socet_util.Interval_set
module Bitvec = Socet_util.Bitvec
module Obs = Socet_obs.Obs
module Rcg = Socet_rtl.Rcg

let c_checks = Obs.counter ~scope:"core" "replay.checks"

type issue =
  | Wrong_core_time of { inst : string; claimed : int; replayed : int }
  | Wrong_total_time of { claimed : int; replayed : int }
  | Double_booked of {
      inst : string;
      side : [ `Justify | `Observe ];
      resource : Ccg.resource;
      cycle : int;
    }
  | Wrong_latency of {
      inst : string;
      pr_in : int;
      pr_out : int;
      claimed : int;
      ladder : int;
    }
  | Gate_check_failed of { inst : string; pr_in : int; pr_out : int }

let pp_issue = function
  | Wrong_core_time { inst; claimed; replayed } ->
      Printf.sprintf "%s: claimed test time %d, replay gives %d" inst claimed
        replayed
  | Wrong_total_time { claimed; replayed } ->
      Printf.sprintf "total: claimed TAT %d, replay gives %d" claimed replayed
  | Double_booked { inst; side; resource; cycle } ->
      Printf.sprintf "%s (%s): resource %s double-booked at cycle %d" inst
        (match side with `Justify -> "justify" | `Observe -> "observe")
        (match resource with
        | Ccg.R_edge (i, e) -> Printf.sprintf "%s/edge%d" i e
        | Ccg.R_port (i, p) -> Printf.sprintf "%s/port%d" i p)
        cycle
  | Wrong_latency { inst; pr_in; pr_out; claimed; ladder } ->
      Printf.sprintf
        "%s: transparency %d->%d rides latency %d, version ladder says %d"
        inst pr_in pr_out claimed ladder
  | Gate_check_failed { inst; pr_in; pr_out } ->
      Printf.sprintf "%s: gate-level simulation lost bits on pair %d->%d" inst
        pr_in pr_out

let edge_latency (e : Ccg.cedge Digraph.edge) =
  match e.Digraph.label with
  | Ccg.Transp { latency; _ } -> latency
  | Ccg.Wire | Ccg.Smux _ -> 0

let edge_resources (e : Ccg.cedge Digraph.edge) =
  match e.Digraph.label with
  | Ccg.Transp { resources; _ } -> resources
  | Ccg.Wire | Ccg.Smux _ -> []

(* Re-book one side's routes, in route order, into fresh calendars and
   flag any window that was already taken.  Mirrors [Access.reserve]:
   only latency-bearing edges occupy their resources, for
   [departure, departure + latency). *)
let replay_side ~inst ~side routes add_issue =
  let cal : (Ccg.resource, Interval_set.t ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Access.route) ->
      List.iter2
        (fun e dep ->
          let lat = edge_latency e in
          if lat > 0 then
            List.iter
              (fun res ->
                let c =
                  match Hashtbl.find_opt cal res with
                  | Some c -> c
                  | None ->
                      let c = ref Interval_set.empty in
                      Hashtbl.replace cal res c;
                      c
                in
                if Interval_set.overlaps !c ~lo:dep ~hi:(dep + lat) then
                  add_issue (Double_booked { inst; side; resource = res; cycle = dep })
                else c := Interval_set.add !c ~lo:dep ~hi:(dep + lat))
              (edge_resources e))
        r.Access.r_edges r.Access.r_departures)
    routes

let version_for soc choice inst =
  let ci = Soc.inst soc inst in
  let k = Option.value ~default:1 (List.assoc_opt inst choice) in
  (ci, Soc.version_of ci k)

let pair_of (v : Version.t) ~pr_in ~pr_out =
  List.find_opt
    (fun (p : Version.pair) ->
      p.Version.pr_input = pr_in && p.Version.pr_output = pr_out)
    v.Version.v_pairs

(* Gate-level check of one transparency pair: drive the elaborated core
   with a couple of bit patterns and demand every bit lands where the
   path's slice algebra says.  Only propagation-shaped solutions are
   simulable this way (terminals are output nodes; justification
   solutions store their input terminals instead), and paths riding
   synthesized edges ([e_transfer < 0]) have no gate realization to
   simulate — both are skipped, as in the transparency test suite. *)
let gate_check rcg (p : Version.pair) =
  let sol = p.Version.pr_sol in
  let prop_shaped =
    sol.Tsearch.s_terminals <> []
    && List.for_all
         (fun t -> (Rcg.node rcg t).Rcg.n_kind = Rcg.Out)
         sol.Tsearch.s_terminals
  in
  let synthesized =
    List.exists
      (fun (e : Rcg.edge_label Digraph.edge) -> e.Digraph.label.Rcg.e_transfer < 0)
      sol.Tsearch.s_edges
  in
  if (not prop_shaped) || synthesized then None
  else
    let node = Rcg.node rcg p.Version.pr_input in
    let width = node.Rcg.n_width in
    let mask = (1 lsl width) - 1 in
    let ok =
      List.for_all
        (fun bits ->
          Tsim.check_propagation rcg sol ~input:node.Rcg.n_name
            ~value:(Bitvec.of_int ~width bits))
        [ 0x55 land mask; 0xAA land mask; mask ]
    in
    Some ok

let check ?(gate_level = false) (sched : Schedule.t) =
  Obs.incr c_checks;
  let ccg = sched.Schedule.s_ccg in
  let soc = ccg.Ccg.soc in
  let choice = ccg.Ccg.choice in
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let gate_seen = Hashtbl.create 8 in
  List.iter
    (fun (t : Schedule.core_test) ->
      let ci = Soc.inst soc t.Schedule.ct_inst in
      (* Independent TAT arithmetic from the routes up (paper Sec. 5.1:
         period = justification makespan, observation overlaps the next
         vector and only adds a tail). *)
      let makespan routes =
        List.fold_left
          (fun acc (r : Access.route) -> max acc r.Access.r_arrival)
          0 routes
      in
      let period = max 1 (makespan t.Schedule.ct_justify) in
      let tail =
        max 0 (ci.Soc.ci_hscan.Socet_scan.Hscan.depth - 1)
        + makespan t.Schedule.ct_observe
      in
      let vectors = Soc.hscan_vectors ci in
      let replayed = (vectors * period) + tail in
      if
        replayed <> t.Schedule.ct_time
        || period <> t.Schedule.ct_period
        || tail <> t.Schedule.ct_tail
        || vectors <> t.Schedule.ct_vectors
      then
        add
          (Wrong_core_time
             { inst = t.Schedule.ct_inst; claimed = t.Schedule.ct_time; replayed });
      replay_side ~inst:t.Schedule.ct_inst ~side:`Justify t.Schedule.ct_justify
        add;
      replay_side ~inst:t.Schedule.ct_inst ~side:`Observe t.Schedule.ct_observe
        add;
      (* Every transparency edge ridden must carry exactly the latency
         the chosen version's ladder assigns to that pair. *)
      List.iter
        (fun (r : Access.route) ->
          List.iter
            (fun (e : Ccg.cedge Digraph.edge) ->
              match e.Digraph.label with
              | Ccg.Wire | Ccg.Smux _ -> ()
              | Ccg.Transp { inst; pr_in; pr_out; latency; _ } -> (
                  let cci, v = version_for soc choice inst in
                  match pair_of v ~pr_in ~pr_out with
                  | None ->
                      add
                        (Wrong_latency
                           { inst; pr_in; pr_out; claimed = latency; ladder = -1 })
                  | Some p ->
                      if p.Version.pr_latency <> latency then
                        add
                          (Wrong_latency
                             {
                               inst;
                               pr_in;
                               pr_out;
                               claimed = latency;
                               ladder = p.Version.pr_latency;
                             })
                      else if
                        gate_level
                        && not (Hashtbl.mem gate_seen (inst, pr_in, pr_out))
                      then begin
                        Hashtbl.replace gate_seen (inst, pr_in, pr_out) ();
                        match gate_check cci.Soc.ci_rcg p with
                        | Some false ->
                            add (Gate_check_failed { inst; pr_in; pr_out })
                        | Some true | None -> ()
                      end))
            r.Access.r_edges)
        (t.Schedule.ct_justify @ t.Schedule.ct_observe))
    sched.Schedule.s_tests;
  let total =
    List.fold_left
      (fun acc (t : Schedule.core_test) -> acc + t.Schedule.ct_time)
      0 sched.Schedule.s_tests
  in
  if total <> sched.Schedule.s_total_time then
    add (Wrong_total_time { claimed = sched.Schedule.s_total_time; replayed = total });
  List.rev !issues
