(** Test-access path identification (paper Sec. 5.1).

    For the core under test, each input is justified from the chip PIs and
    each output observed at the chip POs through the transparency edges of
    the surrounding cores.  The router is a time-expanded Dijkstra: every
    transparency edge occupies its core-internal resources (RCG edges and
    the entry port) for [latency] cycles, recorded in reservation
    calendars; a busy edge is not rejected, the data waits — exactly the
    paper's "the cost is automatically modified so that the edge is not
    reused in the reserved cycles". *)

module Digraph = Socet_graph.Digraph

type bookings
(** Mutable reservation calendars, keyed by {!Ccg.resource}. *)

val fresh_bookings : unit -> bookings

type route = {
  r_target : int;                      (** CCG node routed to/from *)
  r_edges : Ccg.cedge Digraph.edge list;
  r_departures : int list;
  r_arrival : int;
  r_added_smux : (int * int * int) option;
      (** (src, dst, width) when a system-level test mux had to be added *)
}

val justify_input :
  ?allow_smux:bool -> Ccg.t -> bookings -> input:int -> route option
(** Shortest (earliest-arrival) path from any chip PI to the given core
    input node, respecting and then updating the reservation calendars.
    Falls back to inserting a system-level test mux from a fresh PI edge
    when the input is unreachable.  [None] only when the CCG has no PIs. *)

val observe_output :
  ?allow_smux:bool -> Ccg.t -> bookings -> output:int -> route option
(** Same, from a core output node to any chip PO. *)

val record_committed_fallbacks : route list -> unit
(** Bump [access.smux_fallbacks] once per route that carries a forced
    system-level test mux ([r_added_smux]).  Called by
    [Schedule.assemble] on the routes that actually enter a schedule:
    counting at mux-insertion time instead would double-count fallbacks
    whose route the caller then discards (probes, rejected optimizer
    moves). *)

val edge_usage : route list -> (string * int * int, int) Hashtbl.t
(** Counts, per (instance, RCG input node, RCG output node), how many
    routed paths use each transparency edge — the raw material for the
    iterative improvement's latency numbers (Sec. 5.2). *)
