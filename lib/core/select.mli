(** Design-space exploration and iterative-improvement version selection
    (paper Sec. 5.2, Fig. 10, Table 1).

    A design point is a choice of one version per core plus any
    system-level test muxes.  The optimizer replaces one core at a time by
    its next version, scoring each candidate with
    [C = w1 * dTAT + w2 * dA], where [dTAT] is estimated from the current
    test solution's transparency-edge usage counts times the latency drop
    (the paper's "latency number"), and [dA] is the version's area step.
    When a version step costs more than a system-level test mux, a mux on
    the most critical port of the slowest core is placed instead.  In the
    worst case the solution degenerates into a test-bus-like system. *)

type point = {
  pt_choice : (string * int) list;
  pt_smuxes : Schedule.smux_request list;
  pt_schedule : Schedule.t;
  pt_area : int;  (** chip-level area overhead (cells) *)
  pt_time : int;  (** global test application time (cycles) *)
}

val evaluate :
  Soc.t -> choice:(string * int) list -> ?smuxes:Schedule.smux_request list -> unit -> point

val delta_tat : Soc.t -> point -> string -> (Version.t * int * int) option
(** [(next_version, dTAT, dA)] for stepping the named core up one rung —
    [None] when it is already at the top.  Exposed for the ablation
    benches. *)

val design_space : Soc.t -> point list
(** Every combination of available core versions (no extra muxes), in
    lexicographic order — the raw material of Fig. 10.

    Evaluation fans out across the {!Socet_util.Pool} domains and
    memoizes per-core tests on (core, versions of the cores its routes
    can reach), so a core's routing is reused across the many points
    that only differ elsewhere ([core.select.memo_hits] counts reuse).
    Results are independent of the domain count and identical to
    evaluating each choice with {!evaluate}. *)

val minimize_time : ?budget:Socet_util.Budget.t -> Soc.t -> max_area:int -> point list
(** Objective (i): within the area budget, drive test time down.  Returns
    the improvement trajectory; the last point is the result.  [budget]
    charges one unit per optimizer step (each step is a full schedule
    build); exhaustion returns the trajectory found so far. *)

val minimize_area : ?budget:Socet_util.Budget.t -> Soc.t -> max_time:int -> point list
(** Objective (ii): cheapest point whose test time meets the bound.
    Returns the trajectory; the last point either meets the bound or no
    further move existed (or the [budget] ran out). *)
