(** Design-space exploration and iterative-improvement version selection
    (paper Sec. 5.2, Fig. 10, Table 1).

    A design point is a choice of one version per core plus any
    system-level test muxes.  The optimizer replaces one core at a time by
    its next version, scoring each candidate with
    [C = w1 * dTAT + w2 * dA], where [dTAT] is estimated from the current
    test solution's transparency-edge usage counts times the latency drop
    (the paper's "latency number"), and [dA] is the version's area step.
    When a version step costs more than a system-level test mux, a mux on
    the most critical port of the slowest core is placed instead.  In the
    worst case the solution degenerates into a test-bus-like system. *)

type point = {
  pt_choice : (string * int) list;
  pt_smuxes : Schedule.smux_request list;
  pt_schedule : Schedule.t;
  pt_area : int;  (** chip-level area overhead (cells) *)
  pt_time : int;  (** global test application time (cycles) *)
}

val evaluate :
  Soc.t -> choice:(string * int) list -> ?smuxes:Schedule.smux_request list -> unit -> point
(** One full [Schedule.build] — the memo-free oracle every memoized path
    is tested against. *)

(** {2 Route memo}

    A core's justify (observe) routes depend only on (a) the versions of
    the cores in its backward (forward) dependency cone and (b) the
    requested system-level test muxes whose endpoint touches that cone —
    an [`In] mux only adds a PI->input edge (it can shorten a justify
    route only into its own core's cone), an [`Out] mux only an
    output->PO edge.  The memo keys on exactly that, so a cached route
    is reused only when no new mux could have shortened it; together
    with [Search.dijkstra_timed]'s deterministic tie-breaking, memoized
    evaluations are bit-identical to {!evaluate} (DESIGN.md §10 gives
    the argument; the test_select golden suite enforces it). *)

type memo
(** A shared route-memo over one SOC.  Thread-safe: [design_space] fans
    evaluations over the domain pool against one memo. *)

val memo : Soc.t -> memo

val evaluate_memo :
  memo -> choice:(string * int) list -> ?smuxes:Schedule.smux_request list -> unit -> point
(** Like {!evaluate} against the shared memo: per-core routes whose key
    matches a previous evaluation are reused ([core.select.memo_hits])
    instead of re-routed.  Bit-identical to {!evaluate}. *)

val delta_tat : Soc.t -> point -> string -> (Version.t * int * int) option
(** [(next_version, dTAT, dA)] for stepping the named core up one rung —
    [None] when it is already at the top.  Exposed for the ablation
    benches. *)

val design_space : Soc.t -> point list
(** Every combination of available core versions (no extra muxes), in
    lexicographic order — the raw material of Fig. 10.

    Evaluation fans out across the {!Socet_util.Pool} domains through a
    shared {!memo}, so a core's routing is reused across the many points
    that only differ elsewhere ([core.select.memo_hits] counts reuse).
    Results are independent of the domain count and identical to
    evaluating each choice with {!evaluate}. *)

val best_time_point : point list -> point
(** Earliest minimum-TAT point of a trajectory (the best-so-far result
    even when the search was cut short).
    @raise Invalid_argument on an empty list. *)

val minimize_time :
  ?budget:Socet_util.Budget.t -> ?use_memo:bool -> Soc.t -> max_area:int -> point list
(** Objective (i): within the area budget, drive test time down.  Returns
    the improvement trajectory; the last point is the result (and
    {!best_time_point} the best seen).

    The loop is bounded three ways: [budget], denominated in search-node
    units comparable to [core.tsearch.nodes_expanded] (each step costs 1
    plus the CCG node count per re-routed core side; memo hits are
    free); cycle detection over visited (choice, smuxes) states; and a
    plateau window (8 consecutive steps without a new best time).
    Exhaustion degrades to the trajectory found so far — always at least
    the seed point, even under a 0-step budget — and is observable via
    [Budget.exhausted] (the CLI maps it to exit code 4).
    [core.select.opt_steps] counts steps taken and never exceeds the
    budget's fuel.

    [use_memo] (default true) routes evaluations through a trajectory-
    wide {!memo} ([core.select.opt_memo_hits]); [false] is the oracle
    path, one full [Schedule.build] per move — same points, more work. *)

val minimize_area :
  ?budget:Socet_util.Budget.t -> ?use_memo:bool -> Soc.t -> max_time:int -> point list
(** Objective (ii): cheapest point whose test time meets the bound.
    Returns the trajectory; the last point either meets the bound or no
    further move existed (or a bound above tripped).  Same bounding and
    memoization as {!minimize_time}. *)
