module Digraph = Socet_graph.Digraph
module Search = Socet_graph.Search
module Interval_set = Socet_util.Interval_set
module Obs = Socet_obs.Obs
module Chaos = Socet_util.Chaos

(* Observability: a reservation conflict is one "a resource was busy,
   retry later" round in the calendar settling loop — the congestion
   signal for the chip-level access router. *)
let c_conflicts = Obs.counter ~scope:"core" "access.reservation_conflicts"
let c_routes = Obs.counter ~scope:"core" "access.routes_committed"
let c_smux_fallbacks = Obs.counter ~scope:"core" "access.smux_fallbacks"

type bookings = (Ccg.resource, Interval_set.t ref) Hashtbl.t

let fresh_bookings () : bookings = Hashtbl.create 32

type route = {
  r_target : int;
  r_edges : Ccg.cedge Digraph.edge list;
  r_departures : int list;
  r_arrival : int;
  r_added_smux : (int * int * int) option;
}

let calendar bookings r =
  match Hashtbl.find_opt bookings r with
  | Some c -> c
  | None ->
      let c = ref Interval_set.empty in
      Hashtbl.replace bookings r c;
      c

let latency_of = function
  | Ccg.Wire | Ccg.Smux _ -> 0
  | Ccg.Transp { latency; _ } -> latency

let resources_of = function
  | Ccg.Wire | Ccg.Smux _ -> []
  | Ccg.Transp { resources; _ } -> resources

(* Earliest departure >= t at which all of the edge's resources are free
   for [latency] cycles. *)
let earliest_departure bookings (e : Ccg.cedge Digraph.edge) t =
  let lat = latency_of e.label in
  match resources_of e.label with
  | [] -> t
  | rs ->
      let rec settle t =
        let t' =
          List.fold_left
            (fun acc r ->
              max acc (Interval_set.first_fit !(calendar bookings r) ~earliest:acc ~len:lat))
            t rs
        in
        if t' = t then t
        else begin
          Obs.incr c_conflicts;
          settle t'
        end
      in
      settle t

let reserve bookings (e : Ccg.cedge Digraph.edge) ~departure =
  let lat = latency_of e.label in
  if lat > 0 then
    List.iter
      (fun r ->
        let c = calendar bookings r in
        c := Interval_set.add !c ~lo:departure ~hi:(departure + lat))
      (resources_of e.label)

let pis_of ccg =
  let acc = ref [] in
  Array.iteri
    (fun i n -> match n with Ccg.N_pi _ -> acc := i :: !acc | _ -> ())
    ccg.Ccg.nodes;
  List.rev !acc

let pos_of ccg =
  let acc = ref [] in
  Array.iteri
    (fun i n -> match n with Ccg.N_po _ -> acc := i :: !acc | _ -> ())
    ccg.Ccg.nodes;
  List.rev !acc

let route_between ccg bookings ~sources ~is_goal =
  Search.dijkstra_timed ccg.Ccg.graph
    ~sources:(List.map (fun s -> (s, 0)) sources)
    ~is_goal
    ~latency:(fun e -> latency_of e.Digraph.label)
    ~earliest_departure:(fun e t -> earliest_departure bookings e t)

let commit bookings (tp : Ccg.cedge Search.timed_path) target =
  Obs.incr c_routes;
  List.iter2 (fun e dep -> reserve bookings e ~departure:dep) tp.Search.path_edges
    tp.Search.departures;
  {
    r_target = target;
    r_edges = tp.Search.path_edges;
    r_departures = tp.Search.departures;
    r_arrival = tp.Search.arrival;
    r_added_smux = None;
  }

let port_width ccg node_id =
  match ccg.Ccg.nodes.(node_id) with
  | Ccg.N_cin (i, p) | Ccg.N_cout (i, p) ->
      (Socet_rtl.Rtl_core.find_port (Soc.inst ccg.Ccg.soc i).Soc.ci_core p)
        .Socet_rtl.Rtl_core.p_width
  | Ccg.N_pi n -> List.assoc n ccg.Ccg.soc.Soc.soc_pis
  | Ccg.N_po n -> List.assoc n ccg.Ccg.soc.Soc.soc_pos

let justify_input ?(allow_smux = true) ccg bookings ~input =
  Obs.with_span ~cat:"core" "access.justify" @@ fun () ->
  let sources = pis_of ccg in
  (* Chaos site: a tripped justification is a hard routing failure (no
     smux fallback either), which leaves the core's schedule incomplete —
     exactly the condition Resilient's FSCAN-BSCAN rung must absorb. *)
  if Chaos.trip "core.access.justify" then None
  else if sources = [] then None
  else
    match route_between ccg bookings ~sources ~is_goal:(fun v -> v = input) with
    | Some tp -> Some (commit bookings tp input)
    | None when not allow_smux -> None
    | None ->
        (* No existing access: bolt a system-level test mux onto the first
           PI (paper: "we add a system-level test multiplexer to connect
           the input of the core directly to a PI").  Not counted here:
           the caller may still discard this route (a rejected optimizer
           move, a probe), so [access.smux_fallbacks] is incremented only
           for routes that make it into an assembled schedule — see
           [record_committed_fallbacks]. *)
        let pi = List.hd sources in
        let width = port_width ccg input in
        let e = Ccg.add_smux ccg ~src:pi ~dst:input ~width in
        Some
          {
            r_target = input;
            r_edges = [ e ];
            r_departures = [ 0 ];
            r_arrival = 0;
            r_added_smux = Some (pi, input, width);
          }

let observe_output ?(allow_smux = true) ccg bookings ~output =
  Obs.with_span ~cat:"core" "access.observe" @@ fun () ->
  let goals = pos_of ccg in
  if Chaos.trip "core.access.observe" then None
  else if goals = [] then None
  else
    match
      route_between ccg bookings ~sources:[ output ]
        ~is_goal:(fun v -> List.mem v goals)
    with
    | Some tp -> Some (commit bookings tp output)
    | None when not allow_smux -> None
    | None ->
        let po = List.hd goals in
        let width = port_width ccg output in
        let e = Ccg.add_smux ccg ~src:output ~dst:po ~width in
        Some
          {
            r_target = output;
            r_edges = [ e ];
            r_departures = [ 0 ];
            r_arrival = 0;
            r_added_smux = Some (output, po, width);
          }

let record_committed_fallbacks routes =
  List.iter
    (fun r -> if r.r_added_smux <> None then Obs.incr c_smux_fallbacks)
    routes

let edge_usage routes =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun r ->
      List.iter
        (fun (e : Ccg.cedge Digraph.edge) ->
          match e.label with
          | Ccg.Transp { inst; pr_in; pr_out; _ } ->
              let k = (inst, pr_in, pr_out) in
              Hashtbl.replace tbl k
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
          | Ccg.Wire | Ccg.Smux _ -> ())
        r.r_edges)
    routes;
  tbl
