open Socet_rtl
open Rtl_types
module Digraph = Socet_graph.Digraph
module Obs = Socet_obs.Obs

let c_ladders = Obs.counter ~scope:"core" "version.ladders_generated"

let freeze_cost = 3
let activation_cost ~ctrl = (2 * ctrl) + 1
let tmux_cost ~width = 5 * width

type pair = {
  pr_input : int;
  pr_output : int;
  pr_latency : int;
  pr_sol : Tsearch.sol;
}

type t = {
  v_index : int;
  v_prop : (int * Tsearch.sol) list;
  v_just : (int * Tsearch.sol) list;
  v_overhead : int;
  v_added_muxes : (int * int * int) list;
  v_pairs : pair list;
}

(* ------------------------------------------------------------------ *)
(* Cost model.  A version's overhead is the price of all transparency
   hardware its (and its predecessors') solutions rely on: hold logic for
   every frozen register, steering logic for every non-HSCAN edge used,
   and the full multiplexer for every synthesized edge.  Computing it from
   the solution sets keeps the accounting correct under solution merging —
   hardware is priced once however many paths share it. *)
(* ------------------------------------------------------------------ *)

let edge_cost (e : Rcg.edge_label Digraph.edge) =
  if e.label.Rcg.e_hscan then 0
  else if e.label.Rcg.e_transfer < 0 then
    tmux_cost ~width:(range_width e.label.Rcg.e_dst_range)
  else
    match e.label.Rcg.e_via with
    | `Mux ctrl -> activation_cost ~ctrl
    | `Direct -> 1

let cost_of_sols sols =
  let freezes = Hashtbl.create 8 and edges = Hashtbl.create 8 in
  let total = ref 0 in
  List.iter
    (fun (s : Tsearch.sol) ->
      List.iter
        (fun (node, _) ->
          if not (Hashtbl.mem freezes node) then begin
            Hashtbl.replace freezes node ();
            total := !total + freeze_cost
          end)
        s.Tsearch.s_freezes;
      List.iter
        (fun (e : Rcg.edge_label Digraph.edge) ->
          if not (Hashtbl.mem edges e.id) then begin
            Hashtbl.replace edges e.id ();
            total := !total + edge_cost e
          end)
        s.Tsearch.s_edges)
    sols;
  !total

(* ------------------------------------------------------------------ *)
(* Search orchestration                                                 *)
(* ------------------------------------------------------------------ *)

let hscan_only (e : Rcg.edge_label Digraph.edge) = e.label.Rcg.e_hscan
let any_edge (_ : Rcg.edge_label Digraph.edge) = true

(* Version 1 tries the HSCAN chains alone, then falls back to a search
   that may use other edges but still prefers chain edges; later versions
   search freely. *)
let solve_with_mode ~mode ~solve =
  match mode with
  | `Hscan_first -> (
      match solve ~prefer_hscan:false ~allowed:hscan_only with
      | Some s -> Some s
      | None -> solve ~prefer_hscan:true ~allowed:any_edge)
  | `Free -> solve ~prefer_hscan:false ~allowed:any_edge

let insert_mux rcg ~src ~output =
  let sw = (Rcg.node rcg src).Rcg.n_width in
  let ow = (Rcg.node rcg output).Rcg.n_width in
  let w = min sw ow in
  let e =
    Digraph.add_edge (Rcg.graph rcg) ~src ~dst:output
      {
        Rcg.e_src_range = full w;
        e_dst_range = full w;
        e_via = `Mux 0;
        e_transfer = -1;
        e_hscan = false;
        e_enabled = true;
      }
  in
  (e, (src, output, w))

(* Rescue hardware (Sec. 4's last resort): a transparency mux into
   [output], fed from a register one cycle away from [input] (the paper's
   choice) or, failing that, straight from the input.  Candidates are
   tried in turn; an unhelpful mux is disabled again, so failed attempts
   leave no phantom hardware behind (disabled edges never enter a
   solution and therefore cost nothing). *)
let rescue rcg ~input ~output ~solve =
  let candidates = Tsearch.reach_in_one_cycle rcg ~input @ [ input ] in
  let rec attempt = function
    | [] -> None
    | src :: rest -> (
        let e, mux = insert_mux rcg ~src ~output in
        match solve () with
        | Some s -> Some (s, mux)
        | None ->
            e.Digraph.label.Rcg.e_enabled <- false;
            attempt rest)
  in
  attempt candidates

let pairs_of rcg ~prop ~just =
  let tbl = Hashtbl.create 16 in
  let consider input output latency sol =
    match Hashtbl.find_opt tbl (input, output) with
    | Some p when p.pr_latency <= latency -> ()
    | _ ->
        Hashtbl.replace tbl (input, output)
          { pr_input = input; pr_output = output; pr_latency = latency; pr_sol = sol }
  in
  List.iter
    (fun (i, (sol : Tsearch.sol)) ->
      match sol.Tsearch.s_terminals with
      | [ o ] -> consider i o sol.Tsearch.s_latency sol
      | _ -> ())
    prop;
  List.iter
    (fun (o, (sol : Tsearch.sol)) ->
      match sol.Tsearch.s_terminals with
      | [ i ] -> consider i o sol.Tsearch.s_latency sol
      | _ -> ())
    just;
  ignore rcg;
  Hashtbl.fold (fun _ p acc -> p :: acc) tbl []
  |> List.sort (fun a b ->
         compare (a.pr_input, a.pr_output) (b.pr_input, b.pr_output))

let solve_all rcg ~mode =
  let inputs = Rcg.input_ids rcg in
  let outputs = Rcg.output_ids rcg in
  let used_outputs = ref [] in
  let prop =
    List.filter_map
      (fun i ->
        let solve ~prefer_hscan ~allowed =
          Tsearch.propagate rcg ~prefer_hscan ~allowed ~input:i ()
        in
        let result =
          match solve_with_mode ~mode ~solve with
          | Some s -> Some s
          | None -> (
              (* Rescue toward an output not yet used for transparency,
                 as the paper prefers. *)
              let target =
                match
                  List.find_opt (fun o -> not (List.mem o !used_outputs)) outputs
                with
                | Some o -> Some o
                | None -> ( match outputs with o :: _ -> Some o | [] -> None)
              in
              match target with
              | None -> None
              | Some o ->
                  rescue rcg ~input:i ~output:o ~solve:(fun () ->
                      solve ~prefer_hscan:true ~allowed:any_edge)
                  |> Option.map fst)
        in
        match result with
        | Some s ->
            used_outputs := s.Tsearch.s_terminals @ !used_outputs;
            Some (i, s)
        | None -> None)
      inputs
  in
  let just =
    List.filter_map
      (fun o ->
        let solve ~prefer_hscan ~allowed =
          Tsearch.justify rcg ~prefer_hscan ~allowed ~output:o ()
        in
        match solve_with_mode ~mode ~solve with
        | Some s -> Some (o, s)
        | None -> (
            match inputs with
            | [] -> None
            | i :: _ ->
                rescue rcg ~input:i ~output:o ~solve:(fun () ->
                    solve ~prefer_hscan:true ~allowed:any_edge)
                |> Option.map (fun (s, _) -> (o, s))))
      outputs
  in
  (prop, just)

(* Per-item merge: keep the lower-latency solution, preferring the
   incumbent on ties (its hardware is already paid for). *)
let merge_items current candidate =
  List.map
    (fun (k, (cur : Tsearch.sol)) ->
      match List.assoc_opt k candidate with
      | Some (cand : Tsearch.sol) when cand.Tsearch.s_latency < cur.Tsearch.s_latency ->
          (k, cand)
      | _ -> (k, cur))
    current
  @ List.filter (fun (k, _) -> not (List.mem_assoc k current)) candidate

let merge_sols (cur_prop, cur_just) (cand_prop, cand_just) =
  (merge_items cur_prop cand_prop, merge_items cur_just cand_just)

let latencies_signature (prop, just) =
  ( List.map (fun (i, (s : Tsearch.sol)) -> (i, s.Tsearch.s_latency)) prop
    |> List.sort compare,
    List.map (fun (o, (s : Tsearch.sol)) -> (o, s.Tsearch.s_latency)) just
    |> List.sort compare )

let generate ?(max_versions = 3) rcg =
  Obs.with_span ~cat:"core" "version.generate" @@ fun () ->
  Obs.incr c_ladders;
  let accumulated = ref [] in
  (* hardware of adopted rungs *)
  let muxes_so_far = ref [] in
  let overhead_with (prop, just) =
    cost_of_sols (!accumulated @ List.map snd prop @ List.map snd just)
  in
  let mk index sols =
    let prop, just = sols in
    {
      v_index = index;
      v_prop = prop;
      v_just = just;
      v_overhead = overhead_with sols;
      v_added_muxes = List.rev !muxes_so_far;
      v_pairs = pairs_of rcg ~prop ~just;
    }
  in
  let adopt sols =
    let prop, just = sols in
    accumulated := !accumulated @ List.map snd prop @ List.map snd just
  in
  (* Version 1: HSCAN chains first. *)
  let v1_sols = solve_all rcg ~mode:`Hscan_first in
  adopt v1_sols;
  let versions = ref [ mk 1 v1_sols ] in
  let current = ref v1_sols in
  let index = ref 1 in
  (* Next rung: let the search steer every existing (non-HSCAN) path;
     keep, per input/output, whichever solution is faster. *)
  let v2_sols = merge_sols !current (solve_all rcg ~mode:`Free) in
  if latencies_signature v2_sols <> latencies_signature !current then begin
    let prior = (List.hd !versions).v_overhead in
    if overhead_with v2_sols = prior then begin
      (* Free improvement (reuses hardware already paid for): fold into
         the current rung rather than minting a new version. *)
      adopt v2_sols;
      current := v2_sols;
      versions := mk !index v2_sols :: List.tl !versions
    end
    else begin
      adopt v2_sols;
      incr index;
      current := v2_sols;
      versions := mk !index v2_sols :: !versions
    end
  end;
  (* Further rungs: one transparency multiplexer at a time, aimed at the
     slowest (then widest) output still above one cycle. *)
  let continue_ladder = ref true in
  while !continue_ladder && !index < max_versions do
    let _, just = !current in
    let candidates =
      List.filter (fun (_, (s : Tsearch.sol)) -> s.Tsearch.s_latency > 1) just
      |> List.sort (fun (oa, (sa : Tsearch.sol)) (ob, (sb : Tsearch.sol)) ->
             compare
               (sb.Tsearch.s_latency, (Rcg.node rcg ob).Rcg.n_width)
               (sa.Tsearch.s_latency, (Rcg.node rcg oa).Rcg.n_width))
    in
    match candidates with
    | [] -> continue_ladder := false
    | (o, (sol : Tsearch.sol)) :: _ -> (
        let input =
          match sol.Tsearch.s_terminals with
          | i :: _ -> Some i
          | [] -> ( match Rcg.input_ids rcg with i :: _ -> Some i | [] -> None)
        in
        match input with
        | None -> continue_ladder := false
        | Some i ->
            let src =
              match Tsearch.reach_in_one_cycle rcg ~input:i with
              | r :: _ -> r
              | [] -> i
            in
            let e, m = insert_mux rcg ~src ~output:o in
            let sols = merge_sols !current (solve_all rcg ~mode:`Free) in
            if latencies_signature sols = latencies_signature !current then begin
              e.Digraph.label.Rcg.e_enabled <- false;
              continue_ladder := false
            end
            else begin
              muxes_so_far := m :: !muxes_so_far;
              adopt sols;
              incr index;
              current := sols;
              versions := mk !index sols :: !versions
            end)
  done;
  List.rev !versions

let latency_between v ~input ~output =
  List.find_opt (fun p -> p.pr_input = input && p.pr_output = output) v.v_pairs
  |> Option.map (fun p -> p.pr_latency)

let total_latency v =
  List.fold_left (fun acc (_, (s : Tsearch.sol)) -> acc + s.Tsearch.s_latency) 0 v.v_just
