(** Graph traversals used by the transparency engine and the chip-level
    test-access router. *)

val bfs_order : 'e Digraph.t -> start:int -> follow:('e Digraph.edge -> bool) -> int list
(** Nodes in breadth-first order from [start], following only edges for
    which [follow] holds.  [start] is included. *)

val bfs_path :
  'e Digraph.t ->
  start:int ->
  is_goal:(int -> bool) ->
  follow:('e Digraph.edge -> bool) ->
  'e Digraph.edge list option
(** Shortest (fewest-edge) path from [start] to any goal node; [None] when
    unreachable.  Returned edges are in path order. *)

val reachable : 'e Digraph.t -> start:int -> follow:('e Digraph.edge -> bool) -> bool array
(** [reachable g ~start ~follow].(v) iff [v] is reachable from [start]. *)

val topological : 'e Digraph.t -> int list option
(** Kahn's algorithm; [None] when the graph has a cycle. *)

val scc : 'e Digraph.t -> int list list
(** Strongly connected components (Tarjan), in reverse topological order of
    the condensation. *)

type 'e timed_path = {
  path_edges : 'e Digraph.edge list;
  departures : int list;  (** departure cycle of each edge, in path order *)
  arrival : int;          (** cycle at which data reaches the destination *)
}

val dijkstra_timed :
  'e Digraph.t ->
  sources:(int * int) list ->
  is_goal:(int -> bool) ->
  latency:('e Digraph.edge -> int) ->
  earliest_departure:('e Digraph.edge -> int -> int) ->
  'e timed_path option
(** Time-dependent shortest path (paper, Sec. 5.1).  [sources] pairs each
    start node with the cycle at which data is available there.  Traversing
    edge [e] from a node reached at cycle [t] departs at
    [earliest_departure e t] (which must be [>= t]; this is where edge
    reservation calendars plug in) and arrives [latency e] cycles later.
    Returns a minimum-arrival-time path to any goal node.

    Deterministic tie-breaking: nodes with equal arrival times are
    expanded in increasing node-id order, so among equal-cost paths the
    same one is always returned — independent of edge insertion order and
    of any edges the returned path cannot reach (the contract
    [Socet_core.Select]'s route memo depends on). *)
