let bfs_order g ~start ~follow =
  let n = Digraph.node_count g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter
      (fun (e : _ Digraph.edge) ->
        if follow e && not seen.(e.dst) then begin
          seen.(e.dst) <- true;
          Queue.add e.dst queue
        end)
      (Digraph.succ g v)
  done;
  List.rev !order

let bfs_path g ~start ~is_goal ~follow =
  let n = Digraph.node_count g in
  let via : _ Digraph.edge option array = Array.make n None in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  let goal = ref None in
  if is_goal start then goal := Some start;
  while !goal = None && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun (e : _ Digraph.edge) ->
        if !goal = None && follow e && not seen.(e.dst) then begin
          seen.(e.dst) <- true;
          via.(e.dst) <- Some e;
          if is_goal e.dst then goal := Some e.dst else Queue.add e.dst queue
        end)
      (Digraph.succ g v)
  done;
  match !goal with
  | None -> None
  | Some v ->
      let rec unwind v acc =
        match via.(v) with
        | None -> acc
        | Some e -> unwind e.src (e :: acc)
      in
      Some (unwind v [])

let reachable g ~start ~follow =
  let n = Digraph.node_count g in
  let seen = Array.make n false in
  List.iter (fun v -> seen.(v) <- true) (bfs_order g ~start ~follow);
  seen

let topological g =
  let n = Digraph.node_count g in
  let indeg = Array.make n 0 in
  List.iter (fun (e : _ Digraph.edge) -> indeg.(e.dst) <- indeg.(e.dst) + 1) (Digraph.edges g);
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    order := v :: !order;
    List.iter
      (fun (e : _ Digraph.edge) ->
        indeg.(e.dst) <- indeg.(e.dst) - 1;
        if indeg.(e.dst) = 0 then Queue.add e.dst queue)
      (Digraph.succ g v)
  done;
  if !count = n then Some (List.rev !order) else None

let scc g =
  let n = Digraph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  (* Iterative Tarjan to avoid stack overflow on deep graphs. *)
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (e : _ Digraph.edge) ->
        let w = e.dst in
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (Digraph.succ g v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.rev !components

type 'e timed_path = {
  path_edges : 'e Digraph.edge list;
  departures : int list;
  arrival : int;
}

module Pq = struct
  (* Minimal pairing of (key, value) with a leftist-ish skew heap.
     Ordered lexicographically on (key, value): among equal keys the
     smallest value pops first, so the pop order — and with it the
     tie-breaking of equal-cost paths in [dijkstra_timed] — depends only
     on the set of entries, never on push order or on unrelated entries
     sharing the heap.  The route memo in [Socet_core.Select] relies on
     this to reuse cached routes across graphs that differ only in edges
     the route cannot reach. *)
  type 'a t = Leaf | Node of int * 'a * 'a t * 'a t

  let empty = Leaf

  let rec merge a b =
    match (a, b) with
    | Leaf, t | t, Leaf -> t
    | Node (ka, va, la, ra), (Node (kb, vb, _, _) as nb)
      when ka < kb || (ka = kb && compare va vb <= 0) ->
        Node (ka, va, merge ra nb, la)
    | na, Node (kb, vb, lb, rb) -> Node (kb, vb, merge rb na, lb)

  let push t k v = merge t (Node (k, v, Leaf, Leaf))

  let pop = function
    | Leaf -> None
    | Node (k, v, l, r) -> Some (k, v, merge l r)
end

let dijkstra_timed g ~sources ~is_goal ~latency ~earliest_departure =
  let n = Digraph.node_count g in
  let best = Array.make n max_int in
  let via : ('e Digraph.edge * int) option array = Array.make n None in
  let pq = ref Pq.empty in
  List.iter
    (fun (v, t0) ->
      if t0 < best.(v) then begin
        best.(v) <- t0;
        pq := Pq.push !pq t0 v
      end)
    sources;
  let goal = ref None in
  let continue = ref true in
  while !continue do
    match Pq.pop !pq with
    | None -> continue := false
    | Some (t, v, rest) ->
        pq := rest;
        if t = best.(v) then
          if is_goal v then begin
            goal := Some v;
            continue := false
          end
          else
            List.iter
              (fun (e : _ Digraph.edge) ->
                let dep = earliest_departure e t in
                if dep < t then invalid_arg "dijkstra_timed: departure before arrival";
                let arr = dep + latency e in
                if arr < best.(e.dst) then begin
                  best.(e.dst) <- arr;
                  via.(e.dst) <- Some (e, dep);
                  pq := Pq.push !pq arr e.dst
                end)
              (Digraph.succ g v)
  done;
  match !goal with
  | None -> None
  | Some v ->
      let rec unwind v acc =
        match via.(v) with
        | None -> acc
        | Some (e, dep) -> unwind e.src ((e, dep) :: acc)
      in
      let steps = unwind v [] in
      Some
        {
          path_edges = List.map fst steps;
          departures = List.map snd steps;
          arrival = best.(v);
        }
