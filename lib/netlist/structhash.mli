(** Canonical structural hash of a netlist — the content address the
    persistent result cache ({!Socet_cache}) keys ATPG artifacts by.

    The hash is computed over the {!Flat} CSR form as a Merkle labelling:
    primary inputs, flip-flops and constants get positional seeds, every
    combinational gate hashes its kind with its fanin labels in pin
    order, and the final digest combines the PO anchors (in PO order),
    the flip-flop next-state anchors (in flip-flop order) and the sorted
    multiset of all gate labels.

    Invariances (enforced by test/test_cache.ml qcheck properties):
    - gate and net {e names} never enter the hash — renaming anything is
      hash-neutral;
    - the {e declaration order} of internal combinational gates is
      hash-neutral (labels depend only on each gate's function cone);
    - any functional edit — a kind change, a swapped fanin pin on an
      asymmetric gate, a repointed PO — changes the hash.

    The PI / PO / flip-flop {e interface order} is deliberately part of
    the hash: cached test vectors are positional ({!Socet_atpg.Fsim}
    layout), so netlists with permuted interfaces are different content
    even when logically equivalent. *)

val netlist : Netlist.t -> string
(** Hex MD5 content address (stable across processes and runs).  Cost:
    one {!Flat.of_netlist} compile (cached on the netlist) plus a linear
    digest walk.  @raise Socet_util.Error.Socet_error on a combinational
    cycle or dangling fanin, as {!Flat.of_netlist} does. *)
