(** Up-front netlist validation with structured errors.

    The construction API ({!Netlist.add_gate} etc.) already rejects most
    malformed inputs at build time, but three classes of corruption can
    still reach the engines: dangling fanin references (via
    {!Netlist.corrupt_fanin} or a buggy builder), combinational loops
    (creatable with {!Netlist.set_kind}), and inconsistent output
    declarations.  The engines' inner loops index arrays by net id and
    assume acyclicity, so they would crash — this pass runs first (the CLI
    runs it on every elaborated core before ATPG or scheduling) and turns
    each defect into a {!Socet_util.Error.t} naming the net. *)

val check : Netlist.t -> (unit, Socet_util.Error.t list) result
(** All defects found, in net-id order:
    - {e dangling nets}: a fanin pin referencing a net id outside the
      netlist;
    - {e arity mismatches}: a gate whose stored fanin count disagrees with
      its {!Cell.arity} (a width-corruption symptom);
    - {e multiply-driven outputs}: two primary outputs declared with the
      same name;
    - {e dangling outputs}: a primary output referencing a net outside the
      netlist;
    - {e combinational loops}: a cycle through non-flip-flop gates (the
      first one found; reported via {!Netlist.comb_order_result}). *)

val check_exn : Netlist.t -> unit
(** @raise Socet_util.Error.Socet_error with the first defect. *)
