(** Flat, levelized, struct-of-arrays compilation of a netlist.

    {!of_netlist} compiles a netlist once into plain int arrays — kind
    codes, CSR fanin/fanout, topological order and levels, PI/DFF/PO index
    maps — cached on the netlist and invalidated by any mutation.  The
    word-parallel evaluators here are bit-identical to the original
    list/Hashtbl engine in {!Sim} but allocate nothing per call; the fault
    simulator additionally uses per-site {!cone}s so a single-fault
    evaluation touches only the fault's combinational fanout.

    All fields are read-only for callers.  A compiled form is safe to
    share across domains: the arrays are never written after {!of_netlist}
    returns, and the cone cache is mutex-guarded. *)

type t = {
  n : int;  (** gate count *)
  kinds : int array;  (** kind code per gate (see the [k_*] codes) *)
  fanin_off : int array;  (** CSR offsets into [fanin], length [n+1] *)
  fanin : int array;  (** concatenated fanin nets *)
  order : int array;  (** = [Netlist.comb_order], flip-flops first *)
  topo_pos : int array;  (** inverse of [order] *)
  level : int array;  (** combinational depth (sources at 0) *)
  pis : int array;  (** PI nets in [Netlist.pis] order *)
  dffs : int array;  (** flip-flop nets in [Netlist.dffs] order *)
  pos_net : int array;  (** PO driving nets in [Netlist.pos] order *)
  pi_of : int array;  (** net -> PI index, or -1 *)
  dff_of : int array;  (** net -> flip-flop index, or -1 *)
  fanout_off : int array;  (** CSR offsets into [fanout], length [n+1] *)
  fanout : int array;  (** concatenated reader gates (all edges) *)
  is_obs : bool array;  (** net drives a PO or a flip-flop fanin pin *)
  cones : (int, cone) Hashtbl.t;  (** per-site fault cones, lazily built *)
  cones_mu : Mutex.t;
}

and cone = {
  c_site : int;
  c_gates : int array;
      (** the site and its combinational fanout, in topological order
          (site first) *)
  c_pos : int array;  (** indices into [pos_net] reachable from the site *)
  c_dffs : int array;
      (** flip-flop indices whose D capture reads a cone net *)
}

val word_width : int
val all_ones : int

(** Kind codes stored in [kinds]. *)

val k_pi : int
val k_const0 : int
val k_const1 : int
val k_buf : int
val k_inv : int
val k_and2 : int
val k_or2 : int
val k_nand2 : int
val k_nor2 : int
val k_xor2 : int
val k_xnor2 : int
val k_mux2 : int
val k_dff : int
val k_dffe : int
val k_sdff : int
val k_sdffe : int

val code_of_kind : Cell.kind -> int

val of_netlist : Netlist.t -> t
(** The cached flat form, compiling on first use.  @raise
    Socet_util.Error.Socet_error on a combinational cycle or dangling
    fanin (via [Netlist.comb_order]). *)

val eval_inject :
  t ->
  pi:int array ->
  state:int array ->
  inject:(int -> int -> int) ->
  int array ->
  unit
(** Word-parallel combinational evaluation into the caller's value array
    (size [n]), post-processing every computed value with [inject] —
    the generic engine behind {!Sim.eval_words}. *)

val eval_good : t -> pi:int array -> state:int array -> int array -> unit
(** {!eval_inject} specialised to identity injection (no closure call per
    gate) — good-machine simulation. *)

val eval_masked :
  t ->
  pi:int array ->
  state:int array ->
  and_mask:int array ->
  or_mask:int array ->
  int array ->
  unit
(** {!eval_inject} specialised to per-net stuck-at masks
    ([(v land and_mask.(g)) lor or_mask.(g)]) — sequential fault
    batches. *)

val po_words : t -> int array -> int array
(** PO values (in order) from a net-value array. *)

val next_state_words : t -> int array -> int array
(** Flip-flop D-capture words from a net-value array, honouring
    load-enables and scan muxing. *)

val capture : t -> read:(int -> int) -> int -> int
(** [capture f ~read k] is flip-flop [k]'s D-capture word with net values
    supplied by [read] — used by the fault simulator to read through its
    sparse faulty overlay. *)

val cone : t -> int -> cone * bool
(** [cone f site] is the fault cone of [site], built on first request and
    cached for the life of the compiled form; the boolean is [true] when
    the cone was served from the cache.  Thread-safe. *)
