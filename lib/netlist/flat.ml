(* Flat, levelized, struct-of-arrays form of a netlist.

   [of_netlist] compiles the pointer-and-list netlist once into plain int
   arrays — gate kinds as int codes, fanins and fanouts in CSR form,
   topological order and levels, PI/DFF/PO index maps — and caches the
   result on the netlist itself (invalidated by any mutation).  Every
   engine that simulates gates word-parallel runs on this form; nothing
   here allocates per evaluation beyond the caller-supplied value array.

   The evaluation semantics (operator masking, capture equations,
   iteration in [Netlist.comb_order]) are bit-for-bit those of the
   original list/Hashtbl engine; the fault simulator's byte-identity
   contract rests on that. *)

let word_width = Sys.int_size - 1
let all_ones = (1 lsl word_width) - 1

(* Kind codes.  Fixed small ints so the evaluator's match compiles to a
   jump table over an int array instead of chasing a variant array. *)
let k_pi = 0
let k_const0 = 1
let k_const1 = 2
let k_buf = 3
let k_inv = 4
let k_and2 = 5
let k_or2 = 6
let k_nand2 = 7
let k_nor2 = 8
let k_xor2 = 9
let k_xnor2 = 10
let k_mux2 = 11
let k_dff = 12
let k_dffe = 13
let k_sdff = 14
let k_sdffe = 15

let code_of_kind = function
  | Cell.Pi -> k_pi
  | Cell.Const0 -> k_const0
  | Cell.Const1 -> k_const1
  | Cell.Buf -> k_buf
  | Cell.Inv -> k_inv
  | Cell.And2 -> k_and2
  | Cell.Or2 -> k_or2
  | Cell.Nand2 -> k_nand2
  | Cell.Nor2 -> k_nor2
  | Cell.Xor2 -> k_xor2
  | Cell.Xnor2 -> k_xnor2
  | Cell.Mux2 -> k_mux2
  | Cell.Dff -> k_dff
  | Cell.Dffe -> k_dffe
  | Cell.Sdff -> k_sdff
  | Cell.Sdffe -> k_sdffe

type cone = {
  c_site : int;
  c_gates : int array;
  c_pos : int array;
  c_dffs : int array;
}

type t = {
  n : int;
  kinds : int array;
  fanin_off : int array;
  fanin : int array;
  order : int array;
  topo_pos : int array;
  level : int array;
  pis : int array;
  dffs : int array;
  pos_net : int array;
  pi_of : int array;
  dff_of : int array;
  fanout_off : int array;
  fanout : int array;
  is_obs : bool array;
  cones : (int, cone) Hashtbl.t;
  cones_mu : Mutex.t;
}

let build nl =
  let n = Netlist.gate_count nl in
  let kinds = Array.make n 0 in
  let arity_total = ref 0 in
  for g = 0 to n - 1 do
    kinds.(g) <- code_of_kind (Netlist.kind nl g);
    arity_total := !arity_total + Array.length (Netlist.fanin nl g)
  done;
  let fanin_off = Array.make (n + 1) 0 in
  let fanin = Array.make (max 1 !arity_total) 0 in
  let pos = ref 0 in
  for g = 0 to n - 1 do
    fanin_off.(g) <- !pos;
    Array.iter
      (fun src ->
        fanin.(!pos) <- src;
        incr pos)
      (Netlist.fanin nl g)
  done;
  fanin_off.(n) <- !pos;
  (* Fanout CSR over the same (all-reader) edge set, by counting sort. *)
  let fanout_off = Array.make (n + 1) 0 in
  for e = 0 to !pos - 1 do
    fanout_off.(fanin.(e) + 1) <- fanout_off.(fanin.(e) + 1) + 1
  done;
  for g = 1 to n do
    fanout_off.(g) <- fanout_off.(g) + fanout_off.(g - 1)
  done;
  let fanout = Array.make (max 1 !pos) 0 in
  let cursor = Array.copy fanout_off in
  for g = 0 to n - 1 do
    for e = fanin_off.(g) to fanin_off.(g + 1) - 1 do
      let src = fanin.(e) in
      fanout.(cursor.(src)) <- g;
      cursor.(src) <- cursor.(src) + 1
    done
  done;
  (* The shared topological order (identical to [Netlist.comb_order] so
     every engine, flat or not, walks gates in the same sequence). *)
  let order = Netlist.comb_order nl in
  let topo_pos = Array.make n 0 in
  Array.iteri (fun i g -> topo_pos.(g) <- i) order;
  (* Combinational depth: sources at level 0, every combinational gate one
     past its deepest fanin.  Flip-flop outputs are sources. *)
  let level = Array.make n 0 in
  Array.iter
    (fun g ->
      let k = kinds.(g) in
      if k < k_dff && k > k_const1 then begin
        let deepest = ref (-1) in
        for e = fanin_off.(g) to fanin_off.(g + 1) - 1 do
          deepest := max !deepest level.(fanin.(e))
        done;
        level.(g) <- !deepest + 1
      end)
    order;
  let pis = Array.of_list (Netlist.pis nl) in
  let dffs = Array.of_list (Netlist.dffs nl) in
  let pos_net = Array.of_list (List.map snd (Netlist.pos nl)) in
  let pi_of = Array.make n (-1) in
  Array.iteri (fun i g -> pi_of.(g) <- i) pis;
  let dff_of = Array.make n (-1) in
  Array.iteri (fun i g -> dff_of.(g) <- i) dffs;
  let is_obs = Array.make n false in
  Array.iter (fun net -> is_obs.(net) <- true) pos_net;
  Array.iter
    (fun ff ->
      for e = fanin_off.(ff) to fanin_off.(ff + 1) - 1 do
        is_obs.(fanin.(e)) <- true
      done)
    dffs;
  {
    n;
    kinds;
    fanin_off;
    fanin;
    order;
    topo_pos;
    level;
    pis;
    dffs;
    pos_net;
    pi_of;
    dff_of;
    fanout_off;
    fanout;
    is_obs;
    cones = Hashtbl.create 64;
    cones_mu = Mutex.create ();
  }

type Netlist.flat_slot += Slot of t

let of_netlist nl =
  match Netlist.flat_cache nl with
  | Some (Slot f) -> f
  | _ ->
      let f = build nl in
      Netlist.set_flat_cache nl (Slot f);
      f

(* ------------------------------------------------------------------ *)
(* Word-parallel evaluation                                            *)
(* ------------------------------------------------------------------ *)

(* The three loops below are the same evaluator specialised per inject
   mode: generic closure (the public [Sim.eval_words] contract), identity
   (good-machine simulation), and stuck-at masks (sequential fault
   batches).  Specialising removes a closure call per gate from the two
   hot paths. *)

let eval_inject f ~pi ~state ~inject v =
  let kinds = f.kinds and off = f.fanin_off and fi = f.fanin in
  let ord = f.order in
  for i = 0 to f.n - 1 do
    let g = Array.unsafe_get ord i in
    let b = Array.unsafe_get off g in
    let value =
      match Array.unsafe_get kinds g with
      | 0 -> pi.(f.pi_of.(g))
      | 1 -> 0
      | 2 -> all_ones
      | 3 -> v.(fi.(b))
      | 4 -> lnot v.(fi.(b))
      | 5 -> v.(fi.(b)) land v.(fi.(b + 1))
      | 6 -> v.(fi.(b)) lor v.(fi.(b + 1))
      | 7 -> lnot (v.(fi.(b)) land v.(fi.(b + 1)))
      | 8 -> lnot (v.(fi.(b)) lor v.(fi.(b + 1)))
      | 9 -> v.(fi.(b)) lxor v.(fi.(b + 1))
      | 10 -> lnot (v.(fi.(b)) lxor v.(fi.(b + 1)))
      | 11 ->
          let s = v.(fi.(b)) in
          (lnot s land v.(fi.(b + 1))) lor (s land v.(fi.(b + 2)))
      | _ -> state.(f.dff_of.(g))
    in
    Array.unsafe_set v g (inject g (value land all_ones))
  done

let eval_good f ~pi ~state v =
  let kinds = f.kinds and off = f.fanin_off and fi = f.fanin in
  let ord = f.order in
  for i = 0 to f.n - 1 do
    let g = Array.unsafe_get ord i in
    let b = Array.unsafe_get off g in
    let value =
      match Array.unsafe_get kinds g with
      | 0 -> pi.(f.pi_of.(g)) land all_ones
      | 1 -> 0
      | 2 -> all_ones
      | 3 -> v.(fi.(b))
      | 4 -> lnot v.(fi.(b)) land all_ones
      | 5 -> v.(fi.(b)) land v.(fi.(b + 1))
      | 6 -> v.(fi.(b)) lor v.(fi.(b + 1))
      | 7 -> lnot (v.(fi.(b)) land v.(fi.(b + 1))) land all_ones
      | 8 -> lnot (v.(fi.(b)) lor v.(fi.(b + 1))) land all_ones
      | 9 -> v.(fi.(b)) lxor v.(fi.(b + 1))
      | 10 -> lnot (v.(fi.(b)) lxor v.(fi.(b + 1))) land all_ones
      | 11 ->
          let s = v.(fi.(b)) in
          ((lnot s land v.(fi.(b + 1))) lor (s land v.(fi.(b + 2)))) land all_ones
      | _ -> state.(f.dff_of.(g)) land all_ones
    in
    Array.unsafe_set v g value
  done

let eval_masked f ~pi ~state ~and_mask ~or_mask v =
  let kinds = f.kinds and off = f.fanin_off and fi = f.fanin in
  let ord = f.order in
  for i = 0 to f.n - 1 do
    let g = Array.unsafe_get ord i in
    let b = Array.unsafe_get off g in
    let value =
      match Array.unsafe_get kinds g with
      | 0 -> pi.(f.pi_of.(g)) land all_ones
      | 1 -> 0
      | 2 -> all_ones
      | 3 -> v.(fi.(b))
      | 4 -> lnot v.(fi.(b)) land all_ones
      | 5 -> v.(fi.(b)) land v.(fi.(b + 1))
      | 6 -> v.(fi.(b)) lor v.(fi.(b + 1))
      | 7 -> lnot (v.(fi.(b)) land v.(fi.(b + 1))) land all_ones
      | 8 -> lnot (v.(fi.(b)) lor v.(fi.(b + 1))) land all_ones
      | 9 -> v.(fi.(b)) lxor v.(fi.(b + 1))
      | 10 -> lnot (v.(fi.(b)) lxor v.(fi.(b + 1))) land all_ones
      | 11 ->
          let s = v.(fi.(b)) in
          ((lnot s land v.(fi.(b + 1))) lor (s land v.(fi.(b + 2)))) land all_ones
      | _ -> state.(f.dff_of.(g)) land all_ones
    in
    Array.unsafe_set v g ((value land and_mask.(g)) lor or_mask.(g))
  done

let po_words f v = Array.map (fun net -> v.(net)) f.pos_net

(* Flip-flop D capture, reading net values through [read] so the fault
   simulator can substitute its sparse faulty overlay for the plain value
   array.  Equations (enable hold, scan override) are the originals from
   [Sim.next_state_words]. *)
let capture f ~read k =
  let ff = f.dffs.(k) in
  let b = f.fanin_off.(ff) in
  let fi = f.fanin in
  match f.kinds.(ff) with
  | 12 -> read fi.(b)
  | 13 ->
      let d = read fi.(b) and en = read fi.(b + 1) and q = read ff in
      ((en land d) lor (lnot en land q)) land all_ones
  | 14 ->
      let d = read fi.(b) and si = read fi.(b + 1) and se = read fi.(b + 2) in
      ((se land si) lor (lnot se land d)) land all_ones
  | 15 ->
      let d = read fi.(b)
      and en = read fi.(b + 1)
      and si = read fi.(b + 2)
      and se = read fi.(b + 3) in
      let q = read ff in
      let func = ((en land d) lor (lnot en land q)) land all_ones in
      ((se land si) lor (lnot se land func)) land all_ones
  | _ -> assert false

let next_state_words f v = Array.init (Array.length f.dffs) (capture f ~read:(Array.get v))

(* ------------------------------------------------------------------ *)
(* Fault cones                                                         *)
(* ------------------------------------------------------------------ *)

let build_cone f site =
  let n = f.n in
  let in_cone = Bytes.make n '\000' in
  let stack = ref [ site ] in
  Bytes.set in_cone site '\001';
  let members = ref 1 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | g :: rest ->
        stack := rest;
        for e = f.fanout_off.(g) to f.fanout_off.(g + 1) - 1 do
          let h = f.fanout.(e) in
          if f.kinds.(h) < k_dff && Bytes.get in_cone h = '\000' then begin
            Bytes.set in_cone h '\001';
            incr members;
            stack := h :: !stack
          end
        done
  done;
  (* Cone gates in global topological order: everything reachable from the
     site sits after it in [order], so a stable sort by topo position puts
     the site first and keeps fanins-before-fanouts within the cone. *)
  let gates = Array.make !members 0 in
  let w = ref 0 in
  Array.iter
    (fun g ->
      if Bytes.get in_cone g = '\001' then begin
        gates.(!w) <- g;
        incr w
      end)
    f.order;
  let mem g = Bytes.get in_cone g = '\001' in
  let pos_hit = ref [] in
  Array.iteri (fun i net -> if mem net then pos_hit := i :: !pos_hit) f.pos_net;
  (* A capture can change iff the D/enable/scan pins read a cone net, or —
     for the q-holding kinds — the flip-flop's own output is the site. *)
  let dff_hit = ref [] in
  Array.iteri
    (fun k ff ->
      let reads_cone = ref false in
      for e = f.fanin_off.(ff) to f.fanin_off.(ff + 1) - 1 do
        if mem f.fanin.(e) then reads_cone := true
      done;
      if (f.kinds.(ff) = k_dffe || f.kinds.(ff) = k_sdffe) && mem ff then
        reads_cone := true;
      if !reads_cone then dff_hit := k :: !dff_hit)
    f.dffs;
  {
    c_site = site;
    c_gates = gates;
    c_pos = Array.of_list (List.rev !pos_hit);
    c_dffs = Array.of_list (List.rev !dff_hit);
  }

let cone f site =
  Mutex.lock f.cones_mu;
  match Hashtbl.find_opt f.cones site with
  | Some c ->
      Mutex.unlock f.cones_mu;
      (c, true)
  | None ->
      (* Build outside the lock?  No: a concurrent builder of the same
         site would duplicate work but stay correct; holding the lock is
         simpler and construction is rare (once per site per netlist). *)
      let c = build_cone f site in
      Hashtbl.replace f.cones site c;
      Mutex.unlock f.cones_mu;
      (c, false)
