(* Canonical structural hashing of netlists (structhash.mli). *)

(* Built on the Flat CSR form: the compile is cached on the netlist and
   invalidated by any mutation, so hashing N times costs one compile plus
   N cheap array walks.  Digest is the stdlib MD5 — no external deps, and
   collision resistance is not a security property here (the cache only
   ever trades correctness for a stale *byte-identical* result, and the
   stored entry records the full key for verification). *)

module D = Digest

let hex = D.to_hex

(* A gate's canonical label is the Merkle digest of its function cone:
   interface sources get positional seeds (PI i, FF j, constants), and
   every combinational gate hashes its kind code together with its fanin
   labels *in pin order* (MUX selects and other asymmetric pins must not
   commute).  Two netlists built with different internal gate names or a
   different (valid) declaration order assign identical labels; any
   functional difference — a kind change, a swapped pin, a repointed
   fanin — changes the label of every gate downstream. *)
let labels flat =
  let n = flat.Flat.n in
  let lab = Array.make n "" in
  (* Interface seeds: positional, never name-based.  PI/FF positions are
     part of the canonical form because they fix the test-vector layout
     (Fsim/Podem vectors are positional) — reordering the interface is a
     functional edit for every cached artifact keyed by this hash. *)
  Array.iteri (fun i net -> lab.(net) <- D.string (Printf.sprintf "pi:%d" i)) flat.Flat.pis;
  Array.iteri (fun j net -> lab.(net) <- D.string (Printf.sprintf "ff:%d" j)) flat.Flat.dffs;
  let buf = Buffer.create 128 in
  Array.iter
    (fun g ->
      if lab.(g) = "" then begin
        Buffer.clear buf;
        Buffer.add_string buf (string_of_int flat.Flat.kinds.(g));
        for p = flat.Flat.fanin_off.(g) to flat.Flat.fanin_off.(g + 1) - 1 do
          Buffer.add_char buf '.';
          Buffer.add_string buf lab.(flat.Flat.fanin.(p))
        done;
        lab.(g) <- D.string (Buffer.contents buf)
      end)
    flat.Flat.order;
  lab

let netlist nl =
  let flat = Flat.of_netlist nl in
  let lab = labels flat in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "socet-structhash-v1:%d:%d:%d:%d\n"
    flat.Flat.n (Array.length flat.Flat.pis) (Array.length flat.Flat.dffs)
    (Array.length flat.Flat.pos_net));
  (* Anchors, in interface order: what the circuit computes at each PO,
     and each flip-flop's next-state function. *)
  Array.iter (fun net -> Buffer.add_string buf (lab.(net) ^ "o")) flat.Flat.pos_net;
  Array.iter
    (fun net ->
      (* A flip-flop's own fanin pins (D, enable, scan-in...) in order. *)
      for p = flat.Flat.fanin_off.(net) to flat.Flat.fanin_off.(net + 1) - 1 do
        Buffer.add_string buf lab.(flat.Flat.fanin.(p))
      done;
      Buffer.add_char buf 'f')
    flat.Flat.dffs;
  (* The sorted label multiset covers logic that drives no PO or
     flip-flop: such gates still carry faults, so a netlist that differs
     only in dangling logic must hash differently. *)
  let all = Array.copy lab in
  Array.sort compare all;
  Array.iter (fun l -> Buffer.add_string buf l) all;
  hex (D.string (Buffer.contents buf))
