(** Gate-level netlists.

    A netlist is a directed acyclic graph of {!Cell.kind} instances.  Every
    gate drives exactly one net, identified with the gate's id.  Primary
    outputs are named references to nets.  Sequential elements
    (flip-flops) break combinational cycles: the *output* of a flip-flop is
    a combinational source and its *fanin pins* are combinational sinks.

    This is the substrate for area accounting, fault simulation and ATPG. *)

type t

type net = int
(** A net is the id of its driving gate. *)

val create : string -> t
(** [create name] is an empty netlist. *)

val name : t -> string

val add_gate : t -> ?name:string -> Cell.kind -> net array -> net
(** [add_gate t kind fanin] adds a gate; [Array.length fanin] must equal
    [Cell.arity kind].  Returns the driven net. *)

val add_pi : t -> string -> net
(** Adds a primary input. *)

val add_po : t -> string -> net -> unit
(** Declares a named primary output driven by [net]. *)

val replace_po : t -> string -> net -> unit
(** Redirects an existing named primary output to a different driver net
    (a functional edit: the building block of [socet diff-test]'s
    one-core mutation).  Invalidates derived caches.
    @raise Not_found when no PO with that name exists. *)

val gate_count : t -> int

val kind : t -> net -> Cell.kind
val fanin : t -> net -> net array
val fanout : t -> net -> net list
(** Gates that read [net] (in no particular order). *)

val gate_name : t -> net -> string
(** The user-supplied name, or a generated one. *)

val set_kind : t -> net -> Cell.kind -> net array -> unit
(** Replace a gate in place (used by scan insertion to upgrade [Dff] to
    [Sdff] etc.).  The new kind's arity must match the new fanin. *)

val pis : t -> net list
(** Primary inputs, in insertion order. *)

val pos : t -> (string * net) list
(** Primary outputs, in insertion order. *)

val dffs : t -> net list
(** Flip-flops, in insertion order. *)

val pi_index : t -> net -> int
(** Position of a PI in [pis t].  @raise Not_found otherwise. *)

val area : t -> int
(** Total area in cell units. *)

val comb_order : t -> net array
(** All gates in a topological order in which flip-flop outputs, PIs and
    constants precede everything, and each combinational gate follows its
    fanins.  @raise Socet_util.Error.Socet_error on a combinational cycle
    or a dangling fanin reference. *)

val comb_order_result : t -> (net array, Socet_util.Error.t) result
(** {!comb_order} as a result: [Error] describes the combinational cycle
    or dangling fanin instead of raising.  Pipeline entry points (the CLI,
    [Validate.check]) use this form. *)

type flat_slot = ..
(** Cache slot for the compiled flat form.  {!Flat} extends this variant
    with its own constructor; the indirection avoids a dependency cycle
    while keeping the cache invalidated together with the other derived
    structures on every mutation.  Only {!Flat.of_netlist} should touch
    it. *)

val flat_cache : t -> flat_slot option
val set_flat_cache : t -> flat_slot -> unit

val corrupt_fanin : t -> net -> pin:int -> net -> unit
(** Fault-injection backdoor for the chaos harness ([Socet_util.Chaos],
    [test/test_chaos.ml]): overwrite one fanin pin {e without} validating
    the new net id, so tests can manufacture dangling references and
    combinational loops that [Validate.check] must catch.  Never call this
    outside tests. *)

val stats : t -> string
(** One-line summary: #gates, #PIs, #POs, #FFs, area. *)

val find_pi : t -> string -> net
(** Look up a PI by name.  @raise Not_found. *)

val find_po : t -> string -> net
(** Net driving the named PO.  @raise Not_found. *)
