module Bitvec = Socet_util.Bitvec

let word_width = Flat.word_width

type state = Bitvec.t

let initial_state t = Bitvec.create (List.length (Netlist.dffs t))

type wvec = int array

let all_ones = Flat.all_ones

(* Shared combinational evaluation over machine words, on the flat form
   cached on the netlist — no per-call Hashtbl construction or list
   traversal.  The scalar engine reuses it with 1-bit-meaningful words. *)
let eval_words t ~pi ~state ~inject =
  let f = Flat.of_netlist t in
  let v = Array.make f.Flat.n 0 in
  Flat.eval_inject f ~pi ~state ~inject v;
  v

let po_words t v = Flat.po_words (Flat.of_netlist t) v
let next_state_words t v = Flat.next_state_words (Flat.of_netlist t) v

let words_of_bitvec bv = Array.init (Bitvec.length bv) (fun i -> if Bitvec.get bv i then all_ones else 0)

let bitvec_of_words w =
  let bv = Bitvec.create (Array.length w) in
  Array.iteri (fun i x -> Bitvec.set bv i (x land 1 = 1)) w;
  bv

let eval_comb t ~pi ~state =
  let f = Flat.of_netlist t in
  let v = Array.make f.Flat.n 0 in
  Flat.eval_good f ~pi:(words_of_bitvec pi) ~state:(words_of_bitvec state) v;
  Array.map (fun x -> x land 1) v

let eval t ~pi ~state =
  let f = Flat.of_netlist t in
  let v = Array.make f.Flat.n 0 in
  Flat.eval_good f ~pi:(words_of_bitvec pi) ~state:(words_of_bitvec state) v;
  (bitvec_of_words (Flat.po_words f v), bitvec_of_words (Flat.next_state_words f v))
