module Error = Socet_util.Error

let err nl ?(ctx = []) msg =
  Error.make ~kind:Error.Validation ~engine:"netlist"
    ~ctx:(("netlist", Netlist.name nl) :: ctx)
    msg

let check nl =
  let n = Netlist.gate_count nl in
  let errors = ref [] in
  let add e = errors := e :: !errors in
  for g = 0 to n - 1 do
    let kind = Netlist.kind nl g in
    let fanin = Netlist.fanin nl g in
    if Array.length fanin <> Cell.arity kind then
      add
        (err nl
           ~ctx:[ ("net", string_of_int g) ]
           (Printf.sprintf "gate %d (%s) has %d fanins, expects %d" g
              (Cell.name kind) (Array.length fanin) (Cell.arity kind)));
    Array.iteri
      (fun pin src ->
        if src < 0 || src >= n then
          add
            (err nl
               ~ctx:
                 [
                   ("net", string_of_int g);
                   ("pin", string_of_int pin);
                   ("fanin", string_of_int src);
                 ]
               (Printf.sprintf "gate %d (%s) pin %d dangles on net %d" g
                  (Cell.name kind) pin src)))
      fanin
  done;
  (* Multiply-driven / dangling primary outputs. *)
  let seen_po = Hashtbl.create 8 in
  List.iter
    (fun (name, net) ->
      if Hashtbl.mem seen_po name then
        add
          (err nl
             ~ctx:[ ("po", name) ]
             (Printf.sprintf "output %s is multiply driven" name))
      else Hashtbl.replace seen_po name ();
      if net < 0 || net >= n then
        add
          (err nl
             ~ctx:[ ("po", name); ("net", string_of_int net) ]
             (Printf.sprintf "output %s dangles on net %d" name net)))
    (Netlist.pos nl);
  (* Combinational loops — only meaningful once every reference resolves. *)
  if !errors = [] then begin
    match Netlist.comb_order_result nl with
    | Ok _ -> ()
    | Error e -> add e
  end;
  match List.rev !errors with [] -> Ok () | es -> Result.error es

let check_exn nl =
  match check nl with
  | Ok () -> ()
  | Error (e :: _) -> raise (Error.Socet_error e)
  | Error [] -> ()
