module Error = Socet_util.Error

type net = int

(* Slot for the compiled flat form ({!Flat.t}).  The payload type lives in
   a module that depends on this one, so the slot is an extensible variant
   the owner extends — type-safe without a dependency cycle. *)
type flat_slot = ..

type t = {
  nl_name : string;
  mutable kinds : Cell.kind array;
  mutable fanins : net array array;
  mutable names : string array;
  mutable n : int;
  mutable pis_rev : net list;
  mutable pos_rev : (string * net) list;
  mutable dffs_rev : net list;
  (* Caches, invalidated on mutation. *)
  mutable fanout_cache : net list array option;
  mutable order_cache : net array option;
  mutable flat_cache : flat_slot option;
}

let create nl_name =
  {
    nl_name;
    kinds = Array.make 64 Cell.Const0;
    fanins = Array.make 64 [||];
    names = Array.make 64 "";
    n = 0;
    pis_rev = [];
    pos_rev = [];
    dffs_rev = [];
    fanout_cache = None;
    order_cache = None;
    flat_cache = None;
  }

let name t = t.nl_name

let invalidate t =
  t.fanout_cache <- None;
  t.order_cache <- None;
  t.flat_cache <- None

let flat_cache t = t.flat_cache
let set_flat_cache t slot = t.flat_cache <- Some slot

let grow t =
  if t.n >= Array.length t.kinds then begin
    let cap = 2 * Array.length t.kinds in
    let k = Array.make cap Cell.Const0
    and f = Array.make cap [||]
    and s = Array.make cap "" in
    Array.blit t.kinds 0 k 0 t.n;
    Array.blit t.fanins 0 f 0 t.n;
    Array.blit t.names 0 s 0 t.n;
    t.kinds <- k;
    t.fanins <- f;
    t.names <- s
  end

let check_net t x =
  if x < 0 || x >= t.n then
    Error.raisef ~engine:"netlist"
      ~ctx:[ ("netlist", t.nl_name); ("net", string_of_int x) ]
      "unknown net %d (have %d)" x t.n

let add_gate t ?name kind fanin =
  if Array.length fanin <> Cell.arity kind then
    Error.raisef ~engine:"netlist" ~ctx:[ ("netlist", t.nl_name) ]
      "add_gate: %s expects %d fanins, got %d" (Cell.name kind)
      (Cell.arity kind) (Array.length fanin);
  Array.iter (check_net t) fanin;
  grow t;
  let id = t.n in
  t.kinds.(id) <- kind;
  t.fanins.(id) <- Array.copy fanin;
  t.names.(id) <-
    (match name with Some s -> s | None -> Printf.sprintf "n%d" id);
  t.n <- t.n + 1;
  if Cell.is_dff kind then t.dffs_rev <- id :: t.dffs_rev;
  invalidate t;
  id

let add_pi t pi_name =
  let id = add_gate t ~name:pi_name Cell.Pi [||] in
  t.pis_rev <- id :: t.pis_rev;
  id

let add_po t po_name net =
  check_net t net;
  t.pos_rev <- (po_name, net) :: t.pos_rev

let replace_po t po_name net =
  check_net t net;
  if not (List.mem_assoc po_name t.pos_rev) then raise Not_found;
  t.pos_rev <-
    List.map (fun (n, x) -> if n = po_name then (n, net) else (n, x)) t.pos_rev;
  invalidate t

let gate_count t = t.n
let kind t x = check_net t x; t.kinds.(x)
let fanin t x = check_net t x; t.fanins.(x)
let gate_name t x = check_net t x; t.names.(x)

let fanout t x =
  check_net t x;
  let cache =
    match t.fanout_cache with
    | Some c -> c
    | None ->
        let c = Array.make t.n [] in
        for g = 0 to t.n - 1 do
          Array.iter (fun src -> c.(src) <- g :: c.(src)) t.fanins.(g)
        done;
        t.fanout_cache <- Some c;
        c
  in
  cache.(x)

let set_kind t x kind fanin =
  check_net t x;
  if Array.length fanin <> Cell.arity kind then
    Error.raisef ~engine:"netlist"
      ~ctx:[ ("netlist", t.nl_name); ("net", string_of_int x) ]
      "set_kind: arity mismatch for %s" (Cell.name kind);
  Array.iter (check_net t) fanin;
  let was_dff = Cell.is_dff t.kinds.(x) in
  if was_dff <> Cell.is_dff kind then
    Error.raisef ~engine:"netlist"
      ~ctx:[ ("netlist", t.nl_name); ("net", string_of_int x) ]
      "set_kind: cannot change sequential nature";
  t.kinds.(x) <- kind;
  t.fanins.(x) <- Array.copy fanin;
  invalidate t

let pis t = List.rev t.pis_rev
let pos t = List.rev t.pos_rev
let dffs t = List.rev t.dffs_rev

let pi_index t x =
  let rec loop i = function
    | [] -> raise Not_found
    | y :: _ when y = x -> i
    | _ :: rest -> loop (i + 1) rest
  in
  loop 0 (pis t)

let area t =
  let a = ref 0 in
  for g = 0 to t.n - 1 do
    a := !a + Cell.area t.kinds.(g)
  done;
  !a

let comb_order_result t =
  match t.order_cache with
  | Some o -> Ok o
  | None -> (
      (* Kahn over the combinational dependency relation: a gate depends on
         its fanins unless the gate itself is sequential (flip-flop fanins
         are sampled at the clock edge, not combinationally).  Fanin ids
         are re-checked here because {!corrupt_fanin} (and only it) can
         leave dangling references; a corrupt netlist must yield a
         structured error, not an array-bounds crash. *)
      let dangling = ref None in
      for g = 0 to t.n - 1 do
        Array.iter
          (fun src ->
            if (src < 0 || src >= t.n) && !dangling = None then
              dangling := Some (g, src))
          t.fanins.(g)
      done;
      match !dangling with
      | Some (g, src) ->
          Error
            (Error.make ~kind:Error.Validation ~engine:"netlist"
               ~ctx:
                 [
                   ("netlist", t.nl_name);
                   ("net", string_of_int g);
                   ("fanin", string_of_int src);
                 ]
               (Printf.sprintf "gate %d has dangling fanin %d" g src))
      | None ->
          let indeg = Array.make t.n 0 in
          for g = 0 to t.n - 1 do
            if not (Cell.is_dff t.kinds.(g)) then
              indeg.(g) <- Array.length t.fanins.(g)
          done;
          let queue = Queue.create () in
          for g = 0 to t.n - 1 do
            if indeg.(g) = 0 then Queue.add g queue
          done;
          let order = Array.make t.n 0 in
          let count = ref 0 in
          (* Precompute fanouts once. *)
          let fo = Array.make t.n [] in
          for g = 0 to t.n - 1 do
            if not (Cell.is_dff t.kinds.(g)) then
              Array.iter (fun src -> fo.(src) <- g :: fo.(src)) t.fanins.(g)
          done;
          while not (Queue.is_empty queue) do
            let g = Queue.pop queue in
            order.(!count) <- g;
            incr count;
            List.iter
              (fun h ->
                indeg.(h) <- indeg.(h) - 1;
                if indeg.(h) = 0 then Queue.add h queue)
              fo.(g)
          done;
          if !count <> t.n then
            Error
              (Error.make ~kind:Error.Validation ~engine:"netlist"
                 ~ctx:[ ("netlist", t.nl_name) ]
                 "combinational cycle")
          else begin
            t.order_cache <- Some order;
            Ok order
          end)

let comb_order t =
  match comb_order_result t with
  | Ok o -> o
  | Error e -> raise (Error.Socet_error e)

let corrupt_fanin t g ~pin net =
  if g < 0 || g >= t.n then
    Error.raisef ~engine:"netlist" ~ctx:[ ("netlist", t.nl_name) ]
      "corrupt_fanin: gate %d out of range" g;
  if pin < 0 || pin >= Array.length t.fanins.(g) then
    Error.raisef ~engine:"netlist" ~ctx:[ ("netlist", t.nl_name) ]
      "corrupt_fanin: gate %d has no pin %d" g pin;
  t.fanins.(g).(pin) <- net;
  invalidate t

let stats t =
  Printf.sprintf "%s: %d gates, %d PIs, %d POs, %d FFs, area %d cells"
    t.nl_name t.n
    (List.length t.pis_rev)
    (List.length t.pos_rev)
    (List.length t.dffs_rev)
    (area t)

let find_pi t s =
  let rec loop = function
    | [] -> raise Not_found
    | x :: rest -> if t.names.(x) = s then x else loop rest
  in
  loop (pis t)

let find_po t s =
  match List.assoc_opt s (pos t) with
  | Some x -> x
  | None -> raise Not_found
