module Error = Socet_util.Error

let width_err ~where a b =
  Error.raisef ~engine:"netlist"
    ~ctx:[ ("op", where) ]
    "%s: width mismatch (%d vs %d bits)" where (Array.length a) (Array.length b)

type word = Netlist.net array

let const_word t ~width v =
  Array.init width (fun i ->
      Netlist.add_gate t (if (v lsr i) land 1 = 1 then Cell.Const1 else Cell.Const0) [||])

let input_word t name w =
  Array.init w (fun i -> Netlist.add_pi t (Printf.sprintf "%s.%d" name i))

let output_word t name word =
  Array.iteri (fun i n -> Netlist.add_po t (Printf.sprintf "%s.%d" name i) n) word

let map1 t kind a = Array.map (fun x -> Netlist.add_gate t kind [| x |]) a

let map2 t kind a b =
  if Array.length a <> Array.length b then width_err ~where:"Builder.map2" a b;
  Array.mapi (fun i x -> Netlist.add_gate t kind [| x; b.(i) |]) a

let not_word t a = map1 t Cell.Inv a
let and_word t a b = map2 t Cell.And2 a b
let or_word t a b = map2 t Cell.Or2 a b
let xor_word t a b = map2 t Cell.Xor2 a b

let mux2_word t ~sel ~a ~b =
  if Array.length a <> Array.length b then width_err ~where:"Builder.mux2_word" a b;
  Array.mapi (fun i x -> Netlist.add_gate t Cell.Mux2 [| sel; x; b.(i) |]) a

let full_adder t a b cin =
  let axb = Netlist.add_gate t Cell.Xor2 [| a; b |] in
  let sum = Netlist.add_gate t Cell.Xor2 [| axb; cin |] in
  let t1 = Netlist.add_gate t Cell.And2 [| a; b |] in
  let t2 = Netlist.add_gate t Cell.And2 [| axb; cin |] in
  let cout = Netlist.add_gate t Cell.Or2 [| t1; t2 |] in
  (sum, cout)

let adder t a b ~cin =
  if Array.length a <> Array.length b then width_err ~where:"Builder.adder" a b;
  let carry = ref cin in
  let sum =
    Array.mapi
      (fun i x ->
        let s, c = full_adder t x b.(i) !carry in
        carry := c;
        s)
      a
  in
  (sum, !carry)

let subtractor t a b =
  (* a - b = a + ~b + 1; carry-out = 1 means no borrow (a >= b). *)
  let one = Netlist.add_gate t Cell.Const1 [||] in
  adder t a (not_word t b) ~cin:one

let eq_word t a b =
  let diffs = xor_word t a b in
  let any =
    Array.fold_left
      (fun acc x ->
        match acc with
        | None -> Some x
        | Some y -> Some (Netlist.add_gate t Cell.Or2 [| y; x |]))
      None diffs
  in
  match any with
  | None -> Netlist.add_gate t Cell.Const1 [||]
  | Some x -> Netlist.add_gate t Cell.Inv [| x |]

let lt_word t a b =
  let _, no_borrow = subtractor t a b in
  Netlist.add_gate t Cell.Inv [| no_borrow |]

let inc_word t a =
  let one = Netlist.add_gate t Cell.Const1 [||] in
  let zero = Netlist.add_gate t Cell.Const0 [||] in
  let b = Array.map (fun _ -> zero) a in
  fst (adder t a b ~cin:one)

let reduce t kind a =
  match Array.to_list a with
  | [] -> Error.raisef ~engine:"netlist" ~ctx:[ ("op", "Builder.reduce") ] "empty word"
  | x :: rest ->
      List.fold_left (fun acc y -> Netlist.add_gate t kind [| acc; y |]) x rest

let reduce_or t a = reduce t Cell.Or2 a
let reduce_and t a = reduce t Cell.And2 a

let new_register t ~name ~width =
  let zero = Netlist.add_gate t Cell.Const0 [||] in
  Array.init width (fun i ->
      Netlist.add_gate t ~name:(Printf.sprintf "%s.%d" name i) Cell.Dff [| zero |])

let connect_register t ~q ~d ?enable () =
  if Array.length q <> Array.length d then width_err ~where:"Builder.connect_register" q d;
  Array.iteri
    (fun i qn ->
      match enable with
      | None -> Netlist.set_kind t qn Cell.Dff [| d.(i) |]
      | Some en -> Netlist.set_kind t qn Cell.Dffe [| d.(i); en |])
    q
