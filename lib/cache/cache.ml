(* The engine-facing facade over the persistent store (cache.mli). *)

(* One process-global active store, set by the CLI / the serve dispatcher
   before engines run.  Engines never see a store handle: they call
   [find]/[store]/[memo] with a namespace and a content key, and the
   whole subsystem is a no-op (one atomic load) when nothing is
   active — mirroring lib/obs's zero-cost-when-disabled discipline. *)

let active : Store.t option Atomic.t = Atomic.make None

let set_active s = Atomic.set active s
let active_store () = Atomic.get active
let enabled () = Atomic.get active <> None

let with_store s f =
  let prev = Atomic.get active in
  Atomic.set active s;
  Fun.protect ~finally:(fun () -> Atomic.set active prev) f

let open_dir ?limit_bytes dir = Store.open_store ?limit_bytes dir

let activate_dir ?limit_bytes dir =
  match Store.open_store ?limit_bytes dir with
  | Ok s ->
      Atomic.set active (Some s);
      Ok ()
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Typed entries                                                       *)
(* ------------------------------------------------------------------ *)

(* Values cross processes via Marshal.  This is type-safe only by
   convention: every namespace string embeds a format version (e.g.
   "podem1"), bumped whenever the marshaled type changes shape, so a
   store written by an older build can only ever produce misses — the
   namespace is part of both the entry path and the verified entry
   header.  [Compat_32] keeps entries portable across word sizes. *)

let find (type a) ~ns ~key : a option =
  match Atomic.get active with
  | None -> None
  | Some s -> (
      match Store.find s ~ns ~key with
      | None ->
          Metrics.miss ns;
          None
      | Some payload -> (
          match (Marshal.from_string payload 0 : a) with
          | v ->
              Metrics.hit ns;
              Some v
          | exception (Failure _ | Invalid_argument _) ->
              (* A payload that passed the checksum but does not
                 unmarshal (e.g. truncated by a format bug): miss. *)
              Metrics.miss ns;
              None))

let store ~ns ~key v =
  match Atomic.get active with
  | None -> ()
  | Some s -> (
      match Marshal.to_string v [ Marshal.Compat_32 ] with
      | payload ->
          Store.store s ~ns ~key payload;
          Metrics.stored ()
      | exception Failure _ ->
          (* Unmarshalable value (closure, abstract block): engines only
             cache plain data, but never let a slip crash the run. *)
          ())

let memo ~ns ~key f =
  match find ~ns ~key with
  | Some v -> v
  | None ->
      let v = f () in
      store ~ns ~key v;
      v

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let scoreboard = Metrics.scoreboard
let reset_scoreboard = Metrics.reset_scoreboard

let bytes_used () =
  match Atomic.get active with None -> 0 | Some s -> Store.bytes_used s
