(* On-disk content-addressed entry store (store.mli). *)

module Err = Socet_util.Error

(* Entry file format, version 1:

     SOCETC1\n
     <ns-len> <key-len> <payload-len>\n
     <ns bytes><key bytes><payload bytes><16-byte MD5>

   The trailing digest covers everything before it; the full namespace
   and key are stored (not just their hash) so a hash-bucket collision
   or a stale file is detected by comparison, never trusted.  Files are
   written to a temp name and renamed into place, so readers — including
   concurrent fleet domains and forked serve workers — only ever see a
   complete entry or none. *)

let magic = "SOCETC1\n"

type t = {
  st_dir : string;
  st_limit : int;  (* byte bound for eviction *)
  (* In-memory size index (path -> bytes), maintained so eviction does
     not rescan the tree on every store; mtimes are read lazily at
     eviction time.  Guarded: fleet entries run on pool domains. *)
  st_sizes : (string, int) Hashtbl.t;
  st_bytes : int ref;
  st_mu : Mutex.t;
}

let default_limit_bytes =
  match Sys.getenv_opt "SOCET_CACHE_LIMIT_MB" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some mb when mb > 0 -> mb * 1024 * 1024
      | _ -> 256 * 1024 * 1024)
  | None -> 256 * 1024 * 1024

let locked t f =
  Mutex.lock t.st_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.st_mu) f

let bytes_used t = locked t (fun () -> !(t.st_bytes))
let dir t = t.st_dir
let limit_bytes t = t.st_limit

(* ------------------------------------------------------------------ *)
(* Opening: create-if-missing, reject unwritable, index what's there   *)
(* ------------------------------------------------------------------ *)

let scan_entries dirname =
  (* One level of namespace directories, entry files below. *)
  let entries = ref [] in
  Array.iter
    (fun ns ->
      let nsdir = Filename.concat dirname ns in
      if Sys.is_directory nsdir then
        Array.iter
          (fun f ->
            let path = Filename.concat nsdir f in
            match (Unix.stat path).Unix.st_kind with
            | Unix.S_REG ->
                entries := (path, (Unix.stat path).Unix.st_size) :: !entries
            | _ -> ()
            | exception Unix.Unix_error _ -> ())
          (Sys.readdir nsdir))
    (Sys.readdir dirname);
  !entries

let open_store ?(limit_bytes = default_limit_bytes) dirname =
  let invalid fmt =
    Printf.ksprintf
      (fun msg ->
        Error
          (Err.make ~kind:Err.Validation ~engine:"cache"
             ~ctx:[ ("dir", dirname) ] msg))
      fmt
  in
  match
    if Sys.file_exists dirname then
      if Sys.is_directory dirname then Ok ()
      else invalid "--cache target exists and is not a directory"
    else begin
      (try Unix.mkdir dirname 0o755
       with Unix.Unix_error (e, _, _) when e <> Unix.EEXIST ->
         raise (Sys_error (Unix.error_message e)));
      Ok ()
    end
  with
  | exception Sys_error e -> invalid "cannot create cache directory: %s" e
  | Error e -> Error e
  | Ok () -> (
      (* Writability probe: an unwritable directory must fail up front
         with the documented exit-code-3 validation error, not as a
         Sys_error out of the first engine that tries to store. *)
      let probe = Filename.concat dirname ".socet-cache-probe" in
      match
        let oc = open_out probe in
        close_out oc;
        Sys.remove probe
      with
      | exception Sys_error e -> invalid "cache directory is not writable: %s" e
      | () ->
          let sizes = Hashtbl.create 64 in
          let total = ref 0 in
          List.iter
            (fun (path, sz) ->
              Hashtbl.replace sizes path sz;
              total := !total + sz)
            (try scan_entries dirname with Sys_error _ -> []);
          Ok
            {
              st_dir = dirname;
              st_limit = limit_bytes;
              st_sizes = sizes;
              st_bytes = total;
              st_mu = Mutex.create ();
            })

(* ------------------------------------------------------------------ *)
(* Entry paths and codec                                               *)
(* ------------------------------------------------------------------ *)

let sanitize_ns ns =
  String.map (fun c -> if c = '/' || c = '.' || c = '\x00' then '_' else c) ns

let entry_path t ~ns ~key =
  let nsdir = Filename.concat t.st_dir (sanitize_ns ns) in
  Filename.concat nsdir (Digest.to_hex (Digest.string key))

let encode ~ns ~key payload =
  let b = Buffer.create (String.length payload + 128) in
  Buffer.add_string b magic;
  Buffer.add_string b
    (Printf.sprintf "%d %d %d\n" (String.length ns) (String.length key)
       (String.length payload));
  Buffer.add_string b ns;
  Buffer.add_string b key;
  Buffer.add_string b payload;
  let body = Buffer.contents b in
  body ^ Digest.string body

(* Strict parse; any deviation — wrong magic, short file, bad digest,
   key mismatch — is [None].  Corruption is a miss, never a crash. *)
let decode ~ns ~key data =
  let ( let* ) o f = Option.bind o f in
  let len = String.length data in
  let* () = if len > String.length magic + 16 then Some () else None in
  let* () =
    if String.sub data 0 (String.length magic) = magic then Some () else None
  in
  let* nl = String.index_from_opt data (String.length magic) '\n' in
  let header = String.sub data (String.length magic) (nl - String.length magic) in
  let* ns_len, key_len, pay_len =
    match String.split_on_char ' ' header with
    | [ a; b; c ] -> (
        match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
        | Some a, Some b, Some c when a >= 0 && b >= 0 && c >= 0 -> Some (a, b, c)
        | _ -> None)
    | _ -> None
  in
  let body_len = nl + 1 + ns_len + key_len + pay_len in
  let* () = if len = body_len + 16 then Some () else None in
  let* () =
    if Digest.string (String.sub data 0 body_len) = String.sub data body_len 16
    then Some ()
    else None
  in
  let* () = if String.sub data (nl + 1) ns_len = ns then Some () else None in
  let* () =
    if String.sub data (nl + 1 + ns_len) key_len = key then Some () else None
  in
  Some (String.sub data (nl + 1 + ns_len + key_len) pay_len)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception (Sys_error _ | End_of_file) -> None)

(* ------------------------------------------------------------------ *)
(* find / store / evict                                                *)
(* ------------------------------------------------------------------ *)

let touch path =
  (* LRU clock: a hit bumps the entry's mtime so eviction drops the
     least-recently-*used* entry, not the least-recently-written one. *)
  try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let drop t path =
  match Hashtbl.find_opt t.st_sizes path with
  | Some sz ->
      Hashtbl.remove t.st_sizes path;
      t.st_bytes := !(t.st_bytes) - sz
  | None -> ()

let find t ~ns ~key =
  let path = entry_path t ~ns ~key in
  match read_file path with
  | None -> None
  | Some data -> (
      match decode ~ns ~key data with
      | Some payload ->
          touch path;
          Some payload
      | None ->
          (* Corrupt or foreign: remove so the slot heals on next store. *)
          locked t (fun () ->
              drop t path;
              try Sys.remove path with Sys_error _ -> ());
          None)

let evict_locked t =
  if !(t.st_bytes) > t.st_limit then begin
    let aged =
      Hashtbl.fold
        (fun path sz acc ->
          match Unix.stat path with
          | st -> (st.Unix.st_mtime, path, sz) :: acc
          | exception Unix.Unix_error _ ->
              (* Already gone (e.g. another process evicted it). *)
              (neg_infinity, path, sz) :: acc)
        t.st_sizes []
      |> List.sort compare
    in
    List.iter
      (fun (_, path, _) ->
        if !(t.st_bytes) > t.st_limit then begin
          drop t path;
          (try Sys.remove path with Sys_error _ -> ());
          Metrics.evicted ()
        end)
      aged
  end

let store t ~ns ~key payload =
  let path = entry_path t ~ns ~key in
  let data = encode ~ns ~key payload in
  (* Refuse pathological single entries rather than thrash the store. *)
  if String.length data <= t.st_limit then begin
    (try Unix.mkdir (Filename.dirname path) 0o755
     with Unix.Unix_error _ -> ());
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Domain.self () :> int)
    in
    match
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc data);
      Sys.rename tmp path
    with
    | exception Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ())
    | () ->
        locked t (fun () ->
            drop t path;
            Hashtbl.replace t.st_sizes path (String.length data);
            t.st_bytes := !(t.st_bytes) + String.length data;
            evict_locked t;
            Metrics.set_bytes !(t.st_bytes))
  end
