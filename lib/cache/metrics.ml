(* Cache observability: the global counters DESIGN.md §16 documents,
   plus per-namespace tallies for `socet diff-test`'s reused-vs-
   recomputed report.  The per-namespace table is mutex-guarded — fleet
   entries hit the cache from pool domains. *)

module Obs = Socet_obs.Obs

let c_hits = Obs.counter ~scope:"cache" "hits"
let c_misses = Obs.counter ~scope:"cache" "misses"
let c_stores = Obs.counter ~scope:"cache" "stores"
let c_evictions = Obs.counter ~scope:"cache" "evictions"
let g_bytes = Obs.gauge ~scope:"cache" "bytes"

type tally = { mutable t_hits : int; mutable t_misses : int }

let tallies : (string, tally) Hashtbl.t = Hashtbl.create 8
let mu = Mutex.create ()

let tally_of ns =
  match Hashtbl.find_opt tallies ns with
  | Some t -> t
  | None ->
      let t = { t_hits = 0; t_misses = 0 } in
      Hashtbl.replace tallies ns t;
      t

let hit ns =
  Obs.incr c_hits;
  Mutex.lock mu;
  (tally_of ns).t_hits <- (tally_of ns).t_hits + 1;
  Mutex.unlock mu

let miss ns =
  Obs.incr c_misses;
  Mutex.lock mu;
  (tally_of ns).t_misses <- (tally_of ns).t_misses + 1;
  Mutex.unlock mu

let stored () = Obs.incr c_stores
let evicted () = Obs.incr c_evictions
let set_bytes n = Obs.set_gauge g_bytes n

let scoreboard () =
  Mutex.lock mu;
  let rows =
    Hashtbl.fold (fun ns t acc -> (ns, t.t_hits, t.t_misses) :: acc) tallies []
  in
  Mutex.unlock mu;
  List.sort compare rows

let reset_scoreboard () =
  Mutex.lock mu;
  Hashtbl.reset tallies;
  Mutex.unlock mu
