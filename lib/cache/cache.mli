(** Content-addressed persistent result cache — the engine-facing facade
    (DESIGN.md §16).

    Engines key their expensive artifacts by canonical content hashes
    ({!Socet_netlist.Structhash} for netlists, RTL renderings for cores)
    and call {!find}/{!store}/{!memo} with a namespace and key; the CLI
    and the serve dispatcher decide {e whether} a store is active
    ([--cache DIR], the wire protocol's cache field).  With no active
    store every entry point is a no-op, so un-cached runs pay one atomic
    load per hook.

    Contract: a cached artifact is byte-identical to what the engine
    would recompute — namespaces embed a format version, keys pin every
    input that can influence the result, and the replay oracles
    ({!Socet_core.Replay}, {!Socet_tam.Replay}) keep running against
    cached results.  Observability: [cache.{hits,misses,stores,
    evictions}] counters and the [cache.bytes] gauge. *)

val set_active : Store.t option -> unit
val active_store : unit -> Store.t option
val enabled : unit -> bool

val with_store : Store.t option -> (unit -> 'a) -> 'a
(** Run the thunk with the given store active, restoring the previous
    one after — the serve dispatcher's per-request scoping. *)

val open_dir :
  ?limit_bytes:int -> string -> (Store.t, Socet_util.Error.t) result

val activate_dir :
  ?limit_bytes:int -> string -> (unit, Socet_util.Error.t) result
(** {!open_dir} + {!set_active}: the CLI's [--cache DIR] validation
    (create-if-missing, reject unwritable — structured error, exit 3). *)

val find : ns:string -> key:string -> 'a option
(** Marshal-typed lookup in the active store; [None] when no store is
    active, on absence, or on any integrity failure.  Type safety is by
    namespace convention: the [ns] string embeds a format version bumped
    with the marshaled type, so stale stores miss instead of decoding
    garbage. *)

val store : ns:string -> key:string -> 'a -> unit
(** Store a plain-data value (no closures or custom blocks) in the
    active store; a no-op without one. *)

val memo : ns:string -> key:string -> (unit -> 'a) -> 'a
(** [find] or compute-and-[store]. *)

val scoreboard : unit -> (string * int * int) list
(** Per-namespace [(ns, hits, misses)] since the last reset, sorted —
    the raw material of [socet diff-test]'s reused-vs-recomputed
    report. *)

val reset_scoreboard : unit -> unit

val bytes_used : unit -> int
(** Tracked size of the active store (0 without one). *)
