(** The on-disk half of the result cache: a bounded, LRU-evicted,
    checksummed entry store.

    Layout: one directory per namespace under the store root, one file
    per entry named by the MD5 of its key.  Every entry file carries a
    magic string, the full namespace and key (verified on read — a
    hash-bucket collision is detected, not trusted), the payload, and a
    trailing MD5 over everything before it.  Any deviation — truncation,
    bit rot, a foreign file — reads as a miss and the file is removed;
    corruption never crashes or poisons a run.

    Writes go to a temp file and are renamed into place, so concurrent
    readers (pool domains, forked serve workers, parallel CLI runs
    sharing a directory) see complete entries or nothing.  Eviction is
    least-recently-used via entry mtimes: a hit re-touches the file, and
    a store that pushes the tracked total over the byte limit deletes
    oldest-first until back under. *)

type t

val default_limit_bytes : int
(** 256 MiB, overridable via [SOCET_CACHE_LIMIT_MB]. *)

val open_store :
  ?limit_bytes:int -> string -> (t, Socet_util.Error.t) result
(** Open (creating if missing) a store rooted at the directory.  Fails
    with a structured [Validation] error — the CLI's documented exit
    code 3 — when the path exists but is not a directory, cannot be
    created, or is not writable. *)

val find : t -> ns:string -> key:string -> string option
(** The payload stored under (ns, key), or [None] on absence or any
    integrity failure.  A hit refreshes the entry's LRU position. *)

val store : t -> ns:string -> key:string -> string -> unit
(** Write an entry (atomically), then evict LRU entries while the store
    exceeds its byte limit.  I/O errors are swallowed: a cache that
    cannot write behaves like a cache that forgets. *)

val bytes_used : t -> int
(** Tracked total entry bytes (this process's view). *)

val dir : t -> string
val limit_bytes : t -> int
