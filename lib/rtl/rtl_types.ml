type range = { lsb : int; msb : int }

let range_width r = r.msb - r.lsb + 1
let full w = { lsb = 0; msb = w - 1 }

let bits lsb msb =
  if lsb > msb || lsb < 0 then
    Socet_util.Error.raisef ~engine:"rtl"
      ~ctx:[ ("lsb", string_of_int lsb); ("msb", string_of_int msb) ]
      "bits: empty or negative range [%d:%d]" msb lsb;
  { lsb; msb }

let range_equal a b = a.lsb = b.lsb && a.msb = b.msb
let ranges_overlap a b = a.lsb <= b.msb && b.lsb <= a.msb

let pp_range fmt r =
  if r.lsb = r.msb then Format.fprintf fmt "[%d]" r.lsb
  else Format.fprintf fmt "[%d:%d]" r.msb r.lsb

type ep_base = Eport of string | Ereg of string

type endpoint = { base : ep_base; range : range }

let ep_name e = match e.base with Eport s -> s | Ereg s -> s

let pp_endpoint fmt e =
  let prefix = match e.base with Eport _ -> "" | Ereg _ -> "$" in
  Format.fprintf fmt "%s%s%a" prefix (ep_name e) pp_range e.range

type logic_fn =
  | Fadd of endpoint
  | Fsub of endpoint
  | Fand of endpoint
  | Fxor of endpoint
  | Finc
  | Fnot
  | Fdec7seg
  | Fparity

let logic_fn_out_width fn in_width =
  match fn with
  | Fadd _ | Fsub _ | Fand _ | Fxor _ | Finc | Fnot -> in_width
  | Fdec7seg -> 7
  | Fparity -> 1

type path_kind = Direct | Mux of int | Logic of logic_fn

type transfer = { t_src : endpoint; t_dst : endpoint; t_kind : path_kind }

let pp_transfer fmt t =
  let kind =
    match t.t_kind with
    | Direct -> "direct"
    | Mux c -> Printf.sprintf "mux(ctrl=%d)" c
    | Logic _ -> "logic"
  in
  Format.fprintf fmt "%a -> %a (%s)" pp_endpoint t.t_src pp_endpoint t.t_dst kind
