open Rtl_types

type port = { p_name : string; p_dir : [ `In | `Out ]; p_width : int }
type reg = { r_name : string; r_width : int }

type t = {
  c_name : string;
  mutable c_ports : port list;      (* reversed *)
  mutable c_regs : reg list;        (* reversed *)
  mutable c_transfers : transfer list; (* reversed *)
}

let create c_name = { c_name; c_ports = []; c_regs = []; c_transfers = [] }
let name t = t.c_name

let fail t fmt =
  Printf.ksprintf
    (fun s ->
      raise
        (Socet_util.Error.Socet_error
           (Socet_util.Error.make ~kind:Socet_util.Error.Validation
              ~engine:"rtl" ~ctx:[ ("core", t.c_name) ] s)))
    fmt

let check_fresh t n =
  if List.exists (fun p -> p.p_name = n) t.c_ports
     || List.exists (fun r -> r.r_name = n) t.c_regs
  then fail t "duplicate name %s" n

let add_input t n w =
  check_fresh t n;
  if w <= 0 then fail t "port %s: width must be positive" n;
  t.c_ports <- { p_name = n; p_dir = `In; p_width = w } :: t.c_ports

let add_output t n w =
  check_fresh t n;
  if w <= 0 then fail t "port %s: width must be positive" n;
  t.c_ports <- { p_name = n; p_dir = `Out; p_width = w } :: t.c_ports

let add_reg t n w =
  check_fresh t n;
  if w <= 0 then fail t "register %s: width must be positive" n;
  t.c_regs <- { r_name = n; r_width = w } :: t.c_regs

let add_transfer t ?(kind = Mux 1) ~src ~dst () =
  t.c_transfers <- { t_src = src; t_dst = dst; t_kind = kind } :: t.c_transfers

let find_port t n =
  match List.find_opt (fun p -> p.p_name = n) t.c_ports with
  | Some p -> p
  | None -> raise Not_found

let find_reg t n =
  match List.find_opt (fun r -> r.r_name = n) t.c_regs with
  | Some r -> r
  | None -> raise Not_found

let reg t n =
  let r = try find_reg t n with Not_found -> fail t "unknown register %s" n in
  { base = Ereg n; range = full r.r_width }

let port t n =
  let p = try find_port t n with Not_found -> fail t "unknown port %s" n in
  { base = Eport n; range = full p.p_width }

let reg_bits t n lsb msb =
  ignore (try find_reg t n with Not_found -> fail t "unknown register %s" n);
  { base = Ereg n; range = bits lsb msb }

let port_bits t n lsb msb =
  ignore (try find_port t n with Not_found -> fail t "unknown port %s" n);
  { base = Eport n; range = bits lsb msb }

let ports t = List.rev t.c_ports
let inputs t = List.filter (fun p -> p.p_dir = `In) (ports t)
let outputs t = List.filter (fun p -> p.p_dir = `Out) (ports t)
let regs t = List.rev t.c_regs
let transfers t = List.rev t.c_transfers

let ep_width t e =
  let declared =
    match e.base with
    | Eport n -> (try (find_port t n).p_width with Not_found -> fail t "unknown port %s" n)
    | Ereg n -> (try (find_reg t n).r_width with Not_found -> fail t "unknown register %s" n)
  in
  if e.range.msb >= declared then
    fail t "endpoint %s%s exceeds declared width %d" (ep_name e)
      (Format.asprintf "%a" pp_range e.range)
      declared;
  range_width e.range

let validate t =
  List.iter
    (fun tr ->
      let sw = ep_width t tr.t_src and dw = ep_width t tr.t_dst in
      (match tr.t_src.base with
      | Eport n ->
          if (find_port t n).p_dir <> `In then
            fail t "transfer source %s is not an input port" n
      | Ereg _ -> ());
      (match tr.t_dst.base with
      | Eport n ->
          if (find_port t n).p_dir <> `Out then
            fail t "transfer destination %s is not an output port" n
      | Ereg _ -> ());
      let expected =
        match tr.t_kind with
        | Direct | Mux _ -> sw
        | Logic fn -> logic_fn_out_width fn sw
      in
      if expected <> dw then
        fail t "transfer %s: width mismatch (%d -> %d bits)"
          (Format.asprintf "%a" pp_transfer tr)
          expected dw;
      match tr.t_kind with
      | Logic (Fadd op | Fsub op | Fand op | Fxor op) ->
          ignore (ep_width t op)
      | Direct | Mux _ | Logic (Finc | Fnot | Fdec7seg | Fparity) -> ())
    (transfers t)

let reg_bit_count t = List.fold_left (fun acc r -> acc + r.r_width) 0 (regs t)

let input_bit_count t =
  List.fold_left (fun acc p -> acc + p.p_width) 0 (inputs t)

let output_bit_count t =
  List.fold_left (fun acc p -> acc + p.p_width) 0 (outputs t)

let pp fmt t =
  Format.fprintf fmt "@[<v 2>core %s:@," t.c_name;
  List.iter
    (fun p ->
      Format.fprintf fmt "%s %s[%d]@,"
        (match p.p_dir with `In -> "input" | `Out -> "output")
        p.p_name p.p_width)
    (ports t);
  List.iter (fun r -> Format.fprintf fmt "reg %s[%d]@," r.r_name r.r_width) (regs t);
  List.iter (fun tr -> Format.fprintf fmt "%a@," pp_transfer tr) (transfers t);
  Format.fprintf fmt "@]"
