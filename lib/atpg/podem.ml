open Socet_util
open Socet_netlist
module Obs = Socet_obs.Obs
module Cache = Socet_cache.Cache

(* Observability: PODEM's effort is dominated by its decision/backtrack
   loop, so those are the counters every perf PR will watch. *)
let c_faults = Obs.counter ~scope:"atpg" "podem.faults_targeted"

(* The decision/backtrack cells are hammered from inside speculative
   windows, so they are sharded per pool domain slot — increments stay on
   the worker's own cache line, reads sum to the exact total. *)
let c_decisions = Obs.sharded_counter ~scope:"atpg" "podem.decisions"
let c_backtracks = Obs.sharded_counter ~scope:"atpg" "podem.backtracks"
let h_backtracks = Obs.histogram ~scope:"atpg" "podem.backtracks_per_fault"

(* Adaptive-budget telemetry: one escalation per fault per pass that had
   to be retried with a larger backtrack limit (ROADMAP: the
   backtracks_per_fault histogram is bimodal, so most faults never leave
   the cheap first pass). *)
let c_escalations = Obs.counter ~scope:"atpg" "podem.budget_escalations"

type outcome = Test of Bitvec.t | Untestable | Aborted

(* Ternary values: 0, 1, X. *)
type tv = T0 | T1 | TX

let tv_not = function T0 -> T1 | T1 -> T0 | TX -> TX

let tv_and a b =
  match (a, b) with
  | T0, _ | _, T0 -> T0
  | T1, T1 -> T1
  | _ -> TX

let tv_or a b =
  match (a, b) with
  | T1, _ | _, T1 -> T1
  | T0, T0 -> T0
  | _ -> TX

let tv_xor a b =
  match (a, b) with
  | TX, _ | _, TX -> TX
  | x, y -> if x = y then T0 else T1

let tv_mux s a b =
  match s with
  | T0 -> a
  | T1 -> b
  | TX -> if a = b && a <> TX then a else TX

let tv_of_bool b = if b then T1 else T0

(* The five-valued machine state: good and faulty ternary value per net. *)
type machine = { g : tv array; f : tv array }

let eval_tv nl v g =
  let f = Netlist.fanin nl g in
  match Netlist.kind nl g with
  | Cell.Pi | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe -> v.(g)
  | Cell.Const0 -> T0
  | Cell.Const1 -> T1
  | Cell.Buf -> v.(f.(0))
  | Cell.Inv -> tv_not v.(f.(0))
  | Cell.And2 -> tv_and v.(f.(0)) v.(f.(1))
  | Cell.Or2 -> tv_or v.(f.(0)) v.(f.(1))
  | Cell.Nand2 -> tv_not (tv_and v.(f.(0)) v.(f.(1)))
  | Cell.Nor2 -> tv_not (tv_or v.(f.(0)) v.(f.(1)))
  | Cell.Xor2 -> tv_xor v.(f.(0)) v.(f.(1))
  | Cell.Xnor2 -> tv_not (tv_xor v.(f.(0)) v.(f.(1)))
  | Cell.Mux2 -> tv_mux v.(f.(0)) v.(f.(1)) v.(f.(2))

(* Ternary D capture of a flip-flop, per the cell semantics. *)
let capture_tv nl v ff =
  let f = Netlist.fanin nl ff in
  match Netlist.kind nl ff with
  | Cell.Dff -> v.(f.(0))
  | Cell.Dffe -> tv_mux v.(f.(1)) v.(ff) v.(f.(0))
  | Cell.Sdff -> tv_mux v.(f.(2)) v.(f.(0)) v.(f.(1))
  | Cell.Sdffe ->
      let functional = tv_mux v.(f.(1)) v.(ff) v.(f.(0)) in
      tv_mux v.(f.(3)) functional v.(f.(2))
  | _ -> assert false

let generate ?(backtrack_limit = 1000) ?scoap ?budget nl (fault : Fault.t) =
  Obs.incr c_faults;
  let n = Netlist.gate_count nl in
  (* All structural queries below run on the flat form: input index maps
     (pi_of/dff_of), observability bits and the fanout CSR replace the
     per-call Hashtbl and list scans of the original. *)
  let flat = Flat.of_netlist nl in
  let order = flat.Flat.order in
  let npi = Array.length flat.Flat.pis in
  let ninputs = npi + Array.length flat.Flat.dffs in
  let assign = Array.make ninputs TX in
  let m = { g = Array.make n TX; f = Array.make n TX } in
  let stuck = tv_of_bool fault.f_stuck in
  let imply () =
    (* Load input assignments: slot i is PI i for i < npi, flip-flop
       (i - npi) above. *)
    Array.iteri (fun i net -> m.g.(net) <- assign.(i)) flat.Flat.pis;
    Array.iteri (fun i net -> m.g.(net) <- assign.(npi + i)) flat.Flat.dffs;
    Array.iter
      (fun g ->
        let gv = eval_tv nl m.g g in
        m.g.(g) <- gv;
        let fv = if g = fault.f_net then stuck else eval_tv nl m.f g in
        (* Inputs of the faulty machine mirror the good machine. *)
        let fv =
          match Netlist.kind nl g with
          | (Cell.Pi | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe)
            when g <> fault.f_net ->
              gv
          | _ -> fv
        in
        m.f.(g) <- fv)
      order
  in
  let is_d net = m.g.(net) <> TX && m.f.(net) <> TX && m.g.(net) <> m.f.(net) in
  let observable_d () =
    Array.exists is_d flat.Flat.pos_net
    || Array.exists
         (fun ff ->
           let gd = capture_tv nl m.g ff and fd = capture_tv nl m.f ff in
           gd <> TX && fd <> TX && gd <> fd)
         flat.Flat.dffs
  in
  let d_frontier () =
    let res = ref [] in
    Array.iter
      (fun g ->
        match Netlist.kind nl g with
        | Cell.Pi | Cell.Const0 | Cell.Const1 | Cell.Dff | Cell.Dffe | Cell.Sdff
        | Cell.Sdffe ->
            ()
        | _ ->
            if (m.g.(g) = TX || m.f.(g) = TX)
               && Array.exists is_d (Netlist.fanin nl g)
            then res := g :: !res)
      order;
    List.rev !res
  in
  (* X-path check: can a D on the frontier still reach an observation
     point through X-valued nets? *)
  let x_path_exists frontier =
    let seen = Array.make n false in
    let queue = Queue.create () in
    List.iter
      (fun g ->
        seen.(g) <- true;
        Queue.add g queue)
      frontier;
    let found = ref false in
    let fo_off = flat.Flat.fanout_off and fo = flat.Flat.fanout in
    while (not !found) && not (Queue.is_empty queue) do
      let g = Queue.pop queue in
      if flat.Flat.is_obs.(g) then found := true
      else
        for j = fo_off.(g) to fo_off.(g + 1) - 1 do
          let h = fo.(j) in
          if (not seen.(h))
             && flat.Flat.kinds.(h) < Flat.k_dff
             && (m.g.(h) = TX || m.f.(h) = TX)
          then begin
            seen.(h) <- true;
            Queue.add h queue
          end
        done
    done;
    !found
  in
  (* Fault effect can also still be unactivated but activatable. *)
  let site_ok () =
    match m.g.(fault.f_net) with
    | TX -> true
    | v -> v <> stuck
  in
  (* SCOAP guidance: cheapest controllability for a wanted value, most
     observable D-frontier gate. *)
  let cc net v =
    match (scoap, v) with
    | Some (s : Scoap.t), T0 -> s.Scoap.cc0.(net)
    | Some s, T1 -> s.Scoap.cc1.(net)
    | _ -> 0
  in
  let frontier_rank g =
    match scoap with Some (s : Scoap.t) -> s.Scoap.co.(g) | None -> 0
  in
  let objective () =
    if m.g.(fault.f_net) = TX then Some (fault.f_net, tv_not stuck)
    else
      match
        List.sort (fun a b -> compare (frontier_rank a) (frontier_rank b))
          (d_frontier ())
      with
      | [] -> None
      | gate :: _ ->
          let fanin = Netlist.fanin nl gate in
          let xpins =
            Array.to_list fanin |> List.filter (fun p -> m.g.(p) = TX)
          in
          (match xpins with
          | [] -> None
          | pin :: _ ->
              let v =
                match Netlist.kind nl gate with
                | Cell.And2 | Cell.Nand2 -> T1
                | Cell.Or2 | Cell.Nor2 -> T0
                | Cell.Mux2 ->
                    if pin = fanin.(0) then
                      (* Select the data input carrying the D. *)
                      if is_d fanin.(1) then T0 else T1
                    else T1
                | _ -> T1
              in
              Some (pin, v))
  in
  let input_index net =
    if flat.Flat.pi_of.(net) >= 0 then Some flat.Flat.pi_of.(net)
    else if flat.Flat.dff_of.(net) >= 0 then Some (npi + flat.Flat.dff_of.(net))
    else None
  in
  let rec backtrace net v =
    match input_index net with
    | Some i -> if assign.(i) = TX then Some (i, v) else None
    | None -> (
        let fanin = Netlist.fanin nl net in
        (* Among the unassigned fanins, prefer the one SCOAP deems easiest
           to drive to the value this branch will request. *)
        let pick_x_for target =
          Array.to_list fanin
          |> List.filter (fun p -> m.g.(p) = TX)
          |> List.sort (fun a b -> compare (cc a target) (cc b target))
          |> function [] -> None | p :: _ -> Some p
        in
        let pick_x () = pick_x_for v in
        ignore pick_x;
        match Netlist.kind nl net with
        | Cell.Buf -> backtrace fanin.(0) v
        | Cell.Inv -> backtrace fanin.(0) (tv_not v)
        | Cell.And2 | Cell.Or2 -> (
            match pick_x_for v with Some p -> backtrace p v | None -> None)
        | Cell.Nand2 | Cell.Nor2 -> (
            match pick_x_for (tv_not v) with
            | Some p -> backtrace p (tv_not v)
            | None -> None)
        | Cell.Xor2 | Cell.Xnor2 -> (
            match pick_x_for v with Some p -> backtrace p v | None -> None)
        | Cell.Mux2 ->
            if m.g.(fanin.(1)) = TX then backtrace fanin.(1) v
            else if m.g.(fanin.(2)) = TX then backtrace fanin.(2) v
            else if m.g.(fanin.(0)) = TX then
              backtrace fanin.(0) (if m.g.(fanin.(1)) = v then T0 else T1)
            else None
        | _ -> None)
  in
  (* Decision stack: (input index, value, flipped already?). *)
  let stack = ref [] in
  let backtracks = ref 0 in
  let result = ref None in
  imply ();
  while !result = None do
    if (match budget with Some b -> not (Budget.spend b) | None -> false) then
      (* Fuel or deadline gone mid-search: degrade to Aborted so the
         caller's ladder (D-alg retry, random top-off) can take over. *)
      result := Some Aborted
    else if observable_d () then begin
      let vec = Bitvec.create ninputs in
      Array.iteri (fun i v -> if v = T1 then Bitvec.set vec i true) assign;
      result := Some (Test vec)
    end
    else begin
      let frontier = d_frontier () in
      let dead =
        (not (site_ok ()))
        || (m.g.(fault.f_net) <> TX && frontier = [])
        || (frontier <> [] && not (x_path_exists frontier))
      in
      let next_decision =
        if dead then None
        else
          match objective () with
          | None -> None
          | Some (net, v) -> backtrace net v
      in
      match next_decision with
      | Some (i, v) ->
          Obs.sincr c_decisions;
          assign.(i) <- v;
          stack := (i, v, false) :: !stack;
          imply ()
      | None ->
          (* Backtrack. *)
          incr backtracks;
          Obs.sincr c_backtracks;
          if !backtracks > backtrack_limit then result := Some Aborted
          else begin
            let rec pop () =
              match !stack with
              | [] -> result := Some Untestable
              | (i, v, flipped) :: rest ->
                  if flipped then begin
                    assign.(i) <- TX;
                    stack := rest;
                    pop ()
                  end
                  else begin
                    let v' = tv_not v in
                    assign.(i) <- v';
                    stack := (i, v', true) :: rest
                  end
            in
            pop ();
            if !result = None then imply ()
          end
    end
  done;
  Obs.observe h_backtracks (float_of_int !backtracks);
  match !result with Some r -> r | None -> assert false

type stats = {
  vectors : Bitvec.t list;
  detected : Fault.t list;
  redundant : Fault.t list;
  aborted : Fault.t list;
  total_faults : int;
  coverage : float;
  efficiency : float;
}

(* Persistent-cache key: the netlist's canonical structural hash plus
   every engine parameter that can change the result.  Budgeted runs are
   never cached — a deadline can truncate the determ phase anywhere, so
   their output is not a pure function of the key. *)
let cache_key ~backtrack_limit ~random_patterns ~seed ~use_scoap nl =
  Printf.sprintf "%s|bt=%d|rp=%d|seed=%d|scoap=%b"
    (Structhash.netlist nl) backtrack_limit random_patterns seed use_scoap

let run_uncached ?(backtrack_limit = 1000) ?(random_patterns = 64) ?(seed = 42)
    ?(use_scoap = true) ?budget nl =
  Obs.with_span ~cat:"atpg" "podem.run" @@ fun () ->
  let scoap = if use_scoap then Some (Scoap.compute nl) else None in
  let faults = Fault.collapse nl in
  let total = List.length faults in
  let rng = Rng.create seed in
  let veclen = Fsim.vector_length nl in
  let vectors = ref [] in
  let remaining = ref faults in
  let detected = ref [] in
  (* Phase 1: random patterns with fault dropping. *)
  if random_patterns > 0 && veclen > 0 then
    Obs.with_span ~cat:"atpg" "podem.random_phase" (fun () ->
        let random_vecs =
          List.init random_patterns (fun _ -> Rng.bitvec rng veclen)
        in
        let hit = Fsim.run_comb nl ~vectors:random_vecs ~faults:!remaining in
        (* Keep only the random vectors that contribute; cheap pre-compaction. *)
        let contributing =
          Compact.reverse_order nl ~vectors:random_vecs ~faults:hit
        in
        vectors := contributing;
        detected := hit;
        remaining :=
          List.filter (fun f -> not (List.exists (Fault.equal f) hit)) !remaining);
  (* Phase 2: deterministic PODEM with fault dropping and an adaptive
     backtrack budget.  The backtracks_per_fault histogram is bimodal
     (p50 around 5, p99 at the limit), so a small first-pass limit covers
     the easy mode cheaply; faults that abort are pushed to the end of the
     queue and retried with the limit multiplied, up to the caller's
     [backtrack_limit].  The final pass runs at exactly [backtrack_limit],
     so the aborted set is the same one a flat run would produce — only
     the wasted effort on hard faults moves. *)
  let redundant = ref [] and aborted = ref [] in
  let budget_alive () =
    match budget with None -> true | Some b -> not (Budget.exhausted b)
  in
  let determ () =
    (* Speculative windows: [generate] is a pure function of
       (netlist, fault, limit, scoap), so a prefix of the queue can be
       searched in parallel and the outcomes consumed in queue order.
       Consuming replays the sequential engine exactly — a window fault
       collaterally dropped by an earlier Test vector is no longer at
       the queue head when its slot comes up, and its speculative
       outcome is simply discarded.  Since the pass limit is constant
       within a window, surviving outcomes are the ones the serial
       engine would have computed, so vectors/detected/redundant/
       aborted are bit-identical at any domain count; only the wasted
       speculation (and its decision/backtrack counters) varies. *)
    if Netlist.gate_count nl > 0 then begin
      (* Warm the netlist's lazily-built shared caches on the submitting
         domain; window workers then only read them. *)
      ignore (Netlist.comb_order nl);
      ignore (Netlist.fanout nl 0)
    end;
    let window_size =
      (* Budgeted runs stay serial: the fuse is checked inside [generate],
         so parallel speculation would make the abort point timing-
         dependent. *)
      if budget <> None || Pool.size () = 1 then 1 else 4 * Pool.size ()
    in
    let rec take k xs =
      if k = 0 then [] else match xs with [] -> [] | x :: tl -> x :: take (k - 1) tl
    in
    let limit = ref (min 32 backtrack_limit) in
    let queue = ref !remaining in
    let stop = ref false in
    while not !stop do
      let retry = ref [] in
      let pass_on = ref true in
      while !pass_on do
        match !queue with
        | [] -> pass_on := false
        | _ when not (budget_alive ()) ->
            (* Out of fuel/deadline: everything still queued is aborted;
               vectors found so far remain valid. *)
            aborted := !queue @ !retry @ !aborted;
            retry := [];
            queue := [];
            pass_on := false;
            stop := true
        | _ ->
            let win = Array.of_list (take window_size !queue) in
            let outcomes =
              if Array.length win <= 1 then
                Array.map
                  (fun f -> generate ~backtrack_limit:!limit ?scoap ?budget nl f)
                  win
              else
                Pool.parallel_map ~chunk:1
                  (fun f -> generate ~backtrack_limit:!limit ?scoap nl f)
                  win
            in
            Array.iteri
              (fun i f ->
                match !queue with
                | g :: rest when Fault.equal g f -> (
                    queue := rest;
                    match outcomes.(i) with
                    | Untestable -> redundant := f :: !redundant
                    | Aborted -> retry := f :: !retry
                    | Test vec ->
                        detected := f :: !detected;
                        let extra =
                          Fsim.run_comb nl ~vectors:[ vec ] ~faults:!queue
                        in
                        detected := extra @ !detected;
                        queue :=
                          List.filter
                            (fun f' ->
                              not (List.exists (Fault.equal f') extra))
                            !queue;
                        vectors := vec :: !vectors)
                | _ ->
                    (* Collaterally dropped earlier in this window; the
                       speculative outcome is discarded. *)
                    ())
              win
      done;
      if not !stop then begin
        match !retry with
        | [] -> stop := true
        | rs when !limit >= backtrack_limit ->
            aborted := rs @ !aborted;
            stop := true
        | rs ->
            Obs.add c_escalations (List.length rs);
            limit := min (!limit * 8) backtrack_limit;
            queue := List.rev rs
      end
    done
  in
  Obs.with_span ~cat:"atpg" "podem.determ_phase" determ;
  let final_vectors =
    Compact.reverse_order nl ~vectors:(List.rev !vectors) ~faults:!detected
  in
  (* Re-measure against the full fault list: compaction keeps the coverage
     of the deterministic run, and the kept vectors may collaterally catch
     faults the search had to abort on. *)
  let final_detected = Fsim.run_comb nl ~vectors:final_vectors ~faults in
  let aborted =
    List.filter
      (fun f -> not (List.exists (Fault.equal f) final_detected))
      !aborted
  in
  let ndet = List.length final_detected and nred = List.length !redundant in
  {
    vectors = final_vectors;
    detected = final_detected;
    redundant = !redundant;
    aborted;
    total_faults = total;
    coverage = (if total = 0 then 0.0 else 100.0 *. float_of_int ndet /. float_of_int total);
    efficiency =
      (if total = 0 then 0.0
       else 100.0 *. float_of_int (ndet + nred) /. float_of_int total);
  }

(* The public entry: serve the whole stats record from the persistent
   cache when one is active and the run is un-budgeted.  The namespace
   version ("podem1") pins the marshaled [stats] shape; the key pins the
   netlist content and every parameter above.  A cached record is the
   bit-for-bit result of an identical cold run, so callers (vector
   counts, schedule periods, coverage tables) cannot observe the
   difference. *)
let run ?(backtrack_limit = 1000) ?(random_patterns = 64) ?(seed = 42)
    ?(use_scoap = true) ?budget nl =
  match budget with
  | Some _ ->
      run_uncached ~backtrack_limit ~random_patterns ~seed ~use_scoap ?budget nl
  | None when Cache.enabled () ->
      Cache.memo ~ns:"podem1"
        ~key:(cache_key ~backtrack_limit ~random_patterns ~seed ~use_scoap nl)
        (fun () ->
          run_uncached ~backtrack_limit ~random_patterns ~seed ~use_scoap nl)
  | None -> run_uncached ~backtrack_limit ~random_patterns ~seed ~use_scoap nl
