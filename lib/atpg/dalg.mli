(** The D-algorithm (Roth 1966) — deterministic ATPG that, unlike PODEM,
    makes decisions on internal lines: the fault effect is driven toward
    an observation point through D-frontier choices while a J-frontier of
    pending line justifications is discharged through the gates' singular
    covers.  Both engines work on the same full-scan combinational test
    model, so their outcomes are directly comparable (the test suite
    cross-checks them fault by fault). *)

open Socet_util
open Socet_netlist

type outcome =
  | Test of Bitvec.t  (** detecting vector in {!Fsim.vector} layout *)
  | Untestable
      (** no test exists {e under single-path sensitization}: this
          implementation drives the fault effect through one D-frontier
          gate at a time, so faults requiring multiple simultaneously
          sensitized paths are reported untestable even though PODEM may
          find a test — the classic completeness gap of the original
          D-algorithm formulation.  [Test] results are always sound (the
          suite re-simulates every one). *)
  | Aborted

val generate :
  ?decision_limit:int -> ?budget:Budget.t -> Netlist.t -> Fault.t -> outcome
(** [decision_limit] (default 20000) bounds the total decisions tried
    before giving up with [Aborted].  With [budget], every decision also
    spends one unit and exhaustion aborts the search. *)

type stats = {
  detected : int;
  redundant : int;
  aborted : int;
  total : int;
  coverage : float;
  efficiency : float;
}

val run :
  ?decision_limit:int -> ?sample:int -> ?budget:Budget.t -> Netlist.t -> stats
(** Plain per-fault run (no random phase, no compaction) — meant for
    comparing search behaviour against {!Podem}.  [sample] (default 1)
    processes every [sample]-th collapsed fault, for quick sweeps of large
    netlists.  With [budget], faults past the point of exhaustion count as
    aborted. *)
