(** Stuck-at fault simulation.

    Two engines:
    - {!run_comb}: pattern-parallel single-fault simulation of the
      {e full-scan combinational test model}: flip-flop outputs are treated
      as extra (pseudo) inputs and flip-flop D-captures as extra (pseudo)
      outputs — the model under which scan vectors are applied;
    - {!run_seq}: fault-parallel simulation of the unscanned sequential
      machine over an input sequence from the all-zero reset state — used
      for the paper's "Orig." and "HSCAN-only" coverage rows.

    Both run on the flat struct-of-arrays kernel ({!Socet_netlist.Flat})
    compiled once per netlist.  The pre-flat list/Hashtbl engine survives
    as {!run_comb_ref}/{!run_seq_ref}, the oracle the equivalence suite
    checks the kernel against byte for byte. *)

open Socet_util
open Socet_netlist

type vector = Bitvec.t
(** A full-scan test vector: primary-input bits (in [Netlist.pis] order)
    followed by flip-flop bits (in [Netlist.dffs] order). *)

val vector_length : Netlist.t -> int

val split_vector : Netlist.t -> vector -> Bitvec.t * Bitvec.t
(** PI part and flip-flop part. *)

val run_comb :
  Netlist.t -> vectors:vector list -> faults:Fault.t list -> Fault.t list
(** Faults from [faults] detected by at least one vector (fault dropping:
    each fault is simulated only until first detection).

    Coarse-grained parallel: the good circuit of every word batch is
    evaluated first on the submitting domain, then the fault list is
    partitioned once across the {!Socet_util.Pool} domains and each
    domain simulates its whole fault shard against all batches — its
    stamp-validated sparse overlay and cone walks stay domain-private
    for the entire call instead of being re-fanned-out per batch.  A
    fault evaluation is event-driven: only the fault site's
    combinational fanout cone is recomputed over the shared good-circuit
    words, and only the POs and D-captures the cone reaches are diffed.
    Cones are cached on the compiled form for the life of the netlist —
    [atpg.fsim.cone_cache_misses] counts constructions,
    [atpg.fsim.cone_cache_hits] reuses.  Detections are merged in
    (first-detecting batch, fault) order — the fault-dropping engine's
    order — so the result is byte-identical at any domain count. *)

val detects_comb : Netlist.t -> vector -> Fault.t -> bool
(** Does this single vector detect this single fault? *)

val run_seq :
  Netlist.t -> inputs:Bitvec.t list -> faults:Fault.t list -> Fault.t list
(** Applies the PI sequence cycle by cycle from the all-zero state and
    returns the faults whose machine differs from the good machine at a
    primary output in some cycle.  Faults are simulated in word-sized
    groups, each carrying its own good machine in the top word slot;
    the groups are independent, so each {!Socet_util.Pool} domain runs
    whole groups end to end with private masks, value array and state.
    Caught lists are merged in group submission order — byte-identical
    at any domain count. *)

(** {1 Legacy reference engine}

    The original list/Hashtbl implementation, retained verbatim as an
    independent single-threaded oracle.  [test/test_fsim_flat.ml] proves
    {!run_comb}/{!run_seq} byte-identical to these on random SOCs, and
    the bench's [fsim_kernel] section measures the kernel speedup against
    them.  Not used by the pipeline. *)

val run_comb_ref :
  Netlist.t -> vectors:vector list -> faults:Fault.t list -> Fault.t list

val run_seq_ref :
  Netlist.t -> inputs:Bitvec.t list -> faults:Fault.t list -> Fault.t list

val eval_words_ref :
  Netlist.t ->
  pi:int array ->
  state:int array ->
  inject:(int -> int -> int) ->
  int array
(** The pre-flat {!Socet_netlist.Sim.eval_words} (per-call Hashtbls and
    all), for checking the flat evaluator word for word. *)

val po_words_ref : Netlist.t -> int array -> int array
val next_state_words_ref : Netlist.t -> int array -> int array
