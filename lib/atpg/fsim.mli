(** Stuck-at fault simulation.

    Two engines:
    - {!run_comb}: pattern-parallel single-fault simulation of the
      {e full-scan combinational test model}: flip-flop outputs are treated
      as extra (pseudo) inputs and flip-flop D-captures as extra (pseudo)
      outputs — the model under which scan vectors are applied;
    - {!run_seq}: fault-parallel simulation of the unscanned sequential
      machine over an input sequence from the all-zero reset state — used
      for the paper's "Orig." and "HSCAN-only" coverage rows. *)

open Socet_util
open Socet_netlist

type vector = Bitvec.t
(** A full-scan test vector: primary-input bits (in [Netlist.pis] order)
    followed by flip-flop bits (in [Netlist.dffs] order). *)

val vector_length : Netlist.t -> int

val split_vector : Netlist.t -> vector -> Bitvec.t * Bitvec.t
(** PI part and flip-flop part. *)

val run_comb :
  Netlist.t -> vectors:vector list -> faults:Fault.t list -> Fault.t list
(** Faults from [faults] detected by at least one vector (fault dropping:
    each fault is simulated only until first detection).

    Per word batch the remaining faults are evaluated in parallel across
    the {!Socet_util.Pool} domains (shared read-only good-circuit words,
    one reusable scratch array per domain, fanout cones precomputed per
    fault site — [atpg.fsim.cone_cache_hits]); detections are merged in
    fault order, so the result is identical at any domain count. *)

val detects_comb : Netlist.t -> vector -> Fault.t -> bool
(** Does this single vector detect this single fault? *)

val run_seq :
  Netlist.t -> inputs:Bitvec.t list -> faults:Fault.t list -> Fault.t list
(** Applies the PI sequence cycle by cycle from the all-zero state and
    returns the faults whose machine differs from the good machine at a
    primary output in some cycle.  Faults are simulated in word-sized
    groups, all sharing the good machine evaluation. *)
