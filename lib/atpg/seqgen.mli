(** Sequential (non-scan) test generation by random simulation.

    Stand-in for the paper's in-house sequential ATPG, used only for the
    "Orig." and "HSCAN-only" rows of Table 3, whose purpose is to show that
    an SOC without chip-level DFT has very poor fault coverage.  Random
    sequences from the reset state reproduce exactly that behaviour. *)

open Socet_util
open Socet_netlist

type stats = {
  cycles : int;
  total_faults : int;
  detected : int;
  coverage : float;    (** percent *)
  efficiency : float;  (** percent; equals coverage here, as random search
                           proves no fault untestable *)
}

val sequence :
  ?cycles:int -> ?hold:int -> ?seed:int -> Netlist.t -> Bitvec.t list
(** The raw stimulus [random] simulates: [cycles] primary-input vectors,
    a fresh random one drawn every [hold] cycles and held in between.
    Deterministic in [seed]; exposed so tests can replay the exact
    sequence through {!Fsim.run_seq} and its reference engine. *)

val random : ?cycles:int -> ?hold:int -> ?seed:int -> Netlist.t -> stats
(** [cycles] (default 512) clock cycles of stimulus from the all-zero
    reset state; a fresh random vector is drawn every [hold] cycles
    (default 8) and held in between, approximating functional operation of
    opcode-driven cores. *)
