open Socet_util
open Socet_netlist
module Obs = Socet_obs.Obs

let c_faults = Obs.counter ~scope:"atpg" "dalg.faults_targeted"
let c_decisions = Obs.counter ~scope:"atpg" "dalg.decisions"
let g_frontier_peak = Obs.gauge ~scope:"atpg" "dalg.d_frontier_peak"
let h_frontier = Obs.histogram ~scope:"atpg" "dalg.d_frontier_size"

type outcome = Test of Bitvec.t | Untestable | Aborted

(* Composite five-valued logic: value in the good machine / faulty
   machine. *)
type v5 = Zero | One | D | Db | X

type tri = T0 | T1 | TX

let good = function Zero -> T0 | One -> T1 | D -> T1 | Db -> T0 | X -> TX
let faulty = function Zero -> T0 | One -> T1 | D -> T0 | Db -> T1 | X -> TX

let compose g f =
  match (g, f) with
  | T0, T0 -> Zero
  | T1, T1 -> One
  | T1, T0 -> D
  | T0, T1 -> Db
  | TX, _ | _, TX -> X

let t_not = function T0 -> T1 | T1 -> T0 | TX -> TX

let t_and a b =
  match (a, b) with T0, _ | _, T0 -> T0 | T1, T1 -> T1 | _ -> TX

let t_or a b = t_not (t_and (t_not a) (t_not b))
let t_xor a b = match (a, b) with TX, _ | _, TX -> TX | x, y -> if x = y then T0 else T1

let t_mux s a b =
  match s with T0 -> a | T1 -> b | TX -> if a = b && a <> TX then a else TX

let neg = function Zero -> One | One -> Zero | D -> Db | Db -> D | X -> X

exception Conflict
exception Give_up

let generate ?(decision_limit = 20_000) ?budget nl (fault : Fault.t) =
  Obs.incr c_faults;
  let n = Netlist.gate_count nl in
  let v = Array.make n X in
  let flat = Flat.of_netlist nl in
  let order = flat.Flat.order in
  let is_input g =
    match Netlist.kind nl g with
    | Cell.Pi | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe | Cell.Const0
    | Cell.Const1 ->
        true
    | _ -> false
  in
  let stuck_tri = if fault.f_stuck then T1 else T0 in
  (* Forward evaluation of one gate from current values, with the fault
     site's faulty plane pinned to the stuck value. *)
  let eval_raw g =
    let f = Netlist.fanin nl g in
    let per_plane proj =
      let i k = proj v.(f.(k)) in
      match Netlist.kind nl g with
      | Cell.Pi | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe -> proj v.(g)
      | Cell.Const0 -> T0
      | Cell.Const1 -> T1
      | Cell.Buf -> i 0
      | Cell.Inv -> t_not (i 0)
      | Cell.And2 -> t_and (i 0) (i 1)
      | Cell.Nand2 -> t_not (t_and (i 0) (i 1))
      | Cell.Or2 -> t_or (i 0) (i 1)
      | Cell.Nor2 -> t_not (t_or (i 0) (i 1))
      | Cell.Xor2 -> t_xor (i 0) (i 1)
      | Cell.Xnor2 -> t_not (t_xor (i 0) (i 1))
      | Cell.Mux2 -> t_mux (i 0) (i 1) (i 2)
    in
    compose (per_plane good) (per_plane faulty)
  in
  let eval_net g =
    let raw = eval_raw g in
    if g = fault.f_net then compose (good raw) stuck_tri else raw
  in
  (* Assignment trail for chronological backtracking. *)
  let trail = ref [] in
  let assign g value =
    if v.(g) = X then begin
      v.(g) <- value;
      trail := g :: !trail
    end
    else if v.(g) <> value then raise Conflict
  in
  let mark () = List.length !trail in
  let undo_to m =
    while List.length !trail > m do
      match !trail with
      | g :: rest ->
          v.(g) <- X;
          trail := rest
      | [] -> ()
    done
  in
  (* Forward implication to fixpoint. *)
  let imply () =
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun g ->
          if not (is_input g) then begin
            let value = eval_net g in
            if value <> X then
              if v.(g) = X then begin
                assign g value;
                changed := true
              end
              else if v.(g) <> value then raise Conflict
          end)
        order
    done
  in
  (* Observation: a composite error at a PO or a flip-flop capture. *)
  let capture ff =
    let f = Netlist.fanin nl ff in
    let plane proj =
      let i k = proj v.(f.(k)) in
      match Netlist.kind nl ff with
      | Cell.Dff -> i 0
      | Cell.Dffe -> t_mux (i 1) (proj v.(ff)) (i 0)
      | Cell.Sdff -> t_mux (i 2) (i 0) (i 1)
      | Cell.Sdffe -> t_mux (i 3) (t_mux (i 1) (proj v.(ff)) (i 0)) (i 2)
      | _ -> X |> good
    in
    compose (plane good) (plane faulty)
  in
  let observed () =
    Array.exists (fun net -> v.(net) = D || v.(net) = Db) flat.Flat.pos_net
    || Array.exists
         (fun ff ->
           match capture ff with D | Db -> true | _ -> false)
         flat.Flat.dffs
  in
  (* J-frontier: assigned gate outputs not yet implied by their inputs.
     The fault site is justified when the good plane of its driver's
     evaluation matches the activation value. *)
  let site_justified () =
    if is_input fault.f_net then true
    else good (eval_raw fault.f_net) = t_not stuck_tri
  in
  let j_frontier () =
    List.filter
      (fun g ->
        (not (is_input g))
        && v.(g) <> X
        &&
        if g = fault.f_net then not (site_justified ())
        else eval_raw g = X)
      (List.rev !trail)
  in
  (* Singular covers: alternative input cubes justifying [value] at a
     gate.  Values here are plain (the fault effect is only generated at
     the site and driven forward, never justified backward). *)
  let cubes g value =
    let f = Netlist.fanin nl g in
    let pin k x = (f.(k), x) in
    match (Netlist.kind nl g, value) with
    | Cell.Buf, _ -> [ [ pin 0 value ] ]
    | Cell.Inv, _ -> [ [ pin 0 (neg value) ] ]
    | Cell.And2, One -> [ [ pin 0 One; pin 1 One ] ]
    | Cell.And2, Zero -> [ [ pin 0 Zero ]; [ pin 1 Zero ] ]
    | Cell.Nand2, Zero -> [ [ pin 0 One; pin 1 One ] ]
    | Cell.Nand2, One -> [ [ pin 0 Zero ]; [ pin 1 Zero ] ]
    | Cell.Or2, Zero -> [ [ pin 0 Zero; pin 1 Zero ] ]
    | Cell.Or2, One -> [ [ pin 0 One ]; [ pin 1 One ] ]
    | Cell.Nor2, One -> [ [ pin 0 Zero; pin 1 Zero ] ]
    | Cell.Nor2, Zero -> [ [ pin 0 One ]; [ pin 1 One ] ]
    | Cell.Xor2, One -> [ [ pin 0 One; pin 1 Zero ]; [ pin 0 Zero; pin 1 One ] ]
    | Cell.Xor2, Zero -> [ [ pin 0 Zero; pin 1 Zero ]; [ pin 0 One; pin 1 One ] ]
    | Cell.Xnor2, Zero -> [ [ pin 0 One; pin 1 Zero ]; [ pin 0 Zero; pin 1 One ] ]
    | Cell.Xnor2, One -> [ [ pin 0 Zero; pin 1 Zero ]; [ pin 0 One; pin 1 One ] ]
    | Cell.Mux2, _ ->
        [ [ pin 0 Zero; pin 1 value ]; [ pin 0 One; pin 2 value ] ]
    | _ -> []
  in
  (* D-frontier: gates whose output is X with an error on some input, and
     the side assignments that drive the error through. *)
  let d_frontier () =
    let frontier =
      List.filter
        (fun g ->
          (not (is_input g))
          && v.(g) = X
          && Array.exists (fun p -> v.(p) = D || v.(p) = Db) (Netlist.fanin nl g))
        (Array.to_list order)
    in
    let n = List.length frontier in
    Obs.observe h_frontier (float_of_int n);
    Obs.max_gauge g_frontier_peak n;
    frontier
  in
  let drive_cubes g =
    let f = Netlist.fanin nl g in
    let side k value = (f.(k), value) in
    match Netlist.kind nl g with
    | Cell.Buf | Cell.Inv -> [ [] ]
    | Cell.And2 | Cell.Nand2 ->
        if v.(f.(0)) = D || v.(f.(0)) = Db then [ [ side 1 One ] ]
        else [ [ side 0 One ] ]
    | Cell.Or2 | Cell.Nor2 ->
        if v.(f.(0)) = D || v.(f.(0)) = Db then [ [ side 1 Zero ] ]
        else [ [ side 0 Zero ] ]
    | Cell.Xor2 | Cell.Xnor2 ->
        if v.(f.(0)) = D || v.(f.(0)) = Db then
          [ [ side 1 Zero ]; [ side 1 One ] ]
        else [ [ side 0 Zero ]; [ side 0 One ] ]
    | Cell.Mux2 ->
        if v.(f.(0)) = D || v.(f.(0)) = Db then
          (* Error on the select: the data inputs must differ. *)
          [ [ side 1 Zero; side 2 One ]; [ side 1 One; side 2 Zero ] ]
        else if v.(f.(1)) = D || v.(f.(1)) = Db then [ [ side 0 Zero ] ]
        else [ [ side 0 One ] ]
    | _ -> []
  in
  let decisions = ref 0 in
  let bump () =
    incr decisions;
    Obs.incr c_decisions;
    if !decisions > decision_limit then raise Give_up;
    match budget with
    | Some b when not (Budget.spend b) -> raise Give_up
    | _ -> ()
  in
  let rec solve () =
    match (try imply (); None with Conflict -> Some ()) with
    | Some () -> false
    | None ->
        if observed () && j_frontier () = [] && site_justified () then true
        else if not (observed ()) then begin
          match d_frontier () with
          | [] -> false
          | frontier ->
              List.exists
                (fun g ->
                  List.exists
                    (fun cube ->
                      bump ();
                      let m = mark () in
                      match
                        (try
                           List.iter (fun (p, value) -> assign p value) cube;
                           (* Also claim the output so the frontier moves. *)
                           imply ();
                           None
                         with Conflict -> Some ())
                      with
                      | Some () ->
                          undo_to m;
                          false
                      | None ->
                          if solve () then true
                          else begin
                            undo_to m;
                            false
                          end)
                    (drive_cubes g))
                frontier
        end
        else begin
          (* Error observed: discharge one justification obligation. *)
          match j_frontier () with
          | [] -> false
          | g :: _ ->
              let target =
                if g = fault.f_net then
                  if stuck_tri = T0 then One else Zero
                else v.(g)
              in
              List.exists
                (fun cube ->
                  bump ();
                  let m = mark () in
                  match
                    (try
                       List.iter (fun (p, value) -> assign p value) cube;
                       None
                     with Conflict -> Some ())
                  with
                  | Some () ->
                      undo_to m;
                      false
                  | None ->
                      if solve () then true
                      else begin
                        undo_to m;
                        false
                      end)
                (cubes g target)
        end
  in
  (* Activation.  Constants are pinned first so no cube can "justify" a
     value by writing onto a tied-off net. *)
  let activation = if fault.f_stuck then Db else D in
  let result =
    try
      Array.iter
        (fun g ->
          match Netlist.kind nl g with
          | Cell.Const0 -> assign g Zero
          | Cell.Const1 -> assign g One
          | _ -> ())
        order;
      assign fault.f_net activation;
      if solve () then `Test else `No_test
    with
    | Give_up -> `Abort
    | Conflict -> `No_test
  in
  match result with
  | `Abort -> Aborted
  | `No_test -> Untestable
  | `Test ->
      let npi = Array.length flat.Flat.pis in
      let vec = Bitvec.create (npi + Array.length flat.Flat.dffs) in
      Array.iteri
        (fun i net -> if good v.(net) = T1 then Bitvec.set vec i true)
        flat.Flat.pis;
      Array.iteri
        (fun i net -> if good v.(net) = T1 then Bitvec.set vec (npi + i) true)
        flat.Flat.dffs;
      Test vec

type stats = {
  detected : int;
  redundant : int;
  aborted : int;
  total : int;
  coverage : float;
  efficiency : float;
}

let run ?decision_limit ?(sample = 1) ?budget nl =
  Obs.with_span ~cat:"atpg" "dalg.run" @@ fun () ->
  let faults =
    Fault.collapse nl |> List.filteri (fun i _ -> i mod max 1 sample = 0)
  in
  let det = ref 0 and red = ref 0 and ab = ref 0 in
  List.iter
    (fun f ->
      (* Between faults an exhausted budget degrades the rest to aborted
         (no search is attempted); within a fault, [bump] checks it. *)
      if match budget with Some b -> Budget.exhausted b | None -> false then
        incr ab
      else
        match generate ?decision_limit ?budget nl f with
        | Test _ -> incr det
        | Untestable -> incr red
        | Aborted -> incr ab)
    faults;
  let total = List.length faults in
  let pct x = if total = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int total in
  {
    detected = !det;
    redundant = !red;
    aborted = !ab;
    total;
    coverage = pct !det;
    efficiency = pct (!det + !red);
  }
