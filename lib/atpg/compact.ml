module Obs = Socet_obs.Obs

let c_in = Obs.counter ~scope:"atpg" "compact.vectors_in"
let c_kept = Obs.counter ~scope:"atpg" "compact.vectors_kept"

let reverse_order nl ~vectors ~faults =
  Obs.with_span ~cat:"atpg" "compact.reverse_order" @@ fun () ->
  Obs.add c_in (List.length vectors);
  let kept = ref [] in
  let remaining = ref faults in
  List.iter
    (fun vec ->
      if !remaining <> [] then begin
        let hit = Fsim.run_comb nl ~vectors:[ vec ] ~faults:!remaining in
        if hit <> [] then begin
          kept := vec :: !kept;
          remaining :=
            List.filter (fun f -> not (List.exists (Fault.equal f) hit)) !remaining
        end
      end)
    (List.rev vectors);
  Obs.add c_kept (List.length !kept);
  !kept
