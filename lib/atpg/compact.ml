module Obs = Socet_obs.Obs

let c_in = Obs.counter ~scope:"atpg" "compact.vectors_in"
let c_kept = Obs.counter ~scope:"atpg" "compact.vectors_kept"

let reverse_order nl ~vectors ~faults =
  Obs.with_span ~cat:"atpg" "compact.reverse_order" @@ fun () ->
  Obs.add c_in (List.length vectors);
  let kept = ref [] in
  let remaining = ref faults in
  List.iter
    (fun vec ->
      if !remaining <> [] then begin
        let hit = Fsim.run_comb nl ~vectors:[ vec ] ~faults:!remaining in
        if hit <> [] then begin
          kept := vec :: !kept;
          (* Set-membership drop: the hit list can be a large fraction of
             [remaining], so the old [List.exists] filter was quadratic in
             the fault count for vectors kept early. *)
          let dropped = Hashtbl.create (List.length hit) in
          List.iter
            (fun (f : Fault.t) ->
              Hashtbl.replace dropped (f.Fault.f_net, f.Fault.f_stuck) ())
            hit;
          remaining :=
            List.filter
              (fun (f : Fault.t) ->
                not (Hashtbl.mem dropped (f.Fault.f_net, f.Fault.f_stuck)))
              !remaining
        end
      end)
    (List.rev vectors);
  Obs.add c_kept (List.length !kept);
  !kept
