open Socet_util
open Socet_netlist

type stats = {
  cycles : int;
  total_faults : int;
  detected : int;
  coverage : float;
  efficiency : float;
}

(* Each random vector is held for [hold] cycles, as a functional
   stimulus would hold an instruction while the control FSM sequences —
   pure per-cycle noise exercises opcode-gated datapaths almost never. *)
let sequence ?(cycles = 512) ?(hold = 8) ?(seed = 7) nl =
  let rng = Rng.create seed in
  let npi = List.length (Netlist.pis nl) in
  List.init cycles (fun i -> if i mod hold = 0 then Some (Rng.bitvec rng npi) else None)
  |> List.fold_left
       (fun acc v ->
         match (v, acc) with
         | Some v, _ -> v :: acc
         | None, last :: _ -> last :: acc
         | None, [] -> assert false)
       []
  |> List.rev

let random ?(cycles = 512) ?(hold = 8) ?(seed = 7) nl =
  let faults = Fault.collapse nl in
  let total = List.length faults in
  let inputs = sequence ~cycles ~hold ~seed nl in
  let detected = List.length (Fsim.run_seq nl ~inputs ~faults) in
  let pct x = if total = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int total in
  {
    cycles;
    total_faults = total;
    detected;
    coverage = pct detected;
    efficiency = pct detected;
  }
