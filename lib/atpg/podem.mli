(** PODEM combinational ATPG (Goel 1981) on the full-scan test model.

    Decision variables are the circuit's inputs in the scan sense: primary
    inputs plus flip-flop (pseudo) inputs.  Observation points are primary
    outputs plus flip-flop D captures.  Five-valued D-calculus is encoded as
    a pair of ternary values (good machine, faulty machine). *)

open Socet_util
open Socet_netlist

type outcome =
  | Test of Bitvec.t
      (** A detecting vector in {!Fsim.vector} layout; unassigned positions
          are filled with 0. *)
  | Untestable
      (** Search space exhausted: the fault is redundant. *)
  | Aborted
      (** Backtrack limit hit. *)

val generate :
  ?backtrack_limit:int ->
  ?scoap:Scoap.t ->
  ?budget:Budget.t ->
  Netlist.t ->
  Fault.t ->
  outcome
(** [backtrack_limit] defaults to 1000.  With [scoap], backtrace prefers
    the easiest-to-control fanin and the D-frontier is explored in
    observability order.  With [budget], every decision/backtrack step
    spends one unit; exhaustion degrades the search to [Aborted]. *)

type stats = {
  vectors : Bitvec.t list;
  detected : Fault.t list;
  redundant : Fault.t list;
  aborted : Fault.t list;
  total_faults : int;
  coverage : float;    (** detected / total, percent *)
  efficiency : float;  (** (detected + redundant) / total, percent *)
}

val run :
  ?backtrack_limit:int ->
  ?random_patterns:int ->
  ?seed:int ->
  ?use_scoap:bool ->
  ?budget:Budget.t ->
  Netlist.t ->
  stats
(** Full test generation flow: a random-pattern phase (default 64 patterns,
    simulated with fault dropping), then PODEM on each remaining fault with
    each new vector fault-simulated against the remaining list, and finally
    reverse-order compaction ({!Compact.reverse_order}).

    The deterministic phase uses an {e adaptive} backtrack budget: the
    first pass runs with a small limit (32), aborted faults are re-queued
    at the end, and the limit is multiplied by 8 per pass until it reaches
    [backtrack_limit] — so easy faults (the vast majority, per the
    [atpg.podem.backtracks_per_fault] histogram) never pay for the hard
    tail, while the final aborted set matches a flat run at
    [backtrack_limit].  Escalations are counted in
    [atpg.podem.budget_escalations].

    With [budget], the whole phase shares one fuel/deadline allowance;
    when it exhausts, remaining faults are reported as aborted and the
    vectors found so far are kept (graceful degradation). *)
