open Socet_util
open Socet_netlist
module Obs = Socet_obs.Obs

(* Observability: one word batch simulates up to [Sim.word_width] vectors
   in parallel, and each remaining fault costs one cone re-evaluation per
   batch — [fault_evals] is the engine's true unit of work.  Fault cones
   are cached on the compiled flat form for the life of the netlist:
   [cone_cache_misses] counts real constructions (one per fault site),
   [cone_cache_hits] counts lookups served from the cache — across the
   423k [run_comb] calls of the bench nearly every lookup is a hit. *)
let c_batches = Obs.counter ~scope:"atpg" "fsim.word_batches"
let c_fault_evals = Obs.counter ~scope:"atpg" "fsim.fault_evals"
let c_dropped = Obs.counter ~scope:"atpg" "fsim.faults_dropped"
let c_seq_cycles = Obs.counter ~scope:"atpg" "fsim.seq_cycles"
let c_cone_hits = Obs.counter ~scope:"atpg" "fsim.cone_cache_hits"
let c_cone_misses = Obs.counter ~scope:"atpg" "fsim.cone_cache_misses"
let h_cone_gates = Obs.histogram ~scope:"atpg" "fsim.cone_gates"

type vector = Bitvec.t

let vector_length nl =
  List.length (Netlist.pis nl) + List.length (Netlist.dffs nl)

let split_vector nl v =
  let npi = List.length (Netlist.pis nl) in
  let nff = List.length (Netlist.dffs nl) in
  (Bitvec.sub v ~pos:0 ~len:npi, Bitvec.sub v ~pos:npi ~len:nff)

let all_ones = (1 lsl Sim.word_width) - 1

(* ------------------------------------------------------------------ *)
(* Event-driven single-fault evaluation on the flat kernel             *)
(* ------------------------------------------------------------------ *)

(* Per-domain sparse overlay: instead of blitting the whole good-circuit
   value array per fault, faulty values are written only for cone gates
   and validated by a stamp — [read] falls through to the shared good
   words everywhere else.  One overlay per pool domain, reused across
   every fault it simulates. *)
type overlay = {
  mutable vals : int array;
  mutable stamps : int array;
  mutable stamp : int;
}

let overlay_key : overlay Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { vals = [||]; stamps = [||]; stamp = 0 })

let overlay n =
  let s = Domain.DLS.get overlay_key in
  if Array.length s.vals < n then begin
    s.vals <- Array.make n 0;
    s.stamps <- Array.make n 0;
    s.stamp <- 0
  end;
  s

(* Evaluate one fault against the shared good-circuit words: walk only the
   cone (topo-ordered, site first), then diff only the POs and D-captures
   the site reaches.  Detection is identical to diffing the full PO and
   next-state vectors because everything outside the cone is untouched. *)
let fault_eval flat ~good ~good_po ~good_ns ~stuck_word (cone : Flat.cone) =
  let s = overlay flat.Flat.n in
  s.stamp <- s.stamp + 1;
  let cur = s.stamp in
  let vals = s.vals and stamps = s.stamps in
  let read h =
    if Array.unsafe_get stamps h = cur then Array.unsafe_get vals h
    else Array.unsafe_get good h
  in
  let site = cone.Flat.c_site in
  let kinds = flat.Flat.kinds
  and off = flat.Flat.fanin_off
  and fi = flat.Flat.fanin in
  Array.iter
    (fun g ->
      let value =
        if g = site then stuck_word
        else begin
          let b = Array.unsafe_get off g in
          match Array.unsafe_get kinds g with
          | 1 -> 0
          | 2 -> all_ones
          | 3 -> read fi.(b)
          | 4 -> lnot (read fi.(b)) land all_ones
          | 5 -> read fi.(b) land read fi.(b + 1)
          | 6 -> read fi.(b) lor read fi.(b + 1)
          | 7 -> lnot (read fi.(b) land read fi.(b + 1)) land all_ones
          | 8 -> lnot (read fi.(b) lor read fi.(b + 1)) land all_ones
          | 9 -> read fi.(b) lxor read fi.(b + 1)
          | 10 -> lnot (read fi.(b) lxor read fi.(b + 1)) land all_ones
          | 11 ->
              let sv = read fi.(b) in
              ((lnot sv land read fi.(b + 1)) lor (sv land read fi.(b + 2)))
              land all_ones
          | _ -> read g
        end
      in
      Array.unsafe_set vals g value;
      Array.unsafe_set stamps g cur)
    cone.Flat.c_gates;
  let diff = ref 0 in
  Array.iter
    (fun pidx ->
      diff := !diff lor (read flat.Flat.pos_net.(pidx) lxor good_po.(pidx)))
    cone.Flat.c_pos;
  Array.iter
    (fun k -> diff := !diff lor (Flat.capture flat ~read k lxor good_ns.(k)))
    cone.Flat.c_dffs;
  !diff

let cone_of flat (f : Fault.t) =
  let c, hit = Flat.cone flat f.Fault.f_net in
  if hit then Obs.incr c_cone_hits
  else begin
    Obs.incr c_cone_misses;
    Obs.observe h_cone_gates (float_of_int (Array.length c.Flat.c_gates))
  end;
  c

let chunk_list size items =
  let rec chunk acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | v :: rest ->
        if n = size then chunk (List.rev cur :: acc) [ v ] 1 rest
        else chunk acc (v :: cur) (n + 1) rest
  in
  chunk [] [] 0 items

let run_comb nl ~vectors ~faults =
  Obs.with_span ~cat:"atpg" "fsim.run_comb" @@ fun () ->
  let flat = Flat.of_netlist nl in
  let npi = Array.length flat.Flat.pis in
  let nff = Array.length flat.Flat.dffs in
  (* Resolve every fault's cone up front on the submitting domain (the
     parallel loop below only reads); the cache lives on the compiled
     form, so across calls on the same netlist these are almost all
     hits. *)
  let fc = Array.of_list (List.map (fun f -> (f, cone_of flat f)) faults) in
  let nfaults = Array.length fc in
  let batches = Array.of_list (chunk_list Sim.word_width vectors) in
  let nbatches = Array.length batches in
  if nfaults = 0 || nbatches = 0 then []
  else begin
    (* Phase 1 (submitting domain): the good circuit for every word
       batch.  The old engine interleaved one good evaluation with one
       parallel fan-out per batch; precomputing all batches leaves a
       single parallel region per call. *)
    let goods = Array.make nbatches [||] in
    let good_pos = Array.make nbatches [||] in
    let good_nss = Array.make nbatches [||] in
    let useds = Array.make nbatches 0 in
    Array.iteri
      (fun b batch ->
        let pi = Array.make npi 0 and st = Array.make nff 0 in
        List.iteri
          (fun k vec ->
            for i = 0 to npi - 1 do
              if Bitvec.get vec i then pi.(i) <- pi.(i) lor (1 lsl k)
            done;
            for i = 0 to nff - 1 do
              if Bitvec.get vec (npi + i) then st.(i) <- st.(i) lor (1 lsl k)
            done)
          batch;
        let good = Array.make flat.Flat.n 0 in
        Flat.eval_good flat ~pi ~state:st good;
        goods.(b) <- good;
        good_pos.(b) <- Flat.po_words flat good;
        good_nss.(b) <- Flat.next_state_words flat good;
        useds.(b) <- (1 lsl List.length batch) - 1)
      batches;
    (* Phase 2: one coarse parallel region over the fault list.  Each
       domain owns a contiguous fault shard for the whole call — its
       sparse overlay and cone walks persist across every word batch of
       every fault it owns, instead of being re-fanned-out per batch.
       A fault is simulated until its first detecting batch (fault
       dropping), recorded in [det]; distinct indices, so the writes
       are race-free. *)
    let det = Array.make nfaults nbatches in
    let cone_cost =
      let sum =
        Array.fold_left
          (fun acc (_, c) -> acc + Array.length c.Flat.c_gates)
          0 fc
      in
      Float.max 1.0 (float_of_int sum /. float_of_int nfaults)
    in
    Pool.parallel_iter_ranges ~cost:cone_cost nfaults (fun lo hi ->
        for i = lo to hi - 1 do
          let (f : Fault.t), cone = fc.(i) in
          let stuck_word = if f.f_stuck then all_ones else 0 in
          let b = ref 0 in
          while !b < nbatches && det.(i) = nbatches do
            if
              fault_eval flat ~good:goods.(!b) ~good_po:good_pos.(!b)
                ~good_ns:good_nss.(!b) ~stuck_word cone
              land useds.(!b)
              <> 0
            then det.(i) <- !b;
            incr b
          done
        done);
    (* Merge in (first detecting batch, fault order) — exactly the
       fault-dropping engine's detected order, at any domain count. *)
    let by_batch = Array.make nbatches [] in
    for i = nfaults - 1 downto 0 do
      if det.(i) < nbatches then
        by_batch.(det.(i)) <- fst fc.(i) :: by_batch.(det.(i))
    done;
    let detected = List.concat (Array.to_list by_batch) in
    (* Counter totals match the per-batch engine: a fault costs one cone
       evaluation per batch until it drops, and a batch counts while any
       fault is still live when it starts. *)
    let evals = ref 0 and live_batches = ref 0 in
    Array.iter
      (fun d ->
        evals := !evals + min (d + 1) nbatches;
        if d + 1 > !live_batches then live_batches := min (d + 1) nbatches)
      det;
    Obs.add c_batches !live_batches;
    Obs.add c_fault_evals !evals;
    Obs.add c_dropped (List.length detected);
    detected
  end

let detects_comb nl vec f = run_comb nl ~vectors:[ vec ] ~faults:[ f ] <> []

let run_seq nl ~inputs ~faults =
  Obs.with_span ~cat:"atpg" "fsim.run_seq" @@ fun () ->
  let flat = Flat.of_netlist nl in
  let n = flat.Flat.n in
  let npi = Array.length flat.Flat.pis in
  let nff = Array.length flat.Flat.dffs in
  let good_slot = Sim.word_width - 1 in
  let batches = Array.of_list (chunk_list good_slot faults) in
  let nbatches = Array.length batches in
  let ncycles = List.length inputs in
  (* Pattern-level coarse grain: fault batches are independent (each
     carries its own good circuit in the top word slot), so each domain
     simulates whole batches end to end with private masks, value array
     and state — scratch allocated once per batch, touched by one domain
     only.  The primary-input words are shared read-only. *)
  let pis =
    Array.of_list
      (List.map
         (fun pi_bits ->
           Array.init npi (fun i -> if Bitvec.get pi_bits i then all_ones else 0))
         inputs)
  in
  let caught =
    Pool.parallel_map ~chunk:1
      (fun batch ->
        let or_mask = Array.make n 0 and and_mask = Array.make n all_ones in
        let nbatch = List.length batch in
        List.iteri
          (fun k (f : Fault.t) ->
            if f.f_stuck then or_mask.(f.f_net) <- or_mask.(f.f_net) lor (1 lsl k)
            else and_mask.(f.f_net) <- and_mask.(f.f_net) land lnot (1 lsl k))
          batch;
        let used = (1 lsl nbatch) - 1 in
        let v = Array.make n 0 in
        let state = ref (Array.make nff 0) in
        let hit = Array.make nbatch false in
        Array.iter
          (fun pi ->
            Flat.eval_masked flat ~pi ~state:!state ~and_mask ~or_mask v;
            (* Detection scan: one xor against the sign-extended good bit
               per PO word, then a walk over the set bits — zero work per
               word when no fault slot differs (the common case), instead
               of the old O(batch) list traversal per PO word. *)
            Array.iter
              (fun net ->
                let w = v.(net) in
                let good_ext = - ((w lsr good_slot) land 1) land all_ones in
                let d = ref ((w lxor good_ext) land used) in
                let k = ref 0 in
                while !d <> 0 do
                  if !d land 1 = 1 then hit.(!k) <- true;
                  d := !d lsr 1;
                  incr k
                done)
              flat.Flat.pos_net;
            state := Flat.next_state_words flat v)
          pis;
        hit)
      batches
  in
  Obs.add c_seq_cycles (nbatches * ncycles);
  (* Submission-order merge: batch order then fault order within the
     batch — the sequential engine's detected order at any domain count. *)
  let detected = ref [] in
  Array.iteri
    (fun b batch ->
      let hit = caught.(b) in
      List.iteri (fun k f -> if hit.(k) then detected := f :: !detected) batch)
    batches;
  List.rev !detected

(* ------------------------------------------------------------------ *)
(* Legacy reference engine                                             *)
(* ------------------------------------------------------------------ *)

(* The pre-flat list/Hashtbl engine, retained verbatim (modulo the domain
   pool) as an independent oracle: the equivalence suite proves the flat
   kernel byte-identical to it, and the bench's [fsim_kernel] section
   measures the speedup against it.  Single-threaded, no shared caches,
   no counters. *)

let ref_eval_words nl ~pi ~state ~inject =
  let n = Netlist.gate_count nl in
  let v = Array.make n 0 in
  let pi_pos = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace pi_pos x i) (Netlist.pis nl);
  let dff_pos = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.replace dff_pos x i) (Netlist.dffs nl);
  let order = Netlist.comb_order nl in
  Array.iter
    (fun g ->
      let f = Netlist.fanin nl g in
      let value =
        match Netlist.kind nl g with
        | Cell.Pi -> pi.(Hashtbl.find pi_pos g)
        | Cell.Const0 -> 0
        | Cell.Const1 -> all_ones
        | Cell.Buf -> v.(f.(0))
        | Cell.Inv -> lnot v.(f.(0)) land all_ones
        | Cell.And2 -> v.(f.(0)) land v.(f.(1))
        | Cell.Or2 -> v.(f.(0)) lor v.(f.(1))
        | Cell.Nand2 -> lnot (v.(f.(0)) land v.(f.(1))) land all_ones
        | Cell.Nor2 -> lnot (v.(f.(0)) lor v.(f.(1))) land all_ones
        | Cell.Xor2 -> v.(f.(0)) lxor v.(f.(1))
        | Cell.Xnor2 -> lnot (v.(f.(0)) lxor v.(f.(1))) land all_ones
        | Cell.Mux2 ->
            let s = v.(f.(0)) in
            (lnot s land v.(f.(1))) lor (s land v.(f.(2))) land all_ones
        | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe ->
            state.(Hashtbl.find dff_pos g)
      in
      v.(g) <- inject g (value land all_ones))
    order;
  v

let ref_po_words nl v =
  Array.of_list (List.map (fun (_, n) -> v.(n)) (Netlist.pos nl))

let ref_next_state_words nl v =
  let capture g =
    let f = Netlist.fanin nl g in
    match Netlist.kind nl g with
    | Cell.Dff -> v.(f.(0))
    | Cell.Dffe ->
        let d = v.(f.(0)) and en = v.(f.(1)) and q = v.(g) in
        (en land d) lor (lnot en land q) land all_ones
    | Cell.Sdff ->
        let d = v.(f.(0)) and si = v.(f.(1)) and se = v.(f.(2)) in
        (se land si) lor (lnot se land d) land all_ones
    | Cell.Sdffe ->
        let d = v.(f.(0)) and en = v.(f.(1)) and si = v.(f.(2)) and se = v.(f.(3)) in
        let q = v.(g) in
        let func = (en land d) lor (lnot en land q) land all_ones in
        (se land si) lor (lnot se land func) land all_ones
    | _ -> assert false
  in
  Array.of_list (List.map capture (Netlist.dffs nl))

let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

let ref_comb_cone nl site =
  let n = Netlist.gate_count nl in
  let in_cone = Bytes.make ((n + 7) / 8) '\000' in
  let queue = Queue.create () in
  bit_set in_cone site;
  Queue.add site queue;
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    List.iter
      (fun h ->
        if (not (Cell.is_dff (Netlist.kind nl h))) && not (bit_get in_cone h) then begin
          bit_set in_cone h;
          Queue.add h queue
        end)
      (Netlist.fanout nl g)
  done;
  in_cone

let ref_eval_gate nl v g =
  let f = Netlist.fanin nl g in
  match Netlist.kind nl g with
  | Cell.Pi | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe -> v.(g)
  | Cell.Const0 -> 0
  | Cell.Const1 -> all_ones
  | Cell.Buf -> v.(f.(0))
  | Cell.Inv -> lnot v.(f.(0)) land all_ones
  | Cell.And2 -> v.(f.(0)) land v.(f.(1))
  | Cell.Or2 -> v.(f.(0)) lor v.(f.(1))
  | Cell.Nand2 -> lnot (v.(f.(0)) land v.(f.(1))) land all_ones
  | Cell.Nor2 -> lnot (v.(f.(0)) lor v.(f.(1))) land all_ones
  | Cell.Xor2 -> v.(f.(0)) lxor v.(f.(1))
  | Cell.Xnor2 -> lnot (v.(f.(0)) lxor v.(f.(1))) land all_ones
  | Cell.Mux2 ->
      let s = v.(f.(0)) in
      ((lnot s land v.(f.(1))) lor (s land v.(f.(2)))) land all_ones

let run_comb_ref nl ~vectors ~faults =
  let npi = List.length (Netlist.pis nl) in
  let nff = List.length (Netlist.dffs nl) in
  let order = Netlist.comb_order nl in
  let remaining = ref faults in
  let detected = ref [] in
  let cones = Hashtbl.create (List.length faults) in
  List.iter
    (fun (f : Fault.t) ->
      if not (Hashtbl.mem cones f.f_net) then
        Hashtbl.replace cones f.f_net (ref_comb_cone nl f.f_net))
    faults;
  let batches = chunk_list Sim.word_width vectors in
  List.iter
    (fun batch ->
      if !remaining <> [] then begin
        let nbatch = List.length batch in
        let pi = Array.make npi 0 and st = Array.make nff 0 in
        List.iteri
          (fun k vec ->
            for i = 0 to npi - 1 do
              if Bitvec.get vec i then pi.(i) <- pi.(i) lor (1 lsl k)
            done;
            for i = 0 to nff - 1 do
              if Bitvec.get vec (npi + i) then st.(i) <- st.(i) lor (1 lsl k)
            done)
          batch;
        let good = ref_eval_words nl ~pi ~state:st ~inject:(fun _ x -> x) in
        let good_po = ref_po_words nl good in
        let good_ns = ref_next_state_words nl good in
        let used = (1 lsl nbatch) - 1 in
        let ngates = Array.length good in
        let rem = Array.of_list !remaining in
        let faulty = Array.make ngates 0 in
        let hit =
          Array.map
            (fun (f : Fault.t) ->
              let cone = Hashtbl.find cones f.f_net in
              Array.blit good 0 faulty 0 ngates;
              Array.iter
                (fun g ->
                  if bit_get cone g then begin
                    let v =
                      if g = f.f_net then (if f.f_stuck then all_ones else 0)
                      else ref_eval_gate nl faulty g
                    in
                    faulty.(g) <- v
                  end)
                order;
              let fpo = ref_po_words nl faulty in
              let fns = ref_next_state_words nl faulty in
              let diff = ref 0 in
              Array.iteri (fun i w -> diff := !diff lor (w lxor good_po.(i))) fpo;
              Array.iteri (fun i w -> diff := !diff lor (w lxor good_ns.(i))) fns;
              !diff land used <> 0)
            rem
        in
        let still = ref [] in
        Array.iteri
          (fun i f -> if hit.(i) then detected := f :: !detected else still := f :: !still)
          rem;
        remaining := List.rev !still
      end)
    batches;
  List.rev !detected

let eval_words_ref = ref_eval_words
let po_words_ref = ref_po_words
let next_state_words_ref = ref_next_state_words

let run_seq_ref nl ~inputs ~faults =
  let npi = List.length (Netlist.pis nl) in
  let nff = List.length (Netlist.dffs nl) in
  let good_slot = Sim.word_width - 1 in
  let detected = ref [] in
  let batches = chunk_list good_slot faults in
  List.iter
    (fun batch ->
      let n = Netlist.gate_count nl in
      let or_mask = Array.make n 0 and and_mask = Array.make n all_ones in
      List.iteri
        (fun k (f : Fault.t) ->
          if f.f_stuck then or_mask.(f.f_net) <- or_mask.(f.f_net) lor (1 lsl k)
          else and_mask.(f.f_net) <- and_mask.(f.f_net) land lnot (1 lsl k))
        batch;
      let inject g v = (v land and_mask.(g)) lor or_mask.(g) in
      let state = ref (Array.make nff 0) in
      let caught = Array.make (List.length batch) false in
      List.iter
        (fun pi_bits ->
          let pi =
            Array.init npi (fun i -> if Bitvec.get pi_bits i then all_ones else 0)
          in
          let v = ref_eval_words nl ~pi ~state:!state ~inject in
          let po = ref_po_words nl v in
          Array.iter
            (fun w ->
              let goodbit = (w lsr good_slot) land 1 in
              List.iteri
                (fun k _ ->
                  if (w lsr k) land 1 <> goodbit then caught.(k) <- true)
                batch)
            po;
          state := ref_next_state_words nl v)
        inputs;
      List.iteri (fun k f -> if caught.(k) then detected := f :: !detected) batch)
    batches;
  List.rev !detected
