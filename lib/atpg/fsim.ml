open Socet_util
open Socet_netlist
module Obs = Socet_obs.Obs

(* Observability: one word batch simulates up to [Sim.word_width] vectors
   in parallel, and each remaining fault costs one cone re-evaluation per
   batch — [fault_evals] is the engine's true unit of work.
   [cone_cache_hits] counts fault evaluations served from the per-site
   fanout-cone cache instead of re-walking the netlist. *)
let c_batches = Obs.counter ~scope:"atpg" "fsim.word_batches"
let c_fault_evals = Obs.counter ~scope:"atpg" "fsim.fault_evals"
let c_dropped = Obs.counter ~scope:"atpg" "fsim.faults_dropped"
let c_seq_cycles = Obs.counter ~scope:"atpg" "fsim.seq_cycles"
let c_cone_hits = Obs.counter ~scope:"atpg" "fsim.cone_cache_hits"

type vector = Bitvec.t

let vector_length nl =
  List.length (Netlist.pis nl) + List.length (Netlist.dffs nl)

let split_vector nl v =
  let npi = List.length (Netlist.pis nl) in
  let nff = List.length (Netlist.dffs nl) in
  (Bitvec.sub v ~pos:0 ~len:npi, Bitvec.sub v ~pos:npi ~len:nff)

let all_ones = (1 lsl Sim.word_width) - 1

(* Combinational fanout cone of a net, as a bitset over gates (gates only
   reachable through combinational paths; flip-flops absorb effects at
   their D inputs).  One byte-array bitset per fault site, computed once
   per [run_comb] call and shared read-only by every domain. *)
let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

let comb_cone nl site =
  let n = Netlist.gate_count nl in
  let in_cone = Bytes.make ((n + 7) / 8) '\000' in
  let queue = Queue.create () in
  bit_set in_cone site;
  Queue.add site queue;
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    List.iter
      (fun h ->
        if (not (Cell.is_dff (Netlist.kind nl h))) && not (bit_get in_cone h) then begin
          bit_set in_cone h;
          Queue.add h queue
        end)
      (Netlist.fanout nl g)
  done;
  in_cone

let eval_gate nl v g =
  let f = Netlist.fanin nl g in
  match Netlist.kind nl g with
  | Cell.Pi | Cell.Dff | Cell.Dffe | Cell.Sdff | Cell.Sdffe -> v.(g)
  | Cell.Const0 -> 0
  | Cell.Const1 -> all_ones
  | Cell.Buf -> v.(f.(0))
  | Cell.Inv -> lnot v.(f.(0)) land all_ones
  | Cell.And2 -> v.(f.(0)) land v.(f.(1))
  | Cell.Or2 -> v.(f.(0)) lor v.(f.(1))
  | Cell.Nand2 -> lnot (v.(f.(0)) land v.(f.(1))) land all_ones
  | Cell.Nor2 -> lnot (v.(f.(0)) lor v.(f.(1))) land all_ones
  | Cell.Xor2 -> v.(f.(0)) lxor v.(f.(1))
  | Cell.Xnor2 -> lnot (v.(f.(0)) lxor v.(f.(1))) land all_ones
  | Cell.Mux2 ->
      let s = v.(f.(0)) in
      ((lnot s land v.(f.(1))) lor (s land v.(f.(2)))) land all_ones

(* Per-domain scratch for the faulty value array: each pool worker reuses
   one buffer across every fault it simulates instead of allocating a
   gate-count array per fault evaluation. *)
let scratch_key : int array Domain.DLS.key = Domain.DLS.new_key (fun () -> [||])

let scratch n =
  let a = Domain.DLS.get scratch_key in
  if Array.length a >= n then a
  else begin
    let a = Array.make n 0 in
    Domain.DLS.set scratch_key a;
    a
  end

let run_comb nl ~vectors ~faults =
  Obs.with_span ~cat:"atpg" "fsim.run_comb" @@ fun () ->
  let npi = List.length (Netlist.pis nl) in
  let nff = List.length (Netlist.dffs nl) in
  let order = Netlist.comb_order nl in
  let remaining = ref faults in
  let detected = ref [] in
  (* Pre-warm the cone cache for every fault site on the submitting
     domain, so the parallel fault loop only ever reads the table. *)
  let cones = Hashtbl.create (List.length faults) in
  List.iter
    (fun (f : Fault.t) ->
      if not (Hashtbl.mem cones f.f_net) then
        Hashtbl.replace cones f.f_net (comb_cone nl f.f_net))
    faults;
  let cone_of site =
    Obs.incr c_cone_hits;
    Hashtbl.find cones site
  in
  let batches =
    let rec chunk acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | v :: rest ->
          if n = Sim.word_width then chunk (List.rev cur :: acc) [ v ] 1 rest
          else chunk acc (v :: cur) (n + 1) rest
    in
    chunk [] [] 0 vectors
  in
  List.iter
    (fun batch ->
      if !remaining <> [] then begin
        Obs.incr c_batches;
        Obs.add c_fault_evals (List.length !remaining);
        let nbatch = List.length batch in
        let pi = Array.make npi 0 and st = Array.make nff 0 in
        List.iteri
          (fun k vec ->
            for i = 0 to npi - 1 do
              if Bitvec.get vec i then pi.(i) <- pi.(i) lor (1 lsl k)
            done;
            for i = 0 to nff - 1 do
              if Bitvec.get vec (npi + i) then st.(i) <- st.(i) lor (1 lsl k)
            done)
          batch;
        let good = Sim.eval_words nl ~pi ~state:st ~inject:(fun _ x -> x) in
        let good_po = Sim.po_words nl good in
        let good_ns = Sim.next_state_words nl good in
        let used = (1 lsl nbatch) - 1 in
        let ngates = Array.length good in
        (* Fault-parallel: the remaining fault list is partitioned across
           the domain pool; the good-circuit words are shared read-only
           and each domain overwrites its own scratch copy per fault.
           Results come back in submission order, so dropping and the
           detected list are bit-identical to the sequential engine. *)
        let rem = Array.of_list !remaining in
        let hit =
          Pool.parallel_map
            (fun (f : Fault.t) ->
              let cone = cone_of f.f_net in
              let faulty = scratch ngates in
              Array.blit good 0 faulty 0 ngates;
              Array.iter
                (fun g ->
                  if bit_get cone g then begin
                    let v =
                      if g = f.f_net then (if f.f_stuck then all_ones else 0)
                      else eval_gate nl faulty g
                    in
                    faulty.(g) <- v
                  end)
                order;
              let fpo = Sim.po_words nl faulty in
              let fns = Sim.next_state_words nl faulty in
              let diff = ref 0 in
              Array.iteri (fun i w -> diff := !diff lor (w lxor good_po.(i))) fpo;
              Array.iteri (fun i w -> diff := !diff lor (w lxor good_ns.(i))) fns;
              !diff land used <> 0)
            rem
        in
        let still = ref [] in
        Array.iteri
          (fun i f -> if hit.(i) then detected := f :: !detected else still := f :: !still)
          rem;
        remaining := List.rev !still
      end)
    batches;
  let detected = List.rev !detected in
  Obs.add c_dropped (List.length detected);
  detected

let detects_comb nl vec f = run_comb nl ~vectors:[ vec ] ~faults:[ f ] <> []

let run_seq nl ~inputs ~faults =
  Obs.with_span ~cat:"atpg" "fsim.run_seq" @@ fun () ->
  let npi = List.length (Netlist.pis nl) in
  let nff = List.length (Netlist.dffs nl) in
  let good_slot = Sim.word_width - 1 in
  let detected = ref [] in
  let batches =
    let rec chunk acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | f :: rest ->
          if n = good_slot then chunk (List.rev cur :: acc) [ f ] 1 rest
          else chunk acc (f :: cur) (n + 1) rest
    in
    chunk [] [] 0 faults
  in
  List.iter
    (fun batch ->
      let n = Netlist.gate_count nl in
      let or_mask = Array.make n 0 and and_mask = Array.make n all_ones in
      List.iteri
        (fun k (f : Fault.t) ->
          if f.f_stuck then or_mask.(f.f_net) <- or_mask.(f.f_net) lor (1 lsl k)
          else and_mask.(f.f_net) <- and_mask.(f.f_net) land lnot (1 lsl k))
        batch;
      let inject g v = (v land and_mask.(g)) lor or_mask.(g) in
      let state = ref (Array.make nff 0) in
      let caught = Array.make (List.length batch) false in
      List.iter
        (fun pi_bits ->
          Obs.incr c_seq_cycles;
          let pi =
            Array.init npi (fun i -> if Bitvec.get pi_bits i then all_ones else 0)
          in
          let v = Sim.eval_words nl ~pi ~state:!state ~inject in
          let po = Sim.po_words nl v in
          Array.iter
            (fun w ->
              let goodbit = (w lsr good_slot) land 1 in
              List.iteri
                (fun k _ ->
                  if (w lsr k) land 1 <> goodbit then caught.(k) <- true)
                batch)
            po;
          state := Sim.next_state_words nl v)
        inputs;
      List.iteri (fun k f -> if caught.(k) then detected := f :: !detected) batch)
    batches;
  List.rev !detected
