(* Regenerates every table and figure of the paper's evaluation (DAC'98,
   Ghosh/Dey/Jha) on the reproduced systems, printing paper values next to
   measured ones, and finishes with Bechamel micro-benchmarks of the
   engines.  See EXPERIMENTS.md for the paper-vs-measured discussion. *)

open Socet_util
open Socet_rtl
open Socet_core
open Socet_cores
module Obs = Socet_obs.Obs
module Json = Socet_obs.Json

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let pct = Printf.sprintf "%.1f"

(* ------------------------------------------------------------------ *)
(* Shared artifacts (ATPG runs once per core)                          *)
(* ------------------------------------------------------------------ *)

let soc1 = Systems.system1 ()
let soc2 = Systems.system2 ()

let all_v1 soc = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts
let all_v3 soc = List.map (fun ci -> (ci.Soc.ci_name, 3)) soc.Soc.insts

(* ------------------------------------------------------------------ *)
(* Section 3 worked example                                            *)
(* ------------------------------------------------------------------ *)

let worked_example () =
  section "Worked example (Sec. 3): testing the DISPLAY through PREP + CPU";
  let rows =
    List.map
      (fun (cpu_v, paper_period, paper_tat) ->
        let sched =
          Schedule.build soc1
            ~choice:[ ("PREP", 2); ("CPU", cpu_v); ("DISPLAY", 1) ]
            ()
        in
        let t =
          List.find (fun t -> t.Schedule.ct_inst = "DISPLAY") sched.Schedule.s_tests
        in
        [
          Printf.sprintf "CPU version %d" cpu_v;
          string_of_int paper_period;
          string_of_int t.Schedule.ct_period;
          Printf.sprintf "525x%d+3 = %d" paper_period paper_tat;
          Printf.sprintf "%dx%d+%d = %d" t.Schedule.ct_vectors t.Schedule.ct_period
            t.Schedule.ct_tail t.Schedule.ct_time;
        ])
      [ (1, 9, 4728); (2, 4, 2103); (3, 3, 1578) ]
  in
  Ascii_table.print
    ~header:
      [
        "design";
        "paper cyc/vec";
        "ours cyc/vec";
        "paper DISPLAY TAT";
        "our DISPLAY TAT";
      ]
    rows;
  let disp = Soc.inst soc1 "DISPLAY" in
  let nff = List.length (Socet_netlist.Netlist.dffs disp.Soc.ci_netlist) in
  let nin = Rtl_core.input_bit_count disp.Soc.ci_core in
  Printf.printf
    "FSCAN-BSCAN on the same core: paper (66+20)x105+85 = 9,115 cycles;\n\
     ours (%d+%d)x%d+%d = %d cycles (with our %d-vector test set).\n"
    nff nin (Soc.atpg_vectors disp)
    (nff + nin - 1)
    (Socet_scan.Bscan.test_time ~n_ff:nff ~n_inputs:nin
       ~n_vectors:(Soc.atpg_vectors disp))
    (Soc.atpg_vectors disp)

(* ------------------------------------------------------------------ *)
(* Figure 6 / Figure 8: version ladders                                *)
(* ------------------------------------------------------------------ *)

let version_table title inst pairs paper =
  section title;
  let ci = Soc.inst soc1 inst in
  let rcg = ci.Soc.ci_rcg in
  let header =
    ("version"
    :: List.map (fun (i, o) -> Printf.sprintf "%s->%s" i o) pairs)
    @ [ "ovhd (cells)"; "paper row" ]
  in
  let rows =
    List.map2
      (fun v paper_row ->
        (Printf.sprintf "Version %d" v.Version.v_index
        :: List.map
             (fun (i, o) ->
               match
                 Version.latency_between v ~input:(Rcg.node_id rcg i)
                   ~output:(Rcg.node_id rcg o)
               with
               | Some l -> string_of_int l
               | None -> "-")
             pairs)
        @ [ string_of_int v.Version.v_overhead; paper_row ])
      ci.Soc.ci_versions paper
  in
  Ascii_table.print ~header rows

let fig6 () =
  version_table "Figure 6: CPU transparency latency vs overhead" "CPU"
    [ ("Data", "Address_lo"); ("Data", "Address_hi") ]
    [ "6 / 2 / ovhd 3"; "1 / 2 / ovhd 10"; "1 / 1 / ovhd 30" ]

let fig8 () =
  version_table "Figure 8(a): PREPROCESSOR versions" "PREP"
    [ ("NUM", "DB"); ("NUM", "Address") ]
    [ "5 / 2 / ovhd 2"; "1 / 2 / ovhd 19"; "1 / 1 / ovhd 37" ];
  version_table "Figure 8(c): DISPLAY versions" "DISPLAY"
    [ ("D", "PORT1"); ("A_lo", "PORT6") ]
    [ "2 / 3 / ovhd 5"; "2 / 1 / ovhd 20"; "1 / 1 / ovhd 55" ]

(* ------------------------------------------------------------------ *)
(* Figure 10: design-space scatter                                     *)
(* ------------------------------------------------------------------ *)

let fig10_points = lazy (Select.design_space soc1)

let fig10 () =
  section "Figure 10: test application time vs area overhead (System 1)";
  let points = Lazy.force fig10_points in
  let rows =
    List.mapi
      (fun i p ->
        [
          string_of_int (i + 1);
          String.concat " "
            (List.map (fun (n, k) -> Printf.sprintf "%s=%d" n k) p.Select.pt_choice);
          string_of_int p.Select.pt_area;
          string_of_int p.Select.pt_time;
        ])
      points
  in
  Ascii_table.print ~header:[ "pt"; "core versions"; "area ovhd"; "TAT (cycles)" ] rows;
  (* Crude scatter: TAT on the vertical axis, area on the horizontal. *)
  let amin = List.fold_left (fun a p -> min a p.Select.pt_area) max_int points in
  let amax = List.fold_left (fun a p -> max a p.Select.pt_area) 0 points in
  let tmin = List.fold_left (fun a p -> min a p.Select.pt_time) max_int points in
  let tmax = List.fold_left (fun a p -> max a p.Select.pt_time) 0 points in
  let w = 56 and h = 14 in
  let grid = Array.make_matrix h w ' ' in
  List.iter
    (fun p ->
      let x =
        if amax = amin then 0
        else (p.Select.pt_area - amin) * (w - 1) / (amax - amin)
      in
      let y =
        if tmax = tmin then 0
        else (p.Select.pt_time - tmin) * (h - 1) / (tmax - tmin)
      in
      grid.(h - 1 - y).(x) <- '*')
    points;
  Printf.printf "TAT %6d +%s\n" tmax (String.make w '-');
  Array.iter
    (fun row -> Printf.printf "           |%s\n" (String.init w (Array.get row)))
    grid;
  Printf.printf "TAT %6d +%s\n" tmin (String.make w '-');
  Printf.printf "       area %d ... %d cells\n" amin amax;
  Printf.printf
    "TAT spread across the space: %.1fx (paper reports ~4.5x between its\n\
     design points 1 and 18).\n"
    (float_of_int tmax /. float_of_int tmin)

(* ------------------------------------------------------------------ *)
(* Table 1: design-space exploration for System 1                       *)
(* ------------------------------------------------------------------ *)

let min_tapp_point soc ~max_area =
  Select.best_time_point (Select.minimize_time soc ~max_area)

let table1 () =
  section "Table 1: design space exploration for System 1";
  let cov = Testgen.scan_access_coverage soc1 in
  let p_min_area = Select.evaluate soc1 ~choice:(all_v1 soc1) () in
  let p_min_lat = Select.evaluate soc1 ~choice:(all_v3 soc1) () in
  let p_min_tapp = min_tapp_point soc1 ~max_area:p_min_lat.Select.pt_area in
  let row label p paper =
    [
      label;
      string_of_int p.Select.pt_area;
      string_of_int p.Select.pt_time;
      pct cov.Testgen.fc;
      pct cov.Testgen.teff;
      paper;
    ]
  in
  Ascii_table.print
    ~header:
      [
        "circuit";
        "A.Ov. (cells)";
        "TApp (cyc)";
        "FCov %";
        "TEff %";
        "paper (AOv/TApp/FC/TEff)";
      ]
    [
      row "min area (pt 1)" p_min_area "156 / 17,387 / 98.4 / 99.8";
      row "min latency (pt 18)" p_min_lat "325 / 3,818 / 98.4 / 99.8";
      row "min chip TApp (pt 17)" p_min_tapp "307 / 3,806 / 98.4 / 99.8";
    ];
  if p_min_tapp.Select.pt_time <= p_min_lat.Select.pt_time then
    Printf.printf
      "As in the paper, minimum TApp does not require the minimum-latency\n\
       version of every core.\n"

(* ------------------------------------------------------------------ *)
(* Table 2: area overheads                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: area overheads (core-level and chip-level DFT)";
  let per_system name soc paper_rows =
    let orig = Soc.original_area soc in
    let fscan =
      List.fold_left
        (fun acc ci -> acc + Socet_scan.Fscan.overhead ci.Soc.ci_netlist)
        0 soc.Soc.insts
    in
    let hscan = Soc.hscan_area_overhead soc in
    let bscan =
      List.fold_left
        (fun acc ci -> acc + Socet_scan.Bscan.ring_overhead ci.Soc.ci_core)
        0 soc.Soc.insts
    in
    let p_min_area = Select.evaluate soc ~choice:(all_v1 soc) () in
    let p_min_lat = Select.evaluate soc ~choice:(all_v3 soc) () in
    let p_min_tapp = min_tapp_point soc ~max_area:(2 * p_min_lat.Select.pt_area) in
    let percent x = pct (Socet_synth.Area.overhead_percent ~base:orig ~extra:x) in
    let mk label socet_chip paper =
      [
        Printf.sprintf "%s %s" name label;
        string_of_int orig;
        percent fscan;
        percent hscan;
        percent bscan;
        percent socet_chip;
        percent (fscan + bscan);
        percent (hscan + socet_chip);
        paper;
      ]
    in
    [
      mk "min area" p_min_area.Select.pt_area (List.nth paper_rows 0);
      mk "min TApp" p_min_tapp.Select.pt_area (List.nth paper_rows 1);
    ]
  in
  Ascii_table.print
    ~header:
      [
        "circuit";
        "orig";
        "FSCAN%";
        "HSCAN%";
        "BSCAN%";
        "SOCET%";
        "FB tot%";
        "SOCET tot%";
        "paper (SOCET% / FB vs SOCET tot)";
      ]
    (per_system "System 1" soc1 [ "2.0 / 24.0 vs 12.1"; "3.8 / 24.0 vs 13.9" ]
    @ per_system "System 2" soc2 [ "1.2 / 25.5 vs 11.5"; "4.7 / 25.5 vs 15.0" ])

(* ------------------------------------------------------------------ *)
(* Table 3: testability                                                *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3: testability results";
  let per_system name soc paper =
    let orig = Testgen.sequential_coverage soc ~cycles:512 () in
    let hscan_only =
      Testgen.sequential_coverage soc ~with_core_scan:true ~cycles:512 ()
    in
    let full = Testgen.scan_access_coverage soc in
    let fb = Baseline.evaluate soc in
    let p_min_area = Select.evaluate soc ~choice:(all_v1 soc) () in
    let p_min_lat = Select.evaluate soc ~choice:(all_v3 soc) () in
    let p_min_tapp = min_tapp_point soc ~max_area:(2 * p_min_lat.Select.pt_area) in
    [
      [
        name;
        pct orig.Testgen.fc;
        pct hscan_only.Testgen.fc;
        pct full.Testgen.fc;
        string_of_int fb.Baseline.b_time;
        pct full.Testgen.fc;
        string_of_int p_min_area.Select.pt_time;
        string_of_int p_min_tapp.Select.pt_time;
        paper;
      ];
    ]
  in
  Ascii_table.print
    ~header:
      [
        "circuit";
        "Orig FC%";
        "HSCAN FC%";
        "FB FC%";
        "FB TApp";
        "SOCET FC%";
        "SOCET TApp(minA)";
        "SOCET TApp(minT)";
        "paper (Orig/HSCAN/FB/SOCET)";
      ]
    (per_system "System 1" soc1 "10.6 / 14.6 / 98.4@36,152 / 98.4@17,387-3,806"
    @ per_system "System 2" soc2 "11.2 / 13.8 / 98.2@46,394 / 98.2@16,435-3,998")

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablation: SOCET vs test-bus degeneration (every port on a mux)";
  let bus_smuxes soc =
    List.concat_map
      (fun ci ->
        List.map
          (fun (p : Rtl_core.port) ->
            {
              Schedule.sm_inst = ci.Soc.ci_name;
              sm_port = p.Rtl_core.p_name;
              sm_dir = (match p.Rtl_core.p_dir with `In -> `In | `Out -> `Out);
            })
          (Rtl_core.ports ci.Soc.ci_core))
      soc.Soc.insts
  in
  let rows =
    List.map
      (fun (name, soc) ->
        let socet = Select.evaluate soc ~choice:(all_v1 soc) () in
        let bus =
          Select.evaluate soc ~choice:(all_v1 soc) ~smuxes:(bus_smuxes soc) ()
        in
        [
          name;
          string_of_int socet.Select.pt_area;
          string_of_int socet.Select.pt_time;
          string_of_int bus.Select.pt_area;
          string_of_int bus.Select.pt_time;
          Printf.sprintf "%.1fx"
            (float_of_int bus.Select.pt_area /. float_of_int socet.Select.pt_area);
        ])
      [ ("System 1", soc1); ("System 2", soc2) ]
  in
  Ascii_table.print
    ~header:[ "system"; "SOCET area"; "SOCET TAT"; "bus area"; "bus TAT"; "area ratio" ]
    rows;
  section "Ablation: iterative improvement trajectory (objective i, System 1)";
  let traj = Select.minimize_time soc1 ~max_area:400 in
  Ascii_table.print
    ~header:[ "step"; "versions"; "smuxes"; "area"; "TAT" ]
    (List.mapi
       (fun i p ->
         [
           string_of_int i;
           String.concat " "
             (List.map (fun (n, k) -> Printf.sprintf "%s=%d" n k) p.Select.pt_choice);
           string_of_int (List.length p.Select.pt_smuxes);
           string_of_int p.Select.pt_area;
           string_of_int p.Select.pt_time;
         ])
       traj);
  section "Ablation: HSCAN shift multiplier vs FSCAN chain (per core)";
  Ascii_table.print
    ~header:
      [ "core"; "ATPG vec"; "HSCAN depth"; "HSCAN vec"; "FSCAN time"; "HSCAN gain" ]
    (List.map
       (fun ci ->
         let v = Soc.atpg_vectors ci in
         let nff = List.length (Socet_netlist.Netlist.dffs ci.Soc.ci_netlist) in
         let fscan_t = Socet_scan.Fscan.test_time ~n_ff:nff ~n_vectors:v in
         let hscan_v = Soc.hscan_vectors ci in
         [
           ci.Soc.ci_name;
           string_of_int v;
           string_of_int ci.Soc.ci_hscan.Socet_scan.Hscan.depth;
           string_of_int hscan_v;
           string_of_int fscan_t;
           Printf.sprintf "%.1fx" (float_of_int fscan_t /. float_of_int hscan_v);
         ])
       (soc1.Soc.insts @ soc2.Soc.insts))

let ablations_extensions () =
  section "Ablation: conventional test bus vs SOCET (chip-level hardware)";
  Ascii_table.print
    ~header:[ "system"; "bus muxes"; "bus TAT"; "SOCET chip DFT"; "SOCET TAT" ]
    (List.map
       (fun (name, soc) ->
         let bus = Baseline.test_bus soc in
         let s = Schedule.build soc ~choice:(all_v1 soc) () in
         [
           name;
           string_of_int bus.Baseline.tb_mux_overhead;
           string_of_int bus.Baseline.tb_time;
           string_of_int s.Schedule.s_area_overhead;
           string_of_int s.Schedule.s_total_time;
         ])
       [ ("System 1", soc1); ("System 2", soc2) ]);
  Printf.printf
    "(The bus also leaves the core-to-core interconnect untested, as the\n\
     paper notes in its introduction.)\n";
  section "Ablation: sequential vs overlapped test scheduling (extension)";
  let soc3 = Systems.system3 () in
  Ascii_table.print
    ~header:[ "system"; "sequential TAT"; "overlapped makespan"; "speedup" ]
    (List.map
       (fun (name, soc) ->
         let s = Schedule.build soc ~choice:(all_v1 soc) () in
         let makespan, _ = Schedule.parallel_makespan s in
         [
           name;
           string_of_int s.Schedule.s_total_time;
           string_of_int makespan;
           Printf.sprintf "%.2fx"
             (float_of_int s.Schedule.s_total_time /. float_of_int makespan);
         ])
       [ ("System 1 (chain)", soc1); ("System 2 (chain)", soc2);
         ("System 3 (3 islands)", soc3) ]);
  section "Ablation: D-algorithm vs PODEM (sampled faults, small cores)";
  Ascii_table.print
    ~header:
      [ "core"; "D-alg cov%"; "D-alg eff%"; "PODEM cov%"; "PODEM eff%"; "note" ]
    (List.map
       (fun core ->
         let nl = Socet_synth.Elaborate.core_to_netlist core in
         let d = Socet_atpg.Dalg.run ~sample:13 ~decision_limit:4000 nl in
         let p = Socet_atpg.Podem.run nl in
         [
           Rtl_core.name core;
           pct d.Socet_atpg.Dalg.coverage;
           pct d.Socet_atpg.Dalg.efficiency;
           pct p.Socet_atpg.Podem.coverage;
           pct p.Socet_atpg.Podem.efficiency;
           "single-path sensitization";
         ])
       [ Gcd_core.core (); X25.core () ]);
  section "Ablation: SCOAP-guided vs unguided PODEM";
  Ascii_table.print
    ~header:[ "core"; "guided vec"; "guided abort"; "unguided vec"; "unguided abort" ]
    (List.map
       (fun core ->
         let nl = Socet_synth.Elaborate.core_to_netlist core in
         let w = Socet_atpg.Podem.run ~use_scoap:true nl in
         let wo = Socet_atpg.Podem.run ~use_scoap:false nl in
         [
           Rtl_core.name core;
           string_of_int (List.length w.Socet_atpg.Podem.vectors);
           string_of_int (List.length w.Socet_atpg.Podem.aborted);
           string_of_int (List.length wo.Socet_atpg.Podem.vectors);
           string_of_int (List.length wo.Socet_atpg.Podem.aborted);
         ])
       [ Cpu.core (); Gcd_core.core (); X25.core () ])

let bist_section () =
  section "Memory BIST (the paper's RAM/ROM substitution, ref [8])";
  let open Socet_bist in
  Ascii_table.print
    ~header:[ "algorithm"; "ops/cell"; "fault coverage %"; "stuck-at"; "transition"; "coupling"; "decoder" ]
    (List.map
       (fun (name, alg) ->
         let r = March.evaluate ~words:64 ~width:8 ~name alg in
         let cls c =
           match List.find_opt (fun (n, _, _) -> n = c) r.March.by_class with
           | Some (_, d, t) -> Printf.sprintf "%d/%d" d t
           | None -> "-"
         in
         [
           name;
           string_of_int (March.op_count alg);
           pct r.March.coverage;
           cls "stuck-at";
           cls "transition";
           cls "coupling";
           cls "decoder";
         ])
       [ ("March C-", March.march_c_minus); ("MATS+", March.mats_plus) ]);
  List.iter
    (fun m ->
      Printf.printf "%s: %d bits, BIST controller %d cells\n" m.Soc.m_name
        m.Soc.m_bits m.Soc.m_bist_area)
    soc1.Soc.memories;
  section "Logic BIST (LFSR/MISR) vs deterministic ATPG (per core)";
  Ascii_table.print
    ~header:
      [ "core"; "BIST cov% (1024 pat)"; "ATPG cov%"; "ATPG vectors"; "MISR aliasing" ]
    (List.map
       (fun ci ->
         let r = Logic_bist.run ~patterns:1024 ci.Soc.ci_netlist in
         let a = Lazy.force ci.Soc.ci_atpg in
         [
           ci.Soc.ci_name;
           pct r.Logic_bist.coverage;
           pct a.Socet_atpg.Podem.coverage;
           string_of_int (List.length a.Socet_atpg.Podem.vectors);
           Printf.sprintf "%d/%d sampled" r.Logic_bist.aliased
             r.Logic_bist.aliasing_sampled;
         ])
       soc1.Soc.insts)

let diagnosis_section () =
  section "Diagnosis: dictionary resolution per core (detection set + 32 diag vectors)";
  Ascii_table.print
    ~header:[ "core"; "faults"; "det vec"; "resolution %"; "planted defects found" ]
    (List.map
       (fun ci ->
         let nl = ci.Soc.ci_netlist in
         let faults = Socet_atpg.Fault.collapse nl in
         let stats = Lazy.force ci.Soc.ci_atpg in
         let rng = Rng.create 17 in
         let extra =
           List.init 32 (fun _ ->
               Rng.bitvec rng (Socet_atpg.Fsim.vector_length nl))
         in
         let vectors = stats.Socet_atpg.Podem.vectors @ extra in
         let dict = Socet_atpg.Diagnose.build nl ~vectors ~faults in
         (* Plant every 29th fault and check it is recovered exactly. *)
         let planted = ref 0 and found = ref 0 in
         List.iteri
           (fun i fault ->
             if i mod 29 = 0 then begin
               incr planted;
               let observed = Socet_atpg.Diagnose.observe nl ~vectors ~fault in
               let cands = Socet_atpg.Diagnose.diagnose dict observed in
               if
                 List.exists
                   (fun (f, d) -> d = 0 && Socet_atpg.Fault.equal f fault)
                   cands
               then incr found
             end)
           faults;
         [
           ci.Soc.ci_name;
           string_of_int (List.length faults);
           string_of_int (List.length stats.Socet_atpg.Podem.vectors);
           pct (Socet_atpg.Diagnose.distinguishable dict);
           Printf.sprintf "%d/%d" !found !planted;
         ])
       soc2.Soc.insts);
  section "Test points: SCOAP-guided insertion vs random-pattern coverage";
  Ascii_table.print
    ~header:[ "core"; "before %"; "after % (8 points)"; "cost (cells)" ]
    (List.map
       (fun mk_name ->
         let name, mk = mk_name in
         let before, after =
           Socet_atpg.Testpoint.coverage_gain
             ~mk:(fun () -> Socet_synth.Elaborate.core_to_netlist (mk ()))
             ~budget:8 ~patterns:96
         in
         let nl = Socet_synth.Elaborate.core_to_netlist (mk ()) in
         let pts =
           Socet_atpg.Testpoint.propose nl (Socet_atpg.Scoap.compute nl) ~budget:8
         in
         [
           name;
           pct before;
           pct after;
           string_of_int (Socet_atpg.Testpoint.area_cost pts);
         ])
       [ ("GCD", Gcd_core.core); ("X25", X25.core) ])

(* ------------------------------------------------------------------ *)
(* Resilience: degradation ladders under injected failure              *)
(* ------------------------------------------------------------------ *)

let resilience_section () =
  section "Resilience: degradation ladders (robustness extension)";
  (* Per-fault ladder: a starvation-level PODEM backtrack limit forces
     aborts, so the D-algorithm rescue and random top-off rungs fire. *)
  let nl = Socet_synth.Elaborate.core_to_netlist (Cpu.core ()) in
  let faults = Socet_atpg.Fault.collapse nl in
  let tally = Hashtbl.create 4 in
  List.iter
    (fun f ->
      let r = Resilient.generate_fault ~backtrack_limit:1 nl f in
      let key =
        match (r.Resilient.a_rung, r.Resilient.a_outcome) with
        | Resilient.R_podem, _ -> "PODEM"
        | Resilient.R_dalg, _ -> "D-alg rescue"
        | Resilient.R_random, Socet_atpg.Podem.Test _ -> "random top-off"
        | Resilient.R_random, _ -> "still aborted"
      in
      Hashtbl.replace tally key (1 + Option.value ~default:0 (Hashtbl.find_opt tally key)))
    faults;
  Ascii_table.print
    ~header:[ "rung (CPU core, backtrack limit 1)"; "faults resolved" ]
    (List.filter_map
       (fun k ->
         Option.map (fun v -> [ k; string_of_int v ]) (Hashtbl.find_opt tally k))
       [ "PODEM"; "D-alg rescue"; "random top-off"; "still aborted" ]);
  (* Per-core ladder: fail every access-routing site and check the chip
     plan still comes out whole, every core on the FSCAN-BSCAN rung. *)
  let show label plan_result =
    match plan_result with
    | Ok p ->
        Printf.printf
          "%s: %d/%d core(s) on FSCAN-BSCAN fallback, TAT %d cycles, area %d cells\n"
          label p.Resilient.p_fallbacks
          (List.length p.Resilient.p_cores)
          p.Resilient.p_total_time p.Resilient.p_area_overhead
    | Error e -> Printf.printf "%s: %s\n" label (Error.to_string e)
  in
  show "clean plan" (Resilient.plan soc1 ~choice:(all_v1 soc1) ());
  Chaos.configure ~seed:7 ~prob:1.0 ~only:[ "core.access" ] true;
  show "all access routing failed" (Resilient.plan soc1 ~choice:(all_v1 soc1) ());
  Chaos.configure false;
  show "recovered (chaos off)" (Resilient.plan soc1 ~choice:(all_v1 soc1) ())

(* ------------------------------------------------------------------ *)
(* Optimizer: memoized vs oracle iterative improvement                 *)
(* ------------------------------------------------------------------ *)

(* (system, [(mode, (wall_ms, steps, full_builds, memo_hits))]) —
   stashed for the BENCH_socet.json "optimizer" section. *)
let optimizer_results :
    (string * (string * (float * int * int * int)) list) list ref =
  ref []

let optimizer_section () =
  section "Optimizer: memoized vs oracle minimize_time (max_area 600)";
  let run soc ~use_memo =
    let c0 = Obs.snapshot_counters () in
    let t0 = Unix.gettimeofday () in
    ignore (Select.minimize_time ~use_memo soc ~max_area:600);
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let c1 = Obs.snapshot_counters () in
    let delta name =
      Option.value ~default:0 (List.assoc_opt name c1)
      - Option.value ~default:0 (List.assoc_opt name c0)
    in
    ( wall_ms,
      delta "core.select.opt_steps",
      delta "core.schedule.full_builds",
      delta "core.select.opt_memo_hits" )
  in
  let rows =
    List.concat_map
      (fun soc ->
        List.map
          (fun (mode, use_memo) ->
            let ((wall_ms, steps, full_builds, memo_hits) as r) =
              run soc ~use_memo
            in
            (match
               List.assoc_opt soc.Soc.soc_name !optimizer_results
             with
            | Some modes ->
                optimizer_results :=
                  (soc.Soc.soc_name, (mode, r) :: modes)
                  :: List.remove_assoc soc.Soc.soc_name !optimizer_results
            | None ->
                optimizer_results :=
                  (soc.Soc.soc_name, [ (mode, r) ]) :: !optimizer_results);
            [
              soc.Soc.soc_name;
              mode;
              Printf.sprintf "%.1f" wall_ms;
              string_of_int steps;
              string_of_int full_builds;
              string_of_int memo_hits;
            ])
          [ ("memoized", true); ("oracle", false) ])
      [ soc1; soc2 ]
  in
  Ascii_table.print
    ~header:
      [ "system"; "mode"; "wall (ms)"; "opt steps"; "full builds"; "memo hits" ]
    rows;
  Printf.printf
    "Same trajectories either way (test_select enforces bit-identity); the \
     memo replaces full schedule builds with per-core route reuse.\n"

(* ------------------------------------------------------------------ *)
(* Parallel scaling: domain-pool sweep                                 *)
(* ------------------------------------------------------------------ *)

(* (engine, ([(domains, best seconds)], byte-identical across domain
   counts)) — stashed for the BENCH_socet.json "parallel" section the CI
   scaling gate reads. *)
let parallel_results : (string * ((int * float) list * bool)) list ref = ref []

(* Cheapest domain count actually measured for this workload — the
   per-engine recommendation the JSON carries (on a 1-core runner this
   is honestly 1; speedup gates key on hw_domains instead). *)
let argmin_domains times =
  fst
    (List.fold_left
       (fun (bd, bt) (d, t) -> if t < bt then (d, t) else (bd, bt))
       (1, infinity) times)

let parallel_section () =
  section "Parallel scaling: fault simulation, PODEM and design-space search";
  (* Each engine thunk returns a digest of its full result, so the sweep
     checks the determinism contract (byte-identical at any domain
     count) on the exact workloads it times. *)
  let time_best f =
    let best = ref infinity in
    let digest = ref "" in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      digest := f ();
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    (!best, !digest)
  in
  let sweep name f =
    let runs =
      List.map
        (fun d ->
          Pool.set_size d;
          let t, dg = time_best f in
          ((d, t), dg))
        [ 1; 2; 4 ]
    in
    Pool.set_size 1;
    let times = List.map fst runs in
    let identical =
      match runs with
      | (_, first) :: rest -> List.for_all (fun (_, dg) -> dg = first) rest
      | [] -> true
    in
    parallel_results := (name, (times, identical)) :: !parallel_results;
    (times, identical)
  in
  let cpu = Soc.inst soc1 "CPU" in
  let nl = cpu.Soc.ci_netlist in
  let faults = Socet_atpg.Fault.collapse nl in
  let rng = Rng.create 4242 in
  let vecs =
    List.init 64 (fun _ -> Rng.bitvec rng (Socet_atpg.Fsim.vector_length nl))
  in
  let digest_of v = Digest.to_hex (Digest.string (Marshal.to_string v [])) in
  let fault_sig fs =
    List.map
      (fun (f : Socet_atpg.Fault.t) ->
        (f.Socet_atpg.Fault.f_net, f.Socet_atpg.Fault.f_stuck))
      fs
  in
  let rows =
    List.map
      (fun (name, f) ->
        let times, identical = sweep name f in
        let t1 = List.assoc 1 times in
        (name
        :: List.map (fun (_, t) -> Printf.sprintf "%.1f" (t *. 1000.0)) times)
        @ [
            Printf.sprintf "%.2fx" (t1 /. List.assoc 4 times);
            (if identical then "yes" else "NO");
          ])
      [
        ( "fsim CPU (64 vec, full fault list)",
          fun () ->
            digest_of (fault_sig (Socet_atpg.Fsim.run_comb nl ~vectors:vecs ~faults)) );
        ( "podem CPU (16 random + determ)",
          fun () ->
            let s = Socet_atpg.Podem.run ~random_patterns:16 nl in
            digest_of
              ( List.map Bitvec.to_string s.Socet_atpg.Podem.vectors,
                fault_sig s.Socet_atpg.Podem.detected,
                fault_sig s.Socet_atpg.Podem.redundant,
                fault_sig s.Socet_atpg.Podem.aborted ) );
        ( "design space System 1",
          fun () ->
            digest_of
              (List.map
                 (fun (p : Select.point) ->
                   ( p.Select.pt_choice,
                     p.Select.pt_area,
                     p.Select.pt_time,
                     p.Select.pt_schedule.Schedule.s_total_time ))
                 (Select.design_space soc1)) );
        ( "design space System 2",
          fun () ->
            digest_of
              (List.map
                 (fun (p : Select.point) ->
                   ( p.Select.pt_choice,
                     p.Select.pt_area,
                     p.Select.pt_time,
                     p.Select.pt_schedule.Schedule.s_total_time ))
                 (Select.design_space soc2)) );
      ]
  in
  Ascii_table.print
    ~header:
      [
        "engine"; "1 dom (ms)"; "2 dom (ms)"; "4 dom (ms)"; "speedup@4";
        "identical";
      ]
    rows;
  Printf.printf
    "(identical = result digests match across 1/2/4 domains; this machine\n\
     has %d hardware domains)\n"
    (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Fault-simulation kernel: flat vs legacy engine                      *)
(* ------------------------------------------------------------------ *)

(* [(engine, (wall_ms, evals_per_s))] plus the measured speedup and the
   byte-identity check — stashed for the BENCH_socet.json "fsim_kernel"
   section. *)
let fsim_kernel_results : (string * (float * float)) list ref = ref []
let fsim_kernel_speedup = ref 0.0
let fsim_kernel_identical = ref false

let fsim_kernel_section () =
  section "Fault-simulation kernel: flat struct-of-arrays vs legacy engine";
  Pool.set_size 1;
  let counter name =
    Option.value ~default:0 (List.assoc_opt name (Obs.snapshot_counters ()))
  in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let cpu = Soc.inst soc1 "CPU" in
  let nl = cpu.Soc.ci_netlist in
  let faults = Socet_atpg.Fault.collapse nl in
  let rng = Rng.create 31337 in
  let vecs =
    List.init 64 (fun _ -> Rng.bitvec rng (Socet_atpg.Fsim.vector_length nl))
  in
  (* Work unit: one fault x word-batch cone evaluation.  Both engines
     drop detected faults identically, so one counted run gives the eval
     count for either. *)
  let e0 = counter "atpg.fsim.fault_evals" in
  let flat_det = Socet_atpg.Fsim.run_comb nl ~vectors:vecs ~faults in
  let evals = counter "atpg.fsim.fault_evals" - e0 in
  let legacy_det = Socet_atpg.Fsim.run_comb_ref nl ~vectors:vecs ~faults in
  fsim_kernel_identical := flat_det = legacy_det;
  let t_flat =
    time_best (fun () ->
        ignore (Socet_atpg.Fsim.run_comb nl ~vectors:vecs ~faults))
  in
  let t_legacy =
    time_best (fun () ->
        ignore (Socet_atpg.Fsim.run_comb_ref nl ~vectors:vecs ~faults))
  in
  let per_s t = float_of_int evals /. t in
  fsim_kernel_results :=
    [
      ("flat", (t_flat *. 1000.0, per_s t_flat));
      ("legacy", (t_legacy *. 1000.0, per_s t_legacy));
    ];
  fsim_kernel_speedup := t_legacy /. t_flat;
  Ascii_table.print
    ~header:[ "engine"; "fault evals"; "wall (ms)"; "evals/s" ]
    (List.map
       (fun (name, (ms, eps)) ->
         [
           name;
           string_of_int evals;
           Printf.sprintf "%.2f" ms;
           Printf.sprintf "%.0f" eps;
         ])
       !fsim_kernel_results);
  Printf.printf "kernel speedup (single domain): %.1fx; detected lists %s\n"
    !fsim_kernel_speedup
    (if !fsim_kernel_identical then "byte-identical" else "DIFFER (BUG)");
  (match List.assoc_opt "atpg.fsim.cone_gates" (Obs.snapshot_histograms ()) with
  | Some s ->
      Printf.printf
        "cone sizes (gates per fault site, %d sites built): min %.0f p50 %.0f \
         p90 %.0f p99 %.0f max %.0f\n"
        s.Socet_obs.Histogram.s_count s.Socet_obs.Histogram.s_min
        s.Socet_obs.Histogram.s_p50 s.Socet_obs.Histogram.s_p90
        s.Socet_obs.Histogram.s_p99 s.Socet_obs.Histogram.s_max
  | None -> ());
  if not !fsim_kernel_identical then
    failwith "flat kernel diverged from the legacy engine"

(* ------------------------------------------------------------------ *)
(* Job server: throughput/latency through the wire protocol            *)
(* ------------------------------------------------------------------ *)

(* (domains, (jobs/s, p50 ms, p99 ms)) — stashed for BENCH_socet.json. *)
let serve_results : (int * (float * float * float)) list ref = ref []

let serve_section () =
  section "Job server: explore jobs through the wire protocol (in-process)";
  let module Serve = Socet_serve in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ()) "socet-bench.sock"
  in
  let srv = Serve.Server.start ~queue_depth:64 ~socket () in
  let req =
    Serve.Proto.make
      (Serve.Proto.Explore
         {
           Serve.Proto.ex_system = "system1";
           ex_objective = Serve.Proto.Min_time;
           ex_max_area = 500;
           ex_max_time = 5000;
           ex_search_budget = None;
           ex_no_memo = false;
         })
  in
  let clients = 4 and per_client = 4 in
  let run_at domains =
    Pool.set_size domains;
    let lat = Array.make (clients * per_client) 0.0 in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init clients (fun ci ->
          Thread.create
            (fun () ->
              match Serve.Client.connect socket with
              | Error _ -> ()
              | Ok c ->
                  for i = 0 to per_client - 1 do
                    let s = Unix.gettimeofday () in
                    (match Serve.Client.request c req with
                    | Ok _ | Error _ -> ());
                    lat.((ci * per_client) + i) <-
                      (Unix.gettimeofday () -. s) *. 1000.0
                  done;
                  Serve.Client.close c)
            ())
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lat;
    let n = Array.length lat in
    let quantile q = lat.(min (n - 1) (int_of_float (q *. float_of_int (n - 1)))) in
    let jobs_s = float_of_int n /. wall in
    let p50 = quantile 0.5 and p99 = quantile 0.99 in
    serve_results := (domains, (jobs_s, p50, p99)) :: !serve_results;
    [
      string_of_int domains;
      string_of_int n;
      Printf.sprintf "%.1f" jobs_s;
      Printf.sprintf "%.1f" p50;
      Printf.sprintf "%.1f" p99;
    ]
  in
  let rows = List.map run_at [ 1; 4 ] in
  Pool.set_size 1;
  Serve.Server.shutdown srv;
  ignore (Serve.Server.wait srv);
  Ascii_table.print
    ~header:[ "domains"; "jobs"; "jobs/s"; "p50 ms"; "p99 ms" ]
    rows;
  Printf.printf
    "(%d concurrent clients, FIFO queue, responses byte-identical to the\n\
     direct CLI; per-job parallelism comes from the domain pool)\n"
    clients

(* ------------------------------------------------------------------ *)
(* Job server: supervised worker fleet                                 *)
(* ------------------------------------------------------------------ *)

(* (workers, (jobs/s, p50 ms, p99 ms)) and the availability-under-crash
   summary (jobs, injected kills, completed, retries) — stashed for the
   BENCH_socet.json "serve.fleet" section. *)
let serve_fleet_results : (int * (float * float * float)) list ref = ref []
let serve_fleet_availability : (int * int * int * int) option ref = ref None

(* Must run before any section that sizes the domain pool above 1:
   OCaml forbids fork in a process that has ever spawned a domain, and
   the fleet fork+execs its workers. *)
let serve_fleet_section () =
  section "Job server: supervised worker fleet (fork+exec isolation)";
  let module Serve = Socet_serve in
  Pool.set_size 1;
  let socket =
    Filename.concat (Filename.get_temp_dir_name ()) "socet-bench-fleet.sock"
  in
  (* System 2: each worker process (and each respawn) pays a cold
     search, so the cheaper system keeps the section's wall time about
     the fleet machinery rather than the optimizer. *)
  let req =
    Serve.Proto.make
      (Serve.Proto.Explore
         {
           Serve.Proto.ex_system = "system2";
           ex_objective = Serve.Proto.Min_time;
           ex_max_area = 500;
           ex_max_time = 5000;
           ex_search_budget = None;
           ex_no_memo = false;
         })
  in
  let clients = 2 and per_client = 4 in
  let measure () =
    let lat = Array.make (clients * per_client) 0.0 in
    let failures = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init clients (fun ci ->
          Thread.create
            (fun () ->
              match Serve.Client.connect socket with
              | Error _ -> ignore (Atomic.fetch_and_add failures per_client)
              | Ok c ->
                  for i = 0 to per_client - 1 do
                    let s = Unix.gettimeofday () in
                    (match Serve.Client.request c req with
                    | Ok r when r.Serve.Client.r_code = 0 -> ()
                    | Ok _ | Error _ -> ignore (Atomic.fetch_and_add failures 1));
                    lat.((ci * per_client) + i) <-
                      (Unix.gettimeofday () -. s) *. 1000.0
                  done;
                  Serve.Client.close c)
            ())
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lat;
    let n = Array.length lat in
    let quantile q = lat.(min (n - 1) (int_of_float (q *. float_of_int (n - 1)))) in
    (n, float_of_int n /. wall, quantile 0.5, quantile 0.99, Atomic.get failures)
  in
  (* max_retries >= the chaos trip budget below, so even every kill
     landing on one job stays within its retry budget. *)
  let with_fleet workers f =
    let srv = Serve.Server.start ~queue_depth:64 ~workers ~max_retries:3 ~socket () in
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.shutdown srv;
        ignore (Serve.Server.wait srv))
      f
  in
  let rows =
    List.map
      (fun workers ->
        with_fleet workers (fun () ->
            let n, jobs_s, p50, p99, _ = measure () in
            serve_fleet_results := (workers, (jobs_s, p50, p99)) :: !serve_fleet_results;
            [
              string_of_int workers;
              string_of_int n;
              Printf.sprintf "%.1f" jobs_s;
              Printf.sprintf "%.1f" p50;
              Printf.sprintf "%.1f" p99;
            ]))
      [ 1; 4 ]
  in
  Ascii_table.print
    ~header:[ "workers"; "jobs"; "jobs/s"; "p50 ms"; "p99 ms" ]
    rows;
  (* Availability under injected crashes: SIGKILL the dispatched worker
     for the first [kills] jobs; every job must still settle Ok. *)
  let kills = 3 in
  Socet_util.Chaos.configure ~prob:1.0 ~only:[ "serve.worker.kill" ] ~max_trips:kills
    true;
  Fun.protect ~finally:(fun () -> Socet_util.Chaos.configure false) (fun () ->
      with_fleet 2 (fun () ->
          let n, _, _, _, failures = measure () in
          let retries =
            match Serve.Client.connect socket with
            | Error _ -> 0
            | Ok c ->
                Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () ->
                    match Serve.Client.request c (Serve.Proto.make Serve.Proto.Health) with
                    | Ok r -> (
                        match Serve.Proto.decode_health (String.trim r.Serve.Client.r_stdout) with
                        | Ok h -> h.Serve.Proto.hl_retries
                        | Error _ -> 0)
                    | Error _ -> 0)
          in
          serve_fleet_availability := Some (n, kills, n - failures, retries);
          Printf.printf
            "availability under crash: %d/%d jobs completed with %d injected \
             worker kills (%d retried)\n"
            (n - failures) n kills retries))

(* ------------------------------------------------------------------ *)
(* Wrapper/TAM backend vs the paper's CCG flow                         *)
(* ------------------------------------------------------------------ *)

(* (label, (ccg TAT, ccg area, tam TAT, tam area)) for Systems 1-2, plus
   the fleet summary — stashed for the BENCH_socet.json "tam" section. *)
let tam_system_results : (string * (int * int * int * int)) list ref = ref []
let tam_fleet_summary : Socet_tam.Fleet.summary option ref = ref None

let tam_fleet_count = 120
let tam_fleet_seed = 2026

let tam_section () =
  section "Wrapper/TAM backend: TAT vs chip DFT area against the CCG flow";
  let module B = Socet_tam.Backend in
  let plan_outcomes soc =
    let get (module M : B.CHIP_BACKEND) =
      match M.plan soc with
      | Ok p -> (p.B.p_total_time, p.B.p_area_overhead)
      | Error e -> failwith (Error.to_string e)
    in
    (get (module B.Ccg_backend), get (module B.Tam_backend))
  in
  let rows =
    List.map
      (fun (label, soc) ->
        let (ct, ca), (tt, ta) = plan_outcomes soc in
        tam_system_results := (label, (ct, ca, tt, ta)) :: !tam_system_results;
        [
          label;
          string_of_int ct;
          string_of_int ca;
          string_of_int tt;
          string_of_int ta;
          Printf.sprintf "%.2fx" (float_of_int ct /. float_of_int (max 1 tt));
        ])
      [ ("system1", soc1); ("system2", soc2) ]
  in
  Ascii_table.print
    ~header:
      [ "system"; "ccg TAT"; "ccg area"; "tam TAT"; "tam area"; "tam speedup" ]
    rows;
  Printf.printf
    "\nrandom-SOC fleet (%d heterogeneous SOCs, seed %d, both backends):\n"
    tam_fleet_count tam_fleet_seed;
  let entries =
    Socet_tam.Fleet.run ~seed:tam_fleet_seed ~count:tam_fleet_count ()
  in
  let s = Socet_tam.Fleet.summarize entries in
  tam_fleet_summary := Some s;
  print_string (Socet_tam.Fleet.render entries);
  if s.Socet_tam.Fleet.s_failures > 0 || s.Socet_tam.Fleet.s_issues > 0 then
    failwith "tam fleet produced failures or replay violations"

(* ------------------------------------------------------------------ *)
(* Persistent result cache: warm vs cold                               *)
(* ------------------------------------------------------------------ *)

(* Fleet pass: (cold ms, warm ms, hits, misses, identical, store bytes);
   serve pass: (cold jobs/s, warm jobs/s, warm hit rate); the optional
   ≥4-domain warm pass — all stashed for the BENCH_socet.json "cache"
   section. *)
let cache_fleet_results :
    (float * float * int * int * bool * int) option ref =
  ref None

let cache_serve_results : (float * float * float) option ref = ref None
let cache_domain_scaling : (int, float) Either.t option ref = ref None

let cache_section () =
  section "Persistent result cache: warm vs cold";
  let module Cache = Socet_cache.Cache in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let scoreboard_totals () =
    List.fold_left
      (fun (h, m) (_, h', m') -> (h + h', m + m'))
      (0, 0) (Cache.scoreboard ())
  in
  let tmp_dir tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "socet-bench-cache-%s-%d" tag (Unix.getpid ()))
  in
  (* Fleet: the tam section's 120-SOC workload, cold then warm against
     the same store.  Fleet.run keeps both replay oracles engaged, so a
     cache bug that changes any planned result fails here, not just the
     byte-diff. *)
  let fleet_dir = tmp_dir "fleet" in
  let store =
    match Cache.open_dir fleet_dir with
    | Ok s -> s
    | Error e -> failwith (Error.to_string e)
  in
  let run_fleet () =
    Cache.with_store (Some store) (fun () ->
        Socet_tam.Fleet.run ~seed:tam_fleet_seed ~count:tam_fleet_count ())
  in
  Cache.reset_scoreboard ();
  let cold_entries, cold_ms = time run_fleet in
  Cache.reset_scoreboard ();
  let warm_entries, warm_ms = time run_fleet in
  let hits, misses = scoreboard_totals () in
  let identical =
    String.equal
      (Socet_tam.Fleet.render cold_entries)
      (Socet_tam.Fleet.render warm_entries)
  in
  let check label entries =
    let s = Socet_tam.Fleet.summarize entries in
    if s.Socet_tam.Fleet.s_failures > 0 || s.Socet_tam.Fleet.s_issues > 0 then
      failwith (label ^ " cached fleet pass failed the replay oracle")
  in
  check "cold" cold_entries;
  check "warm" warm_entries;
  if not identical then failwith "warm fleet output differs from cold";
  let store_bytes = Socet_cache.Store.bytes_used store in
  cache_fleet_results :=
    Some (cold_ms, warm_ms, hits, misses, identical, store_bytes);
  Ascii_table.print
    ~header:[ "pass"; "wall ms"; "hits"; "misses"; "hit rate" ]
    [
      [ "cold"; Printf.sprintf "%.0f" cold_ms; "0"; "-"; "0.00" ];
      [
        "warm";
        Printf.sprintf "%.0f" warm_ms;
        string_of_int hits;
        string_of_int misses;
        Printf.sprintf "%.2f" (float_of_int hits /. float_of_int (max 1 (hits + misses)));
      ];
    ];
  Printf.printf
    "warm/cold = %.2f (acceptance: <= 0.50); outputs byte-identical; store %d KiB\n"
    (warm_ms /. cold_ms)
    (store_bytes / 1024);
  (* Serve path: the same explore job through the wire protocol with the
     request-level cache field, one sequential client, two passes. *)
  let serve_dir = tmp_dir "serve" in
  let module Serve = Socet_serve in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ()) "socet-bench-cache.sock"
  in
  let srv = Serve.Server.start ~queue_depth:16 ~socket () in
  let chip system backend =
    Serve.Proto.Chip
      { Serve.Proto.ch_system = system; ch_strict = false; ch_backend = backend }
  in
  let reqs =
    List.map
      (fun body -> Serve.Proto.make ~cache:serve_dir body)
      [
        chip "system1" Serve.Proto.Ccg;
        chip "system1" Serve.Proto.Tam;
        chip "system2" Serve.Proto.Ccg;
        chip "system2" Serve.Proto.Tam;
        Serve.Proto.Atpg { Serve.Proto.at_core = "cpu" };
        Serve.Proto.Atpg { Serve.Proto.at_core = "gcd" };
        Serve.Proto.Atpg { Serve.Proto.at_core = "display" };
        Serve.Proto.Atpg { Serve.Proto.at_core = "preprocessor" };
      ]
  in
  let jobs = List.length reqs in
  let run_pass () =
    match Serve.Client.connect socket with
    | Error e -> failwith (Error.to_string e)
    | Ok c ->
        let _, wall_ms =
          time (fun () ->
              List.iter
                (fun req ->
                  match Serve.Client.request c req with
                  | Ok _ -> ()
                  | Error e -> failwith (Error.to_string e))
                reqs)
        in
        Serve.Client.close c;
        float_of_int jobs /. (wall_ms /. 1000.0)
  in
  let cold_jobs_s = run_pass () in
  Cache.reset_scoreboard ();
  let warm_jobs_s = run_pass () in
  let sh, sm = scoreboard_totals () in
  let serve_hit_rate = float_of_int sh /. float_of_int (max 1 (sh + sm)) in
  Serve.Server.shutdown srv;
  ignore (Serve.Server.wait srv);
  cache_serve_results := Some (cold_jobs_s, warm_jobs_s, serve_hit_rate);
  Printf.printf
    "serve (%d chip jobs, request-level cache field): cold %.1f jobs/s, \
     warm %.1f jobs/s, warm hit rate %.2f\n"
    jobs cold_jobs_s warm_jobs_s serve_hit_rate;
  (* Warm fleet under >= 4 pool domains: only meaningful with >= 4
     hardware threads, so gate on the runner. *)
  let hw = Stdlib.Domain.recommended_domain_count () in
  if hw >= 4 then begin
    Pool.set_size 4;
    let entries, ms = time run_fleet in
    Pool.set_size 1;
    if
      not
        (String.equal
           (Socet_tam.Fleet.render cold_entries)
           (Socet_tam.Fleet.render entries))
    then failwith "4-domain warm fleet output differs from cold";
    cache_domain_scaling := Some (Either.Right ms);
    Printf.printf "warm fleet at 4 domains: %.0f ms (byte-identical)\n" ms
  end
  else begin
    cache_domain_scaling := Some (Either.Left hw);
    Printf.printf
      "(>=4-domain warm pass skipped: runner reports %d hardware thread(s))\n"
      hw
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "Micro-benchmarks (Bechamel; one per reproduced table/figure)";
  let open Bechamel in
  let cpu = Soc.inst soc1 "CPU" in
  let nl = cpu.Soc.ci_netlist in
  let faults = Socet_atpg.Fault.collapse nl in
  let rng = Rng.create 99 in
  let vecs =
    List.init 32 (fun _ -> Rng.bitvec rng (Socet_atpg.Fsim.vector_length nl))
  in
  let fresh_rcg () =
    let r = Rcg.of_core (Cpu.core ()) in
    ignore (Socet_scan.Hscan.insert r);
    r
  in
  let tests =
    [
      Test.make ~name:"fig6+fig8 version ladder"
        (Staged.stage (fun () -> ignore (Version.generate (fresh_rcg ()))));
      Test.make ~name:"fig10+table1 schedule build"
        (Staged.stage (fun () ->
             ignore (Schedule.build soc1 ~choice:(all_v1 soc1) ())));
      Test.make ~name:"table2 hscan insert"
        (Staged.stage (fun () ->
             ignore (Socet_scan.Hscan.insert (Rcg.of_core (Cpu.core ())))));
      Test.make ~name:"table3 fault sim (32 vec)"
        (Staged.stage (fun () ->
             ignore (Socet_atpg.Fsim.run_comb nl ~vectors:vecs ~faults)));
      Test.make ~name:"sec3 access routing"
        (Staged.stage (fun () ->
             let ccg = Ccg.build soc1 ~choice:[ ("PREP", 2) ] in
             let bookings = Access.fresh_bookings () in
             List.iter
               (fun input -> ignore (Access.justify_input ccg bookings ~input))
               (Ccg.core_inputs ccg "DISPLAY")));
    ]
  in
  let rows =
    List.concat_map
      (fun t ->
        let raw =
          Benchmark.all
            (Benchmark.cfg ~quota:(Time.second 0.25) ~kde:None ())
            [ Toolkit.Instance.monotonic_clock ]
            t
        in
        let results =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:false
               ~predictors:[| Measure.run |])
            Toolkit.Instance.monotonic_clock raw
        in
        Hashtbl.fold
          (fun name ols acc ->
            let time =
              match Analyze.OLS.estimates ols with
              | Some [ est ] ->
                  if est > 1_000_000.0 then Printf.sprintf "%.2f ms/run" (est /. 1e6)
                  else Printf.sprintf "%.0f ns/run" est
              | _ -> "n/a"
            in
            [ name; time ] :: acc)
          results [])
      tests
  in
  Ascii_table.print ~header:[ "benchmark"; "time" ] (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Machine-readable output: BENCH_socet.json                           *)
(* ------------------------------------------------------------------ *)

(* Per-engine phases: wall time comes from the observability span
   timers, counter totals from the registry.  Only metrics whose full
   name starts with one of the phase's prefixes are attributed to it. *)
let bench_phases =
  [
    ("atpg", [ "atpg.podem."; "atpg.dalg."; "atpg.compact." ],
     [ "atpg.podem.run"; "atpg.dalg.run" ]);
    ("fsim", [ "atpg.fsim." ], [ "atpg.fsim.run_comb"; "atpg.fsim.run_seq" ]);
    ("schedule",
     [ "core.schedule."; "core.access."; "core.tsearch."; "core.select.";
       "core.version." ],
     [ "core.schedule.build"; "core.select.design_space";
       "core.select.minimize_time"; "core.select.minimize_area" ]);
    ("resilient", [ "core.resilient." ], [ "core.resilient.plan" ]);
    ("tam", [ "tam." ],
     [ "tam.schedule.build"; "tam.fleet.run"; "tam.backend.ccg.plan";
       "tam.backend.tam.plan" ]);
  ]

let write_bench_json file =
  let counters = Obs.snapshot_counters () in
  let timers = Obs.snapshot_timers () in
  let histograms = Obs.snapshot_histograms () in
  let starts_with_any prefixes name =
    List.exists (fun p -> String.starts_with ~prefix:p name) prefixes
  in
  let phase (name, prefixes, wall_timers) =
    let wall_ms =
      List.fold_left (fun acc t -> acc +. Obs.timer_total_ms t) 0.0 wall_timers
    in
    let phase_counters =
      List.filter_map
        (fun (n, v) ->
          if starts_with_any prefixes n then
            Some (n, Json.Num (float_of_int v))
          else None)
        counters
    in
    ( name,
      Json.Obj
        [ ("wall_ms", Json.Num wall_ms); ("counters", Json.Obj phase_counters) ]
    )
  in
  let histogram_json (n, (s : Socet_obs.Histogram.summary)) =
    ( n,
      Json.Obj
        [
          ("count", Json.Num (float_of_int s.Socet_obs.Histogram.s_count));
          ("min", Json.Num s.Socet_obs.Histogram.s_min);
          ("p50", Json.Num s.Socet_obs.Histogram.s_p50);
          ("p90", Json.Num s.Socet_obs.Histogram.s_p90);
          ("p99", Json.Num s.Socet_obs.Histogram.s_p99);
          ("max", Json.Num s.Socet_obs.Histogram.s_max);
        ] )
  in
  let timer_json (n, (count, total_ms)) =
    ( n,
      Json.Obj
        [
          ("calls", Json.Num (float_of_int count));
          ("total_ms", Json.Num total_ms);
        ] )
  in
  let parallel_json =
    (* Overall recommendation: the domain count with the lowest summed
       wall time across the swept engines, recomputed from this run's
       measurements — not a pinned hardware guess.  hw_domains is what
       the machine offers; the CI speedup gates only apply when it is
       high enough to scale. *)
    let summed =
      List.fold_left
        (fun acc (_, (times, _)) ->
          List.map (fun (d, t) -> (d, t +. List.assoc d times)) acc)
        [ (1, 0.0); (2, 0.0); (4, 0.0) ]
        !parallel_results
    in
    Json.Obj
      (("hw_domains",
        Json.Num (float_of_int (Domain.recommended_domain_count ())))
      :: ("recommended_domains",
          Json.Num (float_of_int (argmin_domains summed)))
      :: List.rev_map
           (fun (name, (times, identical)) ->
             let t1 = List.assoc 1 times in
             ( name,
               Json.Obj
                 (List.map
                    (fun (d, t) ->
                      (Printf.sprintf "ms_%d_domains" d, Json.Num (t *. 1000.0)))
                    times
                 @ [
                     ("speedup_4", Json.Num (t1 /. List.assoc 4 times));
                     ( "recommended_domains",
                       Json.Num (float_of_int (argmin_domains times)) );
                     ("byte_identical", Json.Num (if identical then 1.0 else 0.0));
                   ]) ))
           !parallel_results)
  in
  let optimizer_json =
    Json.Obj
      (List.rev_map
         (fun (system, modes) ->
           ( system,
             Json.Obj
               (List.rev_map
                  (fun (mode, (wall_ms, steps, full_builds, memo_hits)) ->
                    ( mode,
                      Json.Obj
                        [
                          ("wall_ms", Json.Num wall_ms);
                          ("steps", Json.Num (float_of_int steps));
                          ( "full_builds",
                            Json.Num (float_of_int full_builds) );
                          ("memo_hits", Json.Num (float_of_int memo_hits));
                        ] ))
                  modes) ))
         !optimizer_results)
  in
  let serve_json =
    let rates entries =
      List.rev_map
        (fun (key, (jobs_s, p50, p99)) ->
          ( key,
            Json.Obj
              [
                ("jobs_per_s", Json.Num jobs_s);
                ("p50_ms", Json.Num p50);
                ("p99_ms", Json.Num p99);
              ] ))
        entries
    in
    let in_process =
      rates
        (List.map
           (fun (d, r) -> (Printf.sprintf "%d_domains" d, r))
           !serve_results)
    in
    let fleet =
      rates
        (List.map
           (fun (w, r) -> (Printf.sprintf "%d_workers" w, r))
           !serve_fleet_results)
      @
      match !serve_fleet_availability with
      | None -> []
      | Some (jobs, kills, completed, retries) ->
          [
            ( "availability_under_crash",
              Json.Obj
                [
                  ("jobs", Json.Num (float_of_int jobs));
                  ("injected_kills", Json.Num (float_of_int kills));
                  ("completed", Json.Num (float_of_int completed));
                  ( "availability",
                    Json.Num (float_of_int completed /. float_of_int (max 1 jobs))
                  );
                  ("retries", Json.Num (float_of_int retries));
                ] );
          ]
    in
    Json.Obj (in_process @ [ ("fleet", Json.Obj fleet) ])
  in
  let fsim_kernel_json =
    Json.Obj
      (List.map
         (fun (name, (ms, eps)) ->
           ( name,
             Json.Obj
               [ ("wall_ms", Json.Num ms); ("evals_per_s", Json.Num eps) ] ))
         !fsim_kernel_results
      @ [
          ("speedup", Json.Num !fsim_kernel_speedup);
          ( "byte_identical",
            Json.Num (if !fsim_kernel_identical then 1.0 else 0.0) );
        ]
      @
      match List.assoc_opt "atpg.fsim.cone_gates" histograms with
      | Some s -> [ ("cone_gates", snd (histogram_json ("cone_gates", s))) ]
      | None -> [])
  in
  let tam_json =
    let systems =
      List.rev_map
        (fun (label, (ct, ca, tt, ta)) ->
          ( label,
            Json.Obj
              [
                ("ccg_tat_cycles", Json.Num (float_of_int ct));
                ("ccg_area_cells", Json.Num (float_of_int ca));
                ("tam_tat_cycles", Json.Num (float_of_int tt));
                ("tam_area_cells", Json.Num (float_of_int ta));
              ] ))
        !tam_system_results
    in
    let fleet =
      match !tam_fleet_summary with
      | None -> []
      | Some s ->
          [
            ( "fleet",
              Json.Obj
                [
                  ("socs", Json.Num (float_of_int s.Socet_tam.Fleet.s_count));
                  ("seed", Json.Num (float_of_int tam_fleet_seed));
                  ( "failures",
                    Json.Num (float_of_int s.Socet_tam.Fleet.s_failures) );
                  ( "replay_issues",
                    Json.Num (float_of_int s.Socet_tam.Fleet.s_issues) );
                  ("ccg_mean_tat", Json.Num s.Socet_tam.Fleet.s_ccg_mean_time);
                  ("ccg_mean_area", Json.Num s.Socet_tam.Fleet.s_ccg_mean_area);
                  ("tam_mean_tat", Json.Num s.Socet_tam.Fleet.s_tam_mean_time);
                  ("tam_mean_area", Json.Num s.Socet_tam.Fleet.s_tam_mean_area);
                  ( "tam_time_wins",
                    Json.Num (float_of_int s.Socet_tam.Fleet.s_tam_time_wins) );
                ] );
          ]
    in
    Json.Obj (systems @ fleet)
  in
  let cache_json =
    let fleet =
      match !cache_fleet_results with
      | None -> []
      | Some (cold_ms, warm_ms, hits, misses, identical, store_bytes) ->
          [
            ( "fleet",
              Json.Obj
                [
                  ("socs", Json.Num (float_of_int tam_fleet_count));
                  ("cold_ms", Json.Num cold_ms);
                  ("warm_ms", Json.Num warm_ms);
                  ("warm_over_cold", Json.Num (warm_ms /. cold_ms));
                  ("hits", Json.Num (float_of_int hits));
                  ("misses", Json.Num (float_of_int misses));
                  ( "hit_rate",
                    Json.Num
                      (float_of_int hits /. float_of_int (max 1 (hits + misses)))
                  );
                  ("byte_identical", Json.Num (if identical then 1.0 else 0.0));
                  ("store_bytes", Json.Num (float_of_int store_bytes));
                ] );
          ]
    in
    let serve =
      match !cache_serve_results with
      | None -> []
      | Some (cold_jobs_s, warm_jobs_s, hit_rate) ->
          [
            ( "serve",
              Json.Obj
                [
                  ("cold_jobs_per_s", Json.Num cold_jobs_s);
                  ("warm_jobs_per_s", Json.Num warm_jobs_s);
                  ("warm_hit_rate", Json.Num hit_rate);
                ] );
          ]
    in
    let scaling =
      match !cache_domain_scaling with
      | None -> []
      | Some (Either.Left hw) ->
          [
            ( "domain_scaling",
              Json.Obj
                [
                  ("skipped", Json.Num 1.0);
                  ("hardware_threads", Json.Num (float_of_int hw));
                ] );
          ]
      | Some (Either.Right ms) ->
          [
            ( "domain_scaling",
              Json.Obj
                [ ("skipped", Json.Num 0.0); ("warm_ms_4_domains", Json.Num ms) ]
            );
          ]
    in
    Json.Obj (fleet @ serve @ scaling)
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "socet");
        ("paper", Json.Str "DAC'98 Ghosh/Dey/Jha");
        ("phases", Json.Obj (List.map phase bench_phases));
        ("optimizer", optimizer_json);
        ("parallel", parallel_json);
        ("fsim_kernel", fsim_kernel_json);
        ("serve", serve_json);
        ("tam", tam_json);
        ("cache", cache_json);
        ( "counters",
          Json.Obj
            (List.map (fun (n, v) -> (n, Json.Num (float_of_int v))) counters)
        );
        ("timers", Json.Obj (List.map timer_json timers));
        ("histograms", Json.Obj (List.map histogram_json histograms));
      ]
  in
  let oc = open_out file in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" file

let () =
  (* A fork+exec'd fleet worker re-enters this binary; route it into the
     serve loop before any benchmarking starts. *)
  Socet_serve.Worker.exec_guard ();
  (* No-op sink: counters and span timers accumulate, but no trace
     events are buffered — keeps the harness overhead negligible. *)
  Obs.configure ();
  Printf.printf "SOCET reproduction bench harness (DAC'98 Ghosh/Dey/Jha)\n";
  Printf.printf "Systems: %s (%d cells), %s (%d cells)\n" soc1.Soc.soc_name
    (Soc.original_area soc1) soc2.Soc.soc_name (Soc.original_area soc2);
  (* First: the fleet forks workers, which OCaml forbids once any other
     section has spawned a pool domain. *)
  serve_fleet_section ();
  worked_example ();
  fig6 ();
  fig8 ();
  fig10 ();
  table1 ();
  table2 ();
  table3 ();
  ablations ();
  ablations_extensions ();
  bist_section ();
  diagnosis_section ();
  resilience_section ();
  optimizer_section ();
  parallel_section ();
  fsim_kernel_section ();
  serve_section ();
  tam_section ();
  cache_section ();
  bechamel_suite ();
  write_bench_json "BENCH_socet.json";
  print_newline ()
