open Socet_rtl
open Rtl_types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ranges                                                             *)
(* ------------------------------------------------------------------ *)

let test_range_basics () =
  check_int "full width" 8 (range_width (full 8));
  check_int "bits width" 4 (range_width (bits 4 7));
  check "equal" true (range_equal (bits 0 3) (bits 0 3));
  check "not equal" false (range_equal (bits 0 3) (bits 0 4));
  check "overlap" true (ranges_overlap (bits 0 3) (bits 3 5));
  check "no overlap" false (ranges_overlap (bits 0 3) (bits 4 7));
  check "bad range" true
    (try
       ignore (bits 5 4);
       false
     with Socet_util.Error.Socet_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Core building and validation                                        *)
(* ------------------------------------------------------------------ *)

let tiny_core () =
  let c = Rtl_core.create "tiny" in
  Rtl_core.add_input c "IN" 8;
  Rtl_core.add_output c "OUT" 8;
  Rtl_core.add_reg c "R" 8;
  Rtl_core.add_transfer c ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R") ();
  Rtl_core.add_transfer c ~kind:Direct ~src:(Rtl_core.reg c "R")
    ~dst:(Rtl_core.port c "OUT") ();
  c

let test_core_builder () =
  let c = tiny_core () in
  Rtl_core.validate c;
  check_int "ports" 2 (List.length (Rtl_core.ports c));
  check_int "inputs" 1 (List.length (Rtl_core.inputs c));
  check_int "outputs" 1 (List.length (Rtl_core.outputs c));
  check_int "regs" 1 (List.length (Rtl_core.regs c));
  check_int "transfers" 2 (List.length (Rtl_core.transfers c));
  check_int "reg bits" 8 (Rtl_core.reg_bit_count c);
  check_int "input bits" 8 (Rtl_core.input_bit_count c);
  check_int "output bits" 8 (Rtl_core.output_bit_count c)

let test_duplicate_name_rejected () =
  let c = Rtl_core.create "dup" in
  Rtl_core.add_input c "X" 4;
  check "duplicate rejected" true
    (try
       Rtl_core.add_reg c "X" 4;
       false
     with Socet_util.Error.Socet_error _ -> true)

let test_width_mismatch_rejected () =
  let c = Rtl_core.create "w" in
  Rtl_core.add_input c "IN" 8;
  Rtl_core.add_reg c "R" 4;
  Rtl_core.add_transfer c ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R") ();
  check "width mismatch rejected" true
    (try
       Rtl_core.validate c;
       false
     with Socet_util.Error.Socet_error _ -> true)

let test_direction_rules () =
  let c = Rtl_core.create "dir" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  (* Output used as a source must be rejected. *)
  Rtl_core.add_transfer c ~src:(Rtl_core.port c "OUT") ~dst:(Rtl_core.port c "OUT") ();
  check "output as source rejected" true
    (try
       Rtl_core.validate c;
       false
     with Socet_util.Error.Socet_error _ -> true)

let test_logic_width_change () =
  let c = Rtl_core.create "seg" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 7;
  Rtl_core.add_reg c "R" 7;
  Rtl_core.add_transfer c ~kind:(Logic Fdec7seg) ~src:(Rtl_core.port c "IN")
    ~dst:(Rtl_core.reg c "R") ();
  Rtl_core.add_transfer c ~kind:Direct ~src:(Rtl_core.reg c "R")
    ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  check "7seg widths accepted" true true

let test_unknown_names () =
  let c = Rtl_core.create "u" in
  check "unknown reg" true
    (try
       ignore (Rtl_core.reg c "nope");
       false
     with Socet_util.Error.Socet_error _ -> true);
  check "unknown port" true
    (try
       ignore (Rtl_core.port c "nope");
       false
     with Socet_util.Error.Socet_error _ -> true)

(* ------------------------------------------------------------------ *)
(* RCG extraction                                                      *)
(* ------------------------------------------------------------------ *)

let split_core () =
  (* IN -> R1 (full), R1[hi] -> R2, R1[lo] -> R3, {R2,R3} -> R4 slices,
     R4 -> OUT.  R1 is O-split, R4 is C-split. *)
  let c = Rtl_core.create "split" in
  Rtl_core.add_input c "IN" 8;
  Rtl_core.add_output c "OUT" 8;
  Rtl_core.add_reg c "R1" 8;
  Rtl_core.add_reg c "R2" 4;
  Rtl_core.add_reg c "R3" 4;
  Rtl_core.add_reg c "R4" 8;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R1") ();
  t ~src:(Rtl_core.reg_bits c "R1" 4 7) ~dst:(Rtl_core.reg c "R2") ();
  t ~src:(Rtl_core.reg_bits c "R1" 0 3) ~dst:(Rtl_core.reg c "R3") ();
  t ~src:(Rtl_core.reg c "R2") ~dst:(Rtl_core.reg_bits c "R4" 4 7) ();
  t ~src:(Rtl_core.reg c "R3") ~dst:(Rtl_core.reg_bits c "R4" 0 3) ();
  t ~kind:Direct ~src:(Rtl_core.reg c "R4") ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  c

let test_rcg_nodes_edges () =
  let rcg = Rcg.of_core (split_core ()) in
  check_int "inputs" 1 (List.length (Rcg.input_ids rcg));
  check_int "outputs" 1 (List.length (Rcg.output_ids rcg));
  check_int "regs" 4 (List.length (Rcg.reg_ids rcg));
  check_int "edges" 6 (Socet_graph.Digraph.edge_count (Rcg.graph rcg))

let test_rcg_split_detection () =
  let rcg = Rcg.of_core (split_core ()) in
  let id = Rcg.node_id rcg in
  check "R1 is O-split" true (Rcg.is_o_split rcg (id "R1"));
  check "R1 is not C-split" false (Rcg.is_c_split rcg (id "R1"));
  check "R4 is C-split" true (Rcg.is_c_split rcg (id "R4"));
  check "R4 is not O-split" false (Rcg.is_o_split rcg (id "R4"));
  check "R2 is plain" false
    (Rcg.is_c_split rcg (id "R2") || Rcg.is_o_split rcg (id "R2"))

let test_rcg_slice_groups () =
  let rcg = Rcg.of_core (split_core ()) in
  let id = Rcg.node_id rcg in
  let out_groups = Rcg.out_slice_groups rcg (id "R1") in
  check_int "R1 fans out in two slices" 2 (List.length out_groups);
  let in_groups = Rcg.in_slice_groups rcg (id "R4") in
  check_int "R4 written in two slices" 2 (List.length in_groups);
  (* Groups are sorted by lsb. *)
  (match in_groups with
  | (r1, _) :: (r2, _) :: _ ->
      check "sorted by lsb" true (r1.lsb < r2.lsb)
  | _ -> Alcotest.fail "expected two groups")

let test_rcg_excludes_logic_edges () =
  let c = Rtl_core.create "lg" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  Rtl_core.add_reg c "R" 4;
  Rtl_core.add_transfer c ~kind:(Logic Finc) ~src:(Rtl_core.port c "IN")
    ~dst:(Rtl_core.reg c "R") ();
  Rtl_core.add_transfer c ~kind:Direct ~src:(Rtl_core.reg c "R")
    ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  let rcg = Rcg.of_core c in
  (* Only the direct edge is present; the incrementer path is lossy. *)
  check_int "logic edge omitted" 1 (Socet_graph.Digraph.edge_count (Rcg.graph rcg))

let test_rcg_cpu_matches_paper () =
  (* The paper's Fig. 7 marks ACCUMULATOR as C-split and IR as O-split. *)
  let rcg = Rcg.of_core (Socet_cores.Cpu.core ()) in
  let id = Rcg.node_id rcg in
  check "AC is C-split" true (Rcg.is_c_split rcg (id "AC"));
  check "IR is O-split" true (Rcg.is_o_split rcg (id "IR"))

let test_hscan_marking_roundtrip () =
  let rcg = Rcg.of_core (split_core ()) in
  check_int "no hscan marks initially" 0 (List.length (Rcg.hscan_edges rcg));
  let result = Socet_scan.Hscan.insert rcg in
  check "hscan marks appear" true (List.length (Rcg.hscan_edges rcg) > 0);
  check "depth positive" true (result.Socet_scan.Hscan.depth > 0)

let () =
  Alcotest.run "socet_rtl"
    [
      ("range", [ Alcotest.test_case "basics" `Quick test_range_basics ]);
      ( "core",
        [
          Alcotest.test_case "builder" `Quick test_core_builder;
          Alcotest.test_case "duplicate names" `Quick test_duplicate_name_rejected;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch_rejected;
          Alcotest.test_case "direction rules" `Quick test_direction_rules;
          Alcotest.test_case "logic width change" `Quick test_logic_width_change;
          Alcotest.test_case "unknown names" `Quick test_unknown_names;
        ] );
      ( "rcg",
        [
          Alcotest.test_case "nodes and edges" `Quick test_rcg_nodes_edges;
          Alcotest.test_case "split detection" `Quick test_rcg_split_detection;
          Alcotest.test_case "slice groups" `Quick test_rcg_slice_groups;
          Alcotest.test_case "logic edges excluded" `Quick test_rcg_excludes_logic_edges;
          Alcotest.test_case "CPU splits match paper" `Quick test_rcg_cpu_matches_paper;
          Alcotest.test_case "hscan marking" `Quick test_hscan_marking_roundtrip;
        ] );
    ]
