(* The wrapper/TAM backend: partition balance, packing validity (via the
   golden-model replay), TAT consistency, and fleet determinism across
   domain counts. *)

open Socet_util
open Socet_tam

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_domains n f =
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size 1) f

(* ------------------------------------------------------------------ *)
(* Wrapper partitioning                                                *)
(* ------------------------------------------------------------------ *)

let arb_partition_input =
  QCheck.(
    quad (int_bound 40) (list_of_size Gen.(0 -- 6) (int_bound 30)) (int_bound 40)
      (int_range 1 24))

let prop_partition_balanced =
  QCheck.Test.make ~name:"tam: wrapper chains balanced within 1 cell" ~count:300
    arb_partition_input
    (fun (inputs, internal, outputs, width) ->
      let chains = Wrapper.partition ~inputs ~internal ~outputs ~width in
      let sizes =
        List.map
          (fun c -> c.Wrapper.wc_inputs + c.Wrapper.wc_internal + c.Wrapper.wc_outputs)
          chains
      in
      match sizes with
      | [] -> false
      | s :: rest ->
          let lo = List.fold_left min s rest and hi = List.fold_left max s rest in
          hi - lo <= 1)

let prop_partition_conserves =
  QCheck.Test.make ~name:"tam: partition loses no cells" ~count:300
    arb_partition_input
    (fun (inputs, internal, outputs, width) ->
      let chains = Wrapper.partition ~inputs ~internal ~outputs ~width in
      List.fold_left (fun a c -> a + c.Wrapper.wc_inputs) 0 chains = inputs
      && List.fold_left (fun a c -> a + c.Wrapper.wc_internal) 0 chains
         = List.fold_left ( + ) 0 internal
      && List.fold_left (fun a c -> a + c.Wrapper.wc_outputs) 0 chains = outputs
      && List.length chains
         = min width (max 1 (inputs + List.fold_left ( + ) 0 internal + outputs)))

(* ------------------------------------------------------------------ *)
(* Schedule validity on random SOCs                                    *)
(* ------------------------------------------------------------------ *)

let soc_of_seed ?(hetero = true) seed =
  Socet_cores.Gen.random_soc ~hetero (Rng.create seed)

let prop_schedule_replays_clean =
  QCheck.Test.make
    ~name:"tam: packed schedules pass the golden-model replay" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 2 24))
    (fun (seed, width) ->
      let soc = soc_of_seed seed in
      let sched = Schedule.build ~width soc in
      Replay.check soc sched = [])

let prop_tat_is_max_top =
  QCheck.Test.make ~name:"tam: TAT equals the tallest rectangle top" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let soc = soc_of_seed seed in
      let sched = Schedule.build soc in
      let top =
        List.fold_left
          (fun a p -> max a (p.Schedule.pl_start + p.Schedule.pl_time))
          0 sched.Schedule.t_placements
      in
      sched.Schedule.t_total_time = top)

let prop_width_bound =
  QCheck.Test.make ~name:"tam: no band leaves the TAM" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 1 12))
    (fun (seed, width) ->
      let soc = soc_of_seed seed in
      let sched = Schedule.build ~width soc in
      List.for_all
        (fun p ->
          p.Schedule.pl_wire >= 0
          && p.Schedule.pl_width >= 1
          && p.Schedule.pl_wire + p.Schedule.pl_width <= width)
        sched.Schedule.t_placements)

(* A budget only limits the improvement pass — the schedule must still
   replay clean, and zero fuel must reproduce the plain BFD packing. *)
let test_budget_only_limits_improvement () =
  let soc = soc_of_seed 42 in
  let starved = Schedule.build ~budget:(Budget.create ~steps:0 ()) soc in
  check_int "no repacks on zero fuel" 0 starved.Schedule.t_improve_steps;
  check "starved schedule still valid" true (Replay.check soc starved = []);
  let free = Schedule.build soc in
  check "unbudgeted schedule valid" true (Replay.check soc free = []);
  check "improvement never hurts" true
    (free.Schedule.t_total_time <= starved.Schedule.t_total_time)

(* ------------------------------------------------------------------ *)
(* The backend seam on the paper's systems                             *)
(* ------------------------------------------------------------------ *)

let test_backends_on_paper_systems () =
  List.iter
    (fun (name, soc) ->
      List.iter
        (fun backend ->
          match Backend.of_name backend with
          | Error e -> Alcotest.failf "%s: %s" name (Error.to_string e)
          | Ok (module B : Backend.CHIP_BACKEND) -> (
              match B.plan soc with
              | Error e ->
                  Alcotest.failf "%s/%s: %s" name backend (Error.to_string e)
              | Ok p ->
                  check (name ^ "/" ^ backend ^ " rows") true
                    (List.length p.Backend.p_rows = List.length soc.Socet_core.Soc.insts);
                  check (name ^ "/" ^ backend ^ " time positive") true
                    (p.Backend.p_total_time > 0);
                  check (name ^ "/" ^ backend ^ " area positive") true
                    (p.Backend.p_area_overhead > 0)))
        Backend.names)
    [
      ("system1", Socet_cores.Systems.system1 ());
      ("system2", Socet_cores.Systems.system2 ());
    ]

let test_unknown_backend_rejected () =
  match Backend.of_name "mux" with
  | Ok _ -> Alcotest.fail "backend \"mux\" should not resolve"
  | Error e -> check_int "invalid-input exit" 3 (Error.exit_code e)

(* ------------------------------------------------------------------ *)
(* Fleet determinism                                                   *)
(* ------------------------------------------------------------------ *)

let fleet_fingerprint entries =
  List.map
    (fun e ->
      let show = function
        | Ok (o : Fleet.outcome) -> Printf.sprintf "%d/%d" o.Fleet.o_time o.Fleet.o_area
        | Error m -> "err:" ^ m
      in
      Printf.sprintf "%d %s %d %s %s %d" e.Fleet.e_index e.Fleet.e_soc
        e.Fleet.e_cores (show e.Fleet.e_ccg) (show e.Fleet.e_tam)
        e.Fleet.e_issues)
    entries

let test_fleet_deterministic_across_jobs () =
  let run jobs =
    with_domains jobs @@ fun () -> Fleet.run ~seed:7 ~count:12 ()
  in
  let f1 = fleet_fingerprint (run 1) in
  let f2 = fleet_fingerprint (run 2) in
  let f4 = fleet_fingerprint (run 4) in
  Alcotest.(check (list string)) "jobs 1 = jobs 2" f1 f2;
  Alcotest.(check (list string)) "jobs 1 = jobs 4" f1 f4

let test_fleet_clean () =
  let entries = Fleet.run ~seed:11 ~count:16 () in
  let s = Fleet.summarize entries in
  check_int "all entries" 16 s.Fleet.s_count;
  check_int "no backend failures" 0 s.Fleet.s_failures;
  check_int "no replay issues" 0 s.Fleet.s_issues

let () =
  Alcotest.run "socet_tam"
    [
      ( "wrapper",
        [
          QCheck_alcotest.to_alcotest prop_partition_balanced;
          QCheck_alcotest.to_alcotest prop_partition_conserves;
        ] );
      ( "schedule",
        [
          QCheck_alcotest.to_alcotest prop_schedule_replays_clean;
          QCheck_alcotest.to_alcotest prop_tat_is_max_top;
          QCheck_alcotest.to_alcotest prop_width_bound;
          Alcotest.test_case "budget starves only the improver" `Quick
            test_budget_only_limits_improvement;
        ] );
      ( "backend",
        [
          Alcotest.test_case "both backends on systems 1-2" `Slow
            test_backends_on_paper_systems;
          Alcotest.test_case "unknown backend rejected" `Quick
            test_unknown_backend_rejected;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "bit-identical at jobs 1/2/4" `Slow
            test_fleet_deterministic_across_jobs;
          Alcotest.test_case "clean run, no failures or issues" `Slow
            test_fleet_clean;
        ] );
    ]
