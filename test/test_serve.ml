(* Tests for lib/serve: the wire codec (qcheck round-trip and
   corruption-tolerance properties), the request protocol, the admission
   queue, and an end-to-end in-process server exercised by concurrent
   clients — including the headline contract that a response streamed
   through the server is byte-identical to the direct CLI output at any
   domain count. *)

open Socet_serve
module Err = Socet_util.Error

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let frame_gen =
  QCheck.Gen.(
    let* kind = oneofl [ Wire.Request; Wire.Response; Wire.Chunk; Wire.Error_frame ] in
    let* id = int_range 0 0x3FFF_FFFF in
    let* seq = int_range 0 0xFFFF in
    let* payload = string_size (int_range 0 2048) in
    return { Wire.f_kind = kind; f_id = id; f_seq = seq; f_payload = payload })

let frame_print fr =
  Printf.sprintf "{id=%d seq=%d payload=%d bytes}" fr.Wire.f_id fr.Wire.f_seq
    (String.length fr.Wire.f_payload)

let frame_arb = QCheck.make ~print:frame_print frame_gen

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire encode/decode round-trips" ~count:200 frame_arb
    (fun fr ->
      let b = Wire.encode fr in
      match Wire.decode b ~pos:0 with
      | Ok (fr', consumed) -> fr' = fr && consumed = Bytes.length b
      | Error _ -> false)

let prop_wire_truncation =
  QCheck.Test.make ~name:"every proper prefix is `Truncated" ~count:100
    QCheck.(pair frame_arb (float_bound_inclusive 1.0))
    (fun (fr, frac) ->
      let b = Wire.encode fr in
      let cut = int_of_float (frac *. float_of_int (Bytes.length b - 1)) in
      match Wire.decode (Bytes.sub b 0 cut) ~pos:0 with
      | Error `Truncated -> true
      | Ok _ | Error (`Corrupt _) -> false)

let prop_wire_corruption_never_raises =
  (* Arbitrary bytes, and valid frames with one flipped byte: decode must
     return a result, never raise, and a damaged header never parses as
     the original frame. *)
  QCheck.Test.make ~name:"decode survives arbitrary bytes" ~count:200
    (QCheck.make QCheck.Gen.(string_size ~gen:char (int_range 0 256)))
    (fun s ->
      match Wire.decode (Bytes.of_string s) ~pos:0 with
      | Ok _ | Error `Truncated | Error (`Corrupt _) -> true)

let test_wire_bad_magic () =
  let b = Wire.encode (Wire.request ~id:7 "hello") in
  Bytes.set b 0 'X';
  (match Wire.decode b ~pos:0 with
  | Error (`Corrupt msg) -> check "names the magic" true (String.length msg > 0)
  | Ok _ | Error `Truncated -> Alcotest.fail "bad magic must be `Corrupt");
  let b = Wire.encode (Wire.request ~id:7 "hello") in
  Bytes.set b 4 '\xFF';
  (match Wire.decode b ~pos:0 with
  | Error (`Corrupt _) -> ()
  | Ok _ | Error `Truncated -> Alcotest.fail "bad version must be `Corrupt")

let test_wire_oversize_rejected () =
  check "encode refuses oversized payload" true
    (try
       ignore (Wire.encode (Wire.request ~id:1 (String.make (Wire.max_payload + 1) 'x')));
       false
     with Invalid_argument _ -> true);
  (* A length field beyond the cap is corruption at decode time too. *)
  let b = Wire.encode (Wire.request ~id:1 "x") in
  Bytes.set_int32_be b (Wire.header_size - 4) 0x7FFF_FFFFl;
  match Wire.decode b ~pos:0 with
  | Error (`Corrupt _) -> ()
  | Ok _ | Error `Truncated -> Alcotest.fail "oversize length must be `Corrupt"

(* ------------------------------------------------------------------ *)
(* Proto                                                               *)
(* ------------------------------------------------------------------ *)

let test_proto_roundtrip () =
  let reqs =
    [
      Proto.make Proto.Ping;
      Proto.make ~deadline_ms:250 Proto.Stats;
      Proto.make
        (Proto.Explore
           {
             Proto.ex_system = "system2";
             ex_objective = Proto.Min_area;
             ex_max_area = 123;
             ex_max_time = 456;
             ex_search_budget = Some 7;
             ex_no_memo = true;
           });
      Proto.make ~deadline_ms:1
        (Proto.Chip
           { Proto.ch_system = "system1"; ch_strict = true; ch_backend = Proto.Ccg });
      Proto.make
        (Proto.Chip
           { Proto.ch_system = "system2"; ch_strict = false; ch_backend = Proto.Tam });
      Proto.make (Proto.Atpg { Proto.at_core = "gcd" });
    ]
  in
  List.iter
    (fun req ->
      match Proto.decode (Proto.encode req) with
      | Ok req' -> check "request round-trips" true (req' = req)
      | Error e -> Alcotest.failf "decode failed: %s" e)
    reqs

let test_proto_of_args () =
  (match
     Proto.of_args ~deadline_ms:9
       [ "explore"; "system1"; "--max-area=600"; "--search-budget"; "12"; "--no-memo" ]
   with
  | Ok
      {
        Proto.rq_deadline_ms = Some 9;
        rq_cache = None;
        rq_body =
          Proto.Explore
            { Proto.ex_system = "system1"; ex_max_area = 600; ex_search_budget = Some 12; ex_no_memo = true; _ };
      } ->
      ()
  | Ok _ -> Alcotest.fail "parsed into the wrong request"
  | Error e -> Alcotest.failf "of_args failed: %s" e);
  check "unknown command rejected" true
    (Result.is_error (Proto.of_args [ "frobnicate" ]));
  check "missing target rejected" true (Result.is_error (Proto.of_args [ "chip" ]));
  check "unknown flag rejected" true
    (Result.is_error (Proto.of_args [ "chip"; "system1"; "--bogus" ]));
  (match Proto.of_args [ "chip"; "system2"; "--backend"; "tam" ] with
  | Ok { Proto.rq_body = Proto.Chip { Proto.ch_backend = Proto.Tam; _ }; _ } -> ()
  | _ -> Alcotest.fail "--backend tam did not parse");
  check "unknown backend rejected" true
    (Result.is_error (Proto.of_args [ "chip"; "system1"; "--backend=mux" ]));
  (* Wire compatibility: a ccg chip request encodes without any backend
     field, byte-identical to the pre-backend protocol. *)
  let ccg =
    Proto.make
      (Proto.Chip
         { Proto.ch_system = "system1"; ch_strict = false; ch_backend = Proto.Ccg })
  in
  check "ccg encoding carries no backend field" false
    (let enc = Proto.encode ccg in
     let needle = "backend" in
     let n = String.length needle and l = String.length enc in
     let rec has i = i + n <= l && (String.sub enc i n = needle || has (i + 1)) in
     has 0)

let test_proto_legacy_frames_decode () =
  (* Payloads frozen from the pre-fleet protocol (package 1.1.x): a new
     server must keep decoding them bit-for-bit so old clients keep
     working, and the fleet additions must not leak into pre-existing
     encodings (an old server must keep decoding a new client's
     non-Health requests). *)
  let cases =
    [
      ({|{"op":"ping"}|}, Proto.make Proto.Ping);
      ({|{"op":"stats","deadline_ms":250}|}, Proto.make ~deadline_ms:250 Proto.Stats);
      ( {|{"op":"chip","system":"system1","strict":true}|},
        Proto.make
          (Proto.Chip
             { Proto.ch_system = "system1"; ch_strict = true; ch_backend = Proto.Ccg })
      );
      ({|{"op":"atpg","core":"gcd"}|}, Proto.make (Proto.Atpg { Proto.at_core = "gcd" }));
    ]
  in
  List.iter
    (fun (s, want) ->
      match Proto.decode s with
      | Ok got -> check "legacy payload decodes unchanged" true (got = want)
      | Error e -> Alcotest.failf "legacy payload rejected: %s" e)
    cases;
  let contains needle hay =
    let n = String.length needle and l = String.length hay in
    let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (_, req) ->
      check "pre-fleet encoding is free of fleet fields" false
        (contains "health" (Proto.encode req)))
    cases;
  (* Health itself round-trips on the same wire version. *)
  match Proto.decode (Proto.encode (Proto.make Proto.Health)) with
  | Ok { Proto.rq_body = Proto.Health; _ } -> ()
  | Ok _ | Error _ -> Alcotest.fail "Health must round-trip"

let health_gen =
  QCheck.Gen.(
    let worker =
      let* wh_id = int_range 0 64 in
      let* wh_pid = int_range 0 1_000_000 in
      let* wh_state =
        oneofl [ Proto.W_idle; Proto.W_busy; Proto.W_respawning; Proto.W_stopped ]
      in
      let* wh_uptime_ms = int_range 0 1_000_000 in
      let* wh_jobs = int_range 0 10_000 in
      let* wh_crashes = int_range 0 100 in
      return { Proto.wh_id; wh_pid; wh_state; wh_uptime_ms; wh_jobs; wh_crashes }
    in
    let* hl_uptime_ms = int_range 0 10_000_000 in
    let* hl_queue_depth = int_range 0 1024 in
    let* hl_pending = int_range 0 1024 in
    let* hl_workers = list_size (int_range 0 8) worker in
    let* hl_breaker_open = bool in
    let* hl_retries = int_range 0 10_000 in
    return
      {
        Proto.hl_uptime_ms;
        hl_queue_depth;
        hl_pending;
        hl_workers;
        hl_breaker_open;
        hl_retries;
      })

let prop_health_roundtrip =
  QCheck.Test.make ~name:"health report encode/decode round-trips" ~count:200
    (QCheck.make health_gen) (fun h ->
      match Proto.decode_health (Proto.encode_health h) with
      | Ok h' -> h' = h
      | Error _ -> false)

let prop_outcome_roundtrip =
  QCheck.Test.make ~name:"worker outcome codec round-trips" ~count:200
    QCheck.(
      triple
        (make Gen.(string_size ~gen:printable (int_range 0 512)))
        (make Gen.(string_size ~gen:printable (int_range 0 128)))
        (int_range (-255) 255))
    (fun (out, err, code) ->
      let o = { Dispatch.o_stdout = out; o_stderr = err; o_code = code } in
      match Worker.decode_outcome (Worker.encode_outcome o) with
      | Ok o' -> o' = o
      | Error _ -> false)

let test_proto_error_roundtrip () =
  let e =
    Err.make ~kind:Err.Overloaded ~engine:"serve"
      ~ctx:[ ("retry_after_ms", "40"); ("depth", "8") ]
      "job queue full"
  in
  match Proto.decode_error (Proto.encode_error e) with
  | Error m -> Alcotest.failf "decode_error failed: %s" m
  | Ok e' ->
      check "kind survives" true (e'.Err.err_kind = Err.Overloaded);
      check_int "exit code survives" (Err.exit_code e) (Err.exit_code e');
      check_str "message survives" e.Err.err_msg e'.Err.err_msg;
      check_str "ctx survives" "40" (List.assoc "retry_after_ms" e'.Err.err_ctx)

(* ------------------------------------------------------------------ *)
(* Queue                                                               *)
(* ------------------------------------------------------------------ *)

let ok_outcome out = Ok { Dispatch.o_stdout = out; o_stderr = ""; o_code = 0 }

let test_queue_fifo_and_results () =
  let q = Queue.create ~depth:16 () in
  let tickets =
    List.init 5 (fun i ->
        Result.get_ok
          (Queue.submit q ~label:(Printf.sprintf "job%d" i) (fun () ->
               ok_outcome (string_of_int i))))
  in
  List.iteri
    (fun i t ->
      match Queue.await t with
      | Ok o -> check_str "FIFO order preserved" (string_of_int i) o.Dispatch.o_stdout
      | Error e -> Alcotest.failf "job failed: %s" (Err.to_string e))
    tickets;
  Queue.drain q

let test_queue_overload_rejects () =
  let gate = Mutex.create () in
  Mutex.lock gate;
  let q = Queue.create ~depth:2 () in
  (* First job blocks the dispatcher on the gate; the queue then holds
     every further admission until [depth] is hit. *)
  let blocker =
    Result.get_ok
      (Queue.submit q ~label:"blocker" (fun () ->
           Mutex.lock gate;
           Mutex.unlock gate;
           ok_outcome "unblocked"))
  in
  (* Give the dispatcher a moment to pick up the blocker. *)
  Thread.delay 0.05;
  let q1 = Queue.submit q ~label:"q1" (fun () -> ok_outcome "q1") in
  let q2 = Queue.submit q ~label:"q2" (fun () -> ok_outcome "q2") in
  check "queue accepts up to depth" true (Result.is_ok q1 && Result.is_ok q2);
  (match Queue.submit q ~label:"q3" (fun () -> ok_outcome "q3") with
  | Ok _ -> Alcotest.fail "beyond depth must reject"
  | Error e ->
      check "rejection is Overloaded" true (e.Err.err_kind = Err.Overloaded);
      check_int "overload exit code is 5" 5 (Err.exit_code e);
      check "carries a backoff hint" true
        (int_of_string (List.assoc "retry_after_ms" e.Err.err_ctx) >= 1));
  Mutex.unlock gate;
  check "blocker completes" true (Result.is_ok (Queue.await blocker));
  Queue.drain q;
  (match Queue.submit q ~label:"late" (fun () -> ok_outcome "late") with
  | Ok _ -> Alcotest.fail "draining queue must reject"
  | Error e -> check "drain rejection is Overloaded" true (e.Err.err_kind = Err.Overloaded))

let test_queue_cold_backoff_hint () =
  (* Before any job has completed there is no average runtime to scale
     by; the hint must still be a sane wait, not 0. *)
  let q = Queue.create ~depth:8 () in
  check "cold hint has a floor" true (Queue.retry_after_ms q >= 25);
  Queue.drain q

let test_queue_deadline_expired_in_queue () =
  let q = Queue.create ~depth:4 () in
  let t =
    Result.get_ok
      (Queue.submit q ~label:"expired"
         ~deadline_us:(Unix.gettimeofday () *. 1e6)
         (fun () -> Alcotest.fail "expired job must never run"))
  in
  (match Queue.await t with
  | Ok _ -> Alcotest.fail "expired deadline must fail"
  | Error e ->
      check "kind is Exhausted" true (e.Err.err_kind = Err.Exhausted);
      check_int "exit code is 4" 4 (Err.exit_code e));
  Queue.drain q

(* ------------------------------------------------------------------ *)
(* End-to-end server                                                   *)
(* ------------------------------------------------------------------ *)

let socket_path = Filename.concat (Filename.get_temp_dir_name ()) "socet-test.sock"

let with_server ?queue_depth f =
  let srv = Server.start ?queue_depth ~socket:socket_path () in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      ignore (Server.wait srv))
    (fun () -> f ())

let with_client f =
  match Client.connect socket_path with
  | Error e -> Alcotest.failf "connect failed: %s" (Err.to_string e)
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* system2 and the gcd core are the cheapest requests that still run the
   full optimizer / ATPG pipelines — each Dispatch.run re-elaborates its
   system, so e2e tests pay the engine cost per request. *)
let explore_req =
  Proto.make
    (Proto.Explore
       {
         Proto.ex_system = "system2";
         ex_objective = Proto.Min_time;
         ex_max_area = 500;
         ex_max_time = 5000;
         ex_search_budget = None;
         ex_no_memo = false;
       })

let atpg_req = Proto.make (Proto.Atpg { Proto.at_core = "gcd" })
let chip_req =
  Proto.make
    (Proto.Chip
       { Proto.ch_system = "system2"; ch_strict = false; ch_backend = Proto.Ccg })

let test_server_byte_identity_across_domains () =
  (* Reference bytes: the direct engine call (what the CLI prints),
     computed sequentially. *)
  Socet_util.Pool.set_size 1;
  let reference req =
    match Dispatch.run req with
    | Ok o -> o
    | Error e -> Alcotest.failf "direct run failed: %s" (Err.to_string e)
  in
  let ref_explore = reference explore_req and ref_atpg = reference atpg_req in
  check "reference output is non-trivial" true
    (String.length ref_explore.Dispatch.o_stdout > 0
    && String.length ref_atpg.Dispatch.o_stdout > 0);
  with_server (fun () ->
      List.iter
        (fun domains ->
          Socet_util.Pool.set_size domains;
          with_client (fun c ->
              List.iter
                (fun (req, reference) ->
                  match Client.request c req with
                  | Error e -> Alcotest.failf "request failed: %s" (Err.to_string e)
                  | Ok r ->
                      check_str
                        (Printf.sprintf "stdout identical at %d domain(s)" domains)
                        reference.Dispatch.o_stdout r.Client.r_stdout;
                      check_str "stderr identical" reference.Dispatch.o_stderr
                        r.Client.r_stderr;
                      check_int "exit code identical" reference.Dispatch.o_code
                        r.Client.r_code)
                [ (explore_req, ref_explore); (atpg_req, ref_atpg) ]))
        [ 1; 2; 4 ]);
  Socet_util.Pool.set_size 1

let test_server_concurrent_clients () =
  with_server (fun () ->
      let failures = Atomic.make 0 in
      let expected =
        match Dispatch.run atpg_req with
        | Ok o -> o.Dispatch.o_stdout
        | Error e -> Alcotest.failf "direct run failed: %s" (Err.to_string e)
      in
      let ping = Proto.version_lines () in
      let worker _ =
        Thread.create
          (fun () ->
            with_client (fun c ->
                let expect req want =
                  match Client.request c req with
                  | Ok r when r.Client.r_stdout = want -> ()
                  | Ok _ | Error _ -> Atomic.incr failures
                in
                expect (Proto.make Proto.Ping) ping;
                expect atpg_req expected;
                expect (Proto.make Proto.Ping) ping))
          ()
      in
      let threads = List.init 6 worker in
      List.iter Thread.join threads;
      check_int "all 18 concurrent replies byte-identical" 0 (Atomic.get failures))

let test_server_deadline_expiry () =
  with_server (fun () ->
      with_client (fun c ->
          match Client.request c (Proto.make ~deadline_ms:0 chip_req.Proto.rq_body) with
          | Ok _ -> Alcotest.fail "deadline 0 must expire in the queue"
          | Error e ->
              check "kind is Exhausted" true (e.Err.err_kind = Err.Exhausted);
              check_int "client-side exit code is 4" 4 (Err.exit_code e)))

let test_server_ping_stats_and_chunking () =
  with_server (fun () ->
      with_client (fun c ->
          (match Client.request c (Proto.make Proto.Ping) with
          | Ok r -> check_str "ping echoes version_lines" (Proto.version_lines ()) r.Client.r_stdout
          | Error e -> Alcotest.failf "ping failed: %s" (Err.to_string e));
          (match Client.request c (Proto.make Proto.Stats) with
          | Ok r -> check "stats is JSON" true (String.length r.Client.r_stdout > 2)
          | Error e -> Alcotest.failf "stats failed: %s" (Err.to_string e));
          (* Chunk reassembly: space system3 is several chunks' worth only
             for big payloads; assert the on_chunk stream concatenates to
             the reply either way. *)
          let seen = Buffer.create 256 in
          match
            Client.request c ~on_chunk:(Buffer.add_string seen) (Proto.make Proto.Ping)
          with
          | Ok r -> check_str "chunk stream equals stdout" r.Client.r_stdout (Buffer.contents seen)
          | Error e -> Alcotest.failf "ping failed: %s" (Err.to_string e)))

let test_server_bad_request_is_structured () =
  with_server (fun () ->
      (* Speak raw Wire to send a syntactically valid frame holding a
         semantically broken payload. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket_path);
          Wire.write_frame fd (Wire.request ~id:3 "this is not json");
          match Wire.read_frame fd with
          | Ok { Wire.f_kind = Wire.Error_frame; f_id = 3; f_payload = p; _ } -> (
              match Proto.decode_error p with
              | Ok e -> check_int "bad request maps to exit 3" 3 (Err.exit_code e)
              | Error m -> Alcotest.failf "undecodable error payload: %s" m)
          | Ok _ -> Alcotest.fail "expected an error frame"
          | Error _ -> Alcotest.fail "expected a reply, got eof/corrupt"))

(* ------------------------------------------------------------------ *)
(* Supervised fleet                                                    *)
(* ------------------------------------------------------------------ *)

let fleet_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "socet-test-fleet.sock"

let with_chaos_kill ~max_trips f =
  Socet_util.Chaos.configure ~prob:1.0 ~only:[ "serve.worker.kill" ] ~max_trips true;
  Fun.protect ~finally:(fun () -> Socet_util.Chaos.configure false) f

let decode_health_exn stdout =
  match Proto.decode_health (String.trim stdout) with
  | Ok h -> h
  | Error m -> Alcotest.failf "undecodable health report: %s" m

let test_fleet_chaos_kill_recovers () =
  (* The headline robustness contract end-to-end: with one worker and a
     chaos SIGKILL armed for exactly one trip, the first job loses its
     worker mid-run, the supervisor respawns and retries, and the client
     still receives bytes identical to the direct engine call.

     Pool size 1 keeps this process single-domain: OCaml forbids fork
     once any domain has ever been spawned, which is also why the fleet
     group runs before the multi-domain byte-identity tests. *)
  Socet_util.Pool.set_size 1;
  let reference =
    match Dispatch.run atpg_req with
    | Ok o -> o
    | Error e -> Alcotest.failf "direct run failed: %s" (Err.to_string e)
  in
  let srv = Server.start ~workers:1 ~socket:fleet_socket () in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      check_int "fleet server drains to exit 0" 0 (Server.wait srv))
  @@ fun () ->
  match Client.connect fleet_socket with
  | Error e -> Alcotest.failf "connect failed: %s" (Err.to_string e)
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      with_chaos_kill ~max_trips:1 (fun () ->
          match Client.request c atpg_req with
          | Error e -> Alcotest.failf "request failed: %s" (Err.to_string e)
          | Ok r ->
              check_str "stdout identical through a worker loss"
                reference.Dispatch.o_stdout r.Client.r_stdout;
              check_int "exit code identical" reference.Dispatch.o_code r.Client.r_code);
      (match Client.request c (Proto.make Proto.Health) with
      | Error e -> Alcotest.failf "health failed: %s" (Err.to_string e)
      | Ok r ->
          check_int "healthy fleet probes 0" 0 r.Client.r_code;
          let h = decode_health_exn r.Client.r_stdout in
          check_int "one worker slot" 1 (List.length h.Proto.hl_workers);
          check_int "the chaos kill is on the books" 1
            (List.fold_left
               (fun acc w -> acc + w.Proto.wh_crashes)
               0 h.Proto.hl_workers);
          check_int "the lost job was retried once" 1 h.Proto.hl_retries;
          check "breaker stayed closed" false h.Proto.hl_breaker_open);
      (* A second request on the respawned worker — the recovered fleet
         must serve steady state, not just the retry path. *)
      match Client.request c (Proto.make Proto.Ping) with
      | Ok r -> check_str "respawned worker serves" (Proto.version_lines ()) r.Client.r_stdout
      | Error e -> Alcotest.failf "post-recovery ping failed: %s" (Err.to_string e)

let test_fleet_health_in_process_mode () =
  with_server (fun () ->
      with_client (fun c ->
          match Client.request c (Proto.make Proto.Health) with
          | Error e -> Alcotest.failf "health failed: %s" (Err.to_string e)
          | Ok r ->
              let h = decode_health_exn r.Client.r_stdout in
              check_int "no workers in in-process mode" 0 (List.length h.Proto.hl_workers);
              check "breaker closed" false h.Proto.hl_breaker_open;
              check_int "probe exit 0" 0 r.Client.r_code))

let test_breaker_trips_and_fails_fast () =
  (* Supervisor-level, with a tight config so the whole crash loop runs
     in milliseconds: every dispatch is chaos-killed, so the third crash
     trips the breaker, fires [on_trip] once, and every later exec fails
     fast with a retriable Overloaded error. *)
  Socet_util.Pool.set_size 1;
  let tripped = Atomic.make 0 in
  let config =
    {
      Supervisor.default_config with
      Supervisor.workers = 1;
      max_retries = 1;
      backoff_base_ms = 5;
      backoff_max_ms = 20;
      breaker_window_ms = 60_000;
      breaker_crashes = 3;
    }
  in
  with_chaos_kill ~max_trips:0 (fun () ->
      let sup =
        Supervisor.create ~config ~on_trip:(fun () -> Atomic.incr tripped) ()
      in
      Fun.protect ~finally:(fun () -> Supervisor.stop sup) @@ fun () ->
      let ping = Proto.make Proto.Ping in
      (match Supervisor.exec sup ping with
      | Ok _ -> Alcotest.fail "every dispatch is killed; exec cannot succeed"
      | Error e ->
          check "budget exhaustion is WorkerLost" true (e.Err.err_kind = Err.Internal);
          check_str "ctx names the loss" "worker_lost" (List.assoc "error" e.Err.err_ctx);
          check_int "two crashes so far" 2 (Supervisor.retries_total sup + 1));
      (match Supervisor.exec sup ping with
      | Ok _ -> Alcotest.fail "third crash must trip the breaker"
      | Error e ->
          check "breaker rejection is Overloaded" true (e.Err.err_kind = Err.Overloaded));
      check "breaker reports open" true (Supervisor.breaker_open sup);
      check_int "on_trip fired exactly once" 1 (Atomic.get tripped);
      match Supervisor.exec sup ping with
      | Ok _ -> Alcotest.fail "an open breaker must fail fast"
      | Error e ->
          check "still Overloaded" true (e.Err.err_kind = Err.Overloaded);
          check_str "ctx says breaker" "open" (List.assoc "breaker" e.Err.err_ctx))

let test_idle_worker_death_detected () =
  (* A worker SIGKILLed *between* jobs (no dispatch in flight) must be
     reaped by the monitor's waitpid poll and its slot respawned — not
     left as a zombie behind a stale "idle" health line until the next
     job trips over it.  No retry budget is involved. *)
  Socet_util.Pool.set_size 1;
  let config =
    {
      Supervisor.default_config with
      Supervisor.workers = 1;
      backoff_base_ms = 5;
      backoff_max_ms = 20;
    }
  in
  let sup = Supervisor.create ~config () in
  Fun.protect ~finally:(fun () -> Supervisor.stop sup) @@ fun () ->
  let slot () =
    match Supervisor.health sup with
    | [ w ], breaker -> (w, breaker)
    | ws, _ -> Alcotest.failf "expected 1 slot, got %d" (List.length ws)
  in
  let w0, _ = slot () in
  check "starts idle" true (w0.Proto.wh_state = Proto.W_idle);
  Unix.kill w0.Proto.wh_pid Sys.sigkill;
  (* 5-20ms backoff + 20ms monitor tick: a second is generous. *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec await () =
    let w, _ = slot () in
    if w.Proto.wh_state = Proto.W_idle && w.Proto.wh_pid <> w0.Proto.wh_pid
    then w
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "idle death never detected/respawned"
    else begin
      Thread.delay 0.01;
      await ()
    end
  in
  let w1 = await () in
  check_int "crash on the books" 1 w1.Proto.wh_crashes;
  check_int "no retry charged (no job was aboard)" 0
    (Supervisor.retries_total sup);
  check "breaker closed" false (Supervisor.breaker_open sup);
  match Supervisor.exec sup (Proto.make Proto.Ping) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "respawned worker must serve: %s" (Err.to_string e)

(* ------------------------------------------------------------------ *)
(* Client submit retry                                                 *)
(* ------------------------------------------------------------------ *)

(* A scripted Wire peer: replies to request [n] with [script n], so the
   client's backoff loop is tested against exact server behaviour with
   no engine cost or timing dependence. *)
let with_stub_server script f =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "socet-test-stub.sock" in
  if Sys.file_exists path then Sys.remove path;
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX path);
  Unix.listen listen 4;
  let seen = Atomic.make 0 in
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listen in
        let rec serve () =
          match Wire.read_frame fd with
          | Ok { Wire.f_kind = Wire.Request; f_id = id; _ } -> (
              let n = Atomic.fetch_and_add seen 1 in
              match script n with
              | Some frame -> Wire.write_frame fd (frame ~id); serve ()
              | None -> ())
          | _ -> ()
        in
        (try serve () with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ()))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join server;
      (try Unix.close listen with Unix.Unix_error _ -> ());
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path (fun () -> Atomic.get seen))

let overloaded_frame ~id =
  Wire.error ~id
    (Proto.encode_error
       (Err.make ~kind:Err.Overloaded ~engine:"serve"
          ~ctx:[ ("retry_after_ms", "10") ]
          "job queue full"))

let ok_frame ~id =
  Wire.response ~id (Proto.encode_status { Proto.st_code = 0; st_stderr = "" })

let test_client_submit_retries_overload () =
  with_stub_server
    (fun n -> if n < 2 then Some overloaded_frame else Some ok_frame)
    (fun path seen ->
      match Client.connect path with
      | Error e -> Alcotest.failf "connect failed: %s" (Err.to_string e)
      | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let t0 = Unix.gettimeofday () in
          (match Client.submit ~retries:3 c (Proto.make Proto.Ping) with
          | Ok r -> check_int "third attempt succeeds" 0 r.Client.r_code
          | Error e -> Alcotest.failf "submit failed: %s" (Err.to_string e));
          check_int "exactly three requests hit the server" 3 (seen ());
          (* Two waits seeded by the 10ms hint, the second doubled. *)
          check "the hinted backoff was honoured" true
            (Unix.gettimeofday () -. t0 >= 0.025))

let test_client_submit_budget_and_other_errors () =
  with_stub_server
    (fun _ -> Some overloaded_frame)
    (fun path seen ->
      match Client.connect path with
      | Error e -> Alcotest.failf "connect failed: %s" (Err.to_string e)
      | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          (match Client.submit ~retries:2 c (Proto.make Proto.Ping) with
          | Ok _ -> Alcotest.fail "a still-full queue must exhaust the budget"
          | Error e ->
              check "budget exhaustion surfaces the rejection" true
                (e.Err.err_kind = Err.Overloaded));
          check_int "initial try plus two retries" 3 (seen ()));
  with_stub_server
    (fun _ ->
      Some
        (fun ~id ->
          Wire.error ~id
            (Proto.encode_error (Err.make ~kind:Err.Internal ~engine:"serve" "boom"))))
    (fun path seen ->
      match Client.connect path with
      | Error e -> Alcotest.failf "connect failed: %s" (Err.to_string e)
      | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          (match Client.submit ~retries:5 c (Proto.make Proto.Ping) with
          | Ok _ -> Alcotest.fail "an Internal error must not be retried"
          | Error e -> check "error passes through" true (e.Err.err_kind = Err.Internal));
          check_int "no retry on non-overload errors" 1 (seen ()))

let () =
  (* A fork+exec'd fleet worker re-enters this test binary; route it
     into the serve loop before alcotest sees the process. *)
  Worker.exec_guard ();
  Alcotest.run "socet_serve"
    [
      ( "wire",
        [
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_wire_truncation;
          QCheck_alcotest.to_alcotest prop_wire_corruption_never_raises;
          Alcotest.test_case "bad magic / version" `Quick test_wire_bad_magic;
          Alcotest.test_case "oversize payloads" `Quick test_wire_oversize_rejected;
        ] );
      ( "proto",
        [
          Alcotest.test_case "request roundtrip" `Quick test_proto_roundtrip;
          Alcotest.test_case "submit argument syntax" `Quick test_proto_of_args;
          Alcotest.test_case "error roundtrip" `Quick test_proto_error_roundtrip;
          Alcotest.test_case "pre-fleet payloads still decode" `Quick
            test_proto_legacy_frames_decode;
          QCheck_alcotest.to_alcotest prop_health_roundtrip;
          QCheck_alcotest.to_alcotest prop_outcome_roundtrip;
        ] );
      ( "queue",
        [
          Alcotest.test_case "fifo results" `Quick test_queue_fifo_and_results;
          Alcotest.test_case "overload rejects" `Quick test_queue_overload_rejects;
          Alcotest.test_case "cold backoff hint" `Quick test_queue_cold_backoff_hint;
          Alcotest.test_case "queued deadline expiry" `Quick
            test_queue_deadline_expired_in_queue;
        ] );
      (* Before "server": fleet tests fork workers, and OCaml forbids
         fork in any process that has ever spawned a domain — which the
         multi-domain byte-identity test does. *)
      ( "fleet",
        [
          Alcotest.test_case "chaos kill: retry, byte identity, health" `Quick
            test_fleet_chaos_kill_recovers;
          Alcotest.test_case "health in in-process mode" `Quick
            test_fleet_health_in_process_mode;
          Alcotest.test_case "circuit breaker trips and fails fast" `Quick
            test_breaker_trips_and_fails_fast;
          Alcotest.test_case "idle worker death detected by waitpid" `Quick
            test_idle_worker_death_detected;
        ] );
      ( "client",
        [
          Alcotest.test_case "submit retries overload with backoff" `Quick
            test_client_submit_retries_overload;
          Alcotest.test_case "submit budget and error passthrough" `Quick
            test_client_submit_budget_and_other_errors;
        ] );
      ( "server",
        [
          Alcotest.test_case "byte identity at 1/2/4 domains" `Quick
            test_server_byte_identity_across_domains;
          Alcotest.test_case "concurrent clients" `Quick test_server_concurrent_clients;
          Alcotest.test_case "deadline expiry" `Quick test_server_deadline_expiry;
          Alcotest.test_case "ping, stats, chunk stream" `Quick
            test_server_ping_stats_and_chunking;
          Alcotest.test_case "bad request is structured" `Quick
            test_server_bad_request_is_structured;
        ] );
    ]
