(* Tests for lib/serve: the wire codec (qcheck round-trip and
   corruption-tolerance properties), the request protocol, the admission
   queue, and an end-to-end in-process server exercised by concurrent
   clients — including the headline contract that a response streamed
   through the server is byte-identical to the direct CLI output at any
   domain count. *)

open Socet_serve
module Err = Socet_util.Error

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let frame_gen =
  QCheck.Gen.(
    let* kind = oneofl [ Wire.Request; Wire.Response; Wire.Chunk; Wire.Error_frame ] in
    let* id = int_range 0 0x3FFF_FFFF in
    let* seq = int_range 0 0xFFFF in
    let* payload = string_size (int_range 0 2048) in
    return { Wire.f_kind = kind; f_id = id; f_seq = seq; f_payload = payload })

let frame_print fr =
  Printf.sprintf "{id=%d seq=%d payload=%d bytes}" fr.Wire.f_id fr.Wire.f_seq
    (String.length fr.Wire.f_payload)

let frame_arb = QCheck.make ~print:frame_print frame_gen

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire encode/decode round-trips" ~count:200 frame_arb
    (fun fr ->
      let b = Wire.encode fr in
      match Wire.decode b ~pos:0 with
      | Ok (fr', consumed) -> fr' = fr && consumed = Bytes.length b
      | Error _ -> false)

let prop_wire_truncation =
  QCheck.Test.make ~name:"every proper prefix is `Truncated" ~count:100
    QCheck.(pair frame_arb (float_bound_inclusive 1.0))
    (fun (fr, frac) ->
      let b = Wire.encode fr in
      let cut = int_of_float (frac *. float_of_int (Bytes.length b - 1)) in
      match Wire.decode (Bytes.sub b 0 cut) ~pos:0 with
      | Error `Truncated -> true
      | Ok _ | Error (`Corrupt _) -> false)

let prop_wire_corruption_never_raises =
  (* Arbitrary bytes, and valid frames with one flipped byte: decode must
     return a result, never raise, and a damaged header never parses as
     the original frame. *)
  QCheck.Test.make ~name:"decode survives arbitrary bytes" ~count:200
    (QCheck.make QCheck.Gen.(string_size ~gen:char (int_range 0 256)))
    (fun s ->
      match Wire.decode (Bytes.of_string s) ~pos:0 with
      | Ok _ | Error `Truncated | Error (`Corrupt _) -> true)

let test_wire_bad_magic () =
  let b = Wire.encode (Wire.request ~id:7 "hello") in
  Bytes.set b 0 'X';
  (match Wire.decode b ~pos:0 with
  | Error (`Corrupt msg) -> check "names the magic" true (String.length msg > 0)
  | Ok _ | Error `Truncated -> Alcotest.fail "bad magic must be `Corrupt");
  let b = Wire.encode (Wire.request ~id:7 "hello") in
  Bytes.set b 4 '\xFF';
  (match Wire.decode b ~pos:0 with
  | Error (`Corrupt _) -> ()
  | Ok _ | Error `Truncated -> Alcotest.fail "bad version must be `Corrupt")

let test_wire_oversize_rejected () =
  check "encode refuses oversized payload" true
    (try
       ignore (Wire.encode (Wire.request ~id:1 (String.make (Wire.max_payload + 1) 'x')));
       false
     with Invalid_argument _ -> true);
  (* A length field beyond the cap is corruption at decode time too. *)
  let b = Wire.encode (Wire.request ~id:1 "x") in
  Bytes.set_int32_be b (Wire.header_size - 4) 0x7FFF_FFFFl;
  match Wire.decode b ~pos:0 with
  | Error (`Corrupt _) -> ()
  | Ok _ | Error `Truncated -> Alcotest.fail "oversize length must be `Corrupt"

(* ------------------------------------------------------------------ *)
(* Proto                                                               *)
(* ------------------------------------------------------------------ *)

let test_proto_roundtrip () =
  let reqs =
    [
      Proto.make Proto.Ping;
      Proto.make ~deadline_ms:250 Proto.Stats;
      Proto.make
        (Proto.Explore
           {
             Proto.ex_system = "system2";
             ex_objective = Proto.Min_area;
             ex_max_area = 123;
             ex_max_time = 456;
             ex_search_budget = Some 7;
             ex_no_memo = true;
           });
      Proto.make ~deadline_ms:1
        (Proto.Chip
           { Proto.ch_system = "system1"; ch_strict = true; ch_backend = Proto.Ccg });
      Proto.make
        (Proto.Chip
           { Proto.ch_system = "system2"; ch_strict = false; ch_backend = Proto.Tam });
      Proto.make (Proto.Atpg { Proto.at_core = "gcd" });
    ]
  in
  List.iter
    (fun req ->
      match Proto.decode (Proto.encode req) with
      | Ok req' -> check "request round-trips" true (req' = req)
      | Error e -> Alcotest.failf "decode failed: %s" e)
    reqs

let test_proto_of_args () =
  (match
     Proto.of_args ~deadline_ms:9
       [ "explore"; "system1"; "--max-area=600"; "--search-budget"; "12"; "--no-memo" ]
   with
  | Ok
      {
        Proto.rq_deadline_ms = Some 9;
        rq_body =
          Proto.Explore
            { Proto.ex_system = "system1"; ex_max_area = 600; ex_search_budget = Some 12; ex_no_memo = true; _ };
      } ->
      ()
  | Ok _ -> Alcotest.fail "parsed into the wrong request"
  | Error e -> Alcotest.failf "of_args failed: %s" e);
  check "unknown command rejected" true
    (Result.is_error (Proto.of_args [ "frobnicate" ]));
  check "missing target rejected" true (Result.is_error (Proto.of_args [ "chip" ]));
  check "unknown flag rejected" true
    (Result.is_error (Proto.of_args [ "chip"; "system1"; "--bogus" ]));
  (match Proto.of_args [ "chip"; "system2"; "--backend"; "tam" ] with
  | Ok { Proto.rq_body = Proto.Chip { Proto.ch_backend = Proto.Tam; _ }; _ } -> ()
  | _ -> Alcotest.fail "--backend tam did not parse");
  check "unknown backend rejected" true
    (Result.is_error (Proto.of_args [ "chip"; "system1"; "--backend=mux" ]));
  (* Wire compatibility: a ccg chip request encodes without any backend
     field, byte-identical to the pre-backend protocol. *)
  let ccg =
    Proto.make
      (Proto.Chip
         { Proto.ch_system = "system1"; ch_strict = false; ch_backend = Proto.Ccg })
  in
  check "ccg encoding carries no backend field" false
    (let enc = Proto.encode ccg in
     let needle = "backend" in
     let n = String.length needle and l = String.length enc in
     let rec has i = i + n <= l && (String.sub enc i n = needle || has (i + 1)) in
     has 0)

let test_proto_error_roundtrip () =
  let e =
    Err.make ~kind:Err.Overloaded ~engine:"serve"
      ~ctx:[ ("retry_after_ms", "40"); ("depth", "8") ]
      "job queue full"
  in
  match Proto.decode_error (Proto.encode_error e) with
  | Error m -> Alcotest.failf "decode_error failed: %s" m
  | Ok e' ->
      check "kind survives" true (e'.Err.err_kind = Err.Overloaded);
      check_int "exit code survives" (Err.exit_code e) (Err.exit_code e');
      check_str "message survives" e.Err.err_msg e'.Err.err_msg;
      check_str "ctx survives" "40" (List.assoc "retry_after_ms" e'.Err.err_ctx)

(* ------------------------------------------------------------------ *)
(* Queue                                                               *)
(* ------------------------------------------------------------------ *)

let ok_outcome out = Ok { Dispatch.o_stdout = out; o_stderr = ""; o_code = 0 }

let test_queue_fifo_and_results () =
  let q = Queue.create ~depth:16 () in
  let tickets =
    List.init 5 (fun i ->
        Result.get_ok
          (Queue.submit q ~label:(Printf.sprintf "job%d" i) (fun () ->
               ok_outcome (string_of_int i))))
  in
  List.iteri
    (fun i t ->
      match Queue.await t with
      | Ok o -> check_str "FIFO order preserved" (string_of_int i) o.Dispatch.o_stdout
      | Error e -> Alcotest.failf "job failed: %s" (Err.to_string e))
    tickets;
  Queue.drain q

let test_queue_overload_rejects () =
  let gate = Mutex.create () in
  Mutex.lock gate;
  let q = Queue.create ~depth:2 () in
  (* First job blocks the dispatcher on the gate; the queue then holds
     every further admission until [depth] is hit. *)
  let blocker =
    Result.get_ok
      (Queue.submit q ~label:"blocker" (fun () ->
           Mutex.lock gate;
           Mutex.unlock gate;
           ok_outcome "unblocked"))
  in
  (* Give the dispatcher a moment to pick up the blocker. *)
  Thread.delay 0.05;
  let q1 = Queue.submit q ~label:"q1" (fun () -> ok_outcome "q1") in
  let q2 = Queue.submit q ~label:"q2" (fun () -> ok_outcome "q2") in
  check "queue accepts up to depth" true (Result.is_ok q1 && Result.is_ok q2);
  (match Queue.submit q ~label:"q3" (fun () -> ok_outcome "q3") with
  | Ok _ -> Alcotest.fail "beyond depth must reject"
  | Error e ->
      check "rejection is Overloaded" true (e.Err.err_kind = Err.Overloaded);
      check_int "overload exit code is 5" 5 (Err.exit_code e);
      check "carries a backoff hint" true
        (int_of_string (List.assoc "retry_after_ms" e.Err.err_ctx) >= 1));
  Mutex.unlock gate;
  check "blocker completes" true (Result.is_ok (Queue.await blocker));
  Queue.drain q;
  (match Queue.submit q ~label:"late" (fun () -> ok_outcome "late") with
  | Ok _ -> Alcotest.fail "draining queue must reject"
  | Error e -> check "drain rejection is Overloaded" true (e.Err.err_kind = Err.Overloaded))

let test_queue_deadline_expired_in_queue () =
  let q = Queue.create ~depth:4 () in
  let t =
    Result.get_ok
      (Queue.submit q ~label:"expired"
         ~deadline_us:(Unix.gettimeofday () *. 1e6)
         (fun () -> Alcotest.fail "expired job must never run"))
  in
  (match Queue.await t with
  | Ok _ -> Alcotest.fail "expired deadline must fail"
  | Error e ->
      check "kind is Exhausted" true (e.Err.err_kind = Err.Exhausted);
      check_int "exit code is 4" 4 (Err.exit_code e));
  Queue.drain q

(* ------------------------------------------------------------------ *)
(* End-to-end server                                                   *)
(* ------------------------------------------------------------------ *)

let socket_path = Filename.concat (Filename.get_temp_dir_name ()) "socet-test.sock"

let with_server ?queue_depth f =
  let srv = Server.start ?queue_depth ~socket:socket_path () in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      ignore (Server.wait srv))
    (fun () -> f ())

let with_client f =
  match Client.connect socket_path with
  | Error e -> Alcotest.failf "connect failed: %s" (Err.to_string e)
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* system2 and the gcd core are the cheapest requests that still run the
   full optimizer / ATPG pipelines — each Dispatch.run re-elaborates its
   system, so e2e tests pay the engine cost per request. *)
let explore_req =
  Proto.make
    (Proto.Explore
       {
         Proto.ex_system = "system2";
         ex_objective = Proto.Min_time;
         ex_max_area = 500;
         ex_max_time = 5000;
         ex_search_budget = None;
         ex_no_memo = false;
       })

let atpg_req = Proto.make (Proto.Atpg { Proto.at_core = "gcd" })
let chip_req =
  Proto.make
    (Proto.Chip
       { Proto.ch_system = "system2"; ch_strict = false; ch_backend = Proto.Ccg })

let test_server_byte_identity_across_domains () =
  (* Reference bytes: the direct engine call (what the CLI prints),
     computed sequentially. *)
  Socet_util.Pool.set_size 1;
  let reference req =
    match Dispatch.run req with
    | Ok o -> o
    | Error e -> Alcotest.failf "direct run failed: %s" (Err.to_string e)
  in
  let ref_explore = reference explore_req and ref_atpg = reference atpg_req in
  check "reference output is non-trivial" true
    (String.length ref_explore.Dispatch.o_stdout > 0
    && String.length ref_atpg.Dispatch.o_stdout > 0);
  with_server (fun () ->
      List.iter
        (fun domains ->
          Socet_util.Pool.set_size domains;
          with_client (fun c ->
              List.iter
                (fun (req, reference) ->
                  match Client.request c req with
                  | Error e -> Alcotest.failf "request failed: %s" (Err.to_string e)
                  | Ok r ->
                      check_str
                        (Printf.sprintf "stdout identical at %d domain(s)" domains)
                        reference.Dispatch.o_stdout r.Client.r_stdout;
                      check_str "stderr identical" reference.Dispatch.o_stderr
                        r.Client.r_stderr;
                      check_int "exit code identical" reference.Dispatch.o_code
                        r.Client.r_code)
                [ (explore_req, ref_explore); (atpg_req, ref_atpg) ]))
        [ 1; 2; 4 ]);
  Socet_util.Pool.set_size 1

let test_server_concurrent_clients () =
  with_server (fun () ->
      let failures = Atomic.make 0 in
      let expected =
        match Dispatch.run atpg_req with
        | Ok o -> o.Dispatch.o_stdout
        | Error e -> Alcotest.failf "direct run failed: %s" (Err.to_string e)
      in
      let ping = Proto.version_lines () in
      let worker _ =
        Thread.create
          (fun () ->
            with_client (fun c ->
                let expect req want =
                  match Client.request c req with
                  | Ok r when r.Client.r_stdout = want -> ()
                  | Ok _ | Error _ -> Atomic.incr failures
                in
                expect (Proto.make Proto.Ping) ping;
                expect atpg_req expected;
                expect (Proto.make Proto.Ping) ping))
          ()
      in
      let threads = List.init 6 worker in
      List.iter Thread.join threads;
      check_int "all 18 concurrent replies byte-identical" 0 (Atomic.get failures))

let test_server_deadline_expiry () =
  with_server (fun () ->
      with_client (fun c ->
          match Client.request c (Proto.make ~deadline_ms:0 chip_req.Proto.rq_body) with
          | Ok _ -> Alcotest.fail "deadline 0 must expire in the queue"
          | Error e ->
              check "kind is Exhausted" true (e.Err.err_kind = Err.Exhausted);
              check_int "client-side exit code is 4" 4 (Err.exit_code e)))

let test_server_ping_stats_and_chunking () =
  with_server (fun () ->
      with_client (fun c ->
          (match Client.request c (Proto.make Proto.Ping) with
          | Ok r -> check_str "ping echoes version_lines" (Proto.version_lines ()) r.Client.r_stdout
          | Error e -> Alcotest.failf "ping failed: %s" (Err.to_string e));
          (match Client.request c (Proto.make Proto.Stats) with
          | Ok r -> check "stats is JSON" true (String.length r.Client.r_stdout > 2)
          | Error e -> Alcotest.failf "stats failed: %s" (Err.to_string e));
          (* Chunk reassembly: space system3 is several chunks' worth only
             for big payloads; assert the on_chunk stream concatenates to
             the reply either way. *)
          let seen = Buffer.create 256 in
          match
            Client.request c ~on_chunk:(Buffer.add_string seen) (Proto.make Proto.Ping)
          with
          | Ok r -> check_str "chunk stream equals stdout" r.Client.r_stdout (Buffer.contents seen)
          | Error e -> Alcotest.failf "ping failed: %s" (Err.to_string e)))

let test_server_bad_request_is_structured () =
  with_server (fun () ->
      (* Speak raw Wire to send a syntactically valid frame holding a
         semantically broken payload. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket_path);
          Wire.write_frame fd (Wire.request ~id:3 "this is not json");
          match Wire.read_frame fd with
          | Ok { Wire.f_kind = Wire.Error_frame; f_id = 3; f_payload = p; _ } -> (
              match Proto.decode_error p with
              | Ok e -> check_int "bad request maps to exit 3" 3 (Err.exit_code e)
              | Error m -> Alcotest.failf "undecodable error payload: %s" m)
          | Ok _ -> Alcotest.fail "expected an error frame"
          | Error _ -> Alcotest.fail "expected a reply, got eof/corrupt"))

let () =
  Alcotest.run "socet_serve"
    [
      ( "wire",
        [
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_wire_truncation;
          QCheck_alcotest.to_alcotest prop_wire_corruption_never_raises;
          Alcotest.test_case "bad magic / version" `Quick test_wire_bad_magic;
          Alcotest.test_case "oversize payloads" `Quick test_wire_oversize_rejected;
        ] );
      ( "proto",
        [
          Alcotest.test_case "request roundtrip" `Quick test_proto_roundtrip;
          Alcotest.test_case "submit argument syntax" `Quick test_proto_of_args;
          Alcotest.test_case "error roundtrip" `Quick test_proto_error_roundtrip;
        ] );
      ( "queue",
        [
          Alcotest.test_case "fifo results" `Quick test_queue_fifo_and_results;
          Alcotest.test_case "overload rejects" `Quick test_queue_overload_rejects;
          Alcotest.test_case "queued deadline expiry" `Quick
            test_queue_deadline_expired_in_queue;
        ] );
      ( "server",
        [
          Alcotest.test_case "byte identity at 1/2/4 domains" `Quick
            test_server_byte_identity_across_domains;
          Alcotest.test_case "concurrent clients" `Quick test_server_concurrent_clients;
          Alcotest.test_case "deadline expiry" `Quick test_server_deadline_expiry;
          Alcotest.test_case "ping, stats, chunk stream" `Quick
            test_server_ping_stats_and_chunking;
          Alcotest.test_case "bad request is structured" `Quick
            test_server_bad_request_is_structured;
        ] );
    ]
